module mtreescale

go 1.22
