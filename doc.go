// Package mtreescale reproduces "Scaling of Multicast Trees: Comments on
// the Chuang-Sirbu Scaling Law" (Phillips, Shenker, Tangmunarunkit, SIGCOMM
// 1999) as a Go library.
//
// The paper studies L(m): the number of links in a source-rooted
// shortest-path multicast tree reaching m random receivers. Chuang and Sirbu
// observed empirically that L(m) ∝ m^0.8 across very different topologies;
// this paper derives the exact form for k-ary trees, shows the asymptotic
// L̄(n) ≈ n(c − ln(n/M)/ln k) is degree-independent up to constants, and
// argues that any network with an exponentially growing reachability
// function S(r) obeys the same form — a candidate explanation for the law's
// universality.
//
// The library provides:
//
//   - Topology generation: k-ary trees, GT-ITM style flat random and
//     transit-stub networks, TIERS style hierarchies, Waxman and
//     preferential-attachment graphs, and deterministic substitutes for the
//     paper's four real maps (ARPA, MBone, Internet, AS). See
//     GenerateTopology and the constructors.
//
//   - The Monte-Carlo measurement engine of the paper's §2: MeasureCurve
//     runs the Nsource×Nrcvr protocol and returns normalized tree-size
//     points.
//
//   - The closed-form k-ary theory of §3 and §5 (AnalyticTree): exact
//     Equations 4 and 21, discrete derivatives, the h(x) diagnostic,
//     asymptotics, the n↔m conversion, and extreme affinity/disaffinity.
//
//   - Reachability analysis of §4 (MeasureReachability, Reachability):
//     S(r), T(r), expected tree sizes driven purely by reachability
//     (Equations 23 and 30), growth classification, and the synthetic
//     models of Figure 8.
//
//   - The affinity model of §5 (NewAffinityTreeModel, EstimateAffinity):
//     Metropolis sampling of W_α(β) ∝ exp(−β·d̂(α)).
//
//   - Scaling-law fitting and pricing (Curve, Pricing): fit the
//     Chuang-Sirbu exponent or the paper's logarithmic-correction form to
//     any measured curve, and apply the cost-based pricing policy that
//     motivated the original law.
//
//   - A complete experiment registry (RunExperiment) reproducing every
//     table and figure in the paper, with CSV/gnuplot/ASCII rendering.
//
// # Quick start
//
//	g, err := mtreescale.GenerateTopology("ts1000")
//	if err != nil { ... }
//	sizes := mtreescale.LogSpacedSizes(500, 12)
//	pts, err := mtreescale.MeasureCurve(g, sizes, mtreescale.Distinct,
//		mtreescale.DefaultProtocol(42))
//	if err != nil { ... }
//	fit, err := mtreescale.CurveFromPoints(pts).FitChuangSirbu()
//	fmt.Printf("exponent: %.3f\n", fit.Exponent) // ≈ 0.8
//
// All randomness is seed-deterministic: the same inputs always produce the
// same outputs, independent of GOMAXPROCS.
package mtreescale
