// Quickstart: measure how multicast tree size scales with group size on one
// topology, and compare the measured curve to the Chuang-Sirbu m^0.8 law and
// to the paper's logarithmic-correction form.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	mtreescale "mtreescale"
)

func main() {
	// 1. Build a transit-stub topology like the paper's ts1000.
	g, err := mtreescale.GenerateTopology("ts1000")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("topology %s: %d nodes, %d links, average degree %.2f\n",
		g.Name(), g.N(), g.M(), g.AvgDegree())

	// 2. Run the paper's Monte-Carlo protocol: random sources, random
	// receiver sets, measure the delivery tree each time.
	sizes := mtreescale.LogSpacedSizes(900, 14)
	pts, err := mtreescale.MeasureCurve(g, sizes, mtreescale.Distinct,
		mtreescale.Protocol{NSource: 40, NRcvr: 40, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n  m     L(m)      L/ū    m^0.8")
	for _, pt := range pts {
		fmt.Printf("%5d %8.1f %8.2f %8.2f\n",
			pt.Size, pt.MeanLinks, pt.MeanRatio, mtreescale.ChuangSirbuReference(float64(pt.Size)))
	}

	// 3. Fit both scaling models.
	curve := mtreescale.CurveFromPoints(pts)
	cs, err := curve.FitChuangSirbu()
	if err != nil {
		log.Fatal(err)
	}
	pst, err := curve.FitPST()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nChuang-Sirbu power law:  L/ū ≈ %.2f·m^%.3f   (R² = %.4f)\n",
		cs.Constant, cs.Exponent, cs.R2)
	fmt.Printf("PST log correction:      L/(n·ū) ≈ %.3f %+.4f·ln n (R² = %.4f)\n",
		pst.A, pst.B, pst.R2)
	fmt.Printf("\nThe paper's point: both describe the data, because the exact\n")
	fmt.Printf("k-ary form n(c − ln(n/M)/ln k) numerically mimics m^0.8.\n")

	// 4. The same exponent from pure theory: a binary tree of similar size.
	tr := mtreescale.AnalyticTree{K: 2, Depth: 10}
	l256, _ := tr.DistinctTreeSize(256)
	l16, _ := tr.DistinctTreeSize(16)
	slope := (math.Log(l256) - math.Log(l16)) / (math.Log(256) - math.Log(16))
	fmt.Printf("\nanalytic binary tree (D=10) log-log slope over m ∈ [16,256]: %.3f\n", slope)
}
