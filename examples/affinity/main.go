// Affinity: §5 of the paper. Receivers in real groups are not uniformly
// scattered — teleconference participants cluster (affinity), sensor nodes
// spread out (disaffinity). This example samples the paper's configuration
// model W_α(β) ∝ exp(−β·d̂(α)) on a binary tree (Figure 9's setup) and on a
// realistic transit-stub graph, showing how clustering changes the
// delivery-tree size and hence multicast's efficiency gain.
//
//	go run ./examples/affinity
package main

import (
	"fmt"
	"log"

	mtreescale "mtreescale"
)

func main() {
	// Part 1: the paper's Figure 9 on a binary tree of depth 10.
	model, err := mtreescale.NewAffinityTreeModel(2, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("binary tree D=10: %d sites\n\n", model.Sites())
	fmt.Println("scenario            β      L̄_β(n=50)   d̂ (mean pair dist)   accept%")
	scenarios := []struct {
		name string
		beta float64
	}{
		{"sensor net (spread)", -10},
		{"mild disaffinity", -1},
		{"uniform (paper §2-4)", 0},
		{"mild affinity", 1},
		{"teleconference", 10},
	}
	for _, sc := range scenarios {
		est, err := mtreescale.EstimateAffinity(model, 50, sc.beta, mtreescale.AffinityParams{
			BurnInSweeps: 200, SampleSweeps: 400, Seed: 11,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-19s %5.1f   %9.1f   %18.2f   %6.1f%%\n",
			sc.name, sc.beta, est.MeanTreeSize, est.MeanPairDist, 100*est.AcceptanceRate)
	}
	fmt.Println("\nclustered receivers share most of their delivery tree; spread-out")
	fmt.Println("receivers force the tree to span the network.")

	// Part 2: the same model on a realistic topology via the general-graph
	// chain (the paper only simulates trees; this is the library extension).
	g, err := mtreescale.TransitStubSized(600, 3.6, 21)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntransit-stub network: %d nodes, %d links\n", g.N(), g.M())
	fmt.Println("β      mean L over 200 sweeps")
	for _, beta := range []float64{-5, 0, 5} {
		chain, err := mtreescale.NewAffinityGraphChain(g, 0, 30, beta, 31)
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < 200; i++ { // burn-in
			chain.Sweep()
		}
		sum := 0.0
		for i := 0; i < 200; i++ {
			chain.Sweep()
			sum += float64(chain.TreeSize())
		}
		fmt.Printf("%5.1f  %.1f\n", beta, sum/200)
	}
	fmt.Println("\nthe paper's §5.4 conjecture: at fixed n the β effect is real, but in")
	fmt.Println("the large-network limit with fixed n/M it vanishes — the asymptotic")
	fmt.Println("form of L̄(n) survives receiver affinity.")
}
