// Scalinglaw: reproduce the paper's headline comparison across all eight
// Table 1 topologies — does L(m) ∝ m^0.8 hold, and does the reachability
// function S(r) predict *when* it holds?
//
// For every topology this example measures the Chuang-Sirbu exponent and
// classifies T(r) growth, reproducing the paper's dichotomy: networks with
// exponential reachability fit the law and the PST form well; strongly
// sub-exponential networks (TIERS-like, MBone-like, ARPA-like) fit worse.
//
//	go run ./examples/scalinglaw           # quarter-scale, ~1 minute
package main

import (
	"fmt"
	"log"

	mtreescale "mtreescale"
)

func main() {
	fmt.Println("topology   | exponent | R²     | T(r) growth      | verdict")
	fmt.Println("-----------+----------+--------+------------------+--------")
	for _, name := range mtreescale.StandardTopologies() {
		g, err := mtreescale.GenerateTopologySeeded(name, 0, 0.25)
		if err != nil {
			log.Fatal(err)
		}
		// Measure the scaling curve.
		maxM := g.N() - 1
		if maxM > 4000 {
			maxM = 4000
		}
		pts, err := mtreescale.MeasureCurve(g, mtreescale.LogSpacedSizes(maxM, 12),
			mtreescale.Distinct, mtreescale.Protocol{NSource: 20, NRcvr: 20, Seed: 5})
		if err != nil {
			log.Fatal(err)
		}
		fit, err := mtreescale.CurveFromPoints(pts).FitChuangSirbu()
		if err != nil {
			log.Fatal(err)
		}
		// Classify reachability growth.
		r, err := mtreescale.MeasureReachability(g, 20, 5)
		if err != nil {
			log.Fatal(err)
		}
		growth := "unclassifiable"
		if cls, err := r.Classify(0.5); err == nil {
			growth = cls.String()
		}
		verdict := "fits law"
		if fit.Exponent < 0.65 || fit.Exponent > 0.95 || fit.R2 < 0.98 {
			verdict = "deviates"
		}
		fmt.Printf("%-10s | %8.3f | %.4f | %-16s | %s\n",
			name, fit.Exponent, fit.R2, growth, verdict)
	}
	fmt.Println("\npaper's conclusion: the law is 'by no means exact, but remarkably")
	fmt.Println("good' — and the exceptions are exactly the sub-exponential networks.")
}
