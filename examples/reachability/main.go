// Reachability: the paper's §4 question — when does the scaling law hold?
// Answer: when the number of sites reachable in r hops, S(r), grows
// exponentially. This example measures T(r) = Σ S(j) for each standard
// topology, classifies its growth, and shows how the *same* reachability
// function, fed through Equation 30, predicts the entire L̄(n) curve
// without any further simulation.
//
//	go run ./examples/reachability
package main

import (
	"fmt"
	"log"
	"math"

	mtreescale "mtreescale"
)

func main() {
	// Part 1: measure and classify reachability on two contrasting
	// topologies.
	fmt.Println("== measured reachability ==")
	for _, name := range []string{"as", "ti5000"} {
		g, err := mtreescale.GenerateTopologySeeded(name, 0, 0.5)
		if err != nil {
			log.Fatal(err)
		}
		r, err := mtreescale.MeasureReachability(g, 40, 9)
		if err != nil {
			log.Fatal(err)
		}
		cls := "unclassifiable"
		if c, err := r.Classify(0.5); err == nil {
			cls = c.String()
		}
		fmt.Printf("\n%s (%d nodes): depth %d, growth %s\n", name, g.N(), r.Depth(), cls)
		fmt.Println("  r    T(r)    ln T(r)")
		rs, ts := r.TCurve()
		for i := 0; i < len(rs); i += 2 {
			fmt.Printf("%3d %8.0f %8.2f\n", rs[i], ts[i], math.Log(ts[i]))
		}
	}

	// Part 2: Equation 30 turns reachability into a tree-size prediction;
	// validate it against direct Monte-Carlo simulation.
	fmt.Println("\n== Eq 30 prediction vs direct simulation (as topology) ==")
	g, err := mtreescale.GenerateTopologySeeded("as", 0, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	r, err := mtreescale.MeasureReachability(g, 40, 9)
	if err != nil {
		log.Fatal(err)
	}
	sizes := []int{5, 20, 80, 320}
	sim, err := mtreescale.MeasureCurve(g, sizes, mtreescale.WithReplacement,
		mtreescale.Protocol{NSource: 20, NRcvr: 20, Seed: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("   n   Eq30 L̄(n)   simulated    error")
	for i, n := range sizes {
		pred, err := r.ExpectedTreeThroughout(float64(n))
		if err != nil {
			log.Fatal(err)
		}
		got := sim[i].MeanLinks
		fmt.Printf("%4d %11.1f %11.1f %7.1f%%\n", n, pred, got, 100*(pred-got)/got)
	}

	// Part 3: the Figure 8 thought experiment — same S(D), different growth
	// shape, very different sharing behavior.
	fmt.Println("\n== synthetic reachability models (Figure 8) ==")
	exp, pow, gau, err := mtreescale.ReachabilityFigure8Models(2, 3, 20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("   n     exponential   power-law   super-exp   (L̄/(n·D))")
	for _, n := range []float64{1e2, 1e4, 1e6, 1e8} {
		row := make([]float64, 0, 3)
		for _, m := range []*mtreescale.Reachability{exp, pow, gau} {
			l, err := m.ExpectedTreeLeaves(n)
			if err != nil {
				log.Fatal(err)
			}
			row = append(row, l/(n*20))
		}
		fmt.Printf("%6.0e %12.4f %11.4f %11.4f\n", n, row[0], row[1], row[2])
	}
	fmt.Println("\nonly the exponential case yields the paper's n(c − ln(n/M)/ln k) form;")
	fmt.Println("that is the paper's proposed origin of the Chuang-Sirbu law.")
}
