// Treecompare: put the paper's shortest-path trees in context. For one
// topology and a sweep of group sizes, compare three multicast tree types:
//
//   - source-rooted shortest-path trees (what the paper measures),
//   - core-based shared trees (what the paper's footnote 1 defers to
//     Wei-Estrin),
//   - KMB approximate Steiner trees (the near-optimal cost baseline),
//
// and check whether the Chuang-Sirbu exponent depends on the routing
// algorithm. (Spoiler, matching Wei-Estrin: it barely does.)
//
//	go run ./examples/treecompare
package main

import (
	"fmt"
	"log"
	"math"

	mtreescale "mtreescale"
)

func main() {
	g, err := mtreescale.TransitStubSized(600, 3.6, 17)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("topology: %s-style, %d nodes, %d links\n\n", "transit-stub", g.N(), g.M())

	sizes := mtreescale.LogSpacedSizes(300, 8)
	prot := mtreescale.Protocol{NSource: 8, NRcvr: 8, Seed: 3}

	// Shared trees vs source trees (same receiver samples internally).
	shared, err := mtreescale.MeasureSharedCurve(g, sizes, mtreescale.CoreCenter, prot)
	if err != nil {
		log.Fatal(err)
	}

	// Steiner trees, sampled independently.
	spt, err := g.BFS(0)
	if err != nil {
		log.Fatal(err)
	}
	counter := mtreescale.NewTreeCounter(g.N())
	fmt.Println("  m   source-SPT   shared(center)   KMB-Steiner   SPT/Steiner")
	var lx, lySPT, lySteiner []float64
	for i, m := range sizes {
		// One deterministic receiver sample per size for the Steiner column.
		recv := make([]int32, 0, m)
		for j := 0; len(recv) < m; j++ {
			v := int32((j*7919 + 13) % g.N())
			if v != 0 {
				recv = append(recv, v)
			}
		}
		sptSize := counter.TreeSize(spt, recv)
		steinerSize, err := mtreescale.SteinerTreeSize(g, 0, recv)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%4d %10.1f %16.1f %13d %13.3f\n",
			m, shared[i].MeanSourceTree, shared[i].MeanSharedTree,
			steinerSize, float64(sptSize)/math.Max(1, float64(steinerSize)))
		lx = append(lx, float64(m))
		lySPT = append(lySPT, shared[i].MeanSourceTree)
		lySteiner = append(lySteiner, float64(steinerSize))
	}

	slope := func(xs, ys []float64) float64 {
		var sx, sy, sxx, sxy, n float64
		for i := range xs {
			if ys[i] <= 0 {
				continue
			}
			x, y := math.Log(xs[i]), math.Log(ys[i])
			sx += x
			sy += y
			sxx += x * x
			sxy += x * y
			n++
		}
		return (n*sxy - sx*sy) / (n*sxx - sx*sx)
	}
	fmt.Printf("\nlog-log slope of tree size: source-SPT %.3f, Steiner %.3f\n",
		slope(lx, lySPT), slope(lx, lySteiner))
	fmt.Println("the scaling exponent is a property of the topology, not the tree algorithm.")
}
