// Pricing: the application that motivated Chuang-Sirbu's study. A provider
// prices multicast sessions by the network resources they consume. Because
// L(m) ∝ m^0.8, the tariff P(m) = u·m^0.8 recovers cost, and the
// per-receiver price falls with group size.
//
// This example measures a topology, calibrates a tariff from the *measured*
// exponent (not the canonical 0.8), and prints a rate card.
//
//	go run ./examples/pricing
package main

import (
	"fmt"
	"log"

	mtreescale "mtreescale"
)

func main() {
	g, err := mtreescale.GenerateTopology("ts1008")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("provider network: %s (%d nodes, %d links)\n\n", g.Name(), g.N(), g.M())

	// Measure the actual scaling on this network.
	sizes := mtreescale.LogSpacedSizes(900, 12)
	pts, err := mtreescale.MeasureCurve(g, sizes, mtreescale.Distinct,
		mtreescale.Protocol{NSource: 30, NRcvr: 30, Seed: 99})
	if err != nil {
		log.Fatal(err)
	}
	curve := mtreescale.CurveFromPoints(pts)

	const unicastPrice = 1.00 // $ per unicast session
	tariff, err := mtreescale.CalibratedPricing(curve, unicastPrice)
	if err != nil {
		log.Fatal(err)
	}
	canonical := mtreescale.DefaultPricing(unicastPrice)
	fmt.Printf("measured exponent: %.3f (canonical Chuang-Sirbu: %.1f)\n\n", tariff.Exponent, canonical.Exponent)

	fmt.Println("group size | group price | per receiver | vs m unicasts | measured efficiency")
	for i, pt := range pts {
		gp, err := tariff.GroupPrice(pt.Size)
		if err != nil {
			log.Fatal(err)
		}
		pr, _ := tariff.PerReceiverPrice(pt.Size)
		sv, _ := tariff.Savings(pt.Size)
		fmt.Printf("%10d | $%10.2f | $%11.3f | %12.1f%% | %.1f%%\n",
			pt.Size, gp, pr, 100*sv, 100*curve.Efficiency(i))
	}

	// How large must a group be before per-receiver price halves?
	be, err := tariff.BreakEvenGroupSize(0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nper-receiver price halves at group size %d\n", be)

	// Sanity: the tariff must track measured cost. Compare the tariff's
	// prediction of relative cost against the measured tree sizes.
	first, last := pts[0], pts[len(pts)-1]
	measuredGrowth := last.MeanLinks / first.MeanLinks
	p1, _ := tariff.GroupPrice(first.Size)
	p2, _ := tariff.GroupPrice(last.Size)
	fmt.Printf("cost growth m=%d→%d: measured ×%.1f, tariff ×%.1f\n",
		first.Size, last.Size, measuredGrowth, p2/p1)
}
