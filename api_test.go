package mtreescale_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	mtreescale "mtreescale"
)

func TestQuickStartFlow(t *testing.T) {
	// The doc.go quick-start must work end to end.
	g, err := mtreescale.GenerateTopologySeeded("ts1000", 0, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	sizes := mtreescale.LogSpacedSizes(g.N()/2, 10)
	pts, err := mtreescale.MeasureCurve(g, sizes, mtreescale.Distinct,
		mtreescale.Protocol{NSource: 10, NRcvr: 10, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	fit, err := mtreescale.CurveFromPoints(pts).FitChuangSirbu()
	if err != nil {
		t.Fatal(err)
	}
	if fit.Exponent < 0.5 || fit.Exponent > 1.0 {
		t.Fatalf("exponent %.3f implausible", fit.Exponent)
	}
}

func TestStandardTopologyNames(t *testing.T) {
	all := mtreescale.StandardTopologies()
	if len(all) != 8 {
		t.Fatalf("standard topologies = %v", all)
	}
	if len(mtreescale.GeneratedTopologies())+len(mtreescale.RealTopologies()) != 8 {
		t.Fatal("partition broken")
	}
}

func TestTopologyRoundTripThroughAPI(t *testing.T) {
	g := mtreescale.ARPA()
	var buf bytes.Buffer
	if err := mtreescale.WriteTopology(&buf, g); err != nil {
		t.Fatal(err)
	}
	h, err := mtreescale.ReadTopology(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.N() != 47 || h.M() != g.M() {
		t.Fatalf("round trip: N=%d M=%d", h.N(), h.M())
	}
}

func TestBuilderThroughAPI(t *testing.T) {
	b := mtreescale.NewTopologyBuilder(4)
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	_ = b.AddEdge(1, 2)
	_ = b.AddEdge(2, 3)
	g := b.Build()
	m := mtreescale.ComputeMetrics(g, 0, 1)
	if m.Nodes != 4 || m.Links != 3 || m.Diameter != 3 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestAnalyticTreeThroughAPI(t *testing.T) {
	tr := mtreescale.AnalyticTree{K: 2, Depth: 10}
	l, err := tr.LeafTreeSize(32)
	if err != nil {
		t.Fatal(err)
	}
	if l <= 0 {
		t.Fatal("tree size must be positive")
	}
	n, err := mtreescale.RequiredDraws(1024, 32)
	if err != nil {
		t.Fatal(err)
	}
	back, err := mtreescale.ExpectedDistinct(1024, n)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(back-32) > 1e-9 {
		t.Fatalf("conversion round trip: %v", back)
	}
	if mtreescale.ChuangSirbuReference(1) != 1 {
		t.Fatal("reference")
	}
}

func TestReachabilityThroughAPI(t *testing.T) {
	g, err := mtreescale.TransitStubSized(300, 3.6, 7)
	if err != nil {
		t.Fatal(err)
	}
	r, err := mtreescale.MeasureReachability(g, 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Sites() <= 0 || r.Depth() <= 0 {
		t.Fatalf("degenerate reachability: sites=%v depth=%d", r.Sites(), r.Depth())
	}
	l, err := r.ExpectedTreeThroughout(10)
	if err != nil {
		t.Fatal(err)
	}
	if l <= 0 || l > r.Sites() {
		t.Fatalf("Eq30 tree size %v out of range", l)
	}
	if _, err := r.Classify(0.5); err != nil {
		t.Fatal(err)
	}
	// Classification correctness is asserted on a graph whose growth class is
	// structural rather than seed-dependent: a ring has S(r) = 2 for every r,
	// so ln T(r) is concave for any measurement seed. (At the tiny
	// transit-stub scale above, the class genuinely varies with the draw;
	// internal/reach tests the paper's dichotomy at a scale where it holds.)
	b := mtreescale.NewTopologyBuilder(200)
	for i := 0; i < 200; i++ {
		if err := b.AddEdge(i, (i+1)%200); err != nil {
			t.Fatal(err)
		}
	}
	rr, err := mtreescale.MeasureReachability(b.Build(), 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	cls, err := rr.Classify(0.9)
	if err != nil {
		t.Fatal(err)
	}
	if cls != mtreescale.GrowthSubExponential {
		t.Fatalf("ring classified %v; want sub-exponential", cls)
	}
}

func TestAffinityThroughAPI(t *testing.T) {
	m, err := mtreescale.NewAffinityTreeModel(2, 6)
	if err != nil {
		t.Fatal(err)
	}
	est, err := mtreescale.EstimateAffinity(m, 10, 5, mtreescale.AffinityParams{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	uniform, err := mtreescale.EstimateAffinity(m, 10, 0, mtreescale.AffinityParams{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if est.MeanTreeSize >= uniform.MeanTreeSize {
		t.Fatalf("affinity %v not below uniform %v", est.MeanTreeSize, uniform.MeanTreeSize)
	}
}

func TestAffinityGraphChainThroughAPI(t *testing.T) {
	g, err := mtreescale.TransitStubSized(100, 3.6, 5)
	if err != nil {
		t.Fatal(err)
	}
	c, err := mtreescale.NewAffinityGraphChain(g, 0, 8, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	c.Sweep()
	if c.TreeSize() <= 0 {
		t.Fatal("empty tree")
	}
}

func TestPricingThroughAPI(t *testing.T) {
	p := mtreescale.DefaultPricing(100)
	if p.Exponent != mtreescale.ChuangSirbuExponent {
		t.Fatal("default pricing must use the Chuang-Sirbu exponent")
	}
	gp, err := p.GroupPrice(1000)
	if err != nil {
		t.Fatal(err)
	}
	if gp >= 100*1000 {
		t.Fatal("multicast must beat unicast")
	}
}

func TestExperimentsThroughAPI(t *testing.T) {
	ids := mtreescale.ExperimentIDs()
	if len(ids) != 25 { // 18 paper items + 5 extensions + 2 churn
		t.Fatalf("experiment count = %d", len(ids))
	}
	res, err := mtreescale.RunExperiment("fig8", mtreescale.QuickProfile())
	if err != nil {
		t.Fatal(err)
	}
	out, err := mtreescale.RenderASCII(res.Figure, mtreescale.ASCIIOptions{Width: 50, Height: 14})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "fig8") {
		t.Fatal("render missing figure id")
	}
	var csvBuf, gpBuf bytes.Buffer
	if err := mtreescale.WriteFigureCSV(&csvBuf, res.Figure); err != nil {
		t.Fatal(err)
	}
	if err := mtreescale.WriteFigureGnuplot(&gpBuf, res.Figure); err != nil {
		t.Fatal(err)
	}
	if csvBuf.Len() == 0 || gpBuf.Len() == 0 {
		t.Fatal("empty exports")
	}
}

func TestProfilesThroughAPI(t *testing.T) {
	for _, p := range []mtreescale.Profile{
		mtreescale.PaperProfile(), mtreescale.MediumProfile(), mtreescale.QuickProfile(),
	} {
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := mtreescale.ProfileByName("paper"); err != nil {
		t.Fatal(err)
	}
}

func TestKAryTreeThroughAPI(t *testing.T) {
	tr, err := mtreescale.NewKAryTree(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Leaves != 81 {
		t.Fatalf("leaves = %d", tr.Leaves)
	}
	spt, err := tr.Graph.BFS(0)
	if err != nil {
		t.Fatal(err)
	}
	c := mtreescale.NewTreeCounter(tr.Graph.N())
	if got := c.TreeSize(spt, []int32{int32(tr.Leaf(0))}); got != 4 {
		t.Fatalf("single-leaf tree = %d", got)
	}
}

func TestGeneratorsThroughAPI(t *testing.T) {
	if _, err := mtreescale.GNP(50, 0.1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := mtreescale.Waxman(50, 0.5, 0.3, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := mtreescale.TiersSized(300, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := mtreescale.PreferentialAttachment(100, 2, 0, 1); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := mtreescale.ReachabilityFigure8Models(2, 3, 10); err != nil {
		t.Fatal(err)
	}
}
