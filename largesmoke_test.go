package mtreescale_test

// The large-graph smoke test: a ~1M-node transit-stub streamed straight into
// the CSR builder, the memory model asserted against the streaming claim
// (peak retained heap stays within ~2x the final CSR — no intermediate edge
// list), then one S(r)/L(m) curve point measured over the compressed layout
// and checked byte-identical to the flat run.
//
// Gated behind MTREESCALE_LARGE_SMOKE=1 (`make large-smoke`, run by `make
// check` and CI) so plain `go test ./...` stays fast.

import (
	"os"
	"runtime"
	"testing"

	mtreescale "mtreescale"
)

func TestLargeGraphSmoke(t *testing.T) {
	if os.Getenv("MTREESCALE_LARGE_SMOKE") == "" {
		t.Skip("set MTREESCALE_LARGE_SMOKE=1 (or run `make large-smoke`) to enable")
	}
	const n = 1_000_000
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)

	g, err := mtreescale.TransitStubStreamed(n, 4.0, 11)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != n {
		t.Fatalf("N = %d, want %d", g.N(), n)
	}

	// Memory model. Live heap beyond the baseline is the CSR itself (plus
	// small builder leftovers): the streaming path never held an edge list,
	// which at this size would alone exceed the CSR. The 2x bound leaves room
	// for the count-pass arrays; the fixed slack absorbs allocator noise.
	runtime.GC()
	runtime.ReadMemStats(&after)
	csr := g.MemBytes()
	live := int64(after.HeapInuse) - int64(before.HeapInuse)
	if limit := 2*csr + 32<<20; live > limit {
		t.Errorf("retained heap after streamed build = %d B, want <= %d (CSR %d B)", live, limit, csr)
	}
	t.Logf("streamed 1M-node build: CSR %.1f MB, retained heap delta %.1f MB",
		float64(csr)/(1<<20), float64(live)/(1<<20))

	// The memory mode proper: varint compression without relabeling must
	// shrink the graph (the degree relabeling is a separate locality lever
	// that costs 12 B/node).
	cg, err := g.Compress(false)
	if err != nil {
		t.Fatal(err)
	}
	if cg.MemBytes() >= csr {
		t.Errorf("compressed layout %d B not smaller than flat %d B", cg.MemBytes(), csr)
	}
	t.Logf("compressed: %.1f MB (%.0f%% of flat)",
		float64(cg.MemBytes())/(1<<20), 100*float64(cg.MemBytes())/float64(csr))
	rg, err := g.Compress(true)
	if err != nil {
		t.Fatal(err)
	}

	// One curve point, flat vs compressed vs relabeled: the layout is a
	// pure storage lever, so the Points must be byte-identical.
	sizes := []int{64}
	p := mtreescale.Protocol{NSource: 2, NRcvr: 2, Seed: 5, BatchBFS: true}
	want, err := mtreescale.MeasureCurve(g, sizes, mtreescale.Distinct, p)
	if err != nil {
		t.Fatal(err)
	}
	if want[0].MeanLinks <= 0 {
		t.Fatalf("degenerate curve point %+v", want[0])
	}
	for name, lg := range map[string]*mtreescale.Topology{"compressed": cg, "relabeled": rg} {
		got, err := mtreescale.MeasureCurve(lg, sizes, mtreescale.Distinct, p)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != want[0] {
			t.Fatalf("%s curve point %+v != flat %+v", name, got[0], want[0])
		}
	}
}
