package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	mtreescale "mtreescale"
)

// smallGrid are flags for a grid cheap enough to run many times per test
// binary yet wide enough to shard meaningfully.
var smallGrid = []string{
	"-kind", "ensemble", "-topo", "r100", "-nets", "4",
	"-nsource", "3", "-nrcvr", "2", "-sizes", "1,3,10", "-seed", "7",
}

func ctl(t *testing.T, args ...string) (string, string, error) {
	t.Helper()
	var out, errw bytes.Buffer
	err := runCtl(context.Background(), args, &out, &errw)
	return out.String(), errw.String(), err
}

func TestVersionFlag(t *testing.T) {
	out, _, err := ctl(t, "-version")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "mtctl ") || strings.TrimSpace(out) == "mtctl" {
		t.Fatalf("version output = %q", out)
	}
}

func TestNeedsWorkersOrLocal(t *testing.T) {
	if _, _, err := ctl(t, smallGrid...); err == nil {
		t.Fatal("expected usage error without -workers/-local/-bench")
	}
}

func TestBadGridFlags(t *testing.T) {
	for _, bad := range [][]string{
		{"-local", "-kind", "nope"},
		{"-local", "-mode", "nope"},
		{"-local", "-strategy", "nope"},
		{"-local", "-sizes", "1,-3"},
		{"-local", "-topo", "nope"},
	} {
		if _, _, err := ctl(t, bad...); err == nil {
			t.Fatalf("flags %v: expected error", bad)
		}
	}
}

// TestClusterMatchesLocalByteIdentical is the CLI-level determinism claim:
// -local and a two-worker cluster run write byte-identical merged.json.
func TestClusterMatchesLocalByteIdentical(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	if _, _, err := ctl(t, append([]string{"-local", "-out", dirA}, smallGrid...)...); err != nil {
		t.Fatal(err)
	}

	w1, err := mtreescale.StartClusterStubWorker("t-0", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w1.Close()
	w2, err := mtreescale.StartClusterStubWorker("t-1", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()

	_, progress, err := ctl(t, append([]string{
		"-workers", w1.URL() + "," + w2.URL(), "-shards", "3", "-out", dirB,
	}, smallGrid...)...)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(progress, "complete") {
		t.Fatalf("no progress lines in %q", progress)
	}

	a, err := os.ReadFile(filepath.Join(dirA, "merged.json"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dirB, "merged.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("local and cluster merged.json differ:\n%s\n----\n%s", a, b)
	}
}

// TestResumeNeedsNoLiveWorker reruns a completed -out directory with
// -resume against a dead worker: every shard replays from checkpoint.jsonl
// and the rewritten merged.json is unchanged.
func TestResumeNeedsNoLiveWorker(t *testing.T) {
	dir := t.TempDir()
	w, err := mtreescale.StartClusterStubWorker("t-0", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	args := append([]string{"-workers", w.URL(), "-shards", "3", "-out", dir}, smallGrid...)
	if _, _, err := ctl(t, args...); err != nil {
		t.Fatal(err)
	}
	first, err := os.ReadFile(filepath.Join(dir, "merged.json"))
	if err != nil {
		t.Fatal(err)
	}
	w.Close()

	// Same grid, -resume, and a worker URL nothing listens on.
	_, progress, err := ctl(t, append([]string{
		"-workers", "http://127.0.0.1:1", "-shards", "3", "-out", dir, "-resume",
	}, smallGrid...)...)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(progress, "resumed from journal") != 3 {
		t.Fatalf("expected 3 resumed shards, got progress:\n%s", progress)
	}
	second, err := os.ReadFile(filepath.Join(dir, "merged.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("resumed merged.json differs from the original")
	}
}

func TestTimingDoc(t *testing.T) {
	path := filepath.Join(t.TempDir(), "timing.json")
	if _, _, err := ctl(t, append([]string{"-local", "-out", t.TempDir(), "-timing", path}, smallGrid...)...); err != nil {
		t.Fatal(err)
	}
	var doc benchDoc
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 1 || doc.Benchmarks[0].Name != "LocalRun/ensemble" || doc.Benchmarks[0].NsPerOp <= 0 {
		t.Fatalf("timing doc = %+v", doc)
	}
}

// TestBenchWritesDoc runs the committed-benchmark path with tiny latency:
// the document must carry both wall clocks and the speedup ratio, and the
// bench itself verifies merged bytes against the single-process reference.
func TestBenchWritesDoc(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	_, progress, err := ctl(t, append([]string{
		"-bench", path, "-bench-latency", "20ms", "-bench-shards", "4",
	}, smallGrid...)...)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(progress, "merged bytes identical") {
		t.Fatalf("bench progress missing identity check: %q", progress)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc benchDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	names := map[string]float64{}
	for _, b := range doc.Benchmarks {
		names[b.Name] = b.NsPerOp
	}
	for _, want := range []string{"ClusterEnsembleWorkers1", "ClusterEnsembleWorkers2", "ClusterSpeedupWorkers2"} {
		if names[want] <= 0 {
			t.Fatalf("doc missing %s: %+v", want, doc)
		}
	}
	if sp := names["ClusterSpeedupWorkers2"]; sp < 1.0 {
		t.Fatalf("speedup %v < 1.0 with latency-dominated shards", sp)
	}
}
