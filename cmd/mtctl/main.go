// Command mtctl coordinates a cluster of mtsimd workers: it cuts one
// experiment grid into contiguous shards, fans the shards out over the
// workers' POST /shard endpoints with bounded in-flight per worker, and
// merges the returned partials deterministically — the merged output is
// byte-identical to a single-process run (-local), whatever the worker
// count, scheduling order, 429 backpressure, worker deaths or coordinator
// restarts in between.
//
// Usage:
//
//	mtctl -workers http://h1:8080,http://h2:8080 -kind ensemble -nets 16
//	mtctl -local -kind ensemble -nets 16          # same grid, in-process
//	mtctl -workers ... -out run1/ -resume         # journal + crash resume
//	mtctl -bench BENCH_7.json                     # committed cluster bench
//
// Failure semantics, in one place:
//
//   - 429 from a worker is backpressure, not failure: the slot honors
//     Retry-After (or -backoff) and the shard re-enters the pool, costing
//     no retry budget and no quarantine strike.
//   - Transport errors and 5xx quarantine the worker (exponential backoff)
//     and re-queue the shard elsewhere, up to -retries times per shard.
//   - 4xx other than 429 means the grid itself is bad: fail fast.
//   - With -out, every completed partial is fsynced to
//     <out>/checkpoint.jsonl; -resume replays journal entries whose grid
//     key and shard block match the current plan, so a restarted run (or
//     one that lost a worker mid-flight) recomputes only what is missing.
//     Journal lines that carry this grid's key but fail validation (stale
//     shard bounds from an older plan, a damaged payload, a checksum
//     mismatch) are rejected, reported, and recomputed.
//   - Every partial carries an FNV-1a checksum sealed by the worker and
//     verified on receipt, again on journal replay, and once more at merge:
//     a corrupted payload is a retryable worker failure, never a merged lie.
//   - -heartbeat probes each worker's GET /healthz; after -heartbeat-fails
//     consecutive failures the worker is evicted (no new shards) until a
//     probe succeeds again.
//   - -speculate N dispatches a backup copy of any shard in flight longer
//     than N times the rolling mean shard latency (floor -spec-min); the
//     first valid result wins, the loser is discarded.
//   - -token authenticates POST /shard and heartbeat probes against workers
//     started with mtsimd -shard-token; it also gates the -register-addr
//     registrar.
//   - Membership is dynamic: -register-addr serves a registrar workers
//     announce themselves to (mtsimd -announce), and -discover polls a
//     worker address file. Announced workers hold a -lease-ttl lease that
//     every successful heartbeat renews; a worker whose lease expires is
//     retired — its in-flight shards requeue without costing retry budget —
//     and may rejoin later by announcing again. The classic -workers list
//     is static membership: those workers are never retired, only evicted.
//   - With -out, the journal is epoch-fenced: each coordinator claims the
//     next epoch on open, so a replacement coordinator resuming a dead
//     one's run fences the original — if the "dead" coordinator was merely
//     slow and writes again, its append fails and it aborts instead of
//     double-merging (no split-brain).
//   - -tls-ca pins the CA for https workers (mtsimd -tls-cert/-tls-key);
//     -tls-cert/-tls-key serve the registrar itself over TLS.
//
// -bench measures the coordinator's fan-out overlap against calibrated-
// latency in-process stub workers (1 worker vs 2 over the same grid) and
// writes a BENCH-style JSON document; see EXPERIMENTS.md for methodology.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	mtreescale "mtreescale"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := runCtl(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "mtctl:", err)
		os.Exit(1)
	}
}

// runCtl parses flags and runs one coordinator invocation. Progress and
// statistics go to errw; the merged result (when no -out directory is
// given) goes to outw. Tests drive it directly.
func runCtl(ctx context.Context, args []string, outw, errw io.Writer) error {
	fs := flag.NewFlagSet("mtctl", flag.ContinueOnError)
	fs.SetOutput(errw)
	var (
		version = fs.Bool("version", false, "print build information and exit")
		workers = fs.String("workers", "", "comma-separated mtsimd base URLs (e.g. http://h1:8080,http://h2:8080)")
		local   = fs.Bool("local", false, "run the grid in-process through the unsharded engines (the byte-identity reference)")

		kind     = fs.String("kind", "ensemble", "grid kind: curve|shared|ensemble")
		topo     = fs.String("topo", "r100", "standard topology name (see mtsim -list); ensembles regenerate it per network")
		scale    = fs.Float64("scale", 1.0, "topology scale factor in (0,1]")
		seed     = fs.Int64("seed", 1, "protocol seed; the whole sweep is a deterministic function of it")
		topoSeed = fs.Int64("topo-seed", 0, "generation seed for curve/shared grids (0 = the topology's canonical instance)")
		sizes    = fs.String("sizes", "1,2,5,10,20,50", "comma-separated multicast group sizes")
		nsource  = fs.Int("nsource", 40, "source draws per network (the sharding axis for curve/shared grids)")
		nrcvr    = fs.Int("nrcvr", 8, "receiver sets per source and group size")
		nets     = fs.Int("nets", 16, "ensemble width (the sharding axis for -kind ensemble)")
		mode     = fs.String("mode", "distinct", "receiver draw mode: distinct|replacement")
		strategy = fs.String("strategy", "center", "shared-tree core placement: random|source|center")
		nested   = fs.Bool("nested", false, "route curve grids through the incremental nested-growth engine")
		batchbfs = fs.Bool("batchbfs", true, "resolve source trees through the multi-source BFS batch kernel")
		sptcache = fs.Bool("sptcache", true, "reuse shortest-path trees via the process-wide SPT cache")
		large    = fs.Bool("compress", false, "hold topologies in the compressed CSR layout")

		shards     = fs.Int("shards", 0, "number of shards to cut the grid into (0 = 2 per worker)")
		inflight   = fs.Int("inflight", 1, "concurrent shards per worker (bounded fan-out)")
		retries    = fs.Int("retries", 3, "worker-failure budget per shard (429s are backpressure and cost nothing)")
		backoff    = fs.Duration("backoff", 200*time.Millisecond, "base requeue pause after a worker failure, growing exponentially per strike; also the 429 fallback when Retry-After is absent")
		backoffMax = fs.Duration("backoff-max", 0, "cap on the exponential requeue backoff (0 = 10x -backoff)")
		token      = fs.String("token", "", "bearer token sent with every POST /shard and heartbeat probe (matches mtsimd -shard-token); also gates -register-addr")
		tlsCA      = fs.String("tls-ca", "", "CA certificate pool (PEM) trusted for https workers (mtsimd -tls-cert)")

		discover         = fs.String("discover", "", "worker address file (one base URL per line, #-comments) polled for membership; additions join within one poll, removals age out by lease expiry")
		discoverInterval = fs.Duration("discover-interval", time.Second, "poll period for -discover")
		registerAddr     = fs.String("register-addr", "", "serve a registrar on this address: workers announce themselves via POST /register (mtsimd -announce)")
		tlsCert          = fs.String("tls-cert", "", "serve the -register-addr registrar over TLS with this PEM certificate (requires -tls-key)")
		tlsKey           = fs.String("tls-key", "", "PEM private key for -tls-cert")
		leaseTTL         = fs.Duration("lease-ttl", 0, "membership lease for announced workers; a lease no heartbeat or announcement renews retires the worker (0 = 15s)")

		heartbeat = fs.Duration("heartbeat", 5*time.Second, "worker liveness probe interval; evicted workers stop receiving shards until a probe succeeds (0 disables)")
		hbFails   = fs.Int("heartbeat-fails", 3, "consecutive heartbeat failures before a worker is evicted")
		speculate = fs.Float64("speculate", 0, "straggler threshold as a multiple of the rolling mean shard latency; past it a backup copy is dispatched (0 disables)")
		specMin   = fs.Duration("spec-min", time.Second, "floor on the speculation deadline, so short shards are never speculated on noise")
		chaosSpec = fs.String("chaos", "", "coordinator-side fault-injection schedule, e.g. 'journal.write=short@0.2;cluster.post=error#1' (testing only; see internal/chaos)")
		chaosSeed = fs.Int64("chaos-seed", 1, "seed for the -chaos schedule; the same seed reproduces the identical fault sequence")

		outDir = fs.String("out", "", "write merged.json and the checkpoint.jsonl shard journal into this directory")
		resume = fs.Bool("resume", false, "replay <out>/checkpoint.jsonl and recompute only missing shards")
		timing = fs.String("timing", "", "write a BENCH-style timing document for this run to this file")

		bench        = fs.String("bench", "", "run the committed cluster benchmark (1 vs 2 calibrated-latency stub workers) and write BENCH-style JSON to this file")
		benchLatency = fs.Duration("bench-latency", 150*time.Millisecond, "per-shard dispatch latency of the benchmark stub workers")
		benchShards  = fs.Int("bench-shards", 8, "shard count for the benchmark grid")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(outw, "mtctl", mtreescale.VersionString())
		return nil
	}

	grid, err := buildGrid(gridFlags{
		kind: *kind, topo: *topo, scale: *scale, seed: *seed, topoSeed: *topoSeed,
		sizes: *sizes, nsource: *nsource, nrcvr: *nrcvr, nets: *nets,
		mode: *mode, strategy: *strategy, nested: *nested, batchbfs: *batchbfs,
		sptcache: *sptcache, large: *large,
	})
	if err != nil {
		return err
	}

	if *chaosSpec != "" {
		plan, err := mtreescale.ParseChaosPlan(*chaosSpec, *chaosSeed)
		if err != nil {
			return fmt.Errorf("-chaos: %w", err)
		}
		plan.SetLogf(func(format string, args ...any) { fmt.Fprintf(errw, format+"\n", args...) })
		mtreescale.EnableChaos(plan)
		defer mtreescale.DisableChaos()
		fmt.Fprintf(errw, "mtctl: CHAOS ENABLED seed=%d spec=%q\n", *chaosSeed, *chaosSpec)
	}

	if *bench != "" {
		return runBench(ctx, grid, *bench, *benchLatency, *benchShards, *inflight, outw, errw)
	}

	start := time.Now()
	var (
		merged *mtreescale.ClusterMerged
		stats  *mtreescale.ClusterStats
		label  string
	)
	switch {
	case *local:
		label = "LocalRun/" + string(grid.Kind)
		merged, err = mtreescale.RunClusterLocal(ctx, grid)
		if err != nil {
			return err
		}
	case *workers != "" || *discover != "" || *registerAddr != "":
		label = "ClusterRun/" + string(grid.Kind)
		urls := splitList(*workers)
		opt := mtreescale.ClusterOptions{
			Inflight:       *inflight,
			Retries:        *retries,
			Backoff:        *backoff,
			BackoffMax:     *backoffMax,
			Token:          *token,
			Heartbeat:      *heartbeat,
			HeartbeatFails: *hbFails,
			SpecFactor:     *speculate,
			SpecMin:        *specMin,
			LeaseTTL:       *leaseTTL,
			OnEvent:        eventPrinter(errw),
		}
		if *tlsCA != "" {
			client, err := mtreescale.NewClusterTLSClient(*tlsCA)
			if err != nil {
				return fmt.Errorf("-tls-ca: %w", err)
			}
			opt.Client = client
		}
		// Dynamic membership: a shared registry lets the discover poller
		// and/or the registrar endpoint admit workers while the run is in
		// flight; the classic -workers list enters it as static members.
		if *discover != "" || *registerAddr != "" {
			opt.Registry = mtreescale.NewClusterRegistry(*leaseTTL, nil)
		}
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				return err
			}
			opt.JournalPath = filepath.Join(*outDir, mtreescale.CheckpointFile)
			opt.Resume = *resume
		}
		coord, err := mtreescale.NewClusterCoordinator(urls, opt)
		if err != nil {
			return err
		}
		if *discover != "" {
			go coord.Registry().PollDiscoverFile(ctx, *discover, *discoverInterval,
				func(err error) { fmt.Fprintf(errw, "mtctl: discover: %v\n", err) })
		}
		if *registerAddr != "" {
			if (*tlsCert == "") != (*tlsKey == "") {
				return fmt.Errorf("-tls-cert and -tls-key must be given together")
			}
			rln, err := net.Listen("tcp", *registerAddr)
			if err != nil {
				return fmt.Errorf("-register-addr: %w", err)
			}
			rsrv := &http.Server{
				Handler:           coord.Registry().Handler(*token),
				ReadHeaderTimeout: 5 * time.Second,
			}
			defer rsrv.Close()
			if *tlsCert != "" {
				go func() { _ = rsrv.ServeTLS(rln, *tlsCert, *tlsKey) }()
				fmt.Fprintf(errw, "mtctl: registrar on https://%s\n", rln.Addr())
			} else {
				go func() { _ = rsrv.Serve(rln) }()
				fmt.Fprintf(errw, "mtctl: registrar on http://%s\n", rln.Addr())
			}
		}
		n := *shards
		if n <= 0 {
			n = 2 * len(urls)
		}
		if n <= 0 {
			// Pure dynamic membership: no static workers to size from.
			n = 8
		}
		merged, stats, err = coord.Run(ctx, grid, n)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("need -workers, -local or -bench (try -h)")
	}
	elapsed := time.Since(start)

	if stats != nil {
		fmt.Fprintf(errw, "mtctl: %d shards (%d resumed) in %s; %d attempts, %d backoffs, %d requeues\n",
			stats.Planned, stats.Resumed, elapsed.Round(time.Millisecond),
			stats.Attempts, stats.Backoffs429, stats.Requeues)
		if stats.Evictions+stats.Readmissions+stats.Speculations+stats.JournalSkipped > 0 {
			fmt.Fprintf(errw, "mtctl: %d evictions, %d readmissions, %d speculations, %d journal lines skipped\n",
				stats.Evictions, stats.Readmissions, stats.Speculations, stats.JournalSkipped)
		}
		if stats.Joins+stats.Leaves > 0 {
			fmt.Fprintf(errw, "mtctl: %d joins, %d leaves\n", stats.Joins, stats.Leaves)
		}
		for _, w := range sortedKeys(stats.PerWorker) {
			fmt.Fprintf(errw, "mtctl:   %s: %d shards\n", w, stats.PerWorker[w])
		}
	} else {
		fmt.Fprintf(errw, "mtctl: local run in %s\n", elapsed.Round(time.Millisecond))
	}

	if *timing != "" {
		doc := newBenchDoc(benchEntry{Name: label, Procs: 1, Iterations: 1,
			NsPerOp: float64(elapsed.Nanoseconds()), BytesPerOp: -1, AllocsPerOp: -1})
		if err := writeJSONFile(*timing, doc); err != nil {
			return err
		}
	}
	return writeMerged(grid, merged, *outDir, outw)
}

// gridFlags carries the flag values buildGrid translates into a ClusterGrid.
type gridFlags struct {
	kind, topo, sizes, mode, strategy string
	scale                             float64
	seed, topoSeed                    int64
	nsource, nrcvr, nets              int
	nested, batchbfs, sptcache, large bool
}

func buildGrid(f gridFlags) (mtreescale.ClusterGrid, error) {
	var g mtreescale.ClusterGrid
	szs, err := parseSizes(f.sizes)
	if err != nil {
		return g, err
	}
	g = mtreescale.ClusterGrid{
		Kind:     mtreescale.ClusterKind(f.kind),
		Topology: f.topo,
		Seed:     f.topoSeed,
		Scale:    f.scale,
		Sizes:    szs,
		Protocol: mtreescale.Protocol{
			NSource:  f.nsource,
			NRcvr:    f.nrcvr,
			Seed:     f.seed,
			Nested:   f.nested,
			BatchBFS: f.batchbfs,
			SPTCache: f.sptcache,
			Workers:  1,
		},
		LargeGraph: f.large,
	}
	switch f.mode {
	case "distinct":
		g.Mode = mtreescale.Distinct
	case "replacement":
		g.Mode = mtreescale.WithReplacement
	default:
		return g, fmt.Errorf("unknown -mode %q (want distinct|replacement)", f.mode)
	}
	switch f.strategy {
	case "random":
		g.Strategy = mtreescale.CoreRandom
	case "source":
		g.Strategy = mtreescale.CoreSource
	case "center":
		g.Strategy = mtreescale.CoreCenter
	default:
		return g, fmt.Errorf("unknown -strategy %q (want random|source|center)", f.strategy)
	}
	if g.Kind == mtreescale.ClusterEnsemble {
		g.NNetworks = f.nets
	}
	return g, g.Validate()
}

// mergedDoc is the serialized result: the grid (so the file is
// self-describing), its key, and the merged points. Both -local and cluster
// runs serialize through this one shape, which is what makes "byte-identical
// merged output" checkable with cmp(1).
type mergedDoc struct {
	Grid   mtreescale.ClusterGrid   `json:"grid"`
	Key    string                   `json:"key"`
	Result mtreescale.ClusterMerged `json:"result"`
}

func writeMerged(g mtreescale.ClusterGrid, m *mtreescale.ClusterMerged, outDir string, outw io.Writer) error {
	doc := mergedDoc{Grid: g, Key: g.Key(), Result: *m}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if outDir == "" {
		_, err := outw.Write(data)
		return err
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	return mtreescale.WriteFileAtomic(filepath.Join(outDir, "merged.json"), data, 0o644)
}

// eventPrinter renders coordinator progress notifications as one stderr
// line each.
func eventPrinter(errw io.Writer) func(mtreescale.ClusterEvent) {
	return func(ev mtreescale.ClusterEvent) {
		switch ev.Kind {
		case "resume":
			fmt.Fprintf(errw, "mtctl: shard [%d,%d) resumed from journal\n", ev.Lo, ev.Hi)
		case "complete":
			fmt.Fprintf(errw, "mtctl: shard [%d,%d) complete on %s\n", ev.Lo, ev.Hi, ev.Worker)
		case "backoff":
			fmt.Fprintf(errw, "mtctl: %s saturated; backing off %s (shard [%d,%d) requeued)\n",
				ev.Worker, ev.RetryIn, ev.Lo, ev.Hi)
		case "requeue":
			fmt.Fprintf(errw, "mtctl: shard [%d,%d) requeued after %s failed: %v\n",
				ev.Lo, ev.Hi, ev.Worker, ev.Err)
		case "quarantine":
			fmt.Fprintf(errw, "mtctl: %s quarantined for %s\n", ev.Worker, ev.RetryIn)
		case "evict":
			fmt.Fprintf(errw, "mtctl: %s evicted: %v\n", ev.Worker, ev.Err)
		case "readmit":
			fmt.Fprintf(errw, "mtctl: %s readmitted after a successful probe\n", ev.Worker)
		case "join":
			fmt.Fprintf(errw, "mtctl: %s joined the worker pool\n", ev.Worker)
		case "leave":
			fmt.Fprintf(errw, "mtctl: %s left the worker pool (lease expired); its shards requeue\n", ev.Worker)
		case "speculate":
			fmt.Fprintf(errw, "mtctl: shard [%d,%d) straggling on %s; dispatching a backup copy\n",
				ev.Lo, ev.Hi, ev.Worker)
		case "journal-skip":
			fmt.Fprintf(errw, "mtctl: journal line rejected (shard will be recomputed): %v\n", ev.Err)
		}
	}
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func parseSizes(s string) ([]int, error) {
	var out []int
	for _, f := range splitList(s) {
		n, err := strconv.Atoi(f)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -sizes entry %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ { // insertion sort; worker lists are tiny
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// benchDoc mirrors cmd/benchjson's document shape so BENCH_7.json sits
// beside the other committed perf-trajectory points and `benchjson -compare`
// can diff it.
type benchDoc struct {
	Goos       string       `json:"goos,omitempty"`
	Goarch     string       `json:"goarch,omitempty"`
	Benchmarks []benchEntry `json:"benchmarks"`
}

type benchEntry struct {
	Name        string  `json:"name"`
	Procs       int     `json:"procs"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

func newBenchDoc(entries ...benchEntry) benchDoc {
	return benchDoc{Goos: runtime.GOOS, Goarch: runtime.GOARCH, Benchmarks: entries}
}

func writeJSONFile(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return mtreescale.WriteFileAtomic(path, append(data, '\n'), 0o644)
}

// runBench measures coordinator fan-out against calibrated-latency stub
// workers: the same grid dispatched to one worker and then to two, each
// worker sleeping -bench-latency per shard before computing it in-process.
// With per-shard wall clock dominated by the calibrated latency (the
// distributed regime the cluster exists for), the two-worker run overlaps
// dispatches and should land near 2x. The merged bytes of both runs are
// checked against the unsharded local engines before any number is written.
func runBench(ctx context.Context, g mtreescale.ClusterGrid, outFile string, latency time.Duration, nShards, inflight int, outw, errw io.Writer) error {
	want, err := localBytes(ctx, g)
	if err != nil {
		return err
	}

	w1, err := mtreescale.StartClusterStubWorker("bench-0", latency, nil)
	if err != nil {
		return err
	}
	defer w1.Close()
	w2, err := mtreescale.StartClusterStubWorker("bench-1", latency, nil)
	if err != nil {
		return err
	}
	defer w2.Close()

	run := func(urls []string) (time.Duration, error) {
		coord, err := mtreescale.NewClusterCoordinator(urls, mtreescale.ClusterOptions{Inflight: inflight})
		if err != nil {
			return 0, err
		}
		start := time.Now()
		merged, _, err := coord.Run(ctx, g, nShards)
		elapsed := time.Since(start)
		if err != nil {
			return 0, err
		}
		got, err := mergedBytes(g, merged)
		if err != nil {
			return 0, err
		}
		if string(got) != string(want) {
			return 0, fmt.Errorf("merged output of %d-worker run differs from the single-process reference", len(urls))
		}
		return elapsed, nil
	}

	t1, err := run([]string{w1.URL()})
	if err != nil {
		return err
	}
	t2, err := run([]string{w1.URL(), w2.URL()})
	if err != nil {
		return err
	}
	speedup := float64(t1) / float64(t2)

	fmt.Fprintf(errw, "mtctl: bench %s over %d shards, %s/shard latency: 1 worker %s, 2 workers %s (%.2fx); merged bytes identical to single-process\n",
		g.Kind, nShards, latency, t1.Round(time.Millisecond), t2.Round(time.Millisecond), speedup)

	doc := newBenchDoc(
		benchEntry{Name: "ClusterEnsembleWorkers1", Procs: 1, Iterations: 1,
			NsPerOp: float64(t1.Nanoseconds()), BytesPerOp: -1, AllocsPerOp: -1},
		benchEntry{Name: "ClusterEnsembleWorkers2", Procs: 1, Iterations: 1,
			NsPerOp: float64(t2.Nanoseconds()), BytesPerOp: -1, AllocsPerOp: -1},
		// NsPerOp here is the dimensionless t1/t2 speedup ratio, not a time:
		// the scalar the cluster benchmark exists to track.
		benchEntry{Name: "ClusterSpeedupWorkers2", Procs: 1, Iterations: 1,
			NsPerOp: speedup, BytesPerOp: -1, AllocsPerOp: -1},
	)
	if err := writeJSONFile(outFile, doc); err != nil {
		return err
	}
	fmt.Fprintf(outw, "mtctl: wrote %s\n", outFile)
	return nil
}

func localBytes(ctx context.Context, g mtreescale.ClusterGrid) ([]byte, error) {
	m, err := mtreescale.RunClusterLocal(ctx, g)
	if err != nil {
		return nil, err
	}
	return mergedBytes(g, m)
}

func mergedBytes(g mtreescale.ClusterGrid, m *mtreescale.ClusterMerged) ([]byte, error) {
	return json.MarshalIndent(mergedDoc{Grid: g, Key: g.Key(), Result: *m}, "", "  ")
}
