// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON document on stdout — the format of the repo's
// committed BENCH_N.json perf-trajectory points (see `make bench`) — and
// compares two such documents for regressions.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson -o BENCH_1.json
//	benchjson -compare BENCH_1.json BENCH_2.json            # exit 1 on >10% regression
//	benchjson -compare -threshold 5 BENCH_1.json BENCH_2.json
//
// -o writes the document atomically (temp file + rename) instead of stdout,
// so an interrupted run never leaves a truncated BENCH_*.json behind.
// Malformed, empty, or truncated input files fail with a one-line error and
// a nonzero exit.
//
// Compare prints a per-benchmark ns/op delta table (negative = faster) and
// exits nonzero when any benchmark present in both files slowed down by more
// than the threshold percentage. Benchmarks only in one file are reported
// but never fail the comparison.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	mtreescale "mtreescale"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the benchmark identifier without the -P GOMAXPROCS suffix.
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix (1 when absent).
	Procs int `json:"procs"`
	// Iterations is the measured b.N.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the reported ns/op.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp is the reported B/op (requires -benchmem; -1 when absent).
	BytesPerOp int64 `json:"bytes_per_op"`
	// AllocsPerOp is the reported allocs/op (requires -benchmem; -1 when
	// absent).
	AllocsPerOp int64 `json:"allocs_per_op"`
}

// Doc is the emitted JSON document.
type Doc struct {
	// Goos/Goarch/CPU echo the bench header when present.
	Goos   string `json:"goos,omitempty"`
	Goarch string `json:"goarch,omitempty"`
	CPU    string `json:"cpu,omitempty"`
	// Benchmarks lists every parsed result in input order.
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	compare := flag.Bool("compare", false, "compare two BENCH_*.json files: benchjson -compare old.json new.json")
	threshold := flag.Float64("threshold", 10, "ns/op slowdown percentage treated as a regression in -compare mode")
	outPath := flag.String("o", "", "write the JSON document to this path atomically instead of stdout")
	flag.Parse()
	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two files: old.json new.json")
			os.Exit(2)
		}
		regressed, err := runCompare(os.Stdout, flag.Arg(0), flag.Arg(1), *threshold)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		if regressed {
			os.Exit(1)
		}
		return
	}
	doc, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := writeDocTo(*outPath, doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// writeDocTo emits the document to stdout, or — with -o — atomically to a
// file, so a crash or Ctrl-C never leaves a truncated BENCH_*.json.
func writeDocTo(path string, doc *Doc) error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return err
	}
	if path == "" {
		_, err := os.Stdout.Write(buf.Bytes())
		return err
	}
	return mtreescale.WriteFileAtomic(path, buf.Bytes(), 0o644)
}

// readDoc loads one committed BENCH_*.json document, rejecting empty,
// malformed, or benchmark-less files with a one-line diagnosis — a
// truncated document (interrupted `make bench`) must fail loudly, not
// compare as an empty baseline.
func readDoc(path string) (*Doc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(bytes.TrimSpace(data)) == 0 {
		return nil, fmt.Errorf("%s: empty file (interrupted or failed bench run?)", path)
	}
	doc := &Doc{}
	if err := json.Unmarshal(data, doc); err != nil {
		return nil, fmt.Errorf("%s: malformed JSON: %v", path, err)
	}
	if err := validateDoc(doc); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return doc, nil
}

// validateDoc is the shared document invariant: every doc accepted by
// readDoc AND every doc produced by parse satisfies it, so a parse→write→
// read round-trip can never fail halfway.
func validateDoc(doc *Doc) error {
	if len(doc.Benchmarks) == 0 {
		return fmt.Errorf("no benchmarks in document")
	}
	for _, b := range doc.Benchmarks {
		if b.Name == "" {
			return fmt.Errorf("benchmark entry with empty name")
		}
	}
	return nil
}

// runCompare prints the per-benchmark ns/op delta table and reports whether
// any shared benchmark regressed beyond the threshold percentage.
func runCompare(w io.Writer, oldPath, newPath string, threshold float64) (bool, error) {
	oldDoc, err := readDoc(oldPath)
	if err != nil {
		return false, err
	}
	newDoc, err := readDoc(newPath)
	if err != nil {
		return false, err
	}
	oldBy := make(map[string]Benchmark, len(oldDoc.Benchmarks))
	for _, b := range oldDoc.Benchmarks {
		oldBy[b.Name] = b
	}
	fmt.Fprintf(w, "%-40s %14s %14s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	regressed := false
	seen := make(map[string]bool, len(newDoc.Benchmarks))
	for _, nb := range newDoc.Benchmarks {
		seen[nb.Name] = true
		ob, ok := oldBy[nb.Name]
		if !ok {
			fmt.Fprintf(w, "%-40s %14s %14.0f %9s\n", nb.Name, "-", nb.NsPerOp, "new")
			continue
		}
		if ob.NsPerOp <= 0 {
			return false, fmt.Errorf("%s: %s has non-positive ns/op", oldPath, nb.Name)
		}
		delta := (nb.NsPerOp - ob.NsPerOp) / ob.NsPerOp * 100
		mark := ""
		if delta > threshold {
			mark = "  REGRESSION"
			regressed = true
		}
		fmt.Fprintf(w, "%-40s %14.0f %14.0f %+8.1f%%%s\n", nb.Name, ob.NsPerOp, nb.NsPerOp, delta, mark)
	}
	for _, ob := range oldDoc.Benchmarks {
		if !seen[ob.Name] {
			fmt.Fprintf(w, "%-40s %14.0f %14s %9s\n", ob.Name, ob.NsPerOp, "-", "dropped")
		}
	}
	if regressed {
		fmt.Fprintf(w, "FAIL: at least one benchmark slowed down more than %.0f%%\n", threshold)
	}
	return regressed, nil
}

func parse(r io.Reader) (*Doc, error) {
	doc := &Doc{Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseLine(line)
			if ok {
				doc.Benchmarks = append(doc.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(doc.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines found on stdin")
	}
	return doc, nil
}

// parseLine parses one result line, e.g.
//
//	BenchmarkMeasureCurve-8   100   11183044 ns/op   75060 B/op   913 allocs/op
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !isNumber(fields[1]) {
		return Benchmark{}, false
	}
	b := Benchmark{Procs: 1, BytesPerOp: -1, AllocsPerOp: -1}
	b.Name = fields[0]
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Procs = p
			b.Name = b.Name[:i]
		}
	}
	b.Name = strings.TrimPrefix(b.Name, "Benchmark")
	if b.Name == "" {
		// A bare "Benchmark" (or "Benchmark-8") line would produce a doc
		// that readDoc rejects on the next run.
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b.Iterations = iters
	// Remaining fields come in (value, unit) pairs. ParseFloat accepts
	// "NaN" and "Inf", which JSON cannot encode — reject them here or the
	// document write fails long after the bad line scrolled by.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
			return Benchmark{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = int64(v)
		case "allocs/op":
			b.AllocsPerOp = int64(v)
		}
	}
	if b.NsPerOp <= 0 {
		return Benchmark{}, false
	}
	return b, true
}

func isNumber(s string) bool {
	_, err := strconv.ParseInt(s, 10, 64)
	return err == nil
}
