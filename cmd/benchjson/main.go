// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON document on stdout — the format of the repo's
// committed BENCH_N.json perf-trajectory points (see `make bench`).
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson > BENCH_1.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the benchmark identifier without the -P GOMAXPROCS suffix.
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix (1 when absent).
	Procs int `json:"procs"`
	// Iterations is the measured b.N.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the reported ns/op.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp is the reported B/op (requires -benchmem; -1 when absent).
	BytesPerOp int64 `json:"bytes_per_op"`
	// AllocsPerOp is the reported allocs/op (requires -benchmem; -1 when
	// absent).
	AllocsPerOp int64 `json:"allocs_per_op"`
}

// Doc is the emitted JSON document.
type Doc struct {
	// Goos/Goarch/CPU echo the bench header when present.
	Goos   string `json:"goos,omitempty"`
	Goarch string `json:"goarch,omitempty"`
	CPU    string `json:"cpu,omitempty"`
	// Benchmarks lists every parsed result in input order.
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	doc, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func parse(r io.Reader) (*Doc, error) {
	doc := &Doc{Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseLine(line)
			if ok {
				doc.Benchmarks = append(doc.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(doc.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines found on stdin")
	}
	return doc, nil
}

// parseLine parses one result line, e.g.
//
//	BenchmarkMeasureCurve-8   100   11183044 ns/op   75060 B/op   913 allocs/op
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !isNumber(fields[1]) {
		return Benchmark{}, false
	}
	b := Benchmark{Procs: 1, BytesPerOp: -1, AllocsPerOp: -1}
	b.Name = fields[0]
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Procs = p
			b.Name = b.Name[:i]
		}
	}
	b.Name = strings.TrimPrefix(b.Name, "Benchmark")
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b.Iterations = iters
	// Remaining fields come in (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = int64(v)
		case "allocs/op":
			b.AllocsPerOp = int64(v)
		}
	}
	if b.NsPerOp == 0 {
		return Benchmark{}, false
	}
	return b, true
}

func isNumber(s string) bool {
	_, err := strconv.ParseInt(s, 10, 64)
	return err == nil
}
