package main

import (
	"strings"
	"testing"
)

const canned = `goos: linux
goarch: amd64
pkg: mtreescale
cpu: AMD EPYC 7B13
BenchmarkMeasureCurve-8           	     100	  11183044 ns/op	   75060 B/op	     913 allocs/op
BenchmarkMeasureCurveNested-8     	     500	   2210033 ns/op	   12345 B/op	      97 allocs/op
BenchmarkTopologyGeneration/arpa-8	    2000	    523441 ns/op
PASS
ok  	mtreescale	12.345s
`

func TestParseCanned(t *testing.T) {
	doc, err := parse(strings.NewReader(canned))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.Goarch != "amd64" || doc.CPU != "AMD EPYC 7B13" {
		t.Fatalf("header: %+v", doc)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("want 3 benchmarks, got %d: %+v", len(doc.Benchmarks), doc.Benchmarks)
	}
	b := doc.Benchmarks[0]
	if b.Name != "MeasureCurve" || b.Procs != 8 || b.Iterations != 100 {
		t.Fatalf("first benchmark: %+v", b)
	}
	if b.NsPerOp != 11183044 || b.BytesPerOp != 75060 || b.AllocsPerOp != 913 {
		t.Fatalf("first benchmark metrics: %+v", b)
	}
	if doc.Benchmarks[1].Name != "MeasureCurveNested" {
		t.Fatalf("second benchmark: %+v", doc.Benchmarks[1])
	}
	// No -benchmem columns on the sub-benchmark line.
	sub := doc.Benchmarks[2]
	if sub.Name != "TopologyGeneration/arpa" || sub.BytesPerOp != -1 || sub.AllocsPerOp != -1 {
		t.Fatalf("sub-benchmark: %+v", sub)
	}
}

func TestParseEmpty(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\nok mtreescale 0.1s\n")); err == nil {
		t.Fatal("no benchmark lines must error")
	}
}

func TestParseSkipsNonResultBenchmarkLines(t *testing.T) {
	// `-v` runs interleave RUN/PASS markers; only result lines must parse.
	in := `BenchmarkMeasureCurve
BenchmarkMeasureCurve-8   	     100	  11183044 ns/op
`
	doc, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 1 || doc.Benchmarks[0].Iterations != 100 {
		t.Fatalf("benchmarks: %+v", doc.Benchmarks)
	}
}
