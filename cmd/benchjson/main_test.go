package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const canned = `goos: linux
goarch: amd64
pkg: mtreescale
cpu: AMD EPYC 7B13
BenchmarkMeasureCurve-8           	     100	  11183044 ns/op	   75060 B/op	     913 allocs/op
BenchmarkMeasureCurveNested-8     	     500	   2210033 ns/op	   12345 B/op	      97 allocs/op
BenchmarkTopologyGeneration/arpa-8	    2000	    523441 ns/op
PASS
ok  	mtreescale	12.345s
`

func TestParseCanned(t *testing.T) {
	doc, err := parse(strings.NewReader(canned))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.Goarch != "amd64" || doc.CPU != "AMD EPYC 7B13" {
		t.Fatalf("header: %+v", doc)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("want 3 benchmarks, got %d: %+v", len(doc.Benchmarks), doc.Benchmarks)
	}
	b := doc.Benchmarks[0]
	if b.Name != "MeasureCurve" || b.Procs != 8 || b.Iterations != 100 {
		t.Fatalf("first benchmark: %+v", b)
	}
	if b.NsPerOp != 11183044 || b.BytesPerOp != 75060 || b.AllocsPerOp != 913 {
		t.Fatalf("first benchmark metrics: %+v", b)
	}
	if doc.Benchmarks[1].Name != "MeasureCurveNested" {
		t.Fatalf("second benchmark: %+v", doc.Benchmarks[1])
	}
	// No -benchmem columns on the sub-benchmark line.
	sub := doc.Benchmarks[2]
	if sub.Name != "TopologyGeneration/arpa" || sub.BytesPerOp != -1 || sub.AllocsPerOp != -1 {
		t.Fatalf("sub-benchmark: %+v", sub)
	}
}

func TestParseEmpty(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\nok mtreescale 0.1s\n")); err == nil {
		t.Fatal("no benchmark lines must error")
	}
}

func TestParseSkipsNonResultBenchmarkLines(t *testing.T) {
	// `-v` runs interleave RUN/PASS markers; only result lines must parse.
	in := `BenchmarkMeasureCurve
BenchmarkMeasureCurve-8   	     100	  11183044 ns/op
`
	doc, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 1 || doc.Benchmarks[0].Iterations != 100 {
		t.Fatalf("benchmarks: %+v", doc.Benchmarks)
	}
}

func writeDoc(t *testing.T, dir, name string, benches []Benchmark) string {
	t.Helper()
	doc := Doc{Benchmarks: benches}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareNoRegression(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeDoc(t, dir, "old.json", []Benchmark{
		{Name: "MeasureCurve", NsPerOp: 1000},
		{Name: "BFS50k", NsPerOp: 2000},
	})
	newPath := writeDoc(t, dir, "new.json", []Benchmark{
		{Name: "MeasureCurve", NsPerOp: 1050}, // +5%: within the 10% gate
		{Name: "BFS50k", NsPerOp: 1400},       // -30%: improvement
		{Name: "BFS50kDense", NsPerOp: 900},   // new benchmark
	})
	var buf strings.Builder
	regressed, err := runCompare(&buf, oldPath, newPath, 10)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatalf("unexpected regression verdict:\n%s", buf.String())
	}
	out := buf.String()
	for _, want := range []string{"MeasureCurve", "BFS50k", "new", "+5.0%", "-30.0%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCompareFlagsRegression(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeDoc(t, dir, "old.json", []Benchmark{
		{Name: "MeasureCurve", NsPerOp: 1000},
		{Name: "Dropped", NsPerOp: 10},
	})
	newPath := writeDoc(t, dir, "new.json", []Benchmark{
		{Name: "MeasureCurve", NsPerOp: 1201}, // +20.1%
	})
	var buf strings.Builder
	regressed, err := runCompare(&buf, oldPath, newPath, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Fatalf("20%% slowdown must trip the 10%% gate:\n%s", buf.String())
	}
	out := buf.String()
	for _, want := range []string{"REGRESSION", "FAIL", "dropped"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// A looser threshold accepts the same pair.
	buf.Reset()
	regressed, err = runCompare(&buf, oldPath, newPath, 25)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatalf("20%% slowdown must pass a 25%% gate:\n%s", buf.String())
	}
}

func TestReadDocRejectsBadFiles(t *testing.T) {
	dir := t.TempDir()
	valid, err := json.Marshal(Doc{Benchmarks: []Benchmark{{Name: "X", NsPerOp: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		content string
		wantErr string // substring of the one-line diagnosis; "" = no error
	}{
		{"valid", string(valid), ""},
		{"empty", "", "empty file"},
		{"whitespace-only", "  \n\t\n", "empty file"},
		{"malformed", "{not json", "malformed JSON"},
		{"truncated", string(valid[:len(valid)/2]), "malformed JSON"},
		{"no-benchmarks-object", "{}", "no benchmarks"},
		{"empty-benchmark-list", `{"benchmarks":[]}`, "no benchmarks"},
		{"null-benchmark-list", `{"benchmarks":null}`, "no benchmarks"},
		{"nameless-benchmark", `{"benchmarks":[{"ns_per_op":5}]}`, "empty name"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			path := filepath.Join(dir, c.name+".json")
			if err := os.WriteFile(path, []byte(c.content), 0o644); err != nil {
				t.Fatal(err)
			}
			doc, err := readDoc(path)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("valid document rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("accepted bad document, got %+v", doc)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %q does not mention %q", err, c.wantErr)
			}
			if !strings.Contains(err.Error(), path) {
				t.Fatalf("error %q does not name the file", err)
			}
			if strings.Contains(err.Error(), "\n") {
				t.Fatalf("diagnosis is not one line: %q", err)
			}
		})
	}
	if _, err := readDoc(filepath.Join(dir, "does-not-exist.json")); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestWriteDocToAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	doc := &Doc{Goos: "linux", Benchmarks: []Benchmark{{Name: "X", NsPerOp: 1}}}
	if err := writeDocTo(path, doc); err != nil {
		t.Fatal(err)
	}
	back, err := readDoc(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Goos != "linux" || len(back.Benchmarks) != 1 {
		t.Fatalf("round trip: %+v", back)
	}
	// No temp droppings from the atomic write.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries, want just bench.json", len(entries))
	}
}

func TestCompareErrors(t *testing.T) {
	dir := t.TempDir()
	good := writeDoc(t, dir, "good.json", []Benchmark{{Name: "X", NsPerOp: 1}})
	var buf strings.Builder
	if _, err := runCompare(&buf, filepath.Join(dir, "missing.json"), good, 10); err == nil {
		t.Fatal("missing old file must error")
	}
	if _, err := runCompare(&buf, good, filepath.Join(dir, "missing.json"), 10); err == nil {
		t.Fatal("missing new file must error")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := runCompare(&buf, bad, good, 10); err == nil {
		t.Fatal("malformed JSON must error")
	}
	zero := writeDoc(t, dir, "zero.json", []Benchmark{{Name: "X", NsPerOp: 0}})
	if _, err := runCompare(&buf, zero, good, 10); err == nil {
		t.Fatal("non-positive old ns/op must error")
	}
}
