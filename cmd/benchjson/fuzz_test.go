package main

import (
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// FuzzParseBenchOutput feeds arbitrary text through the bench-output parser.
// The invariant under test: any document parse accepts satisfies validateDoc
// and JSON-encodes cleanly, so a parse→write→compare pipeline can never fail
// downstream of a successful parse. (This fuzz target caught two real bugs:
// a bare "Benchmark" line produced an empty benchmark name that readDoc
// rejects, and ParseFloat accepted NaN/Inf values that json.Marshal cannot
// encode.)
func FuzzParseBenchOutput(f *testing.F) {
	f.Add("goos: linux\ngoarch: amd64\nBenchmarkMeasureCurve-8 100 11183044 ns/op 75060 B/op 913 allocs/op\n")
	f.Add("BenchmarkX 5 3.5 ns/op\n")
	f.Add("Benchmark 100 5 ns/op\n")       // empty name after prefix strip
	f.Add("Benchmark-8 100 5 ns/op\n")     // empty name with procs suffix
	f.Add("BenchmarkY 10 NaN ns/op\n")     // JSON-unencodable value
	f.Add("BenchmarkY 10 +Inf ns/op\n")    //
	f.Add("BenchmarkZ 10 -4 ns/op\n")      // non-positive ns/op
	f.Add("BenchmarkW 10 0.0001 ns/op\n")  //
	f.Add("cpu: weird   \nBenchmarkQ bad") //
	f.Add(strings.Repeat("B", 2000) + "\n")
	f.Fuzz(func(t *testing.T, input string) {
		doc, err := parse(strings.NewReader(input))
		if err != nil {
			return
		}
		if verr := validateDoc(doc); verr != nil {
			t.Fatalf("parse accepted a doc readDoc would reject: %v", verr)
		}
		for _, b := range doc.Benchmarks {
			if !(b.NsPerOp > 0) || math.IsInf(b.NsPerOp, 0) {
				t.Fatalf("benchmark %q accepted with ns/op = %v", b.Name, b.NsPerOp)
			}
		}
		if err := writeDocTo(filepath.Join(t.TempDir(), "doc.json"), doc); err != nil {
			t.Fatalf("parsed doc does not encode: %v", err)
		}
	})
}

// FuzzCompareDocs drives the -compare input path with two arbitrary files:
// whatever the bytes, runCompare must either error cleanly or finish the
// comparison — never panic, never divide by a stale zero.
func FuzzCompareDocs(f *testing.F) {
	good := `{"benchmarks":[{"name":"X","procs":1,"iterations":10,"ns_per_op":100,"bytes_per_op":-1,"allocs_per_op":-1}]}`
	f.Add(good, good)
	f.Add(good, `{"benchmarks":[{"name":"X","ns_per_op":200}]}`)
	f.Add(`{"benchmarks":[{"name":"X","ns_per_op":0}]}`, good) // zero old ns/op
	f.Add(``, good)
	f.Add(`{`, good)
	f.Add(`{"benchmarks":[]}`, good)
	f.Add(`{"benchmarks":[{"name":"","ns_per_op":5}]}`, good)
	f.Add(good, `[1,2,3]`)
	f.Fuzz(func(t *testing.T, oldJSON, newJSON string) {
		dir := t.TempDir()
		oldPath := filepath.Join(dir, "old.json")
		newPath := filepath.Join(dir, "new.json")
		if err := os.WriteFile(oldPath, []byte(oldJSON), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(newPath, []byte(newJSON), 0o644); err != nil {
			t.Fatal(err)
		}
		// Either outcome is fine; reaching it without a panic is the test.
		_, _ = runCompare(io.Discard, oldPath, newPath, 10)
	})
}
