// Command treecalc runs the paper's §2 Monte-Carlo protocol on one topology
// and prints the L(m) curve, the Chuang-Sirbu fit, and the PST fit.
//
// Usage:
//
//	treecalc -name ts1000 -nsource 100 -nrcvr 100
//	treecalc -name arpa -sizes 1,2,5,10,20,40
//	treecalc < topology.graph
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	mtreescale "mtreescale"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "treecalc:", err)
		os.Exit(1)
	}
}

func run(args []string, in io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("treecalc", flag.ContinueOnError)
	var (
		name    = fs.String("name", "", "standard topology name (default: edge list on stdin)")
		scale   = fs.Float64("scale", 1, "scale for standard topologies")
		nsource = fs.Int("nsource", 100, "source draws (paper: 100)")
		nrcvr   = fs.Int("nrcvr", 100, "receiver sets per source and size (paper: 100)")
		seed    = fs.Int64("seed", 1, "protocol seed")
		points  = fs.Int("points", 16, "log-spaced group sizes")
		sizes   = fs.String("sizes", "", "explicit comma-separated group sizes (overrides -points)")
		repl    = fs.Bool("replacement", false, "draw receivers with replacement (L̄(n) protocol)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var g *mtreescale.Topology
	var err error
	if *name != "" {
		g, err = mtreescale.GenerateTopologySeeded(*name, 0, *scale)
	} else {
		g, err = mtreescale.ReadTopology(in)
	}
	if err != nil {
		return err
	}

	var ms []int
	if *sizes != "" {
		for _, f := range strings.Split(*sizes, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				return fmt.Errorf("bad size %q: %v", f, err)
			}
			ms = append(ms, v)
		}
	} else {
		ms = mtreescale.LogSpacedSizes(g.N()-1, *points)
	}
	mode := mtreescale.Distinct
	if *repl {
		mode = mtreescale.WithReplacement
	}
	pts, err := mtreescale.MeasureCurve(g, ms, mode, mtreescale.Protocol{
		NSource: *nsource, NRcvr: *nrcvr, Seed: *seed,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "topology %s: N=%d M=%d (mode: %s)\n", g.Name(), g.N(), g.M(), mode)
	fmt.Fprintln(out, "size\tL\tū\tL/ū\t±SE\tefficiency")
	curve := mtreescale.CurveFromPoints(pts)
	for i, pt := range pts {
		fmt.Fprintf(out, "%d\t%.2f\t%.3f\t%.3f\t%.3f\t%.1f%%\n",
			pt.Size, pt.MeanLinks, pt.MeanUnicast, pt.MeanRatio, pt.RatioStdErr,
			100*curve.Efficiency(i))
	}
	if fit, err := curve.FitChuangSirbu(); err == nil {
		fmt.Fprintf(out, "Chuang-Sirbu fit: L/ū ≈ %.3f·m^%.3f (R²=%.4f, SE=%.4f) — paper: exponent ≈ 0.8\n",
			fit.Constant, fit.Exponent, fit.R2, fit.ExponentStdErr)
	}
	if fit, err := curve.FitPST(); err == nil {
		impl := ""
		if !math.IsNaN(fit.ImpliedLnK) && fit.ImpliedLnK > 0 {
			impl = fmt.Sprintf(", implied k ≈ %.2f", math.Exp(fit.ImpliedLnK))
		}
		fmt.Fprintf(out, "PST fit: L/(n·ū) ≈ %.4f %+.4f·ln n (R²=%.4f%s)\n", fit.A, fit.B, fit.R2, impl)
	}
	return nil
}
