package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestTreecalcExplicitSizes(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-name", "arpa", "-nsource", "5", "-nrcvr", "5", "-sizes", "1,2,5,10"}, nil, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"topology arpa", "Chuang-Sirbu fit", "PST fit", "efficiency"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}

func TestTreecalcReplacementMode(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-name", "arpa", "-nsource", "3", "-nrcvr", "3", "-points", "5", "-replacement"}, nil, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "with-replacement") {
		t.Fatalf("mode missing:\n%s", buf.String())
	}
}

func TestTreecalcBadSize(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-name", "arpa", "-sizes", "1,zap"}, nil, &buf); err == nil {
		t.Fatal("bad size must error")
	}
	if err := run([]string{"-name", "arpa", "-nsource", "1", "-nrcvr", "1", "-sizes", "100"}, nil, &buf); err == nil {
		t.Fatal("m > population must error")
	}
}

func TestTreecalcBadName(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-name", "bogus"}, nil, &buf); err == nil {
		t.Fatal("bad name must error")
	}
}

func TestTreecalcFromStdin(t *testing.T) {
	in := strings.NewReader("name p6\nnodes 6\n0 1\n1 2\n2 3\n3 4\n4 5\n")
	var buf bytes.Buffer
	if err := run([]string{"-nsource", "3", "-nrcvr", "3", "-sizes", "1,3"}, in, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "topology p6") {
		t.Fatalf("stdin topology not parsed:\n%s", buf.String())
	}
}
