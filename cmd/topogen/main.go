// Command topogen generates network topologies in the textual edge-list
// format.
//
// Usage:
//
//	topogen -name ts1000 > ts1000.graph          # a Table 1 standard topology
//	topogen -name ts1000 -seed 7 -scale 0.5      # reseeded / rescaled
//	topogen -kind kary -k 2 -depth 10            # a binary tree
//	topogen -kind gnp -n 500 -p 0.02             # G(n,p) giant component
//	topogen -kind waxman -n 500 -alpha .4 -beta .2
//	topogen -kind ts -n 1000 -deg 3.6            # transit-stub
//	topogen -kind tiers -n 5000                  # TIERS
//	topogen -kind pa -n 4000 -edges 2 -shortcuts 100
//	topogen -name arpa -stats                    # print metrics instead
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	mtreescale "mtreescale"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "topogen:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("topogen", flag.ContinueOnError)
	var (
		name      = fs.String("name", "", "standard topology name (see -listnames)")
		listNames = fs.Bool("listnames", false, "list standard topology names and exit")
		kind      = fs.String("kind", "", "generator: kary|gnp|waxman|ts|tiers|pa")
		seed      = fs.Int64("seed", 1, "generator seed (0 = canonical for -name)")
		scale     = fs.Float64("scale", 1, "scale for standard topologies, (0,1]")
		n         = fs.Int("n", 1000, "node count")
		k         = fs.Int("k", 2, "k-ary branching factor")
		depth     = fs.Int("depth", 10, "k-ary tree depth")
		p         = fs.Float64("p", 0.01, "G(n,p) edge probability")
		alpha     = fs.Float64("alpha", 0.4, "Waxman alpha")
		beta      = fs.Float64("beta", 0.2, "Waxman beta")
		deg       = fs.Float64("deg", 3.6, "transit-stub target average degree")
		edges     = fs.Int("edges", 2, "preferential attachment edges per node")
		shortcuts = fs.Int("shortcuts", 0, "preferential attachment extra shortcuts")
		stats     = fs.Bool("stats", false, "print metrics instead of the edge list")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *listNames {
		for _, nm := range mtreescale.StandardTopologies() {
			fmt.Fprintln(out, nm)
		}
		return nil
	}

	var g *mtreescale.Topology
	var err error
	switch {
	case *name != "":
		s := *seed
		if s == 1 {
			s = 0 // canonical
		}
		g, err = mtreescale.GenerateTopologySeeded(*name, s, *scale)
	case *kind == "kary":
		var tr *mtreescale.KAryTree
		tr, err = mtreescale.NewKAryTree(*k, *depth)
		if err == nil {
			g = tr.Graph
		}
	case *kind == "gnp":
		g, err = mtreescale.GNP(*n, *p, *seed)
	case *kind == "waxman":
		g, err = mtreescale.Waxman(*n, *alpha, *beta, *seed)
	case *kind == "ts":
		g, err = mtreescale.TransitStubSized(*n, *deg, *seed)
	case *kind == "tiers":
		g, err = mtreescale.TiersSized(*n, *seed)
	case *kind == "pa":
		g, err = mtreescale.PreferentialAttachment(*n, *edges, *shortcuts, *seed)
	default:
		fs.Usage()
		return fmt.Errorf("need -name or -kind")
	}
	if err != nil {
		return err
	}
	if *stats {
		m := mtreescale.ComputeMetrics(g, 100, *seed)
		fmt.Fprintln(out, m.String())
		return nil
	}
	return mtreescale.WriteTopology(out, g)
}
