package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestListNames(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-listnames"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ts1000") || !strings.Contains(buf.String(), "arpa") {
		t.Fatalf("names:\n%s", buf.String())
	}
}

func TestNoArgs(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err == nil {
		t.Fatal("missing -name/-kind must error")
	}
}

func TestStandardTopologyEdgeList(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-name", "arpa"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "name arpa") || !strings.Contains(out, "nodes 47") {
		t.Fatalf("edge list:\n%s", out[:100])
	}
}

func TestStats(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-name", "arpa", "-stats"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "nodes=47") {
		t.Fatalf("stats:\n%s", buf.String())
	}
}

func TestAllKinds(t *testing.T) {
	cases := [][]string{
		{"-kind", "kary", "-k", "3", "-depth", "4"},
		{"-kind", "gnp", "-n", "100", "-p", "0.05"},
		{"-kind", "waxman", "-n", "100"},
		{"-kind", "ts", "-n", "200", "-deg", "3.6"},
		{"-kind", "tiers", "-n", "300"},
		{"-kind", "pa", "-n", "200", "-edges", "2", "-shortcuts", "10"},
	}
	for _, args := range cases {
		var buf bytes.Buffer
		if err := run(args, &buf); err != nil {
			t.Fatalf("%v: %v", args, err)
		}
		if !strings.Contains(buf.String(), "nodes ") {
			t.Fatalf("%v: no node count emitted", args)
		}
	}
}

func TestBadKindParams(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-kind", "kary", "-k", "0"}, &buf); err == nil {
		t.Fatal("k=0 must error")
	}
	if err := run([]string{"-name", "bogus"}, &buf); err == nil {
		t.Fatal("bad name must error")
	}
}
