package main

import (
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"sync"
	"time"

	mtreescale "mtreescale"
	"mtreescale/internal/chaos"
	"mtreescale/internal/serve"
)

// config holds every tunable of the daemon. Tests construct it directly;
// runDaemon fills it from flags.
type config struct {
	addr    string
	dataDir string

	// workerID names this worker in the X-Mtsimd-Worker response header, so
	// a cluster operator can tell which worker answered what. Empty means
	// the hostname (falling back to the listen address).
	workerID string

	maxActive int
	maxWait   int

	deadline        time.Duration
	deadlineCeiling time.Duration
	drainBudget     time.Duration
	shedRetryAfter  time.Duration

	maxHeap uint64

	// batchBFS resolves source trees through the MS-BFS batch kernel in
	// every computed experiment (output is byte-identical either way).
	batchBFS bool

	// compress holds topologies in the compressed CSR layout (output is
	// byte-identical either way; ~half the adjacency bytes). The
	// large-graph memory mode.
	compress bool

	// churnCap, when nonzero, overrides the profile's degree cap for the
	// churn experiments' bounded variant (≥ 2).
	churnCap int

	// churnSession, when set, overrides the profile's session-length
	// distribution for the churn experiments (exp|pareto|fixed).
	churnSession string

	quarBase time.Duration
	quarMax  time.Duration

	readHeaderTimeout time.Duration

	// shardToken, when set, gates POST /shard behind "Authorization:
	// Bearer <token>" (constant-time compare). Health and curve endpoints
	// stay open: liveness must be probeable, and /curve is the interactive
	// read path. Coordinators pass the token via mtctl -token.
	shardToken string

	// tlsCert/tlsKey, when both set, serve every endpoint over TLS;
	// coordinators reach the worker with mtctl -tls-ca pointed at the CA
	// that signed the certificate.
	tlsCert string
	tlsKey  string
}

func defaultConfig() config {
	active := runtime.GOMAXPROCS(0)
	return config{
		addr:              "127.0.0.1:8080",
		maxActive:         active,
		maxWait:           2 * active,
		deadline:          30 * time.Second,
		deadlineCeiling:   5 * time.Minute,
		drainBudget:       30 * time.Second,
		shedRetryAfter:    time.Second,
		quarBase:          10 * time.Second,
		quarMax:           5 * time.Minute,
		readHeaderTimeout: 5 * time.Second,
		batchBFS:          true,
	}
}

// cacheKey identifies one precomputed curve: the profile's checkpoint key
// plus the experiment id.
type cacheKey struct {
	profile string
	id      string
}

// resultEntry is a served result: the marshaled Result bytes (written to the
// wire verbatim, so a replayed answer is byte-identical to the fresh one)
// plus where they came from.
type resultEntry struct {
	body   []byte
	source string // "fresh" | "cache" | "checkpoint"
}

// server is the mtsimd serving state: the admission queue bounding the
// compute pool, the drain controller, the quarantine registry shared with
// the experiment scheduler, and the result cache backed by the checkpoint
// journal.
type server struct {
	cfg  config
	logf func(format string, args ...any)

	queue *serve.Queue
	drain *serve.Drainer
	quar  *serve.Quarantine

	// baseCtx is cancelled when the drain budget expires, aborting any
	// in-flight computation that outlived the graceful window.
	baseCtx    context.Context
	cancelBase context.CancelFunc

	mu     sync.Mutex
	cache  map[cacheKey]resultEntry
	ck     *mtreescale.Checkpointer
	closed bool
}

func newServer(cfg config, logf func(format string, args ...any)) (*server, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if cfg.workerID == "" {
		if host, err := os.Hostname(); err == nil && host != "" {
			cfg.workerID = host
		} else {
			cfg.workerID = cfg.addr
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &server{
		cfg:        cfg,
		logf:       logf,
		queue:      serve.NewQueue(cfg.maxActive, cfg.maxWait),
		drain:      &serve.Drainer{},
		quar:       serve.NewQuarantine(cfg.quarBase, cfg.quarMax),
		baseCtx:    ctx,
		cancelBase: cancel,
		cache:      map[cacheKey]resultEntry{},
	}
	if cfg.dataDir == "" {
		return s, nil
	}
	all, err := mtreescale.LoadAllCheckpoints(cfg.dataDir)
	if err != nil {
		cancel()
		return nil, fmt.Errorf("loading checkpoints: %w", err)
	}
	n := 0
	for profile, results := range all {
		for id, res := range results {
			body, err := json.Marshal(res)
			if err != nil {
				continue
			}
			s.cache[cacheKey{profile, id}] = resultEntry{body, "checkpoint"}
			n++
		}
	}
	ck, err := mtreescale.NewCheckpointer(cfg.dataDir, true)
	if err != nil {
		cancel()
		return nil, fmt.Errorf("opening checkpoint journal: %w", err)
	}
	s.ck = ck
	if n > 0 {
		logf("mtsimd: loaded %d precomputed results from %s", n, cfg.dataDir)
	}
	return s, nil
}

// close cancels any in-flight computation and flushes the checkpoint
// journal. Safe to call more than once; only the first call reports the
// flush error.
func (s *server) close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	s.cancelBase()
	if s.ck != nil {
		return s.ck.Close()
	}
	return nil
}

// handler assembles the route table. Every route sits under the panic
// Recoverer and the worker-identity header; only /curve and /shard pay the
// admission and deadline machinery — and the chaos failpoint middleware, so
// an injected fault schedule never takes down the health endpoints a
// coordinator's eviction logic depends on.
func (s *server) handler() http.Handler {
	faulty := func(h http.HandlerFunc) http.Handler {
		return serve.WithRequestDeadline(s.cfg.deadline, s.cfg.deadlineCeiling, serve.ChaosFaults(h))
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /experiments", s.handleExperiments)
	mux.Handle("GET /curve", faulty(s.handleCurve))
	mux.Handle("POST "+mtreescale.ClusterShardPath, faulty(s.handleShard))
	return serve.Recoverer(s.onIncident, s.identify(mux))
}

// identify stamps every response with this worker's id, so cluster
// coordinators and operators can attribute answers to workers.
func (s *server) identify(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Mtsimd-Worker", s.cfg.workerID)
		next.ServeHTTP(w, r)
	})
}

func (s *server) onIncident(id string, pe *mtreescale.PanicError) {
	s.logf("mtsimd: incident %s: %v", id, pe)
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	qs := s.queue.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      "ok",
		"draining":    s.drain.Draining(),
		"inflight":    s.drain.Inflight(),
		"active":      qs.Active,
		"waiting":     qs.Waiting,
		"admitted":    qs.Admitted,
		"shed":        qs.Shed,
		"quarantined": s.quar.Len(),
	})
}

func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.drain.Draining() {
		serve.WriteJSONError(w, http.StatusServiceUnavailable, "draining", 0)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

func (s *server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"experiments": mtreescale.ListExperiments(),
		"profiles":    []string{"paper", "medium", "quick"},
		"quarantined": s.quar.Snapshot(),
	})
}

// handleCurve serves one experiment result:
//
//	validate → cache fast path (degraded reads) → quarantine gate →
//	drain gate → admission queue → compute under the request deadline →
//	cache + checkpoint.
func (s *server) handleCurve(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("experiment")
	if id == "" {
		serve.WriteJSONError(w, http.StatusBadRequest, "missing experiment parameter", 0)
		return
	}
	profName := r.URL.Query().Get("profile")
	if profName == "" {
		profName = "quick"
	}
	p, err := mtreescale.ProfileByName(profName)
	if err != nil {
		serve.WriteJSONError(w, http.StatusBadRequest, err.Error(), 0)
		return
	}
	p.BatchBFS = s.cfg.batchBFS
	p.LargeGraph = s.cfg.compress
	if s.cfg.churnCap != 0 {
		p.ChurnCap = s.cfg.churnCap
	}
	if s.cfg.churnSession != "" {
		p.ChurnSession = s.cfg.churnSession
	}
	if !knownExperiment(id) {
		serve.WriteJSONError(w, http.StatusNotFound, fmt.Sprintf("unknown experiment %q (see /experiments)", id), 0)
		return
	}
	key := cacheKey{mtreescale.ProfileKey(p), id}

	// Fast path: a precomputed result — from this process or the checkpoint
	// journal — is served without touching the compute pool. This is the
	// degraded mode: cached reads keep answering while the pool is
	// saturated or the experiment is quarantined.
	if ent, ok := s.cached(key); ok {
		s.serveResult(w, ent, s.degradedReason(id))
		return
	}

	if ok, retry := s.quar.Allowed(id); !ok {
		serve.WriteJSONError(w, http.StatusServiceUnavailable,
			fmt.Sprintf("experiment %s is quarantined", id), retry)
		return
	}

	exit, err := s.drain.Enter()
	if err != nil {
		w.Header().Set("Connection", "close")
		serve.WriteJSONError(w, http.StatusServiceUnavailable, "draining", 0)
		return
	}
	defer exit()

	release, err := s.queue.Acquire(r.Context())
	if errors.Is(err, serve.ErrSaturated) {
		serve.WriteJSONError(w, http.StatusTooManyRequests, "compute pool saturated", s.cfg.shedRetryAfter)
		return
	}
	if err != nil {
		// The client's context ended while queued; nobody is listening, but
		// finish the exchange cleanly.
		serve.WriteJSONError(w, http.StatusServiceUnavailable, "request abandoned while queued", 0)
		return
	}
	defer release()

	// The computation obeys both the request deadline (already on
	// r.Context via the middleware) and the drain-budget cancellation.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	stopAfter := context.AfterFunc(s.baseCtx, cancel)
	defer stopAfter()

	stats, err := mtreescale.RunExperimentsCtx(ctx, []string{id}, p, mtreescale.ScheduleOptions{
		Parallel:     1,
		MaxHeapBytes: s.cfg.maxHeap,
		Quarantine:   s.quar,
	})
	if len(stats) != 1 {
		serve.WriteJSONError(w, http.StatusInternalServerError, fmt.Sprintf("schedule failed: %v", err), 0)
		return
	}
	st := stats[0]
	if st.Err != nil {
		s.writeComputeError(w, r, id, st.Err)
		return
	}
	body, err := json.Marshal(st.Result)
	if err != nil {
		serve.WriteJSONError(w, http.StatusInternalServerError, "encoding result failed", 0)
		return
	}
	s.store(key, body, st.Result)
	s.serveResult(w, resultEntry{body, "fresh"}, "")
}

// handleShard executes one cluster shard:
//
//	decode + validate → quarantine gate → drain gate → admission queue →
//	compute under the request deadline → partial JSON.
//
// The endpoint shares /curve's whole robustness substrate — the same
// admission queue (so a coordinator's fan-out and interactive /curve load
// are bounded together), the same drain and deadline machinery, and the
// same quarantine registry, keyed per shard block so a poison shard is
// refused with backoff while its siblings keep computing.
func (s *server) handleShard(w http.ResponseWriter, r *http.Request) {
	// The auth gate comes first: an unauthenticated coordinator learns
	// nothing about the worker's load or quarantine state, and a 401 is a
	// permanent (4xx) verdict on its side — misconfiguration must fail fast,
	// not burn the shard's retry budget.
	if s.cfg.shardToken != "" {
		want := "Bearer " + s.cfg.shardToken
		got := r.Header.Get("Authorization")
		if subtle.ConstantTimeCompare([]byte(got), []byte(want)) != 1 {
			w.Header().Set("WWW-Authenticate", `Bearer realm="mtsimd"`)
			serve.WriteJSONError(w, http.StatusUnauthorized, "missing or invalid bearer token", 0)
			return
		}
	}
	var spec mtreescale.ClusterShardSpec
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&spec); err != nil {
		serve.WriteJSONError(w, http.StatusBadRequest, "malformed shard spec: "+err.Error(), 0)
		return
	}
	if err := spec.Validate(); err != nil {
		serve.WriteJSONError(w, http.StatusBadRequest, err.Error(), 0)
		return
	}
	qkey := fmt.Sprintf("shard:%.12s:%d-%d", spec.Grid.Key(), spec.Lo, spec.Hi)

	if ok, retry := s.quar.Allowed(qkey); !ok {
		serve.WriteJSONError(w, http.StatusServiceUnavailable,
			fmt.Sprintf("shard [%d, %d) is quarantined", spec.Lo, spec.Hi), retry)
		return
	}

	exit, err := s.drain.Enter()
	if err != nil {
		w.Header().Set("Connection", "close")
		serve.WriteJSONError(w, http.StatusServiceUnavailable, "draining", 0)
		return
	}
	defer exit()

	release, err := s.queue.Acquire(r.Context())
	if errors.Is(err, serve.ErrSaturated) {
		serve.WriteJSONError(w, http.StatusTooManyRequests, "compute pool saturated", s.cfg.shedRetryAfter)
		return
	}
	if err != nil {
		serve.WriteJSONError(w, http.StatusServiceUnavailable, "request abandoned while queued", 0)
		return
	}
	defer release()

	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	stopAfter := context.AfterFunc(s.baseCtx, cancel)
	defer stopAfter()

	var p *mtreescale.ClusterPartial
	err = mtreescale.CallSafe(func() error {
		var cerr error
		p, cerr = mtreescale.ExecuteClusterShard(ctx, spec)
		return cerr
	})
	if err != nil {
		var pe *mtreescale.PanicError
		if errors.As(err, &pe) {
			s.quar.Report(qkey, err)
		}
		s.writeComputeError(w, r, qkey, err)
		return
	}
	body, err := json.Marshal(p)
	if err != nil {
		serve.WriteJSONError(w, http.StatusInternalServerError, "encoding partial failed", 0)
		return
	}
	body = append(body, '\n')
	// Failpoint "shard.payload": corrupt or tear the partial on the wire.
	// The coordinator's seal verification must catch it and requeue.
	body, err = chaos.Write("shard.payload", body)
	if err != nil {
		serve.WriteJSONError(w, http.StatusInternalServerError, err.Error(), 0)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

// writeComputeError maps a scheduler failure onto the HTTP boundary. The
// quarantine registry has already been struck for dangerous failures by the
// scheduler itself.
func (s *server) writeComputeError(w http.ResponseWriter, r *http.Request, id string, cerr error) {
	var pe *mtreescale.PanicError
	switch {
	case errors.As(cerr, &pe):
		// Opaque on the wire, full stack in the log.
		incident := serve.NewIncidentID()
		s.logf("mtsimd: incident %s: experiment %s panicked: %v", incident, id, pe)
		serve.WriteJSONError(w, http.StatusInternalServerError, "internal error (incident "+incident+")", 0)
	case errors.Is(cerr, mtreescale.ErrHeapLimit), errors.Is(cerr, mtreescale.ErrQuarantined):
		_, retry := s.quar.Allowed(id)
		serve.WriteJSONError(w, http.StatusServiceUnavailable,
			fmt.Sprintf("experiment %s refused: %v", id, cerr), retry)
	case errors.Is(cerr, context.DeadlineExceeded):
		serve.WriteJSONError(w, http.StatusGatewayTimeout,
			fmt.Sprintf("deadline exceeded (budget %s; raise with ?deadline=)", serve.RequestBudget(r.Context())), 0)
	case errors.Is(cerr, context.Canceled):
		w.Header().Set("Connection", "close")
		serve.WriteJSONError(w, http.StatusServiceUnavailable, "computation cancelled", 0)
	case errors.Is(cerr, mtreescale.ErrInvalidParam):
		serve.WriteJSONError(w, http.StatusBadRequest, cerr.Error(), 0)
	default:
		serve.WriteJSONError(w, http.StatusInternalServerError, "experiment failed: "+cerr.Error(), 0)
	}
}

func (s *server) cached(key cacheKey) (resultEntry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ent, ok := s.cache[key]
	return ent, ok
}

// store caches a fresh result and journals it. The journal write is fsynced
// per record, so a kill at any later moment cannot tear it.
func (s *server) store(key cacheKey, body []byte, res *mtreescale.Result) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.cache[key]; ok {
		return
	}
	s.cache[key] = resultEntry{body, "cache"}
	if s.ck != nil && !s.closed {
		s.ck.Append(key.profile, key.id, res)
	}
}

// degradedReason reports why a cached read is standing in for a fresh
// computation: "" when the pool could have computed it right now.
func (s *server) degradedReason(id string) string {
	if ok, _ := s.quar.Allowed(id); !ok {
		return "quarantined"
	}
	if s.drain.Draining() {
		return "draining"
	}
	qs := s.queue.Stats()
	if qs.Active >= qs.MaxActive && qs.Waiting >= qs.MaxWait {
		return "saturated"
	}
	return ""
}

func (s *server) serveResult(w http.ResponseWriter, ent resultEntry, degraded string) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Mtsimd-Source", ent.source)
	if degraded != "" {
		w.Header().Set("X-Mtsimd-Degraded", degraded)
	}
	_, _ = w.Write(ent.body)
}

func knownExperiment(id string) bool {
	for _, info := range mtreescale.ListExperiments() {
		if info.ID == id {
			return true
		}
	}
	return false
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
