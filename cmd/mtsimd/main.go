// Command mtsimd serves the paper's experiments over HTTP: L(m) curves,
// reachability tables and scaling summaries computed on demand, cached in
// memory, and journaled to the same checkpoint format mtsim writes — so a
// daemon pointed at an mtsim -out directory answers instantly from the
// precomputed results, and a restarted daemon replays its own journal
// byte-identically.
//
// Robustness is the point of the binary, not an afterthought:
//
//   - a bounded admission queue sheds excess /curve load with 429 +
//     Retry-After instead of queueing unboundedly;
//   - every request runs under a deadline (server default, client-settable
//     via ?deadline=, capped by a ceiling) that propagates through the
//     measurement engines' contexts;
//   - a panicking experiment answers 500 with an opaque incident id, is
//     quarantined with exponential backoff, and never takes the process
//     down;
//   - /healthz and /readyz stay responsive however saturated the pool is;
//   - SIGTERM triggers a graceful drain: stop admitting, finish in-flight
//     work within the drain budget (then cancel it), flush the checkpoint
//     journal, exit;
//   - when the pool is saturated or an experiment quarantined, cached
//     results keep being served, marked with an X-Mtsimd-Degraded header.
//
// Endpoints:
//
//	GET  /healthz             liveness + load counters (never blocks)
//	GET  /readyz              503 while draining, 200 otherwise
//	GET  /experiments         registry listing, profiles, quarantine state
//	GET  /curve?experiment=fig3a&profile=quick[&deadline=10s]
//	POST /shard               execute one cluster shard spec (see mtctl),
//	                          returning the block's partial statistics
//
// Every response carries an X-Mtsimd-Worker header naming the worker
// (-worker-id, default hostname), so mtctl runs can be attributed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof" // -pprof flag: profiling handlers on the default mux
	"os"
	"os/signal"
	"syscall"
	"time"

	mtreescale "mtreescale"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := runDaemon(ctx, os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "mtsimd:", err)
		os.Exit(1)
	}
}

// runDaemon parses flags, builds the server and serves until ctx is
// cancelled (SIGINT/SIGTERM in production), then drains gracefully.
func runDaemon(ctx context.Context, args []string, logw io.Writer) error {
	cfg := defaultConfig()
	fs := flag.NewFlagSet("mtsimd", flag.ContinueOnError)
	fs.SetOutput(logw)
	fs.StringVar(&cfg.addr, "addr", cfg.addr, "listen address")
	fs.StringVar(&cfg.workerID, "worker-id", "", "worker name stamped in the X-Mtsimd-Worker response header (default: hostname)")
	version := fs.Bool("version", false, "print build information and exit")
	fs.StringVar(&cfg.dataDir, "data", "", "checkpoint directory: fresh results are journaled here and reloaded on restart (accepts an mtsim -out directory)")
	fs.IntVar(&cfg.maxActive, "max-active", cfg.maxActive, "concurrent experiment computations")
	fs.IntVar(&cfg.maxWait, "max-wait", cfg.maxWait, "requests allowed to queue for a compute slot before shedding with 429")
	fs.DurationVar(&cfg.deadline, "deadline", cfg.deadline, "default per-request compute budget")
	fs.DurationVar(&cfg.deadlineCeiling, "deadline-ceiling", cfg.deadlineCeiling, "maximum compute budget a client may request via ?deadline=")
	fs.DurationVar(&cfg.drainBudget, "drain", cfg.drainBudget, "graceful-drain budget after SIGTERM before in-flight work is cancelled")
	fs.DurationVar(&cfg.shedRetryAfter, "retry-after", cfg.shedRetryAfter, "Retry-After hint attached to shed (429) responses")
	fs.DurationVar(&cfg.quarBase, "quarantine-base", cfg.quarBase, "quarantine backoff after an experiment's first dangerous failure (doubles per strike)")
	fs.DurationVar(&cfg.quarMax, "quarantine-max", cfg.quarMax, "quarantine backoff cap")
	fs.DurationVar(&cfg.readHeaderTimeout, "read-header-timeout", cfg.readHeaderTimeout, "slow-loris defense: close connections that have not finished sending headers")
	fs.BoolVar(&cfg.batchBFS, "batchbfs", cfg.batchBFS, "resolve source trees through the multi-source BFS batch kernel (byte-identical results; -batchbfs=false disables)")
	fs.BoolVar(&cfg.compress, "compress", cfg.compress, "hold topologies in the compressed CSR layout (byte-identical results; ~half the adjacency bytes)")
	fs.IntVar(&cfg.churnCap, "churn-cap", 0, "degree cap for the churn experiments' bounded variant (0 = profile default, else ≥ 2)")
	fs.StringVar(&cfg.churnSession, "churn-session", "", "session-length distribution for the churn experiments: exp|pareto|fixed (empty = profile default)")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on a separate listener at this address (e.g. localhost:6060); empty disables")
	maxHeap := fs.String("maxheap", "", "per-experiment soft heap cap, e.g. 512m (empty = unlimited)")
	fs.StringVar(&cfg.shardToken, "shard-token", "", "require this bearer token on POST /shard (empty = open); coordinators pass it via mtctl -token")
	fs.StringVar(&cfg.tlsCert, "tls-cert", "", "serve TLS with this PEM certificate (requires -tls-key); coordinators connect with mtctl -tls-ca")
	fs.StringVar(&cfg.tlsKey, "tls-key", "", "PEM private key for -tls-cert")
	tlsCA := fs.String("tls-ca", "", "CA certificate pool (PEM) trusted when announcing to an https registrar")
	announce := fs.String("announce", "", "registrar base URL (mtctl -register-addr) to announce this worker to; announcements double as lease renewals")
	advertise := fs.String("advertise", "", "base URL other hosts reach this worker at (default: scheme + listen address)")
	announceInterval := fs.Duration("announce-interval", 5*time.Second, "re-announcement period for -announce; failures back off exponentially from it")
	chaosSpec := fs.String("chaos", "", "fault-injection schedule, e.g. 'serve.handler=error@0.1;shard.payload=bitflip#1' (testing only; see internal/chaos)")
	chaosSeed := fs.Int64("chaos-seed", 1, "seed for the -chaos schedule; the same seed reproduces the identical fault sequence")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(logw, "mtsimd", mtreescale.VersionString())
		return nil
	}
	hb, err := mtreescale.ParseByteSize(*maxHeap)
	if err != nil {
		return fmt.Errorf("-maxheap: %w", err)
	}
	cfg.maxHeap = hb
	if (cfg.tlsCert == "") != (cfg.tlsKey == "") {
		return fmt.Errorf("-tls-cert and -tls-key must be given together")
	}

	logf := func(format string, args ...any) { fmt.Fprintf(logw, format+"\n", args...) }
	if *chaosSpec != "" {
		plan, err := mtreescale.ParseChaosPlan(*chaosSpec, *chaosSeed)
		if err != nil {
			return fmt.Errorf("-chaos: %w", err)
		}
		plan.SetLogf(logf)
		mtreescale.EnableChaos(plan)
		defer mtreescale.DisableChaos()
		logf("mtsimd: CHAOS ENABLED seed=%d spec=%q", *chaosSeed, *chaosSpec)
	}
	s, err := newServer(cfg, logf)
	if err != nil {
		return err
	}
	if *pprofAddr != "" {
		// Profiling stays off the serving listener: net/http/pprof registers
		// on the default mux, which the service handler never exposes.
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return fmt.Errorf("-pprof: %w", err)
		}
		defer pln.Close()
		logf("mtsimd: pprof on http://%s", pln.Addr())
		go func() { _ = http.Serve(pln, nil) }()
	}
	defer s.close()
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	scheme := "http"
	if cfg.tlsCert != "" {
		scheme = "https"
	}
	if *announce != "" {
		self := *advertise
		if self == "" {
			self = scheme + "://" + ln.Addr().String()
		}
		client := http.DefaultClient
		if *tlsCA != "" {
			client, err = mtreescale.NewClusterTLSClient(*tlsCA)
			if err != nil {
				return fmt.Errorf("-tls-ca: %w", err)
			}
		}
		logf("mtsimd: announcing %s to %s every %s", self, *announce, *announceInterval)
		go mtreescale.ClusterAnnounceLoop(ctx, client, *announce, self, cfg.shardToken, *announceInterval,
			func(err error) { logf("mtsimd: announce: %v", err) })
	}
	logf("mtsimd: listening on %s://%s (%d experiments, profiles paper|medium|quick)",
		scheme, ln.Addr(), len(mtreescale.ListExperiments()))
	return serveDaemon(ctx, s, ln)
}

// serveDaemon serves on ln until ctx is cancelled, then runs the drain
// sequence: refuse new /curve work, wait for in-flight requests up to the
// drain budget, cancel stragglers, close the listener, flush the journal.
// It owns ln and s's shutdown; tests drive it directly with a cancellable
// ctx in place of a signal.
func serveDaemon(ctx context.Context, s *server, ln net.Listener) error {
	hs := &http.Server{
		Handler:           s.handler(),
		ReadHeaderTimeout: s.cfg.readHeaderTimeout,
	}
	errCh := make(chan error, 1)
	if s.cfg.tlsCert != "" {
		go func() { errCh <- hs.ServeTLS(ln, s.cfg.tlsCert, s.cfg.tlsKey) }()
	} else {
		go func() { errCh <- hs.Serve(ln) }()
	}

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	case <-ctx.Done():
	}

	s.logf("mtsimd: shutdown requested; draining %d in-flight requests (budget %s)",
		s.drain.Inflight(), s.cfg.drainBudget)
	dctx, cancel := context.WithTimeout(context.Background(), s.cfg.drainBudget)
	defer cancel()
	if err := s.drain.Drain(dctx); err != nil {
		s.logf("mtsimd: drain budget expired with %d in flight; cancelling them", s.drain.Inflight())
		s.cancelBase()
	}

	// In-flight handlers have finished (or are unwinding after the
	// cancellation); give the connections a short grace to flush, then
	// force-close whatever remains.
	sctx, scancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer scancel()
	if err := hs.Shutdown(sctx); err != nil {
		_ = hs.Close()
	}
	<-errCh

	if err := s.close(); err != nil {
		return fmt.Errorf("flushing checkpoint journal: %w", err)
	}
	s.logf("mtsimd: drained and stopped")
	return nil
}
