package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	mtreescale "mtreescale"
)

// clusterGrid is a grid small enough for several full runs per test binary.
func clusterGrid() mtreescale.ClusterGrid {
	return mtreescale.ClusterGrid{
		Kind:      mtreescale.ClusterEnsemble,
		Topology:  "r100",
		Scale:     1,
		Sizes:     []int{1, 3, 10},
		Mode:      mtreescale.Distinct,
		NNetworks: 4,
		Protocol: mtreescale.Protocol{
			NSource: 3, NRcvr: 2, Seed: 11, Workers: 1,
			BatchBFS: true, SPTCache: true,
		},
	}
}

func postShard(t *testing.T, url string, spec mtreescale.ClusterShardSpec) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+mtreescale.ClusterShardPath, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// TestResponsesCarryContentTypeAndWorkerHeader pins the response metadata
// contract: /curve answers declare application/json and every endpoint is
// stamped with the worker's identity.
func TestResponsesCarryContentTypeAndWorkerHeader(t *testing.T) {
	cfg := testConfig()
	cfg.workerID = "unit-worker"
	_, ts := newTestServer(t, cfg)

	for _, path := range []string{"/curve?experiment=fig3a&profile=quick", "/healthz", "/experiments"} {
		resp, _ := get(t, ts.URL+path)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
			t.Fatalf("GET %s: Content-Type = %q, want application/json", path, ct)
		}
		if w := resp.Header.Get("X-Mtsimd-Worker"); w != "unit-worker" {
			t.Fatalf("GET %s: X-Mtsimd-Worker = %q, want %q", path, w, "unit-worker")
		}
	}

	// Errors carry the worker stamp too — attribution matters most when
	// something went wrong.
	resp, _ := get(t, ts.URL+"/curve?experiment=nope")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown experiment: status %d", resp.StatusCode)
	}
	if w := resp.Header.Get("X-Mtsimd-Worker"); w != "unit-worker" {
		t.Fatalf("error response X-Mtsimd-Worker = %q", w)
	}
}

func TestWorkerIDDefaultsToHostname(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	resp, _ := get(t, ts.URL+"/healthz")
	if resp.Header.Get("X-Mtsimd-Worker") == "" {
		t.Fatal("X-Mtsimd-Worker empty with default config")
	}
}

// TestShardEndpoint exercises POST /shard directly: a valid spec returns
// the block's partial bound to the grid key, malformed and invalid specs
// answer 400, and the partial matches an in-process ExecuteClusterShard.
func TestShardEndpoint(t *testing.T) {
	cfg := testConfig()
	cfg.workerID = "unit-worker"
	_, ts := newTestServer(t, cfg)

	g := clusterGrid()
	spec := mtreescale.ClusterShardSpec{Grid: g, Lo: 1, Hi: 3}
	resp, body := postShard(t, ts.URL, spec)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /shard: status %d, body %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("Content-Type = %q", ct)
	}
	if w := resp.Header.Get("X-Mtsimd-Worker"); w != "unit-worker" {
		t.Fatalf("X-Mtsimd-Worker = %q", w)
	}
	var got mtreescale.ClusterPartial
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatalf("decoding partial: %v", err)
	}
	if got.Key != g.Key() || got.Lo != 1 || got.Hi != 3 || got.Ensemble == nil {
		t.Fatalf("partial = key %.12s [%d,%d), ensemble %v", got.Key, got.Lo, got.Hi, got.Ensemble != nil)
	}
	want, err := mtreescale.ExecuteClusterShard(t.Context(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&got, want) {
		t.Fatal("served partial differs from in-process ExecuteClusterShard")
	}

	// Invalid block and malformed body are client errors, not incidents.
	resp, _ = postShard(t, ts.URL, mtreescale.ClusterShardSpec{Grid: g, Lo: 3, Hi: 99})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad block: status %d", resp.StatusCode)
	}
	hr, err := http.Post(ts.URL+mtreescale.ClusterShardPath, "application/json", strings.NewReader("{torn"))
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d", hr.StatusCode)
	}
	gr, err := http.Get(ts.URL + mtreescale.ClusterShardPath)
	if err != nil {
		t.Fatal(err)
	}
	gr.Body.Close()
	if gr.StatusCode != http.StatusMethodNotAllowed && gr.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /shard: status %d", gr.StatusCode)
	}
}

// TestClusterSurvivesDaemonKillMidRun is the end-to-end resilience claim
// against real daemons: a coordinator fans a grid over two mtsimd servers,
// one is killed after its first completed shard, and the merged result is
// still byte-identical to a single-process run.
func TestClusterSurvivesDaemonKillMidRun(t *testing.T) {
	cfgA, cfgB := testConfig(), testConfig()
	cfgA.workerID, cfgB.workerID = "daemon-a", "daemon-b"
	_, tsA := newTestServer(t, cfgA)
	_, tsB := newTestServer(t, cfgB)

	var (
		mu     sync.Mutex
		killed bool
	)
	kill := func(ev mtreescale.ClusterEvent) {
		if ev.Kind != "complete" {
			return
		}
		mu.Lock()
		defer mu.Unlock()
		if !killed && ev.Worker == tsB.URL {
			killed = true
			tsB.CloseClientConnections()
			tsB.Close()
		}
	}

	coord, err := mtreescale.NewClusterCoordinator(
		[]string{tsA.URL, tsB.URL},
		mtreescale.ClusterOptions{
			Retries:    4,
			Backoff:    time.Millisecond,
			Quarantine: mtreescale.NewQuarantine(time.Millisecond, 2*time.Millisecond),
			OnEvent:    kill,
		})
	if err != nil {
		t.Fatal(err)
	}
	g := clusterGrid()
	merged, stats, err := coord.Run(t.Context(), g, 4)
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	wasKilled := killed
	mu.Unlock()
	if !wasKilled {
		t.Skip("daemon-b never completed a shard before the run finished; nothing to kill")
	}
	if stats.PerWorker[tsA.URL] == 0 {
		t.Fatalf("survivor completed no shards: %+v", stats)
	}

	want, err := mtreescale.RunClusterLocal(t.Context(), g)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, _ := json.Marshal(merged)
	wantJSON, _ := json.Marshal(want)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Fatalf("merged result after worker kill differs:\n%s\n----\n%s", gotJSON, wantJSON)
	}
}

// TestShardAuthToken pins the worker-side auth contract: with -shard-token
// set, POST /shard answers 401 (with a WWW-Authenticate challenge) to
// missing or wrong credentials, 200 to the right ones — and /healthz stays
// open so an auth-fronted worker is never misread as dead by heartbeats.
func TestShardAuthToken(t *testing.T) {
	cfg := testConfig()
	cfg.shardToken = "s3cret"
	_, ts := newTestServer(t, cfg)

	g := clusterGrid()
	body, err := json.Marshal(mtreescale.ClusterShardSpec{Grid: g, Lo: 0, Hi: 2})
	if err != nil {
		t.Fatal(err)
	}
	post := func(auth string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, ts.URL+mtreescale.ClusterShardPath, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if auth != "" {
			req.Header.Set("Authorization", auth)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	for _, auth := range []string{"", "Bearer wrong", "Basic s3cret"} {
		resp := post(auth)
		if resp.StatusCode != http.StatusUnauthorized {
			t.Fatalf("auth %q: status %d, want 401", auth, resp.StatusCode)
		}
		if resp.Header.Get("WWW-Authenticate") == "" {
			t.Fatalf("auth %q: missing WWW-Authenticate challenge", auth)
		}
	}
	if resp := post("Bearer s3cret"); resp.StatusCode != http.StatusOK {
		t.Fatalf("correct token: status %d, want 200", resp.StatusCode)
	}

	hr, _ := get(t, ts.URL+"/healthz")
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("/healthz behind shard auth: status %d, want 200 (open)", hr.StatusCode)
	}
}
