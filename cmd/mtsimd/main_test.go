package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	mtreescale "mtreescale"
)

// testConfig is a small, deterministic config for handler-level tests.
func testConfig() config {
	cfg := defaultConfig()
	cfg.maxActive = 1
	cfg.maxWait = 0
	cfg.deadline = 30 * time.Second
	cfg.deadlineCeiling = time.Minute
	cfg.drainBudget = 5 * time.Second
	cfg.quarBase = time.Minute
	cfg.quarMax = time.Hour
	return cfg
}

// newTestServer builds a server plus an httptest front end for it.
func newTestServer(t *testing.T, cfg config) (*server, *httptest.Server) {
	t.Helper()
	s, err := newServer(cfg, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.close() })
	ts := httptest.NewServer(s.handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// get fetches url and returns the response plus its fully-read body.
func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", url, err)
	}
	return resp, body
}

func TestHealthzAndReadyz(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	resp, body := get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d: %s", resp.StatusCode, body)
	}
	var health map[string]any
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatalf("healthz body is not JSON: %v\n%s", err, body)
	}
	if health["status"] != "ok" || health["draining"] != false {
		t.Fatalf("healthz = %v", health)
	}
	resp, body = get(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz = %d: %s", resp.StatusCode, body)
	}
}

func TestExperimentsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	resp, body := get(t, ts.URL+"/experiments")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/experiments = %d: %s", resp.StatusCode, body)
	}
	var listing struct {
		Experiments []mtreescale.ExperimentListing `json:"experiments"`
		Profiles    []string                       `json:"profiles"`
	}
	if err := json.Unmarshal(body, &listing); err != nil {
		t.Fatalf("bad /experiments body: %v\n%s", err, body)
	}
	found := false
	for _, e := range listing.Experiments {
		if e.ID == "fig1a" {
			found = true
			if e.Title == "" {
				t.Error("fig1a listed without a title")
			}
		}
	}
	if !found {
		t.Fatalf("fig1a missing from /experiments: %s", body)
	}
	if len(listing.Profiles) != 3 {
		t.Fatalf("profiles = %v", listing.Profiles)
	}
}

func TestCurveFreshThenCached(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	url := ts.URL + "/curve?experiment=fig8&profile=quick"

	resp, fresh := get(t, url)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fresh /curve = %d: %s", resp.StatusCode, fresh)
	}
	if src := resp.Header.Get("X-Mtsimd-Source"); src != "fresh" {
		t.Fatalf("X-Mtsimd-Source = %q, want fresh", src)
	}
	var res mtreescale.Result
	if err := json.Unmarshal(fresh, &res); err != nil || res.ID != "fig8" {
		t.Fatalf("body is not the fig8 Result (%v): %s", err, fresh)
	}

	resp, cached := get(t, url)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cached /curve = %d: %s", resp.StatusCode, cached)
	}
	if src := resp.Header.Get("X-Mtsimd-Source"); src != "cache" {
		t.Fatalf("X-Mtsimd-Source = %q, want cache", src)
	}
	if !bytes.Equal(fresh, cached) {
		t.Fatalf("cached body differs from fresh body (%d vs %d bytes)", len(fresh), len(cached))
	}
	if resp.Header.Get("X-Mtsimd-Degraded") != "" {
		t.Fatal("healthy cache hit marked degraded")
	}
}

func TestCurveValidation(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	cases := []struct {
		query string
		want  int
	}{
		{"", http.StatusBadRequest},
		{"?experiment=", http.StatusBadRequest},
		{"?experiment=fig8&profile=gigantic", http.StatusBadRequest},
		{"?experiment=no-such-figure", http.StatusNotFound},
		{"?experiment=fig8&deadline=bogus", http.StatusBadRequest},
		{"?experiment=fig8&deadline=-5s", http.StatusBadRequest},
		{"?experiment=fig8&deadline=0s", http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, body := get(t, ts.URL+"/curve"+c.query)
		if resp.StatusCode != c.want {
			t.Errorf("/curve%s = %d, want %d (%s)", c.query, resp.StatusCode, c.want, body)
		}
		var e map[string]string
		if err := json.Unmarshal(body, &e); err != nil || e["error"] == "" {
			t.Errorf("/curve%s error body not JSON: %s", c.query, body)
		}
	}
}

func TestCurveMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	resp, err := http.Post(ts.URL+"/curve?experiment=fig8", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /curve = %d, want 405", resp.StatusCode)
	}
}

func TestRunDaemonFlagAndListenErrors(t *testing.T) {
	if err := runDaemon(context.Background(), []string{"-maxheap", "12x"}, io.Discard); err == nil {
		t.Fatal("bad -maxheap accepted")
	}
	if err := runDaemon(context.Background(), []string{"-not-a-flag"}, io.Discard); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if err := runDaemon(context.Background(), []string{"-addr", "not-an-address"}, io.Discard); err == nil {
		t.Fatal("unlistenable address accepted")
	}
}

// The full daemon entry point starts, serves, and drains cleanly when its
// context is already cancelled — the SIGTERM path without the signal.
func TestRunDaemonStartsAndDrains(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var log bytes.Buffer
	if err := runDaemon(ctx, []string{"-addr", "127.0.0.1:0", "-drain", "2s"}, &log); err != nil {
		t.Fatalf("runDaemon: %v\n%s", err, log.String())
	}
	out := log.String()
	if !strings.Contains(out, "listening on") || !strings.Contains(out, "drained and stopped") {
		t.Fatalf("lifecycle log incomplete:\n%s", out)
	}
}

// A client-requested deadline above the ceiling is clamped, not rejected;
// a tiny deadline on a real experiment yields 504, and the budget is
// reported in the error.
func TestCurveDeadline(t *testing.T) {
	cfg := testConfig()
	_, ts := newTestServer(t, cfg)
	resp, body := get(t, ts.URL+"/curve?experiment=fig8&profile=quick&deadline=1ns")
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("1ns deadline = %d, want 504 (%s)", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "deadline exceeded") {
		t.Fatalf("504 body does not explain the deadline: %s", body)
	}
}
