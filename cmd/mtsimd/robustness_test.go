package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	mtreescale "mtreescale"
)

// registerBlocking registers a test experiment that signals on started and
// then holds its compute slot until release is closed (or its context
// ends). Registration is global to the test binary, so every id must be
// unique.
func registerBlocking(t *testing.T, id string) (started chan struct{}, release chan struct{}) {
	t.Helper()
	started = make(chan struct{}, 16)
	release = make(chan struct{})
	err := mtreescale.RegisterExperiment(&mtreescale.ExperimentRunner{
		ID:    id,
		Title: "test: blocks until released",
		Run: func(ctx context.Context, p mtreescale.Profile) (*mtreescale.Result, error) {
			started <- struct{}{}
			select {
			case <-release:
				return &mtreescale.Result{ID: id, Title: "blocking", Notes: []string{"released"}}, nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return started, release
}

// asyncGet fires a GET in a goroutine and delivers the outcome on a channel.
type getResult struct {
	resp *http.Response
	body []byte
	err  error
}

func asyncGet(url string) chan getResult {
	ch := make(chan getResult, 1)
	go func() {
		resp, err := http.Get(url)
		if err != nil {
			ch <- getResult{err: err}
			return
		}
		body, err := readAll(resp)
		ch <- getResult{resp: resp, body: body, err: err}
	}()
	return ch
}

func readAll(resp *http.Response) ([]byte, error) {
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, err := buf.ReadFrom(resp.Body)
	return buf.Bytes(), err
}

// While one request holds the only compute slot, additional compute
// requests are shed with 429 + Retry-After, and /healthz answers in well
// under 100ms.
func TestSheddingAndHealthUnderSaturation(t *testing.T) {
	started, release := registerBlocking(t, "zz-shed-block")
	defer close(release)
	cfg := testConfig() // maxActive=1, maxWait=0
	_, ts := newTestServer(t, cfg)

	inflight := asyncGet(ts.URL + "/curve?experiment=zz-shed-block&profile=quick")
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("blocking experiment never started")
	}

	// The pool is saturated: an uncached compute request is shed.
	resp, body := get(t, ts.URL+"/curve?experiment=fig8&profile=quick")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated /curve = %d, want 429 (%s)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without a Retry-After hint")
	}

	// Health stays fast: the acceptance bar is 100ms per probe while the
	// pool is saturated.
	for i := 0; i < 10; i++ {
		t0 := time.Now()
		resp, _ := get(t, ts.URL+"/healthz")
		if d := time.Since(t0); d > 100*time.Millisecond {
			t.Fatalf("healthz probe %d took %s under saturation", i, d)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("healthz = %d under saturation", resp.StatusCode)
		}
	}
	var health struct {
		Shed   uint64 `json:"shed"`
		Active int    `json:"active"`
	}
	_, hb := get(t, ts.URL+"/healthz")
	if err := json.Unmarshal(hb, &health); err != nil {
		t.Fatal(err)
	}
	if health.Shed == 0 || health.Active != 1 {
		t.Fatalf("healthz counters shed=%d active=%d, want shed>0 active=1", health.Shed, health.Active)
	}

	// Releasing the slot lets the in-flight request finish normally.
	release <- struct{}{}
	r := <-inflight
	if r.err != nil || r.resp.StatusCode != http.StatusOK {
		t.Fatalf("in-flight request after release: %v / %v", r.err, r.resp)
	}
}

// A panicking experiment answers 500 with an opaque incident id — the panic
// value never reaches the wire — the process survives, and the experiment is
// quarantined with a Retry-After on subsequent requests.
func TestPanicIsolatedAndQuarantined(t *testing.T) {
	err := mtreescale.RegisterExperiment(&mtreescale.ExperimentRunner{
		ID:    "zz-panic-always",
		Title: "test: panics",
		Run: func(ctx context.Context, p mtreescale.Profile) (*mtreescale.Result, error) {
			panic("sekrit-internal-state-do-not-leak")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, testConfig())

	resp, body := get(t, ts.URL+"/curve?experiment=zz-panic-always&profile=quick")
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking /curve = %d, want 500 (%s)", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "incident") {
		t.Fatalf("500 body lacks an incident id: %s", body)
	}
	if strings.Contains(string(body), "sekrit") {
		t.Fatalf("panic value leaked to the client: %s", body)
	}

	// The process is fine: health and an unrelated computation still work.
	resp, _ = get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatal("healthz broken after a panic")
	}
	resp, body = get(t, ts.URL+"/curve?experiment=fig8&profile=quick")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("unrelated /curve after panic = %d (%s)", resp.StatusCode, body)
	}

	// The panicking experiment is quarantined: refused without re-running.
	resp, body = get(t, ts.URL+"/curve?experiment=zz-panic-always&profile=quick")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("quarantined /curve = %d, want 503 (%s)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("quarantined 503 without Retry-After")
	}
	if !strings.Contains(string(body), "quarantined") {
		t.Fatalf("503 body does not say quarantined: %s", body)
	}

	// /experiments exposes the quarantine state.
	_, body = get(t, ts.URL+"/experiments")
	if !strings.Contains(string(body), "zz-panic-always") {
		t.Fatalf("/experiments does not list the quarantined id: %s", body)
	}
}

// Cached results keep being served — marked degraded — while the pool is
// saturated or the experiment quarantined.
func TestDegradedReadsFromCache(t *testing.T) {
	started, release := registerBlocking(t, "zz-degraded-block")
	defer close(release)
	s, ts := newTestServer(t, testConfig()) // maxActive=1, maxWait=0

	// Warm the cache while healthy.
	resp, fresh := get(t, ts.URL+"/curve?experiment=fig8&profile=quick")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm-up = %d", resp.StatusCode)
	}

	// Saturate the pool, then read the cached curve.
	inflight := asyncGet(ts.URL + "/curve?experiment=zz-degraded-block&profile=quick")
	<-started
	resp, cached := get(t, ts.URL+"/curve?experiment=fig8&profile=quick")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cached read under saturation = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Mtsimd-Degraded"); got != "saturated" {
		t.Fatalf("X-Mtsimd-Degraded = %q, want saturated", got)
	}
	if !bytes.Equal(fresh, cached) {
		t.Fatal("degraded body differs from the fresh body")
	}
	release <- struct{}{}
	<-inflight

	// Quarantine the cached experiment: reads still answer, marked so.
	s.quar.Report("fig8", errors.New("forced for the test"))
	resp, cached = get(t, ts.URL+"/curve?experiment=fig8&profile=quick")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cached read under quarantine = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Mtsimd-Degraded"); got != "quarantined" {
		t.Fatalf("X-Mtsimd-Degraded = %q, want quarantined", got)
	}
	if !bytes.Equal(fresh, cached) {
		t.Fatal("quarantine-degraded body differs from the fresh body")
	}
}

// SIGTERM mid-request: the daemon stops admitting new work, the in-flight
// request finishes inside the drain budget, the checkpoint journal is
// flushed with zero torn records, and the process exits cleanly.
func TestDrainFinishesInflightAndFlushesCheckpoint(t *testing.T) {
	started, release := registerBlocking(t, "zz-drain-slow")
	defer close(release)
	dir := t.TempDir()
	cfg := testConfig()
	cfg.dataDir = dir
	cfg.drainBudget = 10 * time.Second

	s, err := newServer(cfg, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- serveDaemon(ctx, s, ln) }()
	base := "http://" + ln.Addr().String()

	inflight := asyncGet(base + "/curve?experiment=zz-drain-slow&profile=quick")
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request never started")
	}

	cancel() // the SIGTERM

	// The daemon flips to draining: readyz goes 503 and new compute work is
	// refused, while the in-flight request keeps its slot.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			code := resp.StatusCode
			resp.Body.Close()
			if code == http.StatusServiceUnavailable {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("readyz never reported draining")
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp, err := http.Get(base + "/curve?experiment=fig8&profile=quick")
	if err == nil {
		body, _ := readAll(resp)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("new work during drain = %d, want 503 (%s)", resp.StatusCode, body)
		}
	}

	// Let the in-flight request finish: it must complete with a full 200.
	release <- struct{}{}
	r := <-inflight
	if r.err != nil {
		t.Fatalf("in-flight request torn by drain: %v", r.err)
	}
	if r.resp.StatusCode != http.StatusOK {
		t.Fatalf("in-flight request = %d during drain (%s)", r.resp.StatusCode, r.body)
	}
	var res mtreescale.Result
	if err := json.Unmarshal(r.body, &res); err != nil || res.ID != "zz-drain-slow" {
		t.Fatalf("in-flight body truncated (%v): %s", err, r.body)
	}

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serveDaemon: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serveDaemon did not return after drain")
	}

	// Zero torn files: every journal line parses, and the in-flight result
	// was checkpointed before exit.
	raw, err := os.ReadFile(filepath.Join(dir, mtreescale.CheckpointFile))
	if err != nil {
		t.Fatalf("no checkpoint journal after drain: %v", err)
	}
	sawInflight := false
	for i, line := range bytes.Split(bytes.TrimRight(raw, "\n"), []byte("\n")) {
		rec, err := mtreescale.ParseCheckpointLine(line)
		if err != nil {
			t.Fatalf("journal line %d torn after drain: %v\n%s", i+1, err, line)
		}
		if rec.ID == "zz-drain-slow" {
			sawInflight = true
		}
	}
	if !sawInflight {
		t.Fatal("in-flight result missing from the flushed journal")
	}
}

// When the drain budget expires, stragglers are cancelled rather than
// awaited forever: the in-flight request gets a 503 and the daemon still
// exits cleanly.
func TestDrainBudgetCancelsStragglers(t *testing.T) {
	started, release := registerBlocking(t, "zz-drain-straggler")
	defer close(release)
	cfg := testConfig()
	cfg.drainBudget = 100 * time.Millisecond

	s, err := newServer(cfg, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- serveDaemon(ctx, s, ln) }()
	base := "http://" + ln.Addr().String()

	inflight := asyncGet(base + "/curve?experiment=zz-drain-straggler&profile=quick")
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("straggler never started")
	}

	t0 := time.Now()
	cancel()
	r := <-inflight
	if r.err == nil && r.resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("cancelled straggler = %d, want 503 (%s)", r.resp.StatusCode, r.body)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serveDaemon: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serveDaemon hung past the drain budget")
	}
	if elapsed := time.Since(t0); elapsed > 5*time.Second {
		t.Fatalf("shutdown took %s with a 100ms drain budget", elapsed)
	}
}

// Kill-then-restart: a second daemon pointed at the same data directory
// serves the same query byte-identically from the checkpoint journal.
func TestRestartServesByteIdenticalFromCheckpoint(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	cfg.dataDir = dir

	sA, err := newServer(cfg, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	tsA := httptest.NewServer(sA.handler())
	resp, fresh := get(t, tsA.URL+"/curve?experiment=fig8&profile=quick")
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Mtsimd-Source") != "fresh" {
		t.Fatalf("first run: %d / %s", resp.StatusCode, resp.Header.Get("X-Mtsimd-Source"))
	}
	tsA.Close()
	if err := sA.close(); err != nil {
		t.Fatal(err)
	}

	sB, err := newServer(cfg, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer sB.close()
	tsB := httptest.NewServer(sB.handler())
	defer tsB.Close()
	resp, replayed := get(t, tsB.URL+"/curve?experiment=fig8&profile=quick")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restarted daemon = %d", resp.StatusCode)
	}
	if src := resp.Header.Get("X-Mtsimd-Source"); src != "checkpoint" {
		t.Fatalf("X-Mtsimd-Source after restart = %q, want checkpoint", src)
	}
	if !bytes.Equal(fresh, replayed) {
		t.Fatalf("restarted answer differs from the original (%d vs %d bytes)", len(fresh), len(replayed))
	}
}

// A slow-loris connection — headers never finished — is cut off by the
// read-header timeout and never occupies a compute slot; the daemon keeps
// serving normally alongside it.
func TestSlowLorisConnectionIsDropped(t *testing.T) {
	cfg := testConfig()
	cfg.readHeaderTimeout = 100 * time.Millisecond

	s, err := newServer(cfg, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- serveDaemon(ctx, s, ln) }()
	base := "http://" + ln.Addr().String()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := fmt.Fprintf(conn, "GET /curve?experiment=fig8 HTTP/1.1\r\nHost: mtsimd\r\n"); err != nil {
		t.Fatal(err)
	}
	// ...and stall without the terminating CRLF.

	// The daemon is unaffected while the loris dangles.
	resp, _ := get(t, base+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatal("healthz failed with a slow-loris connection open")
	}

	// The server must cut the connection within the header timeout (plus
	// slack); a full HTTP response never arrives.
	conn.SetReadDeadline(time.Now().Add(3 * time.Second))
	buf := make([]byte, 1024)
	n, rerr := conn.Read(buf)
	if rerr == nil && n > 0 {
		// Server may send nothing or a 408 before closing; keep reading to
		// confirm the close.
		_, rerr = conn.Read(buf)
	}
	if rerr == nil {
		t.Fatal("slow-loris connection still open after the read-header timeout")
	}
	if errors.Is(rerr, os.ErrDeadlineExceeded) {
		t.Fatal("server never closed the slow-loris connection")
	}

	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("serveDaemon did not stop")
	}
}
