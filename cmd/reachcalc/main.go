// Command reachcalc measures the reachability function of a topology (the
// paper's §4): S(r), T(r), the average path length, the growth class, and
// optionally the expected tree sizes of Equations 23/30.
//
// Usage:
//
//	reachcalc -name ts1000                       # standard topology
//	reachcalc < topology.graph                   # edge-list on stdin
//	reachcalc -name ti5000 -sources 50 -tree 100 # Eq 30 at n=100
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	mtreescale "mtreescale"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "reachcalc:", err)
		os.Exit(1)
	}
}

func run(args []string, in io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("reachcalc", flag.ContinueOnError)
	var (
		name    = fs.String("name", "", "standard topology name (default: read edge list from stdin)")
		scale   = fs.Float64("scale", 1, "scale for standard topologies")
		sources = fs.Int("sources", 100, "number of random BFS sources to average")
		seed    = fs.Int64("seed", 1, "sampling seed")
		treeN   = fs.Int("tree", 0, "also print Eq 23/30 expected tree sizes at this n")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var g *mtreescale.Topology
	var err error
	if *name != "" {
		g, err = mtreescale.GenerateTopologySeeded(*name, 0, *scale)
	} else {
		g, err = mtreescale.ReadTopology(in)
	}
	if err != nil {
		return err
	}
	r, err := mtreescale.MeasureReachability(g, *sources, *seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "nodes %d  links %d  avg degree %.2f\n", g.N(), g.M(), g.AvgDegree())
	fmt.Fprintf(out, "sites %.1f  depth %d  avg dist %.3f\n", r.Sites(), r.Depth(), r.AvgDist())
	if cls, err := r.Classify(0.5); err == nil {
		fmt.Fprintf(out, "T(r) growth: %s\n", cls)
	} else {
		fmt.Fprintf(out, "T(r) growth: unclassifiable (%v)\n", err)
	}
	fmt.Fprintln(out, "r\tS(r)\tT(r)")
	rs, ts := r.TCurve()
	for i := range rs {
		fmt.Fprintf(out, "%d\t%.2f\t%.2f\n", rs[i], r.S[rs[i]], ts[i])
	}
	if *treeN > 0 {
		leaves, err := r.ExpectedTreeLeaves(float64(*treeN))
		if err != nil {
			return err
		}
		thr, err := r.ExpectedTreeThroughout(float64(*treeN))
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "Eq23 L̄(%d) leaves-only = %.2f\n", *treeN, leaves)
		fmt.Fprintf(out, "Eq30 L̄(%d) throughout  = %.2f\n", *treeN, thr)
	}
	return nil
}
