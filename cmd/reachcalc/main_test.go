package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestReachStandard(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-name", "arpa", "-sources", "10"}, nil, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"nodes 47", "T(r) growth", "r\tS(r)\tT(r)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}

func TestReachWithTree(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-name", "r100", "-sources", "5", "-tree", "20"}, nil, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Eq23") || !strings.Contains(out, "Eq30") {
		t.Fatalf("tree sizes missing:\n%s", out)
	}
}

func TestReachBadName(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-name", "bogus"}, nil, &buf); err == nil {
		t.Fatal("bad name must error")
	}
}

func TestReachScaled(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-name", "ts1000", "-scale", "0.1", "-sources", "5"}, nil, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "nodes 10") { // 100-node scale
		t.Fatalf("scaled run:\n%s", buf.String()[:60])
	}
}

func TestReachFromStdin(t *testing.T) {
	in := strings.NewReader("name ring\nnodes 6\n0 1\n1 2\n2 3\n3 4\n4 5\n5 0\n")
	var buf bytes.Buffer
	if err := run([]string{"-sources", "4"}, in, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "nodes 6") {
		t.Fatalf("stdin topology not parsed:\n%s", buf.String())
	}
}

func TestReachBadStdin(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, strings.NewReader("garbage"), &buf); err == nil {
		t.Fatal("bad stdin must error")
	}
}
