// Command mtsim reproduces the paper's tables and figures.
//
// Usage:
//
//	mtsim -list
//	mtsim -experiment fig1a [-profile quick|medium|paper] [-format ascii|csv|gnuplot|notes]
//	mtsim -experiment all -out results/
//	mtsim -experiment all -parallel 0 -out results/   # use every core
//
// With -out, each experiment writes <id>.csv, <id>.gp (gnuplot) and
// <id>.txt (ASCII + notes) into the directory; without it, the selected
// format prints to stdout.
//
// -parallel N runs independent experiments concurrently on up to N workers
// (0 = all cores); output and files stay in paper order, and a per-
// experiment wall-clock/allocation summary is appended. -nested switches
// the simulation figures to the incremental nested-growth engine
// (statistically equivalent, roughly GridPoints× less tree-walk work).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"text/tabwriter"
	"time"

	mtreescale "mtreescale"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mtsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mtsim", flag.ContinueOnError)
	var (
		list       = fs.Bool("list", false, "list experiment ids and exit")
		describe   = fs.Bool("describe", false, "list experiment ids with titles and descriptions")
		report     = fs.Bool("report", false, "run every experiment and emit a Markdown report")
		experiment = fs.String("experiment", "", "experiment id (e.g. fig1a) or 'all'")
		profile    = fs.String("profile", "medium", "effort profile: quick|medium|paper")
		format     = fs.String("format", "ascii", "stdout format: ascii|csv|gnuplot|notes")
		outDir     = fs.String("out", "", "write <id>.csv/.gp/.txt into this directory")
		width      = fs.Int("width", 72, "ASCII plot width")
		height     = fs.Int("height", 24, "ASCII plot height")
		parallel   = fs.Int("parallel", 1, "run independent experiments on up to N workers (0 = all cores); output stays in paper order")
		nested     = fs.Bool("nested", false, "use the incremental nested-growth engine for simulation figures (statistically equivalent, faster)")
		sptcache   = fs.Bool("sptcache", true, "reuse shortest-path trees across experiments via the process-wide SPT cache (byte-identical output; -sptcache=false disables)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, id := range mtreescale.ExperimentIDs() {
			fmt.Fprintln(out, id)
		}
		return nil
	}
	if *describe {
		for _, id := range mtreescale.ExperimentIDs() {
			title, desc, err := mtreescale.ExperimentInfo(id)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "%-20s %s\n%20s %s\n", id, title, "", desc)
		}
		return nil
	}
	if *experiment == "" && !*report {
		fs.Usage()
		return fmt.Errorf("missing -experiment (or -list/-describe/-report)")
	}
	p, err := mtreescale.ProfileByName(*profile)
	if err != nil {
		return err
	}
	p.Nested = *nested
	p.SPTCache = *sptcache
	if *report {
		return mtreescale.WriteReport(out, p)
	}
	ids := []string{*experiment}
	if *experiment == "all" {
		ids = mtreescale.ExperimentIDs()
	}
	if *parallel != 1 {
		return runScheduled(out, ids, p, *parallel, *format, *outDir, *width, *height)
	}
	for _, id := range ids {
		res, err := mtreescale.RunExperiment(id, p)
		if err != nil {
			return err
		}
		if err := emit(out, res, *format, *outDir, *width, *height); err != nil {
			return err
		}
	}
	return nil
}

// emit writes one result either into the output directory or to out in the
// selected format.
func emit(out io.Writer, res *mtreescale.Result, format, outDir string, w, h int) error {
	if outDir != "" {
		if err := writeAll(outDir, res, w, h); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s (%s)\n", res.ID, res.Title)
		return nil
	}
	return render(out, res, format, w, h)
}

// runScheduled executes the experiments on the parallel scheduler and emits
// results — and a wall-clock/allocation summary — in paper order.
func runScheduled(out io.Writer, ids []string, p mtreescale.Profile, parallel int, format, outDir string, w, h int) error {
	start := time.Now()
	stats, err := mtreescale.RunExperiments(ids, p, parallel)
	if err != nil {
		return err
	}
	total := time.Since(start)
	for _, st := range stats {
		if err := emit(out, st.Result, format, outDir, w, h); err != nil {
			return err
		}
	}
	fmt.Fprintf(out, "# schedule: %d experiments, parallel=%d, profile=%s, total wall %.2fs\n",
		len(stats), parallel, p.Name, total.Seconds())
	var sumWall time.Duration
	for _, st := range stats {
		fmt.Fprintf(out, "# %-20s wall %8.2fs  alloc %8.1f MB\n",
			st.ID, st.Wall.Seconds(), float64(st.AllocBytes)/(1<<20))
		sumWall += st.Wall
	}
	if len(stats) > 1 {
		fmt.Fprintf(out, "# sum of experiment wall clocks %.2fs (speedup ×%.2f)\n",
			sumWall.Seconds(), sumWall.Seconds()/total.Seconds())
	}
	return nil
}

func render(out io.Writer, res *mtreescale.Result, format string, w, h int) error {
	switch format {
	case "ascii":
		if res.Figure == nil {
			return renderTable(out, res)
		}
		s, err := mtreescale.RenderASCII(res.Figure, mtreescale.ASCIIOptions{Width: w, Height: h})
		if err != nil {
			return err
		}
		fmt.Fprint(out, s)
		renderNotes(out, res)
		return nil
	case "csv":
		if res.Figure == nil {
			return renderTableCSV(out, res)
		}
		return mtreescale.WriteFigureCSV(out, res.Figure)
	case "gnuplot":
		if res.Figure == nil {
			return fmt.Errorf("%s is a table; use -format ascii or csv", res.ID)
		}
		return mtreescale.WriteFigureGnuplot(out, res.Figure)
	case "notes":
		renderNotes(out, res)
		return nil
	default:
		return fmt.Errorf("unknown format %q", format)
	}
}

func renderNotes(out io.Writer, res *mtreescale.Result) {
	if len(res.Notes) == 0 {
		return
	}
	fmt.Fprintf(out, "notes [%s]:\n", res.ID)
	for _, n := range res.Notes {
		fmt.Fprintf(out, "  - %s\n", n)
	}
}

func renderTable(out io.Writer, res *mtreescale.Result) error {
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "%s\n", strings.Join(res.Header, "\t"))
	for _, row := range res.Rows {
		fmt.Fprintf(tw, "%s\n", strings.Join(row, "\t"))
	}
	return tw.Flush()
}

func renderTableCSV(out io.Writer, res *mtreescale.Result) error {
	fmt.Fprintln(out, strings.Join(res.Header, ","))
	for _, row := range res.Rows {
		fmt.Fprintln(out, strings.Join(row, ","))
	}
	return nil
}

func writeAll(dir string, res *mtreescale.Result, w, h int) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	txt, err := os.Create(filepath.Join(dir, res.ID+".txt"))
	if err != nil {
		return err
	}
	defer txt.Close()
	if res.Figure != nil {
		s, err := mtreescale.RenderASCII(res.Figure, mtreescale.ASCIIOptions{Width: w, Height: h})
		if err != nil {
			return err
		}
		fmt.Fprint(txt, s)
	} else {
		if err := renderTable(txt, res); err != nil {
			return err
		}
	}
	renderNotes(txt, res)

	if res.Figure != nil {
		csvF, err := os.Create(filepath.Join(dir, res.ID+".csv"))
		if err != nil {
			return err
		}
		defer csvF.Close()
		if err := mtreescale.WriteFigureCSV(csvF, res.Figure); err != nil {
			return err
		}
		gpF, err := os.Create(filepath.Join(dir, res.ID+".gp"))
		if err != nil {
			return err
		}
		defer gpF.Close()
		if err := mtreescale.WriteFigureGnuplot(gpF, res.Figure); err != nil {
			return err
		}
	} else {
		csvF, err := os.Create(filepath.Join(dir, res.ID+".csv"))
		if err != nil {
			return err
		}
		defer csvF.Close()
		if err := renderTableCSV(csvF, res); err != nil {
			return err
		}
	}
	return nil
}
