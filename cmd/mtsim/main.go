// Command mtsim reproduces the paper's tables and figures.
//
// Usage:
//
//	mtsim -list
//	mtsim -experiment fig1a [-profile quick|medium|paper] [-format ascii|csv|gnuplot|notes]
//	mtsim -experiment all -out results/
//	mtsim -experiment all -parallel 0 -out results/   # use every core
//	mtsim -experiment all -out results/ -resume       # skip checkpointed work
//
// With -out, each experiment writes <id>.csv, <id>.gp (gnuplot) and
// <id>.txt (ASCII + notes) into the directory; without it, the selected
// format prints to stdout. Output files are written atomically (temp file +
// rename), so a crash never leaves a torn file.
//
// -parallel N runs independent experiments concurrently on up to N workers
// (0 = all cores); output and files stay in paper order, and a per-
// experiment wall-clock/allocation summary is appended. -nested switches
// the simulation figures to the incremental nested-growth engine
// (statistically equivalent, roughly GridPoints× less tree-walk work).
//
// Robustness controls:
//
//   - SIGINT/SIGTERM cancel the run promptly at grid-point granularity;
//     completed experiments are kept (and written when -out is set).
//   - -timeout bounds the whole run's wall clock the same way.
//   - -maxheap N (accepts k/m/g suffixes) softly aborts any experiment
//     that pushes the heap past N bytes, without killing its siblings.
//   - With -out, every completed experiment is journaled to
//     <out>/checkpoint.jsonl (fsynced JSON, keyed by profile); -resume
//     replays the journal and reruns only what is missing. Experiments are
//     deterministic per profile, so a resumed run's outputs are
//     byte-identical to an uninterrupted one.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof" // -pprof flag: profiling handlers on the default mux
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"text/tabwriter"
	"time"

	mtreescale "mtreescale"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mtsim:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	if ctx == nil {
		ctx = context.Background()
	}
	fs := flag.NewFlagSet("mtsim", flag.ContinueOnError)
	var (
		list       = fs.Bool("list", false, "list experiment ids with one-line titles and exit")
		describe   = fs.Bool("describe", false, "list experiment ids with titles and descriptions")
		report     = fs.Bool("report", false, "run every experiment and emit a Markdown report")
		experiment = fs.String("experiment", "", "experiment id (e.g. fig1a), comma-separated ids, or 'all'")
		profile    = fs.String("profile", "medium", "effort profile: quick|medium|paper")
		format     = fs.String("format", "ascii", "stdout format: ascii|csv|gnuplot|notes")
		outDir     = fs.String("out", "", "write <id>.csv/.gp/.txt into this directory")
		width      = fs.Int("width", 72, "ASCII plot width")
		height     = fs.Int("height", 24, "ASCII plot height")
		parallel   = fs.Int("parallel", 1, "run independent experiments on up to N workers (0 = all cores); output stays in paper order")
		nested     = fs.Bool("nested", false, "use the incremental nested-growth engine for simulation figures (statistically equivalent, faster)")
		churnCap   = fs.Int("churn-cap", 0, "degree cap for the churn experiments' bounded variant (0 = profile default, else ≥ 2)")
		churnSess  = fs.String("churn-session", "", "session-length distribution for the churn experiments: exp|pareto|fixed (empty = profile default)")
		sptcache   = fs.Bool("sptcache", true, "reuse shortest-path trees across experiments via the process-wide SPT cache (byte-identical output; -sptcache=false disables)")
		batchbfs   = fs.Bool("batchbfs", true, "resolve source trees through the multi-source BFS batch kernel, up to 64 sources per traversal (byte-identical output; -batchbfs=false disables)")
		compress   = fs.Bool("compress", false, "hold topologies in the compressed CSR layout (~half the adjacency bytes; byte-identical output) — the large-graph memory mode")
		pprofAddr  = fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); empty disables")
		timeout    = fs.Duration("timeout", 0, "abort the run after this wall-clock duration (0 = no limit)")
		maxHeap    = fs.String("maxheap", "", "soft per-experiment heap limit, e.g. 512m or 4g (empty = no limit); an experiment exceeding it is aborted, its siblings continue")
		resume     = fs.Bool("resume", false, "with -out: skip experiments already journaled in <out>/checkpoint.jsonl for this profile")
		chaosSpec  = fs.String("chaos", "", "fault-injection schedule, e.g. 'journal.write=short@0.2;atomicio.commit=error#1' (testing only; see internal/chaos)")
		chaosSeed  = fs.Int64("chaos-seed", 1, "seed for the -chaos schedule; the same seed reproduces the identical fault sequence")
		version    = fs.Bool("version", false, "print build information and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(out, "mtsim", mtreescale.VersionString())
		return nil
	}
	if *chaosSpec != "" {
		plan, err := mtreescale.ParseChaosPlan(*chaosSpec, *chaosSeed)
		if err != nil {
			return fmt.Errorf("-chaos: %w", err)
		}
		plan.SetLogf(func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) })
		mtreescale.EnableChaos(plan)
		defer mtreescale.DisableChaos()
		fmt.Fprintf(os.Stderr, "mtsim: CHAOS ENABLED seed=%d spec=%q\n", *chaosSeed, *chaosSpec)
	}
	if *list {
		return writeList(out)
	}
	if *describe {
		for _, id := range mtreescale.ExperimentIDs() {
			title, desc, err := mtreescale.ExperimentInfo(id)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "%-20s %s\n%20s %s\n", id, title, "", desc)
		}
		return nil
	}
	if *experiment == "" && !*report {
		fs.Usage()
		return fmt.Errorf("missing -experiment (or -list/-describe/-report)")
	}
	if *resume && *outDir == "" {
		return fmt.Errorf("-resume requires -out (the checkpoint journal lives in the output directory)")
	}
	maxHeapBytes, err := mtreescale.ParseByteSize(*maxHeap)
	if err != nil {
		return fmt.Errorf("-maxheap: %w", err)
	}
	p, err := mtreescale.ProfileByName(*profile)
	if err != nil {
		return err
	}
	p.Nested = *nested
	p.SPTCache = *sptcache
	p.BatchBFS = *batchbfs
	p.LargeGraph = *compress
	if *churnCap != 0 {
		p.ChurnCap = *churnCap
	}
	if *churnSess != "" {
		p.ChurnSession = *churnSess
	}
	if *pprofAddr != "" {
		// net/http/pprof registers its handlers on the default mux; serve it
		// on a side listener for the lifetime of the run.
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "mtsim: pprof server:", err)
			}
		}()
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if *report {
		return mtreescale.WriteReportCtx(ctx, out, p)
	}
	ids, err := expandIDs(*experiment)
	if err != nil {
		return err
	}
	return runScheduled(ctx, out, ids, p, scheduleConfig{
		parallel: *parallel,
		maxHeap:  maxHeapBytes,
		resume:   *resume,
		format:   *format,
		outDir:   *outDir,
		width:    *width,
		height:   *height,
	})
}

// writeList renders -list: experiments grouped by family, each group
// introduced by a "[family]" header line, ids and one-line titles aligned
// in a tab table. Families appear in first-encounter (paper) order.
func writeList(out io.Writer) error {
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	var families []string
	byFamily := map[string][]mtreescale.ExperimentListing{}
	for _, e := range mtreescale.ListExperiments() {
		if _, ok := byFamily[e.Family]; !ok {
			families = append(families, e.Family)
		}
		byFamily[e.Family] = append(byFamily[e.Family], e)
	}
	for i, fam := range families {
		if i > 0 {
			fmt.Fprintln(tw)
		}
		fmt.Fprintf(tw, "[%s]\n", fam)
		for _, e := range byFamily[fam] {
			fmt.Fprintf(tw, "%s\t%s\n", e.ID, oneLine(e.Title))
		}
	}
	return tw.Flush()
}

// oneLine collapses a multi-line description to its first line for -list.
func oneLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// expandIDs resolves the -experiment argument: "all", one id, or a
// comma-separated list.
func expandIDs(arg string) ([]string, error) {
	if arg == "all" {
		return mtreescale.ExperimentIDs(), nil
	}
	var ids []string
	for _, id := range strings.Split(arg, ",") {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		if id == "all" {
			return nil, fmt.Errorf("'all' cannot be combined with other experiment ids")
		}
		ids = append(ids, id)
	}
	if len(ids) == 0 {
		return nil, fmt.Errorf("empty -experiment list")
	}
	return ids, nil
}

type scheduleConfig struct {
	parallel int
	maxHeap  uint64
	resume   bool
	format   string
	outDir   string
	width    int
	height   int
}

// emit writes one result either into the output directory or to out in the
// selected format.
func emit(out io.Writer, res *mtreescale.Result, format, outDir string, w, h int) error {
	if outDir != "" {
		if err := writeAll(outDir, res, w, h); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s (%s)\n", res.ID, res.Title)
		return nil
	}
	return render(out, res, format, w, h)
}

// runScheduled executes the experiments on the scheduler and emits results
// in paper order. With -out it journals each completed experiment to the
// checkpoint file and, under -resume, replays journaled results instead of
// rerunning them. On failure or cancellation, completed results are still
// written into -out before the error is returned, so interrupted work is
// never thrown away.
func runScheduled(ctx context.Context, out io.Writer, ids []string, p mtreescale.Profile, cfg scheduleConfig) error {
	opts := mtreescale.ScheduleOptions{Parallel: cfg.parallel, MaxHeapBytes: cfg.maxHeap}
	var ck *mtreescale.Checkpointer
	if cfg.outDir != "" {
		key := mtreescale.ProfileKey(p)
		if cfg.resume {
			done, err := mtreescale.LoadCheckpoints(cfg.outDir, key)
			if err != nil {
				return err
			}
			if len(done) > 0 {
				fmt.Fprintf(out, "# resume: replaying %d checkpointed experiments\n", len(done))
			}
			opts.Replay = func(id string) (*mtreescale.Result, bool) {
				res, ok := done[id]
				return res, ok
			}
		}
		var err error
		if ck, err = mtreescale.NewCheckpointer(cfg.outDir, cfg.resume); err != nil {
			return err
		}
		defer ck.Close()
		opts.OnComplete = func(st mtreescale.ExperimentStats) {
			ck.Append(key, st.ID, st.Result)
		}
	}
	start := time.Now()
	stats, err := mtreescale.RunExperimentsCtx(ctx, ids, p, opts)
	total := time.Since(start)
	if err != nil {
		// Salvage completed work: with -out, finished experiments are
		// written (and were checkpointed) even though the run failed.
		if cfg.outDir != "" {
			for _, st := range stats {
				if st.Err == nil && st.Result != nil {
					if werr := emit(out, st.Result, cfg.format, cfg.outDir, cfg.width, cfg.height); werr != nil {
						return fmt.Errorf("%w (and writing salvaged results: %v)", err, werr)
					}
				}
			}
		}
		return err
	}
	for _, st := range stats {
		if err := emit(out, st.Result, cfg.format, cfg.outDir, cfg.width, cfg.height); err != nil {
			return err
		}
	}
	if cfg.parallel != 1 {
		printSummary(out, stats, cfg.parallel, p, total)
	}
	if ck != nil {
		return ck.Close()
	}
	return nil
}

// printSummary appends the per-experiment wall-clock/allocation table.
func printSummary(out io.Writer, stats []mtreescale.ExperimentStats, parallel int, p mtreescale.Profile, total time.Duration) {
	// The engine worker count the profile actually gets: Protocol.Workers
	// defaults to GOMAXPROCS and is clamped to the profile's source count.
	engineWorkers := mtreescale.Protocol{NSource: p.NSource}.EffectiveWorkers()
	fmt.Fprintf(out, "# schedule: %d experiments, parallel=%d, engine workers/experiment=%d, profile=%s, total wall %.2fs\n",
		len(stats), parallel, engineWorkers, p.Name, total.Seconds())
	var sumWall time.Duration
	replayed := 0
	for _, st := range stats {
		marker := ""
		if st.Replayed {
			marker = "  (resumed)"
			replayed++
		}
		fmt.Fprintf(out, "# %-20s wall %8.2fs  alloc %8.1f MB%s\n",
			st.ID, st.Wall.Seconds(), float64(st.AllocBytes)/(1<<20), marker)
		sumWall += st.Wall
	}
	if replayed > 0 {
		fmt.Fprintf(out, "# %d of %d experiments replayed from checkpoint\n", replayed, len(stats))
	}
	if len(stats) > 1 && total > 0 {
		fmt.Fprintf(out, "# sum of experiment wall clocks %.2fs (speedup ×%.2f)\n",
			sumWall.Seconds(), sumWall.Seconds()/total.Seconds())
	}
}

func render(out io.Writer, res *mtreescale.Result, format string, w, h int) error {
	switch format {
	case "ascii":
		if res.Figure == nil {
			return renderTable(out, res)
		}
		s, err := mtreescale.RenderASCII(res.Figure, mtreescale.ASCIIOptions{Width: w, Height: h})
		if err != nil {
			return err
		}
		fmt.Fprint(out, s)
		renderNotes(out, res)
		return nil
	case "csv":
		if res.Figure == nil {
			return renderTableCSV(out, res)
		}
		return mtreescale.WriteFigureCSV(out, res.Figure)
	case "gnuplot":
		if res.Figure == nil {
			return fmt.Errorf("%s is a table; use -format ascii or csv", res.ID)
		}
		return mtreescale.WriteFigureGnuplot(out, res.Figure)
	case "notes":
		renderNotes(out, res)
		return nil
	default:
		return fmt.Errorf("unknown format %q", format)
	}
}

func renderNotes(out io.Writer, res *mtreescale.Result) {
	if len(res.Notes) == 0 {
		return
	}
	fmt.Fprintf(out, "notes [%s]:\n", res.ID)
	for _, n := range res.Notes {
		fmt.Fprintf(out, "  - %s\n", n)
	}
}

func renderTable(out io.Writer, res *mtreescale.Result) error {
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "%s\n", strings.Join(res.Header, "\t"))
	for _, row := range res.Rows {
		fmt.Fprintf(tw, "%s\n", strings.Join(row, "\t"))
	}
	return tw.Flush()
}

func renderTableCSV(out io.Writer, res *mtreescale.Result) error {
	fmt.Fprintln(out, strings.Join(res.Header, ","))
	for _, row := range res.Rows {
		fmt.Fprintln(out, strings.Join(row, ","))
	}
	return nil
}

// writeAll renders one result into <dir>/<id>.{txt,csv,gp}. Every file is
// published atomically: a crash mid-run leaves either the previous contents
// or the complete new contents, never a torn file.
func writeAll(dir string, res *mtreescale.Result, w, h int) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var txt strings.Builder
	if res.Figure != nil {
		s, err := mtreescale.RenderASCII(res.Figure, mtreescale.ASCIIOptions{Width: w, Height: h})
		if err != nil {
			return err
		}
		txt.WriteString(s)
	} else {
		if err := renderTable(&txt, res); err != nil {
			return err
		}
	}
	renderNotes(&txt, res)
	if err := mtreescale.WriteFileAtomic(filepath.Join(dir, res.ID+".txt"), []byte(txt.String()), 0o644); err != nil {
		return err
	}

	var csvB strings.Builder
	if res.Figure != nil {
		if err := mtreescale.WriteFigureCSV(&csvB, res.Figure); err != nil {
			return err
		}
	} else {
		if err := renderTableCSV(&csvB, res); err != nil {
			return err
		}
	}
	if err := mtreescale.WriteFileAtomic(filepath.Join(dir, res.ID+".csv"), []byte(csvB.String()), 0o644); err != nil {
		return err
	}

	if res.Figure != nil {
		var gp strings.Builder
		if err := mtreescale.WriteFigureGnuplot(&gp, res.Figure); err != nil {
			return err
		}
		if err := mtreescale.WriteFileAtomic(filepath.Join(dir, res.ID+".gp"), []byte(gp.String()), 0o644); err != nil {
			return err
		}
	}
	return nil
}
