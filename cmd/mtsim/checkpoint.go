package main

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	mtreescale "mtreescale"
)

// checkpointFile is the journal mtsim appends to inside -out: one JSON
// record per completed experiment, fsynced, so an interrupted run can be
// resumed with -resume without redoing finished work.
const checkpointFile = "checkpoint.jsonl"

// checkpointRecord is one completed experiment. Key binds the record to the
// exact profile that produced it: a resume under a different profile (or
// different -nested/-sptcache settings baked into the profile) ignores it.
type checkpointRecord struct {
	Key    string             `json:"key"`
	ID     string             `json:"id"`
	Result *mtreescale.Result `json:"result"`
}

// profileKey fingerprints a profile. Experiments are deterministic functions
// of the profile, so (key, id) identifies a result exactly; %#v covers every
// field including ones added later.
func profileKey(p mtreescale.Profile) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%#v", p)))
	return hex.EncodeToString(sum[:])
}

// checkpointer appends completed experiments to <dir>/checkpoint.jsonl.
// Append is safe for concurrent use (the scheduler calls OnComplete from
// worker goroutines) and fsyncs after every record so a crash loses at most
// the experiment in flight.
type checkpointer struct {
	mu  sync.Mutex
	f   *os.File
	key string
	err error // first write failure; reported once at close
}

// newCheckpointer opens the journal for appending, truncating any previous
// journal unless resuming.
func newCheckpointer(dir string, key string, resume bool) (*checkpointer, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	flags := os.O_CREATE | os.O_WRONLY | os.O_APPEND
	if !resume {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(filepath.Join(dir, checkpointFile), flags, 0o644)
	if err != nil {
		return nil, err
	}
	return &checkpointer{f: f, key: key}, nil
}

// append journals one completed experiment. Failures are remembered rather
// than returned: OnComplete has no error channel, and a broken journal must
// not fail the experiments themselves.
func (c *checkpointer) append(id string, res *mtreescale.Result) {
	rec, err := json.Marshal(checkpointRecord{Key: c.key, ID: id, Result: res})
	if err == nil {
		rec = append(rec, '\n')
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return
	}
	if err == nil {
		_, err = c.f.Write(rec)
	}
	if err == nil {
		err = c.f.Sync()
	}
	if err != nil {
		c.err = fmt.Errorf("checkpoint: %s: %w", id, err)
	}
}

// close releases the journal and reports the first deferred write failure.
func (c *checkpointer) close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cerr := c.f.Close(); c.err == nil && cerr != nil {
		c.err = cerr
	}
	return c.err
}

// loadCheckpoints reads the journal from dir and returns the completed
// results recorded under the given profile key. A missing journal is an
// empty resume; a truncated trailing line (the crash case the journal
// exists for) is skipped, as are records from other profiles.
func loadCheckpoints(dir string, key string) (map[string]*mtreescale.Result, error) {
	f, err := os.Open(filepath.Join(dir, checkpointFile))
	if err != nil {
		if os.IsNotExist(err) {
			return map[string]*mtreescale.Result{}, nil
		}
		return nil, err
	}
	defer f.Close()
	done := map[string]*mtreescale.Result{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec checkpointRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			continue // torn trailing write from a crash
		}
		if rec.Key != key || rec.ID == "" || rec.Result == nil {
			continue
		}
		done[rec.ID] = rec.Result
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	return done, nil
}
