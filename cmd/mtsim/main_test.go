package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, id := range []string{"table1", "fig1a", "fig9b", "ext-steiner"} {
		if !strings.Contains(out, id) {
			t.Fatalf("list missing %s:\n%s", id, out)
		}
	}
}

func TestDescribe(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-describe"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "fig9b") || !strings.Contains(out, "Metropolis") {
		t.Fatalf("describe output:\n%s", out[:200])
	}
}

func TestReportMode(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-report", "-profile", "quick"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "# mtreescale experiment report") || !strings.Contains(out, "## fig8") {
		t.Fatalf("report output:\n%s", out[:120])
	}
}

func TestMissingExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err == nil {
		t.Fatal("no arguments must error")
	}
}

func TestUnknownProfile(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-experiment", "fig8", "-profile", "bogus"}, &buf); err == nil {
		t.Fatal("unknown profile must error")
	}
}

func TestUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-experiment", "nope", "-profile", "quick"}, &buf); err == nil {
		t.Fatal("unknown experiment must error")
	}
}

func TestUnknownFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-experiment", "fig8", "-profile", "quick", "-format", "png"}, &buf); err == nil {
		t.Fatal("unknown format must error")
	}
}

func TestTableASCII(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-experiment", "table1", "-profile", "quick"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "arpa") || !strings.Contains(out, "avg degree") {
		t.Fatalf("table output:\n%s", out)
	}
}

func TestTableCSVAndGnuplotRejection(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-experiment", "table1", "-profile", "quick", "-format", "csv"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "name,style") {
		t.Fatalf("csv header missing:\n%s", buf.String())
	}
	if err := run([]string{"-experiment", "table1", "-profile", "quick", "-format", "gnuplot"}, &buf); err == nil {
		t.Fatal("gnuplot of a table must error")
	}
}

func TestFigureFormats(t *testing.T) {
	for _, format := range []string{"ascii", "csv", "gnuplot", "notes"} {
		var buf bytes.Buffer
		if err := run([]string{"-experiment", "fig8", "-profile", "quick", "-format", format}, &buf); err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("%s: empty output", format)
		}
	}
}

func TestOutDirectory(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := run([]string{"-experiment", "fig8", "-profile", "quick", "-out", dir}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, ext := range []string{".txt", ".csv", ".gp"} {
		if _, err := os.Stat(filepath.Join(dir, "fig8"+ext)); err != nil {
			t.Fatalf("missing fig8%s: %v", ext, err)
		}
	}
	// Table writes txt + csv only.
	if err := run([]string{"-experiment", "table1", "-profile", "quick", "-out", dir}, &buf); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "table1.csv")); err != nil {
		t.Fatal(err)
	}
}
