package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, id := range []string{"table1", "fig1a", "fig9b", "ext-steiner", "churn-steady", "churn-repair"} {
		if !strings.Contains(out, id) {
			t.Fatalf("list missing %s:\n%s", id, out)
		}
	}
}

// TestListGroupedFormat pins the grouped -list layout: "[family]" header
// lines in paper order, every experiment under exactly the right header,
// groups separated by blank lines.
func TestListGroupedFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	var headers []string
	family := ""
	got := map[string]string{} // id -> family
	for _, line := range strings.Split(out, "\n") {
		line = strings.TrimRight(line, " ")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "[") {
			family = strings.Trim(line, "[]")
			headers = append(headers, family)
			continue
		}
		if family == "" {
			t.Fatalf("experiment line before any [family] header: %q", line)
		}
		got[strings.Fields(line)[0]] = family
	}
	wantHeaders := []string{"curve", "shared", "steiner", "ensemble", "weighted", "affinity", "churn"}
	if strings.Join(headers, ",") != strings.Join(wantHeaders, ",") {
		t.Fatalf("family headers = %v, want %v", headers, wantHeaders)
	}
	for id, fam := range map[string]string{
		"table1":             "curve",
		"fig9b":              "curve",
		"ext-shared":         "shared",
		"ext-affinity-graph": "affinity",
		"churn-steady":       "churn",
		"churn-repair":       "churn",
	} {
		if got[id] != fam {
			t.Fatalf("%s grouped under %q, want %q\n%s", id, got[id], fam, out)
		}
	}
}

func TestDescribe(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-describe"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "fig9b") || !strings.Contains(out, "Metropolis") {
		t.Fatalf("describe output:\n%s", out[:200])
	}
}

func TestReportMode(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-report", "-profile", "quick"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "# mtreescale experiment report") || !strings.Contains(out, "## fig8") {
		t.Fatalf("report output:\n%s", out[:120])
	}
}

func TestMissingExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), nil, &buf); err == nil {
		t.Fatal("no arguments must error")
	}
}

func TestUnknownProfile(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-experiment", "fig8", "-profile", "bogus"}, &buf); err == nil {
		t.Fatal("unknown profile must error")
	}
}

func TestUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-experiment", "nope", "-profile", "quick"}, &buf); err == nil {
		t.Fatal("unknown experiment must error")
	}
}

func TestUnknownFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-experiment", "fig8", "-profile", "quick", "-format", "png"}, &buf); err == nil {
		t.Fatal("unknown format must error")
	}
}

func TestTableASCII(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-experiment", "table1", "-profile", "quick"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "arpa") || !strings.Contains(out, "avg degree") {
		t.Fatalf("table output:\n%s", out)
	}
}

func TestTableCSVAndGnuplotRejection(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-experiment", "table1", "-profile", "quick", "-format", "csv"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "name,style") {
		t.Fatalf("csv header missing:\n%s", buf.String())
	}
	if err := run(context.Background(), []string{"-experiment", "table1", "-profile", "quick", "-format", "gnuplot"}, &buf); err == nil {
		t.Fatal("gnuplot of a table must error")
	}
}

func TestFigureFormats(t *testing.T) {
	for _, format := range []string{"ascii", "csv", "gnuplot", "notes"} {
		var buf bytes.Buffer
		if err := run(context.Background(), []string{"-experiment", "fig8", "-profile", "quick", "-format", format}, &buf); err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("%s: empty output", format)
		}
	}
}

func TestParallelSchedulerOutDirectory(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-experiment", "all", "-profile", "quick", "-parallel", "0", "-out", dir}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Files and "wrote" lines must appear for every experiment, in paper
	// order, with the stats summary appended.
	if _, err := os.Stat(filepath.Join(dir, "fig1a.csv")); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "table1.txt")); err != nil {
		t.Fatal(err)
	}
	t1 := strings.Index(out, "wrote table1")
	f1 := strings.Index(out, "wrote fig1a")
	f9 := strings.Index(out, "wrote fig9b")
	if t1 < 0 || f1 < 0 || f9 < 0 || !(t1 < f1 && f1 < f9) {
		t.Fatalf("output not in paper order:\n%s", out)
	}
	if !strings.Contains(out, "# schedule:") || !strings.Contains(out, "wall") {
		t.Fatalf("missing stats summary:\n%s", out)
	}
}

func TestParallelSingleExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-experiment", "fig8", "-profile", "quick", "-parallel", "4", "-format", "notes"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "# schedule: 1 experiments") {
		t.Fatalf("missing schedule summary:\n%s", buf.String())
	}
}

func TestNestedFlag(t *testing.T) {
	var base, nested bytes.Buffer
	if err := run(context.Background(), []string{"-experiment", "fig1a", "-profile", "quick", "-format", "csv"}, &base); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"-experiment", "fig1a", "-profile", "quick", "-format", "csv", "-nested"}, &nested); err != nil {
		t.Fatal(err)
	}
	if base.Len() == 0 || nested.Len() == 0 {
		t.Fatal("empty curve output")
	}
	if base.String() == nested.String() {
		t.Fatal("-nested did not switch the sampling engine")
	}
}

func TestOutDirectory(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-experiment", "fig8", "-profile", "quick", "-out", dir}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, ext := range []string{".txt", ".csv", ".gp"} {
		if _, err := os.Stat(filepath.Join(dir, "fig8"+ext)); err != nil {
			t.Fatalf("missing fig8%s: %v", ext, err)
		}
	}
	// Table writes txt + csv only.
	if err := run(context.Background(), []string{"-experiment", "table1", "-profile", "quick", "-out", dir}, &buf); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "table1.csv")); err != nil {
		t.Fatal(err)
	}
}
