package main

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	mtreescale "mtreescale"
)

// readOutputs returns the experiment output files (name → contents) in dir,
// excluding the checkpoint journal.
func readOutputs(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string][]byte{}
	for _, e := range entries {
		if e.IsDir() || e.Name() == mtreescale.CheckpointFile {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = b
	}
	return out
}

func assertSameOutputs(t *testing.T, want, got map[string][]byte) {
	t.Helper()
	for name, w := range want {
		g, ok := got[name]
		if !ok {
			t.Errorf("missing output %s", name)
			continue
		}
		if !bytes.Equal(w, g) {
			t.Errorf("%s differs from the uninterrupted run (%d vs %d bytes)", name, len(w), len(g))
		}
	}
	for name := range got {
		if _, ok := want[name]; !ok {
			t.Errorf("unexpected extra output %s", name)
		}
	}
}

// The PR's acceptance criterion: interrupt a run partway, rerun with
// -resume, and the final outputs are byte-identical to an uninterrupted run.
func TestResumeByteIdenticalOutputs(t *testing.T) {
	ids := "table1,fig8"
	baseline := t.TempDir()
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-experiment", ids, "-profile", "quick", "-out", baseline}, &buf); err != nil {
		t.Fatal(err)
	}

	// Partial run: only fig8 completes and is checkpointed.
	resumed := t.TempDir()
	if err := run(context.Background(), []string{"-experiment", "fig8", "-profile", "quick", "-out", resumed}, &buf); err != nil {
		t.Fatal(err)
	}
	ck, err := os.ReadFile(filepath.Join(resumed, mtreescale.CheckpointFile))
	if err != nil {
		t.Fatalf("no checkpoint journal after -out run: %v", err)
	}
	if !strings.Contains(string(ck), `"id":"fig8"`) {
		t.Fatalf("journal does not record fig8:\n%s", ck)
	}

	// Resume: fig8 replays from the journal, table1 runs fresh.
	buf.Reset()
	if err := run(context.Background(), []string{"-experiment", ids, "-profile", "quick", "-out", resumed, "-resume", "-parallel", "2"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "# resume: replaying 1 checkpointed experiments") {
		t.Fatalf("resume did not replay the checkpoint:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "(resumed)") {
		t.Fatalf("schedule summary does not mark the replayed experiment:\n%s", buf.String())
	}
	assertSameOutputs(t, readOutputs(t, baseline), readOutputs(t, resumed))
}

// An interrupted run (deadline fires before the work is done) salvages what
// finished, and -resume completes the rest to byte-identical outputs.
func TestTimeoutInterruptThenResume(t *testing.T) {
	ids := "table1,fig8,fig2a"
	baseline := t.TempDir()
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-experiment", ids, "-profile", "quick", "-out", baseline}, &buf); err != nil {
		t.Fatal(err)
	}

	// 1ns: the deadline has already passed by the first ctx poll, however
	// fast the machine; the run must fail and leave the journal usable.
	interrupted := t.TempDir()
	err := run(context.Background(), []string{"-experiment", ids, "-profile", "quick", "-out", interrupted, "-timeout", "1ns"}, &buf)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}

	buf.Reset()
	if err := run(context.Background(), []string{"-experiment", ids, "-profile", "quick", "-out", interrupted, "-resume"}, &buf); err != nil {
		t.Fatal(err)
	}
	assertSameOutputs(t, readOutputs(t, baseline), readOutputs(t, interrupted))
}

func TestPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var buf bytes.Buffer
	err := run(ctx, []string{"-experiment", "fig8", "-profile", "quick"}, &buf)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestResumeRequiresOut(t *testing.T) {
	var buf bytes.Buffer
	err := run(context.Background(), []string{"-experiment", "fig8", "-profile", "quick", "-resume"}, &buf)
	if err == nil || !strings.Contains(err.Error(), "-resume requires -out") {
		t.Fatalf("err = %v, want -resume requires -out", err)
	}
}

func TestMaxHeapAbortsExperiment(t *testing.T) {
	var buf bytes.Buffer
	// 1 byte: the scheduler's deterministic pre-check trips immediately.
	err := run(context.Background(), []string{"-experiment", "fig8", "-profile", "quick", "-maxheap", "1"}, &buf)
	if !errors.Is(err, mtreescale.ErrHeapLimit) {
		t.Fatalf("err = %v, want ErrHeapLimit", err)
	}
	// A generous limit passes.
	if err := run(context.Background(), []string{"-experiment", "fig8", "-profile", "quick", "-maxheap", "64g", "-format", "notes"}, &buf); err != nil {
		t.Fatal(err)
	}
}

func TestExpandIDs(t *testing.T) {
	if ids, err := expandIDs("all"); err != nil || len(ids) < 10 {
		t.Fatalf("all → %v, %v", ids, err)
	}
	ids, err := expandIDs("fig8, table1,fig1a")
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 || ids[0] != "fig8" || ids[1] != "table1" || ids[2] != "fig1a" {
		t.Fatalf("comma list → %v", ids)
	}
	if _, err := expandIDs("fig8,all"); err == nil {
		t.Fatal("'all' in a list must error")
	}
	if _, err := expandIDs(" , "); err == nil {
		t.Fatal("empty list must error")
	}
}

func TestCommaSeparatedExperiments(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-experiment", "fig8,table1", "-profile", "quick", "-format", "notes"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "notes [fig8]") {
		t.Fatalf("missing fig8 output:\n%s", out)
	}
}

// The checkpoint journal's own round-trip, torn-line and profile-key tests
// live with the implementation in internal/experiments/checkpoint_test.go;
// here we only keep the CLI-level resume behavior above.
