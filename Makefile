# Convenience targets for the mtreescale reproduction.

GO ?= go

.PHONY: all build vet test race bench fuzz results results-paper report clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Short fuzzing passes over the two parsers.
fuzz:
	$(GO) test -fuzz FuzzRead -fuzztime 30s ./internal/graph/
	$(GO) test -fuzz FuzzReadCSV -fuzztime 30s ./internal/plot/

# Regenerate every experiment at the default (medium) profile.
results:
	$(GO) run ./cmd/mtsim -experiment all -profile medium -out results
	$(GO) run ./cmd/mtsim -report -profile medium > results/REPORT.md

# Full-size paper-faithful runs (minutes; fig1b dominates).
results-paper:
	$(GO) run ./cmd/mtsim -experiment all -profile paper -out results-paper

report:
	$(GO) run ./cmd/mtsim -report -profile quick

clean:
	rm -f test_output.txt bench_output.txt
