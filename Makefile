# Convenience targets for the mtreescale reproduction.

GO ?= go

.PHONY: all check build vet test race race-all race-robust bench bench-all bench-compare bench-churn bench-cluster bench-large large-smoke cluster-smoke chaos-smoke churn-smoke membership-smoke fuzz fuzz-smoke results results-paper report clean

all: build vet test

# The default pre-commit gate: build, vet, full test suite, a race pass over
# the concurrent packages (engine + scheduler), and the large-graph smoke
# (1M-node streamed build + memory-model assertion + one curve point).
check: build vet test race large-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detect the packages that spawn goroutines (measurement workers,
# ensemble networks, experiment scheduler, mtsim's checkpointer, the mtsimd
# daemon and its serve substrate) and the shared caches (SPT cache, topology
# generation cache). race-all covers everything but takes several times
# longer.
race:
	$(GO) test -race ./internal/graph/... ./internal/topology/... \
		./internal/mcast/... ./internal/experiments/... ./internal/serve/... \
		./internal/cluster/... ./internal/atomicio/... ./internal/chaos/... \
		./cmd/mtsim/... ./cmd/mtsimd/... ./cmd/mtctl/...

# The robustness surface under contention: cancellation, panic isolation,
# checkpoint/resume, heap-guard, admission/shedding, drain, and quarantine
# tests under the race detector, with a hard timeout so a lost cancellation
# hangs CI instead of passing silently.
race-robust:
	$(GO) test -race -timeout 5m \
		-run 'Cancel|Panic|Recover|Resume|Checkpoint|HeapGuard|MaxHeap|Timeout|Register|Commit|WriteFile|Quarantine|Shed|Drain|Saturat|Degraded|SlowLoris|Restart|Eviction|Churn|Backs|Survives|RetryBudget|Chaos|Heartbeat|Specul|Integrity|Torn|Tail|Auth|Membership|Fence|Registry|Lease|Announce|Breaker|Backoff|TLS' \
		./internal/mcast/... ./internal/experiments/... ./internal/panicsafe/... \
		./internal/atomicio/... ./internal/serve/... ./internal/graph/... \
		./internal/cluster/... ./internal/chaos/... \
		./cmd/mtsim/... ./cmd/mtsimd/... ./cmd/mtctl/...

race-all:
	$(GO) test -race ./...

# Record the engine benchmarks as machine-readable JSON. BENCH_6.json is the
# committed perf-trajectory point for this engine generation (compressed CSR,
# slab arenas, streamed 10M-node topologies on top of the MS-BFS batch
# kernel); bump the suffix when recording a new point so history stays
# comparable.
BENCH_JSON ?= BENCH_6.json

# The BenchmarkLarge* suite self-skips unless MTREESCALE_LARGE=1, so the plain
# `make bench` pipeline includes the invocation but records nothing for it;
# `make bench-large` records the same doc with the large points filled in.
bench:
	{ $(GO) test -run '^$$' \
		-bench 'BenchmarkMeasureCurve$$|BenchmarkMeasureCurveNested$$|BenchmarkMeasureCurveNestedCompressed$$|BenchmarkMeasureCurveNestedSerialBFS$$|BenchmarkMeasureCurveCached$$|BenchmarkMeasureSharedCurve$$' \
		-benchmem -count 1 . ; \
	  $(GO) test -run '^$$' \
		-bench 'BenchmarkBFS50k$$|BenchmarkBFS50kSerial$$|BenchmarkBFS50kDense$$|BenchmarkBFS50kDenseSerial$$|BenchmarkBatchSPTs64$$|BenchmarkBatchSPTs64Serial$$|BenchmarkBatchSPTs64Compressed$$|BenchmarkBatchSPTs64Relabeled$$' \
		-benchmem -count 1 ./internal/graph ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkLarge' \
		-benchmem -benchtime 1x -count 1 -timeout 120m . ; } | $(GO) run ./cmd/benchjson -o $(BENCH_JSON)
	@cat $(BENCH_JSON)

bench-large:
	MTREESCALE_LARGE=1 $(MAKE) bench

# Record the committed cluster benchmark: the same small ensemble grid
# dispatched through the coordinator to one vs two calibrated-latency stub
# workers (see EXPERIMENTS.md for why the workers are latency stubs). The
# merged bytes of every benchmarked run are verified against the unsharded
# single-process engines before a number is written.
BENCH_CLUSTER_JSON ?= BENCH_7.json

bench-cluster:
	$(GO) run ./cmd/mtctl -bench $(BENCH_CLUSTER_JSON) \
		-bench-latency 250ms -bench-shards 8 \
		-kind ensemble -topo r100 -nets 8 -nsource 4 -nrcvr 2 -sizes 1,3,10 -seed 5
	@cat $(BENCH_CLUSTER_JSON)

bench-all:
	$(GO) test -bench=. -benchmem ./...

# Record the committed churn benchmark: the incremental delta-maintained
# tree (DynTree.Join/Leave), its degree-bounded variant, the full engine
# event path, and the recompute-per-event baseline it replaces, at steady
# state m̄ = 1000 on a 50k-node transit-stub graph. The acceptance bar is
# Incremental ≥ 10× faster than Recompute at this operating point.
BENCH_CHURN_JSON ?= BENCH_8.json

bench-churn:
	$(GO) test -run '^$$' -bench 'BenchmarkChurn' -benchmem -count 1 \
		./internal/mcast/ | $(GO) run ./cmd/benchjson -o $(BENCH_CHURN_JSON)
	@cat $(BENCH_CHURN_JSON)

# Gate a new perf point against the previous one: per-benchmark ns/op deltas,
# nonzero exit when anything shared slowed down by more than BENCH_THRESHOLD
# percent. Points recorded in different sessions of a shared host can drift
# ±20% on the cache-sensitive kernels (see EXPERIMENTS.md); for a strict gate
# re-record both generations back-to-back, or loosen the threshold.
BENCH_OLD ?= BENCH_7.json
BENCH_NEW ?= BENCH_8.json
BENCH_THRESHOLD ?= 10

bench-compare:
	$(GO) run ./cmd/benchjson -compare -threshold $(BENCH_THRESHOLD) $(BENCH_OLD) $(BENCH_NEW)

# The large-graph smoke: 1M-node streamed transit-stub, retained-heap bound
# against the streaming memory model, compression ratio, and one curve point
# byte-identical across flat/compressed/relabeled layouts. ~2s; part of
# `make check` and CI.
large-smoke:
	MTREESCALE_LARGE_SMOKE=1 $(GO) test -run 'TestLargeGraphSmoke$$' -timeout 10m .

# The cluster smoke: the coordinator's worker-kill resilience under the race
# detector (in-process daemons), then the same scenario end-to-end across
# real mtsimd processes and sockets — two workers, one killed after its
# first completed shard, merged output byte-compared against the
# single-process golden.
cluster-smoke:
	$(GO) test -race -timeout 5m \
		-run 'TestClusterSurvivesDaemonKillMidRun|TestCoordinator|TestShardEndpoint' \
		./internal/cluster/... ./cmd/mtsimd/... ./cmd/mtctl/...
	./scripts/cluster_smoke.sh

# The chaos soak: the fault-injection suite (failpoint schedules, integrity
# checksums, heartbeat eviction, speculation, journal tail repair, shard
# auth) under the race detector, the disabled-failpoint overhead benchmark
# (one atomic load — see internal/chaos/bench_test.go), then the end-to-end
# script: real daemons under chaos schedules with a worker kill, a torn
# journal resume, and a seed-determinism replay, every phase byte-compared
# against the single-process golden.
chaos-smoke:
	$(GO) test -race -timeout 5m \
		-run 'Chaos|Heartbeat|Specul|Integrity|Torn|Tail|Auth|SealVerify|JournalResume' \
		./internal/chaos/... ./internal/cluster/... ./internal/atomicio/... \
		./internal/serve/... ./cmd/mtsimd/...
	$(GO) test -run '^$$' -bench 'BenchmarkChaosDisabled$$' -benchmem -count 1 ./internal/chaos/
	./scripts/chaos_smoke.sh

# The churn smoke: the incremental-tree equivalence gates (every event
# cross-checked against a from-scratch rebuild, for the unbounded, shared
# and degree-bounded variants), cancellation-mid-churn, and the churn
# experiments, under the race detector.
churn-smoke:
	$(GO) test -race -timeout 5m -run 'Churn|DynTree' \
		./internal/mcast/... ./internal/experiments/...

# The membership smoke: the self-healing membership surface (lease registry,
# worker announce, epoch-fenced takeover, TLS transport) under the race
# detector, then the end-to-end script: real daemons with a worker joining
# mid-run, a SIGKILLed worker retired by lease expiry, a coordinator killed
# and fenced out by its replacement, and a TLS phase — every phase
# byte-compared against the single-process golden.
membership-smoke:
	$(GO) test -race -timeout 5m \
		-run 'Membership|Fence|Registry|Lease|Announce|TLS' \
		./internal/cluster/... ./internal/atomicio/... ./internal/retry/...
	./scripts/membership_smoke.sh

# Short fuzzing passes over the parsers.
fuzz:
	$(GO) test -fuzz FuzzRead$$ -fuzztime 30s ./internal/graph/
	$(GO) test -fuzz FuzzAdjCodec -fuzztime 30s ./internal/graph/
	$(GO) test -fuzz FuzzMSBFSEquivalence -fuzztime 30s ./internal/graph/
	$(GO) test -fuzz FuzzReadCSV -fuzztime 30s ./internal/plot/
	$(GO) test -fuzz FuzzParseCheckpointLine -fuzztime 30s ./internal/experiments/
	$(GO) test -fuzz FuzzParseBenchOutput -fuzztime 30s ./cmd/benchjson/
	$(GO) test -fuzz FuzzCompareDocs -fuzztime 30s ./cmd/benchjson/
	$(GO) test -fuzz FuzzParseChaosPlan -fuzztime 30s ./internal/chaos/
	$(GO) test -fuzz FuzzChurnEquivalence -fuzztime 30s ./internal/mcast/

# The CI fuzz gate: every target for a short burst, cheap enough to run on
# each push (regressions on known-crasher corpora surface immediately; long
# exploration stays in `make fuzz`).
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzRead$$ -fuzztime 10s ./internal/graph/
	$(GO) test -run '^$$' -fuzz FuzzAdjCodec -fuzztime 10s ./internal/graph/
	$(GO) test -run '^$$' -fuzz FuzzMSBFSEquivalence -fuzztime 10s ./internal/graph/
	$(GO) test -run '^$$' -fuzz FuzzReadCSV -fuzztime 10s ./internal/plot/
	$(GO) test -run '^$$' -fuzz FuzzParseCheckpointLine -fuzztime 10s ./internal/experiments/
	$(GO) test -run '^$$' -fuzz FuzzParseBenchOutput -fuzztime 10s ./cmd/benchjson/
	$(GO) test -run '^$$' -fuzz FuzzCompareDocs -fuzztime 10s ./cmd/benchjson/
	$(GO) test -run '^$$' -fuzz FuzzParseChaosPlan -fuzztime 10s ./internal/chaos/
	$(GO) test -run '^$$' -fuzz FuzzChurnEquivalence -fuzztime 10s ./internal/mcast/

# Regenerate every experiment at the default (medium) profile.
results:
	$(GO) run ./cmd/mtsim -experiment all -profile medium -out results
	$(GO) run ./cmd/mtsim -report -profile medium > results/REPORT.md

# Full-size paper-faithful runs (minutes; fig1b dominates).
results-paper:
	$(GO) run ./cmd/mtsim -experiment all -profile paper -out results-paper

report:
	$(GO) run ./cmd/mtsim -report -profile quick

clean:
	rm -f test_output.txt bench_output.txt
