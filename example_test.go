package mtreescale_test

import (
	"fmt"
	"log"

	mtreescale "mtreescale"
)

// ExampleAnalyticTree_LeafTreeSize evaluates the paper's Equation 4: the
// exact expected multicast tree size on a binary tree of depth 4 as the
// number of (with-replacement) leaf receivers grows.
func ExampleAnalyticTree_LeafTreeSize() {
	tr := mtreescale.AnalyticTree{K: 2, Depth: 4}
	for _, n := range []float64{1, 4, 16, 1e9} {
		l, err := tr.LeafTreeSize(n)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("L(%g) = %.2f\n", n, l)
	}
	// A single receiver's tree is its depth-4 path; infinitely many
	// receivers saturate all 30 links.

	// Output:
	// L(1) = 4.00
	// L(4) = 11.56
	// L(16) = 23.32
	// L(1e+09) = 30.00
}

// ExampleExpectedDistinct converts between the paper's two group-size
// notions (Equation 1): n with-replacement draws vs m̄ expected distinct
// sites.
func ExampleExpectedDistinct() {
	m, err := mtreescale.ExpectedDistinct(1024, 1024)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("1024 draws from 1024 sites hit %.0f distinct sites\n", m)
	n, err := mtreescale.RequiredDraws(1024, 512)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hitting 512 distinct sites takes %.0f draws\n", n)

	// Output:
	// 1024 draws from 1024 sites hit 647 distinct sites
	// hitting 512 distinct sites takes 709 draws
}

// ExamplePricing applies the Chuang-Sirbu cost-based tariff that motivated
// the original scaling law.
func ExamplePricing() {
	p := mtreescale.DefaultPricing(1.00) // $1 per unicast
	for _, m := range []int{1, 10, 100, 1000} {
		gp, err := p.GroupPrice(m)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("group of %4d: $%7.2f total, $%.3f per receiver\n",
			m, gp, gp/float64(m))
	}

	// Output:
	// group of    1: $   1.00 total, $1.000 per receiver
	// group of   10: $   6.31 total, $0.631 per receiver
	// group of  100: $  39.81 total, $0.398 per receiver
	// group of 1000: $ 251.19 total, $0.251 per receiver
}

// ExampleMeasureCurve runs the paper's §2 Monte-Carlo protocol on the ARPA
// map and prints the normalized tree sizes. Results are deterministic for a
// fixed seed.
func ExampleMeasureCurve() {
	g := mtreescale.ARPA()
	pts, err := mtreescale.MeasureCurve(g, []int{1, 46}, mtreescale.Distinct,
		mtreescale.Protocol{NSource: 20, NRcvr: 20, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	// m=1 is exactly 1 by definition; m=N−1 spans the whole network.
	fmt.Printf("L/ū at m=1:  %.2f\n", pts[0].MeanRatio)
	fmt.Printf("L at m=46:   %.0f (of %d links)\n", pts[1].MeanLinks, g.N()-1)

	// Output:
	// L/ū at m=1:  1.00
	// L at m=46:   46 (of 46 links)
}

// ExampleAnalyticTree_ExtremeAffinityTreeSize shows the §5 closed forms:
// clustered receivers share almost the whole tree, spread-out receivers
// force maximal trees.
func ExampleAnalyticTree_ExtremeAffinityTreeSize() {
	tr := mtreescale.AnalyticTree{K: 2, Depth: 10}
	packed, err := tr.ExtremeAffinityTreeSize(64)
	if err != nil {
		log.Fatal(err)
	}
	spread, err := tr.ExtremeDisaffinityTreeSize(64)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("64 receivers, packed:   %.0f links\n", packed)
	fmt.Printf("64 receivers, spread:   %.0f links\n", spread)

	// Output:
	// 64 receivers, packed:   130 links
	// 64 receivers, spread:   382 links
}

// ExampleRunExperiment regenerates one of the paper's figures and lists its
// series.
func ExampleRunExperiment() {
	res, err := mtreescale.RunExperiment("fig8", mtreescale.QuickProfile())
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range res.Figure.Series {
		fmt.Println(s.Name)
	}

	// Output:
	// S(r)=2^r
	// S(r)∝r^3
	// S(r)∝e^{λr²}
}
