package mtreescale_test

import (
	"testing"

	mtreescale "mtreescale"
)

func TestSharedCurveThroughAPI(t *testing.T) {
	g, err := mtreescale.TransitStubSized(200, 3.6, 3)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := mtreescale.MeasureSharedCurve(g, []int{2, 10}, mtreescale.CoreCenter,
		mtreescale.Protocol{NSource: 5, NRcvr: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range pts {
		if pt.MeanOverhead < 0.95 {
			t.Fatalf("overhead %v below 1 at m=%d", pt.MeanOverhead, pt.Size)
		}
		if pt.MeanSharedTree < pt.MeanSourceTree*0.9 {
			t.Fatalf("shared tree implausibly small: %+v", pt)
		}
	}
}

func TestEnsembleThroughAPI(t *testing.T) {
	gen := func(seed int64) (*mtreescale.Topology, error) {
		return mtreescale.TransitStubSized(120, 3.6, seed)
	}
	pts, err := mtreescale.MeasureEnsemble(gen, 3, []int{1, 8}, mtreescale.Distinct,
		mtreescale.Protocol{NSource: 3, NRcvr: 3, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].Samples != 27 {
		t.Fatalf("samples = %d", pts[0].Samples)
	}
	if pts[1].MeanRatio <= pts[0].MeanRatio {
		t.Fatal("ratio must grow with m")
	}
}

func TestSteinerThroughAPI(t *testing.T) {
	g, err := mtreescale.TiersSized(200, 4)
	if err != nil {
		t.Fatal(err)
	}
	recv := []int32{5, 50, 120, 180}
	size, err := mtreescale.SteinerTreeSize(g, 0, recv)
	if err != nil {
		t.Fatal(err)
	}
	edges, err := mtreescale.SteinerTree(g, 0, recv)
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != size {
		t.Fatalf("edge count %d != size %d", len(edges), size)
	}
	// Steiner must not beat the trivial lower bound (max distance) nor
	// exceed the SPT tree by much on average; compare directly here.
	spt, err := g.BFS(0)
	if err != nil {
		t.Fatal(err)
	}
	c := mtreescale.NewTreeCounter(g.N())
	sptSize := c.TreeSize(spt, recv)
	if size > 2*sptSize {
		t.Fatalf("KMB %d above 2× SPT %d", size, sptSize)
	}
	var maxD int32
	for _, r := range recv {
		if spt.Dist[r] > maxD {
			maxD = spt.Dist[r]
		}
	}
	if size < int(maxD) {
		t.Fatalf("KMB %d below max distance %d", size, maxD)
	}
}

func TestExtensionExperimentsRun(t *testing.T) {
	p := mtreescale.QuickProfile()
	for _, id := range []string{"ext-shared", "ext-steiner", "ext-ensemble", "ext-weighted", "ext-affinity-graph"} {
		res, err := mtreescale.RunExperiment(id, p)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if res.Figure == nil || len(res.Notes) == 0 {
			t.Fatalf("%s: incomplete result", id)
		}
	}
}
