package mtreescale_test

// The large-graph benchmark suite: MS-BFS batch scaling at 1M/5M/10M nodes
// and the full S(r)/L(m) curve on a 10M-node streamed transit-stub, all over
// the compressed CSR layout. These take minutes each, so they are gated
// behind MTREESCALE_LARGE=1 and meant to run once per recorded point:
//
//	make bench-large          # BENCH_6.json includes them
//	MTREESCALE_LARGE=1 go test -run '^$' -bench BenchmarkLarge -benchtime 1x .
//
// Ungated they skip, so `make bench-all` stays tractable.

import (
	"fmt"
	"os"
	"testing"

	mtreescale "mtreescale"
)

func largeGraph(b *testing.B, n int) *mtreescale.Topology {
	b.Helper()
	if os.Getenv("MTREESCALE_LARGE") == "" {
		b.Skip("set MTREESCALE_LARGE=1 (or run `make bench-large`) to enable")
	}
	g, err := mtreescale.TransitStubStreamed(n, 4.0, 11)
	if err != nil {
		b.Fatal(err)
	}
	if g, err = g.Compress(false); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(g.MemBytes())/(1<<20), "graphMB")
	return g
}

// benchLargeBatch traverses 64 random sources through one MS-BFS batch — the
// kernel scaling ladder (wall clock should grow roughly linearly in edges).
func benchLargeBatch(b *testing.B, n int) {
	g := largeGraph(b, n)
	sources := make([]int, 64)
	r := int64(2)
	for i := range sources {
		// Cheap deterministic spread; the kernel cost is source-agnostic.
		r = r*6364136223846793005 + 1442695040888963407
		sources[i] = int(uint64(r) % uint64(n))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch, err := mtreescale.BatchSPTs(g, sources)
		if err != nil {
			b.Fatal(err)
		}
		_ = batch
	}
}

func BenchmarkLargeBatchSPTs1M(b *testing.B)  { benchLargeBatch(b, 1_000_000) }
func BenchmarkLargeBatchSPTs5M(b *testing.B)  { benchLargeBatch(b, 5_000_000) }
func BenchmarkLargeBatchSPTs10M(b *testing.B) { benchLargeBatch(b, 10_000_000) }

// BenchmarkLargeCurve10M measures the full L(m)/ū normalized tree-size curve
// of the paper's §2 protocol on 10M nodes through the nested engine.
func BenchmarkLargeCurve10M(b *testing.B) {
	g := largeGraph(b, 10_000_000)
	sizes := mtreescale.LogSpacedSizes(1_000_000, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err := mtreescale.MeasureCurveNested(g, sizes, mtreescale.Distinct,
			mtreescale.Protocol{NSource: 4, NRcvr: 4, Seed: int64(i) + 1, BatchBFS: true})
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) != len(sizes) || pts[len(pts)-1].MeanLinks <= 0 {
			b.Fatal(fmt.Errorf("degenerate curve %+v", pts))
		}
	}
}

// BenchmarkLargeReach10M measures S(r) averaged over 8 sources on 10M nodes
// — the §4 reachability histogram at Internet scale.
func BenchmarkLargeReach10M(b *testing.B) {
	g := largeGraph(b, 10_000_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rch, err := mtreescale.MeasureReachability(g, 8, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		if len(rch.S) == 0 {
			b.Fatal("empty S(r)")
		}
	}
}
