#!/usr/bin/env bash
# cluster_smoke.sh — end-to-end cluster determinism against real binaries:
# build mtsimd and mtctl, start two daemons, record the single-process golden
# (mtctl -local), then run the same grid through the cluster while killing
# one worker as soon as it has completed a shard. The merged output must be
# byte-identical to the golden. The deterministic in-process variant of this
# scenario lives in cmd/mtsimd's TestClusterSurvivesDaemonKillMidRun; this
# script proves the same property across real processes and real sockets.
set -euo pipefail

cd "$(dirname "$0")/.."

PORT_A=${PORT_A:-18081}
PORT_B=${PORT_B:-18082}
# ti5000 (5000-node transit-stub) at this protocol width keeps each shard
# around ~100ms of real compute, so the kill below reliably lands while
# shards are still queued.
GRID=(-kind ensemble -topo ti5000 -nets 8 -nsource 600 -nrcvr 40 -sizes 1,3,10,30,100 -seed 5)

bin=$(mktemp -d) out=$(mktemp -d)
cleanup() {
    [[ -n "${A_PID:-}" ]] && kill "$A_PID" 2>/dev/null || true
    [[ -n "${B_PID:-}" ]] && kill "$B_PID" 2>/dev/null || true
    rm -rf "$bin" "$out"
}
trap cleanup EXIT

go build -o "$bin/mtsimd" ./cmd/mtsimd
go build -o "$bin/mtctl" ./cmd/mtctl

"$bin/mtsimd" -addr "127.0.0.1:$PORT_A" -worker-id smoke-a >"$out/a.log" 2>&1 &
A_PID=$!
"$bin/mtsimd" -addr "127.0.0.1:$PORT_B" -worker-id smoke-b >"$out/b.log" 2>&1 &
B_PID=$!

wait_ready() {
    for _ in $(seq 100); do
        if (exec 3<>"/dev/tcp/127.0.0.1/$1") 2>/dev/null; then exec 3>&- 3<&-; return 0; fi
        sleep 0.1
    done
    echo "cluster-smoke: worker on port $1 never became reachable" >&2
    return 1
}
wait_ready "$PORT_A"
wait_ready "$PORT_B"

echo "cluster-smoke: recording single-process golden"
"$bin/mtctl" -local "${GRID[@]}" -out "$out/local" 2>/dev/null

echo "cluster-smoke: running 8 shards over two workers, killing smoke-b after its first shard"
"$bin/mtctl" \
    -workers "http://127.0.0.1:$PORT_A,http://127.0.0.1:$PORT_B" \
    "${GRID[@]}" -shards 8 -retries 8 -backoff 100ms \
    -out "$out/cluster" 2>"$out/progress" &
CTL_PID=$!

# Kill worker B the moment the progress log attributes a completed shard to
# it — mid-run whenever shards remain. If the run drains before B completes
# anything, the identity check below still gates the result.
while kill -0 "$CTL_PID" 2>/dev/null; do
    if grep -q "complete on http://127.0.0.1:$PORT_B" "$out/progress" 2>/dev/null; then
        echo "cluster-smoke: killing smoke-b (pid $B_PID)"
        kill -9 "$B_PID"
        break
    fi
    sleep 0.05
done

if ! wait "$CTL_PID"; then
    echo "cluster-smoke: mtctl failed; progress follows" >&2
    cat "$out/progress" >&2
    exit 1
fi
sed 's/^/cluster-smoke:   /' "$out/progress"

cmp "$out/local/merged.json" "$out/cluster/merged.json"
echo "cluster-smoke: merged output byte-identical to single-process golden"
