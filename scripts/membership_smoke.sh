#!/usr/bin/env bash
# membership_smoke.sh — end-to-end self-healing membership against real
# binaries.
#
# Three phases, one invariant: whatever the membership churn does, the
# cluster's merged.json must stay byte-identical to the single-process golden.
#
#   1. The coordinator starts with ZERO static workers and a registrar
#      (-register-addr); two mtsimd workers announce themselves (-announce)
#      and join. A third worker is started mid-run and must join while
#      shards are still queued; one of the originals is SIGKILLed and must
#      be retired (requeue / eviction / lease expiry) without poisoning the
#      merge.
#   2. A coordinator journaling to -out is SIGKILLed mid-run; a replacement
#      resumes the same journal, replays the fsynced shards, and claims the
#      next fence epoch — the journal must carry both epochs.
#   3. The whole loop over TLS: the worker serves https (-tls-cert/-tls-key),
#      announces to an https registrar, and the coordinator pins the CA
#      (-tls-ca) for shards, heartbeats and the registrar alike.
#
# The deterministic in-process variants of these scenarios live in
# internal/cluster's membership tests; this script proves the same
# properties across real processes, real sockets and a real on-disk journal.
set -euo pipefail

cd "$(dirname "$0")/.."

PORT_REG=${PORT_REG:-18101}
PORT_A=${PORT_A:-18102}
PORT_B=${PORT_B:-18103}
PORT_C=${PORT_C:-18104}
PORT_REG2=${PORT_REG2:-18105}
PORT_D=${PORT_D:-18106}
TOKEN=membership-smoke-token
CERT=internal/cluster/testdata/test_cert.pem
KEY=internal/cluster/testdata/test_key.pem
# ti5000 at this width keeps each shard around ~100ms of real compute; 12
# nets give the mid-run join and the kill a comfortable window of queued
# shards to land in.
GRID=(-kind ensemble -topo ti5000 -nets 12 -nsource 600 -nrcvr 40 -sizes 1,3,10,30,100 -seed 5)
HARDEN=(-token "$TOKEN" -shards 12 -retries 12 -backoff 100ms)

bin=$(mktemp -d) out=$(mktemp -d)
cleanup() {
    for pid in "${A_PID:-}" "${B_PID:-}" "${C_PID:-}" "${D_PID:-}" "${CTL_PID:-}"; do
        [[ -n "$pid" ]] && kill "$pid" 2>/dev/null || true
    done
    rm -rf "$bin" "$out"
}
trap cleanup EXIT

go build -o "$bin/mtsimd" ./cmd/mtsimd
go build -o "$bin/mtctl" ./cmd/mtctl

wait_ready() {
    for _ in $(seq 100); do
        if (exec 3<>"/dev/tcp/127.0.0.1/$1") 2>/dev/null; then exec 3>&- 3<&-; return 0; fi
        sleep 0.1
    done
    echo "membership-smoke: port $1 never became reachable" >&2
    return 1
}

echo "membership-smoke: recording single-process golden"
"$bin/mtctl" -local "${GRID[@]}" -out "$out/local" 2>/dev/null

echo "membership-smoke: phase 1 — pure dynamic membership: registrar, mid-run join, worker kill"
"$bin/mtctl" -register-addr "127.0.0.1:$PORT_REG" \
    "${GRID[@]}" "${HARDEN[@]}" \
    -lease-ttl 750ms -heartbeat 150ms -heartbeat-fails 2 \
    -out "$out/member" 2>"$out/progress" &
CTL_PID=$!
wait_ready "$PORT_REG"

"$bin/mtsimd" -addr "127.0.0.1:$PORT_A" -worker-id member-a -shard-token "$TOKEN" \
    -announce "http://127.0.0.1:$PORT_REG" -announce-interval 200ms >"$out/a.log" 2>&1 &
A_PID=$!
"$bin/mtsimd" -addr "127.0.0.1:$PORT_B" -worker-id member-b -shard-token "$TOKEN" \
    -announce "http://127.0.0.1:$PORT_REG" -announce-interval 200ms >"$out/b.log" 2>&1 &
B_PID=$!

# Start a third worker the moment the first shard completes (it must join
# while shards are still queued), and SIGKILL worker B the moment a
# completed shard is attributed to it.
started_c=0
while kill -0 "$CTL_PID" 2>/dev/null; do
    if [[ $started_c -eq 0 ]] && grep -q "complete on" "$out/progress" 2>/dev/null; then
        "$bin/mtsimd" -addr "127.0.0.1:$PORT_C" -worker-id member-c -shard-token "$TOKEN" \
            -announce "http://127.0.0.1:$PORT_REG" -announce-interval 200ms >"$out/c.log" 2>&1 &
        C_PID=$!
        started_c=1
        echo "membership-smoke: started member-c mid-run"
    fi
    if [[ -n "${B_PID:-}" ]] && grep -q "complete on http://127.0.0.1:$PORT_B" "$out/progress" 2>/dev/null; then
        echo "membership-smoke: killing member-b (pid $B_PID)"
        kill -9 "$B_PID"
        B_PID=
    fi
    if [[ $started_c -eq 1 && -z "${B_PID:-}" ]]; then break; fi
    sleep 0.05
done

if ! wait "$CTL_PID"; then
    echo "membership-smoke: phase-1 mtctl failed; progress follows" >&2
    cat "$out/progress" >&2
    exit 1
fi
CTL_PID=
sed 's/^/membership-smoke:   /' "$out/progress"

grep -q "http://127.0.0.1:$PORT_A joined the worker pool" "$out/progress" || {
    echo "membership-smoke: member-a never joined via the registrar" >&2
    exit 1
}
grep -q "http://127.0.0.1:$PORT_C joined the worker pool" "$out/progress" || {
    echo "membership-smoke: member-c never joined mid-run" >&2
    exit 1
}
grep -Eq "after http://127\.0\.0\.1:$PORT_B failed|127\.0\.0\.1:$PORT_B evicted|127\.0\.0\.1:$PORT_B left the worker pool" "$out/progress" || {
    echo "membership-smoke: the killed worker was never requeued, evicted or retired" >&2
    exit 1
}
cmp "$out/local/merged.json" "$out/member/merged.json"
echo "membership-smoke: phase-1 merged output byte-identical to golden across a join, a kill and a retirement"

echo "membership-smoke: phase 2 — SIGKILLing the coordinator mid-run, resuming under the next fence epoch"
"$bin/mtctl" -workers "http://127.0.0.1:$PORT_A,http://127.0.0.1:$PORT_C" \
    "${GRID[@]}" "${HARDEN[@]}" \
    -out "$out/fence" 2>"$out/progress2" &
CTL_PID=$!
while kill -0 "$CTL_PID" 2>/dev/null; do
    n=$(grep -c "complete on" "$out/progress2" 2>/dev/null) || n=0
    if [[ $n -ge 2 ]]; then
        echo "membership-smoke: killing the coordinator (pid $CTL_PID) after $n completed shards"
        kill -9 "$CTL_PID"
        break
    fi
    sleep 0.05
done
wait "$CTL_PID" 2>/dev/null || true
CTL_PID=

if ! "$bin/mtctl" -workers "http://127.0.0.1:$PORT_A,http://127.0.0.1:$PORT_C" \
    "${GRID[@]}" "${HARDEN[@]}" \
    -out "$out/fence" -resume 2>"$out/progress3"; then
    echo "membership-smoke: phase-2 resume failed; progress follows" >&2
    cat "$out/progress3" >&2
    exit 1
fi
sed 's/^/membership-smoke:   /' "$out/progress3"
grep -q "resumed from journal" "$out/progress3" || {
    echo "membership-smoke: the replacement coordinator replayed no journal entries" >&2
    exit 1
}
grep -q '"fence_epoch":1' "$out/fence/checkpoint.jsonl" || {
    echo "membership-smoke: journal carries no epoch-1 fence record" >&2
    exit 1
}
grep -q '"fence_epoch":2' "$out/fence/checkpoint.jsonl" || {
    echo "membership-smoke: the replacement coordinator claimed no new fence epoch" >&2
    exit 1
}
cmp "$out/local/merged.json" "$out/fence/merged.json"
echo "membership-smoke: phase-2 merged output byte-identical to golden after a fenced coordinator takeover"

echo "membership-smoke: phase 3 — the same loop over TLS (https worker, https registrar, pinned CA)"
"$bin/mtsimd" -addr "127.0.0.1:$PORT_D" -worker-id member-d -shard-token "$TOKEN" \
    -tls-cert "$CERT" -tls-key "$KEY" \
    -announce "https://127.0.0.1:$PORT_REG2" -tls-ca "$CERT" \
    -announce-interval 200ms >"$out/d.log" 2>&1 &
D_PID=$!
wait_ready "$PORT_D"

if ! "$bin/mtctl" -register-addr "127.0.0.1:$PORT_REG2" \
    -tls-cert "$CERT" -tls-key "$KEY" -tls-ca "$CERT" \
    "${GRID[@]}" "${HARDEN[@]}" \
    -lease-ttl 2s -heartbeat 300ms \
    -out "$out/tls" 2>"$out/progress4"; then
    echo "membership-smoke: phase-3 TLS run failed; progress follows" >&2
    cat "$out/progress4" >&2
    exit 1
fi
sed 's/^/membership-smoke:   /' "$out/progress4"
grep -q "https://127.0.0.1:$PORT_D joined the worker pool" "$out/progress4" || {
    echo "membership-smoke: the TLS worker never joined via the https registrar" >&2
    exit 1
}
cmp "$out/local/merged.json" "$out/tls/merged.json"
echo "membership-smoke: phase-3 merged output byte-identical to golden over TLS end to end"
