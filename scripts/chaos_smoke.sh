#!/usr/bin/env bash
# chaos_smoke.sh — end-to-end fault-injection soak against real binaries.
#
# Three phases, one invariant: whatever the injected faults do, the cluster's
# merged.json must stay byte-identical to the single-process golden.
#
#   1. Two token-guarded mtsimd workers run with chaos schedules (handler
#      stalls, injected 429s, one bit-flipped shard payload, one truncated
#      response); the coordinator runs with journal short-writes injected,
#      heartbeats and speculation on, and worker B is SIGKILLed as soon as
#      it completes a shard.
#   2. The surviving journal's tail is corrupted with a torn record, then
#      the run is resumed against the surviving worker alone: valid entries
#      replay, the torn tail is repaired, missing shards recompute.
#   3. The same -chaos spec and -chaos-seed are run twice; the fired-fault
#      logs must be line-identical — the schedule is a pure function of the
#      seed.
#
# The deterministic in-process variants of these scenarios live in
# internal/cluster's chaos tests; this script proves the same properties
# across real processes, real sockets and a real on-disk journal.
set -euo pipefail

cd "$(dirname "$0")/.."

PORT_A=${PORT_A:-18091}
PORT_B=${PORT_B:-18092}
TOKEN=chaos-smoke-token
# ti5000 at this width keeps each shard around ~100ms of real compute, so
# the kill and the injected stalls land while shards are still queued.
GRID=(-kind ensemble -topo ti5000 -nets 8 -nsource 600 -nrcvr 40 -sizes 1,3,10,30,100 -seed 5)
HARDEN=(-token "$TOKEN" -retries 12 -backoff 100ms
    -heartbeat 300ms -heartbeat-fails 2 -speculate 3 -spec-min 500ms)

bin=$(mktemp -d) out=$(mktemp -d)
cleanup() {
    [[ -n "${A_PID:-}" ]] && kill "$A_PID" 2>/dev/null || true
    [[ -n "${B_PID:-}" ]] && kill "$B_PID" 2>/dev/null || true
    rm -rf "$bin" "$out"
}
trap cleanup EXIT

go build -o "$bin/mtsimd" ./cmd/mtsimd
go build -o "$bin/mtctl" ./cmd/mtctl

# Worker A: handler stalls and injected 429s. Worker B: one bit-flipped
# shard payload (a checksum-verification target) and one truncated response
# (a decode-failure target).
"$bin/mtsimd" -addr "127.0.0.1:$PORT_A" -worker-id chaos-a -shard-token "$TOKEN" \
    -chaos 'serve.handler=latency:400ms@0.25#3;serve.handler.status=status:429#2' \
    -chaos-seed 7 >"$out/a.log" 2>&1 &
A_PID=$!
"$bin/mtsimd" -addr "127.0.0.1:$PORT_B" -worker-id chaos-b -shard-token "$TOKEN" \
    -chaos 'shard.payload=bitflip#1;serve.response.trunc=trunc:40#1' \
    -chaos-seed 7 >"$out/b.log" 2>&1 &
B_PID=$!

wait_ready() {
    for _ in $(seq 100); do
        if (exec 3<>"/dev/tcp/127.0.0.1/$1") 2>/dev/null; then exec 3>&- 3<&-; return 0; fi
        sleep 0.1
    done
    echo "chaos-smoke: worker on port $1 never became reachable" >&2
    return 1
}
wait_ready "$PORT_A"
wait_ready "$PORT_B"

echo "chaos-smoke: recording single-process golden"
"$bin/mtctl" -local "${GRID[@]}" -out "$out/local" 2>/dev/null

echo "chaos-smoke: phase 1 — 8 shards over two faulty workers, killing chaos-b after its first shard"
"$bin/mtctl" \
    -workers "http://127.0.0.1:$PORT_A,http://127.0.0.1:$PORT_B" \
    "${GRID[@]}" "${HARDEN[@]}" -shards 8 \
    -chaos 'journal.write=short@0.3#2' -chaos-seed 7 \
    -out "$out/chaos" 2>"$out/progress" &
CTL_PID=$!

while kill -0 "$CTL_PID" 2>/dev/null; do
    if grep -q "complete on http://127.0.0.1:$PORT_B" "$out/progress" 2>/dev/null; then
        echo "chaos-smoke: killing chaos-b (pid $B_PID)"
        kill -9 "$B_PID"
        break
    fi
    sleep 0.05
done

if ! wait "$CTL_PID"; then
    echo "chaos-smoke: phase-1 mtctl failed; progress follows" >&2
    cat "$out/progress" >&2
    exit 1
fi
sed 's/^/chaos-smoke:   /' "$out/progress"

cmp "$out/local/merged.json" "$out/chaos/merged.json"
echo "chaos-smoke: phase-1 merged output byte-identical to golden under stalls, 429s, bitflip, truncation, short journal writes and a worker kill"

echo "chaos-smoke: phase 2 — corrupting the journal tail, resuming against the survivor"
printf '{"key":"torn-mid-record' >>"$out/chaos/checkpoint.jsonl"
rm "$out/chaos/merged.json"
if ! "$bin/mtctl" -workers "http://127.0.0.1:$PORT_A" \
    "${GRID[@]}" "${HARDEN[@]}" -shards 8 \
    -out "$out/chaos" -resume 2>"$out/progress2"; then
    echo "chaos-smoke: phase-2 resume failed; progress follows" >&2
    cat "$out/progress2" >&2
    exit 1
fi
sed 's/^/chaos-smoke:   /' "$out/progress2"
grep -q "resumed" "$out/progress2" || {
    echo "chaos-smoke: resume replayed no journal entries" >&2
    exit 1
}

cmp "$out/local/merged.json" "$out/chaos/merged.json"
echo "chaos-smoke: phase-2 merged output byte-identical to golden after torn-tail journal resume"

echo "chaos-smoke: phase 3 — same seed, same schedule"
for run in d1 d2; do
    "$bin/mtctl" -workers "http://127.0.0.1:$PORT_A" -token "$TOKEN" \
        "${GRID[@]}" -shards 4 -retries 12 -backoff 100ms \
        -chaos 'journal.write=short@0.5' -chaos-seed 99 \
        -out "$out/$run" 2>"$out/$run.log"
    grep '^chaos:' "$out/$run.log" >"$out/$run.fired" || true
done
if ! cmp -s "$out/d1.fired" "$out/d2.fired"; then
    echo "chaos-smoke: same -chaos-seed produced different fault schedules:" >&2
    diff "$out/d1.fired" "$out/d2.fired" >&2 || true
    exit 1
fi
[[ -s "$out/d1.fired" ]] || {
    echo "chaos-smoke: determinism phase fired no faults (spec expected journal short writes)" >&2
    exit 1
}
sed 's/^/chaos-smoke:   /' "$out/d1.fired"
cmp "$out/local/merged.json" "$out/d1/merged.json"
cmp "$out/local/merged.json" "$out/d2/merged.json"
echo "chaos-smoke: identical -chaos-seed replayed an identical fault schedule; both runs byte-identical to golden"
