package mtreescale

import (
	"context"
	"io"
	"io/fs"
	"net/http"
	"time"

	"mtreescale/internal/affinity"
	"mtreescale/internal/analytic"
	"mtreescale/internal/atomicio"
	"mtreescale/internal/buildinfo"
	"mtreescale/internal/chaos"
	"mtreescale/internal/cluster"
	"mtreescale/internal/core"
	"mtreescale/internal/experiments"
	"mtreescale/internal/graph"
	"mtreescale/internal/mcast"
	"mtreescale/internal/panicsafe"
	"mtreescale/internal/plot"
	"mtreescale/internal/reach"
	"mtreescale/internal/rng"
	"mtreescale/internal/serve"
	"mtreescale/internal/steiner"
	"mtreescale/internal/topology"
	"mtreescale/internal/valid"
	"mtreescale/internal/wgraph"
)

// ChuangSirbuExponent is the empirical scaling exponent of [3]:
// L(m) ∝ m^0.8.
const ChuangSirbuExponent = 0.8

// Topology is an immutable undirected network graph. Build one with
// GenerateTopology, NewKAryTree, or the generator functions, or parse one
// with ReadTopology.
type Topology = graph.Graph

// TopologyBuilder accumulates edges for a custom Topology.
type TopologyBuilder = graph.Builder

// NewTopologyBuilder returns a builder for a graph with n nodes.
func NewTopologyBuilder(n int) *TopologyBuilder { return graph.NewBuilder(n) }

// SPT is a single-source shortest-path tree.
type SPT = graph.SPT

// Metrics summarizes a topology (the paper's Table 1 columns).
type Metrics = graph.Metrics

// ComputeMetrics measures a topology, sampling BFS sources on large graphs.
func ComputeMetrics(g *Topology, sampleSources int, seed int64) Metrics {
	return graph.ComputeMetrics(g, sampleSources, seed)
}

// ReadTopology parses the textual edge-list format.
func ReadTopology(r io.Reader) (*Topology, error) { return graph.Read(r) }

// WriteTopology serializes a topology in the textual edge-list format.
func WriteTopology(w io.Writer, g *Topology) error { return graph.Write(w, g) }

// KAryTree is a complete k-ary tree topology with leaf bookkeeping.
type KAryTree = topology.KAryTree

// NewKAryTree builds the complete k-ary tree of the given branching factor
// and depth, with the source at node 0.
func NewKAryTree(k, depth int) (*KAryTree, error) { return topology.NewKAryTree(k, depth) }

// StandardTopologies returns the paper's Table 1 topology names.
func StandardTopologies() []string { return topology.StandardNames() }

// GeneratedTopologies returns the Table 1 generated topology names
// (Figure 1(a)).
func GeneratedTopologies() []string { return topology.GeneratedNames() }

// RealTopologies returns the Table 1 real-map topology names (Figure 1(b));
// see DESIGN.md §4 for the substitutions.
func RealTopologies() []string { return topology.RealNames() }

// GenerateTopology builds the canonical instance of a standard topology.
func GenerateTopology(name string) (*Topology, error) { return topology.Generate(name) }

// GenerateTopologySeeded builds a standard topology with an explicit seed
// (0 = canonical) and scale in (0, 1].
func GenerateTopologySeeded(name string, seed int64, scale float64) (*Topology, error) {
	return topology.GenerateSeeded(name, seed, scale)
}

// GenerateTopologyCached is GenerateTopologySeeded behind a process-wide
// generation cache: repeated requests for the same (name, seed, scale)
// return the identical immutable *Topology, and concurrent first requests
// share one build (singleflight).
func GenerateTopologyCached(name string, seed int64, scale float64) (*Topology, error) {
	return topology.GenerateCached(name, seed, scale)
}

// GenerateTopologyCachedOpt is GenerateTopologyCached with a layout choice:
// compress=true memoizes the topology in the compressed CSR layout (see
// Topology.Compress), keyed separately from the flat layout. Traversals and
// measurements over the two layouts are byte-identical.
func GenerateTopologyCachedOpt(name string, seed int64, scale float64, compress bool) (*Topology, error) {
	return topology.GenerateCachedOpt(name, seed, scale, compress)
}

// ResetTopologyCache drops every memoized topology instance.
func ResetTopologyCache() { topology.ResetCache() }

// TopologyCacheStats snapshots the generation cache's size and hit counters.
type TopologyCacheStats = topology.CacheStats

// TopologyCacheInfo returns the generation cache's current statistics.
func TopologyCacheInfo() TopologyCacheStats { return topology.CacheInfo() }

// SetTopologyCacheLimit replaces the generation cache's byte budget
// (evicting immediately if over) and returns the previous limit.
func SetTopologyCacheLimit(maxBytes int64) int64 { return topology.SetCacheLimit(maxBytes) }

// SPTCacheStats snapshots the process-wide shortest-path-tree cache.
type SPTCacheStats = graph.SPTCacheStats

// SPTCacheInfo returns the SPT cache's current statistics.
func SPTCacheInfo() SPTCacheStats { return graph.SharedSPTs.Stats() }

// SetSPTCacheLimit replaces the SPT cache's byte budget (evicting down to it
// immediately) and returns the previous limit.
func SetSPTCacheLimit(maxBytes int64) int64 { return graph.SharedSPTs.SetLimit(maxBytes) }

// ResetSPTCache drops every cached shortest-path tree and zeroes the
// counters.
func ResetSPTCache() { graph.SharedSPTs.Clear() }

// SPTBatch holds the shortest-path trees of up to len(sources) sources in one
// dense slab, as produced by the multi-source BFS kernel.
type SPTBatch = graph.SPTBatch

// BatchSPTs computes the shortest-path trees of all sources through the
// MS-BFS kernel, up to 64 sources per graph traversal. Each tree is
// node-for-node identical to BFS(source). The measurement engines use this
// kernel whenever Protocol.BatchBFS is set.
func BatchSPTs(g *Topology, sources []int) (*SPTBatch, error) { return g.BatchSPTs(sources) }

// GNP generates an Erdős–Rényi G(n,p) graph's giant component.
func GNP(n int, p float64, seed int64) (*Topology, error) { return topology.GNP(n, p, seed) }

// Waxman generates a Waxman random graph's giant component.
func Waxman(n int, alpha, beta float64, seed int64) (*Topology, error) {
	return topology.Waxman(n, alpha, beta, seed)
}

// TransitStubSized generates a GT-ITM style transit-stub topology with
// approximately n nodes and the given average degree.
func TransitStubSized(n int, avgDegree float64, seed int64) (*Topology, error) {
	return topology.TransitStubSized(n, avgDegree, seed)
}

// EdgeStream is a re-runnable, deterministic edge generator: the streaming
// CSR builder replays it twice (count pass, fill pass), so a closure must
// emit the identical edge sequence on every invocation.
type EdgeStream = graph.EdgeStream

// BuildTopologyStreamed builds an n-node topology from an edge stream without
// ever materializing an edge list — the large-graph construction path, with
// peak memory of roughly the final CSR plus one int32 per node.
func BuildTopologyStreamed(n int, name string, stream EdgeStream) (*Topology, error) {
	return graph.BuildStreamed(n, name, stream)
}

// TransitStubStreamed generates an exactly-n-node transit-stub topology
// through the streaming path: the shape solver keeps stub domains small and
// grows the transit tier instead, and edges stream straight into the CSR
// builder, so 10M+ node hierarchies build without an intermediate edge list.
func TransitStubStreamed(n int, avgDegree float64, seed int64) (*Topology, error) {
	return topology.TransitStubStreamed(n, avgDegree, seed)
}

// PreferentialAttachmentStreamed generates an n-node power-law topology
// through the streaming path (connected by construction, no giant-component
// pass, no edge list).
func PreferentialAttachmentStreamed(n, edgesPerNode, extraShortcuts int, seed int64) (*Topology, error) {
	return topology.PreferentialAttachmentStreamed(n, edgesPerNode, extraShortcuts, seed)
}

// TiersSized generates a TIERS style three-level topology with
// approximately n nodes.
func TiersSized(n int, seed int64) (*Topology, error) { return topology.TiersSized(n, seed) }

// PreferentialAttachment generates a power-law graph's giant component.
func PreferentialAttachment(n, edgesPerNode, extraShortcuts int, seed int64) (*Topology, error) {
	return topology.PreferentialAttachment(n, edgesPerNode, extraShortcuts, seed)
}

// ARPA returns the deterministic 47-node ARPANET-like topology.
func ARPA() *Topology { return topology.ARPA() }

// Grid builds a rows×cols lattice (torus when wrap is true) — the concrete
// realization of the paper's §4.3 power-law reachability case.
func Grid(rows, cols int, wrap bool) (*Topology, error) { return topology.Grid(rows, cols, wrap) }

// HomogeneousRandom generates a connected random graph with i.i.d. Poisson
// degrees (uniform-tree scaffold), whose reachability grows at a constant
// exponential rate — the generator behind the internet/as stand-ins.
func HomogeneousRandom(n int, avgDegree float64, seed int64) (*Topology, error) {
	return topology.HomogeneousRandom(n, avgDegree, seed)
}

// Protocol is the paper's §2 Monte-Carlo protocol (sources × receiver sets).
type Protocol = mcast.Protocol

// DefaultProtocol returns the paper's 100×100 protocol with the given seed.
func DefaultProtocol(seed int64) Protocol { return mcast.DefaultProtocol(seed) }

// Point is one aggregated tree-size observation.
type Point = mcast.Point

// Mode selects the receiver-drawing protocol.
type Mode = mcast.Mode

// Receiver-drawing modes: Distinct draws exactly m distinct sites (the
// L(m) protocol); WithReplacement draws n sites with replacement (L̄(n)).
const (
	Distinct        = mcast.Distinct
	WithReplacement = mcast.WithReplacement
)

// MeasureCurve runs the §2 protocol on g over the given group sizes.
func MeasureCurve(g *Topology, sizes []int, mode Mode, p Protocol) ([]Point, error) {
	return mcast.MeasureCurve(g, sizes, mode, p)
}

// MeasureCurveCtx is MeasureCurve under a cancellation context: the worker
// pool polls ctx at grid-point granularity and returns ctx's error promptly
// once it is cancelled.
func MeasureCurveCtx(ctx context.Context, g *Topology, sizes []int, mode Mode, p Protocol) ([]Point, error) {
	return mcast.MeasureCurveCtx(ctx, g, sizes, mode, p)
}

// MeasureCurveNested is the incremental fast path of the §2 protocol: one
// receiver sequence per (source, repetition), grown link by link, read off
// at every grid size. Statistically equivalent to MeasureCurve and roughly
// GridPoints× cheaper; also reachable via Protocol.Nested.
func MeasureCurveNested(g *Topology, sizes []int, mode Mode, p Protocol) ([]Point, error) {
	return mcast.MeasureCurveNested(g, sizes, mode, p)
}

// MeasureCurveNestedCtx is MeasureCurveNested under a cancellation context.
func MeasureCurveNestedCtx(ctx context.Context, g *Topology, sizes []int, mode Mode, p Protocol) ([]Point, error) {
	return mcast.MeasureCurveNestedCtx(ctx, g, sizes, mode, p)
}

// LogSpacedSizes returns up to count group sizes spanning [1, max],
// geometrically spaced.
func LogSpacedSizes(max, count int) []int { return mcast.LogSpacedSizes(max, count) }

// CoreStrategy selects the core of a shared (core-based) multicast tree.
type CoreStrategy = mcast.CoreStrategy

// Shared-tree core placement strategies.
const (
	CoreRandom = mcast.CoreRandom
	CoreSource = mcast.CoreSource
	CoreCenter = mcast.CoreCenter
)

// SharedPoint aggregates one group size of a shared-vs-source comparison.
type SharedPoint = mcast.SharedPoint

// MeasureSharedCurve compares core-based shared trees against source-rooted
// trees under the §2 protocol (the comparison the paper's footnote 1 defers
// to Wei-Estrin).
func MeasureSharedCurve(g *Topology, sizes []int, strategy CoreStrategy, p Protocol) ([]SharedPoint, error) {
	return mcast.MeasureSharedCurve(g, sizes, strategy, p)
}

// MeasureSharedCurveCtx is MeasureSharedCurve under a cancellation context.
func MeasureSharedCurveCtx(ctx context.Context, g *Topology, sizes []int, strategy CoreStrategy, p Protocol) ([]SharedPoint, error) {
	return mcast.MeasureSharedCurveCtx(ctx, g, sizes, strategy, p)
}

// MeasureEnsemble runs the footnote 4 protocol: average MeasureCurve over
// nNetworks fresh topologies built by gen.
func MeasureEnsemble(gen func(seed int64) (*Topology, error), nNetworks int, sizes []int, mode Mode, p Protocol) ([]Point, error) {
	return mcast.MeasureEnsemble(gen, nNetworks, sizes, mode, p)
}

// MeasureEnsembleCtx is MeasureEnsemble under a cancellation context; a
// panicking generator is recovered into a *PanicError instead of killing the
// process.
func MeasureEnsembleCtx(ctx context.Context, gen func(seed int64) (*Topology, error), nNetworks int, sizes []int, mode Mode, p Protocol) ([]Point, error) {
	return mcast.MeasureEnsembleCtx(ctx, gen, nNetworks, sizes, mode, p)
}

// SteinerTreeSize returns the link count of the Kou-Markowsky-Berman
// 2-approximate Steiner tree spanning the source and receivers — the
// near-optimal baseline for the paper's shortest-path trees.
func SteinerTreeSize(g *Topology, source int, receivers []int32) (int, error) {
	return steiner.TreeSize(g, source, receivers)
}

// SteinerEdge is an undirected link of a Steiner tree.
type SteinerEdge = steiner.Edge

// SteinerTree returns the edge set of the KMB approximate Steiner tree.
func SteinerTree(g *Topology, source int, receivers []int32) ([]SteinerEdge, error) {
	return steiner.Tree(g, source, receivers)
}

// WeightedTopology pairs a topology with per-link weights (the footnote 3
// extension: the paper counts hops; this supports length-weighted costs).
type WeightedTopology = wgraph.WGraph

// GeoTopology is a weighted topology with plane coordinates and Euclidean
// link weights.
type GeoTopology = wgraph.GeoGraph

// WeightedPoint is one group size of a hop-vs-weighted comparison.
type WeightedPoint = wgraph.WeightedPoint

// NewWeightedTopology attaches a symmetric positive weight function to a
// topology.
func NewWeightedTopology(g *Topology, weight func(u, v int) float64) (*WeightedTopology, error) {
	return wgraph.New(g, weight)
}

// WaxmanGeo generates a Waxman graph with Euclidean link weights.
func WaxmanGeo(n int, alpha, beta float64, seed int64) (*GeoTopology, error) {
	return wgraph.WaxmanGeo(n, alpha, beta, seed)
}

// MeasureWeightedCurve measures hop-count and length-weighted normalized
// tree sizes on the same samples.
func MeasureWeightedCurve(gg *GeoTopology, sizes []int, nSource, nRcvr int, seed int64) ([]WeightedPoint, error) {
	return wgraph.MeasureWeightedCurve(gg, sizes, nSource, nRcvr, seed)
}

// TreeCounter measures delivery-tree sizes against a fixed SPT.
type TreeCounter = mcast.TreeCounter

// NewTreeCounter returns a counter for graphs of at most n nodes.
func NewTreeCounter(n int) *TreeCounter { return mcast.NewTreeCounter(n) }

// DynTree is an incrementally maintained delivery tree: Join grafts a
// receiver along its shortest path to the first on-tree node and Leave
// prunes the branch it no longer shares, both in O(path-to-tree) — the
// engine behind the churn workload. A positive degree cap enables the
// bounded-degree variant (degree-constrained grafting in the style of
// arXiv 0906.0379).
type DynTree = mcast.DynTree

// NewDynTree builds an incremental delivery tree rooted at spt's source
// (degreeCap 0 = unbounded; the arena may be nil).
func NewDynTree(g *Topology, spt *SPT, degreeCap int) (*DynTree, error) {
	return mcast.NewDynTree(g, spt, degreeCap, nil)
}

// ChurnConfig parameterizes the dynamic-membership workload: Poisson
// arrivals at rate m̄/E[S] with i.i.d. session lengths, measured at steady
// state.
type ChurnConfig = mcast.ChurnConfig

// ChurnResult aggregates one churn run's steady-state statistics.
type ChurnResult = mcast.ChurnResult

// ChurnVariant selects the tree maintained under churn.
type ChurnVariant = mcast.ChurnVariant

// Churn tree variants: source-rooted shortest-path, core-rooted shared,
// and degree-bounded grafting.
const (
	ChurnSPT     = mcast.ChurnSPT
	ChurnShared  = mcast.ChurnShared
	ChurnBounded = mcast.ChurnBounded
)

// SessionDist selects the churn session-length distribution.
type SessionDist = mcast.SessionDist

// Session-length distributions: exponential (memoryless), Pareto
// (heavy-tailed, α > 1), and fixed-length sessions.
const (
	SessionExp    = mcast.SessionExp
	SessionPareto = mcast.SessionPareto
	SessionFixed  = mcast.SessionFixed
)

// ParseSessionDist resolves "exp", "pareto" or "fixed" (empty = exp).
func ParseSessionDist(s string) (SessionDist, error) { return mcast.ParseSessionDist(s) }

// MeasureChurn drives DynTrees with the Poisson join/leave workload over
// the protocol's sources and reduces the per-source steady-state
// statistics deterministically (only EventsPerSec is wall-clock).
func MeasureChurn(g *Topology, cfg ChurnConfig, p Protocol) (*ChurnResult, error) {
	return mcast.MeasureChurn(g, cfg, p)
}

// MeasureChurnCtx is MeasureChurn under a cancellation context. Unlike the
// static engines, cancellation returns BOTH the partial result (with
// ctx.Err() recorded in its Err field) and the context's error.
func MeasureChurnCtx(ctx context.Context, g *Topology, cfg ChurnConfig, p Protocol) (*ChurnResult, error) {
	return mcast.MeasureChurnCtx(ctx, g, cfg, p)
}

// Increments is the empirical ΔL̄(j) measurement of the §3 derivative
// analysis.
type Increments = mcast.Increments

// MeasureIncrements measures the expected number of links each successive
// receiver adds to the delivery tree.
func MeasureIncrements(g *Topology, maxM int, p Protocol) (*Increments, error) {
	return mcast.MeasureIncrements(g, maxM, p)
}

// AnalyticTree exposes the paper's closed-form k-ary theory (§3, §5.2-5.3).
type AnalyticTree = analytic.Tree

// ExpectedDistinct is Equation 1: E[distinct sites] after n draws from M.
func ExpectedDistinct(M, n float64) (float64, error) { return analytic.ExpectedDistinct(M, n) }

// RequiredDraws inverts Equation 1.
func RequiredDraws(M, m float64) (float64, error) { return analytic.RequiredDraws(M, m) }

// ChuangSirbuReference returns the m^0.8 reference value.
func ChuangSirbuReference(m float64) float64 { return analytic.ChuangSirbuReference(m) }

// Reachability is the paper's S(r)/T(r) machinery (§4).
type Reachability = reach.Reachability

// GrowthClass labels reachability growth (exponential / sub / super).
type GrowthClass = reach.GrowthClass

// Reachability growth classes.
const (
	GrowthExponential      = reach.GrowthExponential
	GrowthSubExponential   = reach.GrowthSubExponential
	GrowthSuperExponential = reach.GrowthSuperExponential
)

// MeasureReachability computes S(r) averaged over nSources random sources.
func MeasureReachability(g *Topology, nSources int, seed int64) (*Reachability, error) {
	return reach.MeasureAveraged(g, nSources, seed)
}

// ReachabilityFigure8Models returns the three synthetic S(r) models of
// Figure 8, normalized to equal S(D).
func ReachabilityFigure8Models(k, lambda float64, depth int) (exp, power, gaussian *Reachability, err error) {
	return reach.Figure8Models(k, lambda, depth)
}

// AffinityTreeModel is the k-ary substrate for affinity sampling (§5).
type AffinityTreeModel = affinity.TreeModel

// AffinityParams controls the Metropolis sampler.
type AffinityParams = affinity.Params

// AffinityEstimate is the sampled L̄_β(n) for one (β, n).
type AffinityEstimate = affinity.Estimate

// NewAffinityTreeModel builds the k-ary tree substrate for affinity
// sampling.
func NewAffinityTreeModel(k, depth int) (*AffinityTreeModel, error) {
	return affinity.NewTreeModel(k, depth)
}

// EstimateAffinity samples L̄_β(n) on a k-ary tree with receivers at all
// non-root sites.
func EstimateAffinity(m *AffinityTreeModel, n int, beta float64, p AffinityParams) (AffinityEstimate, error) {
	return affinity.EstimateTreeSize(m, n, beta, p)
}

// AffinityChain is the k-ary tree Metropolis sampler; build one with
// AffinityTreeModel.NewChain (receivers at all sites, §5.4) or
// AffinityTreeModel.NewLeafChain (receivers at leaves, §5.2-5.3).
type AffinityChain = affinity.Chain

// IntegratedAutocorrTime estimates the autocorrelation time of an MCMC
// series (effective sample size = len/τ).
func IntegratedAutocorrTime(xs []float64) (float64, error) {
	return affinity.IntegratedAutocorrTime(xs)
}

// AffinityGraphChain is the general-graph Metropolis sampler for W_α(β).
type AffinityGraphChain = affinity.GraphChain

// NewAffinityGraphChain builds an affinity chain on an arbitrary connected
// graph (≤ affinity.MaxGraphChainNodes nodes).
func NewAffinityGraphChain(g *Topology, source, n int, beta float64, seed int64) (*AffinityGraphChain, error) {
	return affinity.NewGraphChain(g, source, n, beta, rng.New(seed))
}

// Curve is a measured normalized tree-size curve with model fitting.
type Curve = core.Curve

// PSTFit is the paper's logarithmic-correction model fit.
type PSTFit = core.PSTFit

// Comparison contrasts the Chuang-Sirbu and PST fits of one curve.
type Comparison = core.Comparison

// CurveFromPoints converts estimator output into a fittable Curve.
func CurveFromPoints(pts []Point) Curve { return core.FromPoints(pts) }

// Pricing is the Chuang-Sirbu cost-based multicast tariff.
type Pricing = core.Pricing

// DefaultPricing returns the canonical m^0.8 tariff.
func DefaultPricing(unicastPrice float64) Pricing { return core.DefaultPricing(unicastPrice) }

// CalibratedPricing builds a tariff from a measured curve's fitted exponent.
func CalibratedPricing(c Curve, unicastPrice float64) (Pricing, error) {
	return core.CalibratedPricing(c, unicastPrice)
}

// Profile scales experiments between smoke runs and the paper protocol.
type Profile = experiments.Profile

// Result is the output of one experiment.
type Result = experiments.Result

// Profiles: paper-faithful, CLI default, and test/bench scale.
func PaperProfile() Profile  { return experiments.Paper() }
func MediumProfile() Profile { return experiments.Medium() }
func QuickProfile() Profile  { return experiments.Quick() }

// ProfileByName resolves "paper", "medium" or "quick".
func ProfileByName(name string) (Profile, error) { return experiments.ProfileByName(name) }

// ExperimentIDs lists every reproducible table/figure identifier in paper
// order.
func ExperimentIDs() []string { return experiments.IDs() }

// ExperimentListing is one registry entry: id, one-line title, description.
type ExperimentListing = experiments.Info

// ListExperiments returns every registered experiment's listing in paper
// order — the helper behind `mtsim -list` and the daemon's /experiments
// endpoint.
func ListExperiments() []ExperimentListing { return experiments.List() }

// ErrInvalidParam is the sentinel wrapped by every boundary-validation
// failure (bad profile fields, impossible group sizes, NaN affinity β).
// Serving layers use errors.Is(err, ErrInvalidParam) to answer 400 instead
// of 500.
var ErrInvalidParam = valid.ErrParam

// ParseByteSize parses a byte count with an optional k/m/g suffix (binary
// multiples, optional trailing 'b'): "512m", "4g", "1048576". An empty
// string is 0 (no limit). Shared by the mtsim and mtsimd -maxheap flags;
// failures wrap ErrInvalidParam.
func ParseByteSize(s string) (uint64, error) { return valid.ParseByteSize(s) }

// RunExperiment reproduces one paper table or figure.
func RunExperiment(id string, p Profile) (*Result, error) { return experiments.Run(id, p) }

// RunExperimentCtx is RunExperiment under a cancellation context: the
// measurement engines poll ctx at grid-point granularity and the run returns
// ctx's error promptly after cancellation.
func RunExperimentCtx(ctx context.Context, id string, p Profile) (*Result, error) {
	return experiments.RunCtx(ctx, id, p)
}

// ExperimentRunner defines one registrable experiment.
type ExperimentRunner = experiments.Runner

// RegisterExperiment adds a custom experiment to the registry; it rejects
// nil runners, missing IDs or Run functions, and duplicate IDs with an
// error.
func RegisterExperiment(r *ExperimentRunner) error { return experiments.Register(r) }

// ExperimentStats is one scheduled experiment's result plus wall-clock and
// allocation cost.
type ExperimentStats = experiments.RunStats

// ScheduleOptions configures RunExperimentsCtx: worker count, soft heap
// guard, checkpoint replay, and completion callbacks.
type ScheduleOptions = experiments.ScheduleOptions

// ErrHeapLimit marks an experiment aborted by ScheduleOptions.MaxHeapBytes.
var ErrHeapLimit = experiments.ErrHeapLimit

// PanicError is a recovered experiment panic: the panic value plus the
// goroutine stack captured at recovery. A panicking experiment lands in its
// ExperimentStats.Err as a *PanicError while sibling experiments complete.
type PanicError = panicsafe.PanicError

// RunExperiments executes experiments concurrently with up to `parallel`
// workers (0 = all cores) and returns stats in input order — the scheduler
// behind `mtsim -parallel`.
func RunExperiments(ids []string, p Profile, parallel int) ([]ExperimentStats, error) {
	return experiments.RunMany(ids, p, parallel)
}

// RunExperimentsCtx is RunExperiments under a cancellation context and the
// extended scheduling options: cancellation yields partial stats (finished
// experiments keep their results, the rest are marked with ctx.Err()),
// panics are isolated per experiment, and the heap guard aborts an
// experiment — not the process — when it exceeds MaxHeapBytes.
func RunExperimentsCtx(ctx context.Context, ids []string, p Profile, opts ScheduleOptions) ([]ExperimentStats, error) {
	return experiments.RunManyCtx(ctx, ids, p, opts)
}

// WriteReport runs every experiment under the profile and writes a
// consolidated Markdown report (the automated skeleton of EXPERIMENTS.md).
func WriteReport(w io.Writer, p Profile) error {
	return experiments.Report(w, p, time.Now())
}

// WriteReportCtx is WriteReport under a cancellation context.
func WriteReportCtx(ctx context.Context, w io.Writer, p Profile) error {
	return experiments.ReportCtx(ctx, w, p, time.Now())
}

// CheckpointFile is the journal name inside an output directory
// ("checkpoint.jsonl"): one fsynced JSON record per completed experiment.
const CheckpointFile = experiments.CheckpointFile

// CheckpointRecord is one journaled experiment result, bound to the profile
// that produced it by ProfileKey.
type CheckpointRecord = experiments.CheckpointRecord

// ProfileKey fingerprints a profile; (key, id) identifies a deterministic
// experiment result exactly.
func ProfileKey(p Profile) string { return experiments.ProfileKey(p) }

// ParseCheckpointLine decodes one journal line, rejecting torn or incomplete
// records with an ErrInvalidParam-wrapped error.
func ParseCheckpointLine(line []byte) (CheckpointRecord, error) {
	return experiments.ParseCheckpointLine(line)
}

// Checkpointer appends completed experiments to <dir>/checkpoint.jsonl,
// fsynced per record and safe for concurrent use.
type Checkpointer = experiments.Checkpointer

// NewCheckpointer opens the journal for appending, truncating any previous
// journal unless resume is set.
func NewCheckpointer(dir string, resume bool) (*Checkpointer, error) {
	return experiments.NewCheckpointer(dir, resume)
}

// LoadCheckpoints reads <dir>/checkpoint.jsonl and returns the completed
// results recorded under the given profile key, skipping torn lines.
func LoadCheckpoints(dir, key string) (map[string]*Result, error) {
	return experiments.LoadCheckpoints(dir, key)
}

// LoadAllCheckpoints reads the journal and returns every recorded result
// grouped by profile key — the daemon's degraded-mode cache shape.
func LoadAllCheckpoints(dir string) (map[string]map[string]*Result, error) {
	return experiments.LoadAllCheckpoints(dir)
}

// Quarantine is the exponential-backoff registry for workloads that have
// proven dangerous (a panic or heap-guard trip). Share one instance between
// RunExperimentsCtx (ScheduleOptions.Quarantine) and a serving layer so a
// misbehaving experiment is refused everywhere until its backoff elapses.
type Quarantine = serve.Quarantine

// QuarantineInfo describes one quarantined id for health reporting.
type QuarantineInfo = serve.QuarantineInfo

// NewQuarantine returns a quarantine registry with the given backoff base
// and cap (non-positive values default to 1s and 5m).
func NewQuarantine(base, max time.Duration) *Quarantine {
	return serve.NewQuarantine(base, max)
}

// ErrQuarantined marks work refused because its id is inside a quarantine
// backoff window.
var ErrQuarantined = serve.ErrQuarantined

// WriteFileAtomic writes data to path crash-safely: the bytes land in a
// temporary file in the same directory, are fsynced, and are renamed over
// path, so readers see either the old contents or the complete new contents
// — never a torn write.
func WriteFileAtomic(path string, data []byte, perm fs.FileMode) error {
	return atomicio.WriteFile(path, data, perm)
}

// VersionString reports the binary's embedded build information (module
// version, VCS revision, Go release) — the -version flag of every CLI.
func VersionString() string { return buildinfo.String() }

// CallSafe runs fn, converting a panic into a returned *PanicError (value +
// goroutine stack) instead of unwinding the process — the isolation wrapper
// the serving layers put around untrusted computations.
func CallSafe(fn func() error) error { return panicsafe.Do(fn) }

// ClusterGrid describes one shardable experiment sweep: a standard
// topology, a size grid, and the measurement protocol. Grids shard along
// the axes the engines reduce deterministically — source blocks for curve
// and shared sweeps, network blocks for ensembles — so a clustered run
// merges byte-identically to a single-process run.
type ClusterGrid = cluster.Grid

// ClusterKind selects a grid's measurement engine.
type ClusterKind = cluster.Kind

// Grid kinds: the §2 curve protocol, the shared-tree comparison, and
// footnote 4's topology ensemble.
const (
	ClusterCurve    = cluster.KindCurve
	ClusterShared   = cluster.KindShared
	ClusterEnsemble = cluster.KindEnsemble
)

// ClusterShardSpec is one contiguous block of a grid's sharding axis — the
// unit of work a coordinator posts to a worker's /shard endpoint.
type ClusterShardSpec = cluster.ShardSpec

// ClusterPartial is one shard's engine-specific partial sums, bound to its
// grid by key.
type ClusterPartial = cluster.Partial

// ClusterMerged is a grid's final merged result.
type ClusterMerged = cluster.Merged

// ClusterShardPath is the worker endpoint shard specs are posted to.
const ClusterShardPath = cluster.ShardPath

// PlanCluster cuts a grid's sharding axis into at most nShards balanced
// contiguous blocks.
func PlanCluster(g ClusterGrid, nShards int) ([]ClusterShardSpec, error) {
	return cluster.Plan(g, nShards)
}

// ExecuteClusterShard measures one shard in-process: the worker-side engine
// behind mtsimd's POST /shard.
func ExecuteClusterShard(ctx context.Context, spec ClusterShardSpec) (*ClusterPartial, error) {
	return cluster.ExecuteShard(ctx, spec)
}

// MergeClusterPartials folds shard partials into the grid's final result by
// replaying the unsharded engine's reduction order; the partials must tile
// the sharding axis exactly.
func MergeClusterPartials(g ClusterGrid, parts []*ClusterPartial) (*ClusterMerged, error) {
	return cluster.Merge(g, parts)
}

// RunClusterLocal measures a whole grid in-process through the unsharded
// engines — the byte-identity reference for clustered runs.
func RunClusterLocal(ctx context.Context, g ClusterGrid) (*ClusterMerged, error) {
	return cluster.RunLocal(ctx, g)
}

// ClusterCoordinator fans a grid out over mtsimd workers with bounded
// per-worker in-flight, Retry-After-aware 429 backoff, worker quarantine
// with shard re-queue, and an fsynced resume journal.
type ClusterCoordinator = cluster.Coordinator

// ClusterOptions tunes a ClusterCoordinator; the zero value is usable.
type ClusterOptions = cluster.Options

// ClusterEvent is one coordinator progress notification.
type ClusterEvent = cluster.Event

// ClusterStats summarizes one coordinator run.
type ClusterStats = cluster.Stats

// NewClusterCoordinator builds a coordinator over worker base URLs.
func NewClusterCoordinator(workers []string, opt ClusterOptions) (*ClusterCoordinator, error) {
	return cluster.New(workers, opt)
}

// ClusterStubWorker is a minimal in-process shard worker speaking the
// /shard protocol: the coordinator's test double and the calibrated-latency
// replay worker behind mtctl's committed cluster benchmark.
type ClusterStubWorker = cluster.StubWorker

// ClusterShardHandler computes one shard on behalf of a stub worker.
type ClusterShardHandler = cluster.ShardHandler

// StartClusterStubWorker serves POST /shard on a loopback listener,
// sleeping latency before each shard; a nil handler computes shards
// in-process.
func StartClusterStubWorker(id string, latency time.Duration, handler ClusterShardHandler) (*ClusterStubWorker, error) {
	return cluster.StartStubWorker(id, latency, handler)
}

// ClusterStubOptions is the stub worker's full option set: id, latency,
// handler, bearer-token auth, and TLS serving.
type ClusterStubOptions = cluster.StubOptions

// StartClusterStubWorkerOpts serves POST /shard and GET /healthz on a
// loopback listener with the full option set.
func StartClusterStubWorkerOpts(opt ClusterStubOptions) (*ClusterStubWorker, error) {
	return cluster.StartStubWorkerOpts(opt)
}

// ClusterRegistry is a lease-based worker membership table: workers enter
// by announcement (their own POST /register, or -discover polling), stay
// members while heartbeats renew their TTL lease, and are retired when the
// lease expires. Static members (the classic -workers list) never expire.
type ClusterRegistry = cluster.Registry

// ClusterMemberEvent is one membership transition ("join" or "leave").
type ClusterMemberEvent = cluster.MemberEvent

// ClusterRegisterPath is the registrar endpoint workers announce
// themselves to.
const ClusterRegisterPath = cluster.RegisterPath

// NewClusterRegistry builds a registry with the given lease TTL
// (non-positive means the 15s default) whose static members never expire.
// Pass it to a coordinator via ClusterOptions.Registry to share one
// membership view between the dispatch loop and a registrar endpoint or
// discover-file poller.
func NewClusterRegistry(ttl time.Duration, static []string) *ClusterRegistry {
	return cluster.NewRegistry(ttl, static)
}

// NewClusterTLSClient builds an HTTP client trusting exactly the CA
// certificates in the PEM file at caPath — the client side of cluster TLS
// (mtctl -tls-ca, mtsimd -tls-ca for announcing to a TLS registrar).
func NewClusterTLSClient(caPath string) (*http.Client, error) {
	return cluster.NewTLSClient(caPath)
}

// AnnounceClusterWorker posts self's base URL to a registrar's
// POST /register endpoint once, reporting whether it was a join.
func AnnounceClusterWorker(ctx context.Context, client *http.Client, registrar, self, token string) (joined bool, err error) {
	return cluster.AnnounceOnce(ctx, client, registrar, self, token)
}

// ClusterAnnounceLoop keeps self registered with a registrar until ctx
// ends: one announcement per interval, failures paced by capped
// exponential backoff and reported through onErr (nil ignores them).
func ClusterAnnounceLoop(ctx context.Context, client *http.Client, registrar, self, token string, interval time.Duration, onErr func(error)) {
	cluster.AnnounceLoop(ctx, client, registrar, self, token, interval, onErr)
}

// ChaosPlan is a parsed deterministic fault-injection schedule: named
// failpoint sites, each with rules (error, panic, latency, short write, bit
// flip, injected status, response truncation) driven by per-site RNG streams
// derived from one seed — the same seed replays the identical fault
// sequence. See internal/chaos for the spec grammar.
type ChaosPlan = chaos.Plan

// ErrChaosInjected is the sentinel wrapped by every chaos-injected error.
var ErrChaosInjected = chaos.ErrInjected

// ParseChaosPlan parses a failpoint spec like
// "journal.write=short@0.2;serve.handler=panic#1" with the given seed.
func ParseChaosPlan(spec string, seed int64) (*ChaosPlan, error) {
	return chaos.Parse(spec, seed)
}

// EnableChaos installs the plan process-wide; nil or a plan with no rules
// leaves every failpoint on its single-atomic-load fast path.
func EnableChaos(p *ChaosPlan) { chaos.Enable(p) }

// DisableChaos removes any installed chaos plan.
func DisableChaos() { chaos.Disable() }

// ExperimentInfo returns the title and description of an experiment.
func ExperimentInfo(id string) (title, description string, err error) {
	r, err := experiments.Lookup(id)
	if err != nil {
		return "", "", err
	}
	return r.Title, r.Description, nil
}

// Figure is a plottable set of series.
type Figure = plot.Figure

// Series is one named curve of a Figure.
type Series = plot.Series

// ASCIIOptions controls terminal rendering of figures.
type ASCIIOptions = plot.ASCIIOptions

// RenderASCII draws a figure as text.
func RenderASCII(f *Figure, opts ASCIIOptions) (string, error) { return plot.RenderASCII(f, opts) }

// WriteFigureCSV emits a figure's data in long-form CSV.
func WriteFigureCSV(w io.Writer, f *Figure) error { return plot.WriteCSV(w, f) }

// WriteFigureGnuplot emits a self-contained gnuplot script for a figure.
func WriteFigureGnuplot(w io.Writer, f *Figure) error { return plot.WriteGnuplot(w, f) }
