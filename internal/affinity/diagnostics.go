package affinity

import (
	"fmt"
	"math"
)

// IntegratedAutocorrTime estimates the integrated autocorrelation time τ of
// a stationary series using Sokal's adaptive truncation (sum lags until
// lag > 5τ̂). Effective sample size ≈ len(xs)/τ. MCMC users divide their
// nominal sample counts by τ to size error bars honestly.
func IntegratedAutocorrTime(xs []float64) (float64, error) {
	n := len(xs)
	if n < 8 {
		return 0, fmt.Errorf("affinity: need at least 8 samples, got %d", n)
	}
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(n)
	var c0 float64
	for _, x := range xs {
		d := x - mean
		c0 += d * d
	}
	c0 /= float64(n)
	if c0 == 0 {
		return 1, nil // constant series: perfectly decorrelated by convention
	}
	tau := 1.0
	for lag := 1; lag < n/2; lag++ {
		var c float64
		for i := 0; i+lag < n; i++ {
			c += (xs[i] - mean) * (xs[i+lag] - mean)
		}
		c /= float64(n - lag)
		rho := c / c0
		tau += 2 * rho
		if float64(lag) > 5*tau {
			break
		}
	}
	if tau < 1 || math.IsNaN(tau) {
		tau = 1
	}
	return tau, nil
}

// EffectiveSampleSize returns len(xs)/τ.
func EffectiveSampleSize(xs []float64) (float64, error) {
	tau, err := IntegratedAutocorrTime(xs)
	if err != nil {
		return 0, err
	}
	return float64(len(xs)) / tau, nil
}
