package affinity

import (
	"math"

	"mtreescale/internal/rng"
	"mtreescale/internal/stats"
	"mtreescale/internal/valid"
)

// Estimate is the Monte-Carlo estimate of L̄_β(n) for one (β, n) pair.
type Estimate struct {
	Beta float64
	N    int
	// MeanTreeSize is the weighted-average delivery-tree size L̄_β(n).
	MeanTreeSize float64
	// StdErr is a naive (autocorrelation-ignoring) standard error of
	// MeanTreeSize; use it for trend checks only.
	StdErr float64
	// MeanPairDist is the average d̂ over sampled configurations.
	MeanPairDist float64
	// AcceptanceRate is the chain's overall Metropolis acceptance rate.
	AcceptanceRate float64
	// Samples is the number of post-burn-in samples.
	Samples int
}

// Params controls the sampler.
type Params struct {
	// BurnInSweeps discarded before measuring. Default 50.
	BurnInSweeps int
	// SampleSweeps measured. Default 200.
	SampleSweeps int
	// Thin takes one sample every Thin sweeps. Default 1.
	Thin int
	// Seed drives the chain deterministically.
	Seed int64
}

func (p *Params) normalize() error {
	if p.BurnInSweeps == 0 {
		p.BurnInSweeps = 50
	}
	if p.SampleSweeps == 0 {
		p.SampleSweeps = 200
	}
	if p.Thin == 0 {
		p.Thin = 1
	}
	if p.BurnInSweeps < 0 || p.SampleSweeps < 1 || p.Thin < 1 {
		return valid.Badf("affinity: invalid sampler params %+v", *p)
	}
	return nil
}

// checkBeta rejects the affinity strengths no chain can sample: NaN poisons
// every Metropolis acceptance ratio (comparisons with NaN are all false, so
// the chain silently freezes), and ±Inf overflows exp() in the acceptance
// rule. Finite β of either sign is legal — negative β is the dispersion
// regime.
func checkBeta(beta float64) error {
	if math.IsNaN(beta) {
		return valid.Badf("affinity: beta is NaN")
	}
	if math.IsInf(beta, 0) {
		return valid.Badf("affinity: beta is infinite (%v)", beta)
	}
	return nil
}

// EstimateTreeSize samples L̄_β(n) on a k-ary tree with receivers at all
// non-root sites (Figure 9's setup).
func EstimateTreeSize(m *TreeModel, n int, beta float64, p Params) (Estimate, error) {
	if err := p.normalize(); err != nil {
		return Estimate{}, err
	}
	chain, err := m.NewChain(n, beta, rng.New(p.Seed))
	if err != nil {
		return Estimate{}, err
	}
	for i := 0; i < p.BurnInSweeps; i++ {
		chain.Sweep()
	}
	var sizeW, distW stats.Welford
	for i := 0; i < p.SampleSweeps; i++ {
		for t := 0; t < p.Thin; t++ {
			chain.Sweep()
		}
		sizeW.Add(float64(chain.TreeSize()))
		distW.Add(chain.AvgPairDist())
	}
	if err := chain.CheckInvariants(); err != nil {
		return Estimate{}, err
	}
	return Estimate{
		Beta:           beta,
		N:              n,
		MeanTreeSize:   sizeW.Mean(),
		StdErr:         sizeW.StdErr(),
		MeanPairDist:   distW.Mean(),
		AcceptanceRate: chain.AcceptanceRate(),
		Samples:        sizeW.N(),
	}, nil
}

// Sweep9 runs the Figure 9 protocol: for each β and each group size n,
// estimate L̄_β(n)/n. Returns estimates indexed [beta][n].
func Sweep9(m *TreeModel, betas []float64, ns []int, p Params) ([][]Estimate, error) {
	out := make([][]Estimate, len(betas))
	for bi, beta := range betas {
		out[bi] = make([]Estimate, len(ns))
		for ni, n := range ns {
			q := p
			q.Seed = rng.Split(p.Seed, int64(bi*1000003+ni))
			est, err := EstimateTreeSize(m, n, beta, q)
			if err != nil {
				return nil, err
			}
			out[bi][ni] = est
		}
	}
	return out, nil
}
