package affinity

import (
	"testing"

	"mtreescale/internal/graph"
	"mtreescale/internal/rng"
)

// The batch knob of NewGraphChainBatch only changes how the all-pairs
// distance matrix is computed; distances are identical, so two chains built
// with the same seed must walk the same trajectory step for step.
func TestGraphChainBatchByteIdentical(t *testing.T) {
	g := smallGraph(t)
	build := func(spts *graph.SPTCache, batch bool) *GraphChain {
		t.Helper()
		c, err := NewGraphChainBatch(g, 0, 12, 0.8, rng.New(5), spts, batch)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	ref := build(nil, false)
	variants := map[string]*GraphChain{
		"batch-slab":   build(nil, true),
		"cache-serial": build(graph.NewSPTCache(1<<30), false),
		"cache-batch":  build(graph.NewSPTCache(1<<30), true),
	}
	for name, c := range variants {
		for u := 0; u < g.N(); u++ {
			for v := 0; v < g.N(); v++ {
				if c.dist[u][v] != ref.dist[u][v] {
					t.Fatalf("%s: dist[%d][%d] = %d, want %d", name, u, v, c.dist[u][v], ref.dist[u][v])
				}
			}
		}
	}
	for sweep := 0; sweep < 20; sweep++ {
		ref.Sweep()
		for name, c := range variants {
			c.Sweep()
			if c.AvgPairDist() != ref.AvgPairDist() || c.TreeSize() != ref.TreeSize() {
				t.Fatalf("%s diverged at sweep %d: d̂=%v tree=%d, want d̂=%v tree=%d",
					name, sweep, c.AvgPairDist(), c.TreeSize(), ref.AvgPairDist(), ref.TreeSize())
			}
			got, want := c.Positions(), ref.Positions()
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s diverged at sweep %d: positions[%d] = %d, want %d",
						name, sweep, i, got[i], want[i])
				}
			}
		}
	}
	for name, c := range variants {
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}
