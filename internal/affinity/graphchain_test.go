package affinity

import (
	"math"
	"testing"

	"mtreescale/internal/graph"
	"mtreescale/internal/mcast"
	"mtreescale/internal/rng"
	"mtreescale/internal/topology"
)

func smallGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := topology.TransitStubSized(120, 3.6, 8)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGraphChainBasics(t *testing.T) {
	g := smallGraph(t)
	c, err := NewGraphChain(g, 0, 15, 0, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if c.TreeSize() <= 0 {
		t.Fatal("initial tree empty")
	}
	for s := 0; s < 20; s++ {
		c.Sweep()
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if c.AcceptanceRate() != 1 {
		t.Fatalf("β=0 must accept everything, rate %v", c.AcceptanceRate())
	}
}

func TestGraphChainErrors(t *testing.T) {
	g := smallGraph(t)
	if _, err := NewGraphChain(g, -1, 5, 0, rng.New(1)); err == nil {
		t.Fatal("bad source must error")
	}
	if _, err := NewGraphChain(g, 0, 0, 0, rng.New(1)); err == nil {
		t.Fatal("n=0 must error")
	}
	if _, err := NewGraphChain(g, 0, 5, 0, nil); err == nil {
		t.Fatal("nil rng must error")
	}
	tiny := graph.NewBuilder(1).Build()
	if _, err := NewGraphChain(tiny, 0, 1, 0, rng.New(1)); err == nil {
		t.Fatal("N=1 must error")
	}
	// Disconnected graph must be rejected.
	b := graph.NewBuilder(4)
	_ = b.AddEdge(0, 1)
	_ = b.AddEdge(2, 3)
	if _, err := NewGraphChain(b.Build(), 0, 2, 0, rng.New(1)); err == nil {
		t.Fatal("disconnected graph must error")
	}
}

func TestGraphChainNeverPlacesOnSource(t *testing.T) {
	g := smallGraph(t)
	src := 5
	c, err := NewGraphChain(g, src, 10, -2, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 30; s++ {
		c.Sweep()
		for _, p := range c.Positions() {
			if int(p) == src {
				t.Fatal("receiver placed on source")
			}
		}
	}
}

func TestGraphChainAffinityShrinksTree(t *testing.T) {
	g := smallGraph(t)
	measure := func(beta float64) float64 {
		c, err := NewGraphChain(g, 0, 12, beta, rng.New(7))
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < 150; s++ {
			c.Sweep()
		}
		sum := 0.0
		for s := 0; s < 150; s++ {
			c.Sweep()
			sum += float64(c.TreeSize())
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		return sum / 150
	}
	cluster := measure(10)
	uniform := measure(0)
	spread := measure(-10)
	if !(cluster < uniform && uniform < spread) {
		t.Fatalf("ordering violated: cluster %.1f uniform %.1f spread %.1f", cluster, uniform, spread)
	}
}

func TestGraphChainUniformMatchesMcast(t *testing.T) {
	// β=0 graph chain must agree with the direct with-replacement estimator.
	g := smallGraph(t)
	n := 10
	c, err := NewGraphChain(g, 0, n, 0, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	const sweeps = 600
	for s := 0; s < sweeps; s++ {
		c.Sweep()
		sum += float64(c.TreeSize())
	}
	mcmc := sum / sweeps

	spt, _ := g.BFS(0)
	smp, err := mcast.NewSampler(g.N(), 0, rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	cnt := mcast.NewTreeCounter(g.N())
	var recv []int32
	direct := 0.0
	const reps = 4000
	for rep := 0; rep < reps; rep++ {
		recv, _ = smp.WithReplacement(n, recv)
		direct += float64(cnt.TreeSize(spt, recv))
	}
	direct /= reps
	if math.Abs(mcmc-direct) > 0.06*direct+0.5 {
		t.Fatalf("MCMC %.2f vs direct %.2f", mcmc, direct)
	}
}

func TestGraphChainTooLarge(t *testing.T) {
	b := graph.NewBuilder(MaxGraphChainNodes + 1)
	for i := 0; i < MaxGraphChainNodes; i++ {
		_ = b.AddEdge(i, i+1)
	}
	if _, err := NewGraphChain(b.Build(), 0, 2, 0, rng.New(1)); err == nil {
		t.Fatal("oversized graph must error")
	}
}
