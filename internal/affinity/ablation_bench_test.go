package affinity

// Ablation benchmark for DESIGN.md §5 item 1: incremental O(depth)
// per-move MCMC bookkeeping vs recomputing the pairwise-distance sum and
// tree size from scratch (what a naive sampler would do after every move).

import (
	"testing"

	"mtreescale/internal/graph"
	"mtreescale/internal/rng"
)

// BenchmarkAblationMCMCIncremental measures the production move path.
func BenchmarkAblationMCMCIncremental(b *testing.B) {
	m, err := NewTreeModel(2, 12)
	if err != nil {
		b.Fatal(err)
	}
	c, err := m.NewChain(500, 1, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Step()
	}
}

// BenchmarkAblationMCMCRecompute measures a from-scratch recomputation of
// the same bookkeeping (the per-move cost a non-incremental sampler pays).
func BenchmarkAblationMCMCRecompute(b *testing.B) {
	m, err := NewTreeModel(2, 12)
	if err != nil {
		b.Fatal(err)
	}
	c, err := m.NewChain(500, 1, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Step()
		if err := c.CheckInvariants(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGraphChainStep measures the general-graph O(n) move.
func BenchmarkGraphChainStep(b *testing.B) {
	g := smallBenchGraph(b)
	c, err := NewGraphChain(g, 0, 200, 1, rng.New(2))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Step()
	}
}

func smallBenchGraph(b *testing.B) *graph.Graph {
	b.Helper()
	r := rng.New(9)
	gb := graph.NewBuilder(800)
	for v := 1; v < 800; v++ {
		_ = gb.AddEdge(v, r.Intn(v))
	}
	for i := 0; i < 1200; i++ {
		_ = gb.AddEdge(r.Intn(800), r.Intn(800))
	}
	return gb.Build()
}
