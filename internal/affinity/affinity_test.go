package affinity

import (
	"math"
	"testing"

	"mtreescale/internal/analytic"
	"mtreescale/internal/rng"
	"mtreescale/internal/topology"
)

func TestNewTreeModelShape(t *testing.T) {
	m, err := NewTreeModel(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.Nodes() != 15 || m.Sites() != 14 {
		t.Fatalf("nodes=%d sites=%d", m.Nodes(), m.Sites())
	}
	if m.Parent(0) != -1 {
		t.Fatal("root parent")
	}
	// Parents must agree with the topology package layout.
	kt, err := topology.NewKAryTree(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v < m.Nodes(); v++ {
		if m.Parent(v) != kt.ParentOf(v) {
			t.Fatalf("parent(%d) = %d, topology says %d", v, m.Parent(v), kt.ParentOf(v))
		}
	}
}

func TestNewTreeModelErrors(t *testing.T) {
	if _, err := NewTreeModel(1, 3); err == nil {
		t.Fatal("k=1 must error")
	}
	if _, err := NewTreeModel(2, 0); err == nil {
		t.Fatal("depth=0 must error")
	}
	if _, err := NewTreeModel(3, 30); err == nil {
		t.Fatal("huge tree must error")
	}
}

func TestChainInvariantsUnderSweeps(t *testing.T) {
	m, _ := NewTreeModel(2, 6)
	for _, beta := range []float64{-1, 0, 1, 10} {
		c, err := m.NewChain(30, beta, rng.New(4))
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < 50; s++ {
			c.Sweep()
			if s%10 == 0 {
				if err := c.CheckInvariants(); err != nil {
					t.Fatalf("beta=%v sweep %d: %v", beta, s, err)
				}
			}
		}
	}
}

func TestChainErrors(t *testing.T) {
	m, _ := NewTreeModel(2, 4)
	if _, err := m.NewChain(0, 0, rng.New(1)); err == nil {
		t.Fatal("n=0 must error")
	}
	if _, err := m.NewChain(3, 0, nil); err == nil {
		t.Fatal("nil RNG must error")
	}
}

func TestChainSingleReceiver(t *testing.T) {
	m, _ := NewTreeModel(2, 5)
	c, err := m.NewChain(1, 5, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if c.AvgPairDist() != 0 {
		t.Fatal("n=1 pair distance must be 0")
	}
	for i := 0; i < 100; i++ {
		c.Step()
	}
	// With one receiver at depth d the tree has exactly d links.
	pos := c.Positions()[0]
	depth := 0
	for v := pos; v > 0; v = int32(m.Parent(int(v))) {
		depth++
	}
	if c.TreeSize() != depth {
		t.Fatalf("tree size %d, want depth %d", c.TreeSize(), depth)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBetaZeroMatchesAnalytic(t *testing.T) {
	// At β = 0 the sampler is the uniform distribution, so L̄_0(n) must
	// match the exact Equation 21.
	m, _ := NewTreeModel(2, 7)
	tr := analytic.Tree{K: 2, Depth: 7}
	for _, n := range []int{2, 10, 40} {
		est, err := EstimateTreeSize(m, n, 0, Params{BurnInSweeps: 20, SampleSweeps: 400, Seed: int64(n)})
		if err != nil {
			t.Fatal(err)
		}
		want, err := tr.ThroughoutTreeSize(float64(n))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(est.MeanTreeSize-want) > 0.05*want+1 {
			t.Fatalf("n=%d: MCMC %.2f vs Eq21 %.2f", n, est.MeanTreeSize, want)
		}
	}
}

func TestAffinityShrinksTree(t *testing.T) {
	// Figure 9's core effect: increasing β (affinity) shrinks L̄_β(n);
	// disaffinity grows it. Orderings must hold for a fixed n.
	m, _ := NewTreeModel(2, 8)
	n := 20
	p := Params{BurnInSweeps: 100, SampleSweeps: 300, Seed: 5}
	var sizes []float64
	for _, beta := range []float64{-10, -1, 0, 1, 10} {
		est, err := EstimateTreeSize(m, n, beta, p)
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, est.MeanTreeSize)
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] >= sizes[i-1] {
			t.Fatalf("L̄_β not decreasing in β: %v", sizes)
		}
	}
}

func TestAffinityBoundsRespectExtremes(t *testing.T) {
	// MCMC estimates must stay within the β = ±∞ closed-form envelope
	// (computed for leaf receivers; for receivers-anywhere the envelope is
	// even wider, so [D? no] — use loose structural bounds instead):
	// D ≥ ... every tree has at least 1 link and at most Sites links.
	m, _ := NewTreeModel(2, 6)
	for _, beta := range []float64{-20, 0, 20} {
		est, err := EstimateTreeSize(m, 15, beta, Params{Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		if est.MeanTreeSize < 1 || est.MeanTreeSize > float64(m.Sites()) {
			t.Fatalf("beta=%v: L̄ = %v outside [1, %d]", beta, est.MeanTreeSize, m.Sites())
		}
		if est.AcceptanceRate <= 0 || est.AcceptanceRate > 1 {
			t.Fatalf("acceptance rate %v", est.AcceptanceRate)
		}
	}
}

func TestExtremeAffinityConverges(t *testing.T) {
	// At very large β receivers all collapse near one site; pair distance
	// approaches 0 and the tree approaches a single path (≤ D links well
	// below the uniform size).
	m, _ := NewTreeModel(2, 7)
	est, err := EstimateTreeSize(m, 30, 50, Params{BurnInSweeps: 400, SampleSweeps: 200, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	uniform, err := EstimateTreeSize(m, 30, 0, Params{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if est.MeanTreeSize > 0.6*uniform.MeanTreeSize {
		t.Fatalf("β=50 tree %.1f not much smaller than uniform %.1f", est.MeanTreeSize, uniform.MeanTreeSize)
	}
	if est.MeanPairDist >= uniform.MeanPairDist {
		t.Fatalf("β=50 pair dist %.2f not below uniform %.2f", est.MeanPairDist, uniform.MeanPairDist)
	}
}

func TestEstimateDeterministic(t *testing.T) {
	m, _ := NewTreeModel(2, 6)
	p := Params{BurnInSweeps: 10, SampleSweeps: 50, Seed: 77}
	a, err := EstimateTreeSize(m, 12, 1, p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EstimateTreeSize(m, 12, 1, p)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestEstimateParamValidation(t *testing.T) {
	m, _ := NewTreeModel(2, 4)
	if _, err := EstimateTreeSize(m, 5, 0, Params{BurnInSweeps: -1}); err == nil {
		t.Fatal("negative burn-in must error")
	}
	if _, err := EstimateTreeSize(m, 5, 0, Params{SampleSweeps: -2}); err == nil {
		t.Fatal("negative sweeps must error")
	}
	if _, err := EstimateTreeSize(m, 5, 0, Params{Thin: -1}); err == nil {
		t.Fatal("negative thin must error")
	}
}

func TestSweep9Shape(t *testing.T) {
	m, _ := NewTreeModel(2, 5)
	betas := []float64{-1, 0, 1}
	ns := []int{2, 8}
	out, err := Sweep9(m, betas, ns, Params{BurnInSweeps: 10, SampleSweeps: 30, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 || len(out[0]) != 2 {
		t.Fatalf("shape %dx%d", len(out), len(out[0]))
	}
	for bi, row := range out {
		for ni, est := range row {
			if est.Beta != betas[bi] || est.N != ns[ni] {
				t.Fatalf("estimate labeled %+v at [%d][%d]", est, bi, ni)
			}
		}
	}
}

func TestAcceptanceRateOrdering(t *testing.T) {
	// Stronger |β| must reduce acceptance (more proposals rejected).
	m, _ := NewTreeModel(2, 7)
	weak, err := EstimateTreeSize(m, 20, 0.1, Params{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	strong, err := EstimateTreeSize(m, 20, 20, Params{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if strong.AcceptanceRate >= weak.AcceptanceRate {
		t.Fatalf("acceptance at β=20 (%v) not below β=0.1 (%v)", strong.AcceptanceRate, weak.AcceptanceRate)
	}
}
