package affinity

import (
	"math"
	"testing"

	"mtreescale/internal/rng"
	"mtreescale/internal/valid"
)

// NaN and ±Inf affinity strengths must be refused up front: NaN silently
// freezes the Metropolis chain (every acceptance comparison is false) and
// ±Inf overflows the acceptance ratio, so neither can produce a sample.
func TestChainRejectsNonFiniteBeta(t *testing.T) {
	m, err := NewTreeModel(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, beta := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := m.NewChain(4, beta, rng.New(1)); !valid.IsParam(err) {
			t.Errorf("NewChain(beta=%v) err = %v, want valid.ErrParam", beta, err)
		}
		if _, err := m.NewLeafChain(4, beta, rng.New(1)); !valid.IsParam(err) {
			t.Errorf("NewLeafChain(beta=%v) err = %v, want valid.ErrParam", beta, err)
		}
		if _, err := EstimateTreeSize(m, 4, beta, Params{Seed: 1}); !valid.IsParam(err) {
			t.Errorf("EstimateTreeSize(beta=%v) err = %v, want valid.ErrParam", beta, err)
		}
	}
	// Finite β still works, extreme magnitudes included.
	if _, err := m.NewChain(4, -50, rng.New(1)); err != nil {
		t.Fatalf("finite beta rejected: %v", err)
	}
}

func TestChainRejectsBadGroupSizeAndParams(t *testing.T) {
	m, err := NewTreeModel(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.NewChain(0, 0, rng.New(1)); !valid.IsParam(err) {
		t.Errorf("NewChain(n=0) err = %v, want valid.ErrParam", err)
	}
	if _, err := m.NewChain(-7, 0, rng.New(1)); !valid.IsParam(err) {
		t.Errorf("NewChain(n=-7) err = %v, want valid.ErrParam", err)
	}
	cases := []struct {
		name string
		p    Params
	}{
		{"negative burn-in", Params{BurnInSweeps: -1}},
		{"negative samples", Params{SampleSweeps: -5}},
		{"negative thinning", Params{Thin: -2}},
	}
	for _, c := range cases {
		if _, err := EstimateTreeSize(m, 4, 0, c.p); !valid.IsParam(err) {
			t.Errorf("%s: err = %v, want valid.ErrParam", c.name, err)
		}
	}
}
