package affinity

import (
	"fmt"
	"math"

	"mtreescale/internal/graph"
	"mtreescale/internal/mcast"
	"mtreescale/internal/valid"
)

// MaxGraphChainNodes bounds the all-pairs distance matrix a GraphChain will
// precompute (N² int16 entries).
const MaxGraphChainNodes = 4096

// GraphChain is the general-graph Metropolis sampler for W_α(β). It
// precomputes all-pairs shortest-path distances (the affinity weight needs
// arbitrary inter-receiver distances, not just source-rooted ones), keeps the
// pairwise-distance sum incrementally (O(n) per move), and measures delivery
// trees against the source's shortest-path tree on demand.
//
// The paper only simulates k-ary trees (Figure 9); this chain extends the
// same model to any connected graph, which the examples use to study
// affinity on realistic topologies.
type GraphChain struct {
	g      *graph.Graph
	source int
	beta   float64
	n      int
	rand   randSource

	dist      [][]int16 // dist[u][v]: all-pairs hop distances
	spt       *graph.SPT
	counter   *mcast.TreeCounter
	positions []int32
	// sumTo[i] = Σ_j d(r_i, r_j): per-receiver distance load.
	sumTo []int64
	// pairSum = Σ_{i<j} d(r_i, r_j).
	pairSum int64

	accepted, proposed int64
}

// NewGraphChain builds a chain of n receivers on g with the given source.
// The graph must be connected and have at most MaxGraphChainNodes nodes.
func NewGraphChain(g *graph.Graph, source, n int, beta float64, r randSource) (*GraphChain, error) {
	return NewGraphChainCached(g, source, n, beta, r, nil)
}

// NewGraphChainCached is NewGraphChain with the all-pairs BFS pass routed
// through an SPT cache (nil disables caching). The pass is the chain's
// dominant cost — N full-graph BFS runs — and an affinity sweep builds one
// chain per (β, n) point on the SAME graph, so a shared cache collapses the
// sweep's BFS work to a single pass.
func NewGraphChainCached(g *graph.Graph, source, n int, beta float64, r randSource, spts *graph.SPTCache) (*GraphChain, error) {
	return NewGraphChainBatch(g, source, n, beta, r, spts, false)
}

// NewGraphChainBatch is NewGraphChainCached with an explicit batch knob: with
// batch set, the all-pairs pass runs through the MS-BFS kernel, 64 sources
// per traversal — as a cache pre-fill when a cache is supplied, else reading
// distance rows straight off a pooled slab. Distances are identical either
// way, so the chain's behavior is unchanged.
func NewGraphChainBatch(g *graph.Graph, source, n int, beta float64, r randSource, spts *graph.SPTCache, batch bool) (*GraphChain, error) {
	if g.N() < 2 {
		return nil, valid.Badf("affinity: graph too small (N=%d)", g.N())
	}
	if g.N() > MaxGraphChainNodes {
		return nil, valid.Badf("affinity: graph has %d nodes, above the %d all-pairs limit", g.N(), MaxGraphChainNodes)
	}
	if source < 0 || source >= g.N() {
		return nil, valid.Badf("affinity: source %d out of range", source)
	}
	if n < 1 {
		return nil, valid.Badf("affinity: chain needs n >= 1, got %d", n)
	}
	if err := checkBeta(beta); err != nil {
		return nil, err
	}
	if r == nil {
		return nil, valid.Badf("affinity: chain needs a random source")
	}
	c := &GraphChain{
		g:       g,
		source:  source,
		beta:    beta,
		n:       n,
		rand:    r,
		dist:    make([][]int16, g.N()),
		counter: mcast.NewTreeCounter(g.N()),
	}
	if batch && spts != nil {
		all := make([]int, g.N())
		for v := range all {
			all[v] = v
		}
		if err := spts.FillBatch(g, all); err != nil {
			return nil, err
		}
	}
	if batch && spts == nil {
		b := graph.AcquireSPTBatch()
		defer graph.ReleaseSPTBatch(b)
		srcs := make([]int, 0, 64)
		for base := 0; base < g.N(); base += 64 {
			srcs = srcs[:0]
			for v := base; v < base+64 && v < g.N(); v++ {
				srcs = append(srcs, v)
			}
			if err := g.BatchSPTsInto(srcs, b); err != nil {
				return nil, err
			}
			for i, v := range srcs {
				row := make([]int16, g.N())
				reached := 0
				for u, d := range b.DistRow(i) {
					if d != graph.Unreachable {
						reached++
					}
					row[u] = int16(d)
				}
				if reached != g.N() {
					return nil, fmt.Errorf("affinity: graph not connected (source %d reaches %d of %d)", v, reached, g.N())
				}
				c.dist[v] = row
			}
		}
	} else {
		var sptBuf graph.SPT
		for v := 0; v < g.N(); v++ {
			spt := &sptBuf
			if spts != nil {
				cached, err := spts.Get(g, v)
				if err != nil {
					return nil, err
				}
				spt = cached
			} else if err := g.BFSInto(v, &sptBuf); err != nil {
				return nil, err
			}
			if spt.Reachable() != g.N() {
				return nil, fmt.Errorf("affinity: graph not connected (source %d reaches %d of %d)", v, spt.Reachable(), g.N())
			}
			row := make([]int16, g.N())
			for u := 0; u < g.N(); u++ {
				row[u] = int16(spt.Dist[u])
			}
			c.dist[v] = row
		}
	}
	if spts != nil {
		var err error
		if c.spt, err = spts.Get(g, source); err != nil {
			return nil, err
		}
	} else {
		var err error
		if c.spt, err = g.BFS(source); err != nil {
			return nil, err
		}
	}
	// Initial placement: uniform over non-source nodes.
	c.positions = make([]int32, n)
	for i := range c.positions {
		c.positions[i] = c.randomSite()
	}
	c.recomputeSums()
	return c, nil
}

func (c *GraphChain) randomSite() int32 {
	v := c.rand.Intn(c.g.N() - 1)
	if v >= c.source {
		v++
	}
	return int32(v)
}

func (c *GraphChain) recomputeSums() {
	c.sumTo = make([]int64, c.n)
	c.pairSum = 0
	for i := 0; i < c.n; i++ {
		var s int64
		ri := c.positions[i]
		for j := 0; j < c.n; j++ {
			if j != i {
				s += int64(c.dist[ri][c.positions[j]])
			}
		}
		c.sumTo[i] = s
	}
	for _, s := range c.sumTo {
		c.pairSum += s
	}
	c.pairSum /= 2
}

// AvgPairDist returns d̂(α); 0 when n < 2.
func (c *GraphChain) AvgPairDist() float64 {
	if c.n < 2 {
		return 0
	}
	pairs := int64(c.n) * int64(c.n-1) / 2
	return float64(c.pairSum) / float64(pairs)
}

// TreeSize measures the delivery-tree size of the current configuration.
func (c *GraphChain) TreeSize() int {
	return c.counter.TreeSize(c.spt, c.positions)
}

// AcceptanceRate returns the fraction of accepted proposals.
func (c *GraphChain) AcceptanceRate() float64 {
	if c.proposed == 0 {
		return 1
	}
	return float64(c.accepted) / float64(c.proposed)
}

// Step proposes one receiver move with Metropolis acceptance.
func (c *GraphChain) Step() {
	c.proposed++
	i := c.rand.Intn(c.n)
	from := c.positions[i]
	to := c.randomSite()
	if to == from {
		c.accepted++
		return
	}
	// Δ(Σ_j d(r_i, r_j)) when moving receiver i.
	var newSum int64
	for j := 0; j < c.n; j++ {
		if j != i {
			newSum += int64(c.dist[to][c.positions[j]])
		}
	}
	delta := newSum - c.sumTo[i]
	accept := true
	if c.beta != 0 && c.n >= 2 {
		pairs := float64(int64(c.n) * int64(c.n-1) / 2)
		deltaD := float64(delta) / pairs
		if (c.beta > 0 && deltaD > 0) || (c.beta < 0 && deltaD < 0) {
			accept = c.rand.Float64() < math.Exp(-c.beta*deltaD)
		}
	}
	if !accept {
		return
	}
	c.accepted++
	// Update sums: every other receiver's load changes by d(to,·)−d(from,·).
	for j := 0; j < c.n; j++ {
		if j != i {
			c.sumTo[j] += int64(c.dist[to][c.positions[j]]) - int64(c.dist[from][c.positions[j]])
		}
	}
	c.sumTo[i] = newSum
	c.pairSum += delta
	c.positions[i] = to
}

// Sweep performs n Steps.
func (c *GraphChain) Sweep() {
	for i := 0; i < c.n; i++ {
		c.Step()
	}
}

// CheckInvariants recomputes the distance bookkeeping from scratch.
func (c *GraphChain) CheckInvariants() error {
	oldPair := c.pairSum
	oldSum := append([]int64(nil), c.sumTo...)
	c.recomputeSums()
	if c.pairSum != oldPair {
		return fmt.Errorf("affinity: graph chain pairSum %d, recomputed %d", oldPair, c.pairSum)
	}
	for i := range oldSum {
		if oldSum[i] != c.sumTo[i] {
			return fmt.Errorf("affinity: graph chain sumTo[%d] %d, recomputed %d", i, oldSum[i], c.sumTo[i])
		}
	}
	return nil
}

// Positions returns a copy of the current placement.
func (c *GraphChain) Positions() []int32 {
	return append([]int32(nil), c.positions...)
}
