package affinity

import (
	"math"
	"testing"

	"mtreescale/internal/analytic"
	"mtreescale/internal/rng"
)

func TestLeafChainSitesAreLeaves(t *testing.T) {
	m, err := NewTreeModel(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if m.Leaves() != 32 {
		t.Fatalf("leaves = %d", m.Leaves())
	}
	c, err := m.NewLeafChain(10, 0, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	firstLeaf := m.Nodes() - m.Leaves()
	for s := 0; s < 50; s++ {
		c.Sweep()
		for _, p := range c.Positions() {
			if int(p) < firstLeaf {
				t.Fatalf("receiver at non-leaf site %d", p)
			}
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLeafChainBetaZeroMatchesEquation4(t *testing.T) {
	// Uniform leaf receivers: L̄_0(n) must match the paper's Equation 4.
	m, _ := NewTreeModel(2, 7)
	tr := analytic.Tree{K: 2, Depth: 7}
	for _, n := range []int{3, 12, 50} {
		c, err := m.NewLeafChain(n, 0, rng.New(int64(n)))
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < 50; s++ {
			c.Sweep()
		}
		sum := 0.0
		const sweeps = 600
		for s := 0; s < sweeps; s++ {
			c.Sweep()
			sum += float64(c.TreeSize())
		}
		got := sum / sweeps
		want, err := tr.LeafTreeSize(float64(n))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 0.05*want+1 {
			t.Fatalf("n=%d: MCMC %.2f vs Eq4 %.2f", n, got, want)
		}
	}
}

func TestLeafChainExtremeAffinityApproachesClosedForm(t *testing.T) {
	// At very large β, distinct leaf receivers... note the chain draws with
	// replacement, so at β→∞ everyone collapses onto one leaf and the tree
	// approaches D links — the §5.3 with-replacement limit ("L∞(n) = D for
	// all n").
	m, _ := NewTreeModel(2, 8)
	c, err := m.NewLeafChain(20, 60, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 1500; s++ {
		c.Sweep()
	}
	sum := 0.0
	const sweeps = 300
	for s := 0; s < sweeps; s++ {
		c.Sweep()
		sum += float64(c.TreeSize())
	}
	got := sum / sweeps
	// Collapse is not total at finite β, but the tree must be within a
	// small factor of D = 8 and far below the uniform size (~Eq4(20) ≈ 100).
	if got > 3*8 {
		t.Fatalf("β=60 leaf tree %.1f not collapsed toward D=8", got)
	}
}

func TestLeafChainDisaffinityApproachesSpread(t *testing.T) {
	// At strongly negative β, receivers spread across distinct leaves; the
	// tree size must approach the β=−∞ greedy bound from below.
	m, _ := NewTreeModel(2, 6)
	tr := analytic.Tree{K: 2, Depth: 6}
	n := 16
	c, err := m.NewLeafChain(n, -40, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 1500; s++ {
		c.Sweep()
	}
	sum := 0.0
	const sweeps = 300
	for s := 0; s < sweeps; s++ {
		c.Sweep()
		sum += float64(c.TreeSize())
	}
	got := sum / sweeps
	bound, err := tr.ExtremeDisaffinityTreeSize(int64(n))
	if err != nil {
		t.Fatal(err)
	}
	if got > bound+1e-9 {
		t.Fatalf("β=-40 tree %.1f above the -∞ bound %.0f", got, bound)
	}
	uniform, _ := tr.LeafTreeSize(float64(n))
	if got <= uniform {
		t.Fatalf("β=-40 tree %.1f not above the uniform size %.1f", got, uniform)
	}
}

func TestIntegratedAutocorrTime(t *testing.T) {
	// IID noise: τ ≈ 1.
	r := rng.New(7)
	iid := make([]float64, 4000)
	for i := range iid {
		iid[i] = r.Float64()
	}
	tau, err := IntegratedAutocorrTime(iid)
	if err != nil {
		t.Fatal(err)
	}
	if tau > 1.5 {
		t.Fatalf("iid τ = %v", tau)
	}
	// Strongly correlated AR(1): τ must be much larger.
	ar := make([]float64, 4000)
	for i := 1; i < len(ar); i++ {
		ar[i] = 0.95*ar[i-1] + (r.Float64() - 0.5)
	}
	tauAR, err := IntegratedAutocorrTime(ar)
	if err != nil {
		t.Fatal(err)
	}
	if tauAR < 5*tau {
		t.Fatalf("AR τ = %v not ≫ iid τ = %v", tauAR, tau)
	}
	ess, err := EffectiveSampleSize(ar)
	if err != nil {
		t.Fatal(err)
	}
	if ess >= float64(len(ar)) {
		t.Fatalf("ESS %v must shrink below n", ess)
	}
}

func TestIntegratedAutocorrTimeEdgeCases(t *testing.T) {
	if _, err := IntegratedAutocorrTime([]float64{1, 2, 3}); err == nil {
		t.Fatal("too-short series must error")
	}
	tau, err := IntegratedAutocorrTime(make([]float64, 100)) // constant zeros
	if err != nil || tau != 1 {
		t.Fatalf("constant series: τ=%v err=%v", tau, err)
	}
}

func TestChainAutocorrelationReported(t *testing.T) {
	// Integration check: the chain's tree-size series has measurable but
	// finite autocorrelation.
	m, _ := NewTreeModel(2, 6)
	c, err := m.NewChain(15, 1, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 50; s++ {
		c.Sweep()
	}
	series := make([]float64, 500)
	for s := range series {
		c.Sweep()
		series[s] = float64(c.TreeSize())
	}
	tau, err := IntegratedAutocorrTime(series)
	if err != nil {
		t.Fatal(err)
	}
	if tau < 0.5 || tau > 100 {
		t.Fatalf("chain τ = %v implausible", tau)
	}
}
