// Package affinity implements §5 of the paper: receiver placements biased
// toward clustering (affinity, β > 0) or spreading out (disaffinity,
// β < 0). Configurations α of n receivers are weighted
//
//	W_α(β) ∝ exp(−β·d̂(α))
//
// where d̂(α) is the mean pairwise shortest-path distance between receivers
// (Equation 32). The package samples this distribution with a Metropolis
// chain and reports the weighted mean delivery-tree size L̄_β(n) plotted in
// Figure 9.
//
// On k-ary trees every move is O(depth): receiver counts are maintained per
// link, which gives both the pairwise-distance sum (Σ_links c·(n−c)) and the
// tree size (#links with c > 0) incrementally.
package affinity

import (
	"fmt"
	"math"

	"mtreescale/internal/valid"
)

// TreeModel is the k-ary tree substrate for the fast chain. Sites are all
// non-root nodes by default, matching §5.4 ("for the simulations ... we
// allow receivers to be at all sites"); NewLeafChain restricts sites to the
// leaves, the setting of the §5.2-5.3 closed forms.
type TreeModel struct {
	K, Depth int
	// parent[v] is the tree parent of node v (parent[0] = -1).
	parent []int32
	// depth[v] is the level of node v.
	depth []int32
	// firstLeaf is the id of the first depth-D node.
	firstLeaf int
}

// NewTreeModel builds the complete k-ary tree of the given shape.
func NewTreeModel(k, depth int) (*TreeModel, error) {
	if k < 2 {
		return nil, fmt.Errorf("affinity: tree model needs k >= 2, got %d", k)
	}
	if depth < 1 {
		return nil, fmt.Errorf("affinity: tree model needs depth >= 1, got %d", depth)
	}
	total := 0
	levelSize := 1
	for l := 0; l <= depth; l++ {
		total += levelSize
		if total < 0 || total > 1<<28 {
			return nil, fmt.Errorf("affinity: tree k=%d depth=%d too large", k, depth)
		}
		levelSize *= k
	}
	m := &TreeModel{K: k, Depth: depth, parent: make([]int32, total), depth: make([]int32, total)}
	// Leaves are the last k^D nodes in level order.
	leaves := 1
	for i := 0; i < depth; i++ {
		leaves *= k
	}
	m.firstLeaf = total - leaves
	m.parent[0] = -1
	// Level-order layout identical to topology.NewKAryTree.
	levelStart := 0
	levelSize = 1
	for l := 0; l < depth; l++ {
		nextStart := levelStart + levelSize
		for i := 0; i < levelSize; i++ {
			p := levelStart + i
			for c := 0; c < k; c++ {
				child := nextStart + i*k + c
				m.parent[child] = int32(p)
				m.depth[child] = int32(l + 1)
			}
		}
		levelStart = nextStart
		levelSize *= k
	}
	return m, nil
}

// Nodes returns the total node count, root included.
func (m *TreeModel) Nodes() int { return len(m.parent) }

// Sites returns the number of receiver sites (all non-root nodes).
func (m *TreeModel) Sites() int { return len(m.parent) - 1 }

// Parent returns the parent of node v (-1 for the root).
func (m *TreeModel) Parent(v int) int { return int(m.parent[v]) }

// Leaves returns the number of leaf sites, k^D.
func (m *TreeModel) Leaves() int { return len(m.parent) - m.firstLeaf }

// Chain is a Metropolis sampler over receiver configurations on a TreeModel.
// It is not safe for concurrent use.
type Chain struct {
	m    *TreeModel
	beta float64
	n    int
	rand randSource
	// Receiver sites are [siteBase, siteBase+siteCount): all non-root nodes
	// for NewChain, the leaves for NewLeafChain.
	siteBase, siteCount int

	// positions[i] is the site (node id, 1..Nodes-1) of receiver i.
	positions []int32
	// cnt[v] is the number of receivers at or below node v, i.e. the
	// receiver count of the link (v, parent(v)). cnt[0] is unused.
	cnt []int32
	// pairSum is Σ_links cnt·(n−cnt) = Σ_{i<j} d(r_i, r_j).
	pairSum int64
	// treeLinks is the number of links with cnt > 0 — the delivery-tree
	// size L for the current configuration.
	treeLinks int

	accepted, proposed int64
}

// randSource is the minimal RNG surface the chain needs.
type randSource interface {
	Intn(n int) int
	Float64() float64
}

// NewChain creates a chain of n receivers at inverse-clustering strength
// beta, with receiver sites at all non-root nodes (§5.4's setting). Initial
// positions are uniform over sites (the β = 0 equilibrium).
func (m *TreeModel) NewChain(n int, beta float64, r randSource) (*Chain, error) {
	return m.newChain(n, beta, r, 1, m.Sites())
}

// NewLeafChain creates a chain whose receiver sites are the k^D leaves —
// the setting of the §5.2-5.3 extreme-affinity closed forms.
func (m *TreeModel) NewLeafChain(n int, beta float64, r randSource) (*Chain, error) {
	return m.newChain(n, beta, r, m.firstLeaf, m.Leaves())
}

func (m *TreeModel) newChain(n int, beta float64, r randSource, siteBase, siteCount int) (*Chain, error) {
	if n < 1 {
		return nil, valid.Badf("affinity: chain needs n >= 1, got %d", n)
	}
	if err := checkBeta(beta); err != nil {
		return nil, err
	}
	if r == nil {
		return nil, valid.Badf("affinity: chain needs a random source")
	}
	c := &Chain{
		m:         m,
		beta:      beta,
		n:         n,
		rand:      r,
		siteBase:  siteBase,
		siteCount: siteCount,
		positions: make([]int32, n),
		cnt:       make([]int32, m.Nodes()),
	}
	for i := range c.positions {
		site := int32(siteBase + r.Intn(siteCount))
		c.positions[i] = site
		c.addPath(site, +1)
	}
	return c, nil
}

// addPath walks from site to the root adjusting link counts by delta,
// keeping pairSum and treeLinks consistent.
func (c *Chain) addPath(site int32, delta int32) {
	n64 := int64(c.n)
	for v := site; v > 0; v = c.m.parent[v] {
		old := int64(c.cnt[v])
		c.pairSum -= old * (n64 - old)
		c.cnt[v] += delta
		now := int64(c.cnt[v])
		c.pairSum += now * (n64 - now)
		switch {
		case old == 0 && now > 0:
			c.treeLinks++
		case old > 0 && now == 0:
			c.treeLinks--
		}
	}
}

// TreeSize returns the current delivery-tree size L(α).
func (c *Chain) TreeSize() int { return c.treeLinks }

// AvgPairDist returns d̂(α), the mean pairwise receiver distance; 0 when
// n < 2.
func (c *Chain) AvgPairDist() float64 {
	if c.n < 2 {
		return 0
	}
	pairs := int64(c.n) * int64(c.n-1) / 2
	return float64(c.pairSum) / float64(pairs)
}

// Beta returns the chain's affinity parameter.
func (c *Chain) Beta() float64 { return c.beta }

// N returns the number of receivers.
func (c *Chain) N() int { return c.n }

// AcceptanceRate returns the fraction of proposals accepted so far (1 before
// any proposal).
func (c *Chain) AcceptanceRate() float64 {
	if c.proposed == 0 {
		return 1
	}
	return float64(c.accepted) / float64(c.proposed)
}

// Step proposes moving one uniformly chosen receiver to a uniformly chosen
// site and accepts with the Metropolis probability min(1, e^{−β·Δd̂}).
func (c *Chain) Step() {
	c.proposed++
	i := c.rand.Intn(c.n)
	from := c.positions[i]
	to := int32(c.siteBase + c.rand.Intn(c.siteCount))
	if to == from {
		c.accepted++
		return
	}
	oldPair := c.pairSum
	c.addPath(from, -1)
	c.addPath(to, +1)
	c.positions[i] = to
	if c.beta == 0 || c.n < 2 {
		c.accepted++
		return
	}
	pairs := float64(int64(c.n) * int64(c.n-1) / 2)
	deltaD := float64(c.pairSum-oldPair) / pairs
	if deltaD <= 0 && c.beta > 0 || deltaD >= 0 && c.beta < 0 {
		c.accepted++ // downhill for this β: always accept
		return
	}
	if c.rand.Float64() < math.Exp(-c.beta*deltaD) {
		c.accepted++
		return
	}
	// Reject: revert.
	c.addPath(to, -1)
	c.addPath(from, +1)
	c.positions[i] = from
}

// Sweep performs n Steps (one proposal per receiver on average).
func (c *Chain) Sweep() {
	for i := 0; i < c.n; i++ {
		c.Step()
	}
}

// CheckInvariants recomputes link counts, pair sum and tree size from
// scratch and compares them to the incremental state. Tests and long runs
// use it to guard against bookkeeping drift.
func (c *Chain) CheckInvariants() error {
	cnt := make([]int32, c.m.Nodes())
	for _, site := range c.positions {
		for v := site; v > 0; v = c.m.parent[v] {
			cnt[v]++
		}
	}
	var pairSum int64
	links := 0
	n64 := int64(c.n)
	for v := 1; v < len(cnt); v++ {
		if cnt[v] != c.cnt[v] {
			return fmt.Errorf("affinity: cnt[%d] = %d, recomputed %d", v, c.cnt[v], cnt[v])
		}
		if cnt[v] > 0 {
			links++
		}
		pairSum += int64(cnt[v]) * (n64 - int64(cnt[v]))
	}
	if links != c.treeLinks {
		return fmt.Errorf("affinity: treeLinks = %d, recomputed %d", c.treeLinks, links)
	}
	if pairSum != c.pairSum {
		return fmt.Errorf("affinity: pairSum = %d, recomputed %d", c.pairSum, pairSum)
	}
	return nil
}

// Positions returns a copy of the current receiver placement.
func (c *Chain) Positions() []int32 {
	return append([]int32(nil), c.positions...)
}
