package rng

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Intn(1<<30), b.Intn(1<<30); got != want {
			t.Fatalf("draw %d: %d != %d; same seed must give same stream", i, got, want)
		}
	}
}

func TestNewDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	const draws = 1000
	for i := 0; i < draws; i++ {
		if a.Intn(1<<30) == b.Intn(1<<30) {
			same++
		}
	}
	if same > draws/100 {
		t.Fatalf("seeds 1 and 2 agreed on %d/%d draws; streams look correlated", same, draws)
	}
}

func TestMixNonNegative(t *testing.T) {
	f := func(seed int64) bool { return Mix(seed) >= 0 }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMixAdjacentSeedsDecorrelated(t *testing.T) {
	// Adjacent raw seeds must not map to adjacent mixed seeds.
	seen := make(map[int64]bool)
	for s := int64(0); s < 10000; s++ {
		m := Mix(s)
		if seen[m] {
			t.Fatalf("Mix collision at seed %d", s)
		}
		seen[m] = true
	}
}

func TestSplitChildStreamsIndependent(t *testing.T) {
	parent := int64(7)
	a := NewChild(parent, 0)
	b := NewChild(parent, 1)
	same := 0
	const draws = 2000
	for i := 0; i < draws; i++ {
		if a.Intn(1000) == b.Intn(1000) {
			same++
		}
	}
	// Expect ~draws/1000 collisions for independent uniform streams.
	if same > draws/50 {
		t.Fatalf("child streams 0 and 1 agreed on %d/%d draws", same, draws)
	}
}

func TestSplitDistinctIDs(t *testing.T) {
	f := func(parent int64, i, j uint16) bool {
		if i == j {
			return true
		}
		return Split(parent, int64(i)) != Split(parent, int64(j))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestSourceInterfaceSatisfied(t *testing.T) {
	var _ Source = New(0)
	var _ Source = rand.New(rand.NewSource(1))
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestUniformityRough(t *testing.T) {
	// Chi-square-ish sanity check on Intn(10).
	r := New(11)
	var buckets [10]int
	const draws = 100000
	for i := 0; i < draws; i++ {
		buckets[r.Intn(10)]++
	}
	for b, c := range buckets {
		if c < draws/10-draws/50 || c > draws/10+draws/50 {
			t.Fatalf("bucket %d has %d of %d draws; distribution looks skewed", b, c, draws)
		}
	}
}

// The bulk draw methods promise exactly the Intn draw sequence — streams must
// be interchangeable between the loop forms.

func TestPermPrefix32MatchesIntnLoop(t *testing.T) {
	for _, m := range []int{0, 1, 7, 100, 500, 999, 1000} {
		a := make([]int32, 1000)
		b := make([]int32, 1000)
		for i := range a {
			a[i] = int32(i)
			b[i] = int32(i)
		}
		ra, rb := New(42), New(42)
		ra.PermPrefix32(a, m)
		for i := 0; i < m; i++ {
			j := i + rb.Intn(len(b)-i)
			b[i], b[j] = b[j], b[i]
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("m=%d: PermPrefix32 diverges from Intn loop at %d: %d != %d", m, i, a[i], b[i])
			}
		}
		// The generator state must also match: the next draws agree.
		if ra.Intn(1 << 30) != rb.Intn(1<<30) {
			t.Fatalf("m=%d: post-shuffle states diverge", m)
		}
	}
}

func TestPermPrefix32Panics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PermPrefix32 with m > len(a) must panic")
		}
	}()
	New(1).PermPrefix32(make([]int32, 3), 4)
}

func TestFillBoundedMatchesIntnLoop(t *testing.T) {
	for _, tc := range []struct{ base, m int }{{0, 1}, {0, 64}, {990, 10}, {1, 777}} {
		dst := make([]int32, tc.m)
		ra, rb := New(7), New(7)
		ra.FillBounded(tc.base, dst)
		for k, got := range dst {
			want := int32(rb.Intn(tc.base + k + 1))
			if got != want {
				t.Fatalf("base=%d: FillBounded[%d] = %d, want %d", tc.base, k, got, want)
			}
		}
		if ra.Intn(1<<30) != rb.Intn(1<<30) {
			t.Fatalf("base=%d: post-fill states diverge", tc.base)
		}
	}
}

func TestFillIntnMatchesIntnLoop(t *testing.T) {
	for _, n := range []int{1, 2, 3, 1000, 1 << 20} {
		dst := make([]int32, 512)
		ra, rb := New(11), New(11)
		ra.FillIntn(n, dst)
		for k, got := range dst {
			if want := int32(rb.Intn(n)); got != want {
				t.Fatalf("n=%d: FillIntn[%d] = %d, want %d", n, k, got, want)
			}
		}
		if ra.Intn(1<<30) != rb.Intn(1<<30) {
			t.Fatalf("n=%d: post-fill states diverge", n)
		}
	}
}
