// Package rng provides deterministic, seed-splittable pseudo-random number
// generation for the simulator.
//
// Every experiment in this repository must be exactly reproducible from a
// single integer seed. To keep independent streams independent (e.g. the
// stream that places sources and the stream that places receivers), seeds are
// split with a SplitMix64-style mixing function rather than by sharing one
// generator across subsystems.
//
// The concrete generator is xoshiro256++ (Blackman & Vigna, "Scrambled
// linear pseudorandom number generators", 2019): 256 bits of state seeded by
// four SplitMix64 steps. The measurement engines derive one child stream per
// Monte-Carlo source, so stream construction is on the hot path — seeding
// four words costs nanoseconds where seeding math/rand's 607-word lagged
// Fibonacci state cost microseconds, and the bounded-draw path (Lemire's
// multiply-shift rejection, one 64×64→128 multiply per draw) replaces
// math/rand's double-modulo rejection.
package rng

import (
	"math/bits"
)

// Source is the random-draw interface the simulator consumes. It is an
// interface so tests can substitute scripted sequences; production code
// always passes *Rand, and hot loops may type-assert to it for static
// dispatch.
type Source interface {
	// Intn returns a uniform int in [0, n). It panics if n <= 0.
	Intn(n int) int
	// Float64 returns a uniform float64 in [0.0, 1.0).
	Float64() float64
	// Perm returns a random permutation of [0, n).
	Perm(n int) []int
	// Shuffle pseudo-randomizes the order of elements.
	Shuffle(n int, swap func(i, j int))
}

// Rand is a xoshiro256++ generator. It is not safe for concurrent use; the
// engines give every worker its own child stream.
type Rand struct {
	s0, s1, s2, s3 uint64
}

// New returns a deterministic Source for the given seed.
func New(seed int64) *Rand {
	r := &Rand{}
	// Expand the mixed seed through SplitMix64, as the xoshiro authors
	// recommend, so related seeds still yield unrelated states.
	z := uint64(Mix(seed))
	next := func() uint64 {
		z += 0x9E3779B97F4A7C15
		x := z
		x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
		x = (x ^ (x >> 27)) * 0x94D049BB133111EB
		return x ^ (x >> 31)
	}
	r.s0, r.s1, r.s2, r.s3 = next(), next(), next(), next()
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		r.s0 = 1 // xoshiro state must not be all-zero
	}
	return r
}

// Uint64 returns the next 64 uniform bits.
func (r *Rand) Uint64() uint64 {
	result := bits.RotateLeft64(r.s0+r.s3, 23) + r.s0
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = bits.RotateLeft64(r.s3, 45)
	return result
}

// Intn returns a uniform int in [0, n) by Lemire's multiply-shift bounded
// draw. It panics if n <= 0, matching math/rand.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	hi, lo := bits.Mul64(r.Uint64(), uint64(n))
	if lo < uint64(n) {
		return r.intnSlow(n, hi, lo)
	}
	return int(hi)
}

// intnSlow is Intn's debiasing tail, kept out of line so the common path
// stays inlinable: once lo clears the (-n mod n) threshold the draw is
// exactly uniform.
func (r *Rand) intnSlow(n int, hi, lo uint64) int {
	thresh := (-uint64(n)) % uint64(n)
	for lo < thresh {
		hi, lo = bits.Mul64(r.Uint64(), uint64(n))
	}
	return int(hi)
}

// PermPrefix32 runs the first m steps of a Fisher-Yates shuffle of a: after
// the call, a[:m] is a uniform ordered m-sample of a's elements (and every
// prefix of it is a uniform sample of its own length). The draw sequence is
// exactly Intn(len(a)-i) for i = 0..m-1 — callers may mix PermPrefix32 and
// explicit Intn loops without perturbing the stream — but the generator
// state is held in registers across the loop instead of round-tripping
// through memory on every draw. It panics if m is outside [0, len(a)].
func (r *Rand) PermPrefix32(a []int32, m int) {
	if m < 0 || m > len(a) {
		panic("rng: PermPrefix32 sample size out of range")
	}
	M := len(a)
	s0, s1, s2, s3 := r.s0, r.s1, r.s2, r.s3
	for i := 0; i < m; i++ {
		res := bits.RotateLeft64(s0+s3, 23) + s0
		t := s1 << 17
		s2 ^= s0
		s3 ^= s1
		s1 ^= s2
		s0 ^= s3
		s2 ^= t
		s3 = bits.RotateLeft64(s3, 45)
		bound := uint64(M - i)
		hi, lo := bits.Mul64(res, bound)
		if lo < bound {
			// Debias tail (probability bound/2^64): commit state, reuse
			// Intn's out-of-line rejection loop, reload.
			r.s0, r.s1, r.s2, r.s3 = s0, s1, s2, s3
			hi = uint64(r.intnSlow(int(bound), hi, lo))
			s0, s1, s2, s3 = r.s0, r.s1, r.s2, r.s3
		}
		j := i + int(hi)
		a[i], a[j] = a[j], a[i]
	}
	r.s0, r.s1, r.s2, r.s3 = s0, s1, s2, s3
}

// FillBounded fills dst[k] with a uniform draw in [0, base+k+1) for each k —
// the ascending bound sequence Floyd's distinct sampling consumes. The draws
// are exactly Intn(base+k+1) in order, with the generator state held in
// registers across the loop. It panics if base < 0.
func (r *Rand) FillBounded(base int, dst []int32) {
	if base < 0 {
		panic("rng: FillBounded called with base < 0")
	}
	s0, s1, s2, s3 := r.s0, r.s1, r.s2, r.s3
	for k := range dst {
		res := bits.RotateLeft64(s0+s3, 23) + s0
		t := s1 << 17
		s2 ^= s0
		s3 ^= s1
		s1 ^= s2
		s0 ^= s3
		s2 ^= t
		s3 = bits.RotateLeft64(s3, 45)
		bound := uint64(base + k + 1)
		hi, lo := bits.Mul64(res, bound)
		if lo < bound {
			r.s0, r.s1, r.s2, r.s3 = s0, s1, s2, s3
			hi = uint64(r.intnSlow(int(bound), hi, lo))
			s0, s1, s2, s3 = r.s0, r.s1, r.s2, r.s3
		}
		dst[k] = int32(hi)
	}
	r.s0, r.s1, r.s2, r.s3 = s0, s1, s2, s3
}

// FillIntn fills dst with uniform draws in [0, n), exactly Intn(n) in order,
// with the generator state held in registers across the loop. It panics if
// n <= 0.
func (r *Rand) FillIntn(n int, dst []int32) {
	if n <= 0 {
		panic("rng: FillIntn called with n <= 0")
	}
	s0, s1, s2, s3 := r.s0, r.s1, r.s2, r.s3
	for k := range dst {
		res := bits.RotateLeft64(s0+s3, 23) + s0
		t := s1 << 17
		s2 ^= s0
		s3 ^= s1
		s1 ^= s2
		s0 ^= s3
		s2 ^= t
		s3 = bits.RotateLeft64(s3, 45)
		hi, lo := bits.Mul64(res, uint64(n))
		if lo < uint64(n) {
			r.s0, r.s1, r.s2, r.s3 = s0, s1, s2, s3
			hi = uint64(r.intnSlow(n, hi, lo))
			s0, s1, s2, s3 = r.s0, r.s1, r.s2, r.s3
		}
		dst[k] = int32(hi)
	}
	r.s0, r.s1, r.s2, r.s3 = s0, s1, s2, s3
}

// Float64 returns a uniform float64 in [0.0, 1.0) with 53 random bits.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements, like math/rand's.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	if n < 0 {
		panic("rng: Shuffle called with n < 0")
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Mix applies a SplitMix64 finalizer to a seed so that adjacent seeds
// (0, 1, 2, ...) produce statistically unrelated streams.
func Mix(seed int64) int64 {
	z := uint64(seed) + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z = z ^ (z >> 31)
	// Clear the sign bit: nothing downstream rejects negatives, but keeping
	// seeds non-negative makes them printable/replayable without surprises.
	return int64(z &^ (1 << 63))
}

// Split derives the seed for the id-th child stream of parent. Distinct
// (parent, id) pairs yield distinct, well-mixed child seeds.
func Split(parent int64, id int64) int64 {
	return Mix(Mix(parent) ^ int64(uint64(id)*0x9E3779B97F4A7C15+0x7F4A7C15))
}

// NewChild returns a deterministic Source for the id-th child stream.
func NewChild(parent int64, id int64) *Rand {
	return New(Split(parent, id))
}
