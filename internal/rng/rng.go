// Package rng provides deterministic, seed-splittable pseudo-random number
// generation for the simulator.
//
// Every experiment in this repository must be exactly reproducible from a
// single integer seed. To keep independent streams independent (e.g. the
// stream that places sources and the stream that places receivers), seeds are
// split with a SplitMix64-style mixing function rather than by sharing one
// rand.Rand across subsystems.
package rng

import (
	"math/rand"
)

// Source is the subset of *rand.Rand the simulator consumes. It is an
// interface so tests can substitute scripted sequences.
type Source interface {
	// Intn returns a uniform int in [0, n). It panics if n <= 0.
	Intn(n int) int
	// Float64 returns a uniform float64 in [0.0, 1.0).
	Float64() float64
	// Perm returns a random permutation of [0, n).
	Perm(n int) []int
	// Shuffle pseudo-randomizes the order of elements.
	Shuffle(n int, swap func(i, j int))
}

// New returns a deterministic Source for the given seed.
func New(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(Mix(seed)))
}

// Mix applies a SplitMix64 finalizer to a seed so that adjacent seeds
// (0, 1, 2, ...) produce statistically unrelated streams.
func Mix(seed int64) int64 {
	z := uint64(seed) + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z = z ^ (z >> 31)
	// Clear the sign bit: rand.NewSource rejects nothing, but keeping seeds
	// non-negative makes them printable/replayable without surprises.
	return int64(z &^ (1 << 63))
}

// Split derives the seed for the id-th child stream of parent. Distinct
// (parent, id) pairs yield distinct, well-mixed child seeds.
func Split(parent int64, id int64) int64 {
	return Mix(Mix(parent) ^ int64(uint64(id)*0x9E3779B97F4A7C15+0x7F4A7C15))
}

// NewChild returns a deterministic Source for the id-th child stream.
func NewChild(parent int64, id int64) *rand.Rand {
	return New(Split(parent, id))
}
