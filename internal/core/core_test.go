package core

import (
	"math"
	"testing"

	"mtreescale/internal/mcast"
	"mtreescale/internal/topology"
)

// syntheticCurve builds a Curve following an exact power law with unit ū.
func syntheticCurve(exponent float64, sizes []int) Curve {
	c := Curve{Sizes: sizes}
	for _, s := range sizes {
		ratio := math.Pow(float64(s), exponent)
		c.Ratio = append(c.Ratio, ratio)
		c.Unicast = append(c.Unicast, 5)
		c.TreeSize = append(c.TreeSize, ratio*5)
	}
	return c
}

func TestFromPoints(t *testing.T) {
	pts := []mcast.Point{
		{Size: 1, MeanRatio: 1, MeanLinks: 5, MeanUnicast: 5},
		{Size: 10, MeanRatio: 6, MeanLinks: 30, MeanUnicast: 5},
	}
	c := FromPoints(pts)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Sizes[1] != 10 || c.Ratio[1] != 6 || c.TreeSize[1] != 30 {
		t.Fatalf("curve = %+v", c)
	}
}

func TestValidateErrors(t *testing.T) {
	if err := (Curve{}).Validate(); err == nil {
		t.Fatal("empty curve must error")
	}
	c := Curve{Sizes: []int{1, 2}, Ratio: []float64{1}, TreeSize: []float64{1, 2}, Unicast: []float64{1, 2}}
	if err := c.Validate(); err == nil {
		t.Fatal("ragged curve must error")
	}
	c2 := syntheticCurve(0.8, []int{5, 2})
	if err := c2.Validate(); err == nil {
		t.Fatal("non-increasing sizes must error")
	}
	c3 := syntheticCurve(0.8, []int{0, 2})
	if err := c3.Validate(); err == nil {
		t.Fatal("zero size must error")
	}
}

func TestFitChuangSirbuRecovers(t *testing.T) {
	c := syntheticCurve(0.8, []int{1, 2, 4, 8, 16, 32, 64})
	fit, err := c.FitChuangSirbu()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Exponent-0.8) > 1e-9 {
		t.Fatalf("exponent = %v", fit.Exponent)
	}
	if math.Abs(fit.Constant-1) > 1e-9 {
		t.Fatalf("constant = %v", fit.Constant)
	}
}

func TestFitPSTRecovers(t *testing.T) {
	// Build an exact PST curve: L/(n·ū) = A + B ln n.
	a, b := 2.0, -0.15
	c := Curve{}
	for _, s := range []int{1, 4, 16, 64, 256} {
		v := a + b*math.Log(float64(s))
		c.Sizes = append(c.Sizes, s)
		c.Unicast = append(c.Unicast, 7)
		c.TreeSize = append(c.TreeSize, v*float64(s)*7)
		c.Ratio = append(c.Ratio, v*float64(s))
	}
	fit, err := c.FitPST()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.A-a) > 1e-9 || math.Abs(fit.B-b) > 1e-9 {
		t.Fatalf("fit = %+v", fit)
	}
	if fit.R2 < 0.999999 {
		t.Fatalf("R2 = %v", fit.R2)
	}
	wantLnK := -1 / (b * 7)
	if math.Abs(fit.ImpliedLnK-wantLnK) > 1e-9 {
		t.Fatalf("implied lnK = %v, want %v", fit.ImpliedLnK, wantLnK)
	}
}

func TestCompareOnMeasuredTopology(t *testing.T) {
	// On an exponential-reachability topology both models should fit well
	// (that's the paper's point: the PST form mimics m^0.8); comparison
	// must simply produce finite, small RMSEs.
	g, err := topology.TransitStubSized(400, 3.6, 2)
	if err != nil {
		t.Fatal(err)
	}
	sizes := mcast.LogSpacedSizes(300, 10)
	pts, err := mcast.MeasureCurve(g, sizes, mcast.Distinct, mcast.Protocol{NSource: 15, NRcvr: 15, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := FromPoints(pts).Compare()
	if err != nil {
		t.Fatal(err)
	}
	if cmp.RMSEChuangSirbu > 0.35 {
		t.Fatalf("Chuang-Sirbu RMSE %v too large", cmp.RMSEChuangSirbu)
	}
	if cmp.RMSEPST > 0.35 {
		t.Fatalf("PST RMSE %v too large", cmp.RMSEPST)
	}
	if cmp.ChuangSirbu.Exponent < 0.5 || cmp.ChuangSirbu.Exponent > 1 {
		t.Fatalf("exponent = %v", cmp.ChuangSirbu.Exponent)
	}
	if cmp.PST.B >= 0 {
		t.Fatalf("PST slope must be negative (log correction), got %v", cmp.PST.B)
	}
}

func TestComparisonWinner(t *testing.T) {
	if (Comparison{RMSEChuangSirbu: 0.1, RMSEPST: 0.2}).Winner() != "chuang-sirbu" {
		t.Fatal("CS should win")
	}
	if (Comparison{RMSEChuangSirbu: 0.3, RMSEPST: 0.2}).Winner() != "pst" {
		t.Fatal("PST should win")
	}
	if (Comparison{RMSEChuangSirbu: 0.2, RMSEPST: 0.2}).Winner() != "tie" {
		t.Fatal("tie expected")
	}
}

func TestCompareEmpty(t *testing.T) {
	if _, err := (Curve{}).Compare(); err == nil {
		t.Fatal("empty curve must error")
	}
}

func TestEfficiency(t *testing.T) {
	c := syntheticCurve(0.8, []int{1, 10, 100})
	if e := c.Efficiency(0); math.Abs(e) > 1e-9 {
		t.Fatalf("m=1 efficiency = %v, want 0", e)
	}
	e10 := c.Efficiency(1)
	want := 1 - math.Pow(10, -0.2)
	if math.Abs(e10-want) > 1e-9 {
		t.Fatalf("m=10 efficiency = %v, want %v", e10, want)
	}
	if c.Efficiency(2) <= e10 {
		t.Fatal("efficiency must grow with m")
	}
	if c.Efficiency(-1) != 0 || c.Efficiency(99) != 0 {
		t.Fatal("out-of-range index must yield 0")
	}
}

func TestPricingBasics(t *testing.T) {
	p := DefaultPricing(10)
	g1, err := p.GroupPrice(1)
	if err != nil || g1 != 10 {
		t.Fatalf("P(1) = %v, %v", g1, err)
	}
	g100, _ := p.GroupPrice(100)
	if math.Abs(g100-10*math.Pow(100, 0.8)) > 1e-9 {
		t.Fatalf("P(100) = %v", g100)
	}
	pr, _ := p.PerReceiverPrice(100)
	if pr >= 10 {
		t.Fatal("per-receiver price must fall below unicast")
	}
	s, _ := p.Savings(100)
	if math.Abs(s-(1-math.Pow(100, -0.2))) > 1e-9 {
		t.Fatalf("savings = %v", s)
	}
}

func TestPricingErrors(t *testing.T) {
	if _, err := (Pricing{UnicastPrice: 0, Exponent: 0.8}).GroupPrice(5); err == nil {
		t.Fatal("zero price must error")
	}
	if _, err := (Pricing{UnicastPrice: 1, Exponent: 1.5}).GroupPrice(5); err == nil {
		t.Fatal("exponent > 1 must error")
	}
	p := DefaultPricing(1)
	if _, err := p.GroupPrice(0); err == nil {
		t.Fatal("m=0 must error")
	}
	if _, err := p.BreakEvenGroupSize(0); err == nil {
		t.Fatal("frac=0 must error")
	}
	if _, err := p.BreakEvenGroupSize(1); err == nil {
		t.Fatal("frac=1 must error")
	}
	one := Pricing{UnicastPrice: 1, Exponent: 1}
	if _, err := one.BreakEvenGroupSize(0.5); err == nil {
		t.Fatal("exponent 1 has no break-even")
	}
}

func TestBreakEven(t *testing.T) {
	p := DefaultPricing(1)
	m, err := p.BreakEvenGroupSize(0.5)
	if err != nil {
		t.Fatal(err)
	}
	// m^-0.2 <= 0.5 → m >= 2^5 = 32.
	if m != 32 {
		t.Fatalf("break-even = %d, want 32", m)
	}
	pr, _ := p.PerReceiverPrice(m)
	if pr > 0.5+1e-9 {
		t.Fatalf("per-receiver price %v above target", pr)
	}
}

func TestCalibratedPricing(t *testing.T) {
	c := syntheticCurve(0.75, []int{1, 2, 4, 8, 16, 32})
	p, err := CalibratedPricing(c, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Exponent-0.75) > 1e-9 || p.UnicastPrice != 3 {
		t.Fatalf("pricing = %+v", p)
	}
	// A curve with a nonsense exponent must be rejected.
	bad := syntheticCurve(1.6, []int{1, 2, 4, 8})
	if _, err := CalibratedPricing(bad, 3); err == nil {
		t.Fatal("exponent > 1 must be rejected for pricing")
	}
}
