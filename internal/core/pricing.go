package core

import (
	"fmt"
	"math"
)

// Pricing implements the application that motivated Chuang-Sirbu's study:
// cost-based multicast pricing. If a unicast flow costs u (proportional to
// its ū links), a multicast group of m receivers consumes L(m) ≈ ū·m^e
// links, so a cost-based tariff charges
//
//	P(m) = u · m^e
//
// and the per-receiver price u·m^{e−1} falls as the group grows — the
// quantitative form of "multicast is cheaper per receiver".
type Pricing struct {
	// UnicastPrice is the price of one unicast flow (m = 1).
	UnicastPrice float64
	// Exponent is the scaling exponent; Chuang-Sirbu's 0.8 by default.
	Exponent float64
}

// DefaultPricing returns the canonical m^0.8 tariff.
func DefaultPricing(unicastPrice float64) Pricing {
	return Pricing{UnicastPrice: unicastPrice, Exponent: 0.8}
}

// Validate checks the tariff parameters.
func (p Pricing) Validate() error {
	if p.UnicastPrice <= 0 {
		return fmt.Errorf("core: unicast price must be > 0, got %v", p.UnicastPrice)
	}
	if p.Exponent <= 0 || p.Exponent > 1 {
		return fmt.Errorf("core: pricing exponent must be in (0, 1], got %v", p.Exponent)
	}
	return nil
}

// GroupPrice returns P(m) for a group of m receivers.
func (p Pricing) GroupPrice(m int) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if m < 1 {
		return 0, fmt.Errorf("core: group size must be >= 1, got %d", m)
	}
	return p.UnicastPrice * math.Pow(float64(m), p.Exponent), nil
}

// PerReceiverPrice returns P(m)/m.
func (p Pricing) PerReceiverPrice(m int) (float64, error) {
	gp, err := p.GroupPrice(m)
	if err != nil {
		return 0, err
	}
	return gp / float64(m), nil
}

// Savings returns the fraction saved versus m independent unicasts:
// 1 − P(m)/(m·u) = 1 − m^{e−1}.
func (p Pricing) Savings(m int) (float64, error) {
	pr, err := PerReceiverPrice(p, m)
	if err != nil {
		return 0, err
	}
	return 1 - pr/p.UnicastPrice, nil
}

// PerReceiverPrice is a free-function form used by Savings to keep the
// method value semantics explicit.
func PerReceiverPrice(p Pricing, m int) (float64, error) { return p.PerReceiverPrice(m) }

// BreakEvenGroupSize returns the smallest m whose per-receiver price is at
// most the given fraction of the unicast price: m^{e−1} ≤ frac, i.e.
// m ≥ frac^{1/(e−1)}.
func (p Pricing) BreakEvenGroupSize(frac float64) (int, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if frac <= 0 || frac >= 1 {
		return 0, fmt.Errorf("core: fraction must be in (0,1), got %v", frac)
	}
	if p.Exponent == 1 {
		return 0, fmt.Errorf("core: exponent 1 never reaches per-receiver savings")
	}
	m := math.Pow(frac, 1/(p.Exponent-1))
	// Guard float round-up at exact solutions (e.g. 0.5^-5 = 32.0000000007).
	return int(math.Ceil(m - 1e-9)), nil
}

// CalibratedPricing builds a tariff from a measured curve: the exponent is
// the fitted Chuang-Sirbu exponent and the unit price is scaled so that
// P(1) = unicastPrice.
func CalibratedPricing(c Curve, unicastPrice float64) (Pricing, error) {
	fit, err := c.FitChuangSirbu()
	if err != nil {
		return Pricing{}, err
	}
	p := Pricing{UnicastPrice: unicastPrice, Exponent: fit.Exponent}
	if err := p.Validate(); err != nil {
		return Pricing{}, fmt.Errorf("core: measured exponent unusable for pricing: %w", err)
	}
	return p, nil
}
