// Package core is the scaling-law engine — the paper's primary contribution
// expressed as a library. It turns measured multicast-tree curves into the
// two competing scaling models and quantifies how well each describes a
// topology:
//
//   - The Chuang-Sirbu law: L(m)/ū ∝ m^0.8 (a pure power law).
//   - The Phillips-Shenker-Tangmunarunkit (PST) form: L̄(n) ≈ n(c − ln(n/M)/ln k),
//     i.e. L̄(n)/n is linear in ln n — "roughly linear with a logarithmic
//     correction", which the paper derives for k-ary trees and argues holds
//     for any network with exponential reachability.
//
// It also hosts the law's practical application from Chuang-Sirbu: cost-based
// multicast pricing.
package core

import (
	"errors"
	"fmt"
	"math"

	"mtreescale/internal/mcast"
	"mtreescale/internal/stats"
)

// Curve is a measured normalized tree-size curve for one topology.
type Curve struct {
	// Sizes are the group sizes (m or n depending on protocol).
	Sizes []int
	// Ratio[i] = E[L/ū] at Sizes[i] — the paper's normalized tree size.
	Ratio []float64
	// TreeSize[i] = E[L] at Sizes[i].
	TreeSize []float64
	// Unicast[i] = E[ū] at Sizes[i].
	Unicast []float64
}

// FromPoints converts estimator output into a Curve.
func FromPoints(pts []mcast.Point) Curve {
	c := Curve{
		Sizes:    make([]int, len(pts)),
		Ratio:    make([]float64, len(pts)),
		TreeSize: make([]float64, len(pts)),
		Unicast:  make([]float64, len(pts)),
	}
	for i, p := range pts {
		c.Sizes[i] = p.Size
		c.Ratio[i] = p.MeanRatio
		c.TreeSize[i] = p.MeanLinks
		c.Unicast[i] = p.MeanUnicast
	}
	return c
}

// Validate checks internal consistency.
func (c Curve) Validate() error {
	if len(c.Sizes) == 0 {
		return errors.New("core: empty curve")
	}
	if len(c.Ratio) != len(c.Sizes) || len(c.TreeSize) != len(c.Sizes) || len(c.Unicast) != len(c.Sizes) {
		return errors.New("core: ragged curve columns")
	}
	for i, s := range c.Sizes {
		if s <= 0 {
			return fmt.Errorf("core: non-positive size %d at index %d", s, i)
		}
		if i > 0 && c.Sizes[i] <= c.Sizes[i-1] {
			return fmt.Errorf("core: sizes not strictly increasing at index %d", i)
		}
	}
	return nil
}

// FitChuangSirbu fits Ratio = C·m^e in log-log space. The paper's claim is
// e ≈ 0.8 over a wide range of networks.
func (c Curve) FitChuangSirbu() (stats.PowerLawFit, error) {
	if err := c.Validate(); err != nil {
		return stats.PowerLawFit{}, err
	}
	xs := make([]float64, len(c.Sizes))
	for i, s := range c.Sizes {
		xs[i] = float64(s)
	}
	return stats.PowerLaw(xs, c.Ratio)
}

// PSTFit is the paper's logarithmic-correction model fitted to a curve:
// L̄(n)/(n·ū) = A + B·ln n. For a k-ary tree B = −1/(D·ln k) after the ū=D
// normalization; ImpliedLnK back-solves the effective ln k given the
// topology's average path length.
type PSTFit struct {
	A, B float64
	R2   float64
	// ImpliedLnK is −1/(B·C̄), the effective branching the slope implies,
	// using C̄ = the curve's large-m unicast average. NaN if undefined.
	ImpliedLnK float64
}

// FitPST fits the PST linear-in-ln(n) model to the normalized per-receiver
// tree size L̄/(n·ū).
func (c Curve) FitPST() (PSTFit, error) {
	if err := c.Validate(); err != nil {
		return PSTFit{}, err
	}
	xs := make([]float64, 0, len(c.Sizes))
	ys := make([]float64, 0, len(c.Sizes))
	for i, s := range c.Sizes {
		if c.Unicast[i] <= 0 {
			continue
		}
		xs = append(xs, float64(s))
		ys = append(ys, c.TreeSize[i]/(float64(s)*c.Unicast[i]))
	}
	lin, err := stats.LogLinear(xs, ys)
	if err != nil {
		return PSTFit{}, err
	}
	fit := PSTFit{A: lin.Intercept, B: lin.Slope, R2: lin.R2, ImpliedLnK: math.NaN()}
	cbar := c.Unicast[len(c.Unicast)-1]
	if fit.B != 0 && cbar > 0 {
		fit.ImpliedLnK = -1 / (fit.B * cbar)
	}
	return fit, nil
}

// Comparison quantifies which scaling model describes the curve better.
type Comparison struct {
	ChuangSirbu stats.PowerLawFit
	PST         PSTFit
	// RMSEChuangSirbu and RMSEPST are root-mean-square errors of each
	// model's prediction of ln(L/ū) over the curve.
	RMSEChuangSirbu float64
	RMSEPST         float64
}

// Compare fits both models and evaluates their log-space residuals.
func (c Curve) Compare() (Comparison, error) {
	cs, err := c.FitChuangSirbu()
	if err != nil {
		return Comparison{}, err
	}
	pst, err := c.FitPST()
	if err != nil {
		return Comparison{}, err
	}
	var sse1, sse2 float64
	n := 0
	for i, s := range c.Sizes {
		if c.Ratio[i] <= 0 || c.Unicast[i] <= 0 {
			continue
		}
		m := float64(s)
		obs := math.Log(c.Ratio[i])
		pred1 := math.Log(cs.Constant) + cs.Exponent*math.Log(m)
		// PST predicts L/(n·ū) = A + B ln n, so L/ū = n(A + B ln n).
		v := pst.A + pst.B*math.Log(m)
		if v <= 0 {
			continue
		}
		pred2 := math.Log(m * v)
		sse1 += (obs - pred1) * (obs - pred1)
		sse2 += (obs - pred2) * (obs - pred2)
		n++
	}
	if n == 0 {
		return Comparison{}, errors.New("core: no comparable points")
	}
	return Comparison{
		ChuangSirbu:     cs,
		PST:             pst,
		RMSEChuangSirbu: math.Sqrt(sse1 / float64(n)),
		RMSEPST:         math.Sqrt(sse2 / float64(n)),
	}, nil
}

// Winner names the model with the lower log-space RMSE. The paper's finding
// is that both fit exponential-reachability networks about equally well —
// that near-tie is itself the result ("not too dissimilar in behavior").
func (c Comparison) Winner() string {
	switch {
	case c.RMSEPST < c.RMSEChuangSirbu:
		return "pst"
	case c.RMSEChuangSirbu < c.RMSEPST:
		return "chuang-sirbu"
	default:
		return "tie"
	}
}

// Efficiency returns the multicast efficiency gain at index i:
// 1 − L/(m·ū), the fraction of link-traversals saved versus m unicasts.
// Zero group size or missing normalization yields 0.
func (c Curve) Efficiency(i int) float64 {
	if i < 0 || i >= len(c.Sizes) {
		return 0
	}
	den := float64(c.Sizes[i]) * c.Unicast[i]
	if den <= 0 {
		return 0
	}
	e := 1 - c.TreeSize[i]/den
	if e < 0 {
		return 0
	}
	return e
}
