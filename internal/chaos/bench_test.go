package chaos

import "testing"

// BenchmarkChaosDisabled pins the disabled failpoint cost: one atomic load
// and a nil check, single-digit nanoseconds. This is the budget every wired
// site (journal writes, serve handlers, cluster posts, mcast source jobs)
// pays in production; none sit inside the BFS/tree kernels, so kernel
// benchmarks like BenchmarkBatchSPTs64 see no chaos overhead at all.
func BenchmarkChaosDisabled(b *testing.B) {
	Disable()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := Maybe("bench.site"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChaosEnabledMiss measures an installed plan whose rules target
// other sites: the map lookup miss every unrelated failpoint pays while a
// chaos run is active.
func BenchmarkChaosEnabledMiss(b *testing.B) {
	p, err := Parse("some.other.site=error@0.5", 1)
	if err != nil {
		b.Fatal(err)
	}
	Enable(p)
	defer Disable()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := Maybe("bench.site"); err != nil {
			b.Fatal(err)
		}
	}
}
