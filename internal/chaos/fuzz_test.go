package chaos

import "testing"

// FuzzParseChaosPlan hammers the failpoint-spec parser with arbitrary
// strings: it must never panic, every accepted plan must hold only
// well-formed rules (probability in (0,1], positive latency, 4xx/5xx
// status, non-negative trunc limit and after-count), and parsing the same
// spec twice with the same seed must compile identical schedules — the
// determinism every chaos soak leans on.
func FuzzParseChaosPlan(f *testing.F) {
	f.Add("journal.write=short@0.2", int64(1))
	f.Add("serve.handler=panic#1", int64(7))
	f.Add("cluster.post=error@0.5#3+2;registry.lease=error@0.4", int64(-9))
	f.Add("serve.handler.status=status:503@0.1", int64(42))
	f.Add("shard.payload=bitflip#1;serve.response.trunc=trunc:64", int64(0))
	f.Add("coord.fence=error#1", int64(3))
	f.Add("a=latency:5ms@0.9+10", int64(99))
	f.Add("", int64(1))
	f.Add(";;;", int64(1))
	f.Add("x=error@2", int64(1))
	f.Add("=error", int64(1))
	f.Add("x=status:99", int64(1))
	f.Add("x=latency:-1s", int64(1))
	f.Add("x=error@0.5#0", int64(1))
	f.Add("x=error:unexpected-arg", int64(1))
	f.Add("\x00=\xff@\x01", int64(1))
	f.Fuzz(func(t *testing.T, spec string, seed int64) {
		p, err := Parse(spec, seed)
		if err != nil {
			if p != nil {
				t.Fatalf("rejected spec %q returned a non-nil plan", spec)
			}
			return
		}
		if p.Seed() != seed || p.Spec() != spec {
			t.Fatalf("plan lost its identity: seed %d spec %q", p.Seed(), p.Spec())
		}
		if len(p.sites) == 0 {
			t.Fatalf("accepted plan for %q has no sites", spec)
		}
		for site, st := range p.sites {
			if len(st.rules) == 0 {
				t.Fatalf("site %q has no rules", site)
			}
			for _, r := range st.rules {
				if r.Site != site {
					t.Fatalf("rule filed under %q names site %q", site, r.Site)
				}
				if r.P <= 0 || r.P > 1 {
					t.Fatalf("site %q: probability %v out of (0, 1]", site, r.P)
				}
				if r.Limit < 0 || r.After < 0 {
					t.Fatalf("site %q: negative limit %d or after %d", site, r.Limit, r.After)
				}
				switch r.Kind {
				case KindError, KindPanic, KindShort, KindBitFlip:
				case KindLatency:
					if r.Dur <= 0 {
						t.Fatalf("site %q: latency rule with duration %v", site, r.Dur)
					}
				case KindStatus:
					if r.Code < 400 || r.Code > 599 {
						t.Fatalf("site %q: status rule with code %d", site, r.Code)
					}
				case KindTrunc:
					if r.Code < 0 {
						t.Fatalf("site %q: trunc rule with limit %d", site, r.Code)
					}
				default:
					t.Fatalf("site %q: unknown kind %q accepted", site, r.Kind)
				}
			}
		}
		// Same (spec, seed) must compile the same schedule: identical sites,
		// rule order, and per-rule RNG streams.
		p2, err := Parse(spec, seed)
		if err != nil {
			t.Fatalf("re-parse of accepted spec %q failed: %v", spec, err)
		}
		if len(p2.sites) != len(p.sites) {
			t.Fatalf("re-parse changed site count: %d vs %d", len(p2.sites), len(p.sites))
		}
		for site, st := range p.sites {
			st2 := p2.sites[site]
			if st2 == nil || len(st2.rules) != len(st.rules) {
				t.Fatalf("re-parse changed site %q", site)
			}
			for i := range st.rules {
				if st.rules[i].Rule != st2.rules[i].Rule {
					t.Fatalf("re-parse changed rule %d of site %q", i, site)
				}
				if a, b := st.rules[i].rng.Int63(), st2.rules[i].rng.Int63(); a != b {
					t.Fatalf("re-parse diverged RNG stream for site %q rule %d: %d vs %d", site, i, a, b)
				}
			}
		}
	})
}
