package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestParseEntries(t *testing.T) {
	good := []string{
		"journal.write=short",
		"journal.write=short@0.5",
		"serve.handler=latency:300ms@0.25",
		"serve.handler.status=status:503@0.1#2",
		"shard.payload=bitflip#1",
		"cluster.post=error@0.3+5",
		"serve.response.trunc=trunc:32",
		"a=error;b=panic; c=latency:1ms ",
	}
	for _, spec := range good {
		if _, err := Parse(spec, 1); err != nil {
			t.Errorf("Parse(%q) = %v, want ok", spec, err)
		}
	}
	bad := []string{
		"",
		";;",
		"noequals",
		"=error",
		"x=unknownkind",
		"x=latency",          // missing duration
		"x=latency:-3ms",     // non-positive
		"x=status:200",       // not a fault status
		"x=status:notanint",  //
		"x=error@0",          // probability out of range
		"x=error@1.5",        //
		"x=error#0",          // limit must be >= 1
		"x=error+-1",         // negative after
		"x=short:12",         // short takes no argument
		"x=trunc:-1",         //
	}
	for _, spec := range bad {
		if _, err := Parse(spec, 1); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", spec)
		}
	}
}

// TestDeterministicSchedule: the fire/skip decision sequence of a site is a
// pure function of (seed, hit count) — identical across plans with the same
// seed, whatever other sites did in between.
func TestDeterministicSchedule(t *testing.T) {
	spec := "a=error@0.3;b=error@0.7"
	schedule := func(interleave bool) []bool {
		p, err := Parse(spec, 42)
		if err != nil {
			t.Fatal(err)
		}
		Enable(p)
		defer Disable()
		var out []bool
		for i := 0; i < 200; i++ {
			if interleave {
				Maybe("b") // traffic on b must not perturb a's schedule
			}
			out = append(out, Maybe("a") != nil)
		}
		return out
	}
	base := schedule(false)
	perturbed := schedule(true)
	for i := range base {
		if base[i] != perturbed[i] {
			t.Fatalf("hit %d: schedule of site a changed under cross-site traffic", i)
		}
	}
	fires := 0
	for _, f := range base {
		if f {
			fires++
		}
	}
	if fires < 30 || fires > 90 {
		t.Fatalf("p=0.3 fired %d/200 times, schedule looks broken", fires)
	}

	// A different seed yields a different schedule.
	p2, _ := Parse(spec, 43)
	Enable(p2)
	defer Disable()
	diff := false
	for i := 0; i < 200; i++ {
		if (Maybe("a") != nil) != base[i] {
			diff = true
		}
	}
	if !diff {
		t.Fatal("seeds 42 and 43 produced identical schedules")
	}
}

func TestDisabledFastPathIsInert(t *testing.T) {
	Disable()
	if Enabled() {
		t.Fatal("Enabled() with no plan")
	}
	if err := Maybe("any.site"); err != nil {
		t.Fatal(err)
	}
	b := []byte("payload")
	got, err := Write("any.site", b)
	if err != nil || !bytes.Equal(got, b) {
		t.Fatalf("Write mutated with chaos disabled: %q, %v", got, err)
	}
	if _, ok := Status("any.site"); ok {
		t.Fatal("Status fired with chaos disabled")
	}
	if _, ok := Trunc("any.site"); ok {
		t.Fatal("Trunc fired with chaos disabled")
	}
}

func TestErrorKindWrapsErrInjected(t *testing.T) {
	p, _ := Parse("x=error", 1)
	Enable(p)
	defer Disable()
	err := Maybe("x")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("Maybe = %v, want ErrInjected", err)
	}
	if err := Maybe("unwired.site"); err != nil {
		t.Fatalf("unwired site fired: %v", err)
	}
}

func TestPanicKind(t *testing.T) {
	p, _ := Parse("x=panic", 1)
	Enable(p)
	defer Disable()
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("panic rule did not panic")
		} else if !strings.Contains(fmt.Sprint(r), "chaos: injected panic at x") {
			t.Fatalf("panic value %v", r)
		}
	}()
	_ = Maybe("x")
}

func TestLatencyKindSleeps(t *testing.T) {
	p, _ := Parse("x=latency:30ms", 1)
	Enable(p)
	defer Disable()
	start := time.Now()
	if err := Maybe("x"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("latency rule slept %v, want >= 30ms", d)
	}
}

func TestShortWriteTearsDeterministically(t *testing.T) {
	rec := []byte(`{"key":"k","lo":0,"hi":3}` + "\n")
	cut := func(seed int64) int {
		p, _ := Parse("j=short", seed)
		Enable(p)
		defer Disable()
		got, err := Write("j", rec)
		if err != nil {
			t.Fatal(err)
		}
		return len(got)
	}
	a, b := cut(7), cut(7)
	if a != b {
		t.Fatalf("same seed tore at %d then %d", a, b)
	}
	if a >= len(rec) {
		t.Fatalf("short write did not shorten: %d of %d bytes", a, len(rec))
	}
}

func TestBitFlipCorruptsOneBitOnACopy(t *testing.T) {
	p, _ := Parse("x=bitflip", 3)
	Enable(p)
	defer Disable()
	orig := []byte("0123456789abcdef")
	keep := append([]byte(nil), orig...)
	got, err := Write("x", orig)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(orig, keep) {
		t.Fatal("bitflip mutated the caller's buffer")
	}
	diffBits := 0
	for i := range got {
		for b := 0; b < 8; b++ {
			if (got[i]^orig[i])>>b&1 == 1 {
				diffBits++
			}
		}
	}
	if diffBits != 1 {
		t.Fatalf("bitflip changed %d bits, want exactly 1", diffBits)
	}
}

func TestStatusAndTrunc(t *testing.T) {
	p, _ := Parse("s=status:503;t=trunc:48", 1)
	Enable(p)
	defer Disable()
	if code, ok := Status("s"); !ok || code != 503 {
		t.Fatalf("Status = %d, %v", code, ok)
	}
	if limit, ok := Trunc("t"); !ok || limit != 48 {
		t.Fatalf("Trunc = %d, %v", limit, ok)
	}
	// Kind/helper mismatch: a status rule never fires through Maybe or Write.
	if err := Maybe("s"); err != nil {
		t.Fatalf("status rule fired through Maybe: %v", err)
	}
	if _, err := Write("s", []byte("x")); err != nil {
		t.Fatalf("status rule fired through Write: %v", err)
	}
}

func TestLimitAndAfter(t *testing.T) {
	p, _ := Parse("x=error#2+3", 1)
	Enable(p)
	defer Disable()
	var fires []int
	for i := 1; i <= 20; i++ {
		if Maybe("x") != nil {
			fires = append(fires, i)
		}
	}
	if len(fires) != 2 {
		t.Fatalf("limit 2 fired %d times (%v)", len(fires), fires)
	}
	if fires[0] != 4 || fires[1] != 5 {
		t.Fatalf("after 3 should fire first at hits 4 and 5, got %v", fires)
	}
	evs := p.Events()
	if len(evs) != 2 || evs[0].Site != "x" || evs[0].Kind != KindError || evs[0].Hit != 4 || evs[1].Fire != 2 {
		t.Fatalf("events = %+v", evs)
	}
}

func TestSetLogfReportsFires(t *testing.T) {
	p, _ := Parse("x=error#1", 1)
	var lines []string
	p.SetLogf(func(format string, args ...any) { lines = append(lines, fmt.Sprintf(format, args...)) })
	Enable(p)
	defer Disable()
	_ = Maybe("x")
	if len(lines) != 1 || !strings.Contains(lines[0], "error fired at x") {
		t.Fatalf("logf lines = %q", lines)
	}
	if p.Seed() != 1 || p.Spec() != "x=error#1" {
		t.Fatalf("Seed/Spec = %d, %q", p.Seed(), p.Spec())
	}
}
