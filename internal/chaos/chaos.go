// Package chaos is a deterministic fault-injection framework: named
// failpoints threaded through the I/O, serving and cluster layers, driven by
// a seeded schedule so every chaos run is reproducible from its seed.
//
// A failpoint is a call site named like "journal.write" or "serve.handler".
// A Plan binds rules to sites — inject an error, a panic, a latency stall, a
// short (torn) write, a flipped bit, an HTTP status, a truncated response —
// each firing with a configured probability against a per-site RNG stream
// derived from (seed, site). Because every site draws from its own stream
// and consumes exactly one draw per hit, the fire/skip decision sequence of
// a site depends only on the seed and the site's own hit count, never on
// goroutine interleaving across sites: re-running with the same seed
// reproduces the same fault schedule at every site.
//
// When no plan is enabled every helper returns after a single atomic load,
// so production binaries pay one predictable branch per failpoint —
// BenchmarkChaosDisabled pins the cost at nanoseconds, and no failpoint
// sits inside the BFS/tree kernels themselves (sites live at job and I/O
// granularity).
//
// Spec grammar (flag -chaos on mtsim, mtsimd and mtctl):
//
//	spec    := entry (';' entry)*
//	entry   := site '=' kind [':' arg] ['@' prob] ['#' limit] ['+' after]
//	kind    := error | panic | latency | short | bitflip | status | trunc
//
// arg is a duration for latency ("latency:300ms") and a status code or byte
// limit for status/trunc ("status:503", "trunc:64"); prob is the per-hit
// fire probability (default 1); limit caps total fires ("#1" = exactly
// once); after skips the first N hits. Example:
//
//	-chaos 'serve.handler=latency:200ms@0.2;shard.payload=bitflip#1' -chaos-seed 7
package chaos

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind is the fault a rule injects when it fires.
type Kind string

const (
	// KindError makes the site return ErrInjected.
	KindError Kind = "error"
	// KindPanic makes the site panic (panicsafe/Recoverer territory).
	KindPanic Kind = "panic"
	// KindLatency stalls the site for the rule's duration, then proceeds.
	KindLatency Kind = "latency"
	// KindShort truncates a write payload at a seeded offset — a torn write.
	KindShort Kind = "short"
	// KindBitFlip flips one seeded bit of a payload — silent corruption.
	KindBitFlip Kind = "bitflip"
	// KindStatus answers an HTTP request with the rule's status code.
	KindStatus Kind = "status"
	// KindTrunc truncates an HTTP response body after the rule's byte limit.
	KindTrunc Kind = "trunc"
)

// ErrInjected marks every error the framework injects, so tests and logs can
// tell synthetic faults from real ones.
var ErrInjected = errors.New("chaos: injected fault")

// Rule binds one fault kind to one site.
type Rule struct {
	Site  string
	Kind  Kind
	P     float64       // per-hit fire probability in (0, 1]; 0 means 1
	Dur   time.Duration // KindLatency stall
	Code  int           // KindStatus code; KindTrunc byte limit
	Limit int           // max fires; 0 = unlimited
	After int           // skip the first After hits of the site
}

// Event records one fired fault, for logs and reproducibility reports.
type Event struct {
	Site string
	Kind Kind
	Hit  int // the site's hit counter when the rule fired (1-based)
	Fire int // the rule's fire counter (1-based)
}

// kindMask restricts which rule kinds a helper can express, so a rule bound
// to the wrong helper is skipped instead of silently misfiring.
type kindMask uint8

const (
	maskError kindMask = 1 << iota
	maskPanic
	maskLatency
	maskShort
	maskBitFlip
	maskStatus
	maskTrunc
)

func (k Kind) mask() kindMask {
	switch k {
	case KindError:
		return maskError
	case KindPanic:
		return maskPanic
	case KindLatency:
		return maskLatency
	case KindShort:
		return maskShort
	case KindBitFlip:
		return maskBitFlip
	case KindStatus:
		return maskStatus
	case KindTrunc:
		return maskTrunc
	}
	return 0
}

// ruleState is a rule plus its deterministic decision stream.
type ruleState struct {
	Rule
	rng   *rand.Rand
	fired int
}

// siteState serializes one site's hits so its decision sequence is a pure
// function of (seed, hit count).
type siteState struct {
	mu    sync.Mutex
	hits  int
	rules []*ruleState
}

// Plan is a compiled fault schedule. Build one with Parse, install it with
// Enable; a nil plan (the default) disables every failpoint.
type Plan struct {
	seed  int64
	spec  string
	sites map[string]*siteState

	mu     sync.Mutex
	events []Event
	logf   func(format string, args ...any)
}

// maxEvents bounds the fired-event log so soaks cannot grow it unboundedly.
const maxEvents = 16384

// Parse compiles a spec (see the package comment for the grammar) into a
// Plan seeded with seed.
func Parse(spec string, seed int64) (*Plan, error) {
	p := &Plan{seed: seed, spec: spec, sites: map[string]*siteState{}}
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		r, err := parseEntry(entry)
		if err != nil {
			return nil, err
		}
		st := p.sites[r.Site]
		if st == nil {
			st = &siteState{}
			p.sites[r.Site] = st
		}
		st.rules = append(st.rules, &ruleState{
			Rule: r,
			rng:  rand.New(rand.NewSource(streamSeed(seed, r.Site, len(st.rules)))),
		})
	}
	if len(p.sites) == 0 {
		return nil, fmt.Errorf("chaos: empty spec")
	}
	return p, nil
}

// streamSeed derives a site rule's RNG seed from the plan seed: a splitmix64
// scramble of the seed with the site's FNV-1a hash and the rule index, so
// sites (and sibling rules) get independent streams.
func streamSeed(seed int64, site string, rule int) int64 {
	h := fnv.New64a()
	h.Write([]byte(site))
	z := uint64(seed) ^ h.Sum64() ^ (uint64(rule+1) * 0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// parseEntry compiles one "site=kind[:arg][@p][#limit][+after]" entry.
func parseEntry(s string) (Rule, error) {
	var r Rule
	eq := strings.IndexByte(s, '=')
	if eq <= 0 {
		return r, fmt.Errorf("chaos: entry %q: want site=kind", s)
	}
	r.Site, r.P = s[:eq], 1
	tail := s[eq+1:]
	// Peel the @prob, #limit and +after modifiers (any order) off the tail.
	for {
		i := strings.LastIndexAny(tail, "@#+")
		if i < 0 {
			break
		}
		mod, val := tail[i], tail[i+1:]
		tail = tail[:i]
		var err error
		switch mod {
		case '@':
			r.P, err = strconv.ParseFloat(val, 64)
			if err == nil && (r.P <= 0 || r.P > 1) {
				err = fmt.Errorf("probability out of (0, 1]")
			}
		case '#':
			r.Limit, err = strconv.Atoi(val)
			if err == nil && r.Limit < 1 {
				err = fmt.Errorf("limit must be >= 1")
			}
		case '+':
			r.After, err = strconv.Atoi(val)
			if err == nil && r.After < 0 {
				err = fmt.Errorf("after must be >= 0")
			}
		}
		if err != nil {
			return r, fmt.Errorf("chaos: entry %q: bad %c%s: %v", s, mod, val, err)
		}
	}
	kind, arg, hasArg := strings.Cut(tail, ":")
	r.Kind = Kind(kind)
	switch r.Kind {
	case KindError, KindPanic, KindShort, KindBitFlip:
		if hasArg {
			return r, fmt.Errorf("chaos: entry %q: %s takes no argument", s, kind)
		}
	case KindLatency:
		d, err := time.ParseDuration(arg)
		if err != nil || d <= 0 {
			return r, fmt.Errorf("chaos: entry %q: latency needs a positive duration argument", s)
		}
		r.Dur = d
	case KindStatus:
		c, err := strconv.Atoi(arg)
		if err != nil || c < 400 || c > 599 {
			return r, fmt.Errorf("chaos: entry %q: status needs a 4xx/5xx code argument", s)
		}
		r.Code = c
	case KindTrunc:
		r.Code = 64
		if hasArg {
			c, err := strconv.Atoi(arg)
			if err != nil || c < 0 {
				return r, fmt.Errorf("chaos: entry %q: trunc limit must be >= 0", s)
			}
			r.Code = c
		}
	default:
		return r, fmt.Errorf("chaos: entry %q: unknown kind %q", s, kind)
	}
	return r, nil
}

// Seed returns the seed the plan's schedule derives from.
func (p *Plan) Seed() int64 { return p.seed }

// Spec returns the spec string the plan was parsed from.
func (p *Plan) Spec() string { return p.spec }

// SetLogf routes a one-line notice for every fired fault to logf (a daemon's
// logger), so a failed soak can be replayed from its logged spec and seed.
func (p *Plan) SetLogf(logf func(format string, args ...any)) {
	p.mu.Lock()
	p.logf = logf
	p.mu.Unlock()
}

// Events snapshots the faults fired so far, in fire order.
func (p *Plan) Events() []Event {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Event, len(p.events))
	copy(out, p.events)
	return out
}

// fire advances site's hit counter and returns the first eligible rule that
// fires, with one extra uniform draw (aux) for the fault's payload position
// (torn-write offset, flipped bit). Every rule consumes exactly one decision
// draw per hit whether or not it is eligible, so a site's schedule is a pure
// function of (seed, hit count).
func (p *Plan) fire(site string, allowed kindMask) (r *ruleState, aux float64, hit int) {
	st := p.sites[site]
	if st == nil {
		return nil, 0, 0
	}
	st.mu.Lock()
	st.hits++
	hit = st.hits
	for _, rule := range st.rules {
		u := rule.rng.Float64()
		if r != nil {
			continue // keep draining sibling draws deterministically
		}
		if rule.Kind.mask()&allowed == 0 || hit <= rule.After {
			continue
		}
		if rule.Limit > 0 && rule.fired >= rule.Limit {
			continue
		}
		if u < rule.P {
			rule.fired++
			r = rule
			aux = rule.rng.Float64()
		}
	}
	var fired int
	if r != nil {
		fired = r.fired
	}
	st.mu.Unlock()
	if r == nil {
		return nil, 0, hit
	}
	p.mu.Lock()
	if len(p.events) < maxEvents {
		p.events = append(p.events, Event{Site: site, Kind: r.Kind, Hit: hit, Fire: fired})
	}
	logf := p.logf
	p.mu.Unlock()
	if logf != nil {
		logf("chaos: %s fired at %s (hit %d, fire %d)", r.Kind, site, hit, fired)
	}
	return r, aux, hit
}

// active is the installed plan; nil disables every failpoint after a single
// atomic load.
var active atomic.Pointer[Plan]

// Enable installs p as the process-wide plan (nil is equivalent to Disable).
func Enable(p *Plan) { active.Store(p) }

// Disable removes the installed plan; every failpoint reverts to zero-cost.
func Disable() { active.Store(nil) }

// Active returns the installed plan, nil when chaos is disabled.
func Active() *Plan { return active.Load() }

// Enabled reports whether a plan is installed — one atomic load.
func Enabled() bool { return active.Load() != nil }

func injected(site string, kind Kind, hit int) error {
	return fmt.Errorf("%w: %s at %s (hit %d)", ErrInjected, kind, site, hit)
}

// Maybe is the general-purpose failpoint: error rules return ErrInjected,
// panic rules panic, latency rules sleep then return nil. Disabled cost is a
// single atomic load.
func Maybe(site string) error {
	p := active.Load()
	if p == nil {
		return nil
	}
	r, _, hit := p.fire(site, maskError|maskPanic|maskLatency)
	if r == nil {
		return nil
	}
	switch r.Kind {
	case KindPanic:
		panic(fmt.Sprintf("chaos: injected panic at %s (hit %d)", site, hit))
	case KindLatency:
		time.Sleep(r.Dur)
		return nil
	default:
		return injected(site, r.Kind, hit)
	}
}

// Write is the failpoint for write payloads: short rules tear the record at
// a seeded offset, bitflip rules flip one seeded bit (on a copy), error
// rules fail the write. The unmodified b comes back when nothing fires.
func Write(site string, b []byte) ([]byte, error) {
	p := active.Load()
	if p == nil {
		return b, nil
	}
	r, aux, hit := p.fire(site, maskError|maskShort|maskBitFlip)
	if r == nil || len(b) == 0 {
		return b, nil
	}
	switch r.Kind {
	case KindShort:
		return b[:int(aux*float64(len(b)))], nil
	case KindBitFlip:
		c := make([]byte, len(b))
		copy(c, b)
		bit := int(aux * float64(len(b)*8))
		c[bit/8] ^= 1 << (bit % 8)
		return c, nil
	default:
		return b, injected(site, r.Kind, hit)
	}
}

// Status is the failpoint for HTTP status injection: a fired status rule
// returns its code and true.
func Status(site string) (code int, ok bool) {
	p := active.Load()
	if p == nil {
		return 0, false
	}
	r, _, _ := p.fire(site, maskStatus)
	if r == nil {
		return 0, false
	}
	return r.Code, true
}

// Trunc is the failpoint for HTTP response truncation: a fired trunc rule
// returns its byte limit and true.
func Trunc(site string) (limit int, ok bool) {
	p := active.Load()
	if p == nil {
		return 0, false
	}
	r, _, _ := p.fire(site, maskTrunc)
	if r == nil {
		return 0, false
	}
	return r.Code, true
}
