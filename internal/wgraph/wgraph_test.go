package wgraph

import (
	"math"
	"testing"
	"testing/quick"

	"mtreescale/internal/graph"
	"mtreescale/internal/rng"
)

func unitWeights(u, v int) float64 { return 1 }

func buildPath(t testing.TB, n int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		if err := b.AddEdge(i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestNewValidation(t *testing.T) {
	g := buildPath(t, 3)
	if _, err := New(nil, unitWeights); err == nil {
		t.Fatal("nil graph must error")
	}
	if _, err := New(g, nil); err == nil {
		t.Fatal("nil weight fn must error")
	}
	if _, err := New(g, func(u, v int) float64 { return -1 }); err == nil {
		t.Fatal("negative weight must error")
	}
	if _, err := New(g, func(u, v int) float64 { return math.NaN() }); err == nil {
		t.Fatal("NaN weight must error")
	}
	if _, err := New(g, func(u, v int) float64 { return math.Inf(1) }); err == nil {
		t.Fatal("Inf weight must error")
	}
}

func TestDijkstraUnitWeightsMatchesBFS(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%80) + 2
		r := rng.New(seed)
		b := graph.NewBuilder(n)
		for v := 1; v < n; v++ {
			_ = b.AddEdge(v, r.Intn(v))
		}
		for i := 0; i < n; i++ {
			_ = b.AddEdge(r.Intn(n), r.Intn(n))
		}
		g := b.Build()
		wg, err := New(g, unitWeights)
		if err != nil {
			return false
		}
		bfs, err := g.BFS(0)
		if err != nil {
			return false
		}
		wspt, err := wg.Dijkstra(0)
		if err != nil {
			return false
		}
		for v := 0; v < n; v++ {
			if bfs.Dist[v] == graph.Unreachable {
				if !wspt.Unreachable(v) {
					return false
				}
				continue
			}
			if math.Abs(wspt.Dist[v]-float64(bfs.Dist[v])) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestDijkstraPrefersLightPath(t *testing.T) {
	// Triangle: 0-1 heavy (10), 0-2 (1), 2-1 (1): shortest 0→1 goes via 2.
	b := graph.NewBuilder(3)
	_ = b.AddEdge(0, 1)
	_ = b.AddEdge(0, 2)
	_ = b.AddEdge(1, 2)
	g := b.Build()
	wg, err := New(g, func(u, v int) float64 {
		if (u == 0 && v == 1) || (u == 1 && v == 0) {
			return 10
		}
		return 1
	})
	if err != nil {
		t.Fatal(err)
	}
	wspt, err := wg.Dijkstra(0)
	if err != nil {
		t.Fatal(err)
	}
	if wspt.Dist[1] != 2 {
		t.Fatalf("dist(0,1) = %v, want 2 via node 2", wspt.Dist[1])
	}
	if wspt.Parent[1] != 2 {
		t.Fatalf("parent(1) = %d, want 2", wspt.Parent[1])
	}
}

func TestDijkstraErrors(t *testing.T) {
	g := buildPath(t, 3)
	wg, _ := New(g, unitWeights)
	if _, err := wg.Dijkstra(-1); err == nil {
		t.Fatal("bad source must error")
	}
	if _, err := wg.Dijkstra(3); err == nil {
		t.Fatal("bad source must error")
	}
}

func TestTreeCostPath(t *testing.T) {
	g := buildPath(t, 6)
	wg, _ := New(g, func(u, v int) float64 { return 2.5 })
	wspt, _ := wg.Dijkstra(0)
	cost, links := wg.TreeCost(wspt, []int32{5})
	if links != 5 || math.Abs(cost-12.5) > 1e-9 {
		t.Fatalf("cost=%v links=%d", cost, links)
	}
	// Shared prefix: two receivers on the same ray count links once.
	cost2, links2 := wg.TreeCost(wspt, []int32{3, 5})
	if links2 != 5 || math.Abs(cost2-12.5) > 1e-9 {
		t.Fatalf("shared prefix cost=%v links=%d", cost2, links2)
	}
	// Garbage receivers ignored.
	cost3, links3 := wg.TreeCost(wspt, []int32{-1, 99})
	if cost3 != 0 || links3 != 0 {
		t.Fatalf("garbage: cost=%v links=%d", cost3, links3)
	}
}

func TestUnicastCost(t *testing.T) {
	g := buildPath(t, 4)
	wg, _ := New(g, func(u, v int) float64 { return 3 })
	wspt, _ := wg.Dijkstra(0)
	cost, reach := wg.UnicastCost(wspt, []int32{1, 3})
	if reach != 2 || math.Abs(cost-12) > 1e-9 {
		t.Fatalf("cost=%v reach=%d", cost, reach)
	}
}

func TestArcWeight(t *testing.T) {
	g := buildPath(t, 3)
	wg, _ := New(g, func(u, v int) float64 { return float64(u + v) })
	// Node 1's neighbors are sorted: [0, 2]; weights 1, 3.
	if wg.ArcWeight(1, 0) != 1 || wg.ArcWeight(1, 1) != 3 {
		t.Fatalf("arc weights: %v %v", wg.ArcWeight(1, 0), wg.ArcWeight(1, 1))
	}
}

func TestWaxmanGeo(t *testing.T) {
	gg, err := WaxmanGeo(300, 0.5, 0.25, 3)
	if err != nil {
		t.Fatal(err)
	}
	if gg.G.N() < 100 || !gg.G.Connected() {
		t.Fatalf("giant component: N=%d", gg.G.N())
	}
	if len(gg.X) != gg.G.N() || len(gg.Y) != gg.G.N() {
		t.Fatal("coordinates misaligned")
	}
	// Every weight must equal the Euclidean distance of its endpoints.
	for u := 0; u < gg.G.N(); u++ {
		for i, v := range gg.G.Neighbors(u) {
			want := math.Hypot(gg.X[u]-gg.X[v], gg.Y[u]-gg.Y[v])
			if math.Abs(gg.ArcWeight(u, i)-want) > 1e-12 {
				t.Fatalf("weight (%d,%d) = %v, want %v", u, v, gg.ArcWeight(u, i), want)
			}
		}
	}
}

func TestWaxmanGeoErrors(t *testing.T) {
	if _, err := WaxmanGeo(0, 0.5, 0.5, 1); err == nil {
		t.Fatal("n=0 must error")
	}
	if _, err := WaxmanGeo(10, 2, 0.5, 1); err == nil {
		t.Fatal("alpha>1 must error")
	}
	if _, err := WaxmanGeo(10, 0.5, 0, 1); err == nil {
		t.Fatal("beta=0 must error")
	}
}

func TestMeasureWeightedCurve(t *testing.T) {
	gg, err := WaxmanGeo(250, 0.6, 0.25, 5)
	if err != nil {
		t.Fatal(err)
	}
	sizes := []int{1, 5, 20, 60}
	pts, err := MeasureWeightedCurve(gg, sizes, 8, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, pt := range pts {
		if pt.Samples == 0 {
			t.Fatalf("no samples at %d", pt.Size)
		}
		if pt.MeanHopRatio <= 0 || pt.MeanCostRatio <= 0 {
			t.Fatalf("degenerate point %+v", pt)
		}
		if i > 0 && pt.MeanHopRatio <= pts[i-1].MeanHopRatio {
			t.Fatal("hop ratio must increase with m")
		}
		if i > 0 && pt.MeanCostRatio <= pts[i-1].MeanCostRatio {
			t.Fatal("cost ratio must increase with m")
		}
	}
	// m=1: both ratios are exactly 1.
	if math.Abs(pts[0].MeanHopRatio-1) > 1e-9 || math.Abs(pts[0].MeanCostRatio-1) > 1e-9 {
		t.Fatalf("m=1 ratios: %+v", pts[0])
	}
}

func TestMeasureWeightedCurveErrors(t *testing.T) {
	gg, err := WaxmanGeo(100, 0.6, 0.25, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MeasureWeightedCurve(gg, []int{1}, 0, 1, 1); err == nil {
		t.Fatal("nSource=0 must error")
	}
	if _, err := MeasureWeightedCurve(gg, []int{0}, 1, 1, 1); err == nil {
		t.Fatal("size 0 must error")
	}
	if _, err := MeasureWeightedCurve(gg, []int{gg.G.N()}, 1, 1, 1); err == nil {
		t.Fatal("m = N must error")
	}
}

func TestWeightedAndHopExponentsClose(t *testing.T) {
	// The headline weighted result: the scaling exponent of the
	// length-weighted ratio tracks the hop-count exponent.
	if testing.Short() {
		t.Skip("short mode")
	}
	gg, err := WaxmanGeo(400, 0.6, 0.25, 7)
	if err != nil {
		t.Fatal(err)
	}
	sizes := []int{2, 4, 8, 16, 32, 64, 128}
	pts, err := MeasureWeightedCurve(gg, sizes, 12, 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	slope := func(get func(WeightedPoint) float64) float64 {
		var sx, sy, sxx, sxy, n float64
		for _, pt := range pts {
			x, y := math.Log(float64(pt.Size)), math.Log(get(pt))
			sx += x
			sy += y
			sxx += x * x
			sxy += x * y
			n++
		}
		return (n*sxy - sx*sy) / (n*sxx - sx*sx)
	}
	hop := slope(func(p WeightedPoint) float64 { return p.MeanHopRatio })
	cost := slope(func(p WeightedPoint) float64 { return p.MeanCostRatio })
	if math.Abs(hop-cost) > 0.12 {
		t.Fatalf("hop exponent %.3f vs cost exponent %.3f diverge", hop, cost)
	}
	if hop < 0.5 || hop > 1 {
		t.Fatalf("hop exponent %.3f implausible", hop)
	}
}

func TestMeasureWeightedCurveDeterministic(t *testing.T) {
	gg, err := WaxmanGeo(150, 0.6, 0.25, 9)
	if err != nil {
		t.Fatal(err)
	}
	a, err := MeasureWeightedCurve(gg, []int{2, 10}, 4, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MeasureWeightedCurve(gg, []int{2, 10}, 4, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic point %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestWaxmanGeoDeterministic(t *testing.T) {
	a, err := WaxmanGeo(120, 0.5, 0.3, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := WaxmanGeo(120, 0.5, 0.3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.G.N() != b.G.N() || a.G.M() != b.G.M() {
		t.Fatal("same seed must give same graph")
	}
	for i := range a.X {
		if a.X[i] != b.X[i] || a.Y[i] != b.Y[i] {
			t.Fatal("coordinates differ")
		}
	}
}
