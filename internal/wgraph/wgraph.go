// Package wgraph extends the simulator to weighted links. The paper counts
// hops only (footnote 3: "We merely count the number of links, we do not
// weight the links by their length or bandwidth"); this package implements
// the weighted variant so the repository can test whether the scaling law
// survives length-weighted costs: Dijkstra shortest-path trees, weighted
// delivery-tree costs, and a geometric (Euclidean-weighted Waxman)
// generator.
package wgraph

import (
	"container/heap"
	"fmt"
	"math"

	"mtreescale/internal/graph"
)

// WGraph pairs an unweighted Graph with one non-negative weight per arc,
// stored in the same CSR arc order as Graph's adjacency.
type WGraph struct {
	G *graph.Graph
	// w[i] is the weight of the i-th arc (both directions of an edge carry
	// the same weight).
	w []float64
	// bases memoizes per-node CSR arc offsets (built on first use).
	bases []int
}

// New builds a WGraph from g and a symmetric weight function on edges.
// weight(u, v) must return the same positive, finite value for (u, v) and
// (v, u).
func New(g *graph.Graph, weight func(u, v int) float64) (*WGraph, error) {
	if g == nil {
		return nil, fmt.Errorf("wgraph: nil graph")
	}
	if weight == nil {
		return nil, fmt.Errorf("wgraph: nil weight function")
	}
	wg := &WGraph{G: g, w: make([]float64, 0, 2*g.M())}
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			x := weight(u, int(v))
			if x < 0 || math.IsNaN(x) || math.IsInf(x, 0) {
				return nil, fmt.Errorf("wgraph: invalid weight %v on edge (%d,%d)", x, u, v)
			}
			wg.w = append(wg.w, x)
		}
	}
	return wg, nil
}

// ArcWeight returns the weight of the i-th arc of node u.
func (wg *WGraph) ArcWeight(u, i int) float64 {
	return wg.w[wg.arcBase(u)+i]
}

func (wg *WGraph) arcBase(u int) int {
	// Reconstruct the CSR offset by walking Neighbors: Graph doesn't expose
	// offsets, but arc order is deterministic, so cache bases lazily.
	if wg.bases == nil {
		wg.bases = make([]int, wg.G.N()+1)
		total := 0
		for v := 0; v < wg.G.N(); v++ {
			wg.bases[v] = total
			total += len(wg.G.Neighbors(v))
		}
		wg.bases[wg.G.N()] = total
	}
	return wg.bases[u]
}

// WSPT is a weighted single-source shortest-path tree.
type WSPT struct {
	Source int
	Parent []int32
	// Dist is the weighted distance; +Inf marks unreachable nodes.
	Dist []float64
}

// Unreachable reports whether v has no path from the source.
func (t *WSPT) Unreachable(v int) bool { return math.IsInf(t.Dist[v], 1) }

type pqItem struct {
	v    int32
	dist float64
}

type pq []pqItem

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// Dijkstra computes the weighted shortest-path tree from source.
func (wg *WGraph) Dijkstra(source int) (*WSPT, error) {
	n := wg.G.N()
	if source < 0 || source >= n {
		return nil, fmt.Errorf("wgraph: source %d out of range [0,%d)", source, n)
	}
	t := &WSPT{
		Source: source,
		Parent: make([]int32, n),
		Dist:   make([]float64, n),
	}
	for i := range t.Dist {
		t.Dist[i] = math.Inf(1)
		t.Parent[i] = -1
	}
	t.Dist[source] = 0
	t.Parent[source] = int32(source)
	q := pq{{int32(source), 0}}
	for q.Len() > 0 {
		it := heap.Pop(&q).(pqItem)
		if it.dist > t.Dist[it.v] {
			continue // stale entry
		}
		base := wg.arcBase(int(it.v))
		for i, w := range wg.G.Neighbors(int(it.v)) {
			nd := it.dist + wg.w[base+i]
			if nd < t.Dist[w] {
				t.Dist[w] = nd
				t.Parent[w] = it.v
				heap.Push(&q, pqItem{w, nd})
			}
		}
	}
	return t, nil
}

// TreeCost returns the total weight and link count of the delivery tree
// induced by the receivers on the weighted SPT (union of tree paths).
func (wg *WGraph) TreeCost(t *WSPT, receivers []int32) (cost float64, links int) {
	visited := make(map[int32]bool, len(receivers)*4)
	visited[int32(t.Source)] = true
	for _, r := range receivers {
		if r < 0 || int(r) >= wg.G.N() || t.Unreachable(int(r)) {
			continue
		}
		for v := r; !visited[v]; {
			visited[v] = true
			p := t.Parent[v]
			cost += t.Dist[v] - t.Dist[p]
			links++
			v = p
		}
	}
	return cost, links
}

// UnicastCost returns the summed weighted source→receiver distances and the
// reachable receiver count.
func (wg *WGraph) UnicastCost(t *WSPT, receivers []int32) (cost float64, reachable int) {
	for _, r := range receivers {
		if r < 0 || int(r) >= wg.G.N() || t.Unreachable(int(r)) {
			continue
		}
		cost += t.Dist[r]
		reachable++
	}
	return cost, reachable
}
