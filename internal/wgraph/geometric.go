package wgraph

import (
	"fmt"
	"math"

	"mtreescale/internal/graph"
	"mtreescale/internal/rng"
)

// GeoGraph is a graph whose nodes have plane coordinates and whose links
// are weighted by Euclidean length — the setting in which the paper's
// footnote 3 simplification (hop counts) can be tested against true
// length-weighted costs.
type GeoGraph struct {
	*WGraph
	X, Y []float64
}

// WaxmanGeo generates a Waxman graph on the unit square and weights every
// link by its Euclidean length. The giant component is returned.
func WaxmanGeo(n int, alpha, beta float64, seed int64) (*GeoGraph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("wgraph: WaxmanGeo needs n > 0, got %d", n)
	}
	if alpha < 0 || alpha > 1 || beta <= 0 {
		return nil, fmt.Errorf("wgraph: WaxmanGeo needs alpha in [0,1], beta > 0 (got %v, %v)", alpha, beta)
	}
	r := rng.New(seed)
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = r.Float64()
		ys[i] = r.Float64()
	}
	lmax := math.Sqrt2
	b := graph.NewBuilder(n)
	b.SetName(fmt.Sprintf("waxman-geo-%d", n))
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			d := math.Hypot(xs[u]-xs[v], ys[u]-ys[v])
			if r.Float64() < alpha*math.Exp(-d/(beta*lmax)) {
				_ = b.AddEdge(u, v)
			}
		}
	}
	g, oldIDs := b.Build().GiantComponent()
	gx := make([]float64, g.N())
	gy := make([]float64, g.N())
	for newID, oldID := range oldIDs {
		gx[newID] = xs[oldID]
		gy[newID] = ys[oldID]
	}
	wg, err := New(g, func(u, v int) float64 {
		return math.Hypot(gx[u]-gx[v], gy[u]-gy[v])
	})
	if err != nil {
		return nil, err
	}
	return &GeoGraph{WGraph: wg, X: gx, Y: gy}, nil
}

// WeightedPoint is one group size of a weighted-vs-hop comparison.
type WeightedPoint struct {
	Size int
	// MeanHopRatio is E[L/ū] counted in hops (the paper's quantity).
	MeanHopRatio float64
	// MeanCostRatio is E[cost(tree)/avg unicast cost] in Euclidean length.
	MeanCostRatio float64
	Samples       int
}

// MeasureWeightedCurve measures both the hop-count and the length-weighted
// normalized tree size on the same samples, drawing m distinct receivers
// per sample. Weighted trees use Dijkstra SPTs; hop trees use BFS SPTs.
func MeasureWeightedCurve(gg *GeoGraph, sizes []int, nSource, nRcvr int, seed int64) ([]WeightedPoint, error) {
	if nSource < 1 || nRcvr < 1 {
		return nil, fmt.Errorf("wgraph: need nSource, nRcvr >= 1 (got %d, %d)", nSource, nRcvr)
	}
	g := gg.G
	if g.N() < 2 {
		return nil, fmt.Errorf("wgraph: graph too small")
	}
	for _, s := range sizes {
		if s <= 0 || s > g.N()-1 {
			return nil, fmt.Errorf("wgraph: group size %d out of [1,%d]", s, g.N()-1)
		}
	}
	out := make([]WeightedPoint, len(sizes))
	for k := range out {
		out[k].Size = sizes[k]
	}
	srcRand := rng.NewChild(seed, -1)
	var bfs graph.SPT
	hopCounter := newHopCounter(g.N())
	for si := 0; si < nSource; si++ {
		source := srcRand.Intn(g.N())
		if err := g.BFSInto(source, &bfs); err != nil {
			return nil, err
		}
		wspt, err := gg.Dijkstra(source)
		if err != nil {
			return nil, err
		}
		r := rng.NewChild(seed, int64(si))
		// Distinct sampling without the source.
		pop := make([]int32, 0, g.N()-1)
		for v := 0; v < g.N(); v++ {
			if v != source {
				pop = append(pop, int32(v))
			}
		}
		for k, size := range sizes {
			for rep := 0; rep < nRcvr; rep++ {
				// Partial Fisher-Yates.
				for i := 0; i < size; i++ {
					j := i + r.Intn(len(pop)-i)
					pop[i], pop[j] = pop[j], pop[i]
				}
				recv := pop[:size]

				hops, hopSum := hopCounter.measure(&bfs, recv)
				if hopSum == 0 {
					continue
				}
				cost, _ := gg.TreeCost(wspt, recv)
				ucost, reach := gg.UnicastCost(wspt, recv)
				if reach == 0 || ucost == 0 {
					continue
				}
				out[k].MeanHopRatio += float64(hops) / (float64(hopSum) / float64(len(recv)))
				out[k].MeanCostRatio += cost / (ucost / float64(reach))
				out[k].Samples++
			}
		}
	}
	for k := range out {
		if out[k].Samples > 0 {
			out[k].MeanHopRatio /= float64(out[k].Samples)
			out[k].MeanCostRatio /= float64(out[k].Samples)
		}
	}
	return out, nil
}

// hopCounter is a miniature epoch-marked tree counter (kept local to avoid
// an import cycle with mcast).
type hopCounter struct {
	epoch   int32
	visited []int32
}

func newHopCounter(n int) *hopCounter { return &hopCounter{visited: make([]int32, n)} }

func (c *hopCounter) measure(spt *graph.SPT, recv []int32) (links int, unicastHops int64) {
	c.epoch++
	c.visited[spt.Source] = c.epoch
	for _, r := range recv {
		if r < 0 || int(r) >= len(spt.Parent) || spt.Dist[r] == graph.Unreachable {
			continue
		}
		unicastHops += int64(spt.Dist[r])
		for v := r; c.visited[v] != c.epoch; {
			c.visited[v] = c.epoch
			links++
			v = spt.Parent[v]
		}
	}
	return links, unicastHops
}
