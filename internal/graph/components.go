package graph

// Components labels each node with a connected-component id (0-based, in
// order of discovery) and returns the label slice plus the number of
// components.
func (g *Graph) Components() (labels []int32, count int) {
	n := g.N()
	labels = make([]int32, n)
	for i := range labels {
		labels[i] = -1
	}
	queue := make([]int32, 0, n)
	for v := 0; v < n; v++ {
		if labels[v] != -1 {
			continue
		}
		id := int32(count)
		count++
		labels[v] = id
		queue = append(queue[:0], int32(v))
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for _, w := range g.Neighbors(int(u)) {
				if labels[w] == -1 {
					labels[w] = id
					queue = append(queue, w)
				}
			}
		}
	}
	return labels, count
}

// Connected reports whether the graph is a single connected component.
// The empty graph counts as connected.
func (g *Graph) Connected() bool {
	_, c := g.Components()
	return c <= 1
}

// GiantComponent returns the subgraph induced by the largest connected
// component, with nodes renumbered densely, plus the mapping from new ids to
// original ids. Topology generators use this to clean disconnected debris,
// because the paper's experiments pick sources and receivers that must be
// mutually reachable.
func (g *Graph) GiantComponent() (*Graph, []int32) {
	labels, count := g.Components()
	if count <= 1 {
		ids := make([]int32, g.N())
		for i := range ids {
			ids[i] = int32(i)
		}
		return g, ids
	}
	sizes := make([]int, count)
	for _, l := range labels {
		sizes[l]++
	}
	best := 0
	for i, s := range sizes {
		if s > sizes[best] {
			best = i
		}
	}
	// Renumber.
	newID := make([]int32, g.N())
	oldID := make([]int32, 0, sizes[best])
	for v := 0; v < g.N(); v++ {
		if labels[v] == int32(best) {
			newID[v] = int32(len(oldID))
			oldID = append(oldID, int32(v))
		} else {
			newID[v] = -1
		}
	}
	b := NewBuilder(len(oldID))
	b.SetName(g.name)
	g.Edges(func(u, v int) {
		if newID[u] >= 0 && newID[v] >= 0 {
			// Endpoints are in range by construction; error impossible.
			_ = b.AddEdge(int(newID[u]), int(newID[v]))
		}
	})
	return b.Build(), oldID
}
