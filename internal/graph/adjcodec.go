package graph

// This file implements the varint delta codec for compressed adjacency
// (compress.go). Each vertex's neighbor list is stored as byte-level deltas
// against a strictly ascending int32 sequence:
//
//   - the first neighbor is encoded as the zigzag of (neigh[0] - v), since it
//     can precede or follow v;
//   - every subsequent neighbor is encoded as uvarint(neigh[i]-neigh[i-1]-1):
//     lists are strictly ascending, so the gap is >= 1 and the -1 keeps
//     consecutive runs (hub-heavy low-id blocks after degree relabeling) in
//     the 1-byte range.
//
// On the paper's topologies this averages a little over one byte per
// directed edge entry versus four for the flat CSR — the "roughly halves
// edge-array bytes" the large-graph mode is built on. The decoder is a
// manual loop rather than binary.Uvarint because it sits inside every
// compressed BFS edge scan.

// appendUvarint appends x in LEB128 form.
func appendUvarint(dst []byte, x uint64) []byte {
	for x >= 0x80 {
		dst = append(dst, byte(x)|0x80)
		x >>= 7
	}
	return append(dst, byte(x))
}

// zigzag maps a signed delta to an unsigned code with small magnitudes small.
func zigzag(d int64) uint64 { return uint64(d<<1) ^ uint64(d>>63) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// appendAdj encodes vertex v's strictly ascending neighbor list.
func appendAdj(dst []byte, v int32, neigh []int32) []byte {
	if len(neigh) == 0 {
		return dst
	}
	dst = appendUvarint(dst, zigzag(int64(neigh[0])-int64(v)))
	for i := 1; i < len(neigh); i++ {
		dst = appendUvarint(dst, uint64(neigh[i]-neigh[i-1])-1)
	}
	return dst
}

// decodeAdjInto decodes count neighbors of v from src into dst[:count].
// src must be exactly the bytes appendAdj produced for (v, neigh); the
// decoder is not hardened against foreign input (the encoding is an internal
// storage format, never an interchange one).
func decodeAdjInto(src []byte, v int32, count int, dst []int32) []int32 {
	dst = dst[:count]
	if count == 0 {
		return dst
	}
	pos := 0
	var x uint64
	var s uint
	for {
		b := src[pos]
		pos++
		if b < 0x80 {
			x |= uint64(b) << s
			break
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
	prev := v + int32(unzigzag(x))
	dst[0] = prev
	for i := 1; i < count; i++ {
		var d uint32
		var s uint
		for {
			b := src[pos]
			pos++
			if b < 0x80 {
				d |= uint32(b) << s
				break
			}
			d |= uint32(b&0x7f) << s
			s += 7
		}
		prev += int32(d) + 1
		dst[i] = prev
	}
	return dst
}

// scanAdjFor reports whether target appears in vertex v's encoded neighbor
// list without materializing it. Early-exits on the ascending order.
func scanAdjFor(src []byte, v int32, count int, target int32) bool {
	if count == 0 {
		return false
	}
	pos := 0
	var x uint64
	var s uint
	for {
		b := src[pos]
		pos++
		if b < 0x80 {
			x |= uint64(b) << s
			break
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
	prev := v + int32(unzigzag(x))
	if prev == target {
		return true
	}
	for i := 1; i < count && prev < target; i++ {
		var d uint32
		var s uint
		for {
			b := src[pos]
			pos++
			if b < 0x80 {
				d |= uint32(b) << s
				break
			}
			d |= uint32(b&0x7f) << s
			s += 7
		}
		prev += int32(d) + 1
		if prev == target {
			return true
		}
	}
	return false
}
