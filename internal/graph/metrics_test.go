package graph

import (
	"strings"
	"testing"
)

func TestComputeMetricsPath(t *testing.T) {
	g := path(t, 5).WithName("p5")
	m := ComputeMetrics(g, 0, 1)
	if m.Nodes != 5 || m.Links != 4 {
		t.Fatalf("metrics = %+v", m)
	}
	if m.Components != 1 {
		t.Fatalf("components = %d", m.Components)
	}
	if m.Diameter != 4 {
		t.Fatalf("diameter = %d", m.Diameter)
	}
	if m.MaxDegree != 2 {
		t.Fatalf("max degree = %d", m.MaxDegree)
	}
	// Exact mean pairwise distance of P5: sum over ordered pairs / 20 = 2.
	if m.AvgPathLen != 2 {
		t.Fatalf("avg path len = %v, want 2", m.AvgPathLen)
	}
	if m.Name != "p5" {
		t.Fatalf("name = %q", m.Name)
	}
}

func TestComputeMetricsComplete(t *testing.T) {
	g := complete(t, 6)
	m := ComputeMetrics(g, 0, 1)
	if m.AvgPathLen != 1 {
		t.Fatalf("K6 avg path = %v", m.AvgPathLen)
	}
	if m.Diameter != 1 {
		t.Fatalf("K6 diameter = %d", m.Diameter)
	}
	if m.AvgDegree != 5 {
		t.Fatalf("K6 degavg = %v", m.AvgDegree)
	}
}

func TestComputeMetricsSampledClose(t *testing.T) {
	g := randomGraph(10, 2000, 4000)
	exact := ComputeMetrics(g, 0, 1)
	sampled := ComputeMetrics(g, 100, 1)
	if sampled.Nodes != exact.Nodes || sampled.Links != exact.Links {
		t.Fatal("structural metrics must not depend on sampling")
	}
	rel := (sampled.AvgPathLen - exact.AvgPathLen) / exact.AvgPathLen
	if rel < -0.1 || rel > 0.1 {
		t.Fatalf("sampled path length off by %.1f%% (exact %.3f sampled %.3f)",
			100*rel, exact.AvgPathLen, sampled.AvgPathLen)
	}
}

func TestComputeMetricsDeterministic(t *testing.T) {
	g := randomGraph(4, 1500, 2500)
	a := ComputeMetrics(g, 50, 9)
	b := ComputeMetrics(g, 50, 9)
	if a != b {
		t.Fatalf("same seed, different metrics: %+v vs %+v", a, b)
	}
}

func TestComputeMetricsEmpty(t *testing.T) {
	g := NewBuilder(0).Build()
	m := ComputeMetrics(g, 10, 1)
	if m.Nodes != 0 || m.AvgPathLen != 0 {
		t.Fatalf("empty metrics = %+v", m)
	}
}

func TestMetricsString(t *testing.T) {
	m := Metrics{Name: "arpa", Nodes: 47, Links: 64}
	s := m.String()
	if !strings.Contains(s, "arpa") || !strings.Contains(s, "47") {
		t.Fatalf("row = %q", s)
	}
}
