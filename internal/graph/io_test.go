package graph

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestWriteReadRoundTrip(t *testing.T) {
	g := randomGraph(12, 50, 80).WithName("rt50")
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	h, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.N() != g.N() || h.M() != g.M() || h.Name() != g.Name() {
		t.Fatalf("round trip changed shape: %v vs %v", h, g)
	}
	g.Edges(func(u, v int) {
		if !h.HasEdge(u, v) {
			t.Fatalf("edge (%d,%d) lost", u, v)
		}
	})
}

func TestReadCommentsAndBlanks(t *testing.T) {
	in := `# a comment
name demo

nodes 3
0 1
# interior comment
1 2
`
	g, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 || g.Name() != "demo" {
		t.Fatalf("parsed %v", g)
	}
}

func TestReadCleansDuplicates(t *testing.T) {
	in := "nodes 3\n0 1\n1 0\n0 1\n1 1\n"
	g, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 1 {
		t.Fatalf("M = %d, want 1 (dups and self-loop cleaned)", g.M())
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"",                     // no nodes directive
		"0 1\n",                // edge before nodes
		"nodes x\n",            // bad count
		"nodes -5\n",           // negative count
		"nodes 2\nnodes 2\n",   // duplicate directive
		"nodes 2\n0\n",         // malformed edge
		"nodes 2\n0 five\n",    // non-numeric endpoint
		"nodes 2\n0 7\n",       // out of range
		"name\nnodes 2\n",      // malformed name
		"nodes 2 extra\n0 1\n", // malformed nodes
		"nodes 2\n0 1 2\n",     // too many fields
	}
	for _, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("input %q: expected error", in)
		}
	}
}

func TestWriteNoName(t *testing.T) {
	g := path(t, 3)
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "name") {
		t.Fatalf("unnamed graph emitted a name line:\n%s", buf.String())
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%50) + 2
		g := randomGraph(seed, n, n)
		var buf bytes.Buffer
		if err := Write(&buf, g); err != nil {
			return false
		}
		h, err := Read(&buf)
		if err != nil {
			return false
		}
		if h.N() != g.N() || h.M() != g.M() {
			return false
		}
		ok := true
		g.Edges(func(u, v int) {
			if !h.HasEdge(u, v) {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
