package graph

import (
	"errors"
	"fmt"
	"math/bits"
)

// Unreachable marks a node with no path from the BFS source.
const Unreachable int32 = -1

// SPT is a single-source shortest-path tree produced by BFS: for every node
// reachable from Source, Parent gives the previous hop on one shortest path
// and Dist the hop count. Unreachable nodes have Parent == Dist == -1.
//
// Parents are canonical: Parent[v] is the lowest-index neighbor of v at
// distance Dist[v]-1. Every kernel (serial, direction-optimizing, MS-BFS)
// resolves ties the same way, so an SPT is a pure function of
// (graph, source) regardless of which kernel produced it — the property the
// SPT cache and the batch measurement path rely on to stay byte-identical.
//
// The multicast engine builds every delivery tree as a subtree of an SPT,
// matching the paper's source-specific shortest-path routing model
// (footnote 1: "packets traverse the shortest path between source and
// receiver").
type SPT struct {
	Source int
	Parent []int32
	Dist   []int32
	// Order lists reachable nodes in nondecreasing distance; Order[0] ==
	// Source. The relative order of nodes at the same distance is
	// kernel-dependent (queue order, frontier order, or index order) — no
	// consumer may rely on it beyond the nondecreasing-distance guarantee.
	Order []int32
}

// BFS computes the shortest-path tree rooted at source.
func (g *Graph) BFS(source int) (*SPT, error) {
	t := &SPT{}
	if err := g.BFSInto(source, t); err != nil {
		return nil, err
	}
	return t, nil
}

// BFSInto is an allocation-free variant of BFS for hot loops: it reuses the
// SPT's slices if they are large enough. The SPT must not be shared across
// goroutines while being reused.
//
// Above directionOptThreshold nodes it routes to the direction-optimizing
// kernel (hybrid.go); below it, to the reference queue BFS. Compressed
// graphs route to the compressed kernel (cbfs.go) with the same threshold
// picking its stepping mode. All kernels produce identical Dist arrays and
// identical canonical (lowest-index) Parent arrays; only the within-level
// Order may differ between kernels.
func (g *Graph) BFSInto(source int, t *SPT) error {
	n := g.N()
	if source < 0 || source >= n {
		return fmt.Errorf("graph: BFS source %d out of range [0,%d)", source, n)
	}
	if cap(t.Parent) < n {
		t.Parent = make([]int32, n)
		t.Dist = make([]int32, n)
		t.Order = make([]int32, 0, n)
	}
	t.Parent = t.Parent[:n]
	t.Dist = t.Dist[:n]
	t.Order = t.Order[:0]
	t.Source = source
	for i := range t.Parent {
		t.Parent[i] = Unreachable
		t.Dist[i] = Unreachable
	}
	if g.cadj != nil {
		g.compressedBFSInto(source, t, n >= directionOptThreshold)
	} else if n >= directionOptThreshold {
		g.hybridBFSInto(source, t)
	} else {
		g.serialBFSInto(source, t)
	}
	return nil
}

// serialBFSInto is the reference level-synchronous BFS: level membership
// lives in a bitset, scanned in ascending node order, so the first
// discoverer of every next-level node is its lowest-index previous-level
// neighbor — parents come out canonical with no per-edge tie-break. The
// membership scan costs N/64 word reads per level, noise next to the edge
// scan it sits on top of. This is the kernel of record that the
// direction-optimizing and multi-source kernels are tested against.
func (g *Graph) serialBFSInto(source int, t *SPT) {
	n := g.N()
	words := (n + 63) / 64
	sc := bfsScratchPool.Get().(*bfsScratch)
	if cap(sc.visited) < words {
		sc.visited = make([]uint64, words)
		sc.front = make([]uint64, words)
	}
	cur := sc.visited[:words]
	next := sc.front[:words]
	for i := range next {
		cur[i] = 0
		next[i] = 0
	}
	defer bfsScratchPool.Put(sc)

	t.Dist[source] = 0
	t.Parent[source] = int32(source)
	t.Order = append(t.Order, int32(source))
	cur[source>>6] |= 1 << (uint(source) & 63)
	for du := int32(0); ; du++ {
		grew := false
		for wi := 0; wi < words; wi++ {
			f := cur[wi]
			cur[wi] = 0
			for f != 0 {
				u := int32(wi<<6 + bits.TrailingZeros64(f))
				f &= f - 1
				for _, w := range g.Neighbors(int(u)) {
					if t.Dist[w] == Unreachable {
						t.Dist[w] = du + 1
						t.Parent[w] = u
						t.Order = append(t.Order, w)
						next[w>>6] |= 1 << (uint(w) & 63)
						grew = true
					}
				}
			}
		}
		if !grew {
			return
		}
		cur, next = next, cur
	}
}

// Reachable returns the number of nodes reachable from the source,
// including the source itself.
func (t *SPT) Reachable() int { return len(t.Order) }

// Depth returns the eccentricity of the source within its component: the
// maximum finite distance.
func (t *SPT) Depth() int {
	if len(t.Order) == 0 {
		return 0
	}
	return int(t.Dist[t.Order[len(t.Order)-1]])
}

// PathTo returns the node sequence from the source to v along the tree,
// inclusive. It returns an error if v is unreachable.
func (t *SPT) PathTo(v int) ([]int, error) {
	if v < 0 || v >= len(t.Dist) || t.Dist[v] == Unreachable {
		return nil, errors.New("graph: node unreachable from source")
	}
	path := make([]int, t.Dist[v]+1)
	for i := int(t.Dist[v]); ; i-- {
		path[i] = v
		if v == t.Source {
			break
		}
		v = int(t.Parent[v])
	}
	return path, nil
}

// AvgDist returns the mean distance from the source over all reachable
// nodes other than the source itself. This is the per-source unicast path
// length ū used throughout the paper. It returns 0 when the source is
// isolated.
func (t *SPT) AvgDist() float64 {
	if len(t.Order) <= 1 {
		return 0
	}
	var sum int64
	for _, v := range t.Order[1:] {
		sum += int64(t.Dist[v])
	}
	return float64(sum) / float64(len(t.Order)-1)
}

// DistHistogram returns counts[r] = number of nodes at distance exactly r
// from the source (counts[0] == 1 for the source). This is the paper's
// reachability function S(r).
func (t *SPT) DistHistogram() []int {
	counts := make([]int, t.Depth()+1)
	for _, v := range t.Order {
		counts[t.Dist[v]]++
	}
	return counts
}
