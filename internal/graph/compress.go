package graph

import (
	"fmt"
	"math"
	"slices"
)

// This file implements the compressed-CSR layout behind the large-graph mode
// (ROADMAP: Internet-scale graphs): adjacency stored as varint deltas (adjcodec.go),
// optionally after a degree-descending vertex relabeling that clusters hubs
// — the nodes nearly every BFS level touches — into the low-index cache
// blocks of the traversal bitsets and lane-mask arrays.
//
// Relabeling never leaks: the permutation is kept alongside its stable
// inverse, the compressed kernels (cbfs.go, cmsbfs.go) traverse in storage
// ids but write Dist/Parent/Order directly in original ids, and parents
// follow the same canonical lowest-original-index rule as the uncompressed
// kernels. Every public accessor (Neighbors, Edges, Validate, ...) speaks
// original ids too, so a compressed graph is observationally identical to
// its source — only MemBytes and traversal speed differ.

// Compressed reports whether g stores its adjacency varint-delta encoded.
func (g *Graph) Compressed() bool { return g.cadj != nil }

// Relabeled reports whether g's storage order is the degree-descending
// relabeling rather than original ids.
func (g *Graph) Relabeled() bool { return g.inv != nil }

// Compress returns a compressed copy of g: varint delta-encoded adjacency,
// and — when relabel is set — vertices stored in degree-descending order
// (original id ascending within equal degree, so the layout is stable and
// reproducible). Compressing an already-compressed graph returns it
// unchanged. The original graph is untouched; callers building large graphs
// should drop their reference to it after compressing, bringing peak RSS to
// roughly the uncompressed CSR plus the (smaller) compressed one.
func (g *Graph) Compress(relabel bool) (*Graph, error) {
	if g.cadj != nil {
		return g, nil
	}
	n := g.N()
	if n < 0 {
		n = 0
	}
	cg := &Graph{name: g.name}
	if relabel && n > 0 {
		cg.perm, cg.inv = degreeOrder(g)
	}
	offsets := make([]int32, n+1)
	coff := make([]uint32, n+1)
	// Seed capacity at ~1.25 B per directed entry; typical encodings land
	// near there after relabeling, and append growth covers the rest.
	cadj := make([]byte, 0, len(g.adj)+len(g.adj)/4)
	var scratch []int32
	var maxDeg int32
	for rid := 0; rid < n; rid++ {
		ov := rid
		if cg.inv != nil {
			ov = int(cg.inv[rid])
		}
		src := g.adj[g.offsets[ov]:g.offsets[ov+1]]
		neigh := src
		if cg.perm != nil {
			if cap(scratch) < len(src) {
				scratch = make([]int32, len(src))
			}
			scratch = scratch[:len(src)]
			for i, w := range src {
				scratch[i] = cg.perm[w]
			}
			slices.Sort(scratch)
			neigh = scratch
		}
		deg := int32(len(neigh))
		if deg > maxDeg {
			maxDeg = deg
		}
		offsets[rid+1] = offsets[rid] + deg
		cadj = appendAdj(cadj, int32(rid), neigh)
		if len(cadj) > math.MaxUint32 {
			return nil, fmt.Errorf("graph: compressed adjacency exceeds 4 GiB (%d directed entries)", len(g.adj))
		}
		coff[rid+1] = uint32(len(cadj))
	}
	cg.offsets = offsets
	cg.cadj = slices.Clip(cadj)
	cg.coff = coff
	cg.maxDeg = maxDeg
	return cg, nil
}

// degreeOrder computes the degree-descending counting-sort permutation:
// perm[orig] = storage id, inv[storage id] = orig. Ties break on ascending
// original id, keeping the relabeling a stable, deterministic function of
// the graph.
func degreeOrder(g *Graph) (perm, inv []int32) {
	n := g.N()
	maxd := 0
	for v := 0; v < n; v++ {
		if d := g.Degree(v); d > maxd {
			maxd = d
		}
	}
	// Bucket by maxd-degree so ascending bucket order is descending degree;
	// filling in ascending original id keeps the sort stable.
	count := make([]int32, maxd+2)
	for v := 0; v < n; v++ {
		count[maxd-g.Degree(v)+1]++
	}
	for i := 1; i < len(count); i++ {
		count[i] += count[i-1]
	}
	perm = make([]int32, n)
	inv = make([]int32, n)
	for v := 0; v < n; v++ {
		b := maxd - g.Degree(v)
		rid := count[b]
		count[b]++
		perm[v] = rid
		inv[rid] = int32(v)
	}
	return perm, inv
}

// ridOf maps an original id to its storage id.
func (g *Graph) ridOf(v int) int32 {
	if g.perm != nil {
		return g.perm[v]
	}
	return int32(v)
}

// origOf maps a storage id back to its original id.
func (g *Graph) origOf(r int32) int32 {
	if g.inv != nil {
		return g.inv[r]
	}
	return r
}

// degRID returns the degree of a storage id (identical in both id spaces —
// relabeling permutes vertices, not edges).
func (g *Graph) degRID(r int32) int32 { return g.offsets[r+1] - g.offsets[r] }

// decodeRID decodes storage id r's neighbor list (in storage ids, strictly
// ascending) into dst, which must have capacity >= MaxDegree.
func (g *Graph) decodeRID(r int32, dst []int32) []int32 {
	return decodeAdjInto(g.cadj[g.coff[r]:g.coff[r+1]], r, int(g.degRID(r)), dst)
}

// MaxDegree returns the graph's maximum degree. For compressed graphs it is
// precomputed (kernels size their decode scratch with it); for flat graphs
// it is an O(N) scan.
func (g *Graph) MaxDegree() int {
	if g.cadj != nil {
		return int(g.maxDeg)
	}
	maxd := 0
	for v := 0; v < g.N(); v++ {
		if d := g.Degree(v); d > maxd {
			maxd = d
		}
	}
	return maxd
}

// neighborsOrigInto decodes the neighbor list of original-id vertex v into
// buf (grown as needed), in ascending original ids. It is the compressed
// slow path behind Neighbors/Edges/Validate.
func (g *Graph) neighborsOrigInto(v int, buf []int32) []int32 {
	r := g.ridOf(v)
	deg := int(g.degRID(r))
	if cap(buf) < deg {
		buf = make([]int32, deg)
	}
	buf = g.decodeRID(r, buf[:deg])
	if g.inv != nil {
		for i, w := range buf {
			buf[i] = g.inv[w]
		}
		slices.Sort(buf)
	}
	return buf
}
