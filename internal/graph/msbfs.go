package graph

import (
	"fmt"
	"math/bits"
	"sync"

	"mtreescale/internal/arena"
)

// This file implements the multi-source BFS kernel (MS-BFS, in the style of
// Then et al., "The More the Merrier: Efficient Multi-Source Graph
// Traversal", VLDB 2015): up to 64 sources traverse the graph together, one
// uint64 bit lane per source. Each node carries three lane masks — seen
// (lanes that have discovered it), visit (lanes for which it is on the
// current frontier) and visitNext — so one adjacency scan of a shared
// frontier node advances every lane at once. On the low-diameter topologies
// the paper measures, the per-lane BFS levels concentrate on a few middle
// distances, the lane frontiers overlap almost completely, and the kernel
// touches each edge a small constant number of times instead of once per
// source.
//
// Determinism and canonical parents: the frontier is a bitset iterated in
// ascending node order, so for every lane the first frontier node to
// discover w is the lowest-index previous-level neighbor — exactly the
// canonical parent rule of the serial and direction-optimizing kernels.
// Batch results are therefore byte-identical (Dist and Parent) to per-source
// BFS, which the measurement engines' batch-on/off invariant rests on.

// msbfsLanes is the lane width of one traversal: one bit per source in a
// uint64 mask.
const msbfsLanes = 64

// SPTBatch holds the shortest-path trees of a batch of sources as dense
// lane-major slabs: lane i's distance row is dist[i*n : (i+1)*n], likewise
// parents. Rows alias the slab — consumers that only read Dist/Parent (tree
// counters, reachability histograms, all-pairs matrices) use them in place
// via Lane/DistRow, while Materialize deep-copies one lane into a standalone
// SPT for cache insertion.
type SPTBatch struct {
	// Sources lists the batch's sources; lane i belongs to Sources[i].
	Sources []int
	n       int
	dist    []int32
	parent  []int32
	sc      msbfsScratch
}

// msbfsScratch is the kernel's reusable per-traversal state: per-node lane
// masks plus two frontier-membership bitsets (one bit per node), and — for
// compressed graphs — the adjacency decode buffer. All of it, plus the
// owning batch's dist/parent slabs, comes from one slab arena, so sweeping
// graphs of different sizes recycles buffers instead of churning the GC.
type msbfsScratch struct {
	ar                     *arena.Arena
	seen, visit, visitNext []uint64
	front, nextFront       []uint64
	dec                    []int32
}

// grow sizes the scratch for an n-node traversal with maxDeg-wide decode
// scratch (0 for the flat layout, which decodes nothing). visit/visitNext
// must be all-zero between traversals — the kernels clear them incrementally
// — so freshly slabbed (dirty) arena memory is zeroed here; seen and the
// frontier bitsets are zeroed by the kernels at the start of every group.
func (sc *msbfsScratch) grow(n, words, maxDeg int) {
	if sc.ar == nil {
		sc.ar = arena.New()
	}
	if cap(sc.seen) < n {
		sc.seen = sc.ar.GrowUint64(sc.seen, n)
		sc.visit = sc.ar.GrowUint64(sc.visit, n)
		sc.visitNext = sc.ar.GrowUint64(sc.visitNext, n)
		// Zero the full capacity, not just [:n]: a later traversal may
		// reslice the same slab longer without passing through this branch.
		clear(sc.visit[:cap(sc.visit)])
		clear(sc.visitNext[:cap(sc.visitNext)])
	} else {
		sc.seen = sc.seen[:n]
		sc.visit = sc.visit[:n]
		sc.visitNext = sc.visitNext[:n]
	}
	if cap(sc.front) < words {
		sc.front = sc.ar.GrowUint64(sc.front, words)
		sc.nextFront = sc.ar.GrowUint64(sc.nextFront, words)
	} else {
		sc.front = sc.front[:words]
		sc.nextFront = sc.nextFront[:words]
	}
	sc.dec = sc.ar.GrowInt32(sc.dec, maxDeg)
}

// sptBatchPool recycles batch slabs so the measurement engines' hot loops
// allocate nothing once warm.
var sptBatchPool = sync.Pool{New: func() any { return new(SPTBatch) }}

// AcquireSPTBatch returns a pooled batch for use with BatchSPTsInto. Release
// it with ReleaseSPTBatch when no lane view derived from it is referenced
// anymore.
func AcquireSPTBatch() *SPTBatch { return sptBatchPool.Get().(*SPTBatch) }

// ReleaseSPTBatch returns a batch to the pool. The caller must not use the
// batch — or any SPT view aliasing its slabs — afterwards.
func ReleaseSPTBatch(b *SPTBatch) {
	if b != nil {
		sptBatchPool.Put(b)
	}
}

// BatchSPTs computes the shortest-path trees of all the given sources
// through the multi-source kernel, internally grouping them into
// 64-lane traversals. Duplicate sources are allowed (each occupies its own
// lane).
func (g *Graph) BatchSPTs(sources []int) (*SPTBatch, error) {
	b := new(SPTBatch)
	if err := g.BatchSPTsInto(sources, b); err != nil {
		return nil, err
	}
	return b, nil
}

// BatchSPTsInto is the allocation-reusing variant of BatchSPTs: it fills b,
// growing its slabs only when the (sources × nodes) footprint exceeds the
// previous use. b must not be shared across goroutines while being filled,
// and must stay alive while any lane view of it is in use.
func (g *Graph) BatchSPTsInto(sources []int, b *SPTBatch) error {
	n := g.N()
	if len(sources) == 0 {
		return fmt.Errorf("graph: batch BFS needs at least one source")
	}
	for _, s := range sources {
		if s < 0 || s >= n {
			return fmt.Errorf("graph: BFS source %d out of range [0,%d)", s, n)
		}
	}
	b.Sources = append(b.Sources[:0], sources...)
	b.n = n
	total := len(sources) * n
	if b.sc.ar == nil {
		b.sc.ar = arena.New()
	}
	// The dist/parent slabs come from the batch's arena: resizing across
	// graph scales recycles slabs instead of allocating afresh. Kernels
	// overwrite every element, so dirty recycled memory is fine.
	b.dist = b.sc.ar.GrowInt32(b.dist, total)
	b.parent = b.sc.ar.GrowInt32(b.parent, total)
	for base := 0; base < len(sources); base += msbfsLanes {
		end := base + msbfsLanes
		if end > len(sources) {
			end = len(sources)
		}
		if g.cadj != nil {
			g.cmsbfsGroup(sources[base:end], b.dist[base*n:end*n], b.parent[base*n:end*n], &b.sc)
		} else {
			g.msbfsGroup(sources[base:end], b.dist[base*n:end*n], b.parent[base*n:end*n], &b.sc)
		}
	}
	return nil
}

// Lanes returns the number of trees in the batch.
func (b *SPTBatch) Lanes() int { return len(b.Sources) }

// DistRow returns lane i's distance array, aliasing the slab: DistRow(i)[v]
// is the hop count from Sources[i] to v, or Unreachable.
func (b *SPTBatch) DistRow(i int) []int32 { return b.dist[i*b.n : (i+1)*b.n] }

// ParentRow returns lane i's canonical parent array, aliasing the slab.
func (b *SPTBatch) ParentRow(i int) []int32 { return b.parent[i*b.n : (i+1)*b.n] }

// Lane fills t with a view of lane i: Parent and Dist alias the batch slab
// (valid only until the batch is refilled or released) and Order is nil.
// Views serve consumers that never read Order — the tree counters and
// distance reads of the measurement engines; use Materialize where a full,
// standalone SPT is required.
func (b *SPTBatch) Lane(i int, t *SPT) {
	t.Source = b.Sources[i]
	t.Parent = b.ParentRow(i)
	t.Dist = b.DistRow(i)
	t.Order = nil
}

// Materialize deep-copies lane i into a standalone SPT, building Order by
// counting sort over distances (nodes at equal distance appear in index
// order). The result owns its memory and satisfies every SPT invariant, so
// it is safe to insert into an SPTCache.
func (b *SPTBatch) Materialize(i int) *SPT {
	dist := b.DistRow(i)
	t := &SPT{
		Source: b.Sources[i],
		Parent: append([]int32(nil), b.ParentRow(i)...),
		Dist:   append([]int32(nil), dist...),
	}
	depth := int32(0)
	reach := 0
	for _, d := range dist {
		if d != Unreachable {
			reach++
			if d > depth {
				depth = d
			}
		}
	}
	// Counting sort by distance: offsets[d] = first Order slot of level d.
	counts := make([]int32, depth+2)
	for _, d := range dist {
		if d != Unreachable {
			counts[d+1]++
		}
	}
	for d := int32(1); d < int32(len(counts)); d++ {
		counts[d] += counts[d-1]
	}
	t.Order = make([]int32, reach)
	for v, d := range dist {
		if d != Unreachable {
			t.Order[counts[d]] = int32(v)
			counts[d]++
		}
	}
	return t
}

// msbfsGroup runs one ≤64-lane traversal, writing lane-major dist/parent
// rows for the group's sources.
func (g *Graph) msbfsGroup(group []int, dist, parent []int32, sc *msbfsScratch) {
	n := g.N()
	words := (n + 63) / 64
	sc.grow(n, words, 0)
	seen := sc.seen[:n]
	visit := sc.visit[:n]
	visitNext := sc.visitNext[:n]
	front := sc.front[:words]
	nextFront := sc.nextFront[:words]
	for i := range seen {
		seen[i] = 0
	}
	for i := range front {
		front[i] = 0
		nextFront[i] = 0
	}
	// visit and visitNext carry lane masks only for current/next frontier
	// nodes and are cleared incrementally, so they start and finish
	// all-zero.
	for i := range dist {
		dist[i] = Unreachable
		parent[i] = Unreachable
	}
	for i, s := range group {
		bit := uint64(1) << uint(i)
		visit[s] |= bit
		seen[s] |= bit
		front[s>>6] |= 1 << (uint(s) & 63)
		dist[i*n+s] = 0
		parent[i*n+s] = int32(s)
	}
	for level, more := int32(1), true; more; level++ {
		more = false
		// Iterating the frontier bitset word by word scans nodes in
		// ascending index order: the first discoverer of w in any lane is
		// its lowest-index previous-level neighbor (the canonical parent),
		// with no per-level sort.
		for wi, word := range front {
			for ; word != 0; word &= word - 1 {
				v := wi<<6 + bits.TrailingZeros64(word)
				mv := visit[v]
				visit[v] = 0
				for _, w := range g.Neighbors(v) {
					d := mv &^ seen[w]
					if d == 0 {
						continue
					}
					visitNext[w] |= d
					seen[w] |= d
					nextFront[w>>6] |= 1 << (uint(w) & 63)
					for ; d != 0; d &= d - 1 {
						i := bits.TrailingZeros64(d)
						dist[i*n+int(w)] = level
						parent[i*n+int(w)] = int32(v)
					}
				}
			}
		}
		// Swap frontiers: promote visitNext masks, clear the consumed
		// bookkeeping for the next level.
		for wi, word := range nextFront {
			if word != 0 {
				more = true
			}
			for ; word != 0; word &= word - 1 {
				w := wi<<6 + bits.TrailingZeros64(word)
				visit[w] = visitNext[w]
				visitNext[w] = 0
			}
			front[wi] = nextFront[wi]
			nextFront[wi] = 0
		}
	}
}
