package graph

import (
	"fmt"

	"mtreescale/internal/rng"
)

// Metrics summarizes a topology the way the paper's Table 1 does, plus a few
// extra diagnostics.
type Metrics struct {
	Name       string
	Nodes      int
	Links      int
	AvgDegree  float64
	MaxDegree  int
	Components int
	// AvgPathLen is the mean shortest-path hop count between the sampled
	// source set and all other nodes (the paper's ū).
	AvgPathLen float64
	// Diameter is the maximum eccentricity observed over the sampled
	// sources (a lower bound on the true diameter for large graphs).
	Diameter int
}

// ComputeMetrics measures g. For graphs with at most exactSourceLimit nodes
// every node is used as a BFS source (exact values); larger graphs sample
// sampleSources sources deterministically from seed.
func ComputeMetrics(g *Graph, sampleSources int, seed int64) Metrics {
	const exactSourceLimit = 512
	m := Metrics{
		Name:      g.Name(),
		Nodes:     g.N(),
		Links:     g.M(),
		AvgDegree: g.AvgDegree(),
	}
	for v := 0; v < g.N(); v++ {
		if d := g.Degree(v); d > m.MaxDegree {
			m.MaxDegree = d
		}
	}
	_, m.Components = g.Components()
	if g.N() == 0 {
		return m
	}

	var sources []int
	if g.N() <= exactSourceLimit || sampleSources <= 0 || sampleSources >= g.N() {
		sources = make([]int, g.N())
		for i := range sources {
			sources[i] = i
		}
	} else {
		r := rng.New(seed)
		seen := make(map[int]bool, sampleSources)
		for len(seen) < sampleSources {
			seen[r.Intn(g.N())] = true
		}
		for v := range seen {
			sources = append(sources, v)
		}
	}

	var distSum float64
	var distN int
	var t SPT
	for _, s := range sources {
		if err := g.BFSInto(s, &t); err != nil {
			continue
		}
		for _, v := range t.Order[1:] {
			distSum += float64(t.Dist[v])
			distN++
		}
		if d := t.Depth(); d > m.Diameter {
			m.Diameter = d
		}
	}
	if distN > 0 {
		m.AvgPathLen = distSum / float64(distN)
	}
	return m
}

// String renders a Table 1 style row.
func (m Metrics) String() string {
	return fmt.Sprintf("%-10s nodes=%-6d links=%-6d degavg=%-5.2f pathavg=%-6.2f diam=%d",
		m.Name, m.Nodes, m.Links, m.AvgDegree, m.AvgPathLen, m.Diameter)
}

// DegreeHistogram returns counts[d] = number of nodes with degree d.
func (g *Graph) DegreeHistogram() []int {
	maxD := 0
	for v := 0; v < g.N(); v++ {
		if d := g.Degree(v); d > maxD {
			maxD = d
		}
	}
	counts := make([]int, maxD+1)
	for v := 0; v < g.N(); v++ {
		counts[g.Degree(v)]++
	}
	return counts
}
