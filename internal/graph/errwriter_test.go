package graph

import (
	"errors"
	"testing"
)

type errWriter struct{ budget int }

var errFull = errors.New("disk full")

func (w *errWriter) Write(p []byte) (int, error) {
	if w.budget <= 0 {
		return 0, errFull
	}
	if len(p) > w.budget {
		n := w.budget
		w.budget = 0
		return n, errFull
	}
	w.budget -= len(p)
	return len(p), nil
}

func TestWritePropagatesWriteErrors(t *testing.T) {
	g := path(t, 200).WithName("p200") // big enough to overflow bufio's buffer
	if err := Write(&errWriter{budget: 0}, g); err == nil {
		t.Fatal("zero-budget write must error")
	}
	if err := Write(&errWriter{budget: 64}, g); err == nil {
		t.Fatal("tiny-budget write must error")
	}
}

func TestWriteLargeGraphSucceedsWithExactBudget(t *testing.T) {
	// Sanity check on the harness itself: enough budget means no error.
	g := path(t, 10)
	if err := Write(&errWriter{budget: 1 << 16}, g); err != nil {
		t.Fatal(err)
	}
}
