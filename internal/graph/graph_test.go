package graph

import (
	"strings"
	"testing"
	"testing/quick"

	"mtreescale/internal/rng"
)

// path builds the path graph 0-1-2-...-(n-1).
func path(t testing.TB, n int) *Graph {
	t.Helper()
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		if err := b.AddEdge(i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

// cycle builds the n-cycle.
func cycle(t testing.TB, n int) *Graph {
	t.Helper()
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		if err := b.AddEdge(i, (i+1)%n); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

// complete builds K_n.
func complete(t testing.TB, n int) *Graph {
	t.Helper()
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if err := b.AddEdge(i, j); err != nil {
				t.Fatal(err)
			}
		}
	}
	return b.Build()
}

func TestBuilderBasic(t *testing.T) {
	g := path(t, 5)
	if g.N() != 5 || g.M() != 4 {
		t.Fatalf("N=%d M=%d", g.N(), g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderDedup(t *testing.T) {
	b := NewBuilder(3)
	for i := 0; i < 10; i++ {
		_ = b.AddEdge(0, 1)
		_ = b.AddEdge(1, 0) // reverse orientation is the same undirected edge
	}
	_ = b.AddEdge(1, 2)
	g := b.Build()
	if g.M() != 2 {
		t.Fatalf("duplicates not removed: M=%d", g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderSelfLoopDropped(t *testing.T) {
	b := NewBuilder(2)
	_ = b.AddEdge(0, 0)
	_ = b.AddEdge(0, 1)
	g := b.Build()
	if g.M() != 1 {
		t.Fatalf("self-loop kept: M=%d", g.M())
	}
}

func TestBuilderOutOfRange(t *testing.T) {
	b := NewBuilder(2)
	if err := b.AddEdge(0, 2); err == nil {
		t.Fatal("expected range error")
	}
	if err := b.AddEdge(-1, 0); err == nil {
		t.Fatal("expected range error")
	}
}

func TestBuilderGrow(t *testing.T) {
	b := NewBuilder(2)
	b.Grow(5)
	if err := b.AddEdge(0, 4); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	if g.N() != 5 {
		t.Fatalf("N=%d", g.N())
	}
	b.Grow(3) // never shrinks
	if b.N() != 5 {
		t.Fatalf("Grow shrank builder to %d", b.N())
	}
}

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(0).Build()
	if g.N() != 0 || g.M() != 0 || g.AvgDegree() != 0 {
		t.Fatalf("empty graph: N=%d M=%d", g.N(), g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !g.Connected() {
		t.Fatal("empty graph counts as connected")
	}
}

func TestHasEdge(t *testing.T) {
	g := path(t, 4)
	if !g.HasEdge(1, 2) || !g.HasEdge(2, 1) {
		t.Fatal("edge (1,2) missing")
	}
	if g.HasEdge(0, 2) {
		t.Fatal("phantom edge (0,2)")
	}
	if g.HasEdge(-1, 0) || g.HasEdge(0, 99) {
		t.Fatal("out-of-range HasEdge must be false")
	}
}

func TestEdgesEnumeration(t *testing.T) {
	g := complete(t, 5)
	count := 0
	g.Edges(func(u, v int) {
		if u >= v {
			t.Fatalf("edge callback got u=%d >= v=%d", u, v)
		}
		count++
	})
	if count != 10 {
		t.Fatalf("K5 has 10 edges, got %d", count)
	}
}

func TestAvgDegree(t *testing.T) {
	g := cycle(t, 10)
	if g.AvgDegree() != 2 {
		t.Fatalf("cycle degavg = %v", g.AvgDegree())
	}
	k := complete(t, 4)
	if k.AvgDegree() != 3 {
		t.Fatalf("K4 degavg = %v", k.AvgDegree())
	}
}

func TestWithName(t *testing.T) {
	g := path(t, 3)
	h := g.WithName("p3")
	if h.Name() != "p3" || g.Name() != "" {
		t.Fatalf("names: %q %q", g.Name(), h.Name())
	}
	if h.N() != g.N() || h.M() != g.M() {
		t.Fatal("WithName changed structure")
	}
}

func TestStringContainsCounts(t *testing.T) {
	g := path(t, 3).WithName("p3")
	s := g.String()
	if !strings.Contains(s, "p3") || !strings.Contains(s, "N=3") {
		t.Fatalf("String() = %q", s)
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := path(t, 4) // degrees 1,2,2,1
	h := g.DegreeHistogram()
	if len(h) != 3 || h[1] != 2 || h[2] != 2 {
		t.Fatalf("hist = %v", h)
	}
}

// randomGraph builds a connected-ish random graph for property tests.
func randomGraph(seed int64, n, extra int) *Graph {
	r := rng.New(seed)
	b := NewBuilder(n)
	for v := 1; v < n; v++ {
		_ = b.AddEdge(v, r.Intn(v)) // random spanning tree: connected
	}
	for i := 0; i < extra; i++ {
		_ = b.AddEdge(r.Intn(n), r.Intn(n))
	}
	return b.Build()
}

func TestHandshakeLemmaProperty(t *testing.T) {
	// Sum of degrees == 2M for arbitrary random graphs.
	f := func(seed int64, nRaw, extraRaw uint8) bool {
		n := int(nRaw%60) + 2
		g := randomGraph(seed, n, int(extraRaw%100))
		sum := 0
		for v := 0; v < g.N(); v++ {
			sum += g.Degree(v)
		}
		return sum == 2*g.M() && g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildIdempotentUnderDuplication(t *testing.T) {
	// Adding every edge twice produces the same graph as adding it once.
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%40) + 2
		r := rng.New(seed)
		b1 := NewBuilder(n)
		b2 := NewBuilder(n)
		for i := 0; i < 3*n; i++ {
			u, v := r.Intn(n), r.Intn(n)
			_ = b1.AddEdge(u, v)
			_ = b2.AddEdge(u, v)
			_ = b2.AddEdge(v, u)
		}
		g1, g2 := b1.Build(), b2.Build()
		if g1.M() != g2.M() || g1.N() != g2.N() {
			return false
		}
		same := true
		g1.Edges(func(u, v int) {
			if !g2.HasEdge(u, v) {
				same = false
			}
		})
		return same
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
