package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The interchange format is a line-oriented edge list:
//
//	# comment
//	name <topology-name>     (optional)
//	nodes <N>
//	<u> <v>                  (one edge per line, 0-based)
//
// Duplicate edges and self-loops are cleaned on read, matching the paper's
// topology preparation.

// Write serializes g in the edge-list format.
func Write(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if g.Name() != "" {
		if _, err := fmt.Fprintf(bw, "name %s\n", g.Name()); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(bw, "nodes %d\n", g.N()); err != nil {
		return err
	}
	var werr error
	g.Edges(func(u, v int) {
		if werr == nil {
			_, werr = fmt.Fprintf(bw, "%d %d\n", u, v)
		}
	})
	if werr != nil {
		return werr
	}
	return bw.Flush()
}

// Read parses the edge-list format.
func Read(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	var b *Builder
	name := ""
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "name":
			if len(fields) != 2 {
				return nil, fmt.Errorf("graph: line %d: malformed name directive", lineNo)
			}
			name = fields[1]
		case "nodes":
			if len(fields) != 2 {
				return nil, fmt.Errorf("graph: line %d: malformed nodes directive", lineNo)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("graph: line %d: bad node count %q", lineNo, fields[1])
			}
			if b != nil {
				return nil, fmt.Errorf("graph: line %d: duplicate nodes directive", lineNo)
			}
			b = NewBuilder(n)
		default:
			if b == nil {
				return nil, fmt.Errorf("graph: line %d: edge before nodes directive", lineNo)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("graph: line %d: expected `u v`, got %q", lineNo, line)
			}
			u, err1 := strconv.Atoi(fields[0])
			v, err2 := strconv.Atoi(fields[1])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("graph: line %d: bad edge %q", lineNo, line)
			}
			if err := b.AddEdge(u, v); err != nil {
				return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if b == nil {
		return nil, fmt.Errorf("graph: missing nodes directive")
	}
	b.SetName(name)
	return b.Build(), nil
}
