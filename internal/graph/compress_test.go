package graph

import (
	"slices"
	"testing"
	"testing/quick"

	"mtreescale/internal/rng"
)

// --- codec ---

func TestAdjCodecRoundTrip(t *testing.T) {
	cases := []struct {
		v     int32
		neigh []int32
	}{
		{0, nil},
		{5, []int32{6}},
		{5, []int32{0}},
		{0, []int32{1, 2, 3, 4, 5}},
		{100, []int32{0, 50, 99, 101, 150, 1 << 30}},
		{1 << 30, []int32{0, 1<<31 - 1}},
	}
	for _, c := range cases {
		enc := appendAdj(nil, c.v, c.neigh)
		dec := decodeAdjInto(enc, c.v, len(c.neigh), make([]int32, len(c.neigh)))
		if len(c.neigh) == 0 {
			if len(enc) != 0 || len(dec) != 0 {
				t.Fatalf("empty list: enc=%v dec=%v", enc, dec)
			}
			continue
		}
		if !slices.Equal(dec, c.neigh) {
			t.Fatalf("v=%d neigh=%v decoded %v", c.v, c.neigh, dec)
		}
		for _, target := range c.neigh {
			if !scanAdjFor(enc, c.v, len(c.neigh), target) {
				t.Fatalf("scanAdjFor missed %d in %v", target, c.neigh)
			}
		}
		if scanAdjFor(enc, c.v, len(c.neigh), c.v) != slices.Contains(c.neigh, c.v) {
			t.Fatalf("scanAdjFor(v) wrong for %v", c.neigh)
		}
	}
}

func TestAdjCodecRoundTripProperty(t *testing.T) {
	f := func(seed int64, vRaw uint32, degRaw uint8) bool {
		r := rng.New(seed)
		v := int32(vRaw % 1000000)
		deg := int(degRaw % 64)
		set := map[int32]bool{}
		for len(set) < deg {
			w := int32(r.Intn(1000000))
			if w != v {
				set[w] = true
			}
		}
		neigh := make([]int32, 0, deg)
		for w := range set {
			neigh = append(neigh, w)
		}
		slices.Sort(neigh)
		enc := appendAdj(nil, v, neigh)
		dec := decodeAdjInto(enc, v, len(neigh), make([]int32, len(neigh)))
		return slices.Equal(dec, neigh)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// FuzzAdjCodec derives a strictly ascending neighbor list from arbitrary
// fuzz bytes, round-trips it through the varint delta codec, and checks the
// streaming membership scan against the decoded list.
func FuzzAdjCodec(f *testing.F) {
	f.Add(int64(1), []byte{})
	f.Add(int64(2), []byte{1, 2, 3, 250, 0, 0, 9})
	f.Add(int64(-7), []byte{255, 255, 255, 255, 128, 64, 32, 16, 8})
	f.Fuzz(func(t *testing.T, vSeed int64, gaps []byte) {
		v := int32(uint64(vSeed) % (1 << 28))
		neigh := make([]int32, 0, len(gaps))
		cur := int64(0)
		for _, b := range gaps {
			cur += int64(b)<<3 + 1 // gaps >= 1: strictly ascending
			if cur >= 1<<31 {
				break
			}
			neigh = append(neigh, int32(cur))
		}
		enc := appendAdj(nil, v, neigh)
		dec := decodeAdjInto(enc, v, len(neigh), make([]int32, len(neigh)))
		if !slices.Equal(dec, neigh) {
			t.Fatalf("round trip: %v -> %v", neigh, dec)
		}
		for i, w := range neigh {
			if !scanAdjFor(enc, v, len(neigh), w) {
				t.Fatalf("scan missed neighbor %d", w)
			}
			if i > 0 && neigh[i]-neigh[i-1] > 1 && scanAdjFor(enc, v, len(neigh), w-1) {
				t.Fatalf("scan found absent %d", w-1)
			}
		}
	})
}

// --- layout equivalence ---

// compressVariants returns g plus its compressed and compressed+relabeled
// forms, with subtest labels.
func compressVariants(t *testing.T, g *Graph) map[string]*Graph {
	t.Helper()
	cg, err := g.Compress(false)
	if err != nil {
		t.Fatalf("Compress(false): %v", err)
	}
	rg, err := g.Compress(true)
	if err != nil {
		t.Fatalf("Compress(true): %v", err)
	}
	if !cg.Compressed() || cg.Relabeled() {
		t.Fatalf("Compress(false) flags: compressed=%v relabeled=%v", cg.Compressed(), cg.Relabeled())
	}
	if !rg.Compressed() || !rg.Relabeled() {
		t.Fatalf("Compress(true) flags: compressed=%v relabeled=%v", rg.Compressed(), rg.Relabeled())
	}
	return map[string]*Graph{"compressed": cg, "relabeled": rg}
}

func TestCompressPreservesGraphView(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		g := randomGraph(seed, 300, 900)
		for label, cg := range compressVariants(t, g) {
			if cg.N() != g.N() || cg.M() != g.M() {
				t.Fatalf("%s: N/M = %d/%d, want %d/%d", label, cg.N(), cg.M(), g.N(), g.M())
			}
			if err := cg.Validate(); err != nil {
				t.Fatalf("%s: Validate: %v", label, err)
			}
			for v := 0; v < g.N(); v++ {
				if cg.Degree(v) != g.Degree(v) {
					t.Fatalf("%s: Degree(%d) = %d, want %d", label, v, cg.Degree(v), g.Degree(v))
				}
				if !slices.Equal(cg.Neighbors(v), g.Neighbors(v)) {
					t.Fatalf("%s: Neighbors(%d) = %v, want %v", label, v, cg.Neighbors(v), g.Neighbors(v))
				}
			}
			// Edge enumeration order is part of the contract (io.Write
			// byte-identity).
			var pe, ce [][2]int
			g.Edges(func(u, v int) { pe = append(pe, [2]int{u, v}) })
			cg.Edges(func(u, v int) { ce = append(ce, [2]int{u, v}) })
			if !slices.Equal(pe, ce) {
				t.Fatalf("%s: edge enumeration differs", label)
			}
			for _, e := range pe[:min(len(pe), 50)] {
				if !cg.HasEdge(e[0], e[1]) || !cg.HasEdge(e[1], e[0]) {
					t.Fatalf("%s: HasEdge(%v) = false", label, e)
				}
			}
			if cg.HasEdge(-1, 0) || cg.HasEdge(0, g.N()) {
				t.Fatalf("%s: out-of-range HasEdge true", label)
			}
		}
	}
}

func TestCompressIdempotent(t *testing.T) {
	g := randomGraph(3, 50, 80)
	cg, _ := g.Compress(true)
	again, err := cg.Compress(false)
	if err != nil || again != cg {
		t.Fatalf("re-compress: got (%p, %v), want same graph %p", again, err, cg)
	}
}

func TestCompressMemBytesSmaller(t *testing.T) {
	g := randomGraph(9, 5000, 15000)
	cg, _ := g.Compress(false)
	// The compressed form drops the 4 B/entry adjacency for ~1-2 B/entry
	// plus a 4 B/node offset table it shares with the flat form.
	flatAdj := int64(4 * 2 * g.M())
	compAdj := cg.MemBytes() - int64(4*(g.N()+1)) - int64(4*(g.N()+1)) // minus offsets+coff
	if compAdj <= 0 || compAdj >= flatAdj*3/4 {
		t.Fatalf("compressed adjacency %d B not < 3/4 of flat %d B", compAdj, flatAdj)
	}
	if cg.MemBytes() >= g.MemBytes() {
		t.Fatalf("MemBytes: compressed %d >= flat %d", cg.MemBytes(), g.MemBytes())
	}
}

// checkSPTEqual asserts byte-identical Dist and Parent and a valid Order.
func checkSPTEqual(t *testing.T, label string, want, got *SPT) {
	t.Helper()
	if !slices.Equal(want.Dist, got.Dist) {
		t.Fatalf("%s: Dist differs", label)
	}
	if !slices.Equal(want.Parent, got.Parent) {
		t.Fatalf("%s: Parent differs", label)
	}
	if len(got.Order) != len(want.Order) {
		t.Fatalf("%s: Order len %d, want %d", label, len(got.Order), len(want.Order))
	}
	for i := 1; i < len(got.Order); i++ {
		if got.Dist[got.Order[i]] < got.Dist[got.Order[i-1]] {
			t.Fatalf("%s: Order not nondecreasing in distance", label)
		}
	}
	if len(got.Order) > 0 && int(got.Order[0]) != got.Source {
		t.Fatalf("%s: Order[0] = %d, want source %d", label, got.Order[0], got.Source)
	}
}

func testGraphs(t *testing.T) map[string]*Graph {
	t.Helper()
	gs := map[string]*Graph{
		"random":  randomGraph(11, 400, 700),
		"sparse":  randomGraph(12, 500, 100),
		"star":    randomGraph(13, 64, 0),
		"lattice": nil,
	}
	// A lattice-ish graph with long diameter exercises many BFS levels.
	b := NewBuilder(300)
	for v := 0; v < 299; v++ {
		_ = b.AddEdge(v, v+1)
		if v+10 < 300 {
			_ = b.AddEdge(v, v+10)
		}
	}
	gs["lattice"] = b.Build()
	return gs
}

func TestCompressedBFSMatchesFlat(t *testing.T) {
	for name, g := range testGraphs(t) {
		variants := compressVariants(t, g)
		for _, forceSerial := range []bool{false, true} {
			thr := directionOptThreshold
			if forceSerial {
				thr = SetDirectionOptThreshold(1 << 30)
			} else {
				thr = SetDirectionOptThreshold(2)
			}
			for src := 0; src < g.N(); src += 17 {
				want, err := g.BFS(src)
				if err != nil {
					t.Fatal(err)
				}
				for label, cg := range variants {
					got, err := cg.BFS(src)
					if err != nil {
						t.Fatal(err)
					}
					checkSPTEqual(t, name+"/"+label, want, got)
				}
			}
			SetDirectionOptThreshold(thr)
		}
	}
}

func TestCompressedBatchMatchesFlat(t *testing.T) {
	for name, g := range testGraphs(t) {
		// >64 sources exercises multiple lane groups, with duplicates.
		sources := make([]int, 0, 100)
		for i := 0; i < 100; i++ {
			sources = append(sources, (i*37)%g.N())
		}
		want, err := g.BatchSPTs(sources)
		if err != nil {
			t.Fatal(err)
		}
		for label, cg := range compressVariants(t, g) {
			got, err := cg.BatchSPTs(sources)
			if err != nil {
				t.Fatal(err)
			}
			for i := range sources {
				if !slices.Equal(want.DistRow(i), got.DistRow(i)) {
					t.Fatalf("%s/%s: lane %d Dist differs", name, label, i)
				}
				if !slices.Equal(want.ParentRow(i), got.ParentRow(i)) {
					t.Fatalf("%s/%s: lane %d Parent differs", name, label, i)
				}
			}
		}
	}
}

func TestCompressedBatchMatchesSingleSource(t *testing.T) {
	g := randomGraph(21, 600, 1200)
	cg, _ := g.Compress(true)
	sources := []int{0, 5, 5, 599, 301}
	batch, err := cg.BatchSPTs(sources)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range sources {
		want, err := cg.BFS(s)
		if err != nil {
			t.Fatal(err)
		}
		if !slices.Equal(want.Dist, batch.DistRow(i)) {
			t.Fatalf("lane %d: Dist differs from single-source", i)
		}
		if !slices.Equal(want.Parent, batch.ParentRow(i)) {
			t.Fatalf("lane %d: Parent differs from single-source", i)
		}
		mat := batch.Materialize(i)
		checkSPTEqual(t, "materialize", want, mat)
	}
}

func TestDegreeOrderStable(t *testing.T) {
	g := randomGraph(31, 200, 400)
	perm, inv := degreeOrder(g)
	for r := 1; r < len(inv); r++ {
		du, dv := g.Degree(int(inv[r-1])), g.Degree(int(inv[r]))
		if du < dv {
			t.Fatalf("degree order not descending at rank %d", r)
		}
		if du == dv && inv[r-1] >= inv[r] {
			t.Fatalf("degree ties not ascending-original at rank %d", r)
		}
	}
	for v, r := range perm {
		if int(inv[r]) != v {
			t.Fatalf("perm/inv mismatch at %d", v)
		}
	}
}
