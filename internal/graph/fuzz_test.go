package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead checks that the edge-list parser never panics and that anything
// it accepts round-trips through Write into an equivalent graph.
func FuzzRead(f *testing.F) {
	f.Add("nodes 3\n0 1\n1 2\n")
	f.Add("name x\nnodes 2\n0 1\n")
	f.Add("# comment\nnodes 0\n")
	f.Add("nodes 5\n0 0\n0 1\n1 0\n")
	f.Add("nodes -1\n")
	f.Add("nodes 2\n0 99\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := Read(strings.NewReader(input))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails validation: %v", err)
		}
		var buf bytes.Buffer
		if err := Write(&buf, g); err != nil {
			t.Fatalf("write: %v", err)
		}
		h, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-read: %v", err)
		}
		if h.N() != g.N() || h.M() != g.M() {
			t.Fatalf("round trip changed shape: %d/%d vs %d/%d", g.N(), g.M(), h.N(), h.M())
		}
	})
}
