package graph

import "math/bits"

// This file implements MS-BFS over the compressed layout: the same 64-lane
// traversal as msbfs.go, with per-node lane masks indexed by storage id (so
// degree relabeling packs the hot hub masks together) and lane-major
// dist/parent rows indexed by original id — the layout every downstream
// consumer (tree counters, reachability histograms, the SPT cache's
// Materialize) already reads.
//
// Canonical parents under relabeling need one extra step the uncompressed
// kernel gets implicitly from ascending scan order: when a frontier node
// reaches w in lanes where w was already discovered earlier in this same
// level (mask bits in visitNext), the parent becomes the minimum original id
// among the discoverers. The unrelabeled compressed layout skips that branch
// — storage order is original order, so the first discoverer is already
// canonical.

// cmsbfsGroup runs one ≤64-lane traversal over the compressed layout,
// writing lane-major dist/parent rows (original-id indexed) for the group's
// sources. The scratch's lane masks and frontier bitsets are in storage-id
// space.
func (g *Graph) cmsbfsGroup(group []int, dist, parent []int32, sc *msbfsScratch) {
	n := g.N()
	words := (n + 63) / 64
	sc.grow(n, words, int(g.maxDeg))
	seen := sc.seen[:n]
	visit := sc.visit[:n]
	visitNext := sc.visitNext[:n]
	front := sc.front[:words]
	nextFront := sc.nextFront[:words]
	dec := sc.dec
	for i := range seen {
		seen[i] = 0
	}
	for i := range front {
		front[i] = 0
		nextFront[i] = 0
	}
	for i := range dist {
		dist[i] = Unreachable
		parent[i] = Unreachable
	}
	relabeled := g.inv != nil
	for i, s := range group {
		bit := uint64(1) << uint(i)
		rs := g.ridOf(s)
		visit[rs] |= bit
		seen[rs] |= bit
		front[rs>>6] |= 1 << (uint(rs) & 63)
		dist[i*n+s] = 0
		parent[i*n+s] = int32(s)
	}
	for level, more := int32(1), true; more; level++ {
		more = false
		for wi, word := range front {
			for ; word != 0; word &= word - 1 {
				v := int32(wi<<6 + bits.TrailingZeros64(word))
				mv := visit[v]
				visit[v] = 0
				ov := int64(g.origOf(v))
				neigh := g.decodeRID(v, dec)
				for _, w := range neigh {
					if relabeled {
						// Same-level rediscovery: keep the minimum original
						// discoverer per lane.
						if rd := mv & visitNext[w]; rd != 0 {
							owr := int(g.inv[w])
							for ; rd != 0; rd &= rd - 1 {
								i := bits.TrailingZeros64(rd)
								if int32(ov) < parent[i*n+owr] {
									parent[i*n+owr] = int32(ov)
								}
							}
						}
					}
					d := mv &^ seen[w]
					if d == 0 {
						continue
					}
					visitNext[w] |= d
					seen[w] |= d
					nextFront[w>>6] |= 1 << (uint(w) & 63)
					ow := int(g.origOf(w))
					for ; d != 0; d &= d - 1 {
						i := bits.TrailingZeros64(d)
						dist[i*n+ow] = level
						parent[i*n+ow] = int32(ov)
					}
				}
			}
		}
		for wi, word := range nextFront {
			if word != 0 {
				more = true
			}
			for ; word != 0; word &= word - 1 {
				w := wi<<6 + bits.TrailingZeros64(word)
				visit[w] = visitNext[w]
				visitNext[w] = 0
			}
			front[wi] = nextFront[wi]
			nextFront[wi] = 0
		}
	}
}
