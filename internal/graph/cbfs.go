package graph

import (
	"math/bits"
	"sync"

	"mtreescale/internal/arena"
)

// This file implements single-source BFS over the compressed layout
// (compress.go): a level-synchronous kernel with serial and
// direction-optimizing (Beamer α/β) stepping, mirroring bfs.go/hybrid.go.
//
// Traversal state — seen / current-frontier / next-frontier bitsets — lives
// in storage-id space, which is the whole point of degree relabeling: the
// hubs almost every level touches occupy the first cache lines of each
// bitset. Dist/Parent/Order are written directly in original ids through the
// inverse permutation, so consumers never see storage ids.
//
// Canonical parents: the uncompressed kernels get "lowest-index
// previous-level neighbor" for free from ascending scan order. Under
// relabeling, ascending storage order is NOT ascending original order, so
// this kernel makes the rule explicit: top-down steps keep the minimum
// original-id discoverer among same-level rediscoveries, and bottom-up steps
// scan the full adjacency for the minimum original-id frontier neighbor
// (early-exiting on the first hit only when the layout is unrelabeled, where
// storage order is original order). The result is byte-identical Dist and
// Parent to every other kernel in this package.

// cbfsScratch holds one compressed traversal's reusable state. The arena
// recycles the bitsets and decode buffer across graph sizes, so switching
// between a 1M- and a 10M-node graph re-slabs instead of re-allocating.
type cbfsScratch struct {
	ar              *arena.Arena
	seen, cur, next []uint64
	dec             []int32
}

var cbfsScratchPool = sync.Pool{New: func() any { return &cbfsScratch{ar: arena.New()} }}

// grow sizes the scratch for a words-word bitset and maxDeg-wide decode
// buffer, zeroing the bitsets (arena memory is dirty).
func (sc *cbfsScratch) grow(words, maxDeg int) {
	sc.seen = sc.ar.GrowUint64(sc.seen, words)
	sc.cur = sc.ar.GrowUint64(sc.cur, words)
	sc.next = sc.ar.GrowUint64(sc.next, words)
	sc.dec = sc.ar.GrowInt32(sc.dec, maxDeg)
	clear(sc.seen)
	clear(sc.cur)
	clear(sc.next)
}

// compressedBFSInto runs BFS over the compressed layout. The caller
// (BFSInto) has already validated the source, sized and filled
// Parent/Dist with Unreachable, truncated Order, and set t.Source.
// useHybrid enables the direction-optimizing stepping; plain level-
// synchronous top-down otherwise (small graphs, forced-serial tests).
func (g *Graph) compressedBFSInto(source int, t *SPT, useHybrid bool) {
	n := g.N()
	words := (n + 63) / 64
	sc := cbfsScratchPool.Get().(*cbfsScratch)
	defer cbfsScratchPool.Put(sc)
	sc.grow(words, int(g.maxDeg))
	seen, cur, next, dec := sc.seen, sc.cur, sc.next, sc.dec

	rsrc := g.ridOf(source)
	t.Dist[source] = 0
	t.Parent[source] = int32(source)
	t.Order = append(t.Order, int32(source))
	seen[rsrc>>6] |= 1 << (uint(rsrc) & 63)
	cur[rsrc>>6] |= 1 << (uint(rsrc) & 63)

	relabeled := g.inv != nil
	frontier := 1
	frontierEdges := int64(g.degRID(rsrc))
	unexploredEdges := int64(g.offsets[n]) - frontierEdges
	bottomUp := false
	for dist := int32(1); frontier > 0; dist++ {
		if useHybrid {
			if !bottomUp {
				if frontierEdges > unexploredEdges/bfsAlpha {
					bottomUp = true
				}
			} else if int64(frontier) < int64(n)/bfsBeta {
				bottomUp = false
			}
		}
		var nextEdges int64
		nf := 0
		if bottomUp {
			// Bottom-up step: every unvisited storage id decodes its
			// adjacency and looks for a previous-level neighbor. Same-step
			// discoveries land only in seen/next, never in cur, so the step
			// stays level-synchronous regardless of scan order.
			for wi := 0; wi < words; wi++ {
				unv := ^seen[wi]
				if wi == words-1 && n&63 != 0 {
					unv &= (1 << (uint(n) & 63)) - 1
				}
				for unv != 0 {
					v := int32(wi<<6 + bits.TrailingZeros64(unv))
					unv &= unv - 1
					neigh := g.decodeRID(v, dec)
					best := Unreachable
					if !relabeled {
						// Storage order == original order: the first hit in
						// the ascending list is the canonical parent.
						for _, u := range neigh {
							if cur[u>>6]&(1<<(uint(u)&63)) != 0 {
								best = u
								break
							}
						}
					} else {
						for _, u := range neigh {
							if cur[u>>6]&(1<<(uint(u)&63)) != 0 {
								if o := g.inv[u]; best == Unreachable || o < best {
									best = o
								}
							}
						}
					}
					if best == Unreachable {
						continue
					}
					ov := g.origOf(v)
					t.Dist[ov] = dist
					t.Parent[ov] = best
					t.Order = append(t.Order, ov)
					seen[wi] |= 1 << (uint(v) & 63)
					next[v>>6] |= 1 << (uint(v) & 63)
					nextEdges += int64(g.degRID(v))
					nf++
				}
			}
		} else {
			// Top-down step: expand the frontier in ascending storage order.
			// Rediscoveries within the level (seen and next both set) keep
			// the minimum original-id parent; the unrelabeled layout skips
			// that branch because ascending scan order already yields it.
			for wi := 0; wi < words; wi++ {
				f := cur[wi]
				for f != 0 {
					u := int32(wi<<6 + bits.TrailingZeros64(f))
					f &= f - 1
					ou := g.origOf(u)
					neigh := g.decodeRID(u, dec)
					for _, w := range neigh {
						bit := uint64(1) << (uint(w) & 63)
						if seen[w>>6]&bit != 0 {
							if relabeled && next[w>>6]&bit != 0 {
								if ow := g.inv[w]; ou < t.Parent[ow] {
									t.Parent[ow] = ou
								}
							}
							continue
						}
						seen[w>>6] |= bit
						next[w>>6] |= bit
						ow := g.origOf(w)
						t.Dist[ow] = dist
						t.Parent[ow] = ou
						t.Order = append(t.Order, ow)
						nextEdges += int64(g.degRID(w))
						nf++
					}
				}
			}
		}
		for wi := range cur {
			cur[wi] = next[wi]
			next[wi] = 0
		}
		unexploredEdges -= nextEdges
		frontierEdges = nextEdges
		frontier = nf
	}
}
