package graph

import (
	"testing"
	"testing/quick"

	"mtreescale/internal/rng"
)

// hybridSPT runs the direction-optimizing kernel directly, regardless of the
// routing threshold, with the same slice preparation BFSInto performs.
func hybridSPT(t testing.TB, g *Graph, source int) *SPT {
	t.Helper()
	spt := &SPT{
		Source: source,
		Parent: make([]int32, g.N()),
		Dist:   make([]int32, g.N()),
	}
	for i := range spt.Parent {
		spt.Parent[i] = Unreachable
		spt.Dist[i] = Unreachable
	}
	g.hybridBFSInto(source, spt)
	return spt
}

// checkAgainstReference asserts the hybrid kernel's contract on one graph and
// source: Dist identical to the queue BFS, valid parents, Order sorted by
// distance and containing exactly the reachable set.
func checkAgainstReference(t *testing.T, g *Graph, source int) {
	t.Helper()
	want, err := g.BFS(source) // below threshold in tests: queue BFS
	if err != nil {
		t.Fatal(err)
	}
	got := hybridSPT(t, g, source)
	for v := 0; v < g.N(); v++ {
		if got.Dist[v] != want.Dist[v] {
			t.Fatalf("source %d node %d: hybrid dist %d, reference %d",
				source, v, got.Dist[v], want.Dist[v])
		}
	}
	checkParentValidity(t, g, got)
	if len(got.Order) != len(want.Order) {
		t.Fatalf("hybrid reached %d nodes, reference %d", len(got.Order), len(want.Order))
	}
	if got.Order[0] != int32(source) {
		t.Fatalf("order must start at source, got %d", got.Order[0])
	}
	for i := 1; i < len(got.Order); i++ {
		if got.Dist[got.Order[i]] < got.Dist[got.Order[i-1]] {
			t.Fatal("hybrid order not sorted by distance")
		}
	}
}

// checkParentValidity asserts Dist[Parent[v]] == Dist[v]-1 over a real edge
// for every reachable non-source node — the shortest-path-tree invariant the
// satellite tests require.
func checkParentValidity(t *testing.T, g *Graph, spt *SPT) {
	t.Helper()
	for v := 0; v < g.N(); v++ {
		if spt.Dist[v] == Unreachable {
			if spt.Parent[v] != Unreachable {
				t.Fatalf("unreachable node %d has parent %d", v, spt.Parent[v])
			}
			continue
		}
		if v == spt.Source {
			continue
		}
		p := spt.Parent[v]
		if p == Unreachable {
			t.Fatalf("reachable node %d has no parent", v)
		}
		if spt.Dist[p] != spt.Dist[v]-1 {
			t.Fatalf("node %d: Dist[Parent]=%d, want Dist-1=%d", v, spt.Dist[p], spt.Dist[v]-1)
		}
		if !g.HasEdge(v, int(p)) {
			t.Fatalf("parent link (%d,%d) is not an edge", v, p)
		}
	}
}

func TestHybridBFSMatchesReferenceRandom(t *testing.T) {
	f := func(seed int64, nRaw uint8, extraRaw uint8, srcRaw uint8) bool {
		n := int(nRaw%120) + 2
		g := randomGraph(seed, n, int(extraRaw))
		src := int(srcRaw) % n
		want, err := g.BFS(src)
		if err != nil {
			return false
		}
		got := hybridSPT(t, g, src)
		for v := 0; v < n; v++ {
			if got.Dist[v] != want.Dist[v] {
				return false
			}
			if got.Dist[v] != Unreachable && v != src {
				p := got.Parent[v]
				if p == Unreachable || got.Dist[p] != got.Dist[v]-1 || !g.HasEdge(v, int(p)) {
					return false
				}
			}
		}
		return len(got.Order) == len(want.Order)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

func TestHybridBFSStar(t *testing.T) {
	// A star forces a one-level explosion: the classic bottom-up win.
	const leaves = 300
	b := NewBuilder(leaves + 1)
	for v := 1; v <= leaves; v++ {
		_ = b.AddEdge(0, v)
	}
	g := b.Build()
	checkAgainstReference(t, g, 0)
	checkAgainstReference(t, g, 17) // from a leaf: depth 2 through the hub
}

func TestHybridBFSPath(t *testing.T) {
	// A path is the bottom-up worst case; the α heuristic must keep the
	// kernel top-down and still produce the exact distances.
	g := path(t, 500)
	checkAgainstReference(t, g, 0)
	checkAgainstReference(t, g, 250)
}

func TestHybridBFSDisconnected(t *testing.T) {
	b := NewBuilder(200)
	for v := 1; v < 100; v++ {
		_ = b.AddEdge(v-1, v) // component A: path 0..99
	}
	for v := 101; v < 200; v++ {
		_ = b.AddEdge(100, v) // component B: star at 100
	}
	g := b.Build()
	checkAgainstReference(t, g, 0)
	checkAgainstReference(t, g, 100)
	spt := hybridSPT(t, g, 100)
	if spt.Dist[0] != Unreachable || spt.Parent[0] != Unreachable {
		t.Fatal("other component must stay unreachable")
	}
	if spt.Reachable() != 100 {
		t.Fatalf("reachable = %d, want 100", spt.Reachable())
	}
}

func TestHybridBFSSingleNodeAndDense(t *testing.T) {
	checkAgainstReference(t, NewBuilder(1).Build(), 0)
	// Near-complete graph: diameter 1-2, bottom-up from the first level.
	const n = 80
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v += 1 + u%3 {
			_ = b.AddEdge(u, v)
		}
	}
	g := b.Build()
	for src := 0; src < n; src += 13 {
		checkAgainstReference(t, g, src)
	}
}

func TestHybridBFSLowestIndexParentInBottomUp(t *testing.T) {
	// Two routes of equal length: bottom-up must adopt the lowest-index
	// parent. Star-of-stars: hub 0 — mids 1,2 — leaf 3 attached to both
	// mids. From 0, the leaf is at distance 2 with candidate parents {1,2}.
	b := NewBuilder(4)
	_ = b.AddEdge(0, 1)
	_ = b.AddEdge(0, 2)
	_ = b.AddEdge(1, 3)
	_ = b.AddEdge(2, 3)
	g := b.Build()
	spt := hybridSPT(t, g, 0)
	if spt.Parent[3] != 1 {
		t.Fatalf("bottom-up tie must pick lowest-index parent 1, got %d", spt.Parent[3])
	}
}

func TestHybridBFSDeterministicAcrossRuns(t *testing.T) {
	g := randomGraph(42, 5000, 15000)
	first := hybridSPT(t, g, 123)
	for run := 0; run < 3; run++ {
		again := hybridSPT(t, g, 123)
		for v := 0; v < g.N(); v++ {
			if first.Dist[v] != again.Dist[v] || first.Parent[v] != again.Parent[v] {
				t.Fatalf("run %d: node %d diverged (dist %d/%d parent %d/%d)",
					run, v, first.Dist[v], again.Dist[v], first.Parent[v], again.Parent[v])
			}
		}
		for i := range first.Order {
			if first.Order[i] != again.Order[i] {
				t.Fatalf("run %d: order diverged at %d", run, i)
			}
		}
	}
}

func TestBFSIntoRoutesToHybridAboveThreshold(t *testing.T) {
	old := SetDirectionOptThreshold(64)
	defer SetDirectionOptThreshold(old)
	g := randomGraph(7, 300, 900)
	var routed SPT
	if err := g.BFSInto(5, &routed); err != nil {
		t.Fatal(err)
	}
	direct := hybridSPT(t, g, 5)
	for v := 0; v < g.N(); v++ {
		if routed.Dist[v] != direct.Dist[v] || routed.Parent[v] != direct.Parent[v] {
			t.Fatalf("BFSInto above threshold must run the hybrid kernel (node %d)", v)
		}
	}
	// And below the threshold it must match the queue reference exactly,
	// parents included.
	SetDirectionOptThreshold(1 << 30)
	var serial SPT
	if err := g.BFSInto(5, &serial); err != nil {
		t.Fatal(err)
	}
	ref := &SPT{Source: 5, Parent: make([]int32, g.N()), Dist: make([]int32, g.N())}
	for i := range ref.Parent {
		ref.Parent[i] = Unreachable
		ref.Dist[i] = Unreachable
	}
	g.serialBFSInto(5, ref)
	for v := 0; v < g.N(); v++ {
		if serial.Dist[v] != ref.Dist[v] || serial.Parent[v] != ref.Parent[v] {
			t.Fatalf("BFSInto below threshold must be the queue BFS (node %d)", v)
		}
	}
}

func TestHybridBFSHugeLevels(t *testing.T) {
	// Above-threshold end-to-end: tree sizes and distances on a graph big
	// enough that BFSInto actually routes to the hybrid kernel by default.
	g := randomGraph(9, 3000, 9000)
	if g.N() < directionOptThreshold {
		t.Fatalf("test graph too small to exercise routing (N=%d)", g.N())
	}
	var spt SPT
	if err := g.BFSInto(0, &spt); err != nil {
		t.Fatal(err)
	}
	ref, err := func() (*SPT, error) {
		old := SetDirectionOptThreshold(1 << 30)
		defer SetDirectionOptThreshold(old)
		return g.BFS(0)
	}()
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		if spt.Dist[v] != ref.Dist[v] {
			t.Fatalf("node %d: hybrid dist %d, reference %d", v, spt.Dist[v], ref.Dist[v])
		}
	}
	checkParentValidity(t, g, &spt)
}

// denseRandomGraph builds the dense/low-diameter benchmark workload: a
// spanning tree plus enough extra edges for an average degree near 2*extra/n.
func denseRandomGraph(seed int64, n, extra int) *Graph {
	return randomGraph(seed, n, extra)
}

// BenchmarkBFS50kSerial pins the reference queue BFS on the exact
// BenchmarkBFS50k workload — the ablation pair for the ≥1.5× kernel claim.
func BenchmarkBFS50kSerial(b *testing.B) {
	g := randomGraph(1, 50000, 100000)
	spt := &SPT{Parent: make([]int32, g.N()), Dist: make([]int32, g.N())}
	r := rng.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := r.Intn(g.N())
		spt.Parent = spt.Parent[:g.N()]
		spt.Dist = spt.Dist[:g.N()]
		spt.Order = spt.Order[:0]
		spt.Source = src
		for j := range spt.Parent {
			spt.Parent[j] = Unreachable
			spt.Dist[j] = Unreachable
		}
		g.serialBFSInto(src, spt)
	}
}

// BenchmarkBFS50kDense measures the hybrid kernel on a dense low-diameter
// graph (50k nodes, ~500k edges): the direction-optimizing sweet spot.
func BenchmarkBFS50kDense(b *testing.B) {
	g := denseRandomGraph(3, 50000, 450000)
	var spt SPT
	r := rng.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := g.BFSInto(r.Intn(g.N()), &spt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBFS50kDenseSerial is the queue-BFS ablation of the dense workload.
func BenchmarkBFS50kDenseSerial(b *testing.B) {
	g := denseRandomGraph(3, 50000, 450000)
	old := SetDirectionOptThreshold(1 << 30)
	defer SetDirectionOptThreshold(old)
	var spt SPT
	r := rng.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := g.BFSInto(r.Intn(g.N()), &spt); err != nil {
			b.Fatal(err)
		}
	}
}
