package graph

import (
	"errors"
	"slices"
	"testing"

	"mtreescale/internal/rng"
)

// randomEdges draws a reproducible edge multiset with duplicates and
// self-loops mixed in.
func randomEdges(seed int64, n, m int) [][2]int32 {
	r := rng.New(seed)
	edges := make([][2]int32, 0, m)
	for i := 0; i < m; i++ {
		u, v := int32(r.Intn(n)), int32(r.Intn(n))
		edges = append(edges, [2]int32{u, v})
		if i%7 == 0 {
			edges = append(edges, [2]int32{u, v}) // duplicate
		}
		if i%11 == 0 {
			edges = append(edges, [2]int32{u, u}) // self-loop
		}
	}
	return edges
}

func TestBuildStreamedMatchesBuilder(t *testing.T) {
	for _, seed := range []int64{1, 2, 77} {
		n := 200
		edges := randomEdges(seed, n, 600)
		b := NewBuilder(n)
		for _, e := range edges {
			_ = b.AddEdge(int(e[0]), int(e[1]))
		}
		want := b.Build()
		got, err := BuildStreamed(n, "streamed", func(emit func(u, v int32)) error {
			for _, e := range edges {
				emit(e[0], e[1])
			}
			return nil
		})
		if err != nil {
			t.Fatalf("BuildStreamed: %v", err)
		}
		if got.N() != want.N() || got.M() != want.M() {
			t.Fatalf("N/M = %d/%d, want %d/%d", got.N(), got.M(), want.N(), want.M())
		}
		for v := 0; v < n; v++ {
			if !slices.Equal(got.Neighbors(v), want.Neighbors(v)) {
				t.Fatalf("Neighbors(%d) differ: %v vs %v", v, got.Neighbors(v), want.Neighbors(v))
			}
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("Validate: %v", err)
		}
	}
}

func TestBuildStreamedEmpty(t *testing.T) {
	g, err := BuildStreamed(5, "empty", func(emit func(u, v int32)) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 5 || g.M() != 0 {
		t.Fatalf("N/M = %d/%d, want 5/0", g.N(), g.M())
	}
}

func TestBuildStreamedErrors(t *testing.T) {
	if _, err := BuildStreamed(3, "", nil); err == nil {
		t.Fatal("nil stream accepted")
	}
	// Out-of-range endpoint.
	_, err := BuildStreamed(3, "", func(emit func(u, v int32)) error {
		emit(0, 3)
		return nil
	})
	if err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	// Stream error propagates.
	boom := errors.New("boom")
	if _, err := BuildStreamed(3, "", func(emit func(u, v int32)) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("stream error lost: %v", err)
	}
	// Nondeterministic stream: different edges per pass.
	pass := 0
	_, err = BuildStreamed(4, "", func(emit func(u, v int32)) error {
		pass++
		if pass == 1 {
			emit(0, 1)
			emit(2, 3)
		} else {
			emit(0, 1)
			emit(0, 1) // same count per endpoint 0/1, missing 2/3
		}
		return nil
	})
	if err == nil {
		t.Fatal("nondeterministic stream accepted")
	}
}

func TestBuildStreamedDeterministic(t *testing.T) {
	stream := func(emit func(u, v int32)) error {
		r := rng.New(99)
		for i := 0; i < 500; i++ {
			emit(int32(r.Intn(150)), int32(r.Intn(150)))
		}
		return nil
	}
	a, err := BuildStreamed(150, "a", stream)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildStreamed(150, "b", stream)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 150; v++ {
		if !slices.Equal(a.Neighbors(v), b.Neighbors(v)) {
			t.Fatalf("rebuild differs at %d", v)
		}
	}
}
