package graph

import (
	"math/bits"
	"sync"
)

// This file implements the direction-optimizing BFS kernel (Beamer, Asanović,
// Patterson, SC'12): a level-synchronous traversal that runs conventional
// top-down steps while the frontier is small and switches to bottom-up steps
// — every *unvisited* node scans its own adjacency for a parent on the
// frontier — once the frontier carries more edges than the unexplored
// remainder. On the low-diameter topologies the paper measures (transit-stub,
// tiers, power-law), one or two middle BFS levels contain almost every node,
// and the bottom-up pass touches each of them through at most a handful of
// adjacency probes instead of scanning every frontier edge.
//
// Determinism: top-down steps scan the whole frontier and keep the
// lowest-index previous-level neighbor as each discovered node's parent;
// bottom-up steps scan unvisited nodes in index order and adopt the
// lowest-index parent on the previous level (CSR adjacency is sorted, so the
// first hit is the minimum). Dist arrays are identical to the reference
// queue BFS by construction (level-synchronous expansion visits exactly the
// distance-d set at step d), and Parent arrays are the same canonical
// lowest-index parents every kernel in this package produces — so the SPT is
// a pure function of (graph, source) independent of kernel routing.

const (
	// bfsAlpha triggers the top-down → bottom-up switch: the frontier's
	// incident edge count must exceed 1/bfsAlpha of the edges incident to
	// still-unexplored nodes (Beamer's α heuristic).
	bfsAlpha = 14
	// bfsBeta triggers the bottom-up → top-down switch back: the frontier
	// has shrunk below N/bfsBeta nodes (Beamer's β heuristic).
	bfsBeta = 24
)

// directionOptThreshold is the node count above which BFSInto routes to the
// direction-optimizing kernel. Below it the plain queue BFS wins: the bitset
// bookkeeping costs more than it saves on graphs that fit in L1/L2.
var directionOptThreshold = 2048

// SetDirectionOptThreshold overrides the node count at which BFSInto switches
// to the direction-optimizing kernel and returns the previous value. It is a
// tuning knob for benchmarks and a forcing lever for tests; production code
// should leave the default. Not safe to call concurrently with running BFS.
func SetDirectionOptThreshold(n int) int {
	old := directionOptThreshold
	directionOptThreshold = n
	return old
}

// bfsScratch holds the kernel's bitsets between runs so steady-state
// traversal allocates nothing.
type bfsScratch struct {
	visited []uint64
	front   []uint64 // previous-level membership for bottom-up probes
}

var bfsScratchPool = sync.Pool{New: func() any { return new(bfsScratch) }}

// hybridBFSInto runs the direction-optimizing kernel. The caller (BFSInto)
// has already validated the source, sized Parent/Dist to N, filled both with
// Unreachable, truncated Order, and set t.Source.
func (g *Graph) hybridBFSInto(source int, t *SPT) {
	n := g.N()
	words := (n + 63) / 64
	sc := bfsScratchPool.Get().(*bfsScratch)
	if cap(sc.visited) < words {
		sc.visited = make([]uint64, words)
		sc.front = make([]uint64, words)
	}
	visited := sc.visited[:words]
	front := sc.front[:words]
	for i := range visited {
		visited[i] = 0
	}
	defer bfsScratchPool.Put(sc)

	t.Dist[source] = 0
	t.Parent[source] = int32(source)
	t.Order = append(t.Order, int32(source))
	visited[source>>6] |= 1 << (uint(source) & 63)

	// t.Order doubles as the frontier store: the nodes at distance d are
	// exactly Order[levelStart:levelEnd], in the order the kernel produced
	// them.
	levelStart, levelEnd := 0, 1
	frontierEdges := int64(g.Degree(source))
	unexploredEdges := int64(len(g.adj)) - frontierEdges
	bottomUp := false
	for dist := int32(1); levelStart < levelEnd; dist++ {
		if !bottomUp {
			if frontierEdges > unexploredEdges/bfsAlpha {
				bottomUp = true
			}
		} else if int64(levelEnd-levelStart) < int64(n)/bfsBeta {
			bottomUp = false
		}
		var nextEdges int64
		if bottomUp {
			// Bottom-up step: every unvisited node v probes its sorted
			// adjacency for a neighbor on the previous level. Membership is
			// a dense bitset (built from the level's Order slice), so each
			// probe touches one bit instead of a 4-byte Dist word. Nodes
			// discovered earlier in this same step are only in `visited`,
			// never in `front`, so the step stays level-synchronous
			// regardless of scan order, and the first hit in the sorted
			// adjacency is the lowest-index parent.
			for i := range front {
				front[i] = 0
			}
			for _, u := range t.Order[levelStart:levelEnd] {
				front[u>>6] |= 1 << (uint(u) & 63)
			}
			for wi := 0; wi < words; wi++ {
				unv := ^visited[wi]
				if wi == words-1 && n&63 != 0 {
					unv &= (1 << (uint(n) & 63)) - 1
				}
				for unv != 0 {
					v := wi<<6 + bits.TrailingZeros64(unv)
					unv &= unv - 1
					for _, u := range g.Neighbors(v) {
						if front[u>>6]&(1<<(uint(u)&63)) != 0 {
							t.Dist[v] = dist
							t.Parent[v] = u
							visited[wi] |= 1 << (uint(v) & 63)
							t.Order = append(t.Order, int32(v))
							nextEdges += int64(g.Degree(v))
							break
						}
					}
				}
			}
		} else {
			// Top-down step: expand the frontier through the visited
			// bitset (one bit per membership probe instead of a 4-byte
			// Dist load). The else-branch keeps parents canonical: every
			// previous-level neighbor of a node discovered this step is on
			// the frontier and therefore scanned, so the running minimum
			// settles on the lowest-index one.
			for i := levelStart; i < levelEnd; i++ {
				u := t.Order[i]
				for _, w := range g.Neighbors(int(u)) {
					if visited[w>>6]&(1<<(uint(w)&63)) == 0 {
						visited[w>>6] |= 1 << (uint(w) & 63)
						t.Dist[w] = dist
						t.Parent[w] = u
						t.Order = append(t.Order, w)
						nextEdges += int64(g.Degree(int(w)))
					} else if t.Dist[w] == dist && u < t.Parent[w] {
						t.Parent[w] = u
					}
				}
			}
		}
		levelStart = levelEnd
		levelEnd = len(t.Order)
		unexploredEdges -= nextEdges
		frontierEdges = nextEdges
	}
}
