package graph

import (
	"testing"
	"testing/quick"
)

func TestComponentsSingle(t *testing.T) {
	g := cycle(t, 8)
	labels, count := g.Components()
	if count != 1 {
		t.Fatalf("count = %d", count)
	}
	for v, l := range labels {
		if l != 0 {
			t.Fatalf("label[%d] = %d", v, l)
		}
	}
	if !g.Connected() {
		t.Fatal("cycle is connected")
	}
}

func TestComponentsMultiple(t *testing.T) {
	b := NewBuilder(7)
	_ = b.AddEdge(0, 1)
	_ = b.AddEdge(1, 2)
	_ = b.AddEdge(3, 4)
	// 5, 6 isolated
	g := b.Build()
	labels, count := g.Components()
	if count != 4 {
		t.Fatalf("count = %d, want 4", count)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Fatal("0-1-2 must share a label")
	}
	if labels[3] != labels[4] {
		t.Fatal("3-4 must share a label")
	}
	if labels[5] == labels[6] {
		t.Fatal("isolated nodes must differ")
	}
	if g.Connected() {
		t.Fatal("not connected")
	}
}

func TestGiantComponent(t *testing.T) {
	b := NewBuilder(10)
	// Component A: 0..5 path (6 nodes). Component B: 6..9 cycle (4 nodes).
	for i := 0; i < 5; i++ {
		_ = b.AddEdge(i, i+1)
	}
	for i := 6; i < 10; i++ {
		next := i + 1
		if next == 10 {
			next = 6
		}
		_ = b.AddEdge(i, next)
	}
	b.SetName("twoComp")
	g := b.Build()
	giant, oldIDs := g.GiantComponent()
	if giant.N() != 6 || giant.M() != 5 {
		t.Fatalf("giant N=%d M=%d", giant.N(), giant.M())
	}
	if giant.Name() != "twoComp" {
		t.Fatalf("name lost: %q", giant.Name())
	}
	if len(oldIDs) != 6 {
		t.Fatalf("oldIDs = %v", oldIDs)
	}
	for newID, oldID := range oldIDs {
		if oldID < 0 || oldID > 5 {
			t.Fatalf("newID %d maps to %d, outside giant component", newID, oldID)
		}
	}
	if !giant.Connected() {
		t.Fatal("giant component must be connected")
	}
}

func TestGiantComponentAlreadyConnected(t *testing.T) {
	g := cycle(t, 5)
	giant, oldIDs := g.GiantComponent()
	if giant != g {
		t.Fatal("connected graph must be returned unchanged")
	}
	for i, id := range oldIDs {
		if int(id) != i {
			t.Fatalf("identity mapping expected, got %v", oldIDs)
		}
	}
}

func TestGiantComponentProperty(t *testing.T) {
	f := func(seed int64, nRaw, cutRaw uint8) bool {
		n := int(nRaw%60) + 4
		g := randomGraph(seed, n, n/4)
		giant, oldIDs := g.GiantComponent()
		if !giant.Connected() {
			return false
		}
		if giant.N() != len(oldIDs) {
			return false
		}
		// Every edge in the giant must exist in the original.
		ok := true
		giant.Edges(func(u, v int) {
			if !g.HasEdge(int(oldIDs[u]), int(oldIDs[v])) {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestComponentCountMatchesBFSProperty(t *testing.T) {
	// Component count from labeling must equal the count of BFS restarts
	// needed to visit everything.
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%40) + 1
		b := NewBuilder(n)
		r := seed
		// A sparse random graph that is usually disconnected.
		for i := 0; i < n/2; i++ {
			r = r*6364136223846793005 + 1442695040888963407
			u := int(uint64(r)>>33) % n
			r = r*6364136223846793005 + 1442695040888963407
			v := int(uint64(r)>>33) % n
			_ = b.AddEdge(u, v)
		}
		g := b.Build()
		_, count := g.Components()
		visited := make([]bool, n)
		restarts := 0
		for v := 0; v < n; v++ {
			if visited[v] {
				continue
			}
			restarts++
			spt, err := g.BFS(v)
			if err != nil {
				return false
			}
			for _, u := range spt.Order {
				visited[u] = true
			}
		}
		return count == restarts
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
