package graph

import (
	"testing"
	"testing/quick"

	"mtreescale/internal/rng"
)

func TestBFSPath(t *testing.T) {
	g := path(t, 6)
	spt, err := g.BFS(0)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 6; v++ {
		if int(spt.Dist[v]) != v {
			t.Fatalf("dist[%d] = %d", v, spt.Dist[v])
		}
	}
	if spt.Depth() != 5 {
		t.Fatalf("depth = %d", spt.Depth())
	}
	if spt.Reachable() != 6 {
		t.Fatalf("reachable = %d", spt.Reachable())
	}
}

func TestBFSFromMiddle(t *testing.T) {
	g := path(t, 5)
	spt, err := g.BFS(2)
	if err != nil {
		t.Fatal(err)
	}
	want := []int32{2, 1, 0, 1, 2}
	for v, w := range want {
		if spt.Dist[v] != w {
			t.Fatalf("dist[%d] = %d, want %d", v, spt.Dist[v], w)
		}
	}
}

func TestBFSDisconnected(t *testing.T) {
	b := NewBuilder(4)
	_ = b.AddEdge(0, 1) // 2,3 isolated from 0
	_ = b.AddEdge(2, 3)
	g := b.Build()
	spt, err := g.BFS(0)
	if err != nil {
		t.Fatal(err)
	}
	if spt.Dist[2] != Unreachable || spt.Parent[3] != Unreachable {
		t.Fatal("unreachable nodes must be marked")
	}
	if spt.Reachable() != 2 {
		t.Fatalf("reachable = %d", spt.Reachable())
	}
	if _, err := spt.PathTo(2); err == nil {
		t.Fatal("PathTo unreachable must error")
	}
}

func TestBFSBadSource(t *testing.T) {
	g := path(t, 3)
	if _, err := g.BFS(-1); err == nil {
		t.Fatal("negative source must error")
	}
	if _, err := g.BFS(3); err == nil {
		t.Fatal("overflow source must error")
	}
	var spt SPT
	if err := g.BFSInto(9, &spt); err == nil {
		t.Fatal("BFSInto bad source must error")
	}
}

func TestBFSIntoMatchesBFS(t *testing.T) {
	g := randomGraph(3, 200, 300)
	var reuse SPT
	for s := 0; s < 20; s++ {
		want, err := g.BFS(s)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.BFSInto(s, &reuse); err != nil {
			t.Fatal(err)
		}
		for v := 0; v < g.N(); v++ {
			if want.Dist[v] != reuse.Dist[v] {
				t.Fatalf("source %d node %d: dist %d vs %d", s, v, want.Dist[v], reuse.Dist[v])
			}
		}
	}
}

func TestPathToFollowsEdges(t *testing.T) {
	g := randomGraph(8, 100, 150)
	spt, err := g.BFS(0)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		p, err := spt.PathTo(v)
		if err != nil {
			t.Fatal(err)
		}
		if p[0] != 0 || p[len(p)-1] != v {
			t.Fatalf("path endpoints %v for v=%d", p, v)
		}
		if len(p) != int(spt.Dist[v])+1 {
			t.Fatalf("path length %d vs dist %d", len(p)-1, spt.Dist[v])
		}
		for i := 0; i+1 < len(p); i++ {
			if !g.HasEdge(p[i], p[i+1]) {
				t.Fatalf("path uses non-edge (%d,%d)", p[i], p[i+1])
			}
		}
	}
}

func TestAvgDistPath(t *testing.T) {
	g := path(t, 5)
	spt, _ := g.BFS(0)
	if got, want := spt.AvgDist(), (1.0+2+3+4)/4; got != want {
		t.Fatalf("avg dist = %v, want %v", got, want)
	}
}

func TestAvgDistIsolated(t *testing.T) {
	g := NewBuilder(1).Build()
	spt, _ := g.BFS(0)
	if spt.AvgDist() != 0 {
		t.Fatal("isolated source must have zero avg dist")
	}
}

func TestDistHistogram(t *testing.T) {
	// Star: center 0, leaves 1..5.
	b := NewBuilder(6)
	for v := 1; v < 6; v++ {
		_ = b.AddEdge(0, v)
	}
	g := b.Build()
	spt, _ := g.BFS(0)
	h := spt.DistHistogram()
	if len(h) != 2 || h[0] != 1 || h[1] != 5 {
		t.Fatalf("hist = %v", h)
	}
}

func TestBFSOrderSortedByDist(t *testing.T) {
	g := randomGraph(5, 300, 500)
	spt, _ := g.BFS(7)
	for i := 1; i < len(spt.Order); i++ {
		if spt.Dist[spt.Order[i]] < spt.Dist[spt.Order[i-1]] {
			t.Fatal("BFS order not sorted by distance")
		}
	}
	if spt.Order[0] != 7 {
		t.Fatal("order must start at source")
	}
}

func TestBFSTriangleInequalityProperty(t *testing.T) {
	// For every edge (u,v): |dist(u) - dist(v)| <= 1.
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%80) + 2
		g := randomGraph(seed, n, n)
		spt, err := g.BFS(0)
		if err != nil {
			return false
		}
		ok := true
		g.Edges(func(u, v int) {
			du, dv := spt.Dist[u], spt.Dist[v]
			if du == Unreachable || dv == Unreachable {
				if du != dv {
					ok = false // one endpoint reachable, the other not: impossible
				}
				return
			}
			d := du - dv
			if d < -1 || d > 1 {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestBFSParentDistProperty(t *testing.T) {
	// dist(v) == dist(parent(v)) + 1 for every non-source reachable node.
	f := func(seed int64, nRaw uint8, srcRaw uint8) bool {
		n := int(nRaw%80) + 2
		g := randomGraph(seed, n, n/2)
		src := int(srcRaw) % n
		spt, err := g.BFS(src)
		if err != nil {
			return false
		}
		for v := 0; v < n; v++ {
			if v == src || spt.Dist[v] == Unreachable {
				continue
			}
			p := spt.Parent[v]
			if spt.Dist[v] != spt.Dist[p]+1 {
				return false
			}
			if !g.HasEdge(v, int(p)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestBFSLargeRandom(t *testing.T) {
	g := randomGraph(77, 50000, 75000)
	spt, err := g.BFS(0)
	if err != nil {
		t.Fatal(err)
	}
	if spt.Reachable() != g.N() {
		t.Fatalf("spanning-tree construction must keep graph connected; reached %d of %d", spt.Reachable(), g.N())
	}
}

func BenchmarkBFS50k(b *testing.B) {
	g := randomGraph(1, 50000, 100000)
	var spt SPT
	r := rng.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := g.BFSInto(r.Intn(g.N()), &spt); err != nil {
			b.Fatal(err)
		}
	}
}
