package graph

import (
	"fmt"
	"math"
	"slices"
)

// This file implements the streaming CSR builder behind the large-graph mode.
// The Builder materializes an edge list — 8 bytes per undirected edge before
// canonicalization and the CSR arrays on top — which at 10M nodes and average
// degree 4 means multiple transient gigabytes beyond the final graph. The
// two-pass streaming path never holds an edge list: pass one counts degrees,
// pass two scatters endpoints straight into the final adjacency array, and
// an in-place per-vertex sort+dedup finishes the CSR. Peak RSS is the final
// CSR plus a 4 B/node cursor — within the "≤ ~2× final CSR bytes" budget the
// large-graph mode promises even before compression.

// EdgeStream produces a graph's edge multiset by calling emit(u, v) once per
// edge. A stream MUST be re-runnable and deterministic: BuildStreamed
// invokes it twice (count pass, fill pass) and requires the identical edge
// sequence both times — generators achieve this by re-seeding their RNG
// inside the closure on every invocation. Self-loops are skipped (mirroring
// Builder.AddEdge); duplicate edges are deduplicated. emit must be called
// synchronously from the stream function.
type EdgeStream func(emit func(u, v int32)) error

// BuildStreamed constructs the CSR for an n-node graph from two passes over
// stream, without materializing an edge list. It returns an error when the
// stream emits out-of-range endpoints, produces different sequences across
// the two passes, or overflows the int32 CSR index space.
func BuildStreamed(n int, name string, stream EdgeStream) (*Graph, error) {
	if n < 0 {
		n = 0
	}
	if stream == nil {
		return nil, fmt.Errorf("graph: BuildStreamed needs an edge stream")
	}

	// Pass 1: count directed degrees. deg[v+1] accumulates v's count so the
	// in-place prefix sum below turns the same array into offsets.
	deg := make([]int32, n+1)
	var badU, badV int32
	bad := false
	var total int64
	err := stream(func(u, v int32) {
		if u < 0 || v < 0 || int(u) >= n || int(v) >= n {
			if !bad {
				bad, badU, badV = true, u, v
			}
			return
		}
		if u == v {
			return
		}
		deg[u+1]++
		deg[v+1]++
		total += 2
	})
	if err != nil {
		return nil, fmt.Errorf("graph: edge stream failed: %w", err)
	}
	if bad {
		return nil, fmt.Errorf("graph: streamed edge (%d,%d) out of range [0,%d)", badU, badV, n)
	}
	if total > math.MaxInt32 {
		return nil, fmt.Errorf("graph: %d directed edge entries overflow the int32 CSR index space", total)
	}

	offsets := deg // reuse: prefix sum in place
	for v := 0; v < n; v++ {
		offsets[v+1] += offsets[v]
	}
	adj := make([]int32, total)
	cursor := make([]int32, n)
	copy(cursor, offsets[:n])

	// Pass 2: scatter endpoints. The stream must replay the same sequence;
	// any divergence overflows or underfills some vertex's range, which the
	// cursor checks below catch deterministically.
	diverged := false
	err = stream(func(u, v int32) {
		if u < 0 || v < 0 || int(u) >= n || int(v) >= n || u == v {
			return
		}
		if cursor[u] == offsets[u+1] || cursor[v] == offsets[v+1] {
			diverged = true
			return
		}
		adj[cursor[u]] = v
		cursor[u]++
		adj[cursor[v]] = u
		cursor[v]++
	})
	if err != nil {
		return nil, fmt.Errorf("graph: edge stream failed on fill pass: %w", err)
	}
	for v := 0; v < n && !diverged; v++ {
		if cursor[v] != offsets[v+1] {
			diverged = true
		}
	}
	if diverged {
		return nil, fmt.Errorf("graph: edge stream is not deterministic across passes")
	}

	// Per-vertex sort + dedup, compacting in place. The write cursor never
	// overtakes the read range, so no extra buffer is needed.
	write := int32(0)
	for v := 0; v < n; v++ {
		s, e := offsets[v], offsets[v+1]
		seg := adj[s:e]
		slices.Sort(seg)
		offsets[v] = write
		last := int32(-1)
		for _, w := range seg {
			if w != last {
				adj[write] = w
				write++
				last = w
			}
		}
	}
	offsets[n] = write
	if int64(write) <= total*7/8 {
		// Heavy duplication: reallocate so MemBytes reflects reality.
		adj = append(make([]int32, 0, write), adj[:write]...)
	} else {
		adj = adj[:write]
	}
	return &Graph{offsets: offsets, adj: adj, name: name}, nil
}
