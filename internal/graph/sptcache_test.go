package graph

import (
	"sync"
	"testing"
)

func TestSPTCacheHitReturnsSamePointer(t *testing.T) {
	c := NewSPTCache(1 << 20)
	g := randomGraph(1, 100, 200)
	first, err := c.Get(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	again, err := c.Get(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if first != again {
		t.Fatal("cache hit must return the cached SPT pointer")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 entry", st)
	}
	want, err := g.BFS(3)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		if first.Dist[v] != want.Dist[v] || first.Parent[v] != want.Parent[v] {
			t.Fatalf("cached SPT differs from BFS at node %d", v)
		}
	}
}

func TestSPTCacheKeyedByGraphIdentity(t *testing.T) {
	c := NewSPTCache(1 << 20)
	gA := randomGraph(1, 50, 100)
	gB := randomGraph(1, 50, 100) // same structure, different identity
	a, _ := c.Get(gA, 0)
	b, _ := c.Get(gB, 0)
	if a == b {
		t.Fatal("distinct graphs must get distinct cache entries")
	}
	if st := c.Stats(); st.Entries != 2 || st.Misses != 2 {
		t.Fatalf("stats = %+v, want 2 entries / 2 misses", st)
	}
}

func TestSPTCacheEvictionBound(t *testing.T) {
	g := randomGraph(2, 500, 1000)
	perTree := sptBytes(func() *SPT { s, _ := g.BFS(0); return s }())
	c := NewSPTCache(3 * perTree) // room for exactly 3 trees
	for src := 0; src < 10; src++ {
		if _, err := c.Get(g, src); err != nil {
			t.Fatal(err)
		}
		if st := c.Stats(); st.Bytes > st.Limit {
			t.Fatalf("cache over budget after source %d: %+v", src, st)
		}
	}
	st := c.Stats()
	if st.Entries != 3 {
		t.Fatalf("entries = %d, want 3 (budget holds exactly 3 trees)", st.Entries)
	}
	if st.Evictions != 7 {
		t.Fatalf("evictions = %d, want 7", st.Evictions)
	}
	// LRU order: the survivors must be the three most recent sources.
	preBytes := st.Bytes
	for _, src := range []int{7, 8, 9} {
		if _, err := c.Get(g, src); err != nil {
			t.Fatal(err)
		}
	}
	st = c.Stats()
	if st.Misses != 10 || st.Hits != 3 || st.Bytes != preBytes {
		t.Fatalf("recent sources must still be cached: %+v", st)
	}
}

func TestSPTCacheLRUTouchOnHit(t *testing.T) {
	g := randomGraph(3, 200, 400)
	perTree := sptBytes(func() *SPT { s, _ := g.BFS(0); return s }())
	c := NewSPTCache(2 * perTree)
	c.Get(g, 0)
	c.Get(g, 1)
	c.Get(g, 0) // touch 0: now 1 is the LRU victim
	c.Get(g, 2) // evicts 1
	st := c.Stats()
	c.Get(g, 0)
	if after := c.Stats(); after.Hits != st.Hits+1 {
		t.Fatal("source 0 should have survived the eviction")
	}
	c.Get(g, 1)
	if after := c.Stats(); after.Misses != st.Misses+1 {
		t.Fatal("source 1 should have been evicted")
	}
}

func TestSPTCacheErrorNotCached(t *testing.T) {
	c := NewSPTCache(1 << 20)
	g := randomGraph(4, 20, 40)
	if _, err := c.Get(g, -1); err == nil {
		t.Fatal("out-of-range source must error")
	}
	if _, err := c.Get(g, g.N()); err == nil {
		t.Fatal("out-of-range source must error")
	}
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("errors must not occupy the cache: %+v", st)
	}
	if _, err := c.Get(nil, 0); err == nil {
		t.Fatal("nil graph must error")
	}
}

func TestSPTCacheClearAndSetLimit(t *testing.T) {
	c := NewSPTCache(1 << 20)
	g := randomGraph(5, 300, 600)
	for src := 0; src < 5; src++ {
		c.Get(g, src)
	}
	if st := c.Stats(); st.Entries != 5 {
		t.Fatalf("entries = %d, want 5", st.Entries)
	}
	perTree := sptBytes(func() *SPT { s, _ := g.BFS(0); return s }())
	if old := c.SetLimit(2 * perTree); old != 1<<20 {
		t.Fatalf("SetLimit returned %d, want previous limit", old)
	}
	if st := c.Stats(); st.Entries != 2 || st.Bytes > st.Limit {
		t.Fatalf("SetLimit must evict down to budget: %+v", st)
	}
	c.Clear()
	st := c.Stats()
	if st.Entries != 0 || st.Bytes != 0 || st.Hits != 0 || st.Misses != 0 || st.Evictions != 0 {
		t.Fatalf("Clear must drop entries and counters: %+v", st)
	}
	if st.Limit != 2*perTree {
		t.Fatal("Clear must preserve the limit")
	}
}

func TestSPTCacheZeroBudgetDegradesToSingleflight(t *testing.T) {
	c := NewSPTCache(0)
	g := randomGraph(6, 100, 200)
	spt, err := c.Get(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if spt == nil || spt.Dist[1] != 0 {
		t.Fatal("zero-budget cache must still return a correct SPT")
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("zero-budget cache must hold nothing: %+v", st)
	}
}

// TestSPTCacheConcurrent is the race test the satellite requires: many
// goroutines hammering a small source set must share singleflight fills and
// agree on every returned tree. Run under `make race`.
func TestSPTCacheConcurrent(t *testing.T) {
	c := NewSPTCache(1 << 20)
	g := randomGraph(7, 2000, 6000)
	const goroutines = 16
	const perG = 50
	const sourceMod = 8
	results := make([][]*SPT, goroutines)
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results[w] = make([]*SPT, perG)
			for i := 0; i < perG; i++ {
				spt, err := c.Get(g, (w+i)%sourceMod)
				if err != nil {
					t.Error(err)
					return
				}
				results[w][i] = spt
			}
		}(w)
	}
	wg.Wait()
	// Every fetch of the same source must have observed the same pointer
	// (nothing was evicted: budget far exceeds 8 small trees).
	bySource := make(map[int]*SPT)
	for w := 0; w < goroutines; w++ {
		for i := 0; i < perG; i++ {
			src := (w + i) % sourceMod
			if prev, ok := bySource[src]; ok {
				if prev != results[w][i] {
					t.Fatalf("source %d returned two distinct SPTs", src)
				}
			} else {
				bySource[src] = results[w][i]
			}
		}
	}
	st := c.Stats()
	if st.Entries != sourceMod {
		t.Fatalf("entries = %d, want %d", st.Entries, sourceMod)
	}
	if st.Hits+st.Misses != goroutines*perG {
		t.Fatalf("hits+misses = %d, want %d", st.Hits+st.Misses, goroutines*perG)
	}
}

// TestSPTCacheConcurrentEviction races gets against an eviction-heavy budget:
// correctness here is "no deadlock, no panic, budget respected at rest".
func TestSPTCacheConcurrentEviction(t *testing.T) {
	g := randomGraph(8, 400, 800)
	perTree := sptBytes(func() *SPT { s, _ := g.BFS(0); return s }())
	c := NewSPTCache(2 * perTree)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if _, err := c.Get(g, (w*31+i)%64); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if st := c.Stats(); st.Bytes > st.Limit || st.Entries > 2 {
		t.Fatalf("cache over budget after concurrent churn: %+v", st)
	}
}
