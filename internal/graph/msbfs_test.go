package graph

import (
	"testing"
	"testing/quick"

	"mtreescale/internal/rng"
)

// checkBatchAgainstBFS asserts the MS-BFS contract for one (graph, sources)
// pair: every lane's Dist and Parent arrays are byte-identical to per-source
// BFS, and Materialize yields a valid standalone SPT.
func checkBatchAgainstBFS(t *testing.T, g *Graph, sources []int) {
	t.Helper()
	b, err := g.BatchSPTs(sources)
	if err != nil {
		t.Fatal(err)
	}
	if b.Lanes() != len(sources) {
		t.Fatalf("batch has %d lanes, want %d", b.Lanes(), len(sources))
	}
	for i, s := range sources {
		want, err := g.BFS(s)
		if err != nil {
			t.Fatal(err)
		}
		dist, parent := b.DistRow(i), b.ParentRow(i)
		for v := 0; v < g.N(); v++ {
			if dist[v] != want.Dist[v] {
				t.Fatalf("lane %d (source %d) node %d: batch dist %d, BFS %d",
					i, s, v, dist[v], want.Dist[v])
			}
			if parent[v] != want.Parent[v] {
				t.Fatalf("lane %d (source %d) node %d: batch parent %d, BFS %d",
					i, s, v, parent[v], want.Parent[v])
			}
		}
		m := b.Materialize(i)
		if m.Source != s || m.Reachable() != want.Reachable() {
			t.Fatalf("lane %d materialized source/reach %d/%d, want %d/%d",
				i, m.Source, m.Reachable(), s, want.Reachable())
		}
		checkParentValidity(t, g, m)
		if m.Order[0] != int32(s) {
			t.Fatalf("materialized order must start at source, got %d", m.Order[0])
		}
		for j := 1; j < len(m.Order); j++ {
			if m.Dist[m.Order[j]] < m.Dist[m.Order[j-1]] {
				t.Fatal("materialized order not sorted by distance")
			}
		}
	}
}

func TestBatchSPTsMatchesBFSRandom(t *testing.T) {
	f := func(seed int64, nRaw, extraRaw uint8, srcRaws [9]uint8) bool {
		n := int(nRaw%120) + 2
		g := randomGraph(seed, n, int(extraRaw))
		sources := make([]int, len(srcRaws))
		for i, s := range srcRaws {
			sources[i] = int(s) % n
		}
		b, err := g.BatchSPTs(sources)
		if err != nil {
			return false
		}
		for i, s := range sources {
			want, err := g.BFS(s)
			if err != nil {
				return false
			}
			dist, parent := b.DistRow(i), b.ParentRow(i)
			for v := 0; v < n; v++ {
				if dist[v] != want.Dist[v] || parent[v] != want.Parent[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBatchSPTsFullWidthAndSpill(t *testing.T) {
	// 100 sources spill over the 64-lane width: two traversal groups, one
	// slab. Duplicates occupy independent lanes.
	g := randomGraph(7, 300, 500)
	sources := make([]int, 100)
	for i := range sources {
		sources[i] = (i * 13) % g.N()
	}
	sources[50] = sources[0] // duplicate across groups
	checkBatchAgainstBFS(t, g, sources)
}

func TestBatchSPTsDisconnected(t *testing.T) {
	// Two components: lanes rooted in either side must mark the other side
	// unreachable, exactly like single-source BFS.
	b := NewBuilder(8)
	_ = b.AddEdge(0, 1)
	_ = b.AddEdge(1, 2)
	_ = b.AddEdge(3, 4)
	_ = b.AddEdge(4, 5)
	_ = b.AddEdge(5, 6)
	g := b.Build()
	checkBatchAgainstBFS(t, g, []int{0, 3, 7, 2})
}

func TestBatchSPTsAboveHybridThreshold(t *testing.T) {
	// Batch vs BFS equivalence must also hold where BFSInto routes to the
	// direction-optimizing kernel.
	old := SetDirectionOptThreshold(64)
	defer SetDirectionOptThreshold(old)
	g := randomGraph(11, 500, 900)
	checkBatchAgainstBFS(t, g, []int{0, 17, 401, 499, 17})
}

func TestBatchSPTsIntoReuse(t *testing.T) {
	// A pooled batch refilled with fewer, then more sources must stay exact;
	// stale lanes from earlier fills may not leak through.
	g1 := randomGraph(3, 90, 150)
	g2 := randomGraph(4, 40, 20)
	b := AcquireSPTBatch()
	defer ReleaseSPTBatch(b)
	for _, tc := range []struct {
		g    *Graph
		srcs []int
	}{
		{g1, []int{0, 1, 2, 3, 4, 5, 6, 7}},
		{g2, []int{39, 0}},
		{g1, []int{89}},
	} {
		if err := tc.g.BatchSPTsInto(tc.srcs, b); err != nil {
			t.Fatal(err)
		}
		for i, s := range tc.srcs {
			want, err := tc.g.BFS(s)
			if err != nil {
				t.Fatal(err)
			}
			dist, parent := b.DistRow(i), b.ParentRow(i)
			for v := 0; v < tc.g.N(); v++ {
				if dist[v] != want.Dist[v] || parent[v] != want.Parent[v] {
					t.Fatalf("reused batch lane %d node %d: got %d/%d want %d/%d",
						i, v, dist[v], parent[v], want.Dist[v], want.Parent[v])
				}
			}
		}
	}
}

func TestBatchSPTsErrors(t *testing.T) {
	g := randomGraph(1, 10, 5)
	if _, err := g.BatchSPTs(nil); err == nil {
		t.Fatal("empty source list must error")
	}
	if _, err := g.BatchSPTs([]int{0, 10}); err == nil {
		t.Fatal("out-of-range source must error")
	}
	if _, err := g.BatchSPTs([]int{-1}); err == nil {
		t.Fatal("negative source must error")
	}
}

// FuzzMSBFSEquivalence cross-checks the MS-BFS kernel against single-source
// BFS on fuzzer-chosen graphs and source sets: every lane's distances and
// parents must match exactly.
func FuzzMSBFSEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(30), uint8(40), []byte{0, 3, 9})
	f.Add(int64(2), uint8(90), uint8(0), []byte{1})
	f.Add(int64(3), uint8(200), uint8(255), []byte{0, 0, 5, 200, 63, 64, 65})
	f.Fuzz(func(t *testing.T, seed int64, nRaw, extraRaw uint8, srcBytes []byte) {
		n := int(nRaw%200) + 2
		g := randomGraph(seed, n, int(extraRaw))
		if len(srcBytes) == 0 {
			srcBytes = []byte{0}
		}
		if len(srcBytes) > 2*msbfsLanes+3 {
			srcBytes = srcBytes[:2*msbfsLanes+3] // cover multi-group without huge slabs
		}
		sources := make([]int, len(srcBytes))
		for i, sb := range srcBytes {
			sources[i] = int(sb) % n
		}
		b, err := g.BatchSPTs(sources)
		if err != nil {
			t.Fatal(err)
		}
		for i, s := range sources {
			want, err := g.BFS(s)
			if err != nil {
				t.Fatal(err)
			}
			dist, parent := b.DistRow(i), b.ParentRow(i)
			for v := 0; v < n; v++ {
				if dist[v] != want.Dist[v] {
					t.Fatalf("lane %d (source %d) node %d: batch dist %d, BFS %d",
						i, s, v, dist[v], want.Dist[v])
				}
				if parent[v] != want.Parent[v] {
					t.Fatalf("lane %d (source %d) node %d: batch parent %d, BFS %d",
						i, s, v, parent[v], want.Parent[v])
				}
			}
		}
	})
}

// BenchmarkBatchSPTs64 traverses 64 sources through one MS-BFS batch on the
// BenchmarkBFS50k graph; BenchmarkBatchSPTs64Serial is the ablation running
// the same 64 sources through the routed single-source kernel.
func BenchmarkBatchSPTs64(b *testing.B) {
	g := randomGraph(1, 50000, 100000)
	r := rng.New(2)
	sources := make([]int, msbfsLanes)
	for i := range sources {
		sources[i] = r.Intn(g.N())
	}
	batch := AcquireSPTBatch()
	defer ReleaseSPTBatch(batch)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := g.BatchSPTsInto(sources, batch); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBatchSPTs64Serial(b *testing.B) {
	g := randomGraph(1, 50000, 100000)
	r := rng.New(2)
	sources := make([]int, msbfsLanes)
	for i := range sources {
		sources[i] = r.Intn(g.N())
	}
	var spt SPT
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range sources {
			if err := g.BFSInto(s, &spt); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkBatchSPTs64Compressed is the storage ablation of
// BenchmarkBatchSPTs64: the identical 64-source batch over the varint
// compressed CSR (results byte-identical, adjacency decoded block-wise into
// per-worker scratch); the Relabeled variant adds the degree-descending
// cache-blocked vertex order on top.
func BenchmarkBatchSPTs64Compressed(b *testing.B) {
	benchBatch64Layout(b, false)
}

func BenchmarkBatchSPTs64Relabeled(b *testing.B) {
	benchBatch64Layout(b, true)
}

func benchBatch64Layout(b *testing.B, relabel bool) {
	b.Helper()
	g, err := randomGraph(1, 50000, 100000).Compress(relabel)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(2)
	sources := make([]int, msbfsLanes)
	for i := range sources {
		sources[i] = r.Intn(g.N())
	}
	batch := AcquireSPTBatch()
	defer ReleaseSPTBatch(batch)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := g.BatchSPTsInto(sources, batch); err != nil {
			b.Fatal(err)
		}
	}
}
