package graph

import (
	"container/list"
	"fmt"
	"sync"
)

// SPTCache is a bounded, memory-accounted, LRU cache of shortest-path trees
// keyed by (graph identity, source). Graphs are immutable after Build and an
// SPT is a pure function of (graph, source), so one cached tree can serve
// every measurement that roots at that source — the §2 Monte-Carlo protocols
// draw sources with replacement from a shared stream, and independent
// experiments sweeping the same cached topology redraw the very same
// sources, so cross-experiment hit rates are high.
//
// Fills carry singleflight semantics: concurrent requests for a missing key
// block on one BFS instead of racing duplicates. Cached SPTs are shared and
// MUST be treated as read-only by callers; every consumer in this repository
// (TreeCounter, reach histograms, affinity chains) only reads them.
type SPTCache struct {
	mu        sync.Mutex
	limit     int64
	bytes     int64
	entries   map[sptKey]*sptEntry
	lru       *list.List // front = most recently used; values are *sptEntry
	hits      uint64
	misses    uint64
	evictions uint64
}

type sptKey struct {
	g      *Graph
	source int
}

type sptEntry struct {
	key   sptKey
	elem  *list.Element
	ready chan struct{} // closed once spt/err are set
	spt   *SPT
	err   error
	bytes int64
}

// SPTCacheStats is a point-in-time snapshot of cache effectiveness.
type SPTCacheStats struct {
	// Entries and Bytes describe the currently cached trees.
	Entries int
	Bytes   int64
	// Limit is the byte budget entries are evicted against.
	Limit int64
	// Hits, Misses and Evictions are cumulative since construction or the
	// last Clear.
	Hits, Misses, Evictions uint64
}

// DefaultSPTCacheBytes is the byte budget of the process-wide SharedSPTs
// cache: enough for ~100 sources on a million-node topology (one SPT costs
// ~12 bytes/node) without threatening a simulation-sized heap.
const DefaultSPTCacheBytes int64 = 256 << 20

// SharedSPTs is the process-wide shortest-path-tree cache. The measurement
// engines route through it when their protocol asks for SPT caching.
var SharedSPTs = NewSPTCache(DefaultSPTCacheBytes)

// NewSPTCache returns an empty cache with the given byte budget. A
// non-positive limit means "no budget": every fill is evicted immediately,
// degrading the cache to singleflight-only.
func NewSPTCache(maxBytes int64) *SPTCache {
	return &SPTCache{
		limit:   maxBytes,
		entries: make(map[sptKey]*sptEntry),
		lru:     list.New(),
	}
}

// sptBytes estimates the heap footprint of one cached tree.
func sptBytes(t *SPT) int64 {
	const entryOverhead = 128 // entry struct, map slot, list element
	return int64(cap(t.Parent)+cap(t.Dist)+cap(t.Order))*4 + entryOverhead
}

// Get returns the shortest-path tree rooted at source, filling the cache on
// a miss. The returned SPT is shared: callers must not modify it nor pass it
// to BFSInto. Concurrent callers of a missing key share one BFS.
func (c *SPTCache) Get(g *Graph, source int) (*SPT, error) {
	if g == nil {
		return nil, fmt.Errorf("graph: SPT cache needs a graph")
	}
	key := sptKey{g: g, source: source}
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.hits++
		if e.elem != nil {
			c.lru.MoveToFront(e.elem)
		}
		c.mu.Unlock()
		<-e.ready
		return e.spt, e.err
	}
	c.misses++
	e := &sptEntry{key: key, ready: make(chan struct{})}
	e.elem = c.lru.PushFront(e)
	c.entries[key] = e
	c.mu.Unlock()

	e.spt, e.err = g.BFS(source)
	close(e.ready)

	c.mu.Lock()
	// e.bytes is only ever written here, under the lock and only while the
	// entry is still the mapped one — a concurrent evictor that already
	// dropped the in-flight entry subtracted its zero, so the budget stays
	// exact either way.
	if cur, ok := c.entries[key]; ok && cur == e {
		if e.err != nil {
			// Errors (out-of-range source) are cheap to reproduce; do not
			// let them occupy the map.
			c.removeLocked(e)
		} else {
			e.bytes = sptBytes(e.spt)
			c.bytes += e.bytes
			c.evictLocked()
		}
	}
	c.mu.Unlock()
	return e.spt, e.err
}

// Peek returns the cached tree for (g, source) without filling on a miss.
// Like Get, it blocks on an in-flight fill for the key (sharing its result)
// and counts a hit; a true miss returns (nil, false) and counts nothing, so
// callers can decide how to compute the tree — the batch scheduling path
// peeks every distinct source and routes the misses through one MS-BFS
// traversal.
func (c *SPTCache) Peek(g *Graph, source int) (*SPT, bool) {
	if g == nil {
		return nil, false
	}
	key := sptKey{g: g, source: source}
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		c.mu.Unlock()
		return nil, false
	}
	c.hits++
	if e.elem != nil {
		c.lru.MoveToFront(e.elem)
	}
	c.mu.Unlock()
	<-e.ready
	if e.err != nil {
		return nil, false
	}
	return e.spt, true
}

// Add inserts an already-computed tree for (g, source), if the key is absent.
// It returns the cached tree for the key: t itself when the insert won, or
// the existing (possibly in-flight) entry's tree when another fill got there
// first — so callers always end up sharing the canonical cached copy. t must
// be a standalone SPT the cache may own indefinitely (e.g. from
// SPTBatch.Materialize), never a view into pooled storage.
func (c *SPTCache) Add(g *Graph, source int, t *SPT) (*SPT, error) {
	if g == nil || t == nil {
		return nil, fmt.Errorf("graph: SPT cache Add needs a graph and a tree")
	}
	key := sptKey{g: g, source: source}
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		if e.elem != nil {
			c.lru.MoveToFront(e.elem)
		}
		c.mu.Unlock()
		<-e.ready
		return e.spt, e.err
	}
	e := &sptEntry{key: key, ready: make(chan struct{}), spt: t}
	close(e.ready)
	e.elem = c.lru.PushFront(e)
	c.entries[key] = e
	e.bytes = sptBytes(t)
	c.bytes += e.bytes
	c.evictLocked()
	c.mu.Unlock()
	return t, nil
}

// FillBatch ensures trees for every given source are cached, computing the
// misses through the multi-source BFS kernel in 64-lane groups instead of
// one BFS per source. MS-BFS produces the same canonical trees as the
// single-source kernels, so subsequent Gets are byte-identical to
// cache-as-you-go filling.
func (c *SPTCache) FillBatch(g *Graph, sources []int) error {
	var need []int
	var pending map[int]struct{}
	for _, s := range sources {
		if _, dup := pending[s]; dup {
			continue
		}
		if _, ok := c.Peek(g, s); !ok {
			if pending == nil {
				pending = make(map[int]struct{})
			}
			pending[s] = struct{}{}
			need = append(need, s)
		}
	}
	if len(need) == 0 {
		return nil
	}
	b := AcquireSPTBatch()
	defer ReleaseSPTBatch(b)
	if err := g.BatchSPTsInto(need, b); err != nil {
		return err
	}
	for i, s := range need {
		if _, err := c.Add(g, s, b.Materialize(i)); err != nil {
			return err
		}
	}
	return nil
}

// removeLocked unlinks an entry without counting it as an eviction.
func (c *SPTCache) removeLocked(e *sptEntry) {
	delete(c.entries, e.key)
	if e.elem != nil {
		c.lru.Remove(e.elem)
		e.elem = nil
	}
	c.bytes -= e.bytes
}

// evictLocked drops least-recently-used entries until the byte budget holds.
// Entries still filling have zero accounted bytes and sit at the list front,
// so they are only reached when the budget cannot hold even one tree.
func (c *SPTCache) evictLocked() {
	for c.bytes > c.limit {
		back := c.lru.Back()
		if back == nil {
			return
		}
		e := back.Value.(*sptEntry)
		c.removeLocked(e)
		c.evictions++
	}
}

// Stats snapshots the cache counters.
func (c *SPTCache) Stats() SPTCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return SPTCacheStats{
		Entries:   len(c.entries),
		Bytes:     c.bytes,
		Limit:     c.limit,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}

// SetLimit replaces the byte budget, evicting down to it immediately, and
// returns the previous limit.
func (c *SPTCache) SetLimit(maxBytes int64) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	old := c.limit
	c.limit = maxBytes
	c.evictLocked()
	return old
}

// Clear drops every entry and zeroes the counters. In-flight fills complete
// for their waiters but are not re-admitted.
func (c *SPTCache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[sptKey]*sptEntry)
	c.lru.Init()
	c.bytes = 0
	c.hits, c.misses, c.evictions = 0, 0, 0
}
