// Package graph implements the undirected-graph substrate used by the
// multicast-tree simulator: a compact immutable adjacency representation,
// breadth-first shortest paths, shortest-path trees, connected components,
// topology metrics and a plain-text edge-list interchange format.
//
// Nodes are dense integers 0..N-1. All edges are unweighted and
// bidirectional; the paper ("All topologies were cleaned by removing
// duplicate edges and all remaining edges were then assumed to be
// bi-directional") counts hops only, never link weights.
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// Graph is an immutable undirected graph in compressed-sparse-row form.
// Build one with a Builder (or BuildStreamed for large graphs). The zero
// value is an empty graph.
//
// A Graph has one of two adjacency layouts. The flat layout stores sorted
// int32 neighbor slices in adj. The compressed layout (see Compress) drops
// adj and stores varint delta-encoded neighbor bytes in cadj, optionally
// under a degree-descending vertex relabeling recorded by perm/inv; all
// public methods still speak original vertex ids.
type Graph struct {
	offsets []int32 // len N+1; degree of storage id v is offsets[v+1]-offsets[v]
	adj     []int32 // flat layout: neighbors of v are adj[offsets[v]:offsets[v+1]]
	name    string

	// Compressed layout (nil in the flat layout). Storage id r's neighbors
	// are varint-decoded from cadj[coff[r]:coff[r+1]] (adjcodec.go).
	cadj []byte
	coff []uint32
	// perm maps original id -> storage id, inv the reverse. Both are nil
	// when the compressed layout keeps original order.
	perm, inv []int32
	// maxDeg sizes per-worker decode scratch.
	maxDeg int32
}

// Builder accumulates edges for a Graph. Duplicate edges and self-loops are
// removed at Build time, mirroring the paper's topology cleaning step.
type Builder struct {
	n     int
	edges [][2]int32
	name  string
}

// NewBuilder returns a Builder for a graph with n nodes (0..n-1).
func NewBuilder(n int) *Builder {
	if n < 0 {
		n = 0
	}
	return &Builder{n: n}
}

// SetName attaches a human-readable topology name (e.g. "ts1000").
func (b *Builder) SetName(name string) { b.name = name }

// N returns the number of nodes the builder was created with.
func (b *Builder) N() int { return b.n }

// AddEdge records an undirected edge between u and v. Out-of-range endpoints
// return an error; self-loops are silently dropped (they can never appear in
// a delivery tree). Duplicates are allowed here and removed by Build.
func (b *Builder) AddEdge(u, v int) error {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n)
	}
	if u == v {
		return nil
	}
	if u > v {
		u, v = v, u
	}
	b.edges = append(b.edges, [2]int32{int32(u), int32(v)})
	return nil
}

// Grow extends the node range to at least n nodes.
func (b *Builder) Grow(n int) {
	if n > b.n {
		b.n = n
	}
}

// Build produces the immutable Graph. The builder may be reused afterwards.
func (b *Builder) Build() *Graph {
	// Deduplicate canonicalized edges.
	sort.Slice(b.edges, func(i, j int) bool {
		if b.edges[i][0] != b.edges[j][0] {
			return b.edges[i][0] < b.edges[j][0]
		}
		return b.edges[i][1] < b.edges[j][1]
	})
	uniq := b.edges[:0:len(b.edges)]
	var last [2]int32 = [2]int32{-1, -1}
	for _, e := range b.edges {
		if e != last {
			uniq = append(uniq, e)
			last = e
		}
	}

	deg := make([]int32, b.n)
	for _, e := range uniq {
		deg[e[0]]++
		deg[e[1]]++
	}
	offsets := make([]int32, b.n+1)
	for v := 0; v < b.n; v++ {
		offsets[v+1] = offsets[v] + deg[v]
	}
	adj := make([]int32, offsets[b.n])
	cursor := make([]int32, b.n)
	copy(cursor, offsets[:b.n])
	for _, e := range uniq {
		adj[cursor[e[0]]] = e[1]
		cursor[e[0]]++
		adj[cursor[e[1]]] = e[0]
		cursor[e[1]]++
	}
	return &Graph{offsets: offsets, adj: adj, name: b.name}
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.offsets) - 1 }

// M returns the number of (undirected) edges.
func (g *Graph) M() int {
	if len(g.offsets) == 0 {
		return 0
	}
	return int(g.offsets[len(g.offsets)-1]) / 2
}

// Name returns the topology name, if any.
func (g *Graph) Name() string { return g.name }

// MemBytes estimates the heap footprint of the adjacency arrays — the
// accounting unit of the byte-budgeted caches. It covers both layouts:
// offsets and the flat adjacency for uncompressed graphs, plus the encoded
// bytes, byte offsets and relabeling permutations for compressed ones.
func (g *Graph) MemBytes() int64 {
	b := int64(cap(g.offsets)+cap(g.adj)+cap(g.perm)+cap(g.inv)) * 4
	b += int64(cap(g.cadj)) + int64(cap(g.coff))*4
	return b
}

// WithName returns a shallow copy of g carrying the given name.
func (g *Graph) WithName(name string) *Graph {
	cp := *g
	cp.name = name
	return &cp
}

// Degree returns the degree of node v (an original id in both layouts).
func (g *Graph) Degree(v int) int {
	if g.perm != nil {
		r := g.perm[v]
		return int(g.offsets[r+1] - g.offsets[r])
	}
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns the sorted adjacency of v in original ids. For flat
// graphs the slice aliases internal storage and must not be modified; for
// compressed graphs it is freshly decoded (and owned by the caller). Hot
// paths on compressed graphs use the block-wise decoder in the kernels
// instead of this method.
func (g *Graph) Neighbors(v int) []int32 {
	if g.cadj != nil {
		return g.neighborsOrigInto(v, nil)
	}
	return g.adj[g.offsets[v]:g.offsets[v+1]]
}

// NeighborsInto returns the sorted adjacency of v in original ids without
// allocating on the steady state: flat graphs return an alias of internal
// storage (buf is ignored and must not be written through), compressed
// graphs decode into buf, growing it only when cap(buf) is too small, and
// return the (possibly grown) buffer. Callers that keep the returned slice
// as their scratch for the next call amortize decode storage to zero
// allocations once the buffer has reached the graph's maximum degree.
func (g *Graph) NeighborsInto(v int, buf []int32) []int32 {
	if g.cadj != nil {
		return g.neighborsOrigInto(v, buf)
	}
	return g.adj[g.offsets[v]:g.offsets[v+1]]
}

// HasEdge reports whether the edge (u,v) exists. Flat layout: binary search
// of the sorted adjacency. Compressed layout: an allocation-free streaming
// scan of u's encoded neighbor list.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || v < 0 || u >= g.N() || v >= g.N() {
		return false
	}
	if g.cadj != nil {
		r := g.ridOf(u)
		return scanAdjFor(g.cadj[g.coff[r]:g.coff[r+1]], r, int(g.degRID(r)), g.ridOf(v))
	}
	ns := g.Neighbors(u)
	i := sort.Search(len(ns), func(i int) bool { return ns[i] >= int32(v) })
	return i < len(ns) && ns[i] == int32(v)
}

// Edges calls fn once per undirected edge with u < v, ascending u then v —
// the same original-id order in both layouts, so edge-list output is
// byte-identical regardless of compression or relabeling.
func (g *Graph) Edges(fn func(u, v int)) {
	var buf []int32
	for u := 0; u < g.N(); u++ {
		var ns []int32
		if g.cadj != nil {
			buf = g.neighborsOrigInto(u, buf)
			ns = buf
		} else {
			ns = g.adj[g.offsets[u]:g.offsets[u+1]]
		}
		for _, w := range ns {
			if int32(u) < w {
				fn(u, int(w))
			}
		}
	}
}

// AvgDegree returns 2M/N, the paper's Table 1 "average degree" column.
func (g *Graph) AvgDegree() float64 {
	if g.N() == 0 {
		return 0
	}
	return 2 * float64(g.M()) / float64(g.N())
}

// Validate checks internal invariants (sorted adjacency, symmetric edges, no
// self-loops). It is used by tests and by topology generators in debug mode.
// Compressed graphs are validated through the decoded original-id view, so
// the same invariants hold in both layouts.
func (g *Graph) Validate() error {
	if len(g.offsets) == 0 || g.offsets[0] != 0 {
		return errors.New("graph: bad offsets header")
	}
	var buf []int32
	for v := 0; v < g.N(); v++ {
		var ns []int32
		if g.cadj != nil {
			buf = g.neighborsOrigInto(v, buf)
			ns = buf
		} else {
			ns = g.adj[g.offsets[v]:g.offsets[v+1]]
		}
		for i, w := range ns {
			if w < 0 || int(w) >= g.N() {
				return fmt.Errorf("graph: node %d has out-of-range neighbor %d", v, w)
			}
			if int(w) == v {
				return fmt.Errorf("graph: self-loop at %d", v)
			}
			if i > 0 && ns[i-1] >= w {
				return fmt.Errorf("graph: adjacency of %d not strictly sorted", v)
			}
			if !g.HasEdge(int(w), v) {
				return fmt.Errorf("graph: edge (%d,%d) not symmetric", v, w)
			}
		}
	}
	return nil
}

// String summarizes the graph.
func (g *Graph) String() string {
	name := g.name
	if name == "" {
		name = "graph"
	}
	return fmt.Sprintf("%s{N=%d M=%d degavg=%.2f}", name, g.N(), g.M(), g.AvgDegree())
}
