package graph

import (
	"sync"
	"sync/atomic"
	"testing"
)

// Hammer the SPT cache from many goroutines while the byte budget is being
// shrunk, grown, and cleared underneath them — unlike the churn test in
// sptcache_test.go, the limit itself moves during the race. Run under -race,
// this is the eviction path's data-race check; the assertions verify that
// whatever the interleaving, every Get still answers with a correct tree.
func TestSPTCacheConcurrentEvictionWithLimitChurn(t *testing.T) {
	g := randomGraph(7, 200, 500)
	// A budget of ~3 trees forces constant eviction under 8 workers × 16
	// sources.
	small := 3 * sptBytes(&SPT{Parent: make([]int32, g.N()), Dist: make([]int32, g.N()), Order: make([]int32, g.N())})
	c := NewSPTCache(small)

	want := make([]*SPT, 16)
	for s := 0; s < 16; s++ {
		spt, err := g.BFS(s)
		if err != nil {
			t.Fatal(err)
		}
		want[s] = spt
	}

	var wrong atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				src := (w*31 + i) % 16
				spt, err := c.Get(g, src)
				if err != nil {
					t.Error(err)
					return
				}
				// Spot-check a few nodes against the reference tree.
				for _, v := range []int{0, g.N() / 2, g.N() - 1} {
					if spt.Dist[v] != want[src].Dist[v] {
						wrong.Add(1)
					}
				}
				switch i % 75 {
				case 20:
					c.SetLimit(small / 2)
				case 40:
					c.SetLimit(small * 4)
				case 60:
					c.Clear()
				}
			}
		}(w)
	}
	wg.Wait()
	if n := wrong.Load(); n != 0 {
		t.Fatalf("%d stale/corrupt SPT reads under concurrent eviction", n)
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatalf("budget never forced an eviction (stats %+v); the test exercised nothing", st)
	}
	if st.Bytes < 0 || st.Entries < 0 {
		t.Fatalf("negative accounting after the hammer: %+v", st)
	}

	// With a sane budget restored, the cache still converges to steady hits.
	c.SetLimit(small * 16)
	a, err := c.Get(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Get(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("cache no longer memoizes after the eviction hammer")
	}
}

// A non-positive budget degrades the cache to singleflight-only but must
// stay correct and race-free under concurrency.
func TestSPTCacheZeroBudgetConcurrent(t *testing.T) {
	g := randomGraph(11, 120, 240)
	c := NewSPTCache(0)
	ref, err := g.BFS(5)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				spt, err := c.Get(g, 5)
				if err != nil {
					t.Error(err)
					return
				}
				if spt.Dist[g.N()-1] != ref.Dist[g.N()-1] {
					t.Error("zero-budget cache returned a wrong tree")
					return
				}
			}
		}()
	}
	wg.Wait()
	if st := c.Stats(); st.Bytes != 0 {
		t.Fatalf("zero-budget cache retains %d bytes", st.Bytes)
	}
}
