package mcast

import (
	"mtreescale/internal/graph"
)

// This file is the engines' batch source-scheduling path: a sweep's source
// trees are resolved through the multi-source BFS kernel in 64-lane batches
// *before* the worker fan-out, instead of one BFS inside each source job.
// Every kernel produces the same canonical trees, so engaging the batch path
// never changes a result — only how fast the trees appear.

// maxBatchSlabBytes caps the dist+parent slab footprint of one engine-level
// batch (512 MiB). A sweep whose (sources × nodes) footprint exceeds the cap
// falls back to per-source BFS rather than risk doubling a simulation-sized
// heap; results are identical either way.
const maxBatchSlabBytes = 512 << 20

// batchTrees holds a sweep's pre-resolved source trees: lane si of the slab
// is the shortest-path tree of sources[si]. Workers read their lane through
// zero-copy views; the slab is read-only once filled, so distinct workers
// need no synchronization.
type batchTrees struct {
	batch *graph.SPTBatch
}

// resolveBatch resolves a sweep's source trees up front when the protocol
// asks for batch scheduling. Outcomes:
//   - (nil, nil): batch path not engaged — flag off, nothing to batch, or
//     the slab would exceed maxBatchSlabBytes. Workers resolve per source
//     exactly as before.
//   - SPTCache on: graph.SharedSPTs is pre-filled via FillBatch (misses
//     computed in 64-lane MS-BFS groups, inserted under the same keys a
//     per-source fill would use); returns (nil, nil) because the workers'
//     cache Gets now all hit.
//   - SPTCache off: returns a batchTrees over exactly the sources slice;
//     the caller must release() it after the worker pool drains.
func resolveBatch(g *graph.Graph, sources []int, p Protocol) (*batchTrees, error) {
	if !p.BatchBFS || len(sources) == 0 {
		return nil, nil
	}
	if p.SPTCache {
		if err := graph.SharedSPTs.FillBatch(g, sources); err != nil {
			return nil, err
		}
		return nil, nil
	}
	if int64(len(sources))*int64(g.N())*8 > maxBatchSlabBytes {
		return nil, nil
	}
	b := graph.AcquireSPTBatch()
	if err := g.BatchSPTsInto(sources, b); err != nil {
		graph.ReleaseSPTBatch(b)
		return nil, err
	}
	return &batchTrees{batch: b}, nil
}

// view fills t with lane si's zero-copy view of the slab. t.Order is nil —
// the measurement loops only read Dist/Parent/Source.
func (bt *batchTrees) view(si int, t *graph.SPT) { bt.batch.Lane(si, t) }

// release returns the slab to the pool. Nil-safe so engines can defer it
// unconditionally; no lane view may be used afterwards.
func (bt *batchTrees) release() {
	if bt != nil && bt.batch != nil {
		graph.ReleaseSPTBatch(bt.batch)
		bt.batch = nil
	}
}
