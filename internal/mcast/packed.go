package mcast

import (
	"mtreescale/internal/graph"
)

// This file holds the packed-tree fast paths of the measurement loops. An
// SPT stores Dist and Parent as two parallel int32 arrays, so every step of
// a tree climb costs two random loads. The engines instead pack both into
// one int64 word per node,
//
//	pd[v] = int64(Dist[v])<<32 | int64(uint32(Parent[v]))
//
// and the hot loops do one load per step: the distance is pd[v]>>32
// (arithmetic shift, so the -1 of an unreachable node survives — pd[v] < 0
// iff v is unreachable) and the parent is int32(uint32(pd[v])). Packing is
// O(N) once per source and is repaid over NRcvr×GridPoints climbs.
//
// The packed walks compute exactly the integers (links, hop sums, receiver
// counts) of TreeCounter.Measure / Add / SharedTreeSize — same visited-epoch
// scheme, same climb order — so engine results are byte-identical whether or
// not these paths run. They are unconditional: not gated on Protocol.BatchBFS.
//
// Receiver slices come from the Sampler, whose site population is built from
// node IDs in [0, N), so the loops index pd without range guards; the
// unreachable check doubles as the only per-receiver branch.

// packTree packs spt's Dist and Parent into one int64-per-node array,
// reusing dst's storage when large enough.
func packTree(spt *graph.SPT, dst []int64) []int64 {
	n := len(spt.Dist)
	if cap(dst) < n {
		dst = make([]int64, n)
	}
	dst = dst[:n]
	parent := spt.Parent
	for v, d := range spt.Dist {
		dst[v] = int64(d)<<32 | int64(uint32(parent[v]))
	}
	return dst
}

// climb4 marks the ancestor paths of four climb cursors under one epoch and
// returns the number of newly marked nodes (tree links added). A tree climb
// is a loop-carried chain of random loads (v = parent(v)), so a single climb
// runs at L1 load latency; advancing four independent climbs per round keeps
// four loads in flight and hides most of that latency.
//
// Interleaving does not change the integers: each round checks visited before
// marking, so every node is marked (and counted) at most once, and a cursor
// only parks when it reaches a node some climb has already marked — whose
// remaining ancestor path that climb goes on to mark. The final marked set is
// the ancestor-closed union of the cursors' root paths, exactly the set the
// one-at-a-time loop marks. Callers park unused lanes on an already-marked
// node (e.g. the root) to leave them inert.
func climb4(pd []int64, visited []int32, epoch int32, r0, r1, r2, r3 int32) int {
	links := 0
	for {
		live := false
		if visited[r0] != epoch {
			visited[r0] = epoch
			links++
			r0 = int32(uint32(pd[r0]))
			live = true
		}
		if visited[r1] != epoch {
			visited[r1] = epoch
			links++
			r1 = int32(uint32(pd[r1]))
			live = true
		}
		if visited[r2] != epoch {
			visited[r2] = epoch
			links++
			r2 = int32(uint32(pd[r2]))
			live = true
		}
		if visited[r3] != epoch {
			visited[r3] = epoch
			links++
			r3 = int32(uint32(pd[r3]))
			live = true
		}
		if !live {
			return links
		}
	}
}

// measurePacked is the fused packed equivalent of Measure: one pass over the
// receivers computes the delivery-tree size, the unicast hop sum and the
// reachable count together. Receivers are climbed four at a time (climb4);
// the short tail falls back to the one-at-a-time loop.
func (c *TreeCounter) measurePacked(source int32, pd []int64, receivers []int32) Measurement {
	if len(pd) > len(c.visited) {
		c.visited = make([]int32, len(pd))
		c.epoch = 0
	}
	c.epoch++
	epoch, visited := c.epoch, c.visited
	var m Measurement
	visited[source] = epoch
	i, n := 0, len(receivers)
	for ; i+4 <= n; i += 4 {
		r0, r1, r2, r3 := receivers[i], receivers[i+1], receivers[i+2], receivers[i+3]
		w0, w1, w2, w3 := pd[r0], pd[r1], pd[r2], pd[r3]
		// An unreachable receiver parks its lane on the source, which is
		// always marked, so the lane is born inert.
		if w0 < 0 {
			r0 = source
		} else {
			m.UnicastHops += w0 >> 32
			m.Receivers++
		}
		if w1 < 0 {
			r1 = source
		} else {
			m.UnicastHops += w1 >> 32
			m.Receivers++
		}
		if w2 < 0 {
			r2 = source
		} else {
			m.UnicastHops += w2 >> 32
			m.Receivers++
		}
		if w3 < 0 {
			r3 = source
		} else {
			m.UnicastHops += w3 >> 32
			m.Receivers++
		}
		m.Links += climb4(pd, visited, epoch, r0, r1, r2, r3)
	}
	for ; i < n; i++ {
		r := receivers[i]
		w := pd[r]
		if w < 0 {
			continue // unreachable (or the paper's degenerate tiny component)
		}
		m.UnicastHops += w >> 32
		m.Receivers++
		for v := r; visited[v] != epoch; {
			visited[v] = epoch
			m.Links++
			v = int32(uint32(pd[v]))
		}
	}
	return m
}

// treeSizePacked is the packed equivalent of TreeSize, with the same
// four-wide climb as measurePacked.
func (c *TreeCounter) treeSizePacked(source int32, pd []int64, receivers []int32) int {
	if len(pd) > len(c.visited) {
		c.visited = make([]int32, len(pd))
		c.epoch = 0
	}
	c.epoch++
	epoch, visited := c.epoch, c.visited
	links := 0
	visited[source] = epoch
	i, n := 0, len(receivers)
	for ; i+4 <= n; i += 4 {
		r0, r1, r2, r3 := receivers[i], receivers[i+1], receivers[i+2], receivers[i+3]
		if pd[r0] < 0 {
			r0 = source
		}
		if pd[r1] < 0 {
			r1 = source
		}
		if pd[r2] < 0 {
			r2 = source
		}
		if pd[r3] < 0 {
			r3 = source
		}
		links += climb4(pd, visited, epoch, r0, r1, r2, r3)
	}
	for ; i < n; i++ {
		r := receivers[i]
		if pd[r] < 0 {
			continue
		}
		for v := r; visited[v] != epoch; {
			visited[v] = epoch
			links++
			v = int32(uint32(pd[v]))
		}
	}
	return links
}

// sharedTreeSizePacked is the packed equivalent of SharedTreeSize: the
// core-rooted tree is climbed from the group's source and from every
// receiver under one epoch.
func (c *TreeCounter) sharedTreeSizePacked(core int32, pd []int64, source int32, receivers []int32) int {
	if len(pd) > len(c.visited) {
		c.visited = make([]int32, len(pd))
		c.epoch = 0
	}
	c.epoch++
	epoch, visited := c.epoch, c.visited
	links := 0
	visited[core] = epoch
	if source >= 0 && int(source) < len(pd) && pd[source] >= 0 {
		for v := source; visited[v] != epoch; {
			visited[v] = epoch
			links++
			v = int32(uint32(pd[v]))
		}
	}
	i, n := 0, len(receivers)
	for ; i+4 <= n; i += 4 {
		r0, r1, r2, r3 := receivers[i], receivers[i+1], receivers[i+2], receivers[i+3]
		if pd[r0] < 0 {
			r0 = core
		}
		if pd[r1] < 0 {
			r1 = core
		}
		if pd[r2] < 0 {
			r2 = core
		}
		if pd[r3] < 0 {
			r3 = core
		}
		links += climb4(pd, visited, epoch, r0, r1, r2, r3)
	}
	for ; i < n; i++ {
		r := receivers[i]
		if pd[r] < 0 {
			continue
		}
		for v := r; visited[v] != epoch; {
			visited[v] = epoch
			links++
			v = int32(uint32(pd[v]))
		}
	}
	return links
}
