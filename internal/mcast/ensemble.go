package mcast

import (
	"fmt"
	"math"

	"mtreescale/internal/graph"
	"mtreescale/internal/rng"
)

// MeasureEnsemble runs the original Chuang-Sirbu protocol variant the paper
// notes in footnote 4: for generated topologies, [3] additionally averages
// over N_network independent creations of each network. gen must build one
// topology instance from a seed; the protocol then averages MeasureCurve
// results across nNetworks instances, weighting each instance's point by
// its sample count.
func MeasureEnsemble(gen func(seed int64) (*graph.Graph, error), nNetworks int, sizes []int, mode Mode, p Protocol) ([]Point, error) {
	if gen == nil {
		return nil, fmt.Errorf("mcast: nil generator")
	}
	if nNetworks < 1 {
		return nil, fmt.Errorf("mcast: nNetworks must be >= 1, got %d", nNetworks)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	acc := make([]Point, len(sizes))
	for k := range acc {
		acc[k].Size = sizes[k]
	}
	for net := 0; net < nNetworks; net++ {
		g, err := gen(rng.Split(p.Seed, int64(net)))
		if err != nil {
			return nil, fmt.Errorf("mcast: generating network %d: %w", net, err)
		}
		q := p
		q.Seed = rng.Split(p.Seed, int64(1000000+net))
		pts, err := MeasureCurve(g, sizes, mode, q)
		if err != nil {
			return nil, fmt.Errorf("mcast: measuring network %d: %w", net, err)
		}
		for k, pt := range pts {
			w := float64(pt.Samples)
			acc[k].MeanRatio += pt.MeanRatio * w
			acc[k].MeanLinks += pt.MeanLinks * w
			acc[k].MeanUnicast += pt.MeanUnicast * w
			// Pool the per-network standard errors conservatively.
			acc[k].RatioStdErr += pt.RatioStdErr * pt.RatioStdErr * w * w
			acc[k].Samples += pt.Samples
		}
	}
	for k := range acc {
		if acc[k].Samples > 0 {
			n := float64(acc[k].Samples)
			acc[k].MeanRatio /= n
			acc[k].MeanLinks /= n
			acc[k].MeanUnicast /= n
			acc[k].RatioStdErr = sqrtNonNeg(acc[k].RatioStdErr) / n
		}
	}
	return acc, nil
}

func sqrtNonNeg(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}
