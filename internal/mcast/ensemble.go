package mcast

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"mtreescale/internal/graph"
	"mtreescale/internal/rng"
)

// MeasureEnsemble runs the original Chuang-Sirbu protocol variant the paper
// notes in footnote 4: for generated topologies, [3] additionally averages
// over N_network independent creations of each network. gen must build one
// topology instance from a seed; the protocol then averages MeasureCurve
// results across nNetworks instances, weighting each instance's point by
// its sample count.
//
// Networks are generated and measured concurrently — gen must therefore be
// safe to call from multiple goroutines (the standard generators are). The
// protocol's Workers budget is split between the network level and each
// inner MeasureCurve, and the reduction runs in network order, so results
// are deterministic and identical to a sequential run.
func MeasureEnsemble(gen func(seed int64) (*graph.Graph, error), nNetworks int, sizes []int, mode Mode, p Protocol) ([]Point, error) {
	if gen == nil {
		return nil, fmt.Errorf("mcast: nil generator")
	}
	if nNetworks < 1 {
		return nil, fmt.Errorf("mcast: nNetworks must be >= 1, got %d", nNetworks)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	budget := p.Workers
	if budget <= 0 {
		budget = runtime.GOMAXPROCS(0)
	}
	netWorkers := budget
	if netWorkers > nNetworks {
		netWorkers = nNetworks
	}
	inner := budget / netWorkers
	if inner < 1 {
		inner = 1
	}
	perNet := make([][]Point, nNetworks)
	netErrs := make([]error, nNetworks)
	nets := make(chan int, nNetworks)
	for net := 0; net < nNetworks; net++ {
		nets <- net
	}
	close(nets)
	var wg sync.WaitGroup
	for w := 0; w < netWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for net := range nets {
				g, err := gen(rng.Split(p.Seed, int64(net)))
				if err != nil {
					netErrs[net] = fmt.Errorf("mcast: generating network %d: %w", net, err)
					return
				}
				q := p
				q.Seed = rng.Split(p.Seed, int64(1000000+net))
				q.Workers = inner
				// Ensemble networks are transient: caching their SPTs
				// would pin dead topologies in the process-wide cache.
				q.SPTCache = false
				pts, err := MeasureCurve(g, sizes, mode, q)
				if err != nil {
					netErrs[net] = fmt.Errorf("mcast: measuring network %d: %w", net, err)
					return
				}
				perNet[net] = pts
			}
		}()
	}
	wg.Wait()
	for _, err := range netErrs {
		if err != nil {
			return nil, err
		}
	}
	acc := make([]Point, len(sizes))
	for k := range acc {
		acc[k].Size = sizes[k]
	}
	// Weighted reduction in network order: deterministic float result.
	for net := 0; net < nNetworks; net++ {
		for k, pt := range perNet[net] {
			w := float64(pt.Samples)
			acc[k].MeanRatio += pt.MeanRatio * w
			acc[k].MeanLinks += pt.MeanLinks * w
			acc[k].MeanUnicast += pt.MeanUnicast * w
			// Pool the per-network standard errors conservatively.
			acc[k].RatioStdErr += pt.RatioStdErr * pt.RatioStdErr * w * w
			acc[k].Samples += pt.Samples
		}
	}
	for k := range acc {
		if acc[k].Samples > 0 {
			n := float64(acc[k].Samples)
			acc[k].MeanRatio /= n
			acc[k].MeanLinks /= n
			acc[k].MeanUnicast /= n
			acc[k].RatioStdErr = sqrtNonNeg(acc[k].RatioStdErr) / n
		}
	}
	return acc, nil
}

func sqrtNonNeg(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}
