package mcast

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"

	"mtreescale/internal/graph"
	"mtreescale/internal/panicsafe"
	"mtreescale/internal/rng"
)

// MeasureEnsemble runs the original Chuang-Sirbu protocol variant the paper
// notes in footnote 4: for generated topologies, [3] additionally averages
// over N_network independent creations of each network. gen must build one
// topology instance from a seed; the protocol then averages MeasureCurve
// results across nNetworks instances, weighting each instance's point by
// its sample count.
//
// Networks are generated and measured concurrently — gen must therefore be
// safe to call from multiple goroutines (the standard generators are). The
// protocol's Workers budget is split between the network level and each
// inner MeasureCurve, and the reduction runs in network order, so results
// are deterministic and identical to a sequential run.
func MeasureEnsemble(gen func(seed int64) (*graph.Graph, error), nNetworks int, sizes []int, mode Mode, p Protocol) ([]Point, error) {
	return MeasureEnsembleCtx(context.Background(), gen, nNetworks, sizes, mode, p)
}

// MeasureEnsembleCtx is MeasureEnsemble under a cancellation context: the
// network workers observe ctx before each generation and propagate it into
// every inner MeasureCurveCtx, which polls it at grid-point granularity. A
// panic in gen or in a measurement worker surfaces as an error instead of
// killing the process. A nil ctx means Background.
func MeasureEnsembleCtx(ctx context.Context, gen func(seed int64) (*graph.Graph, error), nNetworks int, sizes []int, mode Mode, p Protocol) ([]Point, error) {
	ctx = orBackground(ctx)
	if gen == nil {
		return nil, fmt.Errorf("mcast: nil generator")
	}
	if nNetworks < 1 {
		return nil, fmt.Errorf("mcast: nNetworks must be >= 1, got %d", nNetworks)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	perNet, err := measureEnsembleNets(ctx, gen, 0, nNetworks, sizes, mode, p)
	if err != nil {
		return nil, err
	}
	return reduceEnsemble(sizes, perNet), nil
}

// measureEnsembleNets generates and measures the network instances
// [netLo, netHi) of an ensemble sweep, returning their per-network curves
// indexed net - netLo. Each network's generation and measurement seeds are
// derived from its global index, so an instance's curve is identical however
// the ensemble is split into blocks — the property the cluster layer's
// topology-ensemble sharding rests on.
func measureEnsembleNets(ctx context.Context, gen func(seed int64) (*graph.Graph, error), netLo, netHi int, sizes []int, mode Mode, p Protocol) ([][]Point, error) {
	nNets := netHi - netLo
	budget := p.Workers
	if budget <= 0 {
		budget = runtime.GOMAXPROCS(0)
	}
	netWorkers := budget
	if netWorkers > nNets {
		netWorkers = nNets
	}
	inner := budget / netWorkers
	if inner < 1 {
		inner = 1
	}
	perNet := make([][]Point, nNets)
	netErrs := make([]error, nNets)
	nets := make(chan int, nNets)
	for i := 0; i < nNets; i++ {
		nets <- i
	}
	close(nets)
	var wg sync.WaitGroup
	for w := 0; w < netWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range nets {
				net := netLo + i
				if err := ctx.Err(); err != nil {
					netErrs[i] = err
					return
				}
				err := panicsafe.Do(func() error {
					g, err := gen(rng.Split(p.Seed, int64(net)))
					if err != nil {
						return fmt.Errorf("mcast: generating network %d: %w", net, err)
					}
					q := p
					q.Seed = rng.Split(p.Seed, int64(1000000+net))
					q.Workers = inner
					// Ensemble networks are transient: caching their SPTs
					// would pin dead topologies in the process-wide cache.
					q.SPTCache = false
					pts, err := MeasureCurveCtx(ctx, g, sizes, mode, q)
					if err != nil {
						return fmt.Errorf("mcast: measuring network %d: %w", net, err)
					}
					perNet[i] = pts
					return nil
				})
				if err != nil {
					netErrs[i] = err
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range netErrs {
		if err != nil {
			return nil, err
		}
	}
	return perNet, nil
}

// reduceEnsemble folds per-network curves into one, weighting each network's
// point by its sample count, in network order: the deterministic float
// reduction shared by the full engine and ReduceEnsemblePartials.
func reduceEnsemble(sizes []int, perNet [][]Point) []Point {
	acc := make([]Point, len(sizes))
	for k := range acc {
		acc[k].Size = sizes[k]
	}
	for net := range perNet {
		for k, pt := range perNet[net] {
			w := float64(pt.Samples)
			acc[k].MeanRatio += pt.MeanRatio * w
			acc[k].MeanLinks += pt.MeanLinks * w
			acc[k].MeanUnicast += pt.MeanUnicast * w
			// Pool the per-network standard errors conservatively.
			acc[k].RatioStdErr += pt.RatioStdErr * pt.RatioStdErr * w * w
			acc[k].Samples += pt.Samples
		}
	}
	for k := range acc {
		if acc[k].Samples > 0 {
			n := float64(acc[k].Samples)
			acc[k].MeanRatio /= n
			acc[k].MeanLinks /= n
			acc[k].MeanUnicast /= n
			acc[k].RatioStdErr = sqrtNonNeg(acc[k].RatioStdErr) / n
		}
	}
	return acc
}

func sqrtNonNeg(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}
