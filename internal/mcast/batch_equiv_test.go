package mcast

import (
	"fmt"
	"sync"
	"testing"

	"mtreescale/internal/graph"
)

// Protocol.BatchBFS must be a pure performance lever: the MS-BFS kernel
// produces trees node-for-node identical to per-source BFS, so every engine's
// output with the batch path on must be byte-identical to the serial run —
// at any worker count, with or without the SPT cache.

// batchVariants returns the protocol matrix one engine run is checked over:
// BatchBFS off/on × Workers 1/3. Element 0 is the reference (serial,
// sequential); all others must match it exactly.
func batchVariants(base Protocol) []Protocol {
	var out []Protocol
	for _, batch := range []bool{false, true} {
		for _, workers := range []int{1, 3} {
			p := base
			p.BatchBFS = batch
			p.Workers = workers
			out = append(out, p)
		}
	}
	return out
}

func TestMeasureCurveBatchByteIdentical(t *testing.T) {
	g := randGraph(41, 400, 800)
	sizes := []int{1, 3, 10, 40}
	for _, sptcache := range []bool{false, true} {
		for _, mode := range []Mode{Distinct, WithReplacement} {
			var want []Point
			for _, p := range batchVariants(Protocol{NSource: 12, NRcvr: 8, Seed: 99, SPTCache: sptcache}) {
				graph.SharedSPTs.Clear()
				got, err := MeasureCurve(g, sizes, mode, p)
				if err != nil {
					t.Fatal(err)
				}
				if want == nil {
					want = got
					continue
				}
				for k := range want {
					if got[k] != want[k] {
						t.Fatalf("cache=%v mode=%v %+v: batch %+v != serial %+v",
							sptcache, mode, p, got[k], want[k])
					}
				}
			}
		}
	}
}

func TestMeasureCurveNestedBatchByteIdentical(t *testing.T) {
	g := randGraph(43, 300, 600)
	sizes := []int{2, 5, 20, 20, 64}
	for _, sptcache := range []bool{false, true} {
		var want []Point
		for _, p := range batchVariants(Protocol{NSource: 10, NRcvr: 6, Seed: 7, SPTCache: sptcache}) {
			graph.SharedSPTs.Clear()
			got, err := MeasureCurveNested(g, sizes, Distinct, p)
			if err != nil {
				t.Fatal(err)
			}
			if want == nil {
				want = got
				continue
			}
			for k := range want {
				if got[k] != want[k] {
					t.Fatalf("cache=%v %+v: batch %+v != serial %+v", sptcache, p, got[k], want[k])
				}
			}
		}
	}
}

func TestMeasureSharedCurveBatchByteIdentical(t *testing.T) {
	g := randGraph(47, 350, 700)
	sizes := []int{1, 4, 16}
	for _, strategy := range []CoreStrategy{CoreRandom, CoreSource, CoreCenter} {
		var want []SharedPoint
		for _, p := range batchVariants(Protocol{NSource: 9, NRcvr: 5, Seed: 23}) {
			got, err := MeasureSharedCurve(g, sizes, strategy, p)
			if err != nil {
				t.Fatal(err)
			}
			if want == nil {
				want = got
				continue
			}
			for k := range want {
				if got[k] != want[k] {
					t.Fatalf("%v %+v: batch %+v != serial %+v", strategy, p, got[k], want[k])
				}
			}
		}
	}
}

func TestMeasureEnsembleBatchByteIdentical(t *testing.T) {
	gen := func(seed int64) (*graph.Graph, error) {
		return randGraph(seed, 150, 250), nil
	}
	sizes := []int{1, 5, 25}
	var want []Point
	for _, p := range batchVariants(Protocol{NSource: 7, NRcvr: 4, Seed: 13}) {
		got, err := MeasureEnsemble(gen, 3, sizes, Distinct, p)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
			continue
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("%+v: batch %+v != serial %+v", p, got[k], want[k])
			}
		}
	}
}

// TestMeasureCurveBatchWideSourceCount spans more than one 64-lane MS-BFS
// group, exercising the kernel's group spill inside a real engine run.
func TestMeasureCurveBatchWideSourceCount(t *testing.T) {
	g := randGraph(53, 200, 400)
	sizes := []int{2, 9}
	base := Protocol{NSource: 70, NRcvr: 2, Seed: 3}
	want, err := MeasureCurve(g, sizes, Distinct, base)
	if err != nil {
		t.Fatal(err)
	}
	batched := base
	batched.BatchBFS = true
	got, err := MeasureCurve(g, sizes, Distinct, batched)
	if err != nil {
		t.Fatal(err)
	}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("size %d: batch %+v != serial %+v", sizes[k], got[k], want[k])
		}
	}
}

// TestSPTCacheChurnBatchedAndSerial hammers the process-wide SPT cache from
// batched and serial engines concurrently under a tight byte budget, so
// FillBatch inserts, singleflight Gets and evictions interleave. Every run's
// result must still equal the quiet-cache reference.
func TestSPTCacheChurnBatchedAndSerial(t *testing.T) {
	g := randGraph(59, 300, 600)
	sizes := []int{1, 6, 24}
	base := Protocol{NSource: 10, NRcvr: 4, Seed: 77, SPTCache: true}
	graph.SharedSPTs.Clear()
	want, err := MeasureCurve(g, sizes, Distinct, base)
	if err != nil {
		t.Fatal(err)
	}
	graph.SharedSPTs.Clear()
	prev := graph.SharedSPTs.SetLimit(64 << 10) // force churn
	defer func() {
		graph.SharedSPTs.SetLimit(prev)
		graph.SharedSPTs.Clear()
	}()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		p := base
		p.BatchBFS = i%2 == 0
		p.Workers = 1 + i%3
		wg.Add(1)
		go func(p Protocol) {
			defer wg.Done()
			got, err := MeasureCurve(g, sizes, Distinct, p)
			if err != nil {
				errs <- err
				return
			}
			for k := range want {
				if got[k] != want[k] {
					errs <- &churnMismatch{p: p, got: got[k], want: want[k]}
					return
				}
			}
		}(p)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

type churnMismatch struct {
	p         Protocol
	got, want Point
}

func (m *churnMismatch) Error() string {
	return fmt.Sprintf("churn mismatch under %+v: got %+v, want %+v", m.p, m.got, m.want)
}
