// churn.go implements the dynamic-membership workload on top of DynTree:
// receivers arrive as a Poisson process and stay for a random session, so
// the engine measures the steady-state tree cost L(m̄) the way production
// multicast pays it — as a stream of O(path) join/leave deltas, never as a
// from-scratch rebuild (the push-pull regime of arXiv 1210.3187).
//
// Event model: arrivals are Poisson with rate λ = m̄/E[S], each arrival
// draws a uniform receiver site (the source site excluded, matching the
// static protocol) and a session length S from the configured distribution,
// and departs when the session expires. By Little's law the mean number of
// active sessions settles at λ·E[S] = m̄, so TargetMembers is both the
// configuration knob and the steady-state operating point. The first
// WarmupEvents events fill the tree from empty and are discarded; the next
// Events events are measured with time-weighted averages (each inter-event
// gap dt contributes L·dt), so the reported MeanLinks is the fraction of
// time-integrated tree cost, not a per-event snapshot average.
//
// Everything except EventsPerSec (wall clock) is a pure function of
// (graph, config, protocol): sites, sessions and arrival gaps come from the
// per-source rng.NewChild streams and per-source results reduce in source
// order, exactly like the static engines.
package mcast

import (
	"context"
	"math"
	"sync"
	"time"

	"mtreescale/internal/arena"
	"mtreescale/internal/graph"
	"mtreescale/internal/rng"
	"mtreescale/internal/valid"
)

// SessionDist selects the churn session-length distribution.
type SessionDist int

const (
	// SessionExp draws exponential sessions (memoryless; the M/M/∞ model).
	SessionExp SessionDist = iota
	// SessionPareto draws heavy-tailed Pareto sessions with shape
	// ParetoAlpha (> 1 so the mean exists), scaled to mean MeanSession —
	// the empirically observed session shape in P2P membership traces.
	SessionPareto
	// SessionFixed pins every session to exactly MeanSession.
	SessionFixed
)

// String returns the CLI spelling of the distribution.
func (d SessionDist) String() string {
	switch d {
	case SessionPareto:
		return "pareto"
	case SessionFixed:
		return "fixed"
	default:
		return "exp"
	}
}

// ParseSessionDist parses a -churn-session flag value.
func ParseSessionDist(s string) (SessionDist, error) {
	switch s {
	case "exp", "":
		return SessionExp, nil
	case "pareto":
		return SessionPareto, nil
	case "fixed":
		return SessionFixed, nil
	}
	return 0, valid.Badf("mcast: unknown session distribution %q (want exp, pareto or fixed)", s)
}

// ChurnVariant selects which delivery tree the churn events maintain.
type ChurnVariant int

const (
	// ChurnSPT maintains the paper's source-rooted shortest-path tree.
	ChurnSPT ChurnVariant = iota
	// ChurnShared maintains a core-rooted shared tree (the source joins as
	// a permanent member, receivers graft toward the core).
	ChurnShared
	// ChurnBounded maintains the bounded-node-degree tree of arXiv
	// 0906.0379: grafts respect a per-node degree cap via BFS repair.
	ChurnBounded
)

// String returns the variant's report label.
func (v ChurnVariant) String() string {
	switch v {
	case ChurnShared:
		return "shared"
	case ChurnBounded:
		return "bounded"
	default:
		return "spt"
	}
}

// ChurnConfig parameterizes one churn workload.
type ChurnConfig struct {
	// Variant selects the maintained tree (SPT, shared, bounded-degree).
	Variant ChurnVariant
	// TargetMembers is m̄, the steady-state mean membership.
	TargetMembers int
	// MeanSession is E[S]; 0 defaults to 1 (time units are arbitrary —
	// only the λ·E[S] product is observable).
	MeanSession float64
	// Session is the session-length distribution.
	Session SessionDist
	// ParetoAlpha is the Pareto shape (> 1); 0 defaults to 1.5.
	ParetoAlpha float64
	// DegreeCap bounds tree degrees for ChurnBounded (≥ 2; 0 defaults
	// to 4). Ignored by the other variants.
	DegreeCap int
	// Core places the shared variant's core (default CoreRandom, matching
	// MeasureSharedCurve). Ignored by the other variants.
	Core CoreStrategy
	// WarmupEvents fills the tree from empty before measurement starts;
	// 0 defaults to 10·TargetMembers + 100, comfortably past the ~m̄
	// arrivals needed to reach the operating point.
	WarmupEvents int
	// Events is the measured event count; 0 defaults to 20·TargetMembers
	// + 200.
	Events int
	// SelfCheckEvery > 0 re-verifies the incremental state against a
	// from-scratch rebuild every that many events (DynTree.SelfCheck).
	// Testing hook: O(N) per check, never set on production runs.
	SelfCheckEvery int
}

// withDefaults fills the zero-value knobs.
func (c ChurnConfig) withDefaults() ChurnConfig {
	if c.MeanSession == 0 {
		c.MeanSession = 1
	}
	if c.ParetoAlpha == 0 {
		c.ParetoAlpha = 1.5
	}
	if c.Variant == ChurnBounded && c.DegreeCap == 0 {
		c.DegreeCap = 4
	}
	if c.WarmupEvents == 0 {
		c.WarmupEvents = 10*c.TargetMembers + 100
	}
	if c.Events == 0 {
		c.Events = 20*c.TargetMembers + 200
	}
	return c
}

// Validate checks the configuration. Failures wrap valid.ErrParam.
func (c ChurnConfig) Validate() error {
	if c.Variant < ChurnSPT || c.Variant > ChurnBounded {
		return valid.Badf("mcast: unknown churn variant %d", c.Variant)
	}
	if c.TargetMembers <= 0 {
		return valid.Badf("mcast: churn needs TargetMembers > 0 (got %d)", c.TargetMembers)
	}
	if c.MeanSession < 0 {
		return valid.Badf("mcast: negative mean session %g", c.MeanSession)
	}
	if c.Session < SessionExp || c.Session > SessionFixed {
		return valid.Badf("mcast: unknown session distribution %d", c.Session)
	}
	if c.Session == SessionPareto && c.ParetoAlpha != 0 && c.ParetoAlpha <= 1 {
		return valid.Badf("mcast: Pareto shape %g must exceed 1 for a finite mean session", c.ParetoAlpha)
	}
	if c.DegreeCap != 0 && c.DegreeCap < 2 {
		return valid.Badf("mcast: degree cap %d must be 0 (default) or ≥ 2", c.DegreeCap)
	}
	if c.WarmupEvents < 0 || c.Events < 0 || c.SelfCheckEvery < 0 {
		return valid.Badf("mcast: negative event counts in churn config")
	}
	return nil
}

// ChurnResult aggregates one churn run over the protocol's sources. All
// fields except EventsPerSec are deterministic for a (graph, config,
// protocol) triple.
type ChurnResult struct {
	// Variant echoes the configured tree variant.
	Variant ChurnVariant `json:"variant"`
	// TargetMembers echoes m̄.
	TargetMembers int `json:"target_members"`
	// Sources is the number of source simulations that contributed.
	Sources int `json:"sources"`
	// Events is the total measured event count across sources.
	Events int64 `json:"events"`
	// Joins/Leaves/DupJoins break the measured events down. A DupJoin is
	// an arrival at a site that is already a member (counted in Joins too).
	Joins    int64 `json:"joins"`
	Leaves   int64 `json:"leaves"`
	DupJoins int64 `json:"dup_joins"`
	// MeanLinks is the time-weighted steady-state tree size L(m̄).
	MeanLinks float64 `json:"mean_links"`
	// MeanMembers is the time-weighted distinct membership — the PASTA
	// sanity check that the process actually operates at m̄.
	MeanMembers float64 `json:"mean_members"`
	// MeanRepair is the average number of links grafted or pruned per
	// event — the O(path) repair cost the incremental engine pays where a
	// rebuild would pay O(L).
	MeanRepair float64 `json:"mean_repair"`
	// MaxDegree is the largest tree degree observed anywhere in the run;
	// MeanMaxDegree averages the per-source maxima (degree pressure).
	MaxDegree     int     `json:"max_degree"`
	MeanMaxDegree float64 `json:"mean_max_degree"`
	// Forced counts bounded-variant grafts that had to exceed the cap.
	Forced int64 `json:"forced"`
	// EventsPerSec is the measured per-worker event throughput. Wall
	// clock: excluded from deterministic outputs (experiment figures).
	EventsPerSec float64 `json:"events_per_sec"`
	// Err records ctx.Err() when the run was cancelled mid-churn and the
	// remaining fields are a valid partial report (completed sources plus
	// every measured event of interrupted ones).
	Err string `json:"err,omitempty"`
}

// churnSlot is one source's accumulator. Distinct sources never share a
// slot, so workers need no locking; the reducer walks slots in source order.
type churnSlot struct {
	events, joins, leaves, dups int64
	repair                      int64   // Σ |links grafted or pruned|
	linkTime, memTime, span     float64 // ∫L dt, ∫members dt, Σ dt
	maxDeg                      int
	forced                      int64
	wallSec                     float64
	started                     bool // entered the measured window
}

// churnSim drives one tree through the Poisson join/leave process. It is
// shared by the engine and the BenchmarkChurn* suite so benchmarks measure
// exactly the production event path.
type churnSim struct {
	tree        *DynTree
	r           *rng.Rand
	cfg         ChurnConfig
	n           int
	exclude     int32 // site never drawn as a receiver (-1: none)
	now         float64
	nextArrival float64
	arrivalMean float64
	ht          []float64 // departure min-heap: times …
	hv          []int32   // … and sites
}

// initSim arms the process at t = 0 with an empty tree. Heap storage is
// pre-sized to 2·m̄ (the active-session count concentrates at m̄ by Little's
// law), so the steady-state event path performs no allocation.
func (s *churnSim) initSim(tree *DynTree, r *rng.Rand, cfg ChurnConfig, n int, exclude int32, ar *arena.Arena) {
	s.tree, s.r, s.cfg, s.n, s.exclude = tree, r, cfg, n, exclude
	s.now = 0
	s.arrivalMean = cfg.MeanSession / float64(cfg.TargetMembers)
	s.nextArrival = expDraw(r, s.arrivalMean)
	hint := 2*cfg.TargetMembers + 64
	if ar != nil {
		s.ht = ar.GrowFloat64(s.ht, hint)[:0]
		s.hv = ar.GrowInt32(s.hv, hint)[:0]
	} else {
		if cap(s.ht) < hint {
			s.ht = make([]float64, 0, hint)
			s.hv = make([]int32, 0, hint)
		}
		s.ht, s.hv = s.ht[:0], s.hv[:0]
	}
}

// churnEvent reports what one simulation step did.
type churnEvent struct {
	dt            float64 // time since the previous event
	linksBefore   int     // tree size the system held for dt
	membersBefore int
	delta         int // links grafted (join) or pruned (leave)
	join          bool
	dup           bool
}

// step advances the process by one event: whichever of the next arrival or
// the earliest departure comes first.
func (s *churnSim) step() churnEvent {
	ev := churnEvent{linksBefore: s.tree.Links(), membersBefore: s.tree.Members()}
	if len(s.ht) > 0 && s.ht[0] <= s.nextArrival {
		tm := s.ht[0]
		site := s.hv[0]
		s.popDep()
		ev.dt = tm - s.now
		s.now = tm
		ev.delta = s.tree.Leave(site)
		return ev
	}
	ev.dt = s.nextArrival - s.now
	s.now = s.nextArrival
	site := s.drawSite()
	ev.join = true
	ev.dup = s.tree.MemberCount(site) > 0
	ev.delta = s.tree.Join(site)
	if s.tree.MemberCount(site) > 0 {
		// Reachable (the join registered): this instance departs when its
		// session expires. Unreachable sites never become members and get
		// no departure.
		s.pushDep(s.now+s.sessionDraw(), site)
	}
	s.nextArrival = s.now + expDraw(s.r, s.arrivalMean)
	return ev
}

// drawSite draws a uniform receiver site, skipping the excluded source.
func (s *churnSim) drawSite() int32 {
	if s.exclude < 0 {
		return int32(s.r.Intn(s.n))
	}
	v := int32(s.r.Intn(s.n - 1))
	if v >= s.exclude {
		v++
	}
	return v
}

// sessionDraw draws one session length from the configured distribution.
func (s *churnSim) sessionDraw() float64 {
	switch s.cfg.Session {
	case SessionPareto:
		a := s.cfg.ParetoAlpha
		xm := s.cfg.MeanSession * (a - 1) / a
		return xm * math.Pow(1-s.r.Float64(), -1/a)
	case SessionFixed:
		return s.cfg.MeanSession
	default:
		return expDraw(s.r, s.cfg.MeanSession)
	}
}

// expDraw draws Exp(mean) by inversion. r.Float64 ∈ [0,1) keeps the log
// argument in (0,1].
func expDraw(r *rng.Rand, mean float64) float64 {
	return -mean * math.Log(1-r.Float64())
}

// pushDep pushes a (time, site) departure onto the min-heap.
func (s *churnSim) pushDep(tm float64, site int32) {
	s.ht = append(s.ht, tm)
	s.hv = append(s.hv, site)
	i := len(s.ht) - 1
	for i > 0 {
		p := (i - 1) / 2
		if s.ht[p] <= s.ht[i] {
			break
		}
		s.ht[p], s.ht[i] = s.ht[i], s.ht[p]
		s.hv[p], s.hv[i] = s.hv[i], s.hv[p]
		i = p
	}
}

// popDep removes the earliest departure.
func (s *churnSim) popDep() {
	last := len(s.ht) - 1
	s.ht[0], s.hv[0] = s.ht[last], s.hv[last]
	s.ht, s.hv = s.ht[:last], s.hv[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && s.ht[l] < s.ht[small] {
			small = l
		}
		if r < last && s.ht[r] < s.ht[small] {
			small = r
		}
		if small == i {
			return
		}
		s.ht[i], s.ht[small] = s.ht[small], s.ht[i]
		s.hv[i], s.hv[small] = s.hv[small], s.hv[i]
		i = small
	}
}

// churnScratch is the pooled per-worker state of the churn engine: the BFS
// buffer (or batch lane view), the incremental tree, the departure heap and
// the self-check counter, all recycled through one arena.
type churnScratch struct {
	spt     graph.SPT
	view    graph.SPT // batch lane view; aliases a slab, never fed to BFSInto
	tree    *DynTree
	sim     churnSim
	counter *TreeCounter // lazily sized, self-check path only
	ar      *arena.Arena
}

var churnPool = sync.Pool{New: func() any {
	sc := &churnScratch{ar: arena.New()}
	sc.tree = &DynTree{ar: sc.ar}
	return sc
}}

// prepare resolves the tree root's SPT exactly like the static engines:
// batch lane view, shared cache, or a BFS into pooled scratch.
func (sc *churnScratch) prepare(g *graph.Graph, root, lane int, p Protocol, bt *batchTrees) (*graph.SPT, error) {
	if bt != nil {
		bt.view(lane, &sc.view)
		return &sc.view, nil
	}
	if p.SPTCache {
		return graph.SharedSPTs.Get(g, root)
	}
	if err := g.BFSInto(root, &sc.spt); err != nil {
		return nil, err
	}
	return &sc.spt, nil
}

// MeasureChurn runs the churn workload without cancellation.
func MeasureChurn(g *graph.Graph, cfg ChurnConfig, p Protocol) (*ChurnResult, error) {
	return MeasureChurnCtx(context.Background(), g, cfg, p)
}

// MeasureChurnCtx runs the churn workload over the protocol's NSource
// deterministic source draws (NRcvr is not used — churn replaces the
// receiver-set repetition axis with the event stream). Each source runs an
// independent Poisson join/leave process on its own tree; per-source
// accumulators reduce in source order, so every field except EventsPerSec
// is deterministic for a (graph, config, protocol) triple.
//
// Cancellation follows the grid-point-granularity contract, adapted to
// events: ctx is polled every 64 events, and — unlike the static engines,
// which return nil on cancellation — a cancelled churn run returns BOTH a
// valid partial ChurnResult (completed sources plus every measured event of
// interrupted ones, with Err recording ctx.Err()) AND the ctx error, so
// callers can distinguish a whole report from a truncated one without
// losing the measurements already paid for.
func MeasureChurnCtx(ctx context.Context, g *graph.Graph, cfg ChurnConfig, p Protocol) (*ChurnResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if g.N() < 2 {
		return nil, valid.Badf("mcast: graph too small for churn (N=%d)", g.N())
	}
	cfg = cfg.withDefaults()
	var sources, roots []int
	if cfg.Variant == ChurnShared {
		s, c, err := drawSharedPairs(g, cfg.Core, p)
		if err != nil {
			return nil, err
		}
		sources, roots = s, c
	} else {
		sources = drawSources(g, p)
		roots = sources
	}
	bt, err := resolveBatch(g, roots, p)
	if err != nil {
		return nil, err
	}
	defer bt.release()
	slots := make([]churnSlot, p.NSource)
	runErr := runSourceWorkers(ctx, p, func(si int) error {
		return churnOneSource(ctx, g, cfg, p, si, roots[si], sources[si], bt, &slots[si])
	})
	if runErr != nil && runErr != context.Canceled && runErr != context.DeadlineExceeded {
		return nil, runErr
	}
	res := reduceChurnSlots(cfg, slots)
	if runErr != nil {
		res.Err = runErr.Error()
	}
	return res, runErr
}

// churnOneSource runs one source's event stream, filling slot. On
// cancellation it leaves the measured-so-far sums in the slot and returns
// the ctx error, so the reducer can still fold the partial window in.
func churnOneSource(ctx context.Context, g *graph.Graph, cfg ChurnConfig, p Protocol, si, root, source int, bt *batchTrees, slot *churnSlot) error {
	sc := churnPool.Get().(*churnScratch)
	defer churnPool.Put(sc)
	spt, err := sc.prepare(g, root, si, p, bt)
	if err != nil {
		return err
	}
	degCap := 0
	if cfg.Variant == ChurnBounded {
		degCap = cfg.DegreeCap
	}
	if err := sc.tree.Reset(g, spt, degCap); err != nil {
		return err
	}
	if cfg.Variant == ChurnShared {
		// The source is a permanent member of its core-rooted tree: the
		// measured L includes the source→core branch, matching
		// SharedTreeSize's accounting.
		sc.tree.Join(int32(source))
	}
	if cfg.SelfCheckEvery > 0 && (sc.counter == nil || len(sc.counter.visited) < g.N()) {
		sc.counter = NewTreeCounter(g.N())
	}
	sc.sim.initSim(sc.tree, rng.NewChild(p.Seed, int64(si)), cfg, g.N(), int32(source), sc.ar)
	warm, total := cfg.WarmupEvents, cfg.WarmupEvents+cfg.Events
	var st churnSlot
	var wallStart time.Time
	finish := func() {
		st.maxDeg = sc.tree.MaxDegree()
		st.forced = sc.tree.Forced()
		if st.started {
			st.wallSec = time.Since(wallStart).Seconds()
		}
		*slot = st
	}
	for e := 0; e < total; e++ {
		if e&63 == 0 {
			if err := ctx.Err(); err != nil {
				finish()
				return err
			}
		}
		if e == warm {
			st.started = true
			wallStart = time.Now()
		}
		ev := sc.sim.step()
		if e >= warm {
			st.events++
			st.span += ev.dt
			st.linkTime += float64(ev.linksBefore) * ev.dt
			st.memTime += float64(ev.membersBefore) * ev.dt
			st.repair += int64(ev.delta)
			if ev.join {
				st.joins++
				if ev.dup {
					st.dups++
				}
			} else {
				st.leaves++
			}
		}
		if cfg.SelfCheckEvery > 0 && (e+1)%cfg.SelfCheckEvery == 0 {
			if err := sc.tree.SelfCheck(sc.counter); err != nil {
				return err
			}
		}
	}
	finish()
	return nil
}

// reduceChurnSlots folds the per-source accumulators in source order.
func reduceChurnSlots(cfg ChurnConfig, slots []churnSlot) *ChurnResult {
	res := &ChurnResult{Variant: cfg.Variant, TargetMembers: cfg.TargetMembers}
	var wall, maxSum float64
	for i := range slots {
		st := &slots[i]
		if st.events == 0 && st.span == 0 {
			continue
		}
		res.Sources++
		res.Events += st.events
		res.Joins += st.joins
		res.Leaves += st.leaves
		res.DupJoins += st.dups
		res.MeanLinks += st.linkTime
		res.MeanMembers += st.memTime
		res.MeanRepair += float64(st.repair)
		res.Forced += st.forced
		if st.maxDeg > res.MaxDegree {
			res.MaxDegree = st.maxDeg
		}
		maxSum += float64(st.maxDeg)
		wall += st.wallSec
	}
	var span float64
	for i := range slots {
		span += slots[i].span
	}
	if span > 0 {
		res.MeanLinks /= span
		res.MeanMembers /= span
	} else {
		res.MeanLinks, res.MeanMembers = 0, 0
	}
	if res.Events > 0 {
		res.MeanRepair /= float64(res.Events)
	} else {
		res.MeanRepair = 0
	}
	if res.Sources > 0 {
		res.MeanMaxDegree = maxSum / float64(res.Sources)
	}
	if wall > 0 {
		res.EventsPerSec = float64(res.Events) / wall
	}
	return res
}
