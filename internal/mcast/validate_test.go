package mcast

import (
	"testing"

	"mtreescale/internal/graph"
	"mtreescale/internal/valid"
)

func validateLineGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		if err := b.AddEdge(i, i+1); err != nil {
			panic(err)
		}
	}
	return b.Build()
}

// Every malformed curve argument must be rejected with a typed validation
// error before any sampling starts.
func TestCurveArgValidation(t *testing.T) {
	g := validateLineGraph(8)
	ok := Protocol{NSource: 2, NRcvr: 2, Seed: 1}
	cases := []struct {
		name string
		run  func() error
	}{
		{"zero sources", func() error {
			p := ok
			p.NSource = 0
			_, err := MeasureCurve(g, []int{1}, Distinct, p)
			return err
		}},
		{"negative receivers", func() error {
			p := ok
			p.NRcvr = -5
			_, err := MeasureCurve(g, []int{1}, Distinct, p)
			return err
		}},
		{"negative workers", func() error {
			p := ok
			p.Workers = -1
			_, err := MeasureCurve(g, []int{1}, Distinct, p)
			return err
		}},
		{"empty group-size grid", func() error {
			_, err := MeasureCurve(g, nil, Distinct, ok)
			return err
		}},
		{"zero group size", func() error {
			_, err := MeasureCurve(g, []int{2, 0}, Distinct, ok)
			return err
		}},
		{"negative group size", func() error {
			_, err := MeasureCurve(g, []int{-3}, Distinct, ok)
			return err
		}},
		{"receivers exceed population", func() error {
			// N=8 minus the excluded source leaves 7 candidate sites.
			_, err := MeasureCurve(g, []int{8}, Distinct, ok)
			return err
		}},
		{"unknown mode", func() error {
			_, err := MeasureCurve(g, []int{1}, Mode(42), ok)
			return err
		}},
		{"graph too small", func() error {
			_, err := MeasureCurve(validateLineGraph(1), []int{1}, Distinct, ok)
			return err
		}},
	}
	for _, c := range cases {
		err := c.run()
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !valid.IsParam(err) {
			t.Errorf("%s: error %v does not wrap valid.ErrParam", c.name, err)
		}
	}

	// m == population is legal in distinct mode, and the full call runs.
	if _, err := MeasureCurve(g, []int{1, 7}, Distinct, ok); err != nil {
		t.Fatalf("legal curve rejected: %v", err)
	}
	// With-replacement mode has no population ceiling.
	if _, err := MeasureCurve(g, []int{20}, WithReplacement, ok); err != nil {
		t.Fatalf("with-replacement n>N rejected: %v", err)
	}
}
