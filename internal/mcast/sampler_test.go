package mcast

import (
	"testing"
	"testing/quick"

	"mtreescale/internal/rng"
)

func TestSamplerExcludesSource(t *testing.T) {
	s, err := NewSampler(10, 3, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if s.Population() != 9 {
		t.Fatalf("population = %d", s.Population())
	}
	var buf []int32
	for trial := 0; trial < 100; trial++ {
		buf, err = s.WithReplacement(20, buf)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range buf {
			if v == 3 {
				t.Fatal("excluded site drawn")
			}
		}
	}
}

func TestSamplerIncludeAll(t *testing.T) {
	s, err := NewSampler(5, -1, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if s.Population() != 5 {
		t.Fatalf("population = %d", s.Population())
	}
}

func TestSamplerErrors(t *testing.T) {
	if _, err := NewSampler(0, -1, rng.New(1)); err == nil {
		t.Fatal("n=0 must error")
	}
	if _, err := NewSampler(1, 0, rng.New(1)); err == nil {
		t.Fatal("excluding the only node must error")
	}
	if _, err := NewSiteSampler(nil, rng.New(1)); err == nil {
		t.Fatal("empty site list must error")
	}
	s, _ := NewSampler(5, -1, rng.New(1))
	if _, err := s.WithReplacement(-1, nil); err == nil {
		t.Fatal("negative n must error")
	}
	if _, err := s.Distinct(6, nil); err == nil {
		t.Fatal("m > population must error")
	}
	if _, err := s.Distinct(-1, nil); err == nil {
		t.Fatal("negative m must error")
	}
	if _, err := s.DistinctRejection(6, nil); err == nil {
		t.Fatal("rejection m > population must error")
	}
}

func TestDistinctIsDistinct(t *testing.T) {
	s, _ := NewSampler(50, -1, rng.New(5))
	var buf []int32
	for m := 0; m <= 50; m++ {
		var err error
		buf, err = s.Distinct(m, buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(buf) != m {
			t.Fatalf("m=%d: got %d", m, len(buf))
		}
		seen := map[int32]bool{}
		for _, v := range buf {
			if seen[v] {
				t.Fatalf("m=%d: duplicate %d", m, v)
			}
			if v < 0 || v >= 50 {
				t.Fatalf("m=%d: out of range %d", m, v)
			}
			seen[v] = true
		}
	}
}

func TestDistinctFullPopulation(t *testing.T) {
	s, _ := NewSampler(20, 7, rng.New(3))
	buf, err := s.Distinct(19, nil)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int32]bool{}
	for _, v := range buf {
		seen[v] = true
	}
	if len(seen) != 19 || seen[7] {
		t.Fatalf("full draw wrong: %d distinct, excluded drawn: %v", len(seen), seen[7])
	}
}

func TestDistinctRejectionAgrees(t *testing.T) {
	// Both samplers must produce uniform distinct sets; compare coverage.
	f := func(seed int64, mRaw uint8) bool {
		n := 30
		m := int(mRaw)%n + 1
		s1, _ := NewSampler(n, -1, rng.New(seed))
		s2, _ := NewSampler(n, -1, rng.New(seed+1))
		a, err1 := s1.Distinct(m, nil)
		b, err2 := s2.DistinctRejection(m, nil)
		if err1 != nil || err2 != nil {
			return false
		}
		if len(a) != m || len(b) != m {
			return false
		}
		sa := map[int32]bool{}
		sb := map[int32]bool{}
		for i := range a {
			sa[a[i]] = true
			sb[b[i]] = true
		}
		return len(sa) == m && len(sb) == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDistinctUniformCoverage(t *testing.T) {
	// Each site should be drawn with roughly equal frequency.
	const n, m, trials = 20, 5, 20000
	s, _ := NewSampler(n, -1, rng.New(9))
	counts := make([]int, n)
	var buf []int32
	for trial := 0; trial < trials; trial++ {
		var err error
		buf, err = s.Distinct(m, buf)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range buf {
			counts[v]++
		}
	}
	want := float64(trials*m) / n
	for v, c := range counts {
		if float64(c) < want*0.9 || float64(c) > want*1.1 {
			t.Fatalf("site %d drawn %d times, want ≈ %.0f", v, c, want)
		}
	}
}

func TestWithReplacementLength(t *testing.T) {
	s, _ := NewSampler(10, -1, rng.New(1))
	buf, err := s.WithReplacement(1000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != 1000 {
		t.Fatalf("len = %d", len(buf))
	}
	buf, err = s.WithReplacement(0, buf)
	if err != nil || len(buf) != 0 {
		t.Fatalf("n=0: len=%d err=%v", len(buf), err)
	}
}

func TestSiteSamplerCopiesInput(t *testing.T) {
	sites := []int32{1, 2, 3}
	s, err := NewSiteSampler(sites, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	sites[0] = 99 // mutating the caller slice must not affect the sampler
	buf, _ := s.WithReplacement(100, nil)
	for _, v := range buf {
		if v == 99 {
			t.Fatal("sampler aliased caller slice")
		}
	}
}

func TestPermutationIsDistinct(t *testing.T) {
	s, _ := NewSampler(40, 11, rng.New(6))
	var buf []int32
	for m := 0; m <= s.Population(); m++ {
		var err error
		buf, err = s.Permutation(m, buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(buf) != m {
			t.Fatalf("m=%d: got %d", m, len(buf))
		}
		seen := map[int32]bool{}
		for _, v := range buf {
			if seen[v] || v == 11 || v < 0 || v >= 40 {
				t.Fatalf("m=%d: bad draw %d (dup=%v)", m, v, seen[v])
			}
			seen[v] = true
		}
	}
	if _, err := s.Permutation(s.Population()+1, nil); err == nil {
		t.Fatal("m > population must error")
	}
	if _, err := s.Permutation(-1, nil); err == nil {
		t.Fatal("negative m must error")
	}
}

func TestPermutationPrefixUniform(t *testing.T) {
	// The defining property the nested engine relies on: every prefix of a
	// Permutation draw is a uniform distinct sample. Check the frequency of
	// each site inside the first `prefix` slots.
	const n, prefix, trials = 20, 5, 20000
	s, _ := NewSampler(n, -1, rng.New(10))
	counts := make([]int, n)
	var buf []int32
	for trial := 0; trial < trials; trial++ {
		var err error
		buf, err = s.Permutation(n, buf)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range buf[:prefix] {
			counts[v]++
		}
	}
	want := float64(trials*prefix) / n
	for v, c := range counts {
		if float64(c) < want*0.9 || float64(c) > want*1.1 {
			t.Fatalf("site %d in prefix %d times, want ≈ %.0f", v, c, want)
		}
	}
}

func TestSamplerReset(t *testing.T) {
	s, err := NewSampler(10, 2, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Reset(6, 0, rng.New(2)); err != nil {
		t.Fatal(err)
	}
	if s.Population() != 5 {
		t.Fatalf("population after reset = %d", s.Population())
	}
	buf, err := s.Permutation(5, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range buf {
		if v == 0 || v >= 6 {
			t.Fatalf("reset population leaked site %d", v)
		}
	}
	if err := s.Reset(0, -1, rng.New(1)); err == nil {
		t.Fatal("n=0 reset must error")
	}
	if err := s.Reset(1, 0, rng.New(1)); err == nil {
		t.Fatal("empty reset population must error")
	}
	if err := s.Reset(5, -1, nil); err == nil {
		t.Fatal("nil source must error")
	}
}

func TestSamplerDrawsDoNotAllocate(t *testing.T) {
	// The epoch-stamped scratch set means steady-state draws are
	// allocation-free on every path (Floyd, Fisher-Yates, permutation,
	// rejection).
	s, _ := NewSampler(1000, -1, rng.New(4))
	buf := make([]int32, 0, 1000)
	warm := func(f func()) float64 {
		f() // grow scratch once
		return testing.AllocsPerRun(20, f)
	}
	if n := warm(func() { buf, _ = s.Distinct(10, buf) }); n != 0 {
		t.Fatalf("Floyd path allocates %.1f/op", n)
	}
	if n := warm(func() { buf, _ = s.Distinct(900, buf) }); n != 0 {
		t.Fatalf("Fisher-Yates path allocates %.1f/op", n)
	}
	if n := warm(func() { buf, _ = s.Permutation(500, buf) }); n != 0 {
		t.Fatalf("Permutation allocates %.1f/op", n)
	}
	if n := warm(func() { buf, _ = s.DistinctRejection(10, buf) }); n != 0 {
		t.Fatalf("DistinctRejection allocates %.1f/op", n)
	}
	if n := warm(func() { buf, _ = s.WithReplacement(100, buf) }); n != 0 {
		t.Fatalf("WithReplacement allocates %.1f/op", n)
	}
}

func TestLogSpacedSizes(t *testing.T) {
	sizes := LogSpacedSizes(1000, 10)
	if len(sizes) == 0 || sizes[0] != 1 || sizes[len(sizes)-1] != 1000 {
		t.Fatalf("sizes = %v", sizes)
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] <= sizes[i-1] {
			t.Fatalf("not strictly increasing: %v", sizes)
		}
	}
	if got := LogSpacedSizes(5, 100); len(got) != 5 {
		t.Fatalf("clamped sizes = %v", got)
	}
	if got := LogSpacedSizes(0, 5); got != nil {
		t.Fatalf("max=0 must be nil, got %v", got)
	}
	if got := LogSpacedSizes(7, 1); len(got) != 1 || got[0] != 7 {
		t.Fatalf("count=1: %v", got)
	}
}
