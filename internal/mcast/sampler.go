package mcast

import (
	"fmt"
	"math"

	"mtreescale/internal/arena"
	"mtreescale/internal/rng"
)

// Sampler draws receiver sets from a site population. The population is
// either all nodes of a graph except the source (the paper's general-network
// experiments) or the leaves of a k-ary tree (§3).
//
// All scratch state (the distinct-draw shuffle buffer and the epoch-stamped
// membership marks) is reused across draws and across Reset calls, so a
// long-lived Sampler allocates nothing on the hot path. A Sampler is not
// safe for concurrent use.
type Sampler struct {
	r rng.Source
	// rr is r when it is a concrete *rng.Rand (every production stream is):
	// the hot draw loops use it for static dispatch and an inlined bounded
	// draw. nil when a test supplies a scripted Source.
	rr *rng.Rand
	// sites is the population to draw from.
	sites []int32
	// buf is scratch for the Fisher-Yates distinct path.
	buf []int32
	// draws is scratch for the bulk-drawn index sequences of the Floyd and
	// with-replacement paths.
	draws []int32
	// mark implements an O(1)-clear scratch set over site indices:
	// mark[i] == epoch means index i is stamped for the current draw.
	mark  []int32
	epoch int32
	// ar, when set (the pooled worker scratch wires it), backs the scratch
	// arrays with recycled slabs so resizing across graph scales allocates
	// nothing; nil falls back to make.
	ar *arena.Arena
}

// growScratch returns a length-n scratch slice, recycling buf's storage
// through the arena when one is attached. Contents are NOT preserved and the
// new tail is NOT zeroed.
func (s *Sampler) growScratch(buf []int32, n int) []int32 {
	if cap(buf) >= n {
		return buf[:n]
	}
	if s.ar != nil {
		s.ar.PutInt32(buf)
		return s.ar.Int32(n)
	}
	return make([]int32, n)
}

// NewSampler builds a sampler over the population {0..n-1} \ {exclude}.
// Pass exclude < 0 to include every node.
func NewSampler(n int, exclude int, r rng.Source) (*Sampler, error) {
	s := &Sampler{}
	if err := s.Reset(n, exclude, r); err != nil {
		return nil, err
	}
	return s, nil
}

// Reset repopulates the sampler over {0..n-1} \ {exclude} with a new random
// stream, reusing all internal scratch storage. It lets one Sampler serve
// many (source, stream) pairs without per-source allocation.
func (s *Sampler) Reset(n int, exclude int, r rng.Source) error {
	if n <= 0 {
		return fmt.Errorf("mcast: sampler needs n > 0, got %d", n)
	}
	if r == nil {
		return fmt.Errorf("mcast: sampler needs a random source")
	}
	s.r = r
	s.rr, _ = r.(*rng.Rand)
	s.sites = s.growScratch(s.sites, n)[:0]
	for v := 0; v < n; v++ {
		if v != exclude {
			s.sites = append(s.sites, int32(v))
		}
	}
	if len(s.sites) == 0 {
		return fmt.Errorf("mcast: empty site population")
	}
	return nil
}

// NewSiteSampler builds a sampler over an explicit site list (e.g. the
// leaves of a k-ary tree).
func NewSiteSampler(sites []int32, r rng.Source) (*Sampler, error) {
	if len(sites) == 0 {
		return nil, fmt.Errorf("mcast: empty site population")
	}
	rr, _ := r.(*rng.Rand)
	return &Sampler{r: r, rr: rr, sites: append([]int32(nil), sites...)}, nil
}

// Population returns the number of candidate sites (the paper's M).
func (s *Sampler) Population() int { return len(s.sites) }

// stamp starts a new draw epoch, growing the mark array to the current
// population if needed. Clearing the set is an integer increment; the array
// is only re-zeroed on the (practically unreachable) epoch wrap.
func (s *Sampler) stamp() {
	M := len(s.sites)
	if len(s.mark) < M {
		// Arena-recycled memory is dirty; the epoch scheme needs a known
		// baseline, so clear on (re)growth and restart the epochs.
		s.mark = s.growScratch(s.mark, M)
		clear(s.mark)
		s.epoch = 0
	}
	if s.epoch == math.MaxInt32 {
		for i := range s.mark {
			s.mark[i] = 0
		}
		s.epoch = 0
	}
	s.epoch++
}

// WithReplacement draws n sites uniformly with replacement (the paper's
// L̄(n) protocol) into dst, growing it as needed, and returns it.
func (s *Sampler) WithReplacement(n int, dst []int32) ([]int32, error) {
	if n < 0 {
		return nil, fmt.Errorf("mcast: negative sample size %d", n)
	}
	dst = dst[:0]
	if rr, sites := s.rr, s.sites; rr != nil {
		// Bulk-draw the site indices (identical to n Intn draws), then gather.
		s.draws = s.growScratch(s.draws, n)
		draws := s.draws
		rr.FillIntn(len(sites), draws)
		for _, t := range draws {
			dst = append(dst, sites[t])
		}
		return dst, nil
	}
	for i := 0; i < n; i++ {
		dst = append(dst, s.sites[s.r.Intn(len(s.sites))])
	}
	return dst, nil
}

// Distinct draws m distinct sites uniformly (the paper's L(m) protocol) into
// dst and returns it. It errors when m exceeds the population.
//
// For small m it uses Floyd's algorithm (O(m) expected); once m approaches
// the population size it switches to a partial Fisher-Yates shuffle, which
// is O(population) but has no rejection blow-up.
func (s *Sampler) Distinct(m int, dst []int32) ([]int32, error) {
	M := len(s.sites)
	if m < 0 || m > M {
		return nil, fmt.Errorf("mcast: cannot draw %d distinct sites from %d", m, M)
	}
	dst = dst[:0]
	if m == 0 {
		return dst, nil
	}
	if m*4 >= M {
		// Partial Fisher-Yates over a scratch copy.
		s.buf = s.growScratch(s.buf, M)
		copy(s.buf, s.sites)
		buf := s.buf
		if rr := s.rr; rr != nil {
			rr.PermPrefix32(buf, m)
			return append(dst, buf[:m]...), nil
		}
		for i := 0; i < m; i++ {
			j := i + s.r.Intn(M-i)
			buf[i], buf[j] = buf[j], buf[i]
			dst = append(dst, buf[i])
		}
		return dst, nil
	}
	// Floyd's sampling: for j = M-m .. M-1 pick t in [0..j]; take t unless
	// already taken, else take j. The "taken" set is the epoch-stamped mark
	// array, so the draw allocates nothing.
	s.stamp()
	if rr := s.rr; rr != nil {
		// Bulk-draw Floyd's index sequence (identical to the Intn(j+1) loop),
		// then run the membership logic over the drawn indices.
		s.draws = s.growScratch(s.draws, m)
		draws := s.draws
		rr.FillBounded(M-m, draws)
		mark, epoch, sites := s.mark, s.epoch, s.sites
		for k, pick := range draws {
			if mark[pick] == epoch {
				pick = int32(M - m + k)
			}
			mark[pick] = epoch
			dst = append(dst, sites[pick])
		}
		return dst, nil
	}
	for j := M - m; j < M; j++ {
		t := int32(s.r.Intn(j + 1))
		pick := t
		if s.mark[pick] == s.epoch {
			pick = int32(j)
		}
		s.mark[pick] = s.epoch
		dst = append(dst, s.sites[pick])
	}
	return dst, nil
}

// Permutation draws m distinct sites in uniform random order: every prefix
// of the result is itself a uniform distinct sample of its length. This is
// the draw the nested-growth engine consumes — one Permutation(maxM) yields
// valid L(m) samples for every m ≤ maxM at once.
//
// It runs a partial Fisher-Yates directly on the site array in O(m), no
// copies or membership bookkeeping. The shuffle is destructive — sites is
// left reordered — which is safe because every draw method is uniform over
// the population regardless of its storage order, and a shuffled population
// is still the same population.
func (s *Sampler) Permutation(m int, dst []int32) ([]int32, error) {
	sites := s.sites
	M := len(sites)
	if m < 0 || m > M {
		return nil, fmt.Errorf("mcast: cannot draw %d distinct sites from %d", m, M)
	}
	dst = dst[:0]
	if rr := s.rr; rr != nil {
		rr.PermPrefix32(sites, m)
		return append(dst, sites[:m]...), nil
	}
	r := s.r
	for i := 0; i < m; i++ {
		j := i + r.Intn(M-i)
		sites[i], sites[j] = sites[j], sites[i]
		dst = append(dst, sites[i])
	}
	return dst, nil
}

// DistinctRejection draws m distinct sites by rejection resampling. Kept as
// the reference implementation for tests and the sampling ablation; Distinct
// is the production path.
func (s *Sampler) DistinctRejection(m int, dst []int32) ([]int32, error) {
	M := len(s.sites)
	if m < 0 || m > M {
		return nil, fmt.Errorf("mcast: cannot draw %d distinct sites from %d", m, M)
	}
	s.stamp()
	dst = dst[:0]
	for len(dst) < m {
		idx := s.r.Intn(M)
		if s.mark[idx] != s.epoch {
			s.mark[idx] = s.epoch
			dst = append(dst, s.sites[idx])
		}
	}
	return dst, nil
}
