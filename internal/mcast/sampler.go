package mcast

import (
	"fmt"

	"mtreescale/internal/rng"
)

// Sampler draws receiver sets from a site population. The population is
// either all nodes of a graph except the source (the paper's general-network
// experiments) or the leaves of a k-ary tree (§3).
type Sampler struct {
	r rng.Source
	// sites is the population to draw from.
	sites []int32
	// scratch for distinct sampling
	buf []int32
}

// NewSampler builds a sampler over the population {0..n-1} \ {exclude}.
// Pass exclude < 0 to include every node.
func NewSampler(n int, exclude int, r rng.Source) (*Sampler, error) {
	if n <= 0 {
		return nil, fmt.Errorf("mcast: sampler needs n > 0, got %d", n)
	}
	sites := make([]int32, 0, n)
	for v := 0; v < n; v++ {
		if v != exclude {
			sites = append(sites, int32(v))
		}
	}
	if len(sites) == 0 {
		return nil, fmt.Errorf("mcast: empty site population")
	}
	return &Sampler{r: r, sites: sites}, nil
}

// NewSiteSampler builds a sampler over an explicit site list (e.g. the
// leaves of a k-ary tree).
func NewSiteSampler(sites []int32, r rng.Source) (*Sampler, error) {
	if len(sites) == 0 {
		return nil, fmt.Errorf("mcast: empty site population")
	}
	return &Sampler{r: r, sites: append([]int32(nil), sites...)}, nil
}

// Population returns the number of candidate sites (the paper's M).
func (s *Sampler) Population() int { return len(s.sites) }

// WithReplacement draws n sites uniformly with replacement (the paper's
// L̄(n) protocol) into dst, growing it as needed, and returns it.
func (s *Sampler) WithReplacement(n int, dst []int32) ([]int32, error) {
	if n < 0 {
		return nil, fmt.Errorf("mcast: negative sample size %d", n)
	}
	dst = dst[:0]
	for i := 0; i < n; i++ {
		dst = append(dst, s.sites[s.r.Intn(len(s.sites))])
	}
	return dst, nil
}

// Distinct draws m distinct sites uniformly (the paper's L(m) protocol) into
// dst and returns it. It errors when m exceeds the population.
//
// For small m it uses Floyd's algorithm (O(m) expected); once m approaches
// the population size it switches to a partial Fisher-Yates shuffle, which
// is O(population) but has no rejection blow-up.
func (s *Sampler) Distinct(m int, dst []int32) ([]int32, error) {
	M := len(s.sites)
	if m < 0 || m > M {
		return nil, fmt.Errorf("mcast: cannot draw %d distinct sites from %d", m, M)
	}
	dst = dst[:0]
	if m == 0 {
		return dst, nil
	}
	if m*4 >= M {
		// Partial Fisher-Yates over a scratch copy.
		if cap(s.buf) < M {
			s.buf = make([]int32, M)
		}
		s.buf = s.buf[:M]
		copy(s.buf, s.sites)
		for i := 0; i < m; i++ {
			j := i + s.r.Intn(M-i)
			s.buf[i], s.buf[j] = s.buf[j], s.buf[i]
			dst = append(dst, s.buf[i])
		}
		return dst, nil
	}
	// Floyd's sampling: for j = M-m .. M-1 pick t in [0..j]; take t unless
	// already taken, else take j. Uses a small set.
	seen := make(map[int32]bool, m)
	for j := M - m; j < M; j++ {
		t := int32(s.r.Intn(j + 1))
		pick := t
		if seen[pick] {
			pick = int32(j)
		}
		seen[pick] = true
		dst = append(dst, s.sites[pick])
	}
	return dst, nil
}

// DistinctRejection draws m distinct sites by rejection resampling. Kept as
// the reference implementation for tests and the sampling ablation; Distinct
// is the production path.
func (s *Sampler) DistinctRejection(m int, dst []int32) ([]int32, error) {
	M := len(s.sites)
	if m < 0 || m > M {
		return nil, fmt.Errorf("mcast: cannot draw %d distinct sites from %d", m, M)
	}
	seen := make(map[int32]bool, m)
	dst = dst[:0]
	for len(dst) < m {
		c := s.sites[s.r.Intn(M)]
		if !seen[c] {
			seen[c] = true
			dst = append(dst, c)
		}
	}
	return dst, nil
}
