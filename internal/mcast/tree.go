// Package mcast implements the paper's multicast measurement engine: given a
// topology and a source, it builds source-rooted shortest-path delivery
// trees for random receiver sets and measures the tree size L(m), the
// unicast path-length sum, and the normalized ratio the paper plots.
//
// Terminology follows the paper exactly:
//
//   - m: the number of *distinct* receiver sites.
//   - n: the number of receiver choices when receivers are drawn with
//     replacement (not necessarily distinct sites).
//   - L(m), L̄(n): the number of links in the delivery tree.
//   - ū: the average unicast hop count from source to the receivers.
package mcast

import (
	"fmt"

	"mtreescale/internal/graph"
)

// TreeCounter measures delivery-tree sizes against a fixed shortest-path
// tree. It keeps reusable scratch state so repeated measurements allocate
// nothing; it is not safe for concurrent use.
type TreeCounter struct {
	epoch   int32
	visited []int32 // visited[v] == epoch means v is already in this tree
}

// NewTreeCounter returns a counter for graphs of at most n nodes.
func NewTreeCounter(n int) *TreeCounter {
	return &TreeCounter{visited: make([]int32, n)}
}

// TreeSize returns the number of links in the delivery tree induced by the
// given receivers on the shortest-path tree spt: the union of the tree paths
// from the source to every reachable receiver. Duplicate receivers are fine
// (they add no links). Unreachable receivers are ignored — the paper's
// topologies are connected, so this only matters for synthetic edge cases.
//
// The algorithm climbs from each receiver toward the source, stopping at the
// first node already in the tree, so total cost is O(L) for the whole set —
// each tree link is visited exactly once.
func (c *TreeCounter) TreeSize(spt *graph.SPT, receivers []int32) int {
	if len(spt.Parent) > len(c.visited) {
		c.visited = make([]int32, len(spt.Parent))
		c.epoch = 0
	}
	c.epoch++
	links := 0
	c.visited[spt.Source] = c.epoch
	for _, r := range receivers {
		v := r
		if v < 0 || int(v) >= len(spt.Parent) || spt.Dist[v] == graph.Unreachable {
			continue
		}
		for c.visited[v] != c.epoch {
			c.visited[v] = c.epoch
			links++
			v = spt.Parent[v]
		}
	}
	return links
}

// Begin starts an incremental tree measurement: subsequent Add calls grow
// one delivery tree receiver by receiver. It invalidates any in-progress
// incremental measurement.
func (c *TreeCounter) Begin(spt *graph.SPT) {
	if len(spt.Parent) > len(c.visited) {
		c.visited = make([]int32, len(spt.Parent))
		c.epoch = 0
	}
	c.epoch++
	c.visited[spt.Source] = c.epoch
}

// Add joins one receiver to the tree started by Begin and returns the
// number of new links its path contributes (the paper's ΔL). Duplicate or
// unreachable receivers contribute 0.
func (c *TreeCounter) Add(spt *graph.SPT, r int32) int {
	if r < 0 || int(r) >= len(spt.Parent) || spt.Dist[r] == graph.Unreachable {
		return 0
	}
	links := 0
	for v := r; c.visited[v] != c.epoch; {
		c.visited[v] = c.epoch
		links++
		v = spt.Parent[v]
	}
	return links
}

// TreeSizeSlow recomputes the delivery-tree size with an explicit edge-set
// union. It exists as the reference implementation for tests and for the
// counting ablation benchmark; production code uses TreeSize.
func TreeSizeSlow(spt *graph.SPT, receivers []int32) int {
	type edge struct{ a, b int32 }
	edges := make(map[edge]bool)
	for _, r := range receivers {
		v := r
		if v < 0 || int(v) >= len(spt.Parent) || spt.Dist[v] == graph.Unreachable {
			continue
		}
		for int(v) != spt.Source {
			p := spt.Parent[v]
			a, b := v, p
			if a > b {
				a, b = b, a
			}
			edges[edge{a, b}] = true
			v = p
		}
	}
	return len(edges)
}

// UnicastSum returns the total unicast hop count from the source to every
// receiver (duplicates counted each time, matching the paper's "sum of the
// unicast paths"), and the number of reachable receivers.
func UnicastSum(spt *graph.SPT, receivers []int32) (hops int64, reachable int) {
	for _, r := range receivers {
		if r < 0 || int(r) >= len(spt.Dist) || spt.Dist[r] == graph.Unreachable {
			continue
		}
		hops += int64(spt.Dist[r])
		reachable++
	}
	return hops, reachable
}

// Measurement is one delivery-tree observation.
type Measurement struct {
	// Links is the delivery-tree size L.
	Links int
	// UnicastHops is the sum of source→receiver shortest-path hop counts.
	UnicastHops int64
	// Receivers is the number of reachable receivers measured.
	Receivers int
}

// AvgUnicast returns the average unicast path length ū for this sample.
func (m Measurement) AvgUnicast() float64 {
	if m.Receivers == 0 {
		return 0
	}
	return float64(m.UnicastHops) / float64(m.Receivers)
}

// Ratio returns L/ū, the paper's normalized tree size (the quantity whose
// scaling with m is the Chuang-Sirbu law). Zero when no receiver was
// reachable.
func (m Measurement) Ratio() float64 {
	u := m.AvgUnicast()
	if u == 0 {
		return 0
	}
	return float64(m.Links) / u
}

// Measure performs one observation of the given receiver set.
func (c *TreeCounter) Measure(spt *graph.SPT, receivers []int32) Measurement {
	links := c.TreeSize(spt, receivers)
	hops, reachable := UnicastSum(spt, receivers)
	return Measurement{Links: links, UnicastHops: hops, Receivers: reachable}
}

// Validate cross-checks a measurement against the structural bounds that
// must hold for any delivery tree: max path ≤ L ≤ min(Σ unicast, N-1).
func (m Measurement) Validate(spt *graph.SPT) error {
	if m.Links < 0 {
		return fmt.Errorf("mcast: negative tree size %d", m.Links)
	}
	if int64(m.Links) > m.UnicastHops {
		return fmt.Errorf("mcast: tree size %d exceeds unicast sum %d", m.Links, m.UnicastHops)
	}
	if m.Links > len(spt.Parent)-1 {
		return fmt.Errorf("mcast: tree size %d exceeds N-1", m.Links)
	}
	return nil
}
