package mcast

import (
	"testing"

	"mtreescale/internal/graph"
)

// The compressed CSR layout must be a pure storage lever: every engine's
// output over a compressed (and degree-relabeled) graph must be byte-identical
// to the flat-layout run — serial or batched, at any worker count. Together
// with batch_equiv_test.go this pins the full knob matrix the CLIs expose.

// layoutVariants returns the same logical graph in its three storage layouts.
// Element 0 is the flat reference.
func layoutVariants(t *testing.T, g *graph.Graph) map[string]*graph.Graph {
	t.Helper()
	comp, err := g.Compress(false)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := g.Compress(true)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*graph.Graph{"compressed": comp, "relabeled": rel}
}

func TestMeasureCurveCompressedByteIdentical(t *testing.T) {
	g := randGraph(61, 400, 800)
	sizes := []int{1, 3, 10, 40}
	for _, mode := range []Mode{Distinct, WithReplacement} {
		base := Protocol{NSource: 12, NRcvr: 8, Seed: 99}
		graph.SharedSPTs.Clear()
		want, err := MeasureCurve(g, sizes, mode, base)
		if err != nil {
			t.Fatal(err)
		}
		for name, cg := range layoutVariants(t, g) {
			for _, p := range batchVariants(base) {
				graph.SharedSPTs.Clear()
				got, err := MeasureCurve(cg, sizes, mode, p)
				if err != nil {
					t.Fatal(err)
				}
				for k := range want {
					if got[k] != want[k] {
						t.Fatalf("%s mode=%v %+v: %+v != flat %+v", name, mode, p, got[k], want[k])
					}
				}
			}
		}
	}
}

func TestMeasureCurveNestedCompressedByteIdentical(t *testing.T) {
	g := randGraph(67, 300, 600)
	sizes := []int{2, 5, 20, 64}
	base := Protocol{NSource: 10, NRcvr: 6, Seed: 7, SPTCache: true}
	graph.SharedSPTs.Clear()
	want, err := MeasureCurveNested(g, sizes, Distinct, base)
	if err != nil {
		t.Fatal(err)
	}
	for name, cg := range layoutVariants(t, g) {
		for _, p := range batchVariants(base) {
			graph.SharedSPTs.Clear()
			got, err := MeasureCurveNested(cg, sizes, Distinct, p)
			if err != nil {
				t.Fatal(err)
			}
			for k := range want {
				if got[k] != want[k] {
					t.Fatalf("%s %+v: %+v != flat %+v", name, p, got[k], want[k])
				}
			}
		}
	}
}

func TestMeasureSharedCurveCompressedByteIdentical(t *testing.T) {
	g := randGraph(71, 350, 700)
	sizes := []int{1, 4, 16}
	for _, strategy := range []CoreStrategy{CoreRandom, CoreSource, CoreCenter} {
		base := Protocol{NSource: 9, NRcvr: 5, Seed: 23}
		want, err := MeasureSharedCurve(g, sizes, strategy, base)
		if err != nil {
			t.Fatal(err)
		}
		for name, cg := range layoutVariants(t, g) {
			for _, p := range batchVariants(base) {
				got, err := MeasureSharedCurve(cg, sizes, strategy, p)
				if err != nil {
					t.Fatal(err)
				}
				for k := range want {
					if got[k] != want[k] {
						t.Fatalf("%s %v %+v: %+v != flat %+v", name, strategy, p, got[k], want[k])
					}
				}
			}
		}
	}
}
