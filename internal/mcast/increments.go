package mcast

import (
	"fmt"

	"mtreescale/internal/graph"
	"mtreescale/internal/rng"
)

// Increments is the empirical counterpart of the paper's §3 derivative
// analysis: E[ΔL(j)] — the expected number of links the j-th receiver adds
// to the delivery tree — measured by growing receiver sets one site at a
// time.
type Increments struct {
	// Delta[j] = E[L(j+1) − L(j)] for j = 0..len-1 (Delta[0] is the first
	// receiver's path length).
	Delta []float64
	// Samples is the number of growth sequences averaged.
	Samples int
}

// Delta2 returns the second difference Δ²L(j) = ΔL(j+1) − ΔL(j), the
// quantity Equations 6-12 analyze. Its length is len(Delta)-1.
func (inc *Increments) Delta2() []float64 {
	if len(inc.Delta) < 2 {
		return nil
	}
	out := make([]float64, len(inc.Delta)-1)
	for j := range out {
		out[j] = inc.Delta[j+1] - inc.Delta[j]
	}
	return out
}

// CumulativeL returns L̄(j) for j = 0..len(Delta): the running sum of the
// increments (L(0) = 0).
func (inc *Increments) CumulativeL() []float64 {
	out := make([]float64, len(inc.Delta)+1)
	for j, d := range inc.Delta {
		out[j+1] = out[j] + d
	}
	return out
}

// MeasureIncrements grows maxM-receiver groups one uniformly-drawn distinct
// site at a time and records the mean link increment at each step, averaged
// over the protocol's sources and repetitions. Receivers exclude the source.
func MeasureIncrements(g *graph.Graph, maxM int, p Protocol) (*Increments, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if g.N() < 2 {
		return nil, fmt.Errorf("mcast: graph too small (N=%d)", g.N())
	}
	if maxM < 1 || maxM > g.N()-1 {
		return nil, fmt.Errorf("mcast: maxM %d out of [1, %d]", maxM, g.N()-1)
	}
	inc := &Increments{Delta: make([]float64, maxM)}
	srcRand := rng.NewChild(p.Seed, -1)
	counter := NewTreeCounter(g.N())
	var sptBuf graph.SPT
	var order []int32
	for si := 0; si < p.NSource; si++ {
		source := srcRand.Intn(g.N())
		spt := &sptBuf
		if p.SPTCache {
			cached, err := graph.SharedSPTs.Get(g, source)
			if err != nil {
				return nil, err
			}
			spt = cached
		} else if err := g.BFSInto(source, &sptBuf); err != nil {
			return nil, err
		}
		smp, err := NewSampler(g.N(), source, rng.NewChild(p.Seed, int64(si)))
		if err != nil {
			return nil, err
		}
		for rep := 0; rep < p.NRcvr; rep++ {
			order, err = smp.Distinct(maxM, order)
			if err != nil {
				return nil, err
			}
			counter.Begin(spt)
			for j := 0; j < maxM; j++ {
				inc.Delta[j] += float64(counter.Add(spt, order[j]))
			}
			inc.Samples++
		}
	}
	if inc.Samples > 0 {
		for j := range inc.Delta {
			inc.Delta[j] /= float64(inc.Samples)
		}
	}
	return inc, nil
}
