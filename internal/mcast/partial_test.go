package mcast

import (
	"encoding/json"
	"fmt"
	"testing"

	"mtreescale/internal/graph"
	"mtreescale/internal/topology"
)

// splitBlocks cuts [0, n) into the given contiguous blocks expressed as
// boundary offsets (0 and n implied).
func splitBlocks(n int, bounds ...int) [][2]int {
	edges := append([]int{0}, bounds...)
	edges = append(edges, n)
	out := make([][2]int, 0, len(edges)-1)
	for i := 0; i+1 < len(edges); i++ {
		out = append(out, [2]int{edges[i], edges[i+1]})
	}
	return out
}

// TestCurvePartialsByteIdentical is the cluster layer's core contract: a
// curve sweep split into source blocks, measured blockwise, and merged must
// equal the unsharded sweep EXACTLY — every float bit — across engine
// configurations and block shapes, with worker counts deliberately skewed
// between the two runs.
func TestCurvePartialsByteIdentical(t *testing.T) {
	g := randGraph(7, 180, 260)
	sizes := []int{1, 3, 9, 27, 80}
	base := Protocol{NSource: 9, NRcvr: 5, Seed: 99}
	configs := []struct {
		name string
		mut  func(*Protocol)
	}{
		{"plain", func(p *Protocol) {}},
		{"nested", func(p *Protocol) { p.Nested = true }},
		{"batch", func(p *Protocol) { p.BatchBFS = true }},
		{"batch-nested", func(p *Protocol) { p.BatchBFS = true; p.Nested = true }},
		{"sptcache", func(p *Protocol) { p.BatchBFS = true; p.SPTCache = true }},
		{"include-source", func(p *Protocol) { p.IncludeSource = true }},
	}
	splits := map[string][][2]int{
		"halves":     splitBlocks(base.NSource, 4),
		"uneven":     splitBlocks(base.NSource, 1, 7),
		"per-source": splitBlocks(base.NSource, 1, 2, 3, 4, 5, 6, 7, 8),
		"whole":      splitBlocks(base.NSource),
	}
	for _, cfg := range configs {
		for splitName, blocks := range splits {
			t.Run(cfg.name+"/"+splitName, func(t *testing.T) {
				p := base
				cfg.mut(&p)
				p.Workers = 3
				want, err := MeasureCurve(g, sizes, Distinct, p)
				if err != nil {
					t.Fatal(err)
				}
				p.Workers = 1
				parts := make([]*CurvePartial, 0, len(blocks))
				// Merge in reversed block order to prove order independence.
				for i := len(blocks) - 1; i >= 0; i-- {
					b := blocks[i]
					part, err := MeasureCurvePartialCtx(nil, g, sizes, Distinct, p, b[0], b[1])
					if err != nil {
						t.Fatal(err)
					}
					parts = append(parts, part)
				}
				got, err := ReduceCurvePartials(sizes, parts)
				if err != nil {
					t.Fatal(err)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("point %d differs:\n got %+v\nwant %+v", i, got[i], want[i])
					}
				}
			})
		}
	}
}

// TestCurvePartialsJSONRoundTrip: partials travel between coordinator and
// workers as JSON; encoding/json's shortest-round-trip float64 encoding must
// preserve byte-identity of the merged result.
func TestCurvePartialsJSONRoundTrip(t *testing.T) {
	g := randGraph(8, 150, 220)
	sizes := []int{1, 5, 20, 60}
	p := Protocol{NSource: 6, NRcvr: 4, Seed: 3}
	want, err := MeasureCurve(g, sizes, WithReplacement, p)
	if err != nil {
		t.Fatal(err)
	}
	var parts []*CurvePartial
	for _, b := range splitBlocks(p.NSource, 2, 5) {
		part, err := MeasureCurvePartialCtx(nil, g, sizes, WithReplacement, p, b[0], b[1])
		if err != nil {
			t.Fatal(err)
		}
		raw, err := json.Marshal(part)
		if err != nil {
			t.Fatal(err)
		}
		decoded := new(CurvePartial)
		if err := json.Unmarshal(raw, decoded); err != nil {
			t.Fatal(err)
		}
		parts = append(parts, decoded)
	}
	got, err := ReduceCurvePartials(sizes, parts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("point %d differs after JSON round trip:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
}

func TestReduceCurvePartialsValidation(t *testing.T) {
	g := randGraph(9, 120, 160)
	sizes := []int{1, 4, 16}
	p := Protocol{NSource: 4, NRcvr: 3, Seed: 5}
	mk := func(lo, hi int) *CurvePartial {
		part, err := MeasureCurvePartialCtx(nil, g, sizes, Distinct, p, lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		return part
	}
	cases := []struct {
		name  string
		parts []*CurvePartial
	}{
		{"empty", nil},
		{"gap", []*CurvePartial{mk(0, 1), mk(2, 4)}},
		{"overlap", []*CurvePartial{mk(0, 2), mk(1, 4)}},
		{"incomplete", []*CurvePartial{mk(0, 3)}},
		{"duplicate", []*CurvePartial{mk(0, 2), mk(0, 2), mk(2, 4)}},
		{"nil-part", []*CurvePartial{mk(0, 2), nil}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReduceCurvePartials(sizes, tc.parts); err == nil {
				t.Fatal("want error, got nil")
			}
		})
	}
	// Shape mismatch: partial measured under a different NSource.
	q := p
	q.NSource = 5
	bad, err := MeasureCurvePartialCtx(nil, g, sizes, Distinct, q, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReduceCurvePartials(sizes, []*CurvePartial{mk(0, 4), bad}); err == nil {
		t.Fatal("want shape-mismatch error, got nil")
	}
	if _, err := MeasureCurvePartialCtx(nil, g, sizes, Distinct, p, 3, 3); err == nil {
		t.Fatal("want empty-block error, got nil")
	}
	if _, err := MeasureCurvePartialCtx(nil, g, sizes, Distinct, p, 2, 9); err == nil {
		t.Fatal("want out-of-range block error, got nil")
	}
}

func TestSharedPartialsByteIdentical(t *testing.T) {
	g := randGraph(11, 160, 240)
	sizes := []int{1, 4, 12, 40}
	for _, strategy := range []CoreStrategy{CoreRandom, CoreSource, CoreCenter} {
		for _, batch := range []bool{false, true} {
			t.Run(fmt.Sprintf("%v/batch=%v", strategy, batch), func(t *testing.T) {
				p := Protocol{NSource: 7, NRcvr: 4, Seed: 17, Workers: 3, BatchBFS: batch}
				want, err := MeasureSharedCurve(g, sizes, strategy, p)
				if err != nil {
					t.Fatal(err)
				}
				p.Workers = 1
				var parts []*SharedPartial
				for _, b := range splitBlocks(p.NSource, 3, 6) {
					part, err := MeasureSharedCurvePartialCtx(nil, g, sizes, strategy, p, b[0], b[1])
					if err != nil {
						t.Fatal(err)
					}
					raw, err := json.Marshal(part)
					if err != nil {
						t.Fatal(err)
					}
					decoded := new(SharedPartial)
					if err := json.Unmarshal(raw, decoded); err != nil {
						t.Fatal(err)
					}
					parts = append(parts, decoded)
				}
				got, err := ReduceSharedPartials(sizes, parts)
				if err != nil {
					t.Fatal(err)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("point %d differs:\n got %+v\nwant %+v", i, got[i], want[i])
					}
				}
			})
		}
	}
}

func TestEnsemblePartialsByteIdentical(t *testing.T) {
	gen := func(seed int64) (*graph.Graph, error) {
		return topology.TransitStubSized(140, 3.6, seed)
	}
	sizes := []int{1, 5, 25}
	p := Protocol{NSource: 4, NRcvr: 4, Seed: 23, Workers: 2}
	const nNets = 5
	want, err := MeasureEnsemble(gen, nNets, sizes, Distinct, p)
	if err != nil {
		t.Fatal(err)
	}
	p.Workers = 1
	var parts []*EnsemblePartial
	for _, b := range splitBlocks(nNets, 2, 3) {
		part, err := MeasureEnsemblePartialCtx(nil, gen, nNets, sizes, Distinct, p, b[0], b[1])
		if err != nil {
			t.Fatal(err)
		}
		raw, err := json.Marshal(part)
		if err != nil {
			t.Fatal(err)
		}
		decoded := new(EnsemblePartial)
		if err := json.Unmarshal(raw, decoded); err != nil {
			t.Fatal(err)
		}
		parts = append(parts, decoded)
	}
	got, err := ReduceEnsemblePartials(sizes, parts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("point %d differs:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
	// Tiling violations reject.
	if _, err := ReduceEnsemblePartials(sizes, parts[:1]); err == nil {
		t.Fatal("want incomplete-tiling error, got nil")
	}
}
