// dyntree.go implements the incremental (delta-maintained) delivery tree:
// the churn engine's core data structure. Where TreeCounter rebuilds a tree
// from its full receiver set, a DynTree maintains one delivery tree — its
// link count, per-node child refcounts, membership multiset, and degree
// histogram — under receiver Join/Leave events in O(path-to-tree) per event:
//
//   - Join grafts the new receiver by walking the shortest-path-tree parent
//     chain until it reaches a node already on the tree, attaching exactly
//     the links the static estimator would have added (TreeCounter.Add).
//   - Leave decrements the receiver's membership count; when the node is no
//     longer needed (no members, no tree children) the exclusive suffix of
//     its graft path is released link by link.
//
// The optional bounded-degree variant (degreeCap > 0) models the P2P
// distribution trees of arXiv 0906.0379, where interior nodes relay to at
// most a fixed number of children: when the SPT attachment point is already
// saturated, a deterministic BFS over off-tree nodes finds the nearest
// on-tree node with spare capacity and grafts the receiver there instead
// (FIFO frontier, ascending neighbor order — independent of map iteration
// or scheduling). If no unsaturated attachment is reachable the receiver is
// force-attached along its SPT path and Forced() is incremented, so the
// constraint violation is observable instead of silent.
//
// A DynTree is not safe for concurrent use. All slices may be arena-backed;
// Reset clears them explicitly because arena memory is handed out dirty.
package mcast

import (
	"fmt"

	"mtreescale/internal/arena"
	"mtreescale/internal/graph"
	"mtreescale/internal/valid"
)

// DynTree is one incrementally maintained delivery tree over a fixed graph
// and root shortest-path tree. See the file comment for the event semantics.
type DynTree struct {
	g    *graph.Graph
	spt  *graph.SPT
	root int32
	cap  int32 // max tree degree per node; 0 = unbounded

	member   []int32 // membership multiset: >0 ⇒ v is a current receiver site
	childcnt []int32 // number of tree children of v
	tparent  []int32 // tree parent of v, -1 when v is off the tree
	links    int     // on-tree nodes excluding the root == tree links
	members  int     // distinct nodes with member[v] > 0

	degHist []int64 // degHist[d] = on-tree nodes with tree degree d
	maxDeg  int     // highest d with degHist[d] > 0
	forced  int64   // bounded-variant grafts that had to violate the cap

	// BFS-repair scratch (bounded variant only).
	seen  []int32 // epoch-stamped visited marks
	prev  []int32 // BFS predecessor toward the joining receiver
	queue []int32
	epoch int32
	nbuf  []int32 // neighbor decode buffer (compressed graphs only)

	gMaxDeg int // cached g.MaxDegree(), sized for degHist
	ar      *arena.Arena
}

// NewDynTree returns an incremental tree rooted at spt.Source. degreeCap
// bounds every node's tree degree (0 = unbounded; otherwise ≥ 2, since even
// a relay chain needs one parent and one child link per node). ar may be
// nil, in which case plain make-allocated scratch is used.
func NewDynTree(g *graph.Graph, spt *graph.SPT, degreeCap int, ar *arena.Arena) (*DynTree, error) {
	t := &DynTree{ar: ar}
	if err := t.Reset(g, spt, degreeCap); err != nil {
		return nil, err
	}
	return t, nil
}

// Reset rebinds the tree to a (graph, SPT, cap) triple and clears all state
// back to the empty tree. It reuses the existing scratch storage, so a
// pooled DynTree resets in O(N) with zero allocations once its buffers have
// reached the largest graph seen.
func (t *DynTree) Reset(g *graph.Graph, spt *graph.SPT, degreeCap int) error {
	if g == nil || spt == nil {
		return valid.Badf("dyntree: nil graph or SPT")
	}
	n := g.N()
	if len(spt.Parent) != n || len(spt.Dist) != n {
		return valid.Badf("dyntree: SPT sized for %d nodes, graph has %d", len(spt.Parent), n)
	}
	if spt.Source < 0 || spt.Source >= n {
		return valid.Badf("dyntree: SPT source %d out of range [0,%d)", spt.Source, n)
	}
	if degreeCap != 0 && degreeCap < 2 {
		return valid.Badf("dyntree: degree cap %d must be 0 (unbounded) or ≥ 2", degreeCap)
	}
	if t.g != g {
		// MaxDegree is an O(N) scan; cache it per graph so per-source Resets
		// against the same topology pay it once. Tree degrees never exceed
		// graph degrees (every tree edge is a graph edge).
		t.gMaxDeg = g.MaxDegree()
		// The neighbor buffer may alias the previous graph's flat adjacency
		// (see NeighborsInto); never let a decode write through it.
		t.nbuf = nil
	}
	t.g, t.spt = g, spt
	t.root = int32(spt.Source)
	t.cap = int32(degreeCap)
	t.member = growInt32(t.ar, t.member, n)
	t.childcnt = growInt32(t.ar, t.childcnt, n)
	t.tparent = growInt32(t.ar, t.tparent, n)
	t.degHist = growInt64(t.ar, t.degHist, t.gMaxDeg+1)
	for i := range t.member {
		t.member[i] = 0
		t.childcnt[i] = 0
		t.tparent[i] = -1
	}
	for i := range t.degHist {
		t.degHist[i] = 0
	}
	t.links, t.members, t.maxDeg, t.forced = 0, 0, 0, 0
	t.degHist[0] = 1 // the root is always on the tree, initially childless
	if t.cap > 0 {
		t.seen = growInt32(t.ar, t.seen, n)
		t.prev = growInt32(t.ar, t.prev, n)
		for i := range t.seen {
			t.seen[i] = 0
		}
		t.epoch = 0
		if t.queue == nil {
			t.queue = make([]int32, 0, 256)
		}
	}
	return nil
}

func growInt32(ar *arena.Arena, s []int32, n int) []int32 {
	if ar != nil {
		return ar.GrowInt32(s, n)
	}
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int32, n)
}

func growInt64(ar *arena.Arena, s []int64, n int) []int64 {
	if ar != nil {
		return ar.GrowInt64(s, n)
	}
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int64, n)
}

// onTree reports whether v currently carries tree state. Any node with
// members or children is on the tree by construction, so the parent mark
// (plus the root) is the complete predicate.
func (t *DynTree) onTree(v int32) bool { return v == t.root || t.tparent[v] >= 0 }

// treeDeg returns v's current tree degree (children + parent link).
func (t *DynTree) treeDeg(v int32) int32 {
	d := t.childcnt[v]
	if v != t.root && t.tparent[v] >= 0 {
		d++
	}
	return d
}

// histEnter records a node entering the tree at degree d.
func (t *DynTree) histEnter(d int32) {
	t.degHist[d]++
	if int(d) > t.maxDeg {
		t.maxDeg = int(d)
	}
}

// histLeave records a node leaving the tree from degree d.
func (t *DynTree) histLeave(d int32) {
	t.degHist[d]--
	for t.maxDeg > 0 && t.degHist[t.maxDeg] == 0 {
		t.maxDeg--
	}
}

// histShift moves one on-tree node between degree buckets.
func (t *DynTree) histShift(from, to int32) {
	t.degHist[from]--
	t.degHist[to]++
	if int(to) > t.maxDeg {
		t.maxDeg = int(to)
	}
	for t.maxDeg > 0 && t.degHist[t.maxDeg] == 0 {
		t.maxDeg--
	}
}

// Join adds one receiver instance at node r and returns the number of links
// grafted (0 for duplicate joins, already-covered nodes, out-of-range or
// unreachable sites). Cost is O(path-to-tree); for the bounded variant a
// saturated attachment additionally pays one repair BFS over the off-tree
// neighborhood.
func (t *DynTree) Join(r int32) int {
	if r < 0 || int(r) >= len(t.member) || t.spt.Dist[r] == graph.Unreachable {
		return 0
	}
	t.member[r]++
	if t.member[r] > 1 {
		return 0
	}
	t.members++
	if t.onTree(r) {
		return 0
	}
	if t.cap > 0 {
		return t.graftBounded(r)
	}
	return t.graftSPT(r)
}

// graftSPT walks r's SPT parent chain up to the first on-tree ancestor,
// marking every chain node as a new tree node. Exactly the links
// TreeCounter.Add would count are added.
func (t *DynTree) graftSPT(r int32) int {
	added := 0
	v := r
	for {
		p := t.spt.Parent[v]
		t.tparent[v] = p
		t.links++
		added++
		// v enters the tree: one child when a chain node already hangs
		// below it (every chain node except r), plus its new parent link.
		t.histEnter(t.childcnt[v] + 1)
		if p == t.root || t.tparent[p] >= 0 {
			old := t.treeDeg(p)
			t.childcnt[p]++
			t.histShift(old, old+1)
			return added
		}
		t.childcnt[p] = 1
		v = p
	}
}

// graftBounded grafts r under the degree cap: the SPT path is used when its
// attachment point has spare capacity, otherwise a deterministic BFS repair
// finds the nearest unsaturated on-tree node and the receiver attaches
// through the discovered path. When the whole reachable off-tree region is
// walled in by saturated nodes, the receiver force-attaches along its SPT
// path (Forced() counts these).
func (t *DynTree) graftBounded(r int32) int {
	a := r
	for !t.onTree(a) {
		a = t.spt.Parent[a]
	}
	if t.treeDeg(a) < t.cap {
		return t.graftSPT(r)
	}
	if added, ok := t.repairGraft(r); ok {
		return added
	}
	t.forced++
	return t.graftSPT(r)
}

// repairGraft runs the bounded variant's repair search: a BFS from r that
// expands only off-tree nodes (saturated on-tree nodes are walls) and stops
// at the first on-tree node with tree degree < cap. The frontier is FIFO
// and neighbors are scanned in ascending original-id order, so the chosen
// attachment is a pure function of the tree state — independent of worker
// scheduling or map iteration. Interior nodes of the discovered path all
// enter at degree 2, which the cap ≥ 2 invariant always permits.
func (t *DynTree) repairGraft(r int32) (int, bool) {
	t.epoch++
	if t.epoch <= 0 { // wrapped: re-zero the stamps and restart the epochs
		for i := range t.seen {
			t.seen[i] = 0
		}
		t.epoch = 1
	}
	t.queue = t.queue[:0]
	t.queue = append(t.queue, r)
	t.seen[r] = t.epoch
	t.prev[r] = -1
	for qi := 0; qi < len(t.queue); qi++ {
		u := t.queue[qi]
		// NeighborsInto aliases flat adjacency (returned buffer must not be
		// retained as decode scratch) and decodes into nbuf when compressed.
		nbs := t.g.NeighborsInto(int(u), t.nbuf)
		if t.g.Compressed() {
			t.nbuf = nbs
		}
		for _, w := range nbs {
			if t.seen[w] == t.epoch {
				continue
			}
			t.seen[w] = t.epoch
			if t.onTree(w) {
				if t.treeDeg(w) < t.cap {
					t.prev[w] = u
					return t.graftAlong(w), true
				}
				continue // saturated on-tree node: a wall, never expanded
			}
			t.prev[w] = u
			t.queue = append(t.queue, w)
		}
	}
	return 0, false
}

// graftAlong attaches the BFS-repair path ending at on-tree node w: walking
// prev back toward the joining receiver, each path node hangs under its
// predecessor-toward-w.
func (t *DynTree) graftAlong(w int32) int {
	added := 0
	oldW := t.treeDeg(w)
	u := w
	for {
		c := t.prev[u] // the path node that hangs under u
		if c < 0 {
			break
		}
		t.tparent[c] = u
		t.links++
		added++
		t.childcnt[u]++
		u = c
	}
	t.histShift(oldW, oldW+1)
	// Path nodes (everything below w) entered the tree; their childcnt is
	// final now, so their histogram entries can be recorded in one pass.
	for u = t.prev[w]; u >= 0; u = t.prev[u] {
		t.histEnter(t.childcnt[u] + 1)
	}
	return added
}

// Leave removes one receiver instance at node r and returns the number of
// links pruned (0 when r retains members, still relays traffic to children,
// or was never a member — leaves of absent receivers are harmless no-ops).
func (t *DynTree) Leave(r int32) int {
	if r < 0 || int(r) >= len(t.member) || t.member[r] == 0 {
		return 0
	}
	t.member[r]--
	if t.member[r] > 0 {
		return 0
	}
	t.members--
	if r == t.root || t.childcnt[r] > 0 {
		return 0 // the root, or an interior relay: stays on the tree
	}
	removed := 0
	v := r
	for {
		p := t.tparent[v]
		t.histLeave(t.childcnt[v] + 1) // v is always a leaf here: childcnt 0
		t.tparent[v] = -1
		t.links--
		removed++
		oldP := t.treeDeg(p)
		t.childcnt[p]--
		t.histShift(oldP, oldP-1)
		if p == t.root || t.member[p] > 0 || t.childcnt[p] > 0 {
			return removed
		}
		v = p
	}
}

// Links returns the current delivery-tree link count L.
func (t *DynTree) Links() int { return t.links }

// Members returns the number of distinct current receiver sites.
func (t *DynTree) Members() int { return t.members }

// MemberCount returns the membership multiplicity of node v.
func (t *DynTree) MemberCount(v int32) int {
	if v < 0 || int(v) >= len(t.member) {
		return 0
	}
	return int(t.member[v])
}

// OnTree reports whether v is currently part of the delivery tree.
func (t *DynTree) OnTree(v int32) bool {
	return v >= 0 && int(v) < len(t.tparent) && t.onTree(v)
}

// MaxDegree returns the largest tree degree of any on-tree node.
func (t *DynTree) MaxDegree() int { return t.maxDeg }

// Forced returns how many bounded-variant grafts had to exceed the cap
// because every reachable attachment point was saturated.
func (t *DynTree) Forced() int64 { return t.forced }

// Root returns the tree's root node.
func (t *DynTree) Root() int32 { return t.root }

// DegreeHist appends a copy of the tree-degree histogram (index = degree,
// value = on-tree node count, length MaxDegree()+1) to dst and returns it.
func (t *DynTree) DegreeHist(dst []int64) []int64 {
	return append(dst, t.degHist[:t.maxDeg+1]...)
}

// AppendMembers appends every distinct current receiver site to dst in
// ascending node order and returns it. O(N); used by self-checks and stats,
// never on the event path.
func (t *DynTree) AppendMembers(dst []int32) []int32 {
	for v, c := range t.member {
		if c > 0 {
			dst = append(dst, int32(v))
		}
	}
	return dst
}

// SelfCheck verifies the incremental bookkeeping against a from-scratch
// rebuild: the link count is recomputed by TreeCounter.TreeSize over the
// current member set (unbounded trees — the bounded variant's shape is
// history-dependent, so it is checked structurally instead), child
// refcounts and the degree histogram are recounted from tparent, and the
// exclusive-suffix invariant (no childless, memberless node stays on the
// tree) plus the degree cap are asserted. c may be nil to skip the
// TreeCounter cross-check. O(N); test and debug path only.
func (t *DynTree) SelfCheck(c *TreeCounter) error {
	n := len(t.tparent)
	onTree := 0
	child := make([]int32, n)
	for v := 0; v < n; v++ {
		p := t.tparent[v]
		if p < 0 {
			if t.member[v] > 0 && int32(v) != t.root {
				return fmt.Errorf("dyntree: member node %d off the tree", v)
			}
			continue
		}
		onTree++
		if !t.onTree(p) {
			return fmt.Errorf("dyntree: node %d hangs under off-tree parent %d", v, p)
		}
		if !t.g.HasEdge(v, int(p)) {
			return fmt.Errorf("dyntree: tree edge (%d,%d) is not a graph edge", v, p)
		}
		child[p]++
	}
	if onTree != t.links {
		return fmt.Errorf("dyntree: links=%d but %d non-root on-tree nodes", t.links, onTree)
	}
	hist := make([]int64, t.gMaxDeg+1)
	maxd := 0
	for v := 0; v < n; v++ {
		if child[v] != t.childcnt[v] {
			return fmt.Errorf("dyntree: node %d childcnt=%d, recount=%d", v, t.childcnt[v], child[v])
		}
		if !t.onTree(int32(v)) {
			continue
		}
		if int32(v) != t.root && t.member[v] == 0 && t.childcnt[v] == 0 {
			return fmt.Errorf("dyntree: unreleased suffix node %d (no members, no children)", v)
		}
		d := t.treeDeg(int32(v))
		if t.cap > 0 && d > t.cap && t.forced == 0 {
			return fmt.Errorf("dyntree: node %d degree %d exceeds cap %d with no forced grafts", v, d, t.cap)
		}
		hist[d]++
		if int(d) > maxd {
			maxd = int(d)
		}
	}
	if maxd != t.maxDeg {
		return fmt.Errorf("dyntree: maxDeg=%d, recount=%d", t.maxDeg, maxd)
	}
	for d := 0; d <= maxd; d++ {
		if hist[d] != t.degHist[d] {
			return fmt.Errorf("dyntree: degHist[%d]=%d, recount=%d", d, t.degHist[d], hist[d])
		}
	}
	if c != nil && t.cap == 0 {
		members := t.AppendMembers(nil)
		if want := c.TreeSize(t.spt, members); want != t.links {
			return fmt.Errorf("dyntree: incremental links=%d, from-scratch rebuild=%d (m=%d)",
				t.links, want, len(members))
		}
	}
	return nil
}
