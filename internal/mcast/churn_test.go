package mcast

import (
	"context"
	"math"
	"testing"
	"time"
)

func churnTestProtocol(workers int) Protocol {
	return Protocol{NSource: 6, NRcvr: 1, Seed: 42, Workers: workers, BatchBFS: true}
}

// stripWall zeroes the wall-clock field so deterministic results compare
// with ==.
func stripWall(r *ChurnResult) ChurnResult {
	cp := *r
	cp.EventsPerSec = 0
	return cp
}

func TestMeasureChurnDeterministicAcrossWorkers(t *testing.T) {
	g := randGraph(3, 400, 600)
	cfg := ChurnConfig{TargetMembers: 40}
	base, err := MeasureChurn(g, cfg, churnTestProtocol(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []Protocol{
		churnTestProtocol(4),
		{NSource: 6, NRcvr: 1, Seed: 42, Workers: 3, BatchBFS: false},
		{NSource: 6, NRcvr: 1, Seed: 42, Workers: 2, BatchBFS: false, SPTCache: true},
	} {
		got, err := MeasureChurn(g, cfg, p)
		if err != nil {
			t.Fatal(err)
		}
		if stripWall(got) != stripWall(base) {
			t.Fatalf("churn result differs for %+v:\n got %+v\nwant %+v", p, stripWall(got), stripWall(base))
		}
	}
}

func TestMeasureChurnSteadyState(t *testing.T) {
	// Little's law: the process operates at m̄ active sessions regardless
	// of the session distribution; distinct membership sits slightly below
	// m̄ from site collisions. The engine's warmup defaults must land the
	// measured window inside the steady state.
	g := randGraph(9, 500, 800)
	for _, cfg := range []ChurnConfig{
		{TargetMembers: 40},
		{TargetMembers: 40, Session: SessionPareto},
		{TargetMembers: 40, Session: SessionFixed},
	} {
		res, err := MeasureChurn(g, cfg, churnTestProtocol(0))
		if err != nil {
			t.Fatalf("%v: %v", cfg.Session, err)
		}
		if res.MeanMembers < 28 || res.MeanMembers > 52 {
			t.Fatalf("session=%v: steady-state membership %.1f far from target 40", cfg.Session, res.MeanMembers)
		}
		if res.MeanLinks <= res.MeanMembers {
			t.Fatalf("session=%v: mean links %.1f ≤ mean members %.1f — tree smaller than its leaves",
				cfg.Session, res.MeanLinks, res.MeanMembers)
		}
		if res.Joins == 0 || res.Leaves == 0 {
			t.Fatalf("session=%v: measured window saw joins=%d leaves=%d", cfg.Session, res.Joins, res.Leaves)
		}
		if res.Events != res.Joins+res.Leaves {
			t.Fatalf("event accounting: %d != %d + %d", res.Events, res.Joins, res.Leaves)
		}
		if res.EventsPerSec <= 0 {
			t.Fatalf("session=%v: events/sec not measured", cfg.Session)
		}
	}
}

func TestMeasureChurnSelfCheckEveryEvent(t *testing.T) {
	// The engine-level equivalence gate: every variant re-verified against
	// a from-scratch rebuild after every single event.
	g := randGraph(21, 220, 330)
	for _, variant := range []ChurnVariant{ChurnSPT, ChurnShared, ChurnBounded} {
		cfg := ChurnConfig{
			Variant:        variant,
			TargetMembers:  25,
			SelfCheckEvery: 1,
			WarmupEvents:   200,
			Events:         600,
		}
		if _, err := MeasureChurn(g, cfg, churnTestProtocol(2)); err != nil {
			t.Fatalf("variant %v: %v", variant, err)
		}
	}
}

func TestMeasureChurnBoundedDegreePressure(t *testing.T) {
	g := randGraph(33, 400, 600)
	p := churnTestProtocol(0)
	free, err := MeasureChurn(g, ChurnConfig{TargetMembers: 60}, p)
	if err != nil {
		t.Fatal(err)
	}
	capped, err := MeasureChurn(g, ChurnConfig{Variant: ChurnBounded, TargetMembers: 60, DegreeCap: 4}, p)
	if err != nil {
		t.Fatal(err)
	}
	if capped.Forced == 0 && capped.MaxDegree > 4 {
		t.Fatalf("bounded run: max degree %d exceeds cap 4 with no forced grafts", capped.MaxDegree)
	}
	if free.MaxDegree <= 4 {
		t.Skipf("unbounded max degree %d never exceeded the cap; graph too easy", free.MaxDegree)
	}
	if capped.MaxDegree > free.MaxDegree {
		t.Fatalf("cap raised degree pressure: bounded %d > unbounded %d", capped.MaxDegree, free.MaxDegree)
	}
}

func TestMeasureChurnSharedVariant(t *testing.T) {
	g := randGraph(55, 300, 450)
	res, err := MeasureChurn(g, ChurnConfig{Variant: ChurnShared, TargetMembers: 30, Core: CoreCenter}, churnTestProtocol(0))
	if err != nil {
		t.Fatal(err)
	}
	// The source is a permanent member, so the tree never drains below its
	// source→core branch.
	if res.MeanLinks <= 0 {
		t.Fatalf("shared churn mean links = %.2f", res.MeanLinks)
	}
	if res.Variant != ChurnShared {
		t.Fatalf("variant echo = %v", res.Variant)
	}
}

func TestMeasureChurnCancelMidRun(t *testing.T) {
	// The PR 3 contract adapted to events: cancellation between events
	// yields a valid partial stats report with ctx.Err() recorded, plus
	// the ctx error itself.
	g := randGraph(77, 500, 750)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	cfg := ChurnConfig{TargetMembers: 200, WarmupEvents: 1, Events: 50_000_000}
	p := Protocol{NSource: 4, NRcvr: 1, Seed: 7, Workers: 2, BatchBFS: true}
	res, err := MeasureChurnCtx(ctx, g, cfg, p)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("cancelled churn returned no partial result")
	}
	if res.Err == "" {
		t.Fatal("partial result did not record ctx.Err()")
	}
	if res.Events > 0 {
		// Whatever was measured must be internally consistent.
		if res.Events != res.Joins+res.Leaves {
			t.Fatalf("partial accounting: %d != %d + %d", res.Events, res.Joins, res.Leaves)
		}
		if res.MeanLinks < 0 || math.IsNaN(res.MeanLinks) {
			t.Fatalf("partial mean links = %v", res.MeanLinks)
		}
	}
}

func TestMeasureChurnCtxPreCancelled(t *testing.T) {
	g := randGraph(78, 100, 150)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := MeasureChurnCtx(ctx, g, ChurnConfig{TargetMembers: 10}, churnTestProtocol(2))
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || res.Err == "" {
		t.Fatalf("pre-cancelled run: result %+v must still record the error", res)
	}
	if res.Events != 0 || res.Sources != 0 {
		t.Fatalf("pre-cancelled run measured events=%d sources=%d", res.Events, res.Sources)
	}
}

func TestChurnConfigValidate(t *testing.T) {
	bad := []ChurnConfig{
		{},                                     // TargetMembers missing
		{TargetMembers: -3},                    //
		{TargetMembers: 5, MeanSession: -1},    //
		{TargetMembers: 5, Session: 3},         // unknown dist
		{TargetMembers: 5, Variant: 9},         // unknown variant
		{TargetMembers: 5, DegreeCap: 1},       // cap below 2
		{TargetMembers: 5, WarmupEvents: -1},   //
		{TargetMembers: 5, Events: -1},         //
		{TargetMembers: 5, SelfCheckEvery: -1}, //
		{TargetMembers: 5, Session: SessionPareto, ParetoAlpha: 0.9}, // infinite mean
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Fatalf("case %d: %+v accepted", i, cfg)
		}
	}
	good := ChurnConfig{TargetMembers: 5, Session: SessionPareto, ParetoAlpha: 2}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := MeasureChurn(randGraph(1, 50, 60), ChurnConfig{}, churnTestProtocol(1)); err == nil {
		t.Fatal("engine accepted invalid config")
	}
}

func TestParseSessionDist(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SessionDist
	}{{"exp", SessionExp}, {"", SessionExp}, {"pareto", SessionPareto}, {"fixed", SessionFixed}} {
		got, err := ParseSessionDist(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseSessionDist(%q) = %v, %v", tc.in, got, err)
		}
		if tc.in != "" && got.String() != tc.in {
			t.Fatalf("round trip %q → %q", tc.in, got.String())
		}
	}
	if _, err := ParseSessionDist("zipf"); err == nil {
		t.Fatal("unknown distribution accepted")
	}
}
