package mcast

import (
	"context"
	"sort"

	"mtreescale/internal/graph"
)

// MeasureCurveNested is the incremental fast path of the §2 protocol: where
// MeasureCurve draws an independent receiver set for every (source, size,
// repetition) triple, the nested engine draws ONE receiver sequence per
// (source, repetition), grows the delivery tree receiver by receiver with
// TreeCounter.Add (the paper's ΔL machinery, Eqs 5-6), and reads L, ū and
// the ratio off at every grid size as the growth front passes it.
//
// Soundness: in Distinct mode the sequence is a uniform random ordering of a
// uniform distinct maxM-subset (Sampler.Permutation), so every prefix of
// length m is itself a uniform distinct m-sample; in WithReplacement mode
// the sequence is i.i.d., so every prefix of length n is a valid n-draw.
// Per-size means are therefore unbiased and distributed identically to the
// independent protocol's; only the correlation *across* sizes differs
// (nested samples share a growth sequence), which the per-size standard
// errors do not consume. Tests assert agreement within 3 pooled standard
// errors against the independent path.
//
// Cost: one tree walk of O(L(maxM)) per repetition replaces GridPoints
// walks of O(L(size_k)) — an expected ~GridPoints× reduction in tree-walk
// work on log-spaced grids — and one O(maxM) draw replaces GridPoints draws.
//
// Results are deterministic for a fixed Protocol regardless of Workers,
// exactly like MeasureCurve.
func MeasureCurveNested(g *graph.Graph, sizes []int, mode Mode, p Protocol) ([]Point, error) {
	return MeasureCurveNestedCtx(context.Background(), g, sizes, mode, p)
}

// MeasureCurveNestedCtx is MeasureCurveNested under a cancellation context:
// the growth loop observes ctx between repetitions and returns its error
// promptly after cancellation. A nil ctx means Background.
func MeasureCurveNestedCtx(ctx context.Context, g *graph.Graph, sizes []int, mode Mode, p Protocol) ([]Point, error) {
	ctx = orBackground(ctx)
	p.Nested = false // normalize: routing flag only, not consumed below
	if err := validateCurveArgs(g, sizes, mode, p); err != nil {
		return nil, err
	}
	cuts := sizeCuts(sizes)
	maxSize := cuts[len(cuts)-1].size
	sources := drawSources(g, p)
	acc := newCurveAccum(p.NSource, len(sizes))
	err := runSourceWorkers(ctx, p, func(si int) error {
		return measureSourceNested(ctx, g, sources[si], si, cuts, maxSize, mode, p, acc)
	})
	if err != nil {
		return nil, err
	}
	return acc.reduce(sizes), nil
}

// sizeCut maps a group size to its index in the caller's sizes slice.
type sizeCut struct{ size, k int }

// sizeCuts returns the grid sizes sorted ascending, remembering each one's
// position in the input so results come back in input order. Duplicate sizes
// each get their own cut (and thus identical samples).
func sizeCuts(sizes []int) []sizeCut {
	cuts := make([]sizeCut, len(sizes))
	for k, s := range sizes {
		cuts[k] = sizeCut{size: s, k: k}
	}
	sort.Slice(cuts, func(i, j int) bool { return cuts[i].size < cuts[j].size })
	return cuts
}

// measureSourceNested runs the nested inner loop for one source: NRcvr
// growth sequences, each measured at every cut. ctx is polled once per
// repetition — one repetition is one O(L(maxM)) tree walk, the nested
// engine's grid-point unit of work.
func measureSourceNested(ctx context.Context, g *graph.Graph, src, si int, cuts []sizeCut, maxSize int, mode Mode, p Protocol, acc *curveAccum) error {
	sc := getScratch(g.N())
	defer scratchPool.Put(sc)
	spt, err := sc.prepare(g, src, si, p)
	if err != nil {
		return err
	}
	for rep := 0; rep < p.NRcvr; rep++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		switch mode {
		case Distinct:
			sc.recv, err = sc.smp.Permutation(maxSize, sc.recv)
		case WithReplacement:
			sc.recv, err = sc.smp.WithReplacement(maxSize, sc.recv)
		}
		if err != nil {
			return err
		}
		sc.counter.Begin(spt)
		links := 0
		var hops int64
		reachable := 0
		ci := 0
		for j, r := range sc.recv {
			links += sc.counter.Add(spt, r)
			if r >= 0 && int(r) < len(spt.Dist) && spt.Dist[r] != graph.Unreachable {
				hops += int64(spt.Dist[r])
				reachable++
			}
			for ci < len(cuts) && cuts[ci].size == j+1 {
				if reachable > 0 {
					m := Measurement{Links: links, UnicastHops: hops, Receivers: reachable}
					acc.add(si, cuts[ci].k, m.Ratio(), float64(m.Links), m.AvgUnicast())
				}
				ci++
			}
		}
	}
	return nil
}
