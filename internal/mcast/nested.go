package mcast

import (
	"context"
	"sort"

	"mtreescale/internal/graph"
)

// MeasureCurveNested is the incremental fast path of the §2 protocol: where
// MeasureCurve draws an independent receiver set for every (source, size,
// repetition) triple, the nested engine draws ONE receiver sequence per
// (source, repetition), grows the delivery tree receiver by receiver with
// TreeCounter.Add (the paper's ΔL machinery, Eqs 5-6), and reads L, ū and
// the ratio off at every grid size as the growth front passes it.
//
// Soundness: in Distinct mode the sequence is a uniform random ordering of a
// uniform distinct maxM-subset (Sampler.Permutation), so every prefix of
// length m is itself a uniform distinct m-sample; in WithReplacement mode
// the sequence is i.i.d., so every prefix of length n is a valid n-draw.
// Per-size means are therefore unbiased and distributed identically to the
// independent protocol's; only the correlation *across* sizes differs
// (nested samples share a growth sequence), which the per-size standard
// errors do not consume. Tests assert agreement within 3 pooled standard
// errors against the independent path.
//
// Cost: one tree walk of O(L(maxM)) per repetition replaces GridPoints
// walks of O(L(size_k)) — an expected ~GridPoints× reduction in tree-walk
// work on log-spaced grids — and one O(maxM) draw replaces GridPoints draws.
//
// Results are deterministic for a fixed Protocol regardless of Workers,
// exactly like MeasureCurve.
func MeasureCurveNested(g *graph.Graph, sizes []int, mode Mode, p Protocol) ([]Point, error) {
	return MeasureCurveNestedCtx(context.Background(), g, sizes, mode, p)
}

// MeasureCurveNestedCtx is MeasureCurveNested under a cancellation context:
// the growth loop observes ctx between repetitions and returns its error
// promptly after cancellation. A nil ctx means Background.
func MeasureCurveNestedCtx(ctx context.Context, g *graph.Graph, sizes []int, mode Mode, p Protocol) ([]Point, error) {
	ctx = orBackground(ctx)
	p.Nested = false // normalize: routing flag only, not consumed below
	if err := validateCurveArgs(g, sizes, mode, p); err != nil {
		return nil, err
	}
	cuts := sizeCuts(sizes)
	maxSize := cuts[len(cuts)-1].size
	sources := drawSources(g, p)
	bt, err := resolveBatch(g, sources, p)
	if err != nil {
		return nil, err
	}
	defer bt.release()
	acc := newCurveAccum(p.NSource, len(sizes))
	err = runSourceWorkers(ctx, p, func(si int) error {
		return measureSourceNested(ctx, g, sources[si], si, si, cuts, maxSize, mode, p, bt, acc)
	})
	if err != nil {
		return nil, err
	}
	return acc.reduce(sizes), nil
}

// sizeCut maps a group size to its index in the caller's sizes slice.
type sizeCut struct{ size, k int }

// sizeCuts returns the grid sizes sorted ascending, remembering each one's
// position in the input so results come back in input order. Duplicate sizes
// each get their own cut (and thus identical samples).
func sizeCuts(sizes []int) []sizeCut {
	cuts := make([]sizeCut, len(sizes))
	for k, s := range sizes {
		cuts[k] = sizeCut{size: s, k: k}
	}
	sort.Slice(cuts, func(i, j int) bool { return cuts[i].size < cuts[j].size })
	return cuts
}

// measureSourceNested runs the nested inner loop for one source: NRcvr
// growth sequences, each measured at every cut. ctx is polled once per
// repetition — one repetition is one O(L(maxM)) tree walk, the nested
// engine's grid-point unit of work.
//
// The tree is packed once per source (see packed.go) and the growth loop is
// the fused packed form of Begin/Add: one int64 load per climb step carries
// both the distance and the parent, the visited-epoch scheme is the
// counter's own, and nextCut keeps the grid read-off to one scalar compare
// per receiver. The integers produced are exactly those of the unfused
// loop, so the engine's results are unchanged.
func measureSourceNested(ctx context.Context, g *graph.Graph, src, si, lane int, cuts []sizeCut, maxSize int, mode Mode, p Protocol, bt *batchTrees, acc *curveAccum) error {
	sc := getScratch(g.N())
	defer scratchPool.Put(sc)
	spt, err := sc.prepare(g, src, si, lane, p, bt)
	if err != nil {
		return err
	}
	sc.pd = packTree(spt, sc.growPacked(sc.pd, len(spt.Parent)))
	pd := sc.pd
	source := int32(spt.Source)
	c := sc.counter
	for rep := 0; rep < p.NRcvr; rep++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		switch mode {
		case Distinct:
			sc.recv, err = sc.smp.Permutation(maxSize, sc.recv)
		case WithReplacement:
			sc.recv, err = sc.smp.WithReplacement(maxSize, sc.recv)
		}
		if err != nil {
			return err
		}
		if len(pd) > len(c.visited) {
			c.visited = make([]int32, len(pd))
			c.epoch = 0
		}
		c.epoch++
		epoch, visited := c.epoch, c.visited
		visited[source] = epoch
		links := 0
		var hops int64
		reachable := 0
		// Grow the tree segment by segment: within a segment (receivers
		// between consecutive cuts) climbs interleave four wide (climb4),
		// draining at each cut boundary so the recorded (links, hops,
		// reachable) are exactly the prefix integers the one-at-a-time loop
		// produces there.
		recv := sc.recv
		for j, ci := 0, 0; ci < len(cuts); {
			cut := cuts[ci].size
			for ; j+4 <= cut; j += 4 {
				r0, r1, r2, r3 := recv[j], recv[j+1], recv[j+2], recv[j+3]
				w0, w1, w2, w3 := pd[r0], pd[r1], pd[r2], pd[r3]
				if w0 < 0 {
					r0 = source
				} else {
					hops += w0 >> 32
					reachable++
				}
				if w1 < 0 {
					r1 = source
				} else {
					hops += w1 >> 32
					reachable++
				}
				if w2 < 0 {
					r2 = source
				} else {
					hops += w2 >> 32
					reachable++
				}
				if w3 < 0 {
					r3 = source
				} else {
					hops += w3 >> 32
					reachable++
				}
				links += climb4(pd, visited, epoch, r0, r1, r2, r3)
			}
			for ; j < cut; j++ {
				r := recv[j]
				if w := pd[r]; w >= 0 {
					hops += w >> 32
					reachable++
					for v := r; visited[v] != epoch; {
						visited[v] = epoch
						links++
						v = int32(uint32(pd[v]))
					}
				}
			}
			for ; ci < len(cuts) && cuts[ci].size == cut; ci++ {
				if reachable > 0 {
					m := Measurement{Links: links, UnicastHops: hops, Receivers: reachable}
					acc.add(lane, cuts[ci].k, m.Ratio(), float64(m.Links), m.AvgUnicast())
				}
			}
		}
	}
	return nil
}
