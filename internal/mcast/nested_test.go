package mcast

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"mtreescale/internal/topology"
)

// TestNestedIndependentEquivalence is the tentpole statistical check: on two
// standard topologies, the nested-growth engine and the paper-faithful
// independent-sets engine must agree per size within 3 pooled standard
// errors.
func TestNestedIndependentEquivalence(t *testing.T) {
	for _, name := range []string{"r100", "ts1000"} {
		g, err := topology.GenerateSeeded(name, 0, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		pop := g.N() - 1
		sizes := LogSpacedSizes(pop, 6)
		p := Protocol{NSource: 25, NRcvr: 25, Seed: 7}
		// Same Protocol for both engines: they measure the same source set,
		// so the difference in means is pure receiver-sampling noise, which
		// the pooled per-sample standard errors bound.
		ind, err := MeasureCurve(g, sizes, Distinct, p)
		if err != nil {
			t.Fatal(err)
		}
		nst, err := MeasureCurveNested(g, sizes, Distinct, p)
		if err != nil {
			t.Fatal(err)
		}
		for k := range sizes {
			a, b := ind[k], nst[k]
			if b.Samples == 0 {
				t.Fatalf("%s m=%d: nested produced no samples", name, sizes[k])
			}
			diff := math.Abs(a.MeanRatio - b.MeanRatio)
			pooled := math.Sqrt(a.RatioStdErr*a.RatioStdErr + b.RatioStdErr*b.RatioStdErr)
			if diff > 3*pooled+1e-12 {
				t.Fatalf("%s m=%d: |%.4f - %.4f| = %.4f exceeds 3×pooled SE %.4f",
					name, sizes[k], a.MeanRatio, b.MeanRatio, diff, 3*pooled)
			}
		}
	}
}

// TestNestedWithReplacementEquivalence covers the L̄(n) protocol: prefixes of
// an i.i.d. draw are i.i.d., so the nested path must agree there too.
func TestNestedWithReplacementEquivalence(t *testing.T) {
	g := randGraph(11, 150, 220)
	sizes := []int{1, 5, 25, 120}
	p := Protocol{NSource: 25, NRcvr: 25, Seed: 3}
	ind, err := MeasureCurve(g, sizes, WithReplacement, p)
	if err != nil {
		t.Fatal(err)
	}
	nst, err := MeasureCurveNested(g, sizes, WithReplacement, p)
	if err != nil {
		t.Fatal(err)
	}
	for k := range sizes {
		a, b := ind[k], nst[k]
		diff := math.Abs(a.MeanRatio - b.MeanRatio)
		pooled := math.Sqrt(a.RatioStdErr*a.RatioStdErr + b.RatioStdErr*b.RatioStdErr)
		if diff > 3*pooled+1e-12 {
			t.Fatalf("n=%d: |%.4f - %.4f| = %.4f exceeds 3×pooled SE %.4f",
				sizes[k], a.MeanRatio, b.MeanRatio, diff, 3*pooled)
		}
	}
}

// TestNestedDeterministicAcrossWorkers asserts bit-exact reproducibility of
// the nested path regardless of scheduling.
func TestNestedDeterministicAcrossWorkers(t *testing.T) {
	g := randGraph(12, 150, 200)
	sizes := []int{1, 7, 40, 100}
	var ref []Point
	for _, workers := range []int{1, 3, 8} {
		pts, err := MeasureCurveNested(g, sizes, Distinct, Protocol{NSource: 12, NRcvr: 9, Seed: 42, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = pts
			continue
		}
		for i := range pts {
			if pts[i] != ref[i] {
				t.Fatalf("workers=%d point %d: %+v vs %+v", workers, i, pts[i], ref[i])
			}
		}
	}
}

// TestProtocolNestedFlagRoutes checks that Protocol.Nested routes
// MeasureCurve through the nested engine.
func TestProtocolNestedFlagRoutes(t *testing.T) {
	g := randGraph(13, 100, 150)
	sizes := []int{1, 10, 50}
	p := Protocol{NSource: 6, NRcvr: 6, Seed: 5, Nested: true}
	via, err := MeasureCurve(g, sizes, Distinct, p)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := MeasureCurveNested(g, sizes, Distinct, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range via {
		if via[i] != direct[i] {
			t.Fatalf("point %d: flag route %+v != direct %+v", i, via[i], direct[i])
		}
	}
}

// TestNestedBasicInvariants mirrors the independent engine's structural
// checks: ratio 1 at m=1, increasing L̄, full sample counts, unsorted and
// duplicate grid sizes handled.
func TestNestedBasicInvariants(t *testing.T) {
	g := randGraph(14, 200, 300)
	sizes := []int{50, 1, 10, 10, 2} // deliberately unsorted with a duplicate
	pts, err := MeasureCurveNested(g, sizes, Distinct, Protocol{NSource: 10, NRcvr: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, pt := range pts {
		if pt.Size != sizes[i] {
			t.Fatalf("point %d size %d, want %d", i, pt.Size, sizes[i])
		}
		if pt.Samples != 100 {
			t.Fatalf("point %d samples %d", i, pt.Samples)
		}
		if pt.MeanLinks <= 0 || pt.MeanRatio <= 0 || pt.MeanUnicast <= 0 {
			t.Fatalf("point %d zero stats: %+v", i, pt)
		}
	}
	if math.Abs(pts[1].MeanRatio-1) > 1e-9 {
		t.Fatalf("ratio at m=1 = %v, want 1", pts[1].MeanRatio)
	}
	// Duplicate sizes ride the same growth sequences: identical points.
	if pts[2] != pts[3] {
		t.Fatalf("duplicate sizes diverge: %+v vs %+v", pts[2], pts[3])
	}
	// L̄ must increase along the sorted grid: 1, 2, 10, 50.
	for _, pair := range [][2]int{{1, 4}, {4, 2}, {2, 0}} {
		if pts[pair[1]].MeanLinks <= pts[pair[0]].MeanLinks {
			t.Fatalf("L̄ not increasing from m=%d to m=%d", sizes[pair[0]], sizes[pair[1]])
		}
	}
}

func TestNestedErrors(t *testing.T) {
	g := randGraph(15, 50, 70)
	if _, err := MeasureCurveNested(g, []int{1}, Distinct, Protocol{}); err == nil {
		t.Fatal("zero protocol must error")
	}
	if _, err := MeasureCurveNested(g, []int{0}, Distinct, Protocol{NSource: 1, NRcvr: 1}); err == nil {
		t.Fatal("size 0 must error")
	}
	if _, err := MeasureCurveNested(g, []int{50}, Distinct, Protocol{NSource: 1, NRcvr: 1}); err == nil {
		t.Fatal("m == N must error when source excluded")
	}
	if _, err := MeasureCurveNested(g, []int{1}, Mode(99), Protocol{NSource: 1, NRcvr: 1}); err == nil {
		t.Fatal("unknown mode must error")
	}
}

// TestRunSourceWorkersErrorNoDeadlock is the regression test for the feed
// deadlock: with an unbuffered jobs channel, a worker returning early on a
// failing source left the `jobs <- si` loop blocked forever. The buffered
// channel must surface the error promptly instead.
func TestRunSourceWorkersErrorNoDeadlock(t *testing.T) {
	boom := errors.New("injected source failure")
	done := make(chan error, 1)
	go func() {
		done <- runSourceWorkers(context.Background(), Protocol{NSource: 200, NRcvr: 1, Workers: 2}, func(si int) error {
			if si < 2 {
				return boom // fail every worker's first job
			}
			return nil
		})
	}()
	select {
	case err := <-done:
		if !errors.Is(err, boom) {
			t.Fatalf("err = %v, want injected failure", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("runSourceWorkers deadlocked after worker error")
	}
}
