package mcast

import (
	"testing"

	"mtreescale/internal/graph"
)

// The SPT cache must be a pure performance lever: every engine's output with
// SPTCache on must be byte-identical to the uncached run, because cached
// trees come from the same routed BFS kernel the uncached path uses.

func curveProtocols(seed int64) (off, on Protocol) {
	off = Protocol{NSource: 12, NRcvr: 8, Seed: seed}
	on = off
	on.SPTCache = true
	return off, on
}

func TestMeasureCurveCachedByteIdentical(t *testing.T) {
	graph.SharedSPTs.Clear()
	g := randGraph(11, 400, 800)
	sizes := []int{1, 3, 10, 40}
	off, on := curveProtocols(99)
	for _, mode := range []Mode{Distinct, WithReplacement} {
		want, err := MeasureCurve(g, sizes, mode, off)
		if err != nil {
			t.Fatal(err)
		}
		got, err := MeasureCurve(g, sizes, mode, on)
		if err != nil {
			t.Fatal(err)
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("mode %v size %d: cached %+v != uncached %+v",
					mode, sizes[k], got[k], want[k])
			}
		}
	}
	if st := graph.SharedSPTs.Stats(); st.Misses == 0 || st.Hits == 0 {
		t.Fatalf("cache saw no traffic: %+v", st)
	}
}

func TestMeasureCurveNestedCachedByteIdentical(t *testing.T) {
	graph.SharedSPTs.Clear()
	g := randGraph(13, 300, 600)
	sizes := []int{2, 5, 20}
	off, on := curveProtocols(7)
	off.Nested, on.Nested = true, true
	want, err := MeasureCurve(g, sizes, Distinct, off)
	if err != nil {
		t.Fatal(err)
	}
	got, err := MeasureCurve(g, sizes, Distinct, on)
	if err != nil {
		t.Fatal(err)
	}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("size %d: cached %+v != uncached %+v", sizes[k], got[k], want[k])
		}
	}
}

func TestMeasureSharedCurveCachedByteIdentical(t *testing.T) {
	graph.SharedSPTs.Clear()
	g := randGraph(17, 350, 700)
	sizes := []int{1, 4, 16}
	off, on := curveProtocols(23)
	for _, strategy := range []CoreStrategy{CoreRandom, CoreSource, CoreCenter} {
		want, err := MeasureSharedCurve(g, sizes, strategy, off)
		if err != nil {
			t.Fatal(err)
		}
		got, err := MeasureSharedCurve(g, sizes, strategy, on)
		if err != nil {
			t.Fatal(err)
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("%v size %d: cached %+v != uncached %+v",
					strategy, sizes[k], got[k], want[k])
			}
		}
	}
}

func TestMeasureIncrementsCachedByteIdentical(t *testing.T) {
	graph.SharedSPTs.Clear()
	g := randGraph(19, 250, 500)
	off, on := curveProtocols(31)
	want, err := MeasureIncrements(g, 25, off)
	if err != nil {
		t.Fatal(err)
	}
	got, err := MeasureIncrements(g, 25, on)
	if err != nil {
		t.Fatal(err)
	}
	if got.Samples != want.Samples || len(got.Delta) != len(want.Delta) {
		t.Fatalf("shape mismatch: %d/%d samples", got.Samples, want.Samples)
	}
	for j := range want.Delta {
		if got.Delta[j] != want.Delta[j] {
			t.Fatalf("Delta[%d]: cached %g != uncached %g", j, got.Delta[j], want.Delta[j])
		}
	}
}

// TestMeasureSharedCurveDeterministicAcrossWorkers pins the parallel
// shared-curve engine's contract: byte-identical output for any worker count.
func TestMeasureSharedCurveDeterministicAcrossWorkers(t *testing.T) {
	g := randGraph(29, 300, 600)
	sizes := []int{1, 5, 25}
	base := Protocol{NSource: 16, NRcvr: 6, Seed: 5}
	var want []SharedPoint
	for _, workers := range []int{1, 2, 4, 7} {
		p := base
		p.Workers = workers
		got, err := MeasureSharedCurve(g, sizes, CoreRandom, p)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
			continue
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("workers=%d size %d: %+v != %+v", workers, sizes[k], got[k], want[k])
			}
		}
	}
}
