package mcast

import (
	"context"
	"sort"

	"mtreescale/internal/graph"
	"mtreescale/internal/valid"
)

// This file exports the partial-reduction hooks the cluster layer shards
// experiment grids with. Every curve engine in this package already computes
// per-(source, size) partial sums in contiguous slabs and reduces them in
// source order, so a sweep's float result never depends on worker
// scheduling. The partial engines generalize that contract across process
// boundaries: a source block [SrcLo, SrcHi) — or, for ensembles, a network
// block [NetLo, NetHi) — can be measured alone, serialized as JSON, and
// merged with its sibling blocks by replaying the exact source-order (or
// network-order) reduction the single-process engine performs. Merged
// results are therefore byte-identical to an unsharded run, which the
// partial_test.go equivalence matrix asserts.
//
// Two sharding axes are NOT offered, deliberately:
//
//   - curve segments (splitting the sizes grid): a source's sampler stream
//     is consumed across the whole grid in order, so a later segment would
//     observe different draws than the unsharded run — not byte-identical;
//   - repetition blocks: same argument, per (source, size).

// CurvePartial carries the per-(source, size) partial sums of a curve sweep
// for the global source block [SrcLo, SrcHi). Slabs are indexed
// [(si-SrcLo)*K + k]; all float values survive a JSON round trip exactly
// (encoding/json emits shortest-round-trip float64), so a partial shipped
// over HTTP merges byte-identically to one kept in memory.
type CurvePartial struct {
	// NSource and K pin the protocol shape the partial was measured under;
	// ReduceCurvePartials rejects mismatched partials.
	NSource int `json:"n_source"`
	K       int `json:"k"`
	// SrcLo and SrcHi delimit the global source block, 0 <= lo < hi <= NSource.
	SrcLo int `json:"src_lo"`
	SrcHi int `json:"src_hi"`

	RatioSum   []float64 `json:"ratio_sum"`
	RatioSq    []float64 `json:"ratio_sq"`
	LinkSum    []float64 `json:"link_sum"`
	UnicastSum []float64 `json:"unicast_sum"`
	Samples    []int     `json:"samples"`
}

// validateBlock checks a shard's [lo, hi) block against the population n.
func validateBlock(lo, hi, n int, what string) error {
	if lo < 0 || hi > n || lo >= hi {
		return valid.Badf("mcast: %s block [%d, %d) out of [0, %d)", what, lo, hi, n)
	}
	return nil
}

// MeasureCurvePartialCtx measures the source block [srcLo, srcHi) of the
// curve sweep MeasureCurveCtx(ctx, g, sizes, mode, p) would run. The full
// source sequence is drawn and sliced — not re-drawn per block — and each
// source keeps its global RNG stream, so the block's partial sums are
// exactly the cells the unsharded engine would produce for those sources.
// Protocol.Nested selects the engine, exactly as in MeasureCurveCtx.
func MeasureCurvePartialCtx(ctx context.Context, g *graph.Graph, sizes []int, mode Mode, p Protocol, srcLo, srcHi int) (*CurvePartial, error) {
	ctx = orBackground(ctx)
	nested := p.Nested
	p.Nested = false // routing flag only; consumed here
	if err := validateCurveArgs(g, sizes, mode, p); err != nil {
		return nil, err
	}
	if err := validateBlock(srcLo, srcHi, p.NSource, "source"); err != nil {
		return nil, err
	}
	sources := drawSources(g, p)
	block := sources[srcLo:srcHi]
	bt, err := resolveBatch(g, block, p)
	if err != nil {
		return nil, err
	}
	defer bt.release()
	nBlock := srcHi - srcLo
	acc := newCurveAccum(nBlock, len(sizes))
	var cuts []sizeCut
	var maxSize int
	if nested {
		cuts = sizeCuts(sizes)
		maxSize = cuts[len(cuts)-1].size
	}
	err = runWorkersN(ctx, p.EffectiveWorkers(), nBlock, func(lane int) error {
		si := srcLo + lane
		if nested {
			return measureSourceNested(ctx, g, sources[si], si, lane, cuts, maxSize, mode, p, bt, acc)
		}
		return measureSourceIndependent(ctx, g, sources[si], si, lane, sizes, mode, p, bt, acc)
	})
	if err != nil {
		return nil, err
	}
	return &CurvePartial{
		NSource: p.NSource, K: acc.K, SrcLo: srcLo, SrcHi: srcHi,
		RatioSum: acc.ratioSum, RatioSq: acc.ratioSq,
		LinkSum: acc.linkSum, UnicastSum: acc.unicastSum,
		Samples: acc.samples,
	}, nil
}

// ReduceCurvePartials merges source-block partials into the final curve by
// replaying the engine's source-order reduction. The partials must tile
// [0, NSource) exactly — contiguous, non-overlapping, complete — and agree
// on the protocol shape; order of the argument slice does not matter. The
// result is byte-identical to the unsharded engine's: every slab cell is
// the cell the full accumulator would hold, and the fold visits them in the
// same source order.
func ReduceCurvePartials(sizes []int, parts []*CurvePartial) ([]Point, error) {
	if len(parts) == 0 {
		return nil, valid.Badf("mcast: no curve partials to reduce")
	}
	ordered := make([]*CurvePartial, len(parts))
	copy(ordered, parts)
	for _, pt := range ordered {
		if pt == nil {
			return nil, valid.Badf("mcast: nil curve partial")
		}
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].SrcLo < ordered[j].SrcLo })
	nSource, k := ordered[0].NSource, ordered[0].K
	if k != len(sizes) {
		return nil, valid.Badf("mcast: partial has K=%d, want %d grid points", k, len(sizes))
	}
	acc := newCurveAccum(nSource, k)
	next := 0
	for _, pt := range ordered {
		if pt.NSource != nSource || pt.K != k {
			return nil, valid.Badf("mcast: mismatched curve partial shape (NSource %d vs %d, K %d vs %d)", pt.NSource, nSource, pt.K, k)
		}
		if pt.SrcLo != next {
			return nil, valid.Badf("mcast: source blocks do not tile: want block starting at %d, got [%d, %d)", next, pt.SrcLo, pt.SrcHi)
		}
		if err := validateBlock(pt.SrcLo, pt.SrcHi, nSource, "source"); err != nil {
			return nil, err
		}
		cells := (pt.SrcHi - pt.SrcLo) * k
		if len(pt.RatioSum) != cells || len(pt.RatioSq) != cells ||
			len(pt.LinkSum) != cells || len(pt.UnicastSum) != cells || len(pt.Samples) != cells {
			return nil, valid.Badf("mcast: curve partial [%d, %d) has wrong slab size", pt.SrcLo, pt.SrcHi)
		}
		off := pt.SrcLo * k
		copy(acc.ratioSum[off:], pt.RatioSum)
		copy(acc.ratioSq[off:], pt.RatioSq)
		copy(acc.linkSum[off:], pt.LinkSum)
		copy(acc.unicastSum[off:], pt.UnicastSum)
		copy(acc.samples[off:], pt.Samples)
		next = pt.SrcHi
	}
	if next != nSource {
		return nil, valid.Badf("mcast: source blocks cover [0, %d), want [0, %d)", next, nSource)
	}
	return acc.reduce(sizes), nil
}

// SharedPartial is CurvePartial's shape for the shared-tree comparison
// engine: per-(source, size) partial sums of source-tree size, shared-tree
// size and the per-sample overhead ratio for the block [SrcLo, SrcHi).
type SharedPartial struct {
	NSource int `json:"n_source"`
	K       int `json:"k"`
	SrcLo   int `json:"src_lo"`
	SrcHi   int `json:"src_hi"`

	SrcSum  []float64 `json:"src_sum"`
	ShrSum  []float64 `json:"shr_sum"`
	OvhSum  []float64 `json:"ovh_sum"`
	Samples []int     `json:"samples"`
}

// MeasureSharedCurvePartialCtx measures the source block [srcLo, srcHi) of
// MeasureSharedCurveCtx's sweep. The full (source, core) pair sequence is
// drawn and sliced, and a CoreCenter strategy recomputes the same
// deterministic center on every shard, so block results are exactly the
// unsharded engine's cells.
func MeasureSharedCurvePartialCtx(ctx context.Context, g *graph.Graph, sizes []int, strategy CoreStrategy, p Protocol, srcLo, srcHi int) (*SharedPartial, error) {
	ctx = orBackground(ctx)
	if err := validateSharedArgs(g, sizes, p); err != nil {
		return nil, err
	}
	if err := validateBlock(srcLo, srcHi, p.NSource, "source"); err != nil {
		return nil, err
	}
	sources, cores, err := drawSharedPairs(g, strategy, p)
	if err != nil {
		return nil, err
	}
	nBlock := srcHi - srcLo
	combined := make([]int, 0, 2*nBlock)
	combined = append(combined, sources[srcLo:srcHi]...)
	combined = append(combined, cores[srcLo:srcHi]...)
	bt, err := resolveBatch(g, combined, p)
	if err != nil {
		return nil, err
	}
	defer bt.release()
	acc := newSharedAccum(nBlock, len(sizes))
	err = runWorkersN(ctx, p.EffectiveWorkers(), nBlock, func(lane int) error {
		si := srcLo + lane
		return measureSourceShared(ctx, g, sources[si], cores[si], si, lane, nBlock, sizes, p, bt, acc)
	})
	if err != nil {
		return nil, err
	}
	return &SharedPartial{
		NSource: p.NSource, K: acc.K, SrcLo: srcLo, SrcHi: srcHi,
		SrcSum: acc.srcSum, ShrSum: acc.shrSum, OvhSum: acc.ovhSum,
		Samples: acc.samples,
	}, nil
}

// ReduceSharedPartials merges shared-curve source blocks, replaying the
// engine's source-order reduction; the same tiling rules as
// ReduceCurvePartials apply.
func ReduceSharedPartials(sizes []int, parts []*SharedPartial) ([]SharedPoint, error) {
	if len(parts) == 0 {
		return nil, valid.Badf("mcast: no shared partials to reduce")
	}
	ordered := make([]*SharedPartial, len(parts))
	copy(ordered, parts)
	for _, pt := range ordered {
		if pt == nil {
			return nil, valid.Badf("mcast: nil partial")
		}
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].SrcLo < ordered[j].SrcLo })
	nSource, k := ordered[0].NSource, ordered[0].K
	if k != len(sizes) {
		return nil, valid.Badf("mcast: partial has K=%d, want %d grid points", k, len(sizes))
	}
	acc := newSharedAccum(nSource, k)
	next := 0
	for _, pt := range ordered {
		if pt.NSource != nSource || pt.K != k {
			return nil, valid.Badf("mcast: mismatched shared partial shape (NSource %d vs %d, K %d vs %d)", pt.NSource, nSource, pt.K, k)
		}
		if pt.SrcLo != next {
			return nil, valid.Badf("mcast: source blocks do not tile: want block starting at %d, got [%d, %d)", next, pt.SrcLo, pt.SrcHi)
		}
		if err := validateBlock(pt.SrcLo, pt.SrcHi, nSource, "source"); err != nil {
			return nil, err
		}
		cells := (pt.SrcHi - pt.SrcLo) * k
		if len(pt.SrcSum) != cells || len(pt.ShrSum) != cells ||
			len(pt.OvhSum) != cells || len(pt.Samples) != cells {
			return nil, valid.Badf("mcast: shared partial [%d, %d) has wrong slab size", pt.SrcLo, pt.SrcHi)
		}
		off := pt.SrcLo * k
		copy(acc.srcSum[off:], pt.SrcSum)
		copy(acc.shrSum[off:], pt.ShrSum)
		copy(acc.ovhSum[off:], pt.OvhSum)
		copy(acc.samples[off:], pt.Samples)
		next = pt.SrcHi
	}
	if next != nSource {
		return nil, valid.Badf("mcast: source blocks cover [0, %d), want [0, %d)", next, nSource)
	}
	return acc.reduce(sizes), nil
}

// EnsemblePartial carries the per-network curves of the topology-ensemble
// block [NetLo, NetHi): PerNet[i] is the full curve of network NetLo+i.
// Ensembles shard at network granularity — each instance derives its
// generation and measurement seeds from its global index — so a block's
// curves are identical to the unsharded engine's.
type EnsemblePartial struct {
	NNetworks int `json:"n_networks"`
	NetLo     int `json:"net_lo"`
	NetHi     int `json:"net_hi"`

	PerNet [][]Point `json:"per_net"`
}

// MeasureEnsemblePartialCtx measures the network block [netLo, netHi) of
// MeasureEnsembleCtx's sweep.
func MeasureEnsemblePartialCtx(ctx context.Context, gen func(seed int64) (*graph.Graph, error), nNetworks int, sizes []int, mode Mode, p Protocol, netLo, netHi int) (*EnsemblePartial, error) {
	ctx = orBackground(ctx)
	if gen == nil {
		return nil, valid.Badf("mcast: nil generator")
	}
	if nNetworks < 1 {
		return nil, valid.Badf("mcast: nNetworks must be >= 1, got %d", nNetworks)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := validateBlock(netLo, netHi, nNetworks, "network"); err != nil {
		return nil, err
	}
	perNet, err := measureEnsembleNets(ctx, gen, netLo, netHi, sizes, mode, p)
	if err != nil {
		return nil, err
	}
	return &EnsemblePartial{NNetworks: nNetworks, NetLo: netLo, NetHi: netHi, PerNet: perNet}, nil
}

// ReduceEnsemblePartials merges network-block partials by replaying the
// engine's network-order weighted reduction; the blocks must tile
// [0, NNetworks) exactly.
func ReduceEnsemblePartials(sizes []int, parts []*EnsemblePartial) ([]Point, error) {
	if len(parts) == 0 {
		return nil, valid.Badf("mcast: no ensemble partials to reduce")
	}
	ordered := make([]*EnsemblePartial, len(parts))
	copy(ordered, parts)
	for _, pt := range ordered {
		if pt == nil {
			return nil, valid.Badf("mcast: nil partial")
		}
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].NetLo < ordered[j].NetLo })
	nNetworks := ordered[0].NNetworks
	perNet := make([][]Point, 0, nNetworks)
	next := 0
	for _, pt := range ordered {
		if pt.NNetworks != nNetworks {
			return nil, valid.Badf("mcast: mismatched ensemble size (%d vs %d)", pt.NNetworks, nNetworks)
		}
		if pt.NetLo != next {
			return nil, valid.Badf("mcast: network blocks do not tile: want block starting at %d, got [%d, %d)", next, pt.NetLo, pt.NetHi)
		}
		if err := validateBlock(pt.NetLo, pt.NetHi, nNetworks, "network"); err != nil {
			return nil, err
		}
		if len(pt.PerNet) != pt.NetHi-pt.NetLo {
			return nil, valid.Badf("mcast: ensemble partial [%d, %d) has %d curves", pt.NetLo, pt.NetHi, len(pt.PerNet))
		}
		for i, pts := range pt.PerNet {
			if len(pts) != len(sizes) {
				return nil, valid.Badf("mcast: network %d curve has %d points, want %d", pt.NetLo+i, len(pts), len(sizes))
			}
		}
		perNet = append(perNet, pt.PerNet...)
		next = pt.NetHi
	}
	if next != nNetworks {
		return nil, valid.Badf("mcast: network blocks cover [0, %d), want [0, %d)", next, nNetworks)
	}
	return reduceEnsemble(sizes, perNet), nil
}
