package mcast

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"mtreescale/internal/graph"
	"mtreescale/internal/panicsafe"
	"mtreescale/internal/topology"
)

func TestMeasureCurveCtxPreCancelled(t *testing.T) {
	g, err := topology.GenerateSeeded("ts1000", 0, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := Protocol{NSource: 4, NRcvr: 4, Seed: 7}
	if _, err := MeasureCurveCtx(ctx, g, []int{1, 4}, Distinct, p); !errors.Is(err, context.Canceled) {
		t.Fatalf("independent engine: err = %v, want context.Canceled", err)
	}
	if _, err := MeasureCurveNestedCtx(ctx, g, []int{1, 4}, Distinct, p); !errors.Is(err, context.Canceled) {
		t.Fatalf("nested engine: err = %v, want context.Canceled", err)
	}
	if _, err := MeasureSharedCurveCtx(ctx, g, []int{1, 4}, CoreRandom, p); !errors.Is(err, context.Canceled) {
		t.Fatalf("shared engine: err = %v, want context.Canceled", err)
	}
	_, err = MeasureEnsembleCtx(ctx, func(seed int64) (*graph.Graph, error) {
		return topology.GenerateSeeded("r100", seed, 0.2)
	}, 2, []int{1, 4}, Distinct, p)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ensemble engine: err = %v, want context.Canceled", err)
	}
}

// TestMeasureCurveCtxCancelMidRun sizes the sweep far beyond the cancel
// delay: the engine must return (with context.Canceled) long before the
// full sweep could complete, proving the workers poll ctx at grid-point
// granularity instead of only between sources.
func TestMeasureCurveCtxCancelMidRun(t *testing.T) {
	g, err := topology.GenerateSeeded("ts1000", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// One source, many sizes × repetitions (an uninterrupted sweep takes
	// seconds): cancellation can only be observed inside the source's own
	// grid loop.
	p := Protocol{NSource: 1, NRcvr: 20000, Seed: 7, Workers: 1}
	sizes := LogSpacedSizes(g.N()-1, 24)
	ctx, cancel := context.WithCancel(context.Background())
	start := time.Now()
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	_, err = MeasureCurveCtx(ctx, g, sizes, Distinct, p)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v after %v, want context.Canceled (sweep too fast to prove cancellation?)", err, elapsed)
	}
	if elapsed > 30*time.Second {
		t.Fatalf("cancellation not observed promptly: took %v", elapsed)
	}
}

// TestRunSourceWorkersRecoversPanic: a panicking source job must surface as
// a *panicsafe.PanicError from the pool instead of crashing the process,
// and the pool must still drain cleanly.
func TestRunSourceWorkersRecoversPanic(t *testing.T) {
	ran := make([]bool, 64)
	err := runSourceWorkers(context.Background(), Protocol{NSource: 64, NRcvr: 1, Workers: 4}, func(si int) error {
		ran[si] = true
		if si == 3 {
			panic("injected worker panic")
		}
		return nil
	})
	if err == nil {
		t.Fatal("panic must surface as an error")
	}
	var pe *panicsafe.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want *panicsafe.PanicError, got %T: %v", err, err)
	}
	if !strings.Contains(err.Error(), "injected worker panic") {
		t.Fatalf("error lacks panic value: %v", err)
	}
	if !ran[3] {
		t.Fatal("panicking job never ran")
	}
}

func TestRunSourceWorkersCancelStopsPickup(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var count int
	err := runSourceWorkers(ctx, Protocol{NSource: 100, NRcvr: 1, Workers: 1}, func(si int) error {
		count++
		if si == 0 {
			cancel() // cancel from inside the first job
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if count != 1 {
		t.Fatalf("ran %d jobs after cancellation, want 1", count)
	}
}

func TestMeasureEnsembleCtxRecoversGeneratorPanic(t *testing.T) {
	p := Protocol{NSource: 2, NRcvr: 2, Seed: 3, Workers: 2}
	_, err := MeasureEnsembleCtx(context.Background(), func(seed int64) (*graph.Graph, error) {
		panic("generator exploded")
	}, 3, []int{1, 2}, Distinct, p)
	var pe *panicsafe.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want *panicsafe.PanicError, got %T: %v", err, err)
	}
}
