package mcast

import (
	"math"
	"testing"

	"mtreescale/internal/topology"
)

func TestBeginAddMatchesTreeSize(t *testing.T) {
	g := randGraph(2, 150, 220)
	spt, _ := g.BFS(0)
	c := NewTreeCounter(g.N())
	recv := []int32{3, 17, 42, 99, 17, 120} // includes a duplicate
	c.Begin(spt)
	total := 0
	for _, r := range recv {
		total += c.Add(spt, r)
	}
	want := c.TreeSize(spt, recv)
	if total != want {
		t.Fatalf("incremental %d vs batch %d", total, want)
	}
}

func TestAddDuplicateIsZero(t *testing.T) {
	g := randGraph(4, 50, 70)
	spt, _ := g.BFS(0)
	c := NewTreeCounter(g.N())
	c.Begin(spt)
	first := c.Add(spt, 30)
	if first != int(spt.Dist[30]) {
		t.Fatalf("first add = %d, want %d", first, spt.Dist[30])
	}
	if c.Add(spt, 30) != 0 {
		t.Fatal("duplicate add must contribute 0")
	}
	if c.Add(spt, -1) != 0 || c.Add(spt, 9999) != 0 {
		t.Fatal("garbage add must contribute 0")
	}
}

func TestBeginResetsState(t *testing.T) {
	g := randGraph(5, 60, 80)
	spt, _ := g.BFS(0)
	c := NewTreeCounter(g.N())
	c.Begin(spt)
	a := c.Add(spt, 40)
	c.Begin(spt) // restart: previous additions forgotten
	b := c.Add(spt, 40)
	if a != b {
		t.Fatalf("Begin did not reset: %d vs %d", a, b)
	}
}

func TestMeasureIncrementsBasic(t *testing.T) {
	g, err := topology.TransitStubSized(200, 3.6, 4)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := MeasureIncrements(g, 50, Protocol{NSource: 10, NRcvr: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if inc.Samples != 100 || len(inc.Delta) != 50 {
		t.Fatalf("samples=%d len=%d", inc.Samples, len(inc.Delta))
	}
	// ΔL(0) is the mean source→receiver distance: positive, > 1.
	if inc.Delta[0] <= 1 {
		t.Fatalf("first increment %v implausible", inc.Delta[0])
	}
	// Broad concavity: averaged increments must trend downward (the paper's
	// Δ²L < 0). Compare first-quarter and last-quarter means.
	q := len(inc.Delta) / 4
	var early, late float64
	for j := 0; j < q; j++ {
		early += inc.Delta[j]
		late += inc.Delta[len(inc.Delta)-1-j]
	}
	if late >= early {
		t.Fatalf("increments not decreasing: early %.2f late %.2f", early/float64(q), late/float64(q))
	}
}

func TestMeasureIncrementsConsistentWithCurve(t *testing.T) {
	// Summing increments must reproduce the direct L̄(m) estimate (same
	// protocol shape, independent randomness, so compare loosely).
	g, err := topology.TransitStubSized(150, 3.6, 8)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := MeasureIncrements(g, 30, Protocol{NSource: 15, NRcvr: 15, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cum := inc.CumulativeL()
	pts, err := MeasureCurve(g, []int{30}, Distinct, Protocol{NSource: 15, NRcvr: 15, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cum[30]-pts[0].MeanLinks) > 0.1*pts[0].MeanLinks {
		t.Fatalf("cumulative %v vs direct %v", cum[30], pts[0].MeanLinks)
	}
	if cum[0] != 0 {
		t.Fatal("L(0) must be 0")
	}
}

func TestIncrementsDelta2(t *testing.T) {
	inc := &Increments{Delta: []float64{5, 3, 2, 1.5}}
	d2 := inc.Delta2()
	want := []float64{-2, -1, -0.5}
	for i := range want {
		if math.Abs(d2[i]-want[i]) > 1e-12 {
			t.Fatalf("d2 = %v", d2)
		}
	}
	empty := &Increments{Delta: []float64{1}}
	if empty.Delta2() != nil {
		t.Fatal("single increment has no second difference")
	}
}

func TestMeasureIncrementsErrors(t *testing.T) {
	g := randGraph(9, 30, 40)
	if _, err := MeasureIncrements(g, 5, Protocol{}); err == nil {
		t.Fatal("bad protocol must error")
	}
	if _, err := MeasureIncrements(g, 0, Protocol{NSource: 1, NRcvr: 1}); err == nil {
		t.Fatal("maxM=0 must error")
	}
	if _, err := MeasureIncrements(g, 30, Protocol{NSource: 1, NRcvr: 1}); err == nil {
		t.Fatal("maxM=N must error")
	}
}

func TestIncrementsMatchAnalyticOnKAryTree(t *testing.T) {
	// On a binary tree with leaf receivers the measured ΔL̄ should track
	// Equation 5... note Eq 5 is for with-replacement draws while
	// MeasureIncrements draws distinct sites over all nodes, so compare on
	// the whole-tree population against a Monte-Carlo of the same protocol
	// rather than the closed form: here we simply check the first increment
	// equals the mean site depth.
	tr, err := topology.NewKAryTree(2, 6)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := MeasureIncrements(tr.Graph, 10, Protocol{NSource: 1, NRcvr: 400, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Source is drawn randomly (not necessarily the root); just assert
	// positivity and monotone decrease of the averaged increments.
	for j := 1; j < len(inc.Delta); j++ {
		if inc.Delta[j] <= 0 {
			t.Fatalf("increment %d = %v", j, inc.Delta[j])
		}
	}
	if inc.Delta[9] >= inc.Delta[0] {
		t.Fatalf("increments not decaying: %v", inc.Delta)
	}
}
