package mcast

import (
	"errors"
	"math"
	"sync"
	"testing"

	"mtreescale/internal/graph"
	"mtreescale/internal/topology"
)

func TestMeasureEnsembleBasic(t *testing.T) {
	gen := func(seed int64) (*graph.Graph, error) {
		return topology.TransitStubSized(150, 3.6, seed)
	}
	pts, err := MeasureEnsemble(gen, 4, []int{1, 5, 25}, Distinct, Protocol{NSource: 5, NRcvr: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, pt := range pts {
		if pt.Samples != 4*5*5 {
			t.Fatalf("samples = %d, want 100", pt.Samples)
		}
		if pt.MeanRatio <= 0 || pt.MeanLinks <= 0 {
			t.Fatalf("degenerate point %+v", pt)
		}
	}
	if math.Abs(pts[0].MeanRatio-1) > 1e-9 {
		t.Fatalf("m=1 ratio = %v", pts[0].MeanRatio)
	}
}

func TestMeasureEnsembleUsesDistinctNetworks(t *testing.T) {
	// Networks are generated concurrently, so gen guards its record.
	var mu sync.Mutex
	seeds := map[int64]bool{}
	gen := func(seed int64) (*graph.Graph, error) {
		mu.Lock()
		seeds[seed] = true
		mu.Unlock()
		return topology.TransitStubSized(100, 3.6, seed)
	}
	if _, err := MeasureEnsemble(gen, 3, []int{2}, Distinct, Protocol{NSource: 2, NRcvr: 2, Seed: 9}); err != nil {
		t.Fatal(err)
	}
	if len(seeds) != 3 {
		t.Fatalf("generator seeds not distinct: %v", seeds)
	}
}

func TestMeasureEnsembleDeterministicAcrossWorkers(t *testing.T) {
	gen := func(seed int64) (*graph.Graph, error) {
		return topology.TransitStubSized(120, 3.6, seed)
	}
	var ref []Point
	for _, workers := range []int{1, 2, 8} {
		pts, err := MeasureEnsemble(gen, 5, []int{1, 8, 30}, Distinct,
			Protocol{NSource: 4, NRcvr: 4, Seed: 11, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = pts
			continue
		}
		for i := range pts {
			if pts[i] != ref[i] {
				t.Fatalf("workers=%d point %d: %+v vs %+v", workers, i, pts[i], ref[i])
			}
		}
	}
}

func TestMeasureEnsembleSingleNetworkMatchesCurve(t *testing.T) {
	g, err := topology.TransitStubSized(120, 3.6, 77)
	if err != nil {
		t.Fatal(err)
	}
	gen := func(seed int64) (*graph.Graph, error) { return g, nil }
	p := Protocol{NSource: 6, NRcvr: 6, Seed: 4}
	ens, err := MeasureEnsemble(gen, 1, []int{10}, Distinct, p)
	if err != nil {
		t.Fatal(err)
	}
	// The ensemble reseeds the protocol per network, so values differ from a
	// direct call, but structure must match.
	if ens[0].Samples != 36 || ens[0].MeanRatio <= 1 {
		t.Fatalf("point = %+v", ens[0])
	}
}

func TestMeasureEnsembleErrors(t *testing.T) {
	gen := func(seed int64) (*graph.Graph, error) {
		return topology.TransitStubSized(100, 3.6, seed)
	}
	if _, err := MeasureEnsemble(nil, 2, []int{1}, Distinct, Protocol{NSource: 1, NRcvr: 1}); err == nil {
		t.Fatal("nil generator must error")
	}
	if _, err := MeasureEnsemble(gen, 0, []int{1}, Distinct, Protocol{NSource: 1, NRcvr: 1}); err == nil {
		t.Fatal("nNetworks=0 must error")
	}
	if _, err := MeasureEnsemble(gen, 2, []int{1}, Distinct, Protocol{}); err == nil {
		t.Fatal("bad protocol must error")
	}
	failing := func(seed int64) (*graph.Graph, error) { return nil, errors.New("boom") }
	if _, err := MeasureEnsemble(failing, 2, []int{1}, Distinct, Protocol{NSource: 1, NRcvr: 1}); err == nil {
		t.Fatal("generator failure must propagate")
	}
}

func TestMeasureEnsembleReducesVariance(t *testing.T) {
	// Averaging across networks must not inflate the spread: the ensemble
	// mean of ratios at a fixed m should be stable across two disjoint
	// ensembles, more stable than two single-network runs.
	gen := func(seed int64) (*graph.Graph, error) {
		return topology.TransitStubSized(150, 3.6, seed)
	}
	run := func(seed int64, nets int) float64 {
		pts, err := MeasureEnsemble(gen, nets, []int{20}, Distinct, Protocol{NSource: 4, NRcvr: 4, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		return pts[0].MeanRatio
	}
	a1, a2 := run(1, 6), run(2, 6)
	diffEnsemble := math.Abs(a1 - a2)
	b1, b2 := run(3, 1), run(4, 1)
	diffSingle := math.Abs(b1 - b2)
	// Not a strict guarantee per draw, but with 6× the networks the ensemble
	// gap should not be dramatically larger than the single-network gap.
	if diffEnsemble > 3*diffSingle+0.5 {
		t.Fatalf("ensemble spread %.3f vs single %.3f", diffEnsemble, diffSingle)
	}
}
