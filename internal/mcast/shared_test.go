package mcast

import (
	"testing"

	"mtreescale/internal/graph"
	"mtreescale/internal/topology"
)

func TestSharedTreeSizeSourceCoreEqualsSourceTree(t *testing.T) {
	// With the core at the source, the shared tree is the source tree.
	g := randGraph(3, 200, 300)
	spt, _ := g.BFS(0)
	c := NewTreeCounter(g.N())
	recv := []int32{5, 17, 42, 99}
	src := c.TreeSize(spt, recv)
	shared := c.SharedTreeSize(spt, 0, recv)
	if src != shared {
		t.Fatalf("source-core shared tree %d != source tree %d", shared, src)
	}
}

func TestSharedTreeIncludesSourcePath(t *testing.T) {
	// Path 0-1-2-3-4 with core at 4 and source at 0: a single receiver at 3
	// yields a tree containing core→3 (1 link) plus core→0 (4 links), all
	// shared: union = 4 links.
	b := graph.NewBuilder(5)
	for i := 0; i < 4; i++ {
		_ = b.AddEdge(i, i+1)
	}
	g := b.Build()
	coreSPT, _ := g.BFS(4)
	c := NewTreeCounter(g.N())
	if got := c.SharedTreeSize(coreSPT, 0, []int32{3}); got != 4 {
		t.Fatalf("shared tree = %d, want 4", got)
	}
	// Receiver on the other side of the core from the source.
	b2 := graph.NewBuilder(5)
	_ = b2.AddEdge(0, 1) // source side
	_ = b2.AddEdge(1, 2) // core at 2
	_ = b2.AddEdge(2, 3)
	_ = b2.AddEdge(3, 4) // receiver side
	g2 := b2.Build()
	coreSPT2, _ := g2.BFS(2)
	if got := c.SharedTreeSize(coreSPT2, 0, []int32{4}); got != 4 {
		t.Fatalf("two-sided shared tree = %d, want 4", got)
	}
}

func TestSharedTreeAtLeastSourceToCore(t *testing.T) {
	g := randGraph(5, 150, 220)
	coreSPT, _ := g.BFS(7)
	c := NewTreeCounter(g.N())
	for src := int32(0); src < 20; src++ {
		got := c.SharedTreeSize(coreSPT, src, nil)
		if got != int(coreSPT.Dist[src]) {
			t.Fatalf("empty group shared tree %d != dist(core, src) %d", got, coreSPT.Dist[src])
		}
	}
}

func TestSharedTreeIgnoresGarbage(t *testing.T) {
	g := randGraph(8, 50, 60)
	coreSPT, _ := g.BFS(0)
	c := NewTreeCounter(g.N())
	if got := c.SharedTreeSize(coreSPT, -1, []int32{999, -5}); got != 0 {
		t.Fatalf("garbage inputs gave %d links", got)
	}
}

func TestMeasureSharedCurveSourceStrategyOverheadOne(t *testing.T) {
	g, err := topology.TransitStubSized(200, 3.6, 4)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := MeasureSharedCurve(g, []int{1, 5, 20}, CoreSource, Protocol{NSource: 5, NRcvr: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range pts {
		if pt.MeanOverhead < 1-1e-9 || pt.MeanOverhead > 1+1e-9 {
			t.Fatalf("source-core overhead = %v at m=%d, want exactly 1", pt.MeanOverhead, pt.Size)
		}
	}
}

func TestMeasureSharedCurveOverheadBounded(t *testing.T) {
	// Wei-Estrin: center-based trees cost within a modest constant of
	// source trees; random cores are worse but still bounded. Overhead must
	// be ≥ 1 on average and < 3 for these sizes.
	g, err := topology.TransitStubSized(300, 3.6, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, strat := range []CoreStrategy{CoreRandom, CoreCenter} {
		pts, err := MeasureSharedCurve(g, []int{2, 10, 50}, strat, Protocol{NSource: 10, NRcvr: 10, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		for _, pt := range pts {
			if pt.MeanOverhead < 1.0-0.05 {
				t.Fatalf("%v: overhead %v < 1 at m=%d", strat, pt.MeanOverhead, pt.Size)
			}
			if pt.MeanOverhead > 3 {
				t.Fatalf("%v: overhead %v implausibly high at m=%d", strat, pt.MeanOverhead, pt.Size)
			}
			if pt.Samples == 0 {
				t.Fatalf("%v: no samples", strat)
			}
		}
	}
}

func TestMeasureSharedCurveCenterBeatsRandomAtScale(t *testing.T) {
	// A managed (center) core should not be worse than a random core on
	// average for moderate groups.
	g, err := topology.TiersSized(400, 7)
	if err != nil {
		t.Fatal(err)
	}
	p := Protocol{NSource: 15, NRcvr: 15, Seed: 5}
	rand, err := MeasureSharedCurve(g, []int{10}, CoreRandom, p)
	if err != nil {
		t.Fatal(err)
	}
	center, err := MeasureSharedCurve(g, []int{10}, CoreCenter, p)
	if err != nil {
		t.Fatal(err)
	}
	if center[0].MeanSharedTree > rand[0].MeanSharedTree*1.05 {
		t.Fatalf("center core (%.1f) worse than random core (%.1f)",
			center[0].MeanSharedTree, rand[0].MeanSharedTree)
	}
}

func TestMeasureSharedCurveErrors(t *testing.T) {
	g := randGraph(9, 50, 60)
	if _, err := MeasureSharedCurve(g, []int{1}, CoreRandom, Protocol{}); err == nil {
		t.Fatal("bad protocol must error")
	}
	if _, err := MeasureSharedCurve(g, []int{0}, CoreRandom, Protocol{NSource: 1, NRcvr: 1}); err == nil {
		t.Fatal("size 0 must error")
	}
	if _, err := MeasureSharedCurve(g, []int{50}, CoreRandom, Protocol{NSource: 1, NRcvr: 1}); err == nil {
		t.Fatal("m = N must error")
	}
	tiny := graph.NewBuilder(1).Build()
	if _, err := MeasureSharedCurve(tiny, []int{1}, CoreRandom, Protocol{NSource: 1, NRcvr: 1}); err == nil {
		t.Fatal("N=1 must error")
	}
}

func TestCoreStrategyString(t *testing.T) {
	if CoreRandom.String() != "random-core" || CoreSource.String() != "source-core" ||
		CoreCenter.String() != "center-core" {
		t.Fatal("strategy strings")
	}
	if CoreStrategy(9).String() == "" {
		t.Fatal("unknown strategy must render")
	}
}

func TestApproxCenterOnPath(t *testing.T) {
	g := pathGraph(t, 21)
	c, err := approxCenter(g, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	// The center of a path is the middle; the sampling heuristic should
	// land within a quarter of the path of it.
	if c < 5 || c > 15 {
		t.Fatalf("approx center of P21 = %d", c)
	}
	// The batched variant pre-draws the same samples from the same stream
	// and reads the same distances, so it must pick the same node.
	cb, err := approxCenter(g, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if cb != c {
		t.Fatalf("batched approx center %d != serial %d", cb, c)
	}
}
