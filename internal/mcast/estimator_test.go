package mcast

import (
	"math"
	"testing"

	"mtreescale/internal/topology"
)

func TestMeasureCurveBasic(t *testing.T) {
	g := randGraph(1, 200, 300)
	sizes := []int{1, 2, 5, 10, 50}
	pts, err := MeasureCurve(g, sizes, Distinct, Protocol{NSource: 10, NRcvr: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(sizes) {
		t.Fatalf("points = %d", len(pts))
	}
	for i, pt := range pts {
		if pt.Size != sizes[i] {
			t.Fatalf("point %d size %d", i, pt.Size)
		}
		if pt.Samples != 100 {
			t.Fatalf("point %d samples %d", i, pt.Samples)
		}
		if pt.MeanLinks <= 0 || pt.MeanRatio <= 0 || pt.MeanUnicast <= 0 {
			t.Fatalf("point %d has zero stats: %+v", i, pt)
		}
	}
	// L(1)/ū == 1 by definition: one receiver's tree is exactly its path.
	if math.Abs(pts[0].MeanRatio-1) > 1e-9 {
		t.Fatalf("ratio at m=1 is %v, want 1", pts[0].MeanRatio)
	}
	// MeanLinks must increase with m.
	for i := 1; i < len(pts); i++ {
		if pts[i].MeanLinks <= pts[i-1].MeanLinks {
			t.Fatalf("L̄ not increasing: %v -> %v", pts[i-1], pts[i])
		}
	}
}

func TestMeasureCurveDeterministic(t *testing.T) {
	g := randGraph(2, 150, 200)
	p := Protocol{NSource: 8, NRcvr: 6, Seed: 42, Workers: 4}
	a, err := MeasureCurve(g, []int{1, 10, 40}, Distinct, p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MeasureCurve(g, []int{1, 10, 40}, Distinct, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic point %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	// And independent of worker count.
	p.Workers = 1
	c, err := MeasureCurve(g, []int{1, 10, 40}, Distinct, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("worker-count-dependent point %d: %+v vs %+v", i, a[i], c[i])
		}
	}
}

func TestMeasureCurveWithReplacement(t *testing.T) {
	g := randGraph(3, 100, 150)
	pts, err := MeasureCurve(g, []int{1, 10, 100, 1000}, WithReplacement, Protocol{NSource: 5, NRcvr: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// With replacement, n can exceed the population; L̄ saturates below N-1.
	last := pts[len(pts)-1]
	if last.MeanLinks >= float64(g.N()) {
		t.Fatalf("L̄(%d) = %v exceeds N-1", last.Size, last.MeanLinks)
	}
	// Saturation: L̄(1000) should be close to the full tree size.
	if last.MeanLinks < 0.9*float64(g.N()-1) {
		t.Fatalf("L̄(1000) = %v; expected near-saturation of %d", last.MeanLinks, g.N()-1)
	}
}

func TestMeasureCurveModeDifference(t *testing.T) {
	// At n == m == population/2, with-replacement draws fewer distinct
	// sites, so its tree must be smaller on average.
	g := randGraph(4, 120, 200)
	m := 60
	dist, err := MeasureCurve(g, []int{m}, Distinct, Protocol{NSource: 20, NRcvr: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	repl, err := MeasureCurve(g, []int{m}, WithReplacement, Protocol{NSource: 20, NRcvr: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if repl[0].MeanLinks >= dist[0].MeanLinks {
		t.Fatalf("replacement tree (%.2f) not smaller than distinct tree (%.2f)",
			repl[0].MeanLinks, dist[0].MeanLinks)
	}
}

func TestMeasureCurveErrors(t *testing.T) {
	g := randGraph(5, 50, 50)
	if _, err := MeasureCurve(g, []int{1}, Distinct, Protocol{}); err == nil {
		t.Fatal("zero protocol must error")
	}
	if _, err := MeasureCurve(g, []int{0}, Distinct, Protocol{NSource: 1, NRcvr: 1}); err == nil {
		t.Fatal("size 0 must error")
	}
	if _, err := MeasureCurve(g, []int{50}, Distinct, Protocol{NSource: 1, NRcvr: 1}); err == nil {
		t.Fatal("m == N must error when source excluded")
	}
	if _, err := MeasureCurve(g, []int{1}, Distinct, Protocol{NSource: 1, NRcvr: 1, Workers: -1}); err == nil {
		t.Fatal("negative workers must error")
	}
	tiny := randGraph(5, 1, 0)
	if _, err := MeasureCurve(tiny, []int{1}, Distinct, Protocol{NSource: 1, NRcvr: 1}); err == nil {
		t.Fatal("N=1 must error")
	}
	if _, err := MeasureCurve(g, []int{1}, Mode(99), Protocol{NSource: 1, NRcvr: 1}); err == nil {
		t.Fatal("unknown mode must error")
	}
}

func TestMeasureCurveIncludeSource(t *testing.T) {
	g := randGraph(6, 30, 40)
	// m = N is only legal when the source is included.
	pts, err := MeasureCurve(g, []int{30}, Distinct, Protocol{NSource: 2, NRcvr: 2, Seed: 1, IncludeSource: true})
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].MeanLinks != float64(g.N()-1) {
		t.Fatalf("spanning L = %v, want %d", pts[0].MeanLinks, g.N()-1)
	}
}

func TestModeString(t *testing.T) {
	if Distinct.String() != "distinct" || WithReplacement.String() != "with-replacement" {
		t.Fatal("mode strings")
	}
	if Mode(9).String() == "" {
		t.Fatal("unknown mode must still render")
	}
}

func TestChuangSirbuExponentOnTransitStub(t *testing.T) {
	// The headline reproduction check at test scale: the fitted exponent of
	// the ratio curve on a transit-stub network should land in the broad
	// vicinity of 0.8 (the paper calls the fit "by no means exact").
	if testing.Short() {
		t.Skip("short mode")
	}
	g, err := topology.TransitStubSized(500, 3.6, 5)
	if err != nil {
		t.Fatal(err)
	}
	sizes := LogSpacedSizes(400, 12)
	pts, err := MeasureCurve(g, sizes, Distinct, Protocol{NSource: 25, NRcvr: 25, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Fit ln(ratio) = a + e*ln(m) by hand.
	var sx, sy, sxx, sxy float64
	n := 0.0
	for _, pt := range pts {
		x, y := math.Log(float64(pt.Size)), math.Log(pt.MeanRatio)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
		n++
	}
	slope := (n*sxy - sx*sy) / (n*sxx - sx*sx)
	if slope < 0.6 || slope > 0.95 {
		t.Fatalf("Chuang-Sirbu exponent = %.3f, expected ~0.8 ± 0.15", slope)
	}
}
