package mcast

// BenchmarkChurn* is the committed BENCH_8.json suite: the incremental
// delta-maintained tree against recompute-per-event at steady state
// m̄ = 1000 on a 50k-node transit-stub graph (the ISSUE 10 operating
// point). The event dynamics are the memoryless M/M/∞ form — arrival with
// probability λ/(λ+kμ), otherwise a uniformly random active session ends —
// which is exactly the exponential-session churn process, so both engines
// see identical steady-state statistics:
//
//   - ChurnIncremental1k50k: DynTree.Join/Leave, O(path-to-tree) per event.
//   - ChurnRecompute1k50k: the baseline the tentpole replaces — the same
//     membership stream, link count rebuilt from scratch by
//     TreeCounter.TreeSize (O(L+m)) after every event.
//   - ChurnIncrementalBounded1k50k: the degree-capped variant including its
//     BFS repairs.
//   - ChurnEngineStep1k50k: the full production event path (departure
//     heap, session draws, RNG, DynTree) proving 0 allocs/op steady state.

import (
	"sync"
	"testing"

	"mtreescale/internal/arena"
	"mtreescale/internal/graph"
	"mtreescale/internal/rng"
	"mtreescale/internal/topology"
)

var churnBench struct {
	once sync.Once
	g    *graph.Graph
	spt  *graph.SPT
	err  error
}

func churnBenchGraph(b *testing.B) (*graph.Graph, *graph.SPT) {
	b.Helper()
	churnBench.once.Do(func() {
		g, err := topology.TransitStubSized(50_000, 3.6, 1)
		if err != nil {
			churnBench.err = err
			return
		}
		churnBench.g = g
		churnBench.spt, churnBench.err = g.BFS(0)
	})
	if churnBench.err != nil {
		b.Fatal(churnBench.err)
	}
	return churnBench.g, churnBench.spt
}

// churnBenchState is the shared membership dynamic: sessions holds one
// entry per active session (duplicates allowed), steady around target.
type churnBenchState struct {
	r        *rng.Rand
	sessions []int32
	n        int
	target   int
}

func newChurnBenchState(g *graph.Graph, target int, seed int64) *churnBenchState {
	return &churnBenchState{
		r:        rng.New(seed),
		sessions: make([]int32, 0, 2*target),
		n:        g.N(),
		target:   target,
	}
}

// next draws the next event: (site, join). Memoryless dynamics: with k
// active sessions, the next event is an arrival with probability
// λ/(λ+kμ) = target/(target+k); otherwise a uniform active session ends.
func (s *churnBenchState) next() (int32, bool) {
	k := len(s.sessions)
	if k == 0 || s.r.Intn(s.target+k) < s.target {
		site := int32(s.r.Intn(s.n))
		s.sessions = append(s.sessions, site)
		return site, true
	}
	i := s.r.Intn(k)
	site := s.sessions[i]
	s.sessions[i] = s.sessions[k-1]
	s.sessions = s.sessions[:k-1]
	return site, false
}

// fill drives the membership straight to the steady-state operating point.
func (s *churnBenchState) fill(tree *DynTree) {
	for len(s.sessions) < s.target {
		site := int32(s.r.Intn(s.n))
		s.sessions = append(s.sessions, site)
		tree.Join(site)
	}
}

func benchIncremental(b *testing.B, degreeCap int) {
	g, spt := churnBenchGraph(b)
	tree, err := NewDynTree(g, spt, degreeCap, arena.New())
	if err != nil {
		b.Fatal(err)
	}
	st := newChurnBenchState(g, 1000, 7)
	st.fill(tree)
	b.ReportAllocs()
	b.ResetTimer()
	var links int
	for i := 0; i < b.N; i++ {
		site, join := st.next()
		if join {
			tree.Join(site)
		} else {
			tree.Leave(site)
		}
		links = tree.Links()
	}
	_ = links
}

func BenchmarkChurnIncremental1k50k(b *testing.B) { benchIncremental(b, 0) }

func BenchmarkChurnIncrementalBounded1k50k(b *testing.B) { benchIncremental(b, 4) }

// BenchmarkChurnRecompute1k50k is the from-scratch baseline: identical
// membership stream, but the link count is rebuilt by a full TreeCounter
// climb over all ~1000 receivers after every event.
func BenchmarkChurnRecompute1k50k(b *testing.B) {
	g, spt := churnBenchGraph(b)
	c := NewTreeCounter(g.N())
	st := newChurnBenchState(g, 1000, 7)
	for len(st.sessions) < st.target {
		st.sessions = append(st.sessions, int32(st.r.Intn(st.n)))
	}
	b.ReportAllocs()
	b.ResetTimer()
	var links int
	for i := 0; i < b.N; i++ {
		st.next()
		links = c.TreeSize(spt, st.sessions)
	}
	_ = links
}

// BenchmarkChurnEngineStep1k50k measures the full production event path —
// Poisson clock, departure heap, session draw, incremental graft/prune —
// and pins the 0 allocs/op steady-state contract.
func BenchmarkChurnEngineStep1k50k(b *testing.B) {
	g, spt := churnBenchGraph(b)
	ar := arena.New()
	tree, err := NewDynTree(g, spt, 0, ar)
	if err != nil {
		b.Fatal(err)
	}
	cfg := ChurnConfig{TargetMembers: 1000}.withDefaults()
	var sim churnSim
	sim.initSim(tree, rng.New(11), cfg, g.N(), 0, ar)
	for i := 0; i < 12_000; i++ { // past the ~m̄ arrivals warmup
		sim.step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.step()
	}
}
