package mcast

import (
	"slices"
	"testing"

	"mtreescale/internal/arena"
	"mtreescale/internal/graph"
	"mtreescale/internal/rng"
)

// naiveBounded is an independently written reference for the bounded-degree
// tree rules: map-backed state, full recounts, no shared code with DynTree.
// The bounded tree's shape is history-dependent, so equivalence is defined
// as "same deterministic rules replayed over the same event history".
type naiveBounded struct {
	g      *graph.Graph
	spt    *graph.SPT
	root   int32
	cap    int32
	member map[int32]int
	parent map[int32]int32
	forced int
}

func newNaiveBounded(g *graph.Graph, spt *graph.SPT, cap int32) *naiveBounded {
	return &naiveBounded{
		g: g, spt: spt, root: int32(spt.Source), cap: cap,
		member: map[int32]int{}, parent: map[int32]int32{},
	}
}

func (nb *naiveBounded) onTree(v int32) bool {
	_, ok := nb.parent[v]
	return ok || v == nb.root
}

func (nb *naiveBounded) deg(v int32) int32 {
	var d int32
	if _, ok := nb.parent[v]; ok {
		d++
	}
	for _, p := range nb.parent {
		if p == v {
			d++
		}
	}
	return d
}

func (nb *naiveBounded) links() int { return len(nb.parent) }

func (nb *naiveBounded) join(r int32) {
	if r < 0 || int(r) >= nb.g.N() || nb.spt.Dist[r] == graph.Unreachable {
		return
	}
	nb.member[r]++
	if nb.member[r] > 1 || nb.onTree(r) {
		return
	}
	a := r
	for !nb.onTree(a) {
		a = nb.spt.Parent[a]
	}
	if nb.cap == 0 || nb.deg(a) < nb.cap {
		nb.graftSPT(r)
		return
	}
	// Deterministic BFS repair: FIFO frontier, ascending neighbors,
	// saturated on-tree nodes are walls.
	prev := map[int32]int32{r: -1}
	queue := []int32{r}
	for qi := 0; qi < len(queue); qi++ {
		u := queue[qi]
		for _, w := range nb.g.Neighbors(int(u)) {
			if _, seen := prev[w]; seen || w == r {
				continue
			}
			if nb.onTree(w) {
				if nb.deg(w) < nb.cap {
					// Attach the path w→…→r.
					for c := u; ; {
						nb.parent[c] = w
						if c == r {
							return
						}
						w = c
						c = prev[c]
					}
				}
				continue
			}
			prev[w] = u
			queue = append(queue, w)
		}
	}
	nb.forced++
	nb.graftSPT(r)
}

func (nb *naiveBounded) graftSPT(r int32) {
	for v := r; !nb.onTree(v); v = nb.spt.Parent[v] {
		nb.parent[v] = nb.spt.Parent[v]
	}
}

func (nb *naiveBounded) leave(r int32) {
	if nb.member[r] == 0 {
		return
	}
	nb.member[r]--
	if nb.member[r] > 0 {
		return
	}
	v := r
	for v != nb.root && nb.member[v] == 0 {
		hasChild := false
		for _, p := range nb.parent {
			if p == v {
				hasChild = true
				break
			}
		}
		if hasChild {
			return
		}
		p := nb.parent[v]
		delete(nb.parent, v)
		v = p
	}
}

// eventStream deterministically generates nEvents join/leave events
// (including duplicate joins and leaves of absent receivers) over n sites.
func eventStream(seed int64, n, nEvents int) (joins []bool, sites []int32) {
	r := rng.New(seed)
	joins = make([]bool, nEvents)
	sites = make([]int32, nEvents)
	for i := range joins {
		joins[i] = r.Intn(100) < 55 // slight join bias so the tree grows
		sites[i] = int32(r.Intn(n))
	}
	return joins, sites
}

func TestDynTreeMatchesRebuildEveryEvent(t *testing.T) {
	g := randGraph(11, 300, 450)
	spt, err := g.BFS(0)
	if err != nil {
		t.Fatal(err)
	}
	dt, err := NewDynTree(g, spt, 0, arena.New())
	if err != nil {
		t.Fatal(err)
	}
	c := NewTreeCounter(g.N())
	member := map[int32]int{}
	joins, sites := eventStream(7, g.N(), 4000)
	var active []int32
	for i, isJoin := range joins {
		s := sites[i]
		if isJoin {
			dt.Join(s)
			member[s]++
		} else {
			dt.Leave(s)
			if member[s] > 0 {
				member[s]--
			}
		}
		active = active[:0]
		for v, cnt := range member {
			if cnt > 0 {
				active = append(active, v)
			}
		}
		if want := c.TreeSize(spt, active); want != dt.Links() {
			t.Fatalf("event %d (join=%v site=%d): incremental links=%d, rebuild=%d",
				i, isJoin, s, dt.Links(), want)
		}
		if i%97 == 0 {
			if err := dt.SelfCheck(c); err != nil {
				t.Fatalf("event %d: %v", i, err)
			}
		}
	}
	if err := dt.SelfCheck(c); err != nil {
		t.Fatal(err)
	}
}

func TestDynTreeSharedMatchesSharedTreeSize(t *testing.T) {
	g := randGraph(13, 250, 380)
	core, source := 17, 3
	coreSPT, err := g.BFS(core)
	if err != nil {
		t.Fatal(err)
	}
	dt, err := NewDynTree(g, coreSPT, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	dt.Join(int32(source)) // the source subscribes permanently
	c := NewTreeCounter(g.N())
	member := map[int32]int{}
	joins, sites := eventStream(19, g.N(), 3000)
	var active []int32
	for i, isJoin := range joins {
		s := sites[i]
		if isJoin {
			dt.Join(s)
			member[s]++
		} else if member[s] > 0 {
			dt.Leave(s)
			member[s]--
		}
		active = active[:0]
		for v, cnt := range member {
			if cnt > 0 {
				active = append(active, v)
			}
		}
		if want := c.SharedTreeSize(coreSPT, int32(source), active); want != dt.Links() {
			t.Fatalf("event %d: incremental shared links=%d, SharedTreeSize=%d", i, dt.Links(), want)
		}
	}
}

func TestDynTreeBoundedMatchesNaiveReplay(t *testing.T) {
	for _, cap := range []int{2, 3, 4} {
		g := randGraph(int64(23+cap), 160, 240)
		spt, err := g.BFS(0)
		if err != nil {
			t.Fatal(err)
		}
		dt, err := NewDynTree(g, spt, cap, arena.New())
		if err != nil {
			t.Fatal(err)
		}
		nb := newNaiveBounded(g, spt, int32(cap))
		joins, sites := eventStream(int64(31*cap), g.N(), 2500)
		for i, isJoin := range joins {
			s := sites[i]
			if isJoin {
				dt.Join(s)
				nb.join(s)
			} else {
				dt.Leave(s)
				nb.leave(s)
			}
			if dt.Links() != nb.links() {
				t.Fatalf("cap=%d event %d (join=%v site=%d): incremental links=%d, naive replay=%d",
					cap, i, isJoin, s, dt.Links(), nb.links())
			}
			if int64(nb.forced) != dt.Forced() {
				t.Fatalf("cap=%d event %d: forced=%d, naive=%d", cap, i, dt.Forced(), nb.forced)
			}
		}
		if err := dt.SelfCheck(nil); err != nil {
			t.Fatalf("cap=%d: %v", cap, err)
		}
		if dt.Forced() == 0 && dt.MaxDegree() > cap {
			t.Fatalf("cap=%d: max degree %d with no forced grafts", cap, dt.MaxDegree())
		}
	}
}

func TestDynTreeBoundedRepairsAroundSaturatedHub(t *testing.T) {
	// Star with a rim cycle: hub 0 joined to every rim node, rim nodes
	// chained in a cycle. With cap 2 the hub saturates after one receiver
	// and later receivers must graft around the rim.
	n := 12
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		if err := b.AddEdge(0, v); err != nil {
			t.Fatal(err)
		}
	}
	for v := 1; v < n; v++ {
		w := v + 1
		if w == n {
			w = 1
		}
		if err := b.AddEdge(v, w); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	spt, err := g.BFS(0)
	if err != nil {
		t.Fatal(err)
	}
	dt, err := NewDynTree(g, spt, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	dt.Join(5) // hub now has one child: degree 1
	dt.Join(9) // hub reaches degree 2 == cap
	if got := dt.MaxDegree(); got > 2 {
		t.Fatalf("max degree %d after two direct joins, want ≤ 2", got)
	}
	dt.Join(7) // hub saturated: must repair through the rim
	if dt.Forced() != 0 {
		t.Fatalf("forced=%d, want repair to succeed around the rim", dt.Forced())
	}
	if got := dt.MaxDegree(); got > 2 {
		t.Fatalf("max degree %d after repair, want ≤ 2", got)
	}
	if !dt.OnTree(7) {
		t.Fatal("receiver 7 not on tree after repair graft")
	}
	if err := dt.SelfCheck(nil); err != nil {
		t.Fatal(err)
	}
}

func TestDynTreeDuplicateAndAbsent(t *testing.T) {
	g := pathGraph(t, 8)
	spt, _ := g.BFS(0)
	dt, err := NewDynTree(g, spt, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := dt.Join(5); got != 5 {
		t.Fatalf("first join grafted %d links, want 5", got)
	}
	if got := dt.Join(5); got != 0 {
		t.Fatalf("duplicate join grafted %d links, want 0", got)
	}
	if got := dt.MemberCount(5); got != 2 {
		t.Fatalf("multiplicity %d, want 2", got)
	}
	if got := dt.Leave(3); got != 0 {
		t.Fatalf("absent leave pruned %d links, want 0", got)
	}
	if got := dt.Join(3); got != 0 {
		t.Fatalf("join of covered relay grafted %d, want 0", got)
	}
	if got := dt.Leave(5); got != 0 {
		t.Fatalf("leave with one member remaining pruned %d, want 0", got)
	}
	if got := dt.Leave(5); got != 2 {
		t.Fatalf("final leave pruned %d links, want 2 (suffix above member 3)", got)
	}
	if got := dt.Leave(3); got != 3 {
		t.Fatalf("last leave pruned %d links, want 3", got)
	}
	if dt.Links() != 0 || dt.Members() != 0 {
		t.Fatalf("links=%d members=%d after full drain, want 0/0", dt.Links(), dt.Members())
	}
	// Out-of-range and unreachable sites are no-ops.
	if got := dt.Join(-1); got != 0 {
		t.Fatalf("negative join = %d", got)
	}
	if got := dt.Join(int32(g.N())); got != 0 {
		t.Fatalf("out-of-range join = %d", got)
	}
}

func TestDynTreeResetReuse(t *testing.T) {
	ar := arena.New()
	g1 := randGraph(41, 120, 180)
	g2 := randGraph(43, 260, 300)
	dt := &DynTree{ar: ar}
	for _, tc := range []struct {
		g    *graph.Graph
		root int
	}{{g1, 0}, {g2, 10}, {g1, 7}} {
		spt, err := tc.g.BFS(tc.root)
		if err != nil {
			t.Fatal(err)
		}
		if err := dt.Reset(tc.g, spt, 0); err != nil {
			t.Fatal(err)
		}
		fresh, err := NewDynTree(tc.g, spt, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		joins, sites := eventStream(int64(tc.root)+51, tc.g.N(), 600)
		for i := range joins {
			if joins[i] {
				dt.Join(sites[i])
				fresh.Join(sites[i])
			} else {
				dt.Leave(sites[i])
				fresh.Leave(sites[i])
			}
		}
		if dt.Links() != fresh.Links() || dt.MaxDegree() != fresh.MaxDegree() {
			t.Fatalf("reused tree links=%d maxdeg=%d, fresh links=%d maxdeg=%d",
				dt.Links(), dt.MaxDegree(), fresh.Links(), fresh.MaxDegree())
		}
		if err := dt.SelfCheck(NewTreeCounter(tc.g.N())); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDynTreeDegreeHist(t *testing.T) {
	g := pathGraph(t, 6)
	spt, _ := g.BFS(0)
	dt, _ := NewDynTree(g, spt, 0, nil)
	dt.Join(5) // path tree: root deg 1, interiors deg 2, leaf deg 1
	hist := dt.DegreeHist(nil)
	want := []int64{0, 2, 4}
	if !slices.Equal(hist, want) {
		t.Fatalf("degree hist = %v, want %v", hist, want)
	}
	if dt.MaxDegree() != 2 {
		t.Fatalf("max degree = %d, want 2", dt.MaxDegree())
	}
}

func TestNewDynTreeValidates(t *testing.T) {
	g := pathGraph(t, 4)
	spt, _ := g.BFS(0)
	if _, err := NewDynTree(nil, spt, 0, nil); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := NewDynTree(g, nil, 0, nil); err == nil {
		t.Fatal("nil SPT accepted")
	}
	if _, err := NewDynTree(g, spt, 1, nil); err == nil {
		t.Fatal("degree cap 1 accepted")
	}
	other := pathGraph(t, 9)
	if _, err := NewDynTree(other, spt, 0, nil); err == nil {
		t.Fatal("mis-sized SPT accepted")
	}
}
