package mcast

import (
	"fmt"
	"math"

	"mtreescale/internal/graph"
	"mtreescale/internal/rng"
)

// This file implements shared-tree (core-based) multicast as a comparison
// baseline. The paper restricts itself to source-specific shortest-path
// trees (footnote 1: "we do not address the efficiency of shared tree
// multicast algorithms. See [12] for one such comparison"); this extension
// provides exactly that comparison, following Wei-Estrin's center-based
// tree model: all group traffic flows over one tree rooted at a core,
// which is the union of the shortest paths from the core to the source and
// to every receiver.

// CoreStrategy selects a shared-tree core for a group.
type CoreStrategy int

const (
	// CoreRandom picks a uniformly random core (CBT with unmanaged core
	// placement).
	CoreRandom CoreStrategy = iota
	// CoreSource places the core at the source: the shared tree then
	// coincides with the source-based tree (useful as a consistency check).
	CoreSource
	// CoreCenter places the core at a low-eccentricity node (managed core
	// placement, approximating the topology center).
	CoreCenter
)

// String implements fmt.Stringer.
func (s CoreStrategy) String() string {
	switch s {
	case CoreRandom:
		return "random-core"
	case CoreSource:
		return "source-core"
	case CoreCenter:
		return "center-core"
	default:
		return fmt.Sprintf("CoreStrategy(%d)", int(s))
	}
}

// SharedTreeSize returns the number of links in the core-based shared tree
// for the given source and receivers: the union of the core-rooted
// shortest-tree paths to every group member (source included — senders must
// reach the core).
func (c *TreeCounter) SharedTreeSize(coreSPT *graph.SPT, source int32, receivers []int32) int {
	// Reuse TreeSize with the source appended conceptually: climb from the
	// source too. TreeSize ignores duplicates, so just measure with an
	// extended receiver view. To avoid allocating, climb source first, then
	// receivers, under one epoch.
	if len(coreSPT.Parent) > len(c.visited) {
		c.visited = make([]int32, len(coreSPT.Parent))
		c.epoch = 0
	}
	c.epoch++
	links := 0
	c.visited[coreSPT.Source] = c.epoch
	climb := func(v int32) {
		if v < 0 || int(v) >= len(coreSPT.Parent) || coreSPT.Dist[v] == graph.Unreachable {
			return
		}
		for c.visited[v] != c.epoch {
			c.visited[v] = c.epoch
			links++
			v = coreSPT.Parent[v]
		}
	}
	climb(source)
	for _, r := range receivers {
		climb(r)
	}
	return links
}

// SharedPoint aggregates one group size of a shared-vs-source comparison.
type SharedPoint struct {
	Size int
	// MeanSourceTree is E[L] for the source-rooted shortest-path tree.
	MeanSourceTree float64
	// MeanSharedTree is E[L] for the core-based shared tree.
	MeanSharedTree float64
	// MeanOverhead is E[shared/source], the per-sample cost ratio
	// (Wei-Estrin report ≈1.0-1.4 for center-based vs source trees).
	MeanOverhead float64
	Samples      int
}

// MeasureSharedCurve runs the §2 protocol measuring both the source-based
// and the shared (core-based) delivery tree on the same receiver samples.
func MeasureSharedCurve(g *graph.Graph, sizes []int, strategy CoreStrategy, p Protocol) ([]SharedPoint, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if g.N() < 2 {
		return nil, fmt.Errorf("mcast: graph too small (N=%d)", g.N())
	}
	maxPop := g.N() - 1
	for _, s := range sizes {
		if s <= 0 || s > maxPop {
			return nil, fmt.Errorf("mcast: group size %d out of [1, %d]", s, maxPop)
		}
	}
	var center int
	if strategy == CoreCenter {
		var err error
		center, err = approxCenter(g, p.Seed)
		if err != nil {
			return nil, err
		}
	}

	srcRand := rng.NewChild(p.Seed, -1)
	coreRand := rng.NewChild(p.Seed, -2)
	counter := NewTreeCounter(g.N())
	out := make([]SharedPoint, len(sizes))
	for k := range out {
		out[k].Size = sizes[k]
	}
	var srcSPT, coreSPT graph.SPT
	var recv []int32
	for si := 0; si < p.NSource; si++ {
		source := srcRand.Intn(g.N())
		core := center
		switch strategy {
		case CoreRandom:
			core = coreRand.Intn(g.N())
		case CoreSource:
			core = source
		}
		if err := g.BFSInto(source, &srcSPT); err != nil {
			return nil, err
		}
		if err := g.BFSInto(core, &coreSPT); err != nil {
			return nil, err
		}
		r := rng.NewChild(p.Seed, int64(si))
		smp, err := NewSampler(g.N(), source, r)
		if err != nil {
			return nil, err
		}
		for k, size := range sizes {
			for rep := 0; rep < p.NRcvr; rep++ {
				recv, err = smp.Distinct(size, recv)
				if err != nil {
					return nil, err
				}
				src := counter.TreeSize(&srcSPT, recv)
				shr := counter.SharedTreeSize(&coreSPT, int32(source), recv)
				if src == 0 {
					continue
				}
				out[k].MeanSourceTree += float64(src)
				out[k].MeanSharedTree += float64(shr)
				out[k].MeanOverhead += float64(shr) / float64(src)
				out[k].Samples++
			}
		}
	}
	for k := range out {
		if out[k].Samples > 0 {
			n := float64(out[k].Samples)
			out[k].MeanSourceTree /= n
			out[k].MeanSharedTree /= n
			out[k].MeanOverhead /= n
		}
	}
	return out, nil
}

// approxCenter returns a node with approximately minimum eccentricity by
// sampling BFS sources and picking the node minimizing the max distance to
// the sampled sources — a cheap 2-approximation-flavor heuristic adequate
// for core placement.
func approxCenter(g *graph.Graph, seed int64) (int, error) {
	if g.N() == 0 {
		return 0, fmt.Errorf("mcast: empty graph")
	}
	r := rng.NewChild(seed, -3)
	samples := 8
	if samples > g.N() {
		samples = g.N()
	}
	maxDist := make([]int32, g.N())
	var spt graph.SPT
	for i := 0; i < samples; i++ {
		if err := g.BFSInto(r.Intn(g.N()), &spt); err != nil {
			return 0, err
		}
		for v := 0; v < g.N(); v++ {
			d := spt.Dist[v]
			if d == graph.Unreachable {
				d = math.MaxInt32
			}
			if d > maxDist[v] {
				maxDist[v] = d
			}
		}
	}
	best := 0
	for v := 1; v < g.N(); v++ {
		if maxDist[v] < maxDist[best] {
			best = v
		}
	}
	return best, nil
}
