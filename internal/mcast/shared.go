package mcast

import (
	"context"
	"fmt"
	"math"

	"mtreescale/internal/graph"
	"mtreescale/internal/rng"
)

// This file implements shared-tree (core-based) multicast as a comparison
// baseline. The paper restricts itself to source-specific shortest-path
// trees (footnote 1: "we do not address the efficiency of shared tree
// multicast algorithms. See [12] for one such comparison"); this extension
// provides exactly that comparison, following Wei-Estrin's center-based
// tree model: all group traffic flows over one tree rooted at a core,
// which is the union of the shortest paths from the core to the source and
// to every receiver.

// CoreStrategy selects a shared-tree core for a group.
type CoreStrategy int

const (
	// CoreRandom picks a uniformly random core (CBT with unmanaged core
	// placement).
	CoreRandom CoreStrategy = iota
	// CoreSource places the core at the source: the shared tree then
	// coincides with the source-based tree (useful as a consistency check).
	CoreSource
	// CoreCenter places the core at a low-eccentricity node (managed core
	// placement, approximating the topology center).
	CoreCenter
)

// String implements fmt.Stringer.
func (s CoreStrategy) String() string {
	switch s {
	case CoreRandom:
		return "random-core"
	case CoreSource:
		return "source-core"
	case CoreCenter:
		return "center-core"
	default:
		return fmt.Sprintf("CoreStrategy(%d)", int(s))
	}
}

// SharedTreeSize returns the number of links in the core-based shared tree
// for the given source and receivers: the union of the core-rooted
// shortest-tree paths to every group member (source included — senders must
// reach the core).
func (c *TreeCounter) SharedTreeSize(coreSPT *graph.SPT, source int32, receivers []int32) int {
	// Reuse TreeSize with the source appended conceptually: climb from the
	// source too. TreeSize ignores duplicates, so just measure with an
	// extended receiver view. To avoid allocating, climb source first, then
	// receivers, under one epoch.
	if len(coreSPT.Parent) > len(c.visited) {
		c.visited = make([]int32, len(coreSPT.Parent))
		c.epoch = 0
	}
	c.epoch++
	links := 0
	c.visited[coreSPT.Source] = c.epoch
	climb := func(v int32) {
		if v < 0 || int(v) >= len(coreSPT.Parent) || coreSPT.Dist[v] == graph.Unreachable {
			return
		}
		for c.visited[v] != c.epoch {
			c.visited[v] = c.epoch
			links++
			v = coreSPT.Parent[v]
		}
	}
	climb(source)
	for _, r := range receivers {
		climb(r)
	}
	return links
}

// SharedPoint aggregates one group size of a shared-vs-source comparison.
type SharedPoint struct {
	Size int
	// MeanSourceTree is E[L] for the source-rooted shortest-path tree.
	MeanSourceTree float64
	// MeanSharedTree is E[L] for the core-based shared tree.
	MeanSharedTree float64
	// MeanOverhead is E[shared/source], the per-sample cost ratio
	// (Wei-Estrin report ≈1.0-1.4 for center-based vs source trees).
	MeanOverhead float64
	Samples      int
}

// MeasureSharedCurve runs the §2 protocol measuring both the source-based
// and the shared (core-based) delivery tree on the same receiver samples.
//
// The computation parallelizes over sources through the same worker pool as
// MeasureCurve; per-(source, size) partial sums live in contiguous slabs and
// are reduced in source order, so the float result is identical for any
// Workers setting. Source and core draws come from independent pre-drawn RNG
// streams, matching the sequential engine's sequences exactly.
func MeasureSharedCurve(g *graph.Graph, sizes []int, strategy CoreStrategy, p Protocol) ([]SharedPoint, error) {
	return MeasureSharedCurveCtx(context.Background(), g, sizes, strategy, p)
}

// MeasureSharedCurveCtx is MeasureSharedCurve under a cancellation context:
// the worker pool observes ctx at grid-point granularity and returns its
// error promptly after cancellation. A nil ctx means Background.
func MeasureSharedCurveCtx(ctx context.Context, g *graph.Graph, sizes []int, strategy CoreStrategy, p Protocol) ([]SharedPoint, error) {
	ctx = orBackground(ctx)
	if err := validateSharedArgs(g, sizes, p); err != nil {
		return nil, err
	}
	sources, cores, err := drawSharedPairs(g, strategy, p)
	if err != nil {
		return nil, err
	}

	// The batch path resolves source and core trees in one slab: lane si is
	// sources[si], lane NSource+si is cores[si].
	combined := make([]int, 0, 2*p.NSource)
	combined = append(combined, sources...)
	combined = append(combined, cores...)
	bt, err := resolveBatch(g, combined, p)
	if err != nil {
		return nil, err
	}
	defer bt.release()
	acc := newSharedAccum(p.NSource, len(sizes))
	err = runSourceWorkers(ctx, p, func(si int) error {
		return measureSourceShared(ctx, g, sources[si], cores[si], si, si, p.NSource, sizes, p, bt, acc)
	})
	if err != nil {
		return nil, err
	}
	return acc.reduce(sizes), nil
}

// validateSharedArgs is the argument check shared by the full and partial
// shared-curve engines.
func validateSharedArgs(g *graph.Graph, sizes []int, p Protocol) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if g.N() < 2 {
		return fmt.Errorf("mcast: graph too small (N=%d)", g.N())
	}
	maxPop := g.N() - 1
	for _, s := range sizes {
		if s <= 0 || s > maxPop {
			return fmt.Errorf("mcast: group size %d out of [1, %d]", s, maxPop)
		}
	}
	return nil
}

// drawSharedPairs pre-draws the full per-source (source, core) sequence for
// the protocol. The two streams are independent children of the protocol
// seed, so draining each in source order reproduces the sequences the
// sequential loop consumed; a partial engine draws the full sequence and
// slices its block, which keeps every source's identity independent of how
// the sweep is sharded.
func drawSharedPairs(g *graph.Graph, strategy CoreStrategy, p Protocol) (sources, cores []int, err error) {
	var center int
	if strategy == CoreCenter {
		center, err = approxCenter(g, p.Seed, p.BatchBFS)
		if err != nil {
			return nil, nil, err
		}
	}
	srcRand := rng.NewChild(p.Seed, -1)
	coreRand := rng.NewChild(p.Seed, -2)
	sources = make([]int, p.NSource)
	cores = make([]int, p.NSource)
	for si := range sources {
		sources[si] = srcRand.Intn(g.N())
		switch strategy {
		case CoreRandom:
			cores[si] = coreRand.Intn(g.N())
		case CoreSource:
			cores[si] = sources[si]
		default:
			cores[si] = center
		}
	}
	return sources, cores, nil
}

// sharedAccum holds per-(source, size) partial sums of the shared-curve
// engine in contiguous slabs indexed [si*K + k], the same lock-free layout as
// curveAccum: distinct sources never share a cell.
type sharedAccum struct {
	K                      int
	srcSum, shrSum, ovhSum []float64
	samples                []int
}

func newSharedAccum(nSource, K int) *sharedAccum {
	slab := make([]float64, 3*nSource*K)
	return &sharedAccum{
		K:       K,
		srcSum:  slab[0 : nSource*K],
		shrSum:  slab[nSource*K : 2*nSource*K],
		ovhSum:  slab[2*nSource*K : 3*nSource*K],
		samples: make([]int, nSource*K),
	}
}

func (a *sharedAccum) add(si, k int, src, shr, overhead float64) {
	i := si*a.K + k
	a.srcSum[i] += src
	a.shrSum[i] += shr
	a.ovhSum[i] += overhead
	a.samples[i]++
}

// reduce aggregates the slabs in source order for a scheduling-independent
// float result.
func (a *sharedAccum) reduce(sizes []int) []SharedPoint {
	nSource := len(a.samples) / a.K
	out := make([]SharedPoint, len(sizes))
	for k := range out {
		out[k].Size = sizes[k]
		for si := 0; si < nSource; si++ {
			i := si*a.K + k
			out[k].MeanSourceTree += a.srcSum[i]
			out[k].MeanSharedTree += a.shrSum[i]
			out[k].MeanOverhead += a.ovhSum[i]
			out[k].Samples += a.samples[i]
		}
		if out[k].Samples > 0 {
			n := float64(out[k].Samples)
			out[k].MeanSourceTree /= n
			out[k].MeanSharedTree /= n
			out[k].MeanOverhead /= n
		}
	}
	return out
}

// measureSourceShared runs the shared-curve inner loop for one source: both
// trees resolved (lane views when the batch path is engaged, else from the
// SPT cache when enabled, else per-source BFS), packed, then every
// (size, rep) sample measured against each through the fused packed walks.
// ctx is polled at every grid point.
//
// si is the global source index (RNG identity); lane is the slot in the
// batch slab and the accumulator (lane == si for a full sweep); laneCount is
// the number of source lanes in the batch, after which the core lanes start
// (p.NSource for a full sweep, the block size for a partial one).
func measureSourceShared(ctx context.Context, g *graph.Graph, source, core, si, lane, laneCount int, sizes []int, p Protocol, bt *batchTrees, acc *sharedAccum) error {
	sc := getScratch(g.N())
	defer scratchPool.Put(sc)
	srcSPT, coreSPT := &sc.spt, &sc.spt2
	if bt != nil {
		bt.view(lane, &sc.view)
		bt.view(laneCount+lane, &sc.view2)
		srcSPT, coreSPT = &sc.view, &sc.view2
	} else if p.SPTCache {
		var err error
		if srcSPT, err = graph.SharedSPTs.Get(g, source); err != nil {
			return err
		}
		if coreSPT, err = graph.SharedSPTs.Get(g, core); err != nil {
			return err
		}
	} else {
		if err := g.BFSInto(source, srcSPT); err != nil {
			return err
		}
		if err := g.BFSInto(core, coreSPT); err != nil {
			return err
		}
	}
	sc.pd = packTree(srcSPT, sc.growPacked(sc.pd, len(srcSPT.Parent)))
	sc.pd2 = packTree(coreSPT, sc.growPacked(sc.pd2, len(coreSPT.Parent)))
	// Receivers always exclude the source here (the shared-tree comparison
	// keeps the paper's receiver model regardless of IncludeSource).
	if err := sc.smp.Reset(g.N(), source, rng.NewChild(p.Seed, int64(si))); err != nil {
		return err
	}
	var err error
	for k, size := range sizes {
		if err := ctx.Err(); err != nil {
			return err
		}
		for rep := 0; rep < p.NRcvr; rep++ {
			sc.recv, err = sc.smp.Distinct(size, sc.recv)
			if err != nil {
				return err
			}
			src := sc.counter.treeSizePacked(int32(srcSPT.Source), sc.pd, sc.recv)
			shr := sc.counter.sharedTreeSizePacked(int32(coreSPT.Source), sc.pd2, int32(source), sc.recv)
			if src == 0 {
				continue
			}
			acc.add(lane, k, float64(src), float64(shr), float64(shr)/float64(src))
		}
	}
	return nil
}

// approxCenter returns a node with approximately minimum eccentricity by
// sampling BFS sources and picking the node minimizing the max distance to
// the sampled sources — a cheap 2-approximation-flavor heuristic adequate
// for core placement. With batch set, the sampled traversals run as one
// MS-BFS batch; the sample sources are pre-drawn from the same stream in the
// same order, and only Dist values are read, so the result is identical.
func approxCenter(g *graph.Graph, seed int64, batch bool) (int, error) {
	if g.N() == 0 {
		return 0, fmt.Errorf("mcast: empty graph")
	}
	r := rng.NewChild(seed, -3)
	samples := 8
	if samples > g.N() {
		samples = g.N()
	}
	srcs := make([]int, samples)
	for i := range srcs {
		srcs[i] = r.Intn(g.N())
	}
	maxDist := make([]int32, g.N())
	accumulate := func(dist []int32) {
		for v, d := range dist {
			if d == graph.Unreachable {
				d = math.MaxInt32
			}
			if d > maxDist[v] {
				maxDist[v] = d
			}
		}
	}
	if batch {
		b := graph.AcquireSPTBatch()
		defer graph.ReleaseSPTBatch(b)
		if err := g.BatchSPTsInto(srcs, b); err != nil {
			return 0, err
		}
		for i := range srcs {
			accumulate(b.DistRow(i))
		}
	} else {
		var spt graph.SPT
		for _, s := range srcs {
			if err := g.BFSInto(s, &spt); err != nil {
				return 0, err
			}
			accumulate(spt.Dist)
		}
	}
	best := 0
	for v := 1; v < g.N(); v++ {
		if maxDist[v] < maxDist[best] {
			best = v
		}
	}
	return best, nil
}
