package mcast

import (
	"sync"
	"testing"

	"mtreescale/internal/graph"
)

// fuzzChurnGraphs are the fixed topologies the churn fuzzer replays event
// streams on: a random sparse graph, a path (deep grafts), and a hub-heavy
// star-with-rim (bounded-variant repairs fire constantly).
var fuzzChurnGraphs = struct {
	once sync.Once
	gs   []*graph.Graph
}{}

func fuzzGraphs() []*graph.Graph {
	fuzzChurnGraphs.once.Do(func() {
		star := graph.NewBuilder(40)
		for v := 1; v < 40; v++ {
			_ = star.AddEdge(0, v)
		}
		for v := 1; v < 40; v++ {
			w := v + 1
			if w == 40 {
				w = 1
			}
			_ = star.AddEdge(v, w)
		}
		path := graph.NewBuilder(32)
		for i := 0; i+1 < 32; i++ {
			_ = path.AddEdge(i, i+1)
		}
		fuzzChurnGraphs.gs = []*graph.Graph{
			randGraph(101, 64, 90),
			path.Build(),
			star.Build(),
		}
	})
	return fuzzChurnGraphs.gs
}

// FuzzChurnEquivalence feeds an arbitrary byte string as a churn event
// stream — joins and leaves of arbitrary sites, naturally including
// duplicate joins, leaves of absent receivers, and out-of-range ids — and
// asserts after EVERY event that the incremental link count matches a
// from-scratch rebuild: TreeCounter.TreeSize over the live member set for
// the unbounded tree, and the independent naiveBounded replay for the
// capped tree. Byte layout: bit 0 = join/leave, bits 1..7 = site (shifted
// past N to also exercise the out-of-range guards).
func FuzzChurnEquivalence(f *testing.F) {
	f.Add([]byte{}, uint8(0))
	f.Add([]byte{0x01, 0x03, 0x01, 0x00, 0x02}, uint8(1))
	f.Add([]byte{0xff, 0xfe, 0xff, 0xfe, 0x81, 0x80}, uint8(2))
	f.Add([]byte("join leave join join leave"), uint8(5))
	f.Fuzz(func(t *testing.T, events []byte, pick uint8) {
		if len(events) > 2048 {
			events = events[:2048]
		}
		gs := fuzzGraphs()
		g := gs[int(pick)%len(gs)]
		degCap := 2 + int(pick>>4)%3 // caps 2..4
		spt, err := g.BFS(0)
		if err != nil {
			t.Fatal(err)
		}
		free, err := NewDynTree(g, spt, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		capped, err := NewDynTree(g, spt, degCap, nil)
		if err != nil {
			t.Fatal(err)
		}
		naive := newNaiveBounded(g, spt, int32(degCap))
		c := NewTreeCounter(g.N())
		member := map[int32]int{}
		var active []int32
		for i, b := range events {
			// Sites run past N so out-of-range joins/leaves are fuzzed too.
			site := int32(b>>1) % int32(g.N()+3)
			if b&1 == 1 {
				free.Join(site)
				capped.Join(site)
				naive.join(site)
				if int(site) < g.N() {
					member[site]++
				}
			} else {
				free.Leave(site)
				capped.Leave(site)
				naive.leave(site)
				if member[site] > 0 {
					member[site]--
				}
			}
			active = active[:0]
			for v, cnt := range member {
				if cnt > 0 {
					active = append(active, v)
				}
			}
			if want := c.TreeSize(spt, active); want != free.Links() {
				t.Fatalf("event %d (byte %#x): incremental links=%d, rebuild=%d", i, b, free.Links(), want)
			}
			if naive.links() != capped.Links() {
				t.Fatalf("event %d (byte %#x, cap %d): incremental bounded links=%d, naive replay=%d",
					i, b, degCap, capped.Links(), naive.links())
			}
		}
		if err := free.SelfCheck(c); err != nil {
			t.Fatal(err)
		}
		if err := capped.SelfCheck(nil); err != nil {
			t.Fatal(err)
		}
	})
}
