package mcast

import (
	"testing"
	"testing/quick"

	"mtreescale/internal/graph"
	"mtreescale/internal/rng"
	"mtreescale/internal/topology"
)

func pathGraph(t testing.TB, n int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		if err := b.AddEdge(i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func randGraph(seed int64, n, extra int) *graph.Graph {
	r := rng.New(seed)
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		_ = b.AddEdge(v, r.Intn(v))
	}
	for i := 0; i < extra; i++ {
		_ = b.AddEdge(r.Intn(n), r.Intn(n))
	}
	return b.Build()
}

func TestTreeSizeSingleReceiver(t *testing.T) {
	g := pathGraph(t, 10)
	spt, _ := g.BFS(0)
	c := NewTreeCounter(g.N())
	// L(1) must equal the unicast distance.
	for v := 1; v < 10; v++ {
		if got := c.TreeSize(spt, []int32{int32(v)}); got != v {
			t.Fatalf("L({%d}) = %d, want %d", v, got, v)
		}
	}
}

func TestTreeSizeSharedPath(t *testing.T) {
	// Star with two rays: 0-1-2-3 and 0-4-5. Receivers 3 and 5 share nothing;
	// receivers 2 and 3 share the prefix.
	b := graph.NewBuilder(6)
	_ = b.AddEdge(0, 1)
	_ = b.AddEdge(1, 2)
	_ = b.AddEdge(2, 3)
	_ = b.AddEdge(0, 4)
	_ = b.AddEdge(4, 5)
	g := b.Build()
	spt, _ := g.BFS(0)
	c := NewTreeCounter(g.N())
	if got := c.TreeSize(spt, []int32{3, 5}); got != 5 {
		t.Fatalf("disjoint rays: L = %d, want 5", got)
	}
	if got := c.TreeSize(spt, []int32{2, 3}); got != 3 {
		t.Fatalf("shared prefix: L = %d, want 3", got)
	}
}

func TestTreeSizeDuplicatesFree(t *testing.T) {
	g := pathGraph(t, 8)
	spt, _ := g.BFS(0)
	c := NewTreeCounter(g.N())
	a := c.TreeSize(spt, []int32{5})
	b := c.TreeSize(spt, []int32{5, 5, 5, 5})
	if a != b {
		t.Fatalf("duplicates changed tree size: %d vs %d", a, b)
	}
}

func TestTreeSizeSourceAsReceiver(t *testing.T) {
	g := pathGraph(t, 5)
	spt, _ := g.BFS(2)
	c := NewTreeCounter(g.N())
	if got := c.TreeSize(spt, []int32{2}); got != 0 {
		t.Fatalf("L({source}) = %d, want 0", got)
	}
}

func TestTreeSizeEmpty(t *testing.T) {
	g := pathGraph(t, 5)
	spt, _ := g.BFS(0)
	c := NewTreeCounter(g.N())
	if got := c.TreeSize(spt, nil); got != 0 {
		t.Fatalf("L({}) = %d", got)
	}
}

func TestTreeSizeUnreachableIgnored(t *testing.T) {
	b := graph.NewBuilder(4)
	_ = b.AddEdge(0, 1)
	_ = b.AddEdge(2, 3)
	g := b.Build()
	spt, _ := g.BFS(0)
	c := NewTreeCounter(g.N())
	if got := c.TreeSize(spt, []int32{1, 3}); got != 1 {
		t.Fatalf("L = %d, want 1 (node 3 unreachable)", got)
	}
	if got := c.TreeSize(spt, []int32{-5, 99}); got != 0 {
		t.Fatalf("garbage receivers must be ignored, L = %d", got)
	}
}

func TestTreeSizeAllNodes(t *testing.T) {
	// Spanning everything must give exactly the SPT size = reachable-1.
	g := randGraph(3, 100, 150)
	spt, _ := g.BFS(0)
	c := NewTreeCounter(g.N())
	all := make([]int32, g.N())
	for i := range all {
		all[i] = int32(i)
	}
	if got := c.TreeSize(spt, all); got != spt.Reachable()-1 {
		t.Fatalf("full tree = %d, want %d", got, spt.Reachable()-1)
	}
}

func TestTreeSizeMatchesSlowReference(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8) bool {
		n := int(nRaw%60) + 2
		g := randGraph(seed, n, n/2)
		spt, err := g.BFS(0)
		if err != nil {
			return false
		}
		r := rng.New(seed + 1)
		m := int(mRaw)%n + 1
		recv := make([]int32, m)
		for i := range recv {
			recv[i] = int32(r.Intn(n))
		}
		c := NewTreeCounter(n)
		return c.TreeSize(spt, recv) == TreeSizeSlow(spt, recv)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTreeCounterReuseAcrossGraphSizes(t *testing.T) {
	// A counter created small must adapt to larger graphs.
	c := NewTreeCounter(4)
	g := randGraph(9, 500, 700)
	spt, _ := g.BFS(0)
	if got, want := c.TreeSize(spt, []int32{42}), int(spt.Dist[42]); got != want {
		t.Fatalf("resized counter: L = %d, want %d", got, want)
	}
}

func TestTreeCounterEpochIsolation(t *testing.T) {
	// Consecutive measurements must not leak visited state.
	g := pathGraph(t, 10)
	spt, _ := g.BFS(0)
	c := NewTreeCounter(g.N())
	first := c.TreeSize(spt, []int32{9})
	for i := 0; i < 100; i++ {
		if got := c.TreeSize(spt, []int32{9}); got != first {
			t.Fatalf("iteration %d: L = %d, want %d", i, got, first)
		}
	}
}

func TestMeasurementInvariants(t *testing.T) {
	g := randGraph(11, 300, 450)
	spt, _ := g.BFS(0)
	c := NewTreeCounter(g.N())
	r := rng.New(2)
	for trial := 0; trial < 200; trial++ {
		m := r.Intn(50) + 1
		recv := make([]int32, m)
		for i := range recv {
			recv[i] = int32(r.Intn(g.N()))
		}
		meas := c.Measure(spt, recv)
		if err := meas.Validate(spt); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Max single receiver distance is a lower bound on L.
		var maxD int32
		for _, v := range recv {
			if spt.Dist[v] > maxD {
				maxD = spt.Dist[v]
			}
		}
		if meas.Links < int(maxD) {
			t.Fatalf("trial %d: L=%d below max dist %d", trial, meas.Links, maxD)
		}
	}
}

func TestMeasurementRatioZeroWhenNoReceivers(t *testing.T) {
	var m Measurement
	if m.Ratio() != 0 || m.AvgUnicast() != 0 {
		t.Fatal("empty measurement must have zero ratio")
	}
}

func TestUnicastSum(t *testing.T) {
	g := pathGraph(t, 6)
	spt, _ := g.BFS(0)
	hops, reach := UnicastSum(spt, []int32{1, 3, 5})
	if hops != 9 || reach != 3 {
		t.Fatalf("hops=%d reach=%d", hops, reach)
	}
	hops, reach = UnicastSum(spt, []int32{-1, 100})
	if hops != 0 || reach != 0 {
		t.Fatalf("garbage: hops=%d reach=%d", hops, reach)
	}
}

func TestTreeSizeOnKAryTreeMatchesDepthBound(t *testing.T) {
	tr, err := topology.NewKAryTree(2, 6)
	if err != nil {
		t.Fatal(err)
	}
	spt, _ := tr.Graph.BFS(0)
	c := NewTreeCounter(tr.Graph.N())
	// One leaf: exactly D links.
	if got := c.TreeSize(spt, []int32{int32(tr.Leaf(0))}); got != 6 {
		t.Fatalf("single leaf tree = %d, want 6", got)
	}
	// All leaves: the whole tree, N-1 links.
	all := make([]int32, tr.Leaves)
	for i := range all {
		all[i] = int32(tr.Leaf(i))
	}
	if got := c.TreeSize(spt, all); got != tr.Graph.N()-1 {
		t.Fatalf("all-leaves tree = %d, want %d", got, tr.Graph.N()-1)
	}
}
