package mcast

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"mtreescale/internal/graph"
	"mtreescale/internal/rng"
)

// Protocol is the Monte-Carlo measurement protocol of §2 of the paper:
// NSource random sources (drawn with replacement), and for each source and
// each group size, NRcvr random receiver sets.
type Protocol struct {
	// NSource is the number of source draws (paper default 100).
	NSource int
	// NRcvr is the number of receiver sets per source and group size
	// (paper default 100).
	NRcvr int
	// Seed makes the whole sweep deterministic.
	Seed int64
	// IncludeSource lets the source site also be drawn as a receiver.
	// The paper excludes it (receivers are *other* sites).
	IncludeSource bool
	// Workers bounds the number of concurrent source workers;
	// 0 means GOMAXPROCS.
	Workers int
}

// Validate checks protocol sanity.
func (p Protocol) Validate() error {
	if p.NSource <= 0 || p.NRcvr <= 0 {
		return fmt.Errorf("mcast: protocol needs NSource > 0 and NRcvr > 0 (got %d, %d)", p.NSource, p.NRcvr)
	}
	if p.Workers < 0 {
		return fmt.Errorf("mcast: negative worker count %d", p.Workers)
	}
	return nil
}

// DefaultProtocol is the paper's 100×100 protocol.
func DefaultProtocol(seed int64) Protocol {
	return Protocol{NSource: 100, NRcvr: 100, Seed: seed}
}

// Point is the aggregated observation for one group size.
type Point struct {
	// Size is the group size: m (distinct mode) or n (replacement mode).
	Size int
	// MeanRatio is the average of L/ū over all samples — the y-value of
	// the paper's Figure 1 (before taking logs).
	MeanRatio float64
	// RatioStdErr is the standard error of MeanRatio.
	RatioStdErr float64
	// MeanLinks is the average delivery-tree size L.
	MeanLinks float64
	// MeanUnicast is the average per-sample unicast path length ū.
	MeanUnicast float64
	// Samples is the number of Monte-Carlo samples aggregated.
	Samples int
}

// Mode selects between the paper's two receiver-drawing protocols.
type Mode int

const (
	// Distinct draws exactly m distinct receiver sites: the L(m) protocol.
	Distinct Mode = iota
	// WithReplacement draws n sites with replacement: the L̄(n) protocol.
	WithReplacement
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Distinct:
		return "distinct"
	case WithReplacement:
		return "with-replacement"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// MeasureCurve runs the full §2 protocol on g for every group size in sizes
// and returns one aggregated Point per size, in input order.
//
// The computation parallelizes over sources; results are deterministic for a
// fixed Protocol regardless of scheduling, because each source draw has its
// own derived RNG stream and partial sums are reduced in source order.
func MeasureCurve(g *graph.Graph, sizes []int, mode Mode, p Protocol) ([]Point, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if g.N() < 2 {
		return nil, fmt.Errorf("mcast: graph too small (N=%d)", g.N())
	}
	maxPop := g.N()
	if !p.IncludeSource {
		maxPop--
	}
	for _, s := range sizes {
		if s <= 0 {
			return nil, fmt.Errorf("mcast: group size %d must be positive", s)
		}
		if mode == Distinct && s > maxPop {
			return nil, fmt.Errorf("mcast: m=%d exceeds receiver population %d", s, maxPop)
		}
	}

	// Pre-draw the source sequence deterministically.
	srcRand := rng.NewChild(p.Seed, -1)
	sources := make([]int, p.NSource)
	for i := range sources {
		sources[i] = srcRand.Intn(g.N())
	}

	type partial struct {
		ratioSum, ratioSq  []float64
		linkSum, unicastSm []float64
		samples            []int
	}
	partials := make([]*partial, p.NSource)

	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > p.NSource {
		workers = p.NSource
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var spt graph.SPT
			counter := NewTreeCounter(g.N())
			var recv []int32
			for si := range jobs {
				pt := &partial{
					ratioSum:  make([]float64, len(sizes)),
					ratioSq:   make([]float64, len(sizes)),
					linkSum:   make([]float64, len(sizes)),
					unicastSm: make([]float64, len(sizes)),
					samples:   make([]int, len(sizes)),
				}
				partials[si] = pt
				src := sources[si]
				if err := g.BFSInto(src, &spt); err != nil {
					errs[w] = err
					return
				}
				exclude := src
				if p.IncludeSource {
					exclude = -1
				}
				r := rng.NewChild(p.Seed, int64(si))
				smp, err := NewSampler(g.N(), exclude, r)
				if err != nil {
					errs[w] = err
					return
				}
				for k, size := range sizes {
					for rep := 0; rep < p.NRcvr; rep++ {
						switch mode {
						case Distinct:
							recv, err = smp.Distinct(size, recv)
						case WithReplacement:
							recv, err = smp.WithReplacement(size, recv)
						default:
							err = fmt.Errorf("mcast: unknown mode %v", mode)
						}
						if err != nil {
							errs[w] = err
							return
						}
						meas := counter.Measure(&spt, recv)
						if meas.Receivers == 0 {
							continue // source in a tiny component; skip sample
						}
						ratio := meas.Ratio()
						pt.ratioSum[k] += ratio
						pt.ratioSq[k] += ratio * ratio
						pt.linkSum[k] += float64(meas.Links)
						pt.unicastSm[k] += meas.AvgUnicast()
						pt.samples[k]++
					}
				}
			}
		}(w)
	}
	for si := 0; si < p.NSource; si++ {
		jobs <- si
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Sequential reduction in source order: deterministic float result.
	points := make([]Point, len(sizes))
	for k := range sizes {
		var links, unicast, ratioSum, ratioSq float64
		n := 0
		for si := 0; si < p.NSource; si++ {
			pt := partials[si]
			links += pt.linkSum[k]
			unicast += pt.unicastSm[k]
			ratioSum += pt.ratioSum[k]
			ratioSq += pt.ratioSq[k]
			n += pt.samples[k]
		}
		points[k] = Point{Size: sizes[k], Samples: n}
		if n > 0 {
			mean := ratioSum / float64(n)
			points[k].MeanRatio = mean
			points[k].MeanLinks = links / float64(n)
			points[k].MeanUnicast = unicast / float64(n)
			if n > 1 {
				variance := (ratioSq - float64(n)*mean*mean) / float64(n-1)
				if variance < 0 {
					variance = 0 // float cancellation guard
				}
				points[k].RatioStdErr = math.Sqrt(variance / float64(n))
			}
		}
	}
	return points, nil
}

// LogSpacedSizes returns up to count distinct group sizes spanning [1, max],
// approximately geometrically spaced — the x-grid of the paper's log-scale
// figures.
func LogSpacedSizes(max, count int) []int {
	if max < 1 || count < 1 {
		return nil
	}
	if count > max {
		count = max
	}
	out := make([]int, 0, count)
	last := 0
	for i := 0; i < count; i++ {
		var v int
		if count == 1 {
			v = max
		} else {
			v = int(math.Pow(float64(max), float64(i)/float64(count-1)) + 0.5)
		}
		if v <= last {
			v = last + 1
		}
		if v > max {
			break
		}
		out = append(out, v)
		last = v
	}
	return out
}
