package mcast

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"

	"mtreescale/internal/arena"
	"mtreescale/internal/chaos"
	"mtreescale/internal/graph"
	"mtreescale/internal/panicsafe"
	"mtreescale/internal/rng"
	"mtreescale/internal/valid"
)

// Protocol is the Monte-Carlo measurement protocol of §2 of the paper:
// NSource random sources (drawn with replacement), and for each source and
// each group size, NRcvr random receiver sets.
type Protocol struct {
	// NSource is the number of source draws (paper default 100).
	NSource int
	// NRcvr is the number of receiver sets per source and group size
	// (paper default 100).
	NRcvr int
	// Seed makes the whole sweep deterministic.
	Seed int64
	// IncludeSource lets the source site also be drawn as a receiver.
	// The paper excludes it (receivers are *other* sites).
	IncludeSource bool
	// Workers bounds the number of concurrent source workers; 0 means
	// GOMAXPROCS. The pool never runs more workers than there are source
	// jobs, so the effective concurrency is min(Workers, NSource) — see
	// EffectiveWorkers. Requesting more is not an error, just headroom
	// that cannot be used.
	Workers int
	// Nested routes MeasureCurve through the incremental nested-growth
	// engine (MeasureCurveNested): one receiver permutation per repetition,
	// grown link by link, read off at every grid size. Statistically
	// equivalent to the independent-sets protocol and roughly GridPoints×
	// cheaper; the paper-faithful reference path is Nested == false.
	Nested bool
	// SPTCache routes shortest-path-tree construction through the
	// process-wide graph.SharedSPTs cache, so experiments that draw the
	// same sources on the same (topology-cached) graph reuse trees instead
	// of re-running BFS. Cached trees come from the same routed BFS kernel
	// as the uncached path, so results are byte-identical either way.
	// Leave false for transient graphs that should not pin cache budget.
	SPTCache bool
	// BatchBFS routes shortest-path-tree construction through the
	// multi-source BFS kernel (graph.BatchSPTs): the engines resolve a
	// sweep's source trees in 64-lane batches before the worker fan-out,
	// so one traversal of a shared frontier advances up to 64 sources at
	// once. With SPTCache set, the batch pre-fills graph.SharedSPTs;
	// without it, workers read zero-copy lane views of one pooled slab.
	// Every kernel produces the same canonical trees, so results are
	// byte-identical with the flag on or off.
	BatchBFS bool
}

// Validate checks protocol sanity. Failures wrap valid.ErrParam, so a
// serving boundary can classify them as bad requests. Workers > NSource is
// accepted (the pool clamps, it does not fail): worker count is a resource
// hint, and rejecting it would make the same protocol valid or invalid
// depending on an unrelated sample-size field.
func (p Protocol) Validate() error {
	if p.NSource <= 0 || p.NRcvr <= 0 {
		return valid.Badf("mcast: protocol needs NSource > 0 and NRcvr > 0 (got %d, %d)", p.NSource, p.NRcvr)
	}
	if p.Workers < 0 {
		return valid.Badf("mcast: negative worker count %d", p.Workers)
	}
	return nil
}

// EffectiveWorkers returns the number of source workers the engines will
// actually run for this protocol: Workers (or GOMAXPROCS when 0), clamped to
// NSource because the pool parallelizes over source jobs and extra workers
// would sit idle.
func (p Protocol) EffectiveWorkers() int {
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > p.NSource && p.NSource > 0 {
		workers = p.NSource
	}
	return workers
}

// DefaultProtocol is the paper's 100×100 protocol, measured through the
// batched MS-BFS scheduling path (byte-identical to per-source BFS).
func DefaultProtocol(seed int64) Protocol {
	return Protocol{NSource: 100, NRcvr: 100, Seed: seed, BatchBFS: true}
}

// Point is the aggregated observation for one group size.
type Point struct {
	// Size is the group size: m (distinct mode) or n (replacement mode).
	Size int
	// MeanRatio is the average of L/ū over all samples — the y-value of
	// the paper's Figure 1 (before taking logs).
	MeanRatio float64
	// RatioStdErr is the standard error of MeanRatio.
	RatioStdErr float64
	// MeanLinks is the average delivery-tree size L.
	MeanLinks float64
	// MeanUnicast is the average per-sample unicast path length ū.
	MeanUnicast float64
	// Samples is the number of Monte-Carlo samples aggregated.
	Samples int
}

// Mode selects between the paper's two receiver-drawing protocols.
type Mode int

const (
	// Distinct draws exactly m distinct receiver sites: the L(m) protocol.
	Distinct Mode = iota
	// WithReplacement draws n sites with replacement: the L̄(n) protocol.
	WithReplacement
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Distinct:
		return "distinct"
	case WithReplacement:
		return "with-replacement"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// MeasureCurve runs the full §2 protocol on g for every group size in sizes
// and returns one aggregated Point per size, in input order.
//
// The computation parallelizes over sources; results are deterministic for a
// fixed Protocol regardless of scheduling, because each source draw has its
// own derived RNG stream and partial sums are reduced in source order.
func MeasureCurve(g *graph.Graph, sizes []int, mode Mode, p Protocol) ([]Point, error) {
	return MeasureCurveCtx(context.Background(), g, sizes, mode, p)
}

// MeasureCurveCtx is MeasureCurve under a cancellation context: the worker
// pool observes ctx at grid-point granularity, abandons the sweep promptly
// after cancellation, and returns ctx's error. A nil ctx means Background.
func MeasureCurveCtx(ctx context.Context, g *graph.Graph, sizes []int, mode Mode, p Protocol) ([]Point, error) {
	if p.Nested {
		return MeasureCurveNestedCtx(ctx, g, sizes, mode, p)
	}
	ctx = orBackground(ctx)
	if err := validateCurveArgs(g, sizes, mode, p); err != nil {
		return nil, err
	}
	sources := drawSources(g, p)
	bt, err := resolveBatch(g, sources, p)
	if err != nil {
		return nil, err
	}
	defer bt.release()
	acc := newCurveAccum(p.NSource, len(sizes))
	err = runSourceWorkers(ctx, p, func(si int) error {
		return measureSourceIndependent(ctx, g, sources[si], si, si, sizes, mode, p, bt, acc)
	})
	if err != nil {
		return nil, err
	}
	return acc.reduce(sizes), nil
}

// orBackground normalizes a nil context.
func orBackground(ctx context.Context) context.Context {
	if ctx == nil {
		return context.Background()
	}
	return ctx
}

// validateCurveArgs is the shared argument check of the independent and
// nested curve engines.
func validateCurveArgs(g *graph.Graph, sizes []int, mode Mode, p Protocol) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if mode != Distinct && mode != WithReplacement {
		return valid.Badf("mcast: unknown mode %v", mode)
	}
	if g.N() < 2 {
		return valid.Badf("mcast: graph too small (N=%d)", g.N())
	}
	if len(sizes) == 0 {
		return valid.Badf("mcast: empty group-size grid")
	}
	maxPop := g.N()
	if !p.IncludeSource {
		maxPop--
	}
	for _, s := range sizes {
		if s <= 0 {
			return valid.Badf("mcast: group size %d must be positive", s)
		}
		if mode == Distinct && s > maxPop {
			return valid.Badf("mcast: m=%d exceeds receiver population %d", s, maxPop)
		}
	}
	return nil
}

// drawSources pre-draws the protocol's source sequence deterministically.
func drawSources(g *graph.Graph, p Protocol) []int {
	srcRand := rng.NewChild(p.Seed, -1)
	sources := make([]int, p.NSource)
	for i := range sources {
		sources[i] = srcRand.Intn(g.N())
	}
	return sources
}

// curveAccum holds per-(source, size) partial sums in contiguous slabs:
// four float64 slabs and one int slab, each indexed [si*K + k]. One up-front
// allocation replaces five small slices per source job, and the reduction
// walks the slabs in source order so the float result is deterministic
// regardless of worker scheduling.
type curveAccum struct {
	K                                      int
	ratioSum, ratioSq, linkSum, unicastSum []float64
	samples                                []int
}

func newCurveAccum(nSource, K int) *curveAccum {
	slab := make([]float64, 4*nSource*K)
	return &curveAccum{
		K:          K,
		ratioSum:   slab[0 : nSource*K],
		ratioSq:    slab[nSource*K : 2*nSource*K],
		linkSum:    slab[2*nSource*K : 3*nSource*K],
		unicastSum: slab[3*nSource*K : 4*nSource*K],
		samples:    make([]int, nSource*K),
	}
}

// add records one sample for source index si at size index k. Distinct
// sources never share a slab cell, so concurrent workers need no locking.
func (a *curveAccum) add(si, k int, ratio, links, unicast float64) {
	i := si*a.K + k
	a.ratioSum[i] += ratio
	a.ratioSq[i] += ratio * ratio
	a.linkSum[i] += links
	a.unicastSum[i] += unicast
	a.samples[i]++
}

// reduce aggregates the slabs into one Point per size, reducing in source
// order for a deterministic float result.
func (a *curveAccum) reduce(sizes []int) []Point {
	nSource := len(a.samples) / a.K
	points := make([]Point, len(sizes))
	for k := range sizes {
		var links, unicast, ratioSum, ratioSq float64
		n := 0
		for si := 0; si < nSource; si++ {
			i := si*a.K + k
			links += a.linkSum[i]
			unicast += a.unicastSum[i]
			ratioSum += a.ratioSum[i]
			ratioSq += a.ratioSq[i]
			n += a.samples[i]
		}
		points[k] = Point{Size: sizes[k], Samples: n}
		if n > 0 {
			mean := ratioSum / float64(n)
			points[k].MeanRatio = mean
			points[k].MeanLinks = links / float64(n)
			points[k].MeanUnicast = unicast / float64(n)
			if n > 1 {
				variance := (ratioSq - float64(n)*mean*mean) / float64(n-1)
				if variance < 0 {
					variance = 0 // float cancellation guard
				}
				points[k].RatioStdErr = math.Sqrt(variance / float64(n))
			}
		}
	}
	return points
}

// runSourceWorkers fans p.NSource source jobs out over the protocol's worker
// pool. The jobs channel is buffered to NSource so a worker that returns
// early on error can never strand the feed loop mid-send (the deadlock a
// failing source used to cause with an unbuffered channel).
//
// Robustness: workers check ctx before picking up each source job (the inner
// measurement loops additionally poll it at grid-point granularity), and
// every job runs under panicsafe.Do, so a panicking source job surfaces as
// an ordinary error from the engine instead of killing the process.
func runSourceWorkers(ctx context.Context, p Protocol, job func(si int) error) error {
	return runWorkersN(ctx, p.EffectiveWorkers(), p.NSource, job)
}

// runWorkersN is the worker pool behind runSourceWorkers, generalized to an
// arbitrary job count so the partial (source-block) engines can fan out over
// just their block. workers is clamped to nJobs.
func runWorkersN(ctx context.Context, workers, nJobs int, job func(i int) error) error {
	if workers > nJobs {
		workers = nJobs
	}
	if workers < 1 {
		workers = 1
	}
	jobs := make(chan int, nJobs)
	for si := 0; si < nJobs; si++ {
		jobs <- si
	}
	close(jobs)
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for si := range jobs {
				if err := ctx.Err(); err != nil {
					errs[w] = err
					return
				}
				// Failpoint "mcast.worker": latency rules stall a source job
				// (a straggling worker), error rules abort the engine like a
				// failing measurement, panic rules exercise panicsafe below.
				if err := chaos.Maybe("mcast.worker"); err != nil {
					errs[w] = err
					return
				}
				if err := panicsafe.Do(func() error { return job(si) }); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	// Prefer a real measurement failure over a bare cancellation error so
	// the caller sees the root cause when both raced.
	var ctxErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if err == context.Canceled || err == context.DeadlineExceeded {
			ctxErr = err
			continue
		}
		return err
	}
	// ctxErr is nil when every job completed before cancellation was
	// observed — the sweep is whole, so report success.
	return ctxErr
}

// sourceScratch is the per-worker reusable state of the curve engines: the
// shortest-path tree, the tree counter, the sampler (Reset per source), and
// the receiver buffer. Pooling it means steady-state measurement performs no
// per-source allocation beyond the RNG stream.
type sourceScratch struct {
	spt     graph.SPT
	spt2    graph.SPT // core-rooted tree for the shared-curve engine
	view    graph.SPT // batch lane view; aliases a slab, never fed to BFSInto
	view2   graph.SPT // core lane view for the shared-curve batch path
	pd, pd2 []int64   // packed (dist, parent) words for the fused loops
	counter *TreeCounter
	smp     Sampler
	recv    []int32
	// ar backs pd/pd2 and the sampler scratch with recycled slabs, so
	// sweeping graphs of different scales (the large-graph regime's 1M/10M
	// interleavings) re-slabs instead of re-allocating. The counter keeps
	// plain make: its epoch array must be zeroed on growth either way.
	ar *arena.Arena
}

var scratchPool = sync.Pool{New: func() any {
	sc := &sourceScratch{ar: arena.New()}
	sc.smp.ar = sc.ar
	return sc
}}

func getScratch(n int) *sourceScratch {
	sc := scratchPool.Get().(*sourceScratch)
	if sc.counter == nil || len(sc.counter.visited) < n {
		sc.counter = NewTreeCounter(n)
	}
	return sc
}

// growPacked sizes a packed-word buffer for packTree through the arena.
func (sc *sourceScratch) growPacked(pd []int64, n int) []int64 {
	return sc.ar.GrowInt64(pd, n)
}

// prepare resolves the source's shortest-path tree — from the pre-resolved
// batch when the engine engaged the batch scheduling path, from the
// process-wide cache when the protocol allows, otherwise into the scratch
// buffer — and resets the sampler for the source. The returned SPT is
// read-only when it came from the batch or the cache; every consumer
// (TreeCounter, Dist reads) only reads. Batch views land in sc.view, which
// is never handed to BFSInto, so slab aliases cannot leak into later
// BFS reuse of the pooled scratch.
//
// si is the source's global protocol index (it keys the per-source RNG
// stream); lane is its slot in the engine's batch slab. A full sweep has
// lane == si; a source-block partial sweep resolves only its block, so lane
// is si - SrcLo.
func (sc *sourceScratch) prepare(g *graph.Graph, src, si, lane int, p Protocol, bt *batchTrees) (*graph.SPT, error) {
	spt := &sc.spt
	if bt != nil {
		bt.view(lane, &sc.view)
		spt = &sc.view
	} else if p.SPTCache {
		cached, err := graph.SharedSPTs.Get(g, src)
		if err != nil {
			return nil, err
		}
		spt = cached
	} else if err := g.BFSInto(src, &sc.spt); err != nil {
		return nil, err
	}
	exclude := src
	if p.IncludeSource {
		exclude = -1
	}
	if err := sc.smp.Reset(g.N(), exclude, rng.NewChild(p.Seed, int64(si))); err != nil {
		return nil, err
	}
	return spt, nil
}

// measureSourceIndependent runs the paper-faithful §2 inner loop for one
// source: an independent receiver set per (size, repetition), observing ctx
// at every grid point so cancellation interrupts even a single huge source.
// The tree is packed once per source and every sample measured through the
// fused packed walk (exact-integer equivalent of counter.Measure).
//
// si is the global source index (RNG identity); lane is the batch-slab and
// accumulator slot (lane == si for a full sweep, si - SrcLo for a partial).
func measureSourceIndependent(ctx context.Context, g *graph.Graph, src, si, lane int, sizes []int, mode Mode, p Protocol, bt *batchTrees, acc *curveAccum) error {
	sc := getScratch(g.N())
	defer scratchPool.Put(sc)
	spt, err := sc.prepare(g, src, si, lane, p, bt)
	if err != nil {
		return err
	}
	sc.pd = packTree(spt, sc.growPacked(sc.pd, len(spt.Parent)))
	for k, size := range sizes {
		if err := ctx.Err(); err != nil {
			return err
		}
		for rep := 0; rep < p.NRcvr; rep++ {
			switch mode {
			case Distinct:
				sc.recv, err = sc.smp.Distinct(size, sc.recv)
			case WithReplacement:
				sc.recv, err = sc.smp.WithReplacement(size, sc.recv)
			default:
				err = fmt.Errorf("mcast: unknown mode %v", mode)
			}
			if err != nil {
				return err
			}
			meas := sc.counter.measurePacked(int32(spt.Source), sc.pd, sc.recv)
			if meas.Receivers == 0 {
				continue // source in a tiny component; skip sample
			}
			acc.add(lane, k, meas.Ratio(), float64(meas.Links), meas.AvgUnicast())
		}
	}
	return nil
}

// LogSpacedSizes returns up to count distinct group sizes spanning [1, max],
// approximately geometrically spaced — the x-grid of the paper's log-scale
// figures.
func LogSpacedSizes(max, count int) []int {
	if max < 1 || count < 1 {
		return nil
	}
	if count > max {
		count = max
	}
	out := make([]int, 0, count)
	last := 0
	for i := 0; i < count; i++ {
		var v int
		if count == 1 {
			v = max
		} else {
			v = int(math.Pow(float64(max), float64(i)/float64(count-1)) + 0.5)
		}
		if v <= last {
			v = last + 1
		}
		if v > max {
			break
		}
		out = append(out, v)
		last = v
	}
	return out
}
