package mcast

// Ablation benchmarks for the design choices in DESIGN.md §5:
//
//  2. SPT reuse across receiver sets vs a BFS per receiver set.
//  3. Floyd's distinct sampling vs rejection resampling.
//  4. Parent-pointer climb tree counting vs explicit edge-set union.

import (
	"testing"

	"mtreescale/internal/graph"
	"mtreescale/internal/rng"
)

func benchGraph(b *testing.B) *graph.Graph {
	b.Helper()
	r := rng.New(1)
	gb := graph.NewBuilder(2000)
	for v := 1; v < 2000; v++ {
		_ = gb.AddEdge(v, r.Intn(v))
	}
	for i := 0; i < 2500; i++ {
		_ = gb.AddEdge(r.Intn(2000), r.Intn(2000))
	}
	return gb.Build()
}

func benchReceivers(b *testing.B, g *graph.Graph, m int) []int32 {
	b.Helper()
	smp, err := NewSampler(g.N(), 0, rng.New(2))
	if err != nil {
		b.Fatal(err)
	}
	recv, err := smp.Distinct(m, nil)
	if err != nil {
		b.Fatal(err)
	}
	return recv
}

// BenchmarkAblationTreeSizeClimb measures the production O(L) parent climb.
func BenchmarkAblationTreeSizeClimb(b *testing.B) {
	g := benchGraph(b)
	spt, _ := g.BFS(0)
	recv := benchReceivers(b, g, 200)
	c := NewTreeCounter(g.N())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c.TreeSize(spt, recv) == 0 {
			b.Fatal("empty tree")
		}
	}
}

// BenchmarkAblationTreeSizeEdgeSet measures the map-based reference union.
func BenchmarkAblationTreeSizeEdgeSet(b *testing.B) {
	g := benchGraph(b)
	spt, _ := g.BFS(0)
	recv := benchReceivers(b, g, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if TreeSizeSlow(spt, recv) == 0 {
			b.Fatal("empty tree")
		}
	}
}

// BenchmarkAblationDistinctFloyd: production hybrid Floyd/Fisher-Yates.
func BenchmarkAblationDistinctFloyd(b *testing.B) {
	smp, err := NewSampler(2000, -1, rng.New(3))
	if err != nil {
		b.Fatal(err)
	}
	var buf []int32
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err = smp.Distinct(1500, buf) // high m/M: rejection's worst case
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationDistinctRejection: the rejection-resampling reference.
func BenchmarkAblationDistinctRejection(b *testing.B) {
	smp, err := NewSampler(2000, -1, rng.New(3))
	if err != nil {
		b.Fatal(err)
	}
	var buf []int32
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err = smp.DistinctRejection(1500, buf)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationDistinctSmallM exercises Floyd's path (m ≪ M), where the
// per-draw map[int32]bool the sampler used to allocate dominated the cost;
// the epoch-stamped scratch set makes the draw allocation-free (compare
// allocs/op against BenchmarkAblationDistinctSmallMRejection).
func BenchmarkAblationDistinctSmallM(b *testing.B) {
	smp, err := NewSampler(2000, -1, rng.New(3))
	if err != nil {
		b.Fatal(err)
	}
	var buf []int32
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err = smp.Distinct(50, buf)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationDistinctSmallMRejection: the rejection reference at the
// same small m, also on the epoch-stamped scratch set.
func BenchmarkAblationDistinctSmallMRejection(b *testing.B) {
	smp, err := NewSampler(2000, -1, rng.New(3))
	if err != nil {
		b.Fatal(err)
	}
	var buf []int32
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err = smp.DistinctRejection(50, buf)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPermutation: the nested engine's ordered draw at high m —
// O(m) via the sparse Fisher-Yates, allocation-free.
func BenchmarkAblationPermutation(b *testing.B) {
	smp, err := NewSampler(2000, -1, rng.New(3))
	if err != nil {
		b.Fatal(err)
	}
	var buf []int32
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err = smp.Permutation(1500, buf)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSPTReuse: one BFS per source shared across receiver sets
// (production path inside MeasureCurve).
func BenchmarkAblationSPTReuse(b *testing.B) {
	g := benchGraph(b)
	var spt graph.SPT
	c := NewTreeCounter(g.N())
	smp, _ := NewSampler(g.N(), 0, rng.New(4))
	var recv []int32
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := g.BFSInto(0, &spt); err != nil {
			b.Fatal(err)
		}
		for rep := 0; rep < 50; rep++ {
			recv, _ = smp.Distinct(100, recv)
			c.TreeSize(&spt, recv)
		}
	}
}

// BenchmarkAblationSPTNoReuse: a fresh BFS per receiver set.
func BenchmarkAblationSPTNoReuse(b *testing.B) {
	g := benchGraph(b)
	var spt graph.SPT
	c := NewTreeCounter(g.N())
	smp, _ := NewSampler(g.N(), 0, rng.New(4))
	var recv []int32
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for rep := 0; rep < 50; rep++ {
			if err := g.BFSInto(0, &spt); err != nil {
				b.Fatal(err)
			}
			recv, _ = smp.Distinct(100, recv)
			c.TreeSize(&spt, recv)
		}
	}
}
