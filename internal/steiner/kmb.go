// Package steiner implements the Kou-Markowsky-Berman (KMB) 2-approximation
// for Steiner trees on unweighted graphs. It is the cost-optimal baseline
// for multicast trees: the paper measures shortest-path (source-rooted)
// trees, which Wei-Estrin showed cost only slightly more than Steiner
// trees; this package lets the repository reproduce that comparison and
// test whether the Chuang-Sirbu exponent survives a near-optimal routing
// algorithm.
//
// KMB: (1) build the metric closure over the terminals, (2) take its
// minimum spanning tree, (3) expand MST edges into shortest paths, (4) take
// a spanning tree of the expanded subgraph, (5) prune non-terminal leaves.
// The result is within 2× (in fact 2−2/|Z|) of the optimal Steiner tree.
package steiner

import (
	"fmt"
	"math"
	"sort"

	"mtreescale/internal/graph"
)

// MaxTerminals bounds the number of distinct terminals per tree; the metric
// closure costs one BFS and one distance row per terminal.
const MaxTerminals = 4096

// TreeSize returns the number of links in the KMB approximate Steiner tree
// spanning the source and all receivers. Duplicate receivers are fine. All
// terminals must be mutually reachable.
func TreeSize(g *graph.Graph, source int, receivers []int32) (int, error) {
	edges, err := Tree(g, source, receivers)
	if err != nil {
		return 0, err
	}
	return len(edges), nil
}

// Edge is an undirected link with U < V.
type Edge struct{ U, V int32 }

// Tree returns the edge set of the KMB approximate Steiner tree spanning
// the source and all receivers.
func Tree(g *graph.Graph, source int, receivers []int32) ([]Edge, error) {
	if source < 0 || source >= g.N() {
		return nil, fmt.Errorf("steiner: source %d out of range [0,%d)", source, g.N())
	}
	// Deduplicate terminals.
	seen := map[int32]bool{int32(source): true}
	terminals := []int32{int32(source)}
	for _, r := range receivers {
		if r < 0 || int(r) >= g.N() {
			return nil, fmt.Errorf("steiner: receiver %d out of range [0,%d)", r, g.N())
		}
		if !seen[r] {
			seen[r] = true
			terminals = append(terminals, r)
		}
	}
	if len(terminals) > MaxTerminals {
		return nil, fmt.Errorf("steiner: %d terminals exceed limit %d", len(terminals), MaxTerminals)
	}
	if len(terminals) == 1 {
		return nil, nil
	}

	// 1. Metric closure: one BFS per terminal.
	spts := make([]*graph.SPT, len(terminals))
	for i, t := range terminals {
		spt, err := g.BFS(int(t))
		if err != nil {
			return nil, err
		}
		spts[i] = spt
		if i > 0 && spt.Dist[terminals[0]] == graph.Unreachable {
			return nil, fmt.Errorf("steiner: terminal %d unreachable from source", t)
		}
	}

	// 2. Prim's MST over the terminal closure (O(t²)).
	t := len(terminals)
	inMST := make([]bool, t)
	bestDist := make([]int32, t)
	bestFrom := make([]int, t)
	for i := range bestDist {
		bestDist[i] = math.MaxInt32
	}
	inMST[0] = true
	for i := 1; i < t; i++ {
		bestDist[i] = spts[0].Dist[terminals[i]]
		bestFrom[i] = 0
	}
	type mstEdge struct{ a, b int } // indices into terminals
	mst := make([]mstEdge, 0, t-1)
	for added := 1; added < t; added++ {
		next := -1
		for i := 0; i < t; i++ {
			if !inMST[i] && (next == -1 || bestDist[i] < bestDist[next]) {
				next = i
			}
		}
		if next == -1 || bestDist[next] == math.MaxInt32 {
			return nil, fmt.Errorf("steiner: terminals not mutually reachable")
		}
		inMST[next] = true
		mst = append(mst, mstEdge{bestFrom[next], next})
		for i := 0; i < t; i++ {
			if !inMST[i] {
				if d := spts[next].Dist[terminals[i]]; d != graph.Unreachable && d < bestDist[i] {
					bestDist[i] = d
					bestFrom[i] = next
				}
			}
		}
	}

	// 3. Expand MST edges into shortest paths; collect the edge union.
	edgeSet := map[Edge]bool{}
	for _, e := range mst {
		// Walk from terminals[e.b] toward terminals[e.a] in e.a's SPT.
		spt := spts[e.a]
		v := terminals[e.b]
		for v != terminals[e.a] {
			p := spt.Parent[v]
			edgeSet[canon(v, p)] = true
			v = p
		}
	}

	// 4+5. The expanded union is connected and spans all terminals; take a
	// spanning tree of it (BFS from the source over union edges) and prune
	// non-terminal leaves.
	adj := map[int32][]int32{}
	for e := range edgeSet {
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
	}
	parent := map[int32]int32{int32(source): int32(source)}
	order := []int32{int32(source)}
	for head := 0; head < len(order); head++ {
		u := order[head]
		ns := adj[u]
		sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] }) // deterministic
		for _, w := range ns {
			if _, ok := parent[w]; !ok {
				parent[w] = u
				order = append(order, w)
			}
		}
	}
	// Children counts for pruning.
	childCount := map[int32]int{}
	for v, p := range parent {
		if v != p {
			childCount[p]++
		}
	}
	removed := map[int32]bool{}
	// Iteratively remove non-terminal leaves.
	queue := make([]int32, 0)
	for v := range parent {
		if childCount[v] == 0 && !seen[v] {
			queue = append(queue, v)
		}
	}
	sort.Slice(queue, func(i, j int) bool { return queue[i] < queue[j] })
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if removed[v] || seen[v] || childCount[v] != 0 {
			continue
		}
		removed[v] = true
		p := parent[v]
		childCount[p]--
		if childCount[p] == 0 && !seen[p] && p != parent[p] {
			queue = append(queue, p)
		}
	}
	var out []Edge
	for v, p := range parent {
		if v == p || removed[v] {
			continue
		}
		out = append(out, canon(v, p))
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out, nil
}

func canon(a, b int32) Edge {
	if a > b {
		a, b = b, a
	}
	return Edge{a, b}
}

// Validate checks that the edge list forms a tree spanning the source and
// every receiver using only edges of g. Tests and callers use it to audit
// Tree's output.
func Validate(g *graph.Graph, source int, receivers []int32, edges []Edge) error {
	adj := map[int32][]int32{}
	for _, e := range edges {
		if !g.HasEdge(int(e.U), int(e.V)) {
			return fmt.Errorf("steiner: edge (%d,%d) not in graph", e.U, e.V)
		}
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
	}
	// Connectivity from source over the edge set.
	visited := map[int32]bool{int32(source): true}
	stack := []int32{int32(source)}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range adj[u] {
			if !visited[w] {
				visited[w] = true
				stack = append(stack, w)
			}
		}
	}
	for _, r := range receivers {
		if !visited[r] {
			return fmt.Errorf("steiner: receiver %d not spanned", r)
		}
	}
	// Tree check: |V| = |E| + 1 over touched nodes.
	nodes := map[int32]bool{}
	for _, e := range edges {
		nodes[e.U] = true
		nodes[e.V] = true
	}
	if len(edges) > 0 && len(nodes) != len(edges)+1 {
		return fmt.Errorf("steiner: %d nodes but %d edges — not a tree", len(nodes), len(edges))
	}
	return nil
}
