package steiner

import (
	"testing"
	"testing/quick"

	"mtreescale/internal/graph"
	"mtreescale/internal/mcast"
	"mtreescale/internal/rng"
	"mtreescale/internal/topology"
)

func randGraph(seed int64, n, extra int) *graph.Graph {
	r := rng.New(seed)
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		_ = b.AddEdge(v, r.Intn(v))
	}
	for i := 0; i < extra; i++ {
		_ = b.AddEdge(r.Intn(n), r.Intn(n))
	}
	return b.Build()
}

func TestTreeSingleTerminal(t *testing.T) {
	g := randGraph(1, 50, 70)
	edges, err := Tree(g, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 0 {
		t.Fatalf("source-only tree has %d edges", len(edges))
	}
	n, err := TreeSize(g, 5, []int32{5, 5})
	if err != nil || n != 0 {
		t.Fatalf("self-receiver tree: %d, %v", n, err)
	}
}

func TestTreeSingleReceiverIsShortestPath(t *testing.T) {
	g := randGraph(2, 120, 180)
	spt, _ := g.BFS(0)
	for v := int32(1); v < 40; v++ {
		size, err := TreeSize(g, 0, []int32{v})
		if err != nil {
			t.Fatal(err)
		}
		if size != int(spt.Dist[v]) {
			t.Fatalf("Steiner tree to single receiver %d has %d links, shortest path %d", v, size, spt.Dist[v])
		}
	}
}

func TestTreeOnPathGraph(t *testing.T) {
	// Path 0-1-...-9: terminals {0, 9} → tree is the whole path.
	b := graph.NewBuilder(10)
	for i := 0; i < 9; i++ {
		_ = b.AddEdge(i, i+1)
	}
	g := b.Build()
	size, err := TreeSize(g, 0, []int32{9})
	if err != nil {
		t.Fatal(err)
	}
	if size != 9 {
		t.Fatalf("path Steiner tree = %d", size)
	}
	// Terminals {0, 4, 9}: same tree (intermediate terminal adds nothing).
	size2, _ := TreeSize(g, 0, []int32{4, 9})
	if size2 != 9 {
		t.Fatalf("with middle terminal: %d", size2)
	}
}

func TestTreeStarSteinerPoint(t *testing.T) {
	// Star: hub 0 with leaves 1..4. Terminals {1,2,3}: optimal Steiner tree
	// uses the hub (a Steiner point) with 3 edges. KMB must find it.
	b := graph.NewBuilder(5)
	for v := 1; v < 5; v++ {
		_ = b.AddEdge(0, v)
	}
	g := b.Build()
	size, err := TreeSize(g, 1, []int32{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if size != 3 {
		t.Fatalf("star Steiner tree = %d, want 3", size)
	}
}

func TestTreeValidAndBounded(t *testing.T) {
	// KMB output must (a) be a valid spanning tree of the terminals,
	// (b) never exceed the source-rooted SPT delivery tree (on unweighted
	// graphs KMB ≤ 2·OPT and OPT ≤ SPT-tree... the 2× bound means KMB can
	// exceed the SPT tree in contrived cases, so check the 2× Steiner bound
	// indirectly: KMB ≤ 2·(SPT tree), since SPT tree ≥ OPT).
	f := func(seed int64, mRaw uint8) bool {
		g := randGraph(seed, 80, 120)
		m := int(mRaw)%20 + 1
		r := rng.New(seed + 1)
		recv := make([]int32, m)
		for i := range recv {
			recv[i] = int32(1 + r.Intn(79))
		}
		edges, err := Tree(g, 0, recv)
		if err != nil {
			return false
		}
		if err := Validate(g, 0, recv, edges); err != nil {
			return false
		}
		spt, err := g.BFS(0)
		if err != nil {
			return false
		}
		c := mcast.NewTreeCounter(g.N())
		sptTree := c.TreeSize(spt, recv)
		return len(edges) <= 2*sptTree
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestSteinerUsuallyBeatsOrMatchesSPT(t *testing.T) {
	// Wei-Estrin's observation: shortest-path trees cost only slightly more
	// than Steiner trees. Aggregate over many samples: mean KMB size must be
	// ≤ mean SPT size, and within 40% of it.
	g, err := topology.TransitStubSized(300, 3.6, 5)
	if err != nil {
		t.Fatal(err)
	}
	spt, _ := g.BFS(0)
	c := mcast.NewTreeCounter(g.N())
	smp, err := mcast.NewSampler(g.N(), 0, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	var recv []int32
	var sptSum, kmbSum float64
	const reps = 60
	for rep := 0; rep < reps; rep++ {
		recv, err = smp.Distinct(25, recv)
		if err != nil {
			t.Fatal(err)
		}
		sptSum += float64(c.TreeSize(spt, recv))
		k, err := TreeSize(g, 0, recv)
		if err != nil {
			t.Fatal(err)
		}
		kmbSum += float64(k)
	}
	if kmbSum > sptSum*1.02 {
		t.Fatalf("KMB mean %.1f above SPT mean %.1f", kmbSum/reps, sptSum/reps)
	}
	if kmbSum < sptSum*0.6 {
		t.Fatalf("KMB mean %.1f implausibly below SPT mean %.1f", kmbSum/reps, sptSum/reps)
	}
}

func TestTreeErrors(t *testing.T) {
	g := randGraph(9, 30, 40)
	if _, err := Tree(g, -1, nil); err == nil {
		t.Fatal("bad source must error")
	}
	if _, err := Tree(g, 0, []int32{99}); err == nil {
		t.Fatal("bad receiver must error")
	}
	// Disconnected terminals.
	b := graph.NewBuilder(4)
	_ = b.AddEdge(0, 1)
	_ = b.AddEdge(2, 3)
	if _, err := Tree(b.Build(), 0, []int32{3}); err == nil {
		t.Fatal("unreachable terminal must error")
	}
	// Terminal cap.
	big := make([]int32, MaxTerminals+2)
	for i := range big {
		big[i] = int32(i % 30)
	}
	// Dedup keeps this under the cap, so grow a graph big enough to exceed it.
	huge := randGraph(3, MaxTerminals+10, 0)
	bigRecv := make([]int32, MaxTerminals+5)
	for i := range bigRecv {
		bigRecv[i] = int32(i + 1)
	}
	if _, err := Tree(huge, 0, bigRecv); err == nil {
		t.Fatal("terminal cap must error")
	}
}

func TestValidateCatchesBadTrees(t *testing.T) {
	g := randGraph(4, 20, 30)
	// Non-edge.
	if err := Validate(g, 0, nil, []Edge{{0, 19}}); err == nil {
		// (0,19) may exist by chance; construct a guaranteed non-edge graph
		b := graph.NewBuilder(3)
		_ = b.AddEdge(0, 1)
		if err := Validate(b.Build(), 0, nil, []Edge{{0, 2}}); err == nil {
			t.Fatal("non-edge must fail validation")
		}
	}
	// Unspanned receiver.
	b := graph.NewBuilder(4)
	_ = b.AddEdge(0, 1)
	_ = b.AddEdge(1, 2)
	_ = b.AddEdge(2, 3)
	g2 := b.Build()
	if err := Validate(g2, 0, []int32{3}, []Edge{{0, 1}}); err == nil {
		t.Fatal("unspanned receiver must fail validation")
	}
	// Cycle: 3 nodes 3 edges.
	b2 := graph.NewBuilder(3)
	_ = b2.AddEdge(0, 1)
	_ = b2.AddEdge(1, 2)
	_ = b2.AddEdge(0, 2)
	g3 := b2.Build()
	if err := Validate(g3, 0, []int32{2}, []Edge{{0, 1}, {1, 2}, {0, 2}}); err == nil {
		t.Fatal("cycle must fail validation")
	}
}

func TestTreeDeterministic(t *testing.T) {
	g := randGraph(11, 100, 150)
	recv := []int32{3, 17, 44, 71, 90}
	a, err := Tree(g, 0, recv)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Tree(g, 0, recv)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("nondeterministic size")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic edges")
		}
	}
}
