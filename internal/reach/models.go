package reach

import (
	"fmt"
	"math"
)

// This file builds the synthetic reachability functions of §4.2-4.3 and
// Figure 8: exponential S(r) = k^r, sub-exponential S(r) ∝ r^λ, and
// super-exponential S(r) ∝ e^{λr²}, normalized so that S(D) is the same
// for all models (the paper: "The constants were normalized so that S(D) is
// the same for all three networks").

// Exponential returns S(r) = k^r for r = 0..depth.
func Exponential(k float64, depth int) (*Reachability, error) {
	if k <= 1 {
		return nil, fmt.Errorf("reach: exponential model needs k > 1, got %v", k)
	}
	if depth < 1 {
		return nil, fmt.Errorf("reach: depth must be >= 1, got %d", depth)
	}
	s := make([]float64, depth+1)
	for r := 0; r <= depth; r++ {
		s[r] = math.Pow(k, float64(r))
	}
	return &Reachability{S: s}, nil
}

// PowerLaw returns S(r) = c·r^lambda (S(0) = 1) with c chosen so that
// S(depth) = target.
func PowerLaw(lambda float64, depth int, target float64) (*Reachability, error) {
	if lambda <= 0 {
		return nil, fmt.Errorf("reach: power-law exponent must be > 0, got %v", lambda)
	}
	if depth < 1 || target < 1 {
		return nil, fmt.Errorf("reach: need depth >= 1 and target >= 1 (got %d, %v)", depth, target)
	}
	c := target / math.Pow(float64(depth), lambda)
	s := make([]float64, depth+1)
	s[0] = 1
	for r := 1; r <= depth; r++ {
		s[r] = c * math.Pow(float64(r), lambda)
	}
	return &Reachability{S: s}, nil
}

// GaussianExponential returns S(r) = e^{lambda·r²} scaled so that
// S(depth) = target — the paper's super-exponential case.
func GaussianExponential(depth int, target float64) (*Reachability, error) {
	if depth < 1 || target < 1 {
		return nil, fmt.Errorf("reach: need depth >= 1 and target >= 1 (got %d, %v)", depth, target)
	}
	lambda := math.Log(target) / float64(depth*depth)
	s := make([]float64, depth+1)
	for r := 0; r <= depth; r++ {
		s[r] = math.Exp(lambda * float64(r*r))
	}
	return &Reachability{S: s}, nil
}

// Figure8Models returns the paper's three Figure 8 reachability functions,
// all normalized to the same S(D) = k^depth: the exponential base case
// S(r) = k^r, the slower power law, and the faster Gaussian exponential.
func Figure8Models(k float64, lambda float64, depth int) (exp, power, gaussian *Reachability, err error) {
	exp, err = Exponential(k, depth)
	if err != nil {
		return nil, nil, nil, err
	}
	target := exp.S[depth]
	power, err = PowerLaw(lambda, depth, target)
	if err != nil {
		return nil, nil, nil, err
	}
	gaussian, err = GaussianExponential(depth, target)
	if err != nil {
		return nil, nil, nil, err
	}
	return exp, power, gaussian, nil
}
