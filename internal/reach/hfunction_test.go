package reach

import (
	"math"
	"testing"

	"mtreescale/internal/analytic"
	"mtreescale/internal/topology"
)

func TestDelta2LeavesMatchesKAry(t *testing.T) {
	// With S(r) = k^r, Delta2Leaves must reduce to the k-ary Equation 6.
	r := karyReach(t, 2, 10)
	tr := analytic.Tree{K: 2, Depth: 10}
	for _, n := range []float64{0, 1, 10, 200} {
		got, err := r.Delta2Leaves(n)
		if err != nil {
			t.Fatal(err)
		}
		want, err := tr.LeafDelta2(n)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-9*(math.Abs(want)+1) {
			t.Fatalf("n=%v: %v vs Eq6 %v", n, got, want)
		}
	}
	if _, err := r.Delta2Leaves(-1); err == nil {
		t.Fatal("negative n must error")
	}
}

func TestHFunctionMatchesKAry(t *testing.T) {
	// With S(r) = k^r, the general h(x) must coincide with the k-ary one.
	r := karyReach(t, 2, 14)
	tr := analytic.Tree{K: 2, Depth: 14}
	for _, x := range []float64{0.2, 0.5, 0.8} {
		got, err := r.HFunction(x)
		if err != nil {
			t.Fatal(err)
		}
		want, err := tr.HFunction(x)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("x=%v: %v vs k-ary %v", x, got, want)
		}
	}
}

func TestHFunctionExponentialModelTracksLine(t *testing.T) {
	// Equation 28: for S(r) = e^{λr}, h(x) ≈ x·e^{−λ/2}.
	lambda := math.Log(3.0)
	r, err := Exponential(3, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0.3, 0.5, 0.7} {
		h, err := r.HFunction(x)
		if err != nil {
			t.Fatal(err)
		}
		want := x * math.Exp(-lambda/2)
		if math.Abs(h-want) > 0.12*want+0.02 {
			t.Fatalf("x=%v: h=%v vs x·e^{-λ/2}=%v", x, h, want)
		}
	}
}

func TestHFunctionErrors(t *testing.T) {
	r := karyReach(t, 2, 8)
	if _, err := r.HFunction(0); err == nil {
		t.Fatal("x=0 must error")
	}
	flat := &Reachability{S: []float64{1, 1}}
	if _, err := flat.HFunction(0.5); err == nil {
		t.Fatal("S(D)=1 must error")
	}
	empty := &Reachability{S: []float64{1}}
	if _, err := empty.HFunction(0.5); err == nil {
		t.Fatal("no radii must error")
	}
}

func TestGridReachabilityIsPowerLaw(t *testing.T) {
	// A torus has S(r) ∝ r: the concrete §4.3 power-law case. Classify must
	// call it sub-exponential, and its h(x) must *not* be linear the way the
	// exponential case is.
	g, err := topology.Grid(40, 40, true)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Measure(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	cls, err := r.Classify(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if cls != GrowthSubExponential {
		t.Fatalf("torus classified %v", cls)
	}
	// S(r) = 4r on an unbounded lattice; check the pre-saturation radii.
	for _, d := range []int{1, 3, 7, 12} {
		if math.Abs(r.S[d]-4*float64(d)) > 1e-9 {
			t.Fatalf("torus S(%d) = %v, want %d", d, r.S[d], 4*d)
		}
	}
}
