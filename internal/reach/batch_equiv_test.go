package reach

import (
	"testing"

	"mtreescale/internal/graph"
	"mtreescale/internal/topology"
)

// The batch knob of MeasureAveragedBatch must not change a single bit of
// S(r): sources are pre-drawn from the same stream, and histogram counts are
// exact integers in float64. Compare every slab/cache/serial combination
// against the plain serial run.
func TestMeasureAveragedBatchByteIdentical(t *testing.T) {
	g, err := topology.TransitStubSized(400, 3.6, 8)
	if err != nil {
		t.Fatal(err)
	}
	const nSources, seed = 25, 917
	want, err := MeasureAveragedBatch(g, nSources, seed, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name  string
		spts  *graph.SPTCache
		batch bool
	}{
		{"batch-slab", nil, true},
		{"cache-serial", graph.NewSPTCache(1 << 30), false},
		{"cache-batch", graph.NewSPTCache(1 << 30), true},
	}
	for _, tc := range cases {
		got, err := MeasureAveragedBatch(g, nSources, seed, tc.spts, tc.batch)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if len(got.S) != len(want.S) {
			t.Fatalf("%s: %d radii, want %d", tc.name, len(got.S), len(want.S))
		}
		for d := range want.S {
			if got.S[d] != want.S[d] {
				t.Fatalf("%s: S(%d) = %v, want %v", tc.name, d, got.S[d], want.S[d])
			}
		}
	}
}
