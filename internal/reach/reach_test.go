package reach

import (
	"math"
	"testing"

	"mtreescale/internal/analytic"
	"mtreescale/internal/graph"
	"mtreescale/internal/rng"
	"mtreescale/internal/topology"
)

func karyReach(t *testing.T, k, depth int) *Reachability {
	t.Helper()
	tr, err := topology.NewKAryTree(k, depth)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Measure(tr.Graph, 0)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestMeasureKAryTree(t *testing.T) {
	r := karyReach(t, 3, 4)
	// S(d) = 3^d from the root.
	for d := 0; d <= 4; d++ {
		if r.S[d] != math.Pow(3, float64(d)) {
			t.Fatalf("S(%d) = %v", d, r.S[d])
		}
	}
	if r.Depth() != 4 {
		t.Fatalf("depth = %d", r.Depth())
	}
	if r.Sites() != 3+9+27+81 {
		t.Fatalf("sites = %v", r.Sites())
	}
	if r.T(2) != 12 {
		t.Fatalf("T(2) = %v", r.T(2))
	}
	if r.T(-1) != 0 || r.T(100) != r.Sites() {
		t.Fatal("T out-of-range handling")
	}
}

func TestMeasureErrors(t *testing.T) {
	g := graph.NewBuilder(3).Build()
	if _, err := Measure(g, 5); err == nil {
		t.Fatal("bad source must error")
	}
	if _, err := MeasureAveraged(g, 0, 1); err == nil {
		t.Fatal("nSources=0 must error")
	}
	empty := graph.NewBuilder(0).Build()
	if _, err := MeasureAveraged(empty, 5, 1); err == nil {
		t.Fatal("empty graph must error")
	}
}

func TestMeasureAveragedDeterministic(t *testing.T) {
	g, err := topology.TransitStubSized(200, 3.6, 4)
	if err != nil {
		t.Fatal(err)
	}
	a, err := MeasureAveraged(g, 20, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MeasureAveraged(g, 20, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.S) != len(b.S) {
		t.Fatal("nondeterministic length")
	}
	for i := range a.S {
		if a.S[i] != b.S[i] {
			t.Fatalf("nondeterministic S(%d)", i)
		}
	}
	// Total mass: averaged S must sum to the node count (graph connected).
	if math.Abs(a.Sites()+1-float64(g.N())) > 1e-6 {
		t.Fatalf("sites %v vs N %d", a.Sites(), g.N())
	}
}

func TestAvgDist(t *testing.T) {
	r := &Reachability{S: []float64{1, 2, 2}} // two at 1 hop, two at 2 hops
	if got := r.AvgDist(); got != 1.5 {
		t.Fatalf("avg dist = %v", got)
	}
	empty := &Reachability{S: []float64{1}}
	if empty.AvgDist() != 0 {
		t.Fatal("no sites: avg dist 0")
	}
}

func TestTCurve(t *testing.T) {
	r := &Reachability{S: []float64{1, 3, 9}}
	rs, ts := r.TCurve()
	if len(rs) != 2 || rs[0] != 1 || rs[1] != 2 {
		t.Fatalf("rs = %v", rs)
	}
	if ts[0] != 3 || ts[1] != 12 {
		t.Fatalf("ts = %v", ts)
	}
}

func TestExpectedTreeLeavesMatchesEquation4(t *testing.T) {
	// For k-ary trees, S(r) = k^r, and Equation 23 must reduce exactly to
	// Equation 4 (the paper derives 23 as the generalization of 4).
	r := karyReach(t, 2, 8)
	tr := analytic.Tree{K: 2, Depth: 8}
	for _, n := range []float64{0, 1, 7, 63, 900} {
		got, err := r.ExpectedTreeLeaves(n)
		if err != nil {
			t.Fatal(err)
		}
		want, err := tr.LeafTreeSize(n)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-6*(want+1) {
			t.Fatalf("n=%v: Eq23 %v vs Eq4 %v", n, got, want)
		}
	}
}

func TestExpectedTreeThroughoutMatchesEquation21(t *testing.T) {
	r := karyReach(t, 3, 5)
	tr := analytic.Tree{K: 3, Depth: 5}
	for _, n := range []float64{1, 5, 40, 300} {
		got, err := r.ExpectedTreeThroughout(n)
		if err != nil {
			t.Fatal(err)
		}
		want, err := tr.ThroughoutTreeSize(n)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-6*(want+1) {
			t.Fatalf("n=%v: Eq30 %v vs Eq21 %v", n, got, want)
		}
	}
}

func TestExpectedTreeErrors(t *testing.T) {
	r := karyReach(t, 2, 3)
	if _, err := r.ExpectedTreeLeaves(-1); err == nil {
		t.Fatal("negative n must error")
	}
	if _, err := r.ExpectedTreeThroughout(-1); err == nil {
		t.Fatal("negative n must error")
	}
	empty := &Reachability{S: []float64{1}}
	if _, err := empty.ExpectedTreeThroughout(5); err == nil {
		t.Fatal("no sites must error")
	}
}

func TestExpectedTreeSaturates(t *testing.T) {
	r := karyReach(t, 2, 6)
	lInf, err := r.ExpectedTreeLeaves(1e12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lInf-r.Sites()) > 1e-6 {
		t.Fatalf("saturation %v vs sites %v", lInf, r.Sites())
	}
}

func TestExpectedTreeSingleLinkRadius(t *testing.T) {
	// A path graph has S(r) = 1 at every radius; any n >= 1 receiver set
	// from the far end uses every link up to it.
	b := graph.NewBuilder(5)
	for i := 0; i < 4; i++ {
		_ = b.AddEdge(i, i+1)
	}
	g := b.Build()
	r, err := Measure(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	l, err := r.ExpectedTreeLeaves(3)
	if err != nil {
		t.Fatal(err)
	}
	if l != 4 {
		t.Fatalf("path tree = %v, want 4", l)
	}
	l0, _ := r.ExpectedTreeLeaves(0)
	if l0 != 0 {
		t.Fatalf("n=0 tree = %v", l0)
	}
}

func TestMeasuredGrowthClasses(t *testing.T) {
	// The paper's dichotomy: random/transit-stub/PA graphs are exponential;
	// TIERS-like and path-like graphs are sub-exponential.
	ts, err := topology.TransitStubSized(500, 3.6, 9)
	if err != nil {
		t.Fatal(err)
	}
	rTS, err := MeasureAveraged(ts, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	clsTS, err := rTS.Classify(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if clsTS == GrowthSubExponential {
		t.Fatalf("transit-stub classified %v; expected exponential-ish", clsTS)
	}

	// A ring is maximally sub-exponential: S(r) = 2 constant.
	b := graph.NewBuilder(200)
	for i := 0; i < 200; i++ {
		_ = b.AddEdge(i, (i+1)%200)
	}
	ring := b.Build()
	rRing, err := MeasureAveraged(ring, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	clsRing, err := rRing.Classify(0.9)
	if err != nil {
		t.Fatal(err)
	}
	if clsRing != GrowthSubExponential {
		t.Fatalf("ring classified %v; want sub-exponential", clsRing)
	}
}

func TestClassifyErrors(t *testing.T) {
	r := karyReach(t, 2, 8)
	if _, err := r.Classify(0); err == nil {
		t.Fatal("satFrac=0 must error")
	}
	if _, err := r.Classify(1.5); err == nil {
		t.Fatal("satFrac>1 must error")
	}
	shallow := &Reachability{S: []float64{1, 5}}
	if _, err := shallow.Classify(0.9); err == nil {
		t.Fatal("too-shallow reachability must error")
	}
}

func TestGrowthClassString(t *testing.T) {
	if GrowthExponential.String() != "exponential" ||
		GrowthSubExponential.String() != "sub-exponential" ||
		GrowthSuperExponential.String() != "super-exponential" {
		t.Fatal("class strings")
	}
	if GrowthClass(42).String() == "" {
		t.Fatal("unknown class must render")
	}
}

func TestModelsNormalized(t *testing.T) {
	exp, pow, gau, err := Figure8Models(2, 3, 20)
	if err != nil {
		t.Fatal(err)
	}
	d := 20
	if math.Abs(pow.S[d]-exp.S[d]) > 1e-6 || math.Abs(gau.S[d]-exp.S[d]) > 1e-6 {
		t.Fatalf("S(D) not normalized: %v %v %v", exp.S[d], pow.S[d], gau.S[d])
	}
	// Classifications must come out as designed.
	for _, c := range []struct {
		r    *Reachability
		want GrowthClass
	}{
		{exp, GrowthExponential},
		{pow, GrowthSubExponential},
		{gau, GrowthSuperExponential},
	} {
		got, err := c.r.Classify(1.0)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Fatalf("model classified %v, want %v", got, c.want)
		}
	}
}

func TestModelErrors(t *testing.T) {
	if _, err := Exponential(1, 5); err == nil {
		t.Fatal("k=1 must error")
	}
	if _, err := Exponential(2, 0); err == nil {
		t.Fatal("depth=0 must error")
	}
	if _, err := PowerLaw(0, 5, 100); err == nil {
		t.Fatal("lambda=0 must error")
	}
	if _, err := PowerLaw(2, 0, 100); err == nil {
		t.Fatal("depth=0 must error")
	}
	if _, err := GaussianExponential(0, 100); err == nil {
		t.Fatal("depth=0 must error")
	}
	if _, _, _, err := Figure8Models(1, 2, 5); err == nil {
		t.Fatal("bad k must propagate")
	}
}

func TestFigure8Separation(t *testing.T) {
	// Figure 8's message: the non-exponential cases behave differently from
	// the exponential one. Check normalized curves differ substantially at
	// moderate n.
	exp, pow, gau, err := Figure8Models(2, 3, 20)
	if err != nil {
		t.Fatal(err)
	}
	n := 1e4
	le, _ := exp.ExpectedTreeLeaves(n)
	lp, _ := pow.ExpectedTreeLeaves(n)
	lg, _ := gau.ExpectedTreeLeaves(n)
	d := exp.AvgDist() // not used for normalization here; sanity only
	_ = d
	// Sub-exponential reachability: more links near the source are shared,
	// so the tree is *smaller* relative to exponential; super-exponential
	// the opposite... verify a clear ordering exists rather than equality.
	if math.Abs(lp-le) < 0.05*le && math.Abs(lg-le) < 0.05*le {
		t.Fatalf("models indistinguishable at n=%v: %v %v %v", n, le, lp, lg)
	}
}

func TestMeasureAveragedOnRing(t *testing.T) {
	// Every source on a ring sees the same S(r); averaging must be exact.
	n := 11
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		_ = b.AddEdge(i, (i+1)%n)
	}
	g := b.Build()
	r, err := MeasureAveraged(g, 5, rng.Mix(3))
	if err != nil {
		t.Fatal(err)
	}
	// S(r) = 2 for r = 1..5 on an 11-ring.
	for d := 1; d <= 5; d++ {
		if math.Abs(r.S[d]-2) > 1e-9 {
			t.Fatalf("S(%d) = %v", d, r.S[d])
		}
	}
}
