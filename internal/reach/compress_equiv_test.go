package reach

import (
	"testing"

	"mtreescale/internal/graph"
	"mtreescale/internal/topology"
)

// The compressed CSR layout must leave S(r) byte-identical: the same sources
// are drawn (layout never changes N), and the BFS distances are equal
// node-for-node, so every histogram count matches exactly — serial, cached,
// or through the MS-BFS slab.
func TestMeasureAveragedCompressedByteIdentical(t *testing.T) {
	g, err := topology.TransitStubSized(400, 3.6, 8)
	if err != nil {
		t.Fatal(err)
	}
	const nSources, seed = 25, 917
	want, err := MeasureAveragedBatch(g, nSources, seed, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, relabel := range []bool{false, true} {
		cg, err := g.Compress(relabel)
		if err != nil {
			t.Fatal(err)
		}
		for _, batch := range []bool{false, true} {
			for _, spts := range []*graph.SPTCache{nil, graph.NewSPTCache(1 << 30)} {
				got, err := MeasureAveragedBatch(cg, nSources, seed, spts, batch)
				if err != nil {
					t.Fatalf("relabel=%v batch=%v: %v", relabel, batch, err)
				}
				if len(got.S) != len(want.S) {
					t.Fatalf("relabel=%v batch=%v: %d radii, want %d", relabel, batch, len(got.S), len(want.S))
				}
				for d := range want.S {
					if got.S[d] != want.S[d] {
						t.Fatalf("relabel=%v batch=%v cache=%v: S(%d) = %v, want %v",
							relabel, batch, spts != nil, d, got.S[d], want.S[d])
					}
				}
			}
		}
	}
}
