// Package reach implements §4 of the paper: reachability functions S(r) and
// T(r) measured from real graphs, the expected delivery-tree size driven
// purely by reachability (Equations 22-23 and 30), and the synthetic
// reachability models of Figure 8.
package reach

import (
	"fmt"
	"math"

	"mtreescale/internal/graph"
	"mtreescale/internal/rng"
	"mtreescale/internal/stats"
)

// Reachability is the function S(r): the (possibly fractional, when averaged
// over sources) number of distinct sites exactly r hops from the source.
// S[0] counts the source itself and is 1 for single-source measurements.
type Reachability struct {
	S []float64
}

// Measure computes S(r) for one source by BFS.
func Measure(g *graph.Graph, source int) (*Reachability, error) {
	spt, err := g.BFS(source)
	if err != nil {
		return nil, err
	}
	hist := spt.DistHistogram()
	s := make([]float64, len(hist))
	for i, c := range hist {
		s[i] = float64(c)
	}
	return &Reachability{S: s}, nil
}

// MeasureAveraged computes S(r) averaged over nSources random sources drawn
// with replacement (the paper's Figure 7 protocol: "averaged over the
// Nsource choices for the source").
func MeasureAveraged(g *graph.Graph, nSources int, seed int64) (*Reachability, error) {
	return MeasureAveragedCached(g, nSources, seed, nil)
}

// MeasureAveragedCached is MeasureAveraged routed through an SPT cache (nil
// disables caching). Experiments that histogram the same (graph, seed) pair —
// fig6 and fig7 share their per-topology source streams — reuse every tree on
// the second pass.
func MeasureAveragedCached(g *graph.Graph, nSources int, seed int64, spts *graph.SPTCache) (*Reachability, error) {
	return MeasureAveragedBatch(g, nSources, seed, spts, false)
}

// maxBatchSlabBytes caps the dense MS-BFS slab the uncached batch path may
// hold; above it the measurement falls back to per-source BFS.
const maxBatchSlabBytes = 512 << 20

// MeasureAveragedBatch is MeasureAveragedCached with an explicit batch knob:
// with batch set, the source traversals run through the MS-BFS kernel — as a
// cache pre-fill when an SPT cache is supplied, else as one pooled slab whose
// distance rows are histogrammed directly. The sources are pre-drawn from the
// same stream in the same order, and S(r) entries are counts accumulated in
// exact float64 integer arithmetic, so the result is identical either way.
func MeasureAveragedBatch(g *graph.Graph, nSources int, seed int64, spts *graph.SPTCache, batch bool) (*Reachability, error) {
	if nSources <= 0 {
		return nil, fmt.Errorf("reach: nSources must be > 0, got %d", nSources)
	}
	if g.N() == 0 {
		return nil, fmt.Errorf("reach: empty graph")
	}
	r := rng.New(seed)
	srcs := make([]int, nSources)
	for i := range srcs {
		srcs[i] = r.Intn(g.N())
	}
	var acc []float64
	if batch && spts != nil {
		if err := spts.FillBatch(g, srcs); err != nil {
			return nil, err
		}
	}
	if batch && spts == nil && int64(nSources)*int64(g.N())*8 <= maxBatchSlabBytes {
		b := graph.AcquireSPTBatch()
		defer graph.ReleaseSPTBatch(b)
		if err := g.BatchSPTsInto(srcs, b); err != nil {
			return nil, err
		}
		for i := range srcs {
			for _, dd := range b.DistRow(i) {
				if dd == graph.Unreachable {
					continue
				}
				d := int(dd)
				for len(acc) <= d {
					acc = append(acc, 0)
				}
				acc[d]++
			}
		}
	} else {
		var sptBuf graph.SPT
		for _, src := range srcs {
			spt := &sptBuf
			if spts != nil {
				cached, err := spts.Get(g, src)
				if err != nil {
					return nil, err
				}
				spt = cached
			} else if err := g.BFSInto(src, &sptBuf); err != nil {
				return nil, err
			}
			for _, v := range spt.Order {
				d := int(spt.Dist[v])
				for len(acc) <= d {
					acc = append(acc, 0)
				}
				acc[d]++
			}
		}
	}
	for i := range acc {
		acc[i] /= float64(nSources)
	}
	return &Reachability{S: acc}, nil
}

// Depth returns the maximum distance D with S(D) > 0.
func (r *Reachability) Depth() int {
	for d := len(r.S) - 1; d >= 0; d-- {
		if r.S[d] > 0 {
			return d
		}
	}
	return 0
}

// T returns T(d) = Σ_{j=1..d} S(j), the expected number of non-source sites
// within d hops. T(Depth()) is the total site population.
func (r *Reachability) T(d int) float64 {
	if d < 0 {
		return 0
	}
	sum := 0.0
	for j := 1; j <= d && j < len(r.S); j++ {
		sum += r.S[j]
	}
	return sum
}

// Sites returns the total number of non-source sites, T(D).
func (r *Reachability) Sites() float64 { return r.T(r.Depth()) }

// AvgDist returns the mean source→site distance C̄ implied by S(r).
func (r *Reachability) AvgDist() float64 {
	var num, den float64
	for d := 1; d < len(r.S); d++ {
		num += float64(d) * r.S[d]
		den += r.S[d]
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// TCurve returns the points (r, T(r)) for r = 1..Depth — the curve plotted
// in Figure 7.
func (r *Reachability) TCurve() (rs []int, ts []float64) {
	d := r.Depth()
	for i := 1; i <= d; i++ {
		rs = append(rs, i)
		ts = append(ts, r.T(i))
	}
	return rs, ts
}

// ExpectedTreeLeaves evaluates Equation 23: the expected delivery-tree size
// when n receivers are drawn with replacement from the S(D) sites at the
// maximum distance D ("all receivers on leaf sites"), assuming receivers
// are equally likely to be downstream of any of the S(r) links at radius r:
//
//	L̄(n) = Σ_{r=1..D} S(r)·(1 − (1 − 1/S(r))^n)
func (r *Reachability) ExpectedTreeLeaves(n float64) (float64, error) {
	if n < 0 {
		return 0, fmt.Errorf("reach: negative n = %v", n)
	}
	sum := 0.0
	for d := 1; d < len(r.S); d++ {
		s := r.S[d]
		if s <= 0 {
			continue
		}
		if s <= 1 {
			// A single link at this radius is on the tree as soon as any
			// receiver exists.
			if n > 0 {
				sum += s
			}
			continue
		}
		sum += s * (1 - math.Exp(n*math.Log1p(-1/s)))
	}
	return sum, nil
}

// ExpectedTreeThroughout evaluates Equation 30: receivers drawn with
// replacement from all non-root sites,
//
//	L̄(n) = Σ_{l=1..D} S(l)·(1 − (1 − (T(D)−T(l−1)) / (S(l)·T(D)))^n)
func (r *Reachability) ExpectedTreeThroughout(n float64) (float64, error) {
	if n < 0 {
		return 0, fmt.Errorf("reach: negative n = %v", n)
	}
	total := r.Sites()
	if total <= 0 {
		return 0, fmt.Errorf("reach: no sites")
	}
	sum := 0.0
	tPrev := 0.0 // T(l-1)
	for l := 1; l < len(r.S); l++ {
		s := r.S[l]
		if s <= 0 {
			continue
		}
		p := (total - tPrev) / (s * total)
		if p > 1 {
			p = 1
		}
		sum += s * (1 - math.Exp(n*math.Log1p(-p)))
		tPrev += s
	}
	return sum, nil
}

// Delta2Leaves returns the second difference of Equation 23,
// Δ²L̄(n) = −Σ_{r=1..D} (1/S(r))·(1 − 1/S(r))^n — the general-network
// counterpart of the k-ary Equation 6 that §4.2's analysis differentiates.
func (r *Reachability) Delta2Leaves(n float64) (float64, error) {
	if n < 0 {
		return 0, fmt.Errorf("reach: negative n = %v", n)
	}
	sum := 0.0
	for d := 1; d < len(r.S); d++ {
		s := r.S[d]
		if s <= 1 {
			continue // a lone link at this radius contributes no curvature
		}
		sum += (1 / s) * math.Exp(n*math.Log1p(-1/s))
	}
	return -sum, nil
}

// HFunction evaluates §4.2's generalization of Equation 11 to an arbitrary
// reachability function, using M = S(D) leaf sites and C̄ = D:
//
//	h(x) = −ln( −x·(M ln M)·Δ²L̄(xM) / D )
//
// For exponential S(r) ≈ e^{λr}, §4.2 predicts h(x) ≈ x·e^{−λ/2}
// (Equation 28), with λ playing the role of ln k.
func (r *Reachability) HFunction(x float64) (float64, error) {
	if x <= 0 {
		return 0, fmt.Errorf("reach: h(x) needs x > 0, got %v", x)
	}
	depth := r.Depth()
	if depth < 1 {
		return 0, fmt.Errorf("reach: no radii")
	}
	M := r.S[depth]
	if M <= 1 {
		return 0, fmt.Errorf("reach: S(D) = %v too small for h(x)", M)
	}
	d2, err := r.Delta2Leaves(x * M)
	if err != nil {
		return 0, err
	}
	arg := -x * (M * math.Log(M)) * d2 / float64(depth)
	if arg <= 0 {
		return 0, fmt.Errorf("reach: h(%v) undefined (argument %v)", x, arg)
	}
	return -math.Log(arg), nil
}

// GrowthClass labels the shape of a reachability function.
type GrowthClass int

const (
	// GrowthExponential: ln T(r) is close to linear in r before saturation.
	GrowthExponential GrowthClass = iota
	// GrowthSubExponential: ln T(r) is concave (e.g. power law S(r) ≈ r^λ).
	GrowthSubExponential
	// GrowthSuperExponential: ln T(r) is convex (e.g. S(r) ≈ e^{λr²}).
	GrowthSuperExponential
)

// String implements fmt.Stringer.
func (c GrowthClass) String() string {
	switch c {
	case GrowthExponential:
		return "exponential"
	case GrowthSubExponential:
		return "sub-exponential"
	case GrowthSuperExponential:
		return "super-exponential"
	default:
		return fmt.Sprintf("GrowthClass(%d)", int(c))
	}
}

// Classify inspects ln T(r) over the pre-saturation range (T(r) below
// satFrac·T(D)) and classifies its curvature. This automates the visual
// judgment the paper makes on Figure 7 ("significant degree of concavity",
// "exhibit exponential growth before reaching the saturation point").
func (r *Reachability) Classify(satFrac float64) (GrowthClass, error) {
	if satFrac <= 0 || satFrac > 1 {
		return 0, fmt.Errorf("reach: satFrac must be in (0,1], got %v", satFrac)
	}
	total := r.Sites()
	var xs, ys []float64
	for d := 1; d <= r.Depth(); d++ {
		td := r.T(d)
		if td <= 0 {
			continue
		}
		if td > satFrac*total {
			break
		}
		xs = append(xs, float64(d))
		ys = append(ys, math.Log(td))
	}
	if len(xs) < 3 {
		return 0, fmt.Errorf("reach: too few pre-saturation radii (%d) to classify", len(xs))
	}
	// Compare first-half and second-half slopes of ln T(r).
	mid := len(xs) / 2
	fit1, err := stats.Linear(xs[:mid+1], ys[:mid+1])
	if err != nil {
		return 0, err
	}
	fit2, err := stats.Linear(xs[mid:], ys[mid:])
	if err != nil {
		return 0, err
	}
	const tol = 0.25 // relative slope change treated as straight
	switch {
	case fit2.Slope < fit1.Slope*(1-tol):
		return GrowthSubExponential, nil
	case fit2.Slope > fit1.Slope*(1+tol):
		return GrowthSuperExponential, nil
	default:
		return GrowthExponential, nil
	}
}
