package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// shedHandler is the canonical serving-boundary composition of Queue and
// WriteJSONError: acquire or answer 429 with a Retry-After hint. The
// daemon's /curve and /shard handlers and mtctl's coordinator both build on
// exactly this contract, so the test pins it at the HTTP layer.
func shedHandler(q *Queue, retryAfter time.Duration, block <-chan struct{}) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		release, err := q.Acquire(r.Context())
		if err != nil {
			WriteJSONError(w, http.StatusTooManyRequests, "saturated: "+err.Error(), retryAfter)
			return
		}
		defer release()
		if block != nil {
			<-block
		}
		w.WriteHeader(http.StatusOK)
	})
}

// TestSaturated429BodyAndRetryAfter saturates a 1-slot, no-waiting-room
// queue and checks every shed response: status 429, Retry-After rounded up
// to whole seconds, Content-Type application/json, and a decodable
// {"error": ...} body.
func TestSaturated429BodyAndRetryAfter(t *testing.T) {
	q := NewQueue(1, 0)
	block := make(chan struct{})
	ts := httptest.NewServer(shedHandler(q, 1500*time.Millisecond, block))
	defer ts.Close()

	// Occupy the single slot.
	inflight := make(chan error, 1)
	go func() {
		resp, err := http.Get(ts.URL)
		if err == nil {
			resp.Body.Close()
		}
		inflight <- err
	}()
	waitFor(t, func() bool { return q.Stats().Active == 1 })

	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("shed request %d: status %d, want 429", i, resp.StatusCode)
		}
		// 1.5s rounds up to 2 whole seconds — never down, never zero.
		if ra := resp.Header.Get("Retry-After"); ra != "2" {
			t.Fatalf("Retry-After = %q, want \"2\"", ra)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("Content-Type = %q", ct)
		}
		var msg map[string]string
		if err := json.Unmarshal(body, &msg); err != nil {
			t.Fatalf("429 body %q not JSON: %v", body, err)
		}
		if msg["error"] == "" {
			t.Fatalf("429 body %q missing error field", body)
		}
	}
	if shed := q.Stats().Shed; shed != 3 {
		t.Fatalf("Shed = %d, want 3", shed)
	}

	close(block)
	if err := <-inflight; err != nil {
		t.Fatal(err)
	}
	if resp, err := http.Get(ts.URL); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("post-release status %d, want 200", resp.StatusCode)
		}
	}
}

// TestSaturationSubSecondRetryAfterFloor pins the other rounding edge: any
// positive hint under a second still advertises at least 1.
func TestSaturationSubSecondRetryAfterFloor(t *testing.T) {
	rec := httptest.NewRecorder()
	WriteJSONError(rec, http.StatusTooManyRequests, "saturated", 10*time.Millisecond)
	if ra := rec.Header().Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After = %q, want floor \"1\"", ra)
	}
}

// TestWaitingRoomShedsOnlyOverflow fills one active slot and a 2-deep
// waiting room with concurrent requests, then confirms exactly the overflow
// beyond active+waiting is shed with 429 and the rest complete with 200.
func TestWaitingRoomShedsOnlyOverflow(t *testing.T) {
	q := NewQueue(1, 2)
	block := make(chan struct{})
	ts := httptest.NewServer(shedHandler(q, time.Second, block))
	defer ts.Close()

	const total = 6 // 1 active + 2 waiting + 3 shed
	var wg sync.WaitGroup
	codes := make(chan int, total)
	launch := func() {
		defer wg.Done()
		resp, err := http.Get(ts.URL)
		if err != nil {
			codes <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		codes <- resp.StatusCode
	}

	wg.Add(1)
	go launch()
	waitFor(t, func() bool { return q.Stats().Active == 1 })
	wg.Add(2)
	go launch()
	go launch()
	waitFor(t, func() bool { return q.Stats().Waiting == 2 })
	wg.Add(3)
	for i := 0; i < 3; i++ {
		go launch()
	}
	waitFor(t, func() bool { return q.Stats().Shed == 3 })

	close(block)
	wg.Wait()
	close(codes)
	got := map[int]int{}
	for c := range codes {
		got[c]++
	}
	if got[http.StatusOK] != 3 || got[http.StatusTooManyRequests] != 3 {
		t.Fatalf("status histogram = %v, want 3x200 + 3x429", got)
	}
}

// waitFor polls cond until it holds or the deadline passes; the admission
// counters are the only cross-goroutine signal the HTTP tests have.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(time.Millisecond)
	}
}
