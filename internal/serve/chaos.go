package serve

import (
	"net/http"
	"time"

	"mtreescale/internal/chaos"
)

// ChaosFaults is the serving tier's failpoint surface, installed under the
// Recoverer so injected panics exercise the real incident path. Sites:
//
//	serve.handler         latency stalls, injected errors (as 500s), panics
//	serve.handler.status  injected status codes (429 carries a Retry-After,
//	                      so coordinator backpressure handling is exercised)
//	serve.response.trunc  response bodies cut off after N bytes, the torn
//	                      payload a dying peer or broken proxy produces
//
// With chaos disabled the middleware forwards after a single atomic load.
func ChaosFaults(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !chaos.Enabled() {
			next.ServeHTTP(w, r)
			return
		}
		if code, ok := chaos.Status("serve.handler.status"); ok {
			retry := time.Duration(0)
			if code == http.StatusTooManyRequests {
				retry = time.Second
			}
			WriteJSONError(w, code, "chaos: injected status", retry)
			return
		}
		// Latency rules stall here; panic rules unwind to the Recoverer;
		// error rules answer 500 like any handler failure.
		if err := chaos.Maybe("serve.handler"); err != nil {
			WriteJSONError(w, http.StatusInternalServerError, err.Error(), 0)
			return
		}
		if limit, ok := chaos.Trunc("serve.response.trunc"); ok {
			tw := &truncWriter{ResponseWriter: w, remain: limit}
			next.ServeHTTP(tw, r)
			return
		}
		next.ServeHTTP(w, r)
	})
}

// truncWriter forwards at most remain body bytes and drops the rest, so the
// client sees a syntactically torn payload (the JSON decoder fails mid-
// document) rather than a clean short read.
type truncWriter struct {
	http.ResponseWriter
	remain int
}

func (t *truncWriter) Write(p []byte) (int, error) {
	if t.remain <= 0 {
		return len(p), nil // swallow; report success like a buffering proxy
	}
	n := len(p)
	if n > t.remain {
		n = t.remain
	}
	if _, err := t.ResponseWriter.Write(p[:n]); err != nil {
		return 0, err
	}
	t.remain -= n
	return len(p), nil
}
