package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestQueueFastPath(t *testing.T) {
	q := NewQueue(2, 0)
	r1, err := q.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := q.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st := q.Stats(); st.Active != 2 || st.Admitted != 2 {
		t.Fatalf("stats = %+v, want 2 active, 2 admitted", st)
	}
	// No waiting room: the third caller is shed immediately.
	if _, err := q.Acquire(context.Background()); !errors.Is(err, ErrSaturated) {
		t.Fatalf("err = %v, want ErrSaturated", err)
	}
	if st := q.Stats(); st.Shed != 1 {
		t.Fatalf("shed = %d, want 1", st.Shed)
	}
	r1()
	r1() // idempotent
	if st := q.Stats(); st.Active != 1 {
		t.Fatalf("active after release = %d, want 1", st.Active)
	}
	r2()
}

func TestQueueWaitingRoom(t *testing.T) {
	q := NewQueue(1, 1)
	release, err := q.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		r, err := q.Acquire(context.Background())
		if err == nil {
			defer r()
		}
		got <- err
	}()
	// Wait until the goroutine occupies the waiting room.
	deadline := time.Now().Add(2 * time.Second)
	for q.Stats().Waiting != 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never registered")
		}
		time.Sleep(time.Millisecond)
	}
	// Waiting room full: next caller is shed, not queued.
	if _, err := q.Acquire(context.Background()); !errors.Is(err, ErrSaturated) {
		t.Fatalf("err = %v, want ErrSaturated with a full waiting room", err)
	}
	release()
	if err := <-got; err != nil {
		t.Fatalf("waiter failed: %v", err)
	}
}

func TestQueueAcquireHonorsContext(t *testing.T) {
	q := NewQueue(1, 4)
	release, err := q.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := q.Acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if st := q.Stats(); st.Waiting != 0 {
		t.Fatalf("waiting = %d after context expiry, want 0", st.Waiting)
	}
}

// Hammer the queue from many goroutines and check the concurrency invariant:
// never more than maxActive holders at once, and every admitted acquisition
// is released.
func TestQueueConcurrentInvariant(t *testing.T) {
	const maxActive, goroutines = 3, 32
	q := NewQueue(maxActive, goroutines)
	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				release, err := q.Acquire(context.Background())
				if err != nil {
					t.Errorf("acquire: %v", err)
					return
				}
				n := cur.Add(1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
				cur.Add(-1)
				release()
			}
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > maxActive {
		t.Fatalf("observed %d concurrent holders, limit %d", p, maxActive)
	}
	if st := q.Stats(); st.Active != 0 || st.Waiting != 0 {
		t.Fatalf("queue not drained: %+v", st)
	}
}
