package serve

import (
	"context"
	"errors"
	"sync"
)

// ErrDraining is returned by Drainer.Enter once a drain has begun: the
// server has stopped admitting new work and is waiting for in-flight work to
// finish. A serving boundary maps it to 503 Service Unavailable.
var ErrDraining = errors.New("serve: draining")

// Drainer tracks in-flight operations and coordinates a graceful drain:
// after Drain is called, Enter rejects new work, and Drain blocks until the
// last in-flight operation exits or its context expires (the drain budget).
// The zero value is ready to use.
type Drainer struct {
	mu       sync.Mutex
	draining bool
	inflight int
	zero     chan struct{} // created by Drain when work is in flight; closed at inflight == 0
}

// Enter registers one in-flight operation. The returned exit function is
// idempotent and must be called when the operation finishes. Once a drain
// has begun, Enter fails with ErrDraining.
func (d *Drainer) Enter() (exit func(), err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.draining {
		return nil, ErrDraining
	}
	d.inflight++
	var once sync.Once
	return func() {
		once.Do(func() {
			d.mu.Lock()
			d.inflight--
			if d.inflight == 0 && d.zero != nil {
				close(d.zero)
				d.zero = nil
			}
			d.mu.Unlock()
		})
	}, nil
}

// Draining reports whether a drain has begun.
func (d *Drainer) Draining() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.draining
}

// Inflight reports the number of operations currently in flight.
func (d *Drainer) Inflight() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.inflight
}

// Drain stops admissions and blocks until every in-flight operation exits
// (nil) or ctx expires (ctx.Err()), whichever comes first. ctx carries the
// drain budget; on budget expiry the caller is expected to cancel the
// in-flight work's contexts and force-close. Calling Drain more than once is
// allowed; each call waits for the same condition.
func (d *Drainer) Drain(ctx context.Context) error {
	d.mu.Lock()
	d.draining = true
	if d.inflight == 0 {
		d.mu.Unlock()
		return nil
	}
	if d.zero == nil {
		d.zero = make(chan struct{})
	}
	zero := d.zero
	d.mu.Unlock()
	select {
	case <-zero:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
