// Package serve is the robustness substrate shared by the mtsimd daemon and
// the experiment scheduler: a bounded admission queue with load shedding, a
// per-request deadline helper with HTTP middleware, a drain controller for
// graceful shutdown, and a quarantine registry that applies exponential
// backoff to workloads that have proven dangerous (a panic or a heap-guard
// trip).
//
// The primitives are deliberately HTTP-agnostic — the scheduler uses the
// quarantine registry directly — with thin net/http adapters (middleware.go)
// layered on top for the daemon.
package serve
