package serve

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestDrainImmediateWhenIdle(t *testing.T) {
	var d Drainer
	if err := d.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !d.Draining() {
		t.Fatal("not draining after Drain")
	}
	if _, err := d.Enter(); !errors.Is(err, ErrDraining) {
		t.Fatalf("Enter after drain: err = %v, want ErrDraining", err)
	}
}

func TestDrainWaitsForInflight(t *testing.T) {
	var d Drainer
	exit, err := d.Enter()
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- d.Drain(context.Background()) }()
	// Drain must not return while work is in flight.
	select {
	case err := <-done:
		t.Fatalf("drain returned %v with work in flight", err)
	case <-time.After(20 * time.Millisecond):
	}
	if d.Inflight() != 1 {
		t.Fatalf("inflight = %d, want 1", d.Inflight())
	}
	exit()
	exit() // idempotent
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("drain did not observe the exit")
	}
}

func TestDrainBudgetExpiry(t *testing.T) {
	var d Drainer
	exit, err := d.Enter()
	if err != nil {
		t.Fatal(err)
	}
	defer exit()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := d.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded when the budget expires", err)
	}
	// A second Drain after the straggler exits succeeds.
	exit()
	if err := d.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}
