package serve

import (
	"errors"
	"testing"
	"time"
)

// fakeClock drives a Quarantine deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newTestQuarantine(base, max time.Duration) (*Quarantine, *fakeClock) {
	q := NewQuarantine(base, max)
	c := &fakeClock{t: time.Unix(1_000_000, 0)}
	q.now = c.now
	return q, c
}

func TestQuarantineExponentialBackoff(t *testing.T) {
	q, clock := newTestQuarantine(time.Second, time.Minute)
	cause := errors.New("panic: boom")

	if b := q.Report("fig1a", cause); b != time.Second {
		t.Fatalf("first strike backoff = %v, want 1s", b)
	}
	if ok, retry := q.Allowed("fig1a"); ok || retry != time.Second {
		t.Fatalf("Allowed = %v, retry %v; want quarantined for 1s", ok, retry)
	}
	// Backoff elapses → allowed again (the retry), strikes retained.
	clock.advance(time.Second)
	if ok, _ := q.Allowed("fig1a"); !ok {
		t.Fatal("still quarantined after backoff elapsed")
	}
	// Failing the retry doubles: 2s, then 4s.
	if b := q.Report("fig1a", cause); b != 2*time.Second {
		t.Fatalf("second strike backoff = %v, want 2s", b)
	}
	clock.advance(2 * time.Second)
	if b := q.Report("fig1a", cause); b != 4*time.Second {
		t.Fatalf("third strike backoff = %v, want 4s", b)
	}
}

func TestQuarantineBackoffCap(t *testing.T) {
	q, _ := newTestQuarantine(time.Second, 3*time.Second)
	for i := 0; i < 10; i++ {
		q.Report("x", nil)
	}
	if b := q.Report("x", nil); b != 3*time.Second {
		t.Fatalf("backoff = %v, want capped at 3s", b)
	}
}

func TestQuarantineClearForgetsStrikes(t *testing.T) {
	q, clock := newTestQuarantine(time.Second, time.Minute)
	q.Report("fig8", nil)
	q.Report("fig8", nil)
	q.Clear("fig8")
	if q.Len() != 0 {
		t.Fatalf("len = %d after Clear, want 0", q.Len())
	}
	if b := q.Report("fig8", nil); b != time.Second {
		t.Fatalf("backoff after Clear = %v, want base again", b)
	}
	clock.advance(time.Hour)
	if ok, _ := q.Allowed("fig8"); !ok {
		t.Fatal("quarantine did not elapse")
	}
}

func TestQuarantineSnapshot(t *testing.T) {
	q, clock := newTestQuarantine(time.Second, time.Minute)
	q.Report("a", errors.New("panic: kaboom\ngoroutine 7 [running]:\nstack..."))
	q.Report("b", nil)
	clock.advance(1500 * time.Millisecond) // a (1s) elapsed, b (1s) elapsed too
	if got := q.Snapshot(); len(got) != 0 {
		t.Fatalf("snapshot after expiry = %+v, want empty", got)
	}
	q.Report("a", nil) // second strike: 2s from now
	snap := q.Snapshot()
	if len(snap) != 1 || snap[0].ID != "a" || snap[0].Strikes != 2 {
		t.Fatalf("snapshot = %+v, want a with 2 strikes", snap)
	}
	q.Report("c", errors.New("panic: kaboom\nstack"))
	for _, info := range q.Snapshot() {
		if info.ID == "c" && info.Cause != "panic: kaboom" {
			t.Fatalf("cause not truncated to first line: %q", info.Cause)
		}
	}
}

func TestQuarantineUnknownIDAllowed(t *testing.T) {
	q, _ := newTestQuarantine(time.Second, time.Minute)
	if ok, retry := q.Allowed("never-seen"); !ok || retry != 0 {
		t.Fatalf("Allowed(unknown) = %v, %v; want true, 0", ok, retry)
	}
}
