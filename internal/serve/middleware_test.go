package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mtreescale/internal/panicsafe"
	"mtreescale/internal/valid"
)

func TestDeadlineResolution(t *testing.T) {
	cases := []struct {
		def, ceiling, requested, want time.Duration
	}{
		{10 * time.Second, time.Minute, 0, 10 * time.Second},              // no request → default
		{10 * time.Second, time.Minute, 2 * time.Second, 2 * time.Second}, // request honored
		{10 * time.Second, time.Minute, time.Hour, time.Minute},           // capped at ceiling
		{10 * time.Second, 0, time.Hour, 10 * time.Second},                // no ceiling → default caps
	}
	for _, c := range cases {
		if got := Deadline(c.def, c.ceiling, c.requested); got != c.want {
			t.Errorf("Deadline(%v, %v, %v) = %v, want %v", c.def, c.ceiling, c.requested, got, c.want)
		}
	}
}

func TestParseDeadline(t *testing.T) {
	if d, err := ParseDeadline(""); err != nil || d != 0 {
		t.Fatalf("empty = %v, %v", d, err)
	}
	if d, err := ParseDeadline("150ms"); err != nil || d != 150*time.Millisecond {
		t.Fatalf("150ms = %v, %v", d, err)
	}
	for _, bad := range []string{"nope", "-2s", "0s", "2"} {
		if _, err := ParseDeadline(bad); !valid.IsParam(err) {
			t.Errorf("ParseDeadline(%q) err = %v, want valid.ErrParam", bad, err)
		}
	}
}

func TestWithRequestDeadlineAppliesBudget(t *testing.T) {
	var sawBudget time.Duration
	var hadDeadline bool
	h := WithRequestDeadline(5*time.Second, 10*time.Second, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sawBudget = RequestBudget(r.Context())
		_, hadDeadline = r.Context().Deadline()
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/curve?deadline=2s", nil))
	if sawBudget != 2*time.Second || !hadDeadline {
		t.Fatalf("budget = %v (deadline set: %v), want 2s with a context deadline", sawBudget, hadDeadline)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/curve?deadline=junk", nil))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("malformed deadline: status %d, want 400", rec.Code)
	}
}

func TestRecovererIsolatesPanic(t *testing.T) {
	var gotID string
	var gotPE *panicsafe.PanicError
	h := Recoverer(func(id string, pe *panicsafe.PanicError) { gotID, gotPE = id, pe },
		http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			panic("handler exploded")
		}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	body := rec.Body.String()
	if !strings.Contains(body, gotID) {
		t.Fatalf("body %q does not carry incident id %q", body, gotID)
	}
	if strings.Contains(body, "handler exploded") {
		t.Fatalf("panic value leaked to the client: %q", body)
	}
	if gotPE == nil || gotPE.Value != "handler exploded" {
		t.Fatalf("onIncident got %+v", gotPE)
	}
}

func TestRecovererPassesThrough(t *testing.T) {
	h := Recoverer(nil, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != http.StatusTeapot {
		t.Fatalf("status = %d, want passthrough 418", rec.Code)
	}
}

func TestWriteJSONErrorRetryAfter(t *testing.T) {
	rec := httptest.NewRecorder()
	WriteJSONError(rec, http.StatusTooManyRequests, "saturated", 1500*time.Millisecond)
	if rec.Code != 429 {
		t.Fatalf("status = %d", rec.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra != "2" {
		t.Fatalf("Retry-After = %q, want rounded-up seconds \"2\"", ra)
	}
	if !strings.Contains(rec.Body.String(), "saturated") {
		t.Fatalf("body = %q", rec.Body.String())
	}
}

func TestNewIncidentIDUnique(t *testing.T) {
	a, b := NewIncidentID(), NewIncidentID()
	if a == b || a == "" {
		t.Fatalf("ids not unique: %q, %q", a, b)
	}
}

func TestRequestBudgetWithoutMiddleware(t *testing.T) {
	if d := RequestBudget(context.Background()); d != 0 {
		t.Fatalf("budget = %v, want 0", d)
	}
}
