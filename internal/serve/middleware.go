package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"mtreescale/internal/panicsafe"
)

// WriteJSONError emits the daemon's uniform error body. retryAfter > 0 adds
// a Retry-After header (whole seconds, rounded up, at least 1).
func WriteJSONError(w http.ResponseWriter, status int, msg string, retryAfter time.Duration) {
	w.Header().Set("Content-Type", "application/json")
	if retryAfter > 0 {
		secs := int64((retryAfter + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	}
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

var incidentSeq atomic.Uint64

// NewIncidentID mints an opaque incident identifier: random hex plus a
// process-unique sequence number, so a 500 can be correlated with the
// server-side log line without leaking panic internals to the client.
func NewIncidentID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Fall back to the sequence alone; uniqueness within the process is
		// all correlation needs.
		return fmt.Sprintf("inc-%06d", incidentSeq.Add(1))
	}
	return fmt.Sprintf("inc-%s-%d", hex.EncodeToString(b[:]), incidentSeq.Add(1))
}

// Recoverer wraps a handler so a panic answers 500 with an opaque incident
// id instead of killing the process. onIncident (optional) receives the id
// and the recovered *panicsafe.PanicError for logging. If the handler had
// already written headers the 500 cannot be sent; the connection is simply
// dropped — handlers below this middleware buffer their responses.
func Recoverer(onIncident func(id string, pe *panicsafe.PanicError), next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		err := panicsafe.Do(func() error {
			next.ServeHTTP(w, r)
			return nil
		})
		if err == nil {
			return
		}
		pe, ok := err.(*panicsafe.PanicError)
		if !ok {
			pe = &panicsafe.PanicError{Value: err}
		}
		id := NewIncidentID()
		if onIncident != nil {
			onIncident(id, pe)
		}
		WriteJSONError(w, http.StatusInternalServerError, "internal error (incident "+id+")", 0)
	})
}

// ctxKeyDeadline marks request contexts that already carry the resolved
// compute budget.
type ctxKeyDeadline struct{}

// RequestBudget returns the compute budget WithRequestDeadline resolved for
// this request, or 0 when the middleware is not installed.
func RequestBudget(ctx context.Context) time.Duration {
	d, _ := ctx.Value(ctxKeyDeadline{}).(time.Duration)
	return d
}

// WithRequestDeadline resolves the request's compute budget — the server
// default def, optionally overridden by a ?deadline= query parameter, capped
// at ceiling — applies it to the request context, and records it for
// RequestBudget. A malformed or non-positive ?deadline= answers 400.
func WithRequestDeadline(def, ceiling time.Duration, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requested, err := ParseDeadline(r.URL.Query().Get("deadline"))
		if err != nil {
			WriteJSONError(w, http.StatusBadRequest, err.Error(), 0)
			return
		}
		d := Deadline(def, ceiling, requested)
		ctx := context.WithValue(r.Context(), ctxKeyDeadline{}, d)
		if d > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, d)
			defer cancel()
		}
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}
