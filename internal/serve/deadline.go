package serve

import (
	"time"

	"mtreescale/internal/valid"
)

// Deadline resolves the effective per-request compute budget: def when the
// client requested nothing, the requested value otherwise, never above
// ceiling. A non-positive ceiling means def is also the ceiling.
func Deadline(def, ceiling, requested time.Duration) time.Duration {
	if ceiling <= 0 {
		ceiling = def
	}
	d := def
	if requested > 0 {
		d = requested
	}
	if d > ceiling {
		d = ceiling
	}
	return d
}

// ParseDeadline parses a client-supplied deadline string ("2s", "150ms").
// Empty means "no request" (0). Malformed or non-positive values are
// rejected with a valid.ErrParam-wrapped error, so the boundary answers 400.
func ParseDeadline(s string) (time.Duration, error) {
	if s == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, valid.Badf("serve: bad deadline %q", s)
	}
	if d <= 0 {
		return 0, valid.Badf("serve: deadline must be positive, got %v", d)
	}
	return d, nil
}
