package serve

import (
	"errors"
	"sync"
	"time"

	"mtreescale/internal/retry"
)

// ErrQuarantined marks work refused because its id is quarantined: a recent
// run panicked or tripped the heap guard, and the exponential backoff has
// not yet elapsed. The scheduler returns it in RunStats.Err; the daemon maps
// it to 503 with a Retry-After, or answers from the result cache in degraded
// mode.
var ErrQuarantined = errors.New("serve: quarantined")

// Quarantine is a registry of workload ids that have recently proven
// dangerous. Each Report strikes the id and quarantines it for
// base × 2^(strikes-1), capped at max; Allowed admits the id again once the
// backoff has elapsed (the retry), and a successful retry should Clear it.
// Strikes survive an elapsed backoff, so an id that fails on every retry
// backs off exponentially rather than oscillating.
type Quarantine struct {
	mu      sync.Mutex
	backoff retry.Backoff    // unjittered: quarantine windows are test-pinned
	now     func() time.Time // injectable for tests
	entries map[string]*quarantineEntry
}

type quarantineEntry struct {
	strikes int
	until   time.Time
	cause   error
}

// QuarantineInfo describes one quarantined id for health reporting.
type QuarantineInfo struct {
	ID      string    `json:"id"`
	Strikes int       `json:"strikes"`
	Until   time.Time `json:"until"`
	Cause   string    `json:"cause"`
}

// NewQuarantine returns a registry with the given backoff base and cap.
// Non-positive values fall back to 1s base and 5m cap.
func NewQuarantine(base, max time.Duration) *Quarantine {
	if base <= 0 {
		base = time.Second
	}
	if max <= 0 {
		max = 5 * time.Minute
	}
	if max < base {
		max = base
	}
	return &Quarantine{
		backoff: retry.Backoff{Base: base, Max: max, Factor: 2},
		now:     time.Now,
		entries: make(map[string]*quarantineEntry),
	}
}

// SetClock replaces the registry's time source. Tests (including other
// packages') use it to drive strike/elapse/clear transitions without
// sleeping; pass nil to restore the real clock.
func (q *Quarantine) SetClock(now func() time.Time) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if now == nil {
		now = time.Now
	}
	q.now = now
}

// Report strikes id with the given cause and returns the backoff applied.
func (q *Quarantine) Report(id string, cause error) time.Duration {
	q.mu.Lock()
	defer q.mu.Unlock()
	e := q.entries[id]
	if e == nil {
		e = &quarantineEntry{}
		q.entries[id] = e
	}
	e.strikes++
	// The shared retry layer computes the window: base × 2^(strikes-1),
	// capped, no jitter — the exact series the quarantine tests pin.
	backoff := q.backoff.Delay(e.strikes)
	e.until = q.now().Add(backoff)
	e.cause = cause
	return backoff
}

// Allowed reports whether id may run. When quarantined it also returns the
// remaining backoff, a ready-made Retry-After hint.
func (q *Quarantine) Allowed(id string) (ok bool, retryIn time.Duration) {
	q.mu.Lock()
	defer q.mu.Unlock()
	e := q.entries[id]
	if e == nil {
		return true, 0
	}
	if remaining := e.until.Sub(q.now()); remaining > 0 {
		return false, remaining
	}
	return true, 0
}

// Clear forgets id entirely — call it after a successful retry.
func (q *Quarantine) Clear(id string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	delete(q.entries, id)
}

// Len reports the number of ids currently holding strikes.
func (q *Quarantine) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.entries)
}

// Snapshot lists the ids whose quarantine has not yet elapsed, for health
// endpoints and logs.
func (q *Quarantine) Snapshot() []QuarantineInfo {
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.now()
	var out []QuarantineInfo
	for id, e := range q.entries {
		if e.until.After(now) {
			cause := ""
			if e.cause != nil {
				cause = firstLine(e.cause.Error())
			}
			out = append(out, QuarantineInfo{ID: id, Strikes: e.strikes, Until: e.until, Cause: cause})
		}
	}
	return out
}

// firstLine truncates multi-line error text (panic stacks) for reporting.
func firstLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i]
		}
	}
	return s
}
