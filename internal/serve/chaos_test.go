package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mtreescale/internal/chaos"
	"mtreescale/internal/panicsafe"
)

func okHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"ok":true,"payload":"0123456789abcdef0123456789abcdef"}`)
	})
}

func doReq(t *testing.T, h http.Handler) *httptest.ResponseRecorder {
	t.Helper()
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/x", nil))
	return rr
}

func TestChaosFaultsDisabledPassthrough(t *testing.T) {
	chaos.Disable()
	rr := doReq(t, ChaosFaults(okHandler()))
	if rr.Code != 200 || !strings.Contains(rr.Body.String(), `"ok":true`) {
		t.Fatalf("disabled chaos altered response: %d %q", rr.Code, rr.Body.String())
	}
}

func TestChaosFaultsInjectedStatus(t *testing.T) {
	plan, err := chaos.Parse("serve.handler.status=status:429#1", 7)
	if err != nil {
		t.Fatal(err)
	}
	chaos.Enable(plan)
	defer chaos.Disable()

	h := ChaosFaults(okHandler())
	rr := doReq(t, h)
	if rr.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", rr.Code)
	}
	if rr.Header().Get("Retry-After") == "" {
		t.Fatal("injected 429 missing Retry-After")
	}
	var body struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil || body.Error == "" {
		t.Fatalf("injected status body not a JSON error doc: %q", rr.Body.String())
	}
	// Limit 1: the next request passes clean.
	if rr2 := doReq(t, h); rr2.Code != 200 {
		t.Fatalf("second request = %d, want 200 after limit exhausted", rr2.Code)
	}
}

func TestChaosFaultsInjectedError(t *testing.T) {
	plan, err := chaos.Parse("serve.handler=error#1", 7)
	if err != nil {
		t.Fatal(err)
	}
	chaos.Enable(plan)
	defer chaos.Disable()

	rr := doReq(t, ChaosFaults(okHandler()))
	if rr.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rr.Code)
	}
}

func TestChaosFaultsPanicUnwindsToRecoverer(t *testing.T) {
	plan, err := chaos.Parse("serve.handler=panic#1", 7)
	if err != nil {
		t.Fatal(err)
	}
	chaos.Enable(plan)
	defer chaos.Disable()

	var incidentID string
	h := Recoverer(func(id string, pe *panicsafe.PanicError) { incidentID = id }, ChaosFaults(okHandler()))
	rr := doReq(t, h)
	if incidentID == "" {
		t.Fatal("Recoverer incident hook never fired")
	}
	if rr.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500 from Recoverer", rr.Code)
	}
	if !strings.Contains(rr.Body.String(), "incident") {
		t.Fatalf("panic did not reach Recoverer: %q", rr.Body.String())
	}
}

func TestChaosFaultsTruncatesResponse(t *testing.T) {
	plan, err := chaos.Parse("serve.response.trunc=trunc:10#1", 7)
	if err != nil {
		t.Fatal(err)
	}
	chaos.Enable(plan)
	defer chaos.Disable()

	h := ChaosFaults(okHandler())
	rr := doReq(t, h)
	if got := rr.Body.Len(); got != 10 {
		t.Fatalf("truncated body = %d bytes, want 10", got)
	}
	var v any
	if err := json.Unmarshal(rr.Body.Bytes(), &v); err == nil {
		t.Fatal("truncated body still parsed as JSON — truncation exercised nothing")
	}
	// After the limit, responses flow whole again.
	if rr2 := doReq(t, h); rr2.Body.Len() == 10 {
		t.Fatal("truncation persisted past its limit")
	}
}

// TestQuarantineLifecycleViaSetClock walks the full strike → quarantined →
// elapsed → re-strike → capped → Clear cycle against the exported SetClock
// hook, with no real sleeping anywhere. This is the cross-package pattern:
// external tests get deterministic backoff timing without reaching into
// unexported fields.
func TestQuarantineLifecycleViaSetClock(t *testing.T) {
	q := NewQuarantine(time.Second, 4*time.Second)
	now := time.Unix(2_000_000, 0)
	q.SetClock(func() time.Time { return now })

	// Strike 1: quarantined for exactly base.
	if b := q.Report("shard:abc", ErrQuarantined); b != time.Second {
		t.Fatalf("strike 1 backoff = %v, want 1s", b)
	}
	if ok, retry := q.Allowed("shard:abc"); ok || retry != time.Second {
		t.Fatalf("after strike 1: ok=%v retry=%v", ok, retry)
	}
	// Halfway through: still quarantined, Retry-After shrinks with the clock.
	now = now.Add(400 * time.Millisecond)
	if ok, retry := q.Allowed("shard:abc"); ok || retry != 600*time.Millisecond {
		t.Fatalf("mid-backoff: ok=%v retry=%v, want 600ms left", ok, retry)
	}
	// Elapsed: admitted for the retry, but strikes are retained.
	now = now.Add(600 * time.Millisecond)
	if ok, _ := q.Allowed("shard:abc"); !ok {
		t.Fatal("not admitted after backoff elapsed")
	}
	// Strikes 2..5 double then pin at the cap: 2s, 4s, 4s, 4s.
	want := []time.Duration{2 * time.Second, 4 * time.Second, 4 * time.Second, 4 * time.Second}
	for i, w := range want {
		if b := q.Report("shard:abc", ErrQuarantined); b != w {
			t.Fatalf("strike %d backoff = %v, want %v", i+2, b, w)
		}
		now = now.Add(w)
	}
	// Successful retry clears everything; the next failure starts at base.
	q.Clear("shard:abc")
	if b := q.Report("shard:abc", ErrQuarantined); b != time.Second {
		t.Fatalf("post-Clear backoff = %v, want base", b)
	}
	// SetClock(nil) restores the real clock: a 1s quarantine started "now"
	// must still be active when checked immediately.
	q.SetClock(nil)
	q.Report("shard:real", ErrQuarantined)
	if ok, _ := q.Allowed("shard:real"); ok {
		t.Fatal("real-clock quarantine already elapsed")
	}
}
