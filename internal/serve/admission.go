package serve

import (
	"context"
	"errors"
	"sync"
)

// ErrSaturated is returned by Queue.Acquire when both the active slots and
// the waiting room are full. A serving boundary maps it to 429 Too Many
// Requests with a Retry-After hint; shedding here keeps /healthz and the
// cheap endpoints responsive instead of letting every connection pile onto
// the compute pool.
var ErrSaturated = errors.New("serve: admission queue saturated")

// Queue is a bounded admission queue: at most maxActive acquisitions run
// concurrently and at most maxWait callers block waiting for a slot; any
// caller beyond that is shed immediately with ErrSaturated. The zero value
// is not usable; construct with NewQueue.
type Queue struct {
	slots chan struct{}

	mu       sync.Mutex
	maxWait  int
	waiting  int
	admitted uint64
	shed     uint64
}

// QueueStats is a point-in-time snapshot of the admission queue.
type QueueStats struct {
	// Active and Waiting are the current occupancy.
	Active, Waiting int
	// MaxActive and MaxWait are the configured bounds.
	MaxActive, MaxWait int
	// Admitted and Shed are cumulative counters.
	Admitted, Shed uint64
}

// NewQueue returns a queue running at most maxActive concurrent admissions
// with a waiting room of maxWait. maxActive is clamped to at least 1;
// a negative maxWait means no waiting room (pure load shedding).
func NewQueue(maxActive, maxWait int) *Queue {
	if maxActive < 1 {
		maxActive = 1
	}
	if maxWait < 0 {
		maxWait = 0
	}
	return &Queue{
		slots:   make(chan struct{}, maxActive),
		maxWait: maxWait,
	}
}

// Acquire claims a slot, blocking in the waiting room when all slots are
// busy. It returns an idempotent release function on success, ErrSaturated
// when the waiting room is full, or ctx.Err() if the caller's context ends
// while waiting.
func (q *Queue) Acquire(ctx context.Context) (release func(), err error) {
	// Fast path: a free slot, no waiting.
	select {
	case q.slots <- struct{}{}:
		q.mu.Lock()
		q.admitted++
		q.mu.Unlock()
		return q.releaseFunc(), nil
	default:
	}
	q.mu.Lock()
	if q.waiting >= q.maxWait {
		q.shed++
		q.mu.Unlock()
		return nil, ErrSaturated
	}
	q.waiting++
	q.mu.Unlock()
	defer func() {
		q.mu.Lock()
		q.waiting--
		if err == nil {
			q.admitted++
		}
		q.mu.Unlock()
	}()
	select {
	case q.slots <- struct{}{}:
		return q.releaseFunc(), nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// releaseFunc frees one slot, exactly once however many times it is called.
func (q *Queue) releaseFunc() func() {
	var once sync.Once
	return func() {
		once.Do(func() { <-q.slots })
	}
}

// Stats snapshots the queue counters.
func (q *Queue) Stats() QueueStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return QueueStats{
		Active:    len(q.slots),
		Waiting:   q.waiting,
		MaxActive: cap(q.slots),
		MaxWait:   q.maxWait,
		Admitted:  q.admitted,
		Shed:      q.shed,
	}
}
