package cluster

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"strconv"
)

// End-to-end result integrity. A shard's partial sums cross two lossy
// boundaries on their way into a merge — the HTTP response body and the
// journal file — and a single flipped bit in either silently skews every
// downstream figure, because partial sums are just numbers that still parse.
// Seal stamps each Partial with a checksum over its canonical JSON encoding;
// VerifySum recomputes it at every trust boundary (coordinator decode,
// journal resume, merge). encoding/json emits shortest-round-trip float64
// text, so the canonical encoding — and therefore the checksum — is stable
// across marshal/unmarshal cycles and across machines.

// payloadSum hashes the partial's canonical JSON form with the Sum field
// blanked, FNV-1a 64 in hex. FNV is not cryptographic and does not need to
// be: the adversary is a flipped bit or a torn write, not a forger (the
// bearer token handles actors).
func (p *Partial) payloadSum() (string, error) {
	clone := *p
	clone.Sum = ""
	b, err := json.Marshal(&clone)
	if err != nil {
		return "", fmt.Errorf("cluster: hashing partial [%d, %d): %w", p.Lo, p.Hi, err)
	}
	h := fnv.New64a()
	h.Write(b)
	return strconv.FormatUint(h.Sum64(), 16), nil
}

// Seal stamps the partial with its payload checksum. Workers seal every
// partial they emit (ExecuteShard), so anything arriving unsealed at a trust
// boundary is itself suspect.
func (p *Partial) Seal() error {
	sum, err := p.payloadSum()
	if err != nil {
		return err
	}
	p.Sum = sum
	return nil
}

// VerifySum recomputes the checksum and compares. An unsealed partial fails
// too — at the boundaries that call VerifySum, a missing seal means the
// payload was produced by something other than ExecuteShard or was damaged
// enough to lose the field. The error is deliberately NOT valid.ErrParam:
// corruption in transit is a retryable worker failure (strike + requeue),
// not a bad request.
func (p *Partial) VerifySum() error {
	if p.Sum == "" {
		return fmt.Errorf("cluster: partial [%d, %d) is unsealed", p.Lo, p.Hi)
	}
	sum, err := p.payloadSum()
	if err != nil {
		return err
	}
	if sum != p.Sum {
		return fmt.Errorf("cluster: partial [%d, %d) checksum mismatch: payload hashes to %s, sealed as %s", p.Lo, p.Hi, sum, p.Sum)
	}
	return nil
}
