package cluster

import (
	"bufio"
	"context"
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"mtreescale/internal/chaos"
	"mtreescale/internal/serve"
	"mtreescale/internal/valid"
)

// RegisterPath is the registrar endpoint workers announce themselves to
// (POST, JSON body {"url": "http://host:port"}).
const RegisterPath = "/register"

// MemberEvent is one membership transition: Kind "join" when a worker is
// admitted (first announcement, or re-announcement after its lease
// expired), "leave" when its lease expires unrenewed.
type MemberEvent struct {
	Kind   string
	Worker string
}

// Registry is a lease-based worker membership table. Workers enter by
// announcement — their own POST /register, or the coordinator's -discover
// polling — and stay members while their TTL lease keeps being renewed;
// the coordinator's /healthz heartbeats renew the lease of every worker
// that answers, so a worker that stops answering ages out and is retired.
// Static members (the classic -workers list) hold permanent leases: they
// can be evicted by the health tracker but never retired by the sweep, so
// a fixed fleet behaves exactly as it did before registries existed.
//
// All methods are safe for concurrent use. Watchers are invoked
// synchronously, outside the registry lock, in the goroutine that caused
// the transition.
type Registry struct {
	mu       sync.Mutex
	ttl      time.Duration
	now      func() time.Time
	members  map[string]*member
	watchers map[int]func(MemberEvent)
	nextID   int
}

type member struct {
	static  bool
	expires time.Time
}

// DefaultLeaseTTL is the lease length used when none is configured: long
// enough that several consecutive missed heartbeats precede retirement.
const DefaultLeaseTTL = 15 * time.Second

// NewRegistry builds a registry with the given lease TTL (non-positive
// means DefaultLeaseTTL) whose static members never expire.
func NewRegistry(ttl time.Duration, static []string) *Registry {
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	r := &Registry{
		ttl:      ttl,
		now:      time.Now,
		members:  map[string]*member{},
		watchers: map[int]func(MemberEvent){},
	}
	for _, w := range static {
		r.members[w] = &member{static: true}
	}
	return r
}

// AddStatic admits workers as static members (permanent leases). Workers
// already present are promoted to static.
func (r *Registry) AddStatic(workers ...string) {
	var joined []MemberEvent
	r.mu.Lock()
	for _, w := range workers {
		m := r.members[w]
		if m == nil {
			r.members[w] = &member{static: true}
			joined = append(joined, MemberEvent{Kind: "join", Worker: w})
			continue
		}
		m.static = true
	}
	r.mu.Unlock()
	r.notify(joined)
}

// SetClock replaces the registry's time source; nil restores the real
// clock. Tests drive lease expiry without sleeping.
func (r *Registry) SetClock(now func() time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if now == nil {
		now = time.Now
	}
	r.now = now
}

// Watch registers fn for membership transitions and returns an
// unsubscribe function. fn runs synchronously in the goroutine that
// caused the transition, after the registry lock is released.
func (r *Registry) Watch(fn func(MemberEvent)) (cancel func()) {
	r.mu.Lock()
	id := r.nextID
	r.nextID++
	r.watchers[id] = fn
	r.mu.Unlock()
	return func() {
		r.mu.Lock()
		delete(r.watchers, id)
		r.mu.Unlock()
	}
}

// notify fans events out to the watchers subscribed at call time.
func (r *Registry) notify(events []MemberEvent) {
	if len(events) == 0 {
		return
	}
	r.mu.Lock()
	fns := make([]func(MemberEvent), 0, len(r.watchers))
	for _, fn := range r.watchers {
		fns = append(fns, fn)
	}
	r.mu.Unlock()
	for _, ev := range events {
		for _, fn := range fns {
			fn(ev)
		}
	}
}

// Announce admits worker (or renews its lease if already a member) and
// reports whether this announcement was a join. Worker URLs must parse
// and carry an http or https scheme — the registrar is an open write
// endpoint modulo its bearer token, and a garbage URL would wedge a
// dispatch slot.
//
// Failpoint "registry.announce": an injected error refuses the
// announcement, modeling a dropped or corrupted registration.
func (r *Registry) Announce(worker string) (joined bool, err error) {
	u, err := url.Parse(worker)
	if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return false, valid.Badf("cluster: registry: bad worker URL %q", worker)
	}
	if err := chaos.Maybe("registry.announce"); err != nil {
		return false, fmt.Errorf("cluster: registry: announce %s: %w", worker, err)
	}
	r.mu.Lock()
	m := r.members[worker]
	if m == nil {
		m = &member{}
		r.members[worker] = m
		joined = true
	}
	if !m.static {
		m.expires = r.now().Add(r.ttl)
	}
	r.mu.Unlock()
	if joined {
		r.notify([]MemberEvent{{Kind: "join", Worker: worker}})
	}
	return joined, nil
}

// Renew extends worker's lease — the heartbeat loop calls it on every
// successful /healthz probe. Renewing a non-member or static member is a
// no-op: renewal keeps members alive, it does not admit new ones.
//
// Failpoint "registry.lease": an injected error drops the renewal, so the
// lease keeps aging toward expiry exactly as if the heartbeat had been
// lost on the wire.
func (r *Registry) Renew(worker string) error {
	if err := chaos.Maybe("registry.lease"); err != nil {
		return fmt.Errorf("cluster: registry: lease renewal for %s: %w", worker, err)
	}
	r.mu.Lock()
	if m := r.members[worker]; m != nil && !m.static {
		m.expires = r.now().Add(r.ttl)
	}
	r.mu.Unlock()
	return nil
}

// Sweep retires every dynamic member whose lease has expired, emitting a
// "leave" per retirement, and returns the retired workers.
func (r *Registry) Sweep() []string {
	r.mu.Lock()
	now := r.now()
	var gone []string
	for w, m := range r.members {
		if !m.static && m.expires.Before(now) {
			delete(r.members, w)
			gone = append(gone, w)
		}
	}
	r.mu.Unlock()
	sort.Strings(gone)
	events := make([]MemberEvent, len(gone))
	for i, w := range gone {
		events[i] = MemberEvent{Kind: "leave", Worker: w}
	}
	r.notify(events)
	return gone
}

// Members returns the current membership, sorted for deterministic
// iteration.
func (r *Registry) Members() []string {
	r.mu.Lock()
	out := make([]string, 0, len(r.members))
	for w := range r.members {
		out = append(out, w)
	}
	r.mu.Unlock()
	sort.Strings(out)
	return out
}

// Active reports whether worker currently holds a live membership (static,
// or a lease that has not expired). Expired-but-unswept members count as
// inactive: dispatch decisions must not outrun the sweep.
func (r *Registry) Active(worker string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.members[worker]
	if m == nil {
		return false
	}
	return m.static || !m.expires.Before(r.now())
}

// registerRequest is the POST /register body.
type registerRequest struct {
	URL string `json:"url"`
}

// Handler returns the registrar's HTTP handler: POST /register with a
// JSON {"url": ...} body announces a worker. A non-empty token demands
// "Authorization: Bearer <token>" (constant-time compare), the same gate
// mtsimd puts on /shard — an open registrar would let anyone steer shard
// traffic.
func (r *Registry) Handler(token string) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+RegisterPath, func(w http.ResponseWriter, req *http.Request) {
		if token != "" {
			want := "Bearer " + token
			got := req.Header.Get("Authorization")
			if subtle.ConstantTimeCompare([]byte(got), []byte(want)) != 1 {
				w.Header().Set("WWW-Authenticate", `Bearer realm="mtctl-registry"`)
				serve.WriteJSONError(w, http.StatusUnauthorized, "missing or invalid bearer token", 0)
				return
			}
		}
		var body registerRequest
		if err := json.NewDecoder(http.MaxBytesReader(w, req.Body, 4096)).Decode(&body); err != nil {
			serve.WriteJSONError(w, http.StatusBadRequest, "malformed register body: "+err.Error(), 0)
			return
		}
		joined, err := r.Announce(body.URL)
		if err != nil {
			status := http.StatusInternalServerError
			if valid.IsParam(err) {
				status = http.StatusBadRequest
			}
			serve.WriteJSONError(w, status, err.Error(), 0)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"joined\":%v,\"ttl_ms\":%d}\n", joined, r.ttl.Milliseconds())
	})
	return mux
}

// ReadDiscoverFile parses a -discover address file: one worker base URL
// per line, blank lines and #-comments ignored.
func ReadDiscoverFile(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		out = append(out, line)
	}
	return out, sc.Err()
}

// PollDiscoverFile watches a -discover address file until ctx ends,
// re-announcing every listed worker each interval so additions join within
// one poll and removals age out by lease expiry. Read errors are reported
// through onErr (nil ignores them) and retried next round — a transient
// unreadable file must not tear down membership.
func (r *Registry) PollDiscoverFile(ctx context.Context, path string, interval time.Duration, onErr func(error)) {
	if interval <= 0 {
		interval = time.Second
	}
	for {
		workers, err := ReadDiscoverFile(path)
		if err != nil && onErr != nil {
			onErr(err)
		}
		for _, w := range workers {
			if _, err := r.Announce(w); err != nil && onErr != nil {
				onErr(err)
			}
		}
		if sleepCtx(ctx, interval) != nil {
			return
		}
	}
}
