package cluster

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"mtreescale/internal/chaos"
	"mtreescale/internal/valid"
)

// TestPartialSealVerify pins the integrity contract: a sealed partial
// verifies, any payload mutation breaks the seal, and the failure is
// retryable (NOT a permanent parameter error).
func TestPartialSealVerify(t *testing.T) {
	plan, err := Plan(testGrid(KindCurve), 3)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ExecuteShard(nil, plan[0])
	if err != nil {
		t.Fatal(err)
	}
	if p.Sum == "" {
		t.Fatal("ExecuteShard returned an unsealed partial")
	}
	if err := p.VerifySum(); err != nil {
		t.Fatalf("fresh seal does not verify: %v", err)
	}
	// A single mutated float — the bit-flip that still parses — must break
	// the seal, and the error must take the retryable path.
	p.Curve.RatioSum[0] += 1e-9
	err = p.VerifySum()
	if err == nil {
		t.Fatal("mutated payload still verifies")
	}
	if valid.IsParam(err) {
		t.Fatal("checksum mismatch is a permanent error — it would fail-fast instead of requeue")
	}
	p.Curve.RatioSum[0] -= 1e-9
	if err := p.VerifySum(); err != nil {
		t.Fatalf("restored payload does not verify: %v", err)
	}
	// Unsealed partials fail at trust boundaries.
	p.Sum = ""
	if err := p.VerifySum(); err == nil {
		t.Fatal("unsealed partial verifies")
	}
	// The seal survives a JSON round trip (shortest-round-trip floats).
	if err := p.Seal(); err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var back Partial
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if err := back.VerifySum(); err != nil {
		t.Fatalf("seal broken by JSON round trip: %v", err)
	}
}

// TestCoordinatorIntegrityRequeuesCorruptPayload flips one bit in the first
// shard response on the wire; the coordinator must reject it (checksum or
// decode failure), requeue, and still merge byte-identically.
func TestCoordinatorIntegrityRequeuesCorruptPayload(t *testing.T) {
	g := testGrid(KindCurve)
	want, err := RunLocal(nil, g)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := chaos.Parse("shard.payload=bitflip#1", 42)
	if err != nil {
		t.Fatal(err)
	}
	chaos.Enable(plan)
	defer chaos.Disable()

	w1, err := StartStubWorker("w1", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w1.Close()
	w2, err := StartStubWorker("w2", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	co, err := New([]string{w1.URL(), w2.URL()}, Options{Sleep: instant})
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := co.Run(nil, g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Events()) == 0 {
		t.Fatal("bit flip never fired — test exercised nothing")
	}
	if stats.Requeues < 1 {
		t.Fatalf("corrupted payload was not requeued: %+v", stats)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("merged after payload corruption != local")
	}
}

// TestJournalResumeSkipsDamagedLines covers the resume trust boundary: a
// journal holding one good line, one line whose block falls outside the
// grid's axis, one whose payload no longer matches its seal, and one for a
// different grid. Only the good line resumes; the two damaged ones are
// counted and surfaced as journal-skip events; the foreign one is silently
// ignored.
func TestJournalResumeSkipsDamagedLines(t *testing.T) {
	g := testGrid(KindCurve)
	want, err := RunLocal(nil, g)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Plan(g, 7)
	if err != nil {
		t.Fatal(err)
	}
	good, err := ExecuteShard(nil, plan[0])
	if err != nil {
		t.Fatal(err)
	}
	// Sealed, then silently mutated: the post-hoc corruption a flipped disk
	// bit produces.
	damaged, err := ExecuteShard(nil, plan[1])
	if err != nil {
		t.Fatal(err)
	}
	damaged.Curve.RatioSum[0] *= 1.0000001
	// Key matches, bounds don't: a journal written under a different plan
	// width against a larger grid, or a spliced record.
	stale, err := ExecuteShard(nil, plan[2])
	if err != nil {
		t.Fatal(err)
	}
	stale.Hi = g.Span() + 5
	stale.Seal() // even a valid seal must not save out-of-plan bounds
	foreign := &Partial{Key: "not-this-grid", Lo: 0, Hi: 1}

	journal := filepath.Join(t.TempDir(), "j.jsonl")
	f, err := os.Create(journal)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []*Partial{good, damaged, stale, foreign} {
		b, err := json.Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		f.Write(append(b, '\n'))
	}
	f.Close()

	w, err := StartStubWorker("w", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	var skips atomic.Int32
	co, err := New([]string{w.URL()}, Options{
		JournalPath: journal,
		Resume:      true,
		Sleep:       instant,
		OnEvent: func(ev Event) {
			if ev.Kind == "journal-skip" {
				if ev.Err == nil {
					t.Error("journal-skip event without its cause")
				}
				skips.Add(1)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := co.Run(nil, g, 7)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Resumed != 1 {
		t.Fatalf("resumed %d shards, want exactly the 1 intact line", stats.Resumed)
	}
	if stats.JournalSkipped != 2 || skips.Load() != 2 {
		t.Fatalf("JournalSkipped = %d (events %d), want 2: damaged seal + stale bounds, foreign line silent",
			stats.JournalSkipped, skips.Load())
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("merge after damaged-journal resume != local")
	}
}

// TestHeartbeatEvictsDeadWorker: a worker answering 503 on /healthz is
// evicted by the synchronous opening probes and never receives a shard.
func TestHeartbeatEvictsDeadWorker(t *testing.T) {
	g := testGrid(KindCurve)
	want, err := RunLocal(nil, g)
	if err != nil {
		t.Fatal(err)
	}
	alive, err := StartStubWorker("alive", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer alive.Close()
	dead, err := StartStubWorker("dead", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer dead.Close()
	dead.SetHealthy(false)

	co, err := New([]string{alive.URL(), dead.URL()}, Options{
		Heartbeat:      5 * time.Millisecond,
		HeartbeatFails: 2,
		Sleep:          instant,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := co.Run(nil, g, 7)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Evictions < 1 {
		t.Fatalf("unhealthy worker not evicted: %+v", stats)
	}
	if stats.PerWorker[dead.URL()] != 0 {
		t.Fatalf("evicted worker completed %d shards", stats.PerWorker[dead.URL()])
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("merged with evicted worker != local")
	}
}

// TestHeartbeatReadmitsRecoveredWorker: an evicted worker whose /healthz
// recovers is re-admitted by a later probe round within the same run.
func TestHeartbeatReadmitsRecoveredWorker(t *testing.T) {
	g := testGrid(KindCurve)
	want, err := RunLocal(nil, g)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := StartStubWorker("slow", 20*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer slow.Close()
	flappy, err := StartStubWorker("flappy", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer flappy.Close()
	flappy.SetHealthy(false)

	var readmits atomic.Int32
	co, err := New([]string{slow.URL(), flappy.URL()}, Options{
		Heartbeat:      5 * time.Millisecond,
		HeartbeatFails: 2,
		Sleep:          instant,
		OnEvent: func(ev Event) {
			switch ev.Kind {
			case "evict":
				if ev.Worker == flappy.URL() {
					flappy.SetHealthy(true) // recover as soon as we're benched
				}
			case "readmit":
				readmits.Add(1)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := co.Run(nil, g, 7)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Evictions < 1 || stats.Readmissions < 1 || readmits.Load() < 1 {
		t.Fatalf("no evict/readmit cycle: %+v", stats)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("merged across a readmission != local")
	}
}

// TestSpeculationRescuesStraggler: one worker accepts shards and never
// answers. Without speculation the run would hang on its shard; with it, the
// shard races on the healthy worker, the straggler's eventual abort is
// dropped as stale, and the merge stays byte-identical.
func TestSpeculationRescuesStraggler(t *testing.T) {
	g := testGrid(KindCurve)
	want, err := RunLocal(nil, g)
	if err != nil {
		t.Fatal(err)
	}
	straggler, err := StartStubWorker("straggler", 0, func(ctx context.Context, spec ShardSpec) (*Partial, error) {
		<-ctx.Done() // hold the shard until the coordinator hangs up
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer straggler.Close()
	healthy, err := StartStubWorker("healthy", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer healthy.Close()

	co, err := New([]string{straggler.URL(), healthy.URL()}, Options{
		SpecFactor: 2,
		SpecMin:    30 * time.Millisecond,
		Sleep:      instant,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := co.Run(nil, g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Speculations < 1 {
		t.Fatalf("straggler never speculated: %+v", stats)
	}
	if stats.PerWorker[straggler.URL()] != 0 {
		t.Fatal("straggler somehow completed a shard")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("merged via speculation != local")
	}
}

// TestCoordinatorAuthToken: a token-gated worker rejects an unauthenticated
// coordinator permanently (fail-fast, no retry storm) and serves an
// authenticated one normally.
func TestCoordinatorAuthToken(t *testing.T) {
	g := testGrid(KindCurve)
	want, err := RunLocal(nil, g)
	if err != nil {
		t.Fatal(err)
	}
	w, err := StartStubWorkerOpts(StubOptions{ID: "w", Token: "s3cret"})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	noAuth, err := New([]string{w.URL()}, Options{Sleep: instant})
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := noAuth.Run(nil, g, 3)
	if err == nil {
		t.Fatal("unauthenticated run succeeded against a token-gated worker")
	}
	if stats.Requeues != 0 {
		t.Fatalf("401 consumed retry budget: %+v", stats)
	}

	wrong, err := New([]string{w.URL()}, Options{Sleep: instant, Token: "s3cret-but-wrong"})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := wrong.Run(nil, g, 3); err == nil {
		t.Fatal("wrong token accepted")
	}

	authed, err := New([]string{w.URL()}, Options{Sleep: instant, Token: "s3cret"})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := authed.Run(nil, g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("authenticated merge != local")
	}
}

// TestClusterChaosSoak is the in-process soak: three workers under a seeded
// multi-site fault schedule — injected 429s and 500s, a handler error, a
// corrupted payload, coordinator-side transport faults, a torn journal write
// — plus one worker killed outright mid-run, with heartbeats, speculation
// and a journal all on. The merged result must still be byte-identical to
// the single-process run. Runs under -race in the chaos-smoke target.
func TestClusterChaosSoak(t *testing.T) {
	g := testGrid(KindCurve)
	want, err := RunLocal(nil, g) // before chaos: the reference must be clean
	if err != nil {
		t.Fatal(err)
	}

	spec := "serve.handler.status=status:429#1;" +
		"serve.handler=error#2;" +
		"shard.payload=bitflip#1;" +
		"cluster.post=error@0.1#2;" +
		"journal.write=short#1"
	plan, err := chaos.Parse(spec, 1337)
	if err != nil {
		t.Fatal(err)
	}
	chaos.Enable(plan)
	defer chaos.Disable()

	var workers []*StubWorker
	var urls []string
	for _, id := range []string{"a", "b", "c"} {
		w, err := StartStubWorkerOpts(StubOptions{ID: id, Token: "soak"})
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
		workers = append(workers, w)
		urls = append(urls, w.URL())
	}

	journal := filepath.Join(t.TempDir(), "soak.jsonl")
	var killed atomic.Bool
	co, err := New(urls, Options{
		Token:          "soak",
		Retries:        10,
		JournalPath:    journal,
		Heartbeat:      10 * time.Millisecond,
		HeartbeatFails: 2,
		SpecFactor:     3,
		SpecMin:        50 * time.Millisecond,
		Sleep:          instant,
		OnEvent: func(ev Event) {
			if ev.Kind == "complete" && ev.Worker == urls[2] && killed.CompareAndSwap(false, true) {
				workers[2].Close()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := co.Run(nil, g, 7)
	if err != nil {
		t.Fatalf("soak run failed: %v (stats %+v)", err, stats)
	}
	if len(plan.Events()) == 0 {
		t.Fatal("no chaos fired — soak exercised nothing")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("soak merge != local after %d injected faults", len(plan.Events()))
	}
	t.Logf("soak survived %d injected faults: %+v", len(plan.Events()), stats)
}
