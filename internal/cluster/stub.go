package cluster

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"time"

	"mtreescale/internal/serve"
	"mtreescale/internal/valid"
)

// ShardHandler computes one shard on behalf of a StubWorker. A
// valid.ErrParam-wrapped error maps to 400, anything else to 500.
type ShardHandler func(ctx context.Context, spec ShardSpec) (*Partial, error)

// StubWorker is a minimal in-process shard worker speaking mtsimd's /shard
// protocol: the coordinator's test double, and — with a calibrated Latency
// and a replay handler — the load model behind mtctl's committed cluster
// benchmark, where it stands in for a remote worker's service time without
// burning CPU.
type StubWorker struct {
	srv *http.Server
	lis net.Listener
	url string
}

// StartStubWorker serves POST /shard on a loopback listener. id is echoed
// in the X-Mtsimd-Worker response header; latency is slept before each
// shard executes (0 = none); handler nil means ExecuteShard.
func StartStubWorker(id string, latency time.Duration, handler ShardHandler) (*StubWorker, error) {
	if handler == nil {
		handler = ExecuteShard
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+ShardPath, func(w http.ResponseWriter, r *http.Request) {
		var spec ShardSpec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			serve.WriteJSONError(w, http.StatusBadRequest, "malformed shard spec: "+err.Error(), 0)
			return
		}
		if err := spec.Validate(); err != nil {
			serve.WriteJSONError(w, http.StatusBadRequest, err.Error(), 0)
			return
		}
		if latency > 0 {
			t := time.NewTimer(latency)
			select {
			case <-r.Context().Done():
				t.Stop()
				return
			case <-t.C:
			}
		}
		p, err := handler(r.Context(), spec)
		if err != nil {
			status := http.StatusInternalServerError
			if valid.IsParam(err) {
				status = http.StatusBadRequest
			}
			serve.WriteJSONError(w, status, err.Error(), 0)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Mtsimd-Worker", id)
		json.NewEncoder(w).Encode(p)
	})
	sw := &StubWorker{
		srv: &http.Server{Handler: mux},
		lis: lis,
		url: "http://" + lis.Addr().String(),
	}
	go sw.srv.Serve(lis)
	return sw, nil
}

// URL is the worker's base URL, the form New takes.
func (w *StubWorker) URL() string { return w.url }

// Close stops the worker immediately — in-flight requests are severed, the
// behavior a coordinator must survive.
func (w *StubWorker) Close() {
	w.srv.Close()
}
