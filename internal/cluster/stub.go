package cluster

import (
	"context"
	"crypto/subtle"
	"encoding/json"
	"net"
	"net/http"
	"sync/atomic"
	"time"

	"mtreescale/internal/chaos"
	"mtreescale/internal/serve"
	"mtreescale/internal/valid"
)

// ShardHandler computes one shard on behalf of a StubWorker. A
// valid.ErrParam-wrapped error maps to 400, anything else to 500.
type ShardHandler func(ctx context.Context, spec ShardSpec) (*Partial, error)

// StubOptions configures a StubWorker beyond the classic (id, latency,
// handler) triple.
type StubOptions struct {
	// ID is echoed in the X-Mtsimd-Worker response header.
	ID string
	// Latency is slept before each shard executes (0 = none).
	Latency time.Duration
	// Handler computes shards; nil means ExecuteShard.
	Handler ShardHandler
	// Token, when set, makes POST /shard demand "Authorization: Bearer
	// <Token>" (constant-time compare), mirroring mtsimd -shard-token.
	// GET /healthz stays open — liveness must be probeable by design.
	Token string
	// TLSCert/TLSKey, when both set, serve the worker over TLS (the URL
	// becomes https), mirroring mtsimd -tls-cert/-tls-key. Coordinators
	// reach it with a client from NewTLSClient.
	TLSCert string
	TLSKey  string
}

// StubWorker is a minimal in-process shard worker speaking mtsimd's /shard
// and /healthz protocol: the coordinator's test double, and — with a
// calibrated Latency and a replay handler — the load model behind mtctl's
// committed cluster benchmark, where it stands in for a remote worker's
// service time without burning CPU.
type StubWorker struct {
	srv     *http.Server
	lis     net.Listener
	url     string
	healthy atomic.Bool
}

// StartStubWorker serves POST /shard on a loopback listener; see
// StartStubWorkerOpts for the full option set.
func StartStubWorker(id string, latency time.Duration, handler ShardHandler) (*StubWorker, error) {
	return StartStubWorkerOpts(StubOptions{ID: id, Latency: latency, Handler: handler})
}

// StartStubWorkerOpts serves POST /shard and GET /healthz on a loopback
// listener. The shard route runs under the same chaos failpoints as mtsimd
// ("serve.handler", "serve.handler.status", "serve.response.trunc" via
// serve.ChaosFaults, plus "shard.payload" corrupting the response body), so
// coordinator chaos tests exercise the exact fault surface production
// workers have.
func StartStubWorkerOpts(opt StubOptions) (*StubWorker, error) {
	handler := opt.Handler
	if handler == nil {
		handler = ExecuteShard
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	sw := &StubWorker{
		lis: lis,
		url: "http://" + lis.Addr().String(),
	}
	sw.healthy.Store(true)

	mux := http.NewServeMux()
	mux.HandleFunc("GET "+HealthzPath, func(w http.ResponseWriter, r *http.Request) {
		if !sw.healthy.Load() {
			serve.WriteJSONError(w, http.StatusServiceUnavailable, "stub worker marked unhealthy", 0)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"ok":true}` + "\n"))
	})
	shard := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if opt.Token != "" {
			want := "Bearer " + opt.Token
			got := r.Header.Get("Authorization")
			if subtle.ConstantTimeCompare([]byte(got), []byte(want)) != 1 {
				w.Header().Set("WWW-Authenticate", `Bearer realm="mtsimd"`)
				serve.WriteJSONError(w, http.StatusUnauthorized, "missing or invalid bearer token", 0)
				return
			}
		}
		var spec ShardSpec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			serve.WriteJSONError(w, http.StatusBadRequest, "malformed shard spec: "+err.Error(), 0)
			return
		}
		if err := spec.Validate(); err != nil {
			serve.WriteJSONError(w, http.StatusBadRequest, err.Error(), 0)
			return
		}
		if opt.Latency > 0 {
			t := time.NewTimer(opt.Latency)
			select {
			case <-r.Context().Done():
				t.Stop()
				return
			case <-t.C:
			}
		}
		p, err := handler(r.Context(), spec)
		if err != nil {
			status := http.StatusInternalServerError
			if valid.IsParam(err) {
				status = http.StatusBadRequest
			}
			serve.WriteJSONError(w, status, err.Error(), 0)
			return
		}
		body, err := json.Marshal(p)
		if err != nil {
			serve.WriteJSONError(w, http.StatusInternalServerError, err.Error(), 0)
			return
		}
		body = append(body, '\n')
		// Failpoint "shard.payload": corrupt the result on the wire (bitflip)
		// or tear it (short) — the coordinator's checksum/decode layer must
		// catch either and requeue.
		body, err = chaos.Write("shard.payload", body)
		if err != nil {
			serve.WriteJSONError(w, http.StatusInternalServerError, err.Error(), 0)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Mtsimd-Worker", opt.ID)
		w.Write(body)
	})
	mux.Handle("POST "+ShardPath, serve.ChaosFaults(shard))
	sw.srv = &http.Server{Handler: mux}
	if opt.TLSCert != "" && opt.TLSKey != "" {
		sw.url = "https://" + lis.Addr().String()
		go sw.srv.ServeTLS(lis, opt.TLSCert, opt.TLSKey)
	} else {
		go sw.srv.Serve(lis)
	}
	return sw, nil
}

// URL is the worker's base URL, the form New takes.
func (w *StubWorker) URL() string { return w.url }

// SetHealthy flips the /healthz verdict, letting tests script eviction and
// re-admission without killing the listener.
func (w *StubWorker) SetHealthy(ok bool) { w.healthy.Store(ok) }

// Close stops the worker immediately — in-flight requests are severed, the
// behavior a coordinator must survive.
func (w *StubWorker) Close() {
	w.srv.Close()
}
