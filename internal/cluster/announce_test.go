package cluster

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"
)

func TestAnnounceOnce(t *testing.T) {
	reg := NewRegistry(time.Minute, nil)
	srv := httptest.NewServer(reg.Handler("tok"))
	defer srv.Close()

	joined, err := AnnounceOnce(context.Background(), nil, srv.URL, "http://w1:1", "tok")
	if err != nil || !joined {
		t.Fatalf("first announce: joined=%v err=%v", joined, err)
	}
	joined, err = AnnounceOnce(context.Background(), nil, srv.URL, "http://w1:1", "tok")
	if err != nil || joined {
		t.Fatalf("renewal announce: joined=%v err=%v", joined, err)
	}
	if _, err := AnnounceOnce(context.Background(), nil, srv.URL, "http://w2:1", "wrong"); err == nil {
		t.Fatal("announce with wrong token accepted")
	}
	if got := reg.Members(); len(got) != 1 || got[0] != "http://w1:1" {
		t.Fatalf("members = %v", got)
	}
}

func TestAnnounceLoopKeepsLeaseAlive(t *testing.T) {
	reg := NewRegistry(50*time.Millisecond, nil)
	srv := httptest.NewServer(reg.Handler(""))
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		AnnounceLoop(ctx, nil, srv.URL, "http://w1:1", "", 10*time.Millisecond, nil)
	}()

	deadline := time.Now().Add(2 * time.Second)
	for len(reg.Members()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never joined")
		}
		time.Sleep(time.Millisecond)
	}
	// Across several lease lifetimes the loop's renewals must keep the
	// worker in membership.
	for i := 0; i < 5; i++ {
		time.Sleep(40 * time.Millisecond)
		reg.Sweep()
		if !reg.Active("http://w1:1") {
			t.Fatalf("lease lapsed under an active announce loop (round %d)", i)
		}
	}
	cancel()
	<-done
	// With the loop stopped, the lease ages out.
	time.Sleep(60 * time.Millisecond)
	if gone := reg.Sweep(); len(gone) != 1 {
		t.Fatalf("sweep after loop stop retired %v", gone)
	}
}
