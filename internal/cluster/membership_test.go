package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mtreescale/internal/atomicio"
	"mtreescale/internal/chaos"
)

// TestMembershipJoinMidRun: a run starts with one static worker; a second
// announces itself mid-run, is admitted, and carries real shards. The merge
// must not care when the fleet grew.
func TestMembershipJoinMidRun(t *testing.T) {
	g := testGrid(KindCurve)
	want, err := RunLocal(nil, g)
	if err != nil {
		t.Fatal(err)
	}
	w1, err := StartStubWorker("w1", 15*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w1.Close()
	w2, err := StartStubWorker("w2", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()

	reg := NewRegistry(time.Minute, nil)
	var joinOnce sync.Once
	co, err := New([]string{w1.URL()}, Options{
		Registry: reg,
		Sleep:    instant,
		OnEvent: func(ev Event) {
			if ev.Kind == "complete" {
				joinOnce.Do(func() {
					if _, err := reg.Announce(w2.URL()); err != nil {
						t.Error(err)
					}
				})
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := co.Run(nil, g, 7)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Joins < 1 {
		t.Fatalf("mid-run announcement not counted as a join: %+v", stats)
	}
	if stats.PerWorker[w2.URL()] == 0 {
		t.Fatalf("joined worker completed no shards: %v", stats.PerWorker)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("merged across a mid-run join != local")
	}
}

// TestMembershipLeaseExpiryRequeues: a dynamic worker accepts a shard, goes
// silent, and its lease expires. Retirement must cancel the in-flight post
// and requeue the shard without a quarantine strike, and the run must
// complete on the survivor with a byte-identical merge.
func TestMembershipLeaseExpiryRequeues(t *testing.T) {
	g := testGrid(KindCurve)
	want, err := RunLocal(nil, g)
	if err != nil {
		t.Fatal(err)
	}
	keeper, err := StartStubWorker("keeper", 5*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer keeper.Close()

	// The zombie accepts a shard, reports it took one, then holds it
	// forever: only its retirement can hand the shard back.
	var zombie *StubWorker
	tookShard := make(chan struct{})
	var tookOnce sync.Once
	zombie, err = StartStubWorker("zombie", 0, func(ctx context.Context, spec ShardSpec) (*Partial, error) {
		tookOnce.Do(func() { close(tookShard) })
		<-ctx.Done()
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer zombie.Close()

	reg := NewRegistry(50*time.Millisecond, nil)
	if _, err := reg.Announce(zombie.URL()); err != nil {
		t.Fatal(err)
	}
	co, err := New([]string{keeper.URL()}, Options{
		Registry:       reg,
		Heartbeat:      5 * time.Millisecond,
		HeartbeatFails: 2,
		Sleep:          instant,
	})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		<-tookShard
		zombie.SetHealthy(false) // probes now fail; the lease ages out
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	got, stats, err := co.Run(ctx, g, 7)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Leaves < 1 {
		t.Fatalf("silent worker never retired: %+v", stats)
	}
	if stats.Requeues < 1 {
		t.Fatalf("retirement did not requeue the held shard: %+v", stats)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("merged across a retirement != local")
	}
}

// newSlowHealthzServer serves a real /shard but answers /healthz only
// after delay — the kind of worker HeartbeatTimeout exists to classify.
func newSlowHealthzServer(t *testing.T, delay time.Duration) string {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET "+HealthzPath, func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-time.After(delay):
		case <-r.Context().Done():
			return
		}
		w.Write([]byte(`{"ok":true}` + "\n"))
	})
	mux.HandleFunc("POST "+ShardPath, func(w http.ResponseWriter, r *http.Request) {
		var spec ShardSpec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		p, err := ExecuteShard(r.Context(), spec)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		json.NewEncoder(w).Encode(p)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv.URL
}

// TestMembershipHeartbeatTimeout: a worker whose /healthz answers slowly is
// evicted under a short HeartbeatTimeout and kept under a generous one —
// the probe deadline is policy, not a constant.
func TestMembershipHeartbeatTimeout(t *testing.T) {
	g := testGrid(KindCurve)
	want, err := RunLocal(nil, g)
	if err != nil {
		t.Fatal(err)
	}
	// A stub whose healthz sleeps 60ms before answering 200.
	slow := newSlowHealthzServer(t, 60*time.Millisecond)
	fast, err := StartStubWorker("fast", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer fast.Close()

	run := func(timeout time.Duration) *Stats {
		co, err := New([]string{slow, fast.URL()}, Options{
			Heartbeat:        5 * time.Millisecond,
			HeartbeatFails:   1,
			HeartbeatTimeout: timeout,
			Sleep:            instant,
		})
		if err != nil {
			t.Fatal(err)
		}
		got, stats, err := co.Run(nil, g, 7)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatal("merged != local")
		}
		return stats
	}

	impatient := run(25 * time.Millisecond)
	if impatient.Evictions < 1 || impatient.PerWorker[slow] != 0 {
		t.Fatalf("slow-healthz worker not evicted under a 25ms probe deadline: %+v", impatient)
	}
	patient := run(2 * time.Second)
	if patient.Evictions != 0 {
		t.Fatalf("slow-healthz worker evicted under a 2s probe deadline: %+v", patient)
	}
}

// TestMembershipSpeculationSkipsEvicted is the regression test for
// speculative re-execution against a dead fleet: with the only alternative
// worker evicted, the speculator must hold the shard's single backup copy
// (not burn it against an evicted target), then spend it when the worker is
// readmitted. Before the fix the budget was consumed while skipping, so the
// straggler's shard could never be rescued and the run hung.
func TestMembershipSpeculationSkipsEvicted(t *testing.T) {
	g := testGrid(KindCurve)
	want, err := RunLocal(nil, g)
	if err != nil {
		t.Fatal(err)
	}
	straggler, err := StartStubWorker("straggler", 0, func(ctx context.Context, spec ShardSpec) (*Partial, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer straggler.Close()
	alt, err := StartStubWorker("alt", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer alt.Close()
	alt.SetHealthy(false) // evicted by the opening probe round

	var evicted sync.Once
	co, err := New([]string{straggler.URL(), alt.URL()}, Options{
		Heartbeat:      5 * time.Millisecond,
		HeartbeatFails: 1,
		SpecFactor:     2,
		SpecMin:        20 * time.Millisecond,
		Sleep:          instant,
		OnEvent: func(ev Event) {
			if ev.Kind == "evict" && ev.Worker == alt.URL() {
				evicted.Do(func() {
					// Recover only after the speculator has had time to
					// consider (and correctly skip) the alternative-less
					// straggler.
					time.AfterFunc(60*time.Millisecond, func() { alt.SetHealthy(true) })
				})
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	got, stats, err := co.Run(ctx, g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Evictions < 1 || stats.Readmissions < 1 {
		t.Fatalf("no evict/readmit cycle: %+v", stats)
	}
	if stats.Speculations < 1 {
		t.Fatalf("straggler never rescued: %+v", stats)
	}
	if stats.PerWorker[straggler.URL()] != 0 {
		t.Fatal("straggler somehow completed a shard")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("merged via deferred speculation != local")
	}
}

// TestFenceTwoCoordinators is the split-brain proof: coordinator A stalls
// mid-run (its only worker holds every shard), replacement coordinator B
// resumes the same journal and finishes the run under a higher epoch, and
// when A's worker finally answers, A's journal append is fenced and A
// aborts — its late result never reaches the journal or a merge.
func TestFenceTwoCoordinators(t *testing.T) {
	g := testGrid(KindCurve)
	want, err := RunLocal(nil, g)
	if err != nil {
		t.Fatal(err)
	}
	journal := filepath.Join(t.TempDir(), "checkpoint.jsonl")

	gate := make(chan struct{})
	blocked, err := StartStubWorker("blocked", 0, func(ctx context.Context, spec ShardSpec) (*Partial, error) {
		select {
		case <-gate:
			return ExecuteShard(ctx, spec)
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer blocked.Close()

	coA, err := New([]string{blocked.URL()}, Options{JournalPath: journal, Owner: "coord-a", Sleep: instant})
	if err != nil {
		t.Fatal(err)
	}
	aErr := make(chan error, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	go func() {
		_, _, err := coA.Run(ctx, g, 4)
		aErr <- err
	}()

	// Wait until A has claimed its epoch (the fence record is fsynced
	// before any dispatch).
	waitForJournal(t, journal, `"fence_epoch":1`)

	healthy, err := StartStubWorker("healthy", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer healthy.Close()
	coB, err := New([]string{healthy.URL()}, Options{JournalPath: journal, Resume: true, Owner: "coord-b", Sleep: instant})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := coB.Run(ctx, g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("replacement coordinator's merge != local")
	}

	// Unblock A's worker: A's next journal append must observe B's fence
	// and abort the whole run.
	close(gate)
	select {
	case err := <-aErr:
		if !errors.Is(err, atomicio.ErrFenced) {
			t.Fatalf("stale coordinator died with %v, want ErrFenced", err)
		}
	case <-ctx.Done():
		t.Fatal("stale coordinator did not abort after takeover")
	}

	// The journal holds B's work exclusively: every shard line carries
	// epoch 2, and A's late partial never landed.
	data, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var probe struct {
			FenceEpoch int64  `json:"fence_epoch"`
			Epoch      int64  `json:"epoch"`
			Key        string `json:"key"`
		}
		if err := json.Unmarshal([]byte(line), &probe); err != nil {
			t.Fatalf("unparseable journal line %q: %v", line, err)
		}
		if probe.FenceEpoch == 0 && probe.Epoch != 2 {
			t.Fatalf("journal holds a shard line from epoch %d: %q", probe.Epoch, line)
		}
	}

	// A third resume replays B's journal in full: nothing recomputes.
	coC, err := New([]string{healthy.URL()}, Options{JournalPath: journal, Resume: true, Owner: "coord-c", Sleep: instant})
	if err != nil {
		t.Fatal(err)
	}
	got2, stats, err := coC.Run(ctx, g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Resumed != stats.Planned {
		t.Fatalf("post-takeover resume recomputed shards: %+v", stats)
	}
	if !reflect.DeepEqual(got2, want) {
		t.Fatal("post-takeover resume merge != local")
	}
}

// TestFenceResumeSkipsStaleEpochLines: a journal holding a shard line
// stamped with an epoch below the highest fence above it (the artifact a
// fenced-but-racing writer could have torn in) resumes only the legitimate
// line; the stale one is rejected with a journal-skip and recomputed.
func TestFenceResumeSkipsStaleEpochLines(t *testing.T) {
	g := testGrid(KindCurve)
	want, err := RunLocal(nil, g)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Plan(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	p0, err := ExecuteShard(nil, plan[0])
	if err != nil {
		t.Fatal(err)
	}
	p1, err := ExecuteShard(nil, plan[1])
	if err != nil {
		t.Fatal(err)
	}

	journal := filepath.Join(t.TempDir(), "checkpoint.jsonl")
	j1, _, err := atomicio.OpenJournalFenced(journal, false, "epoch-1")
	if err != nil {
		t.Fatal(err)
	}
	j1.Append("shard-ok", journalLine{Epoch: 1, Partial: p0})
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}
	j2, _, err := atomicio.OpenJournalFenced(journal, true, "epoch-2")
	if err != nil {
		t.Fatal(err)
	}
	// Epoch 1 below the epoch-2 fence: a stale writer's line.
	j2.Append("shard-stale", journalLine{Epoch: 1, Partial: p1})
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}

	w, err := StartStubWorker("w", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	var skips atomic.Int32
	co, err := New([]string{w.URL()}, Options{
		JournalPath: journal,
		Resume:      true,
		Sleep:       instant,
		OnEvent: func(ev Event) {
			if ev.Kind == "journal-skip" {
				skips.Add(1)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := co.Run(nil, g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Resumed != 1 {
		t.Fatalf("resumed %d shards, want exactly the epoch-1-above-fence line", stats.Resumed)
	}
	if stats.JournalSkipped != 1 || skips.Load() != 1 {
		t.Fatalf("stale-epoch line not rejected: skipped=%d events=%d", stats.JournalSkipped, skips.Load())
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("merge after stale-epoch resume != local")
	}
}

// TestRegistryChaosReplay: the registry failpoints draw from the same
// seeded per-site streams as every other chaos site — one seed, one fault
// schedule, replayable.
func TestRegistryChaosReplay(t *testing.T) {
	record := func(seed int64) []bool {
		plan, err := chaos.Parse("registry.lease=error@0.4", seed)
		if err != nil {
			t.Fatal(err)
		}
		chaos.Enable(plan)
		defer chaos.Disable()
		reg := NewRegistry(time.Minute, nil)
		if _, err := reg.Announce("http://w:1"); err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 64)
		for i := range out {
			out[i] = reg.Renew("http://w:1") != nil
		}
		return out
	}
	a, b, c := record(7), record(7), record(8)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different lease-failure schedules")
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical lease-failure schedules")
	}
}

// TestMembershipSoak is the end-to-end acceptance scenario: a journaled run
// is killed mid-flight; a replacement coordinator resumes it under a higher
// epoch; a third worker joins mid-run by announcement; a zombie worker goes
// silent holding a shard and is retired by lease expiry; and the final
// merge is byte-identical to the single-process run.
func TestMembershipSoak(t *testing.T) {
	g := testGrid(KindCurve)
	want, err := RunLocal(nil, g)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	journal := filepath.Join(dir, "checkpoint.jsonl")

	w1, err := StartStubWorker("w1", 10*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w1.Close()

	// Phase 1: the doomed coordinator completes a couple of shards, then
	// "crashes" (context cancelled).
	ctx1, cancel1 := context.WithCancel(context.Background())
	var completes atomic.Int32
	co1, err := New([]string{w1.URL()}, Options{
		JournalPath: journal,
		Owner:       "doomed",
		Sleep:       instant,
		OnEvent: func(ev Event) {
			if ev.Kind == "complete" && completes.Add(1) == 2 {
				cancel1()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := co1.Run(ctx1, g, 7); err == nil {
		t.Fatal("phase-1 coordinator survived its own crash")
	}
	cancel1()

	// Phase 2: the replacement resumes under epoch 2 with a live fleet —
	// w1 static, a zombie dynamic member that goes silent holding a shard,
	// and w3 joining by announcement mid-run.
	tookShard := make(chan struct{})
	var tookOnce sync.Once
	var zombie *StubWorker
	zombie, err = StartStubWorker("zombie", 0, func(ctx context.Context, spec ShardSpec) (*Partial, error) {
		tookOnce.Do(func() { close(tookShard) })
		<-ctx.Done()
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer zombie.Close()
	w3, err := StartStubWorker("w3", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w3.Close()

	reg := NewRegistry(50*time.Millisecond, nil)
	if _, err := reg.Announce(zombie.URL()); err != nil {
		t.Fatal(err)
	}
	go func() {
		<-tookShard
		zombie.SetHealthy(false)
	}()
	var joinOnce sync.Once
	co2, err := New([]string{w1.URL()}, Options{
		Registry:       reg,
		JournalPath:    journal,
		Resume:         true,
		Owner:          "replacement",
		Heartbeat:      5 * time.Millisecond,
		HeartbeatFails: 2,
		Sleep:          instant,
		OnEvent: func(ev Event) {
			if ev.Kind == "complete" {
				joinOnce.Do(func() {
					if _, err := reg.Announce(w3.URL()); err != nil {
						t.Error(err)
					}
				})
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	got, stats, err := co2.Run(ctx, g, 7)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Resumed < 1 {
		t.Fatalf("replacement resumed nothing: %+v", stats)
	}
	if stats.Joins < 1 {
		t.Fatalf("mid-run join not observed: %+v", stats)
	}
	if stats.Leaves < 1 {
		t.Fatalf("zombie never retired: %+v", stats)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("soak merge != local")
	}

	// The journal shows both coordinator generations.
	data, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	for _, fence := range []string{`"fence_epoch":1`, `"fence_epoch":2`} {
		if !strings.Contains(string(data), fence) {
			t.Fatalf("journal missing %s", fence)
		}
	}
}

// waitForJournal polls path until it contains needle.
func waitForJournal(t *testing.T, path, needle string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if data, err := os.ReadFile(path); err == nil && strings.Contains(string(data), needle) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("journal never contained %q", needle)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
