package cluster

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"mtreescale/internal/chaos"
)

func TestRegistryLeaseLifecycle(t *testing.T) {
	clk := time.Unix(1000, 0)
	var mu sync.Mutex
	r := NewRegistry(10*time.Second, []string{"http://static:1"})
	r.SetClock(func() time.Time { mu.Lock(); defer mu.Unlock(); return clk })
	advance := func(d time.Duration) { mu.Lock(); clk = clk.Add(d); mu.Unlock() }

	var events []MemberEvent
	defer r.Watch(func(ev MemberEvent) { mu.Lock(); events = append(events, ev); mu.Unlock() })()

	joined, err := r.Announce("http://dyn:2")
	if err != nil || !joined {
		t.Fatalf("Announce = %v, %v; want join", joined, err)
	}
	if joined, _ := r.Announce("http://dyn:2"); joined {
		t.Fatal("re-announcement reported a second join")
	}
	if got := r.Members(); !reflect.DeepEqual(got, []string{"http://dyn:2", "http://static:1"}) {
		t.Fatalf("Members = %v", got)
	}

	// Renewal keeps the lease alive across what would otherwise expire it.
	advance(8 * time.Second)
	if err := r.Renew("http://dyn:2"); err != nil {
		t.Fatal(err)
	}
	advance(8 * time.Second)
	if gone := r.Sweep(); len(gone) != 0 {
		t.Fatalf("swept %v before lease expiry", gone)
	}
	if !r.Active("http://dyn:2") {
		t.Fatal("renewed member inactive")
	}

	// Unrenewed, the lease ages out; the static member stays forever.
	advance(11 * time.Second)
	if !r.Active("http://static:1") {
		t.Fatal("static member expired")
	}
	if r.Active("http://dyn:2") {
		t.Fatal("expired member still active before sweep")
	}
	if gone := r.Sweep(); !reflect.DeepEqual(gone, []string{"http://dyn:2"}) {
		t.Fatalf("Sweep = %v", gone)
	}
	if got := r.Members(); !reflect.DeepEqual(got, []string{"http://static:1"}) {
		t.Fatalf("Members after sweep = %v", got)
	}

	// Re-announcement after retirement is a fresh join.
	if joined, _ := r.Announce("http://dyn:2"); !joined {
		t.Fatal("post-retirement announcement not a join")
	}

	mu.Lock()
	defer mu.Unlock()
	want := []MemberEvent{
		{Kind: "join", Worker: "http://dyn:2"},
		{Kind: "leave", Worker: "http://dyn:2"},
		{Kind: "join", Worker: "http://dyn:2"},
	}
	if !reflect.DeepEqual(events, want) {
		t.Fatalf("events = %v, want %v", events, want)
	}
}

func TestRegistryRejectsBadURL(t *testing.T) {
	r := NewRegistry(time.Second, nil)
	for _, bad := range []string{"", "not a url", "ftp://x", "http://"} {
		if _, err := r.Announce(bad); err == nil {
			t.Fatalf("Announce(%q) accepted", bad)
		}
	}
}

func TestRegistryHandlerAnnounces(t *testing.T) {
	r := NewRegistry(time.Second, nil)
	srv := httptest.NewServer(r.Handler("secret"))
	defer srv.Close()

	post := func(body, token string) int {
		req, _ := http.NewRequest(http.MethodPost, srv.URL+RegisterPath, bytes.NewReader([]byte(body)))
		if token != "" {
			req.Header.Set("Authorization", "Bearer "+token)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if code := post(`{"url":"http://w:1"}`, ""); code != http.StatusUnauthorized {
		t.Fatalf("tokenless register = %d, want 401", code)
	}
	if code := post(`{"url":"http://w:1"}`, "wrong"); code != http.StatusUnauthorized {
		t.Fatalf("wrong-token register = %d, want 401", code)
	}
	if code := post(`{"url":"http://w:1"}`, "secret"); code != http.StatusOK {
		t.Fatalf("register = %d, want 200", code)
	}
	if code := post(`{"url":"garbage"}`, "secret"); code != http.StatusBadRequest {
		t.Fatalf("bad-URL register = %d, want 400", code)
	}
	if got := r.Members(); !reflect.DeepEqual(got, []string{"http://w:1"}) {
		t.Fatalf("Members = %v", got)
	}
}

func TestRegistryAnnounceFailpoint(t *testing.T) {
	plan, err := chaos.Parse("registry.announce=error#1", 3)
	if err != nil {
		t.Fatal(err)
	}
	chaos.Enable(plan)
	defer chaos.Disable()

	r := NewRegistry(time.Second, nil)
	if _, err := r.Announce("http://w:1"); !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("announce under failpoint = %v, want injected", err)
	}
	if len(r.Members()) != 0 {
		t.Fatal("failed announcement admitted the worker")
	}
	if _, err := r.Announce("http://w:1"); err != nil {
		t.Fatalf("announce after failpoint limit: %v", err)
	}
}

func TestRegistryLeaseFailpointAgesOutWorker(t *testing.T) {
	plan, err := chaos.Parse("registry.lease=error", 3)
	if err != nil {
		t.Fatal(err)
	}
	chaos.Enable(plan)
	defer chaos.Disable()

	clk := time.Unix(1000, 0)
	var mu sync.Mutex
	r := NewRegistry(5*time.Second, nil)
	r.SetClock(func() time.Time { mu.Lock(); defer mu.Unlock(); return clk })
	if _, err := r.Announce("http://w:1"); err != nil {
		t.Fatal(err)
	}
	// Every renewal is dropped by the failpoint; the lease must age out.
	for i := 0; i < 3; i++ {
		if err := r.Renew("http://w:1"); !errors.Is(err, chaos.ErrInjected) {
			t.Fatalf("renewal %d = %v, want injected", i, err)
		}
		mu.Lock()
		clk = clk.Add(2 * time.Second)
		mu.Unlock()
	}
	if gone := r.Sweep(); !reflect.DeepEqual(gone, []string{"http://w:1"}) {
		t.Fatalf("Sweep = %v, want the unrenewed worker retired", gone)
	}
}

func TestReadDiscoverFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "workers.txt")
	content := "# fleet\nhttp://a:1\n\n  http://b:2  \n# trailing\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDiscoverFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []string{"http://a:1", "http://b:2"}) {
		t.Fatalf("ReadDiscoverFile = %v", got)
	}
}

func TestPollDiscoverFileJoinsAdditions(t *testing.T) {
	path := filepath.Join(t.TempDir(), "workers.txt")
	if err := os.WriteFile(path, []byte("http://a:1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	r := NewRegistry(time.Minute, nil)
	joined := make(chan string, 8)
	defer r.Watch(func(ev MemberEvent) {
		if ev.Kind == "join" {
			joined <- ev.Worker
		}
	})()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		r.PollDiscoverFile(ctx, path, time.Millisecond, nil)
	}()

	waitJoin := func(want string) {
		t.Helper()
		select {
		case w := <-joined:
			if w != want {
				t.Fatalf("join %q, want %q", w, want)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("no join for %q", want)
		}
	}
	waitJoin("http://a:1")
	if err := os.WriteFile(path, []byte("http://a:1\nhttp://b:2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	waitJoin("http://b:2")
	cancel()
	<-done
}
