package cluster

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// HealthzPath is the worker liveness endpoint a coordinator heartbeats.
const HealthzPath = "/healthz"

// healthTracker is the per-run record of which workers are currently
// evicted. Eviction is a coordinator-side verdict (HeartbeatFails
// consecutive probe failures), distinct from quarantine: quarantine backs a
// worker off after it damaged a shard, eviction parks it after it stopped
// answering at all — and unlike quarantine's timed backoff, eviction only
// lifts when a probe succeeds again.
type healthTracker struct {
	mu      sync.Mutex
	fails   map[string]int
	evicted map[string]bool
}

func newHealthTracker(workers []string) *healthTracker {
	return &healthTracker{
		fails:   make(map[string]int, len(workers)),
		evicted: make(map[string]bool, len(workers)),
	}
}

// allowed reports whether worker slots may dispatch to worker.
func (h *healthTracker) allowed(worker string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return !h.evicted[worker]
}

// observe folds one probe outcome in and reports the transition it caused:
// "evict" when the consecutive-failure budget just ran out, "readmit" when a
// success ended an eviction, "" otherwise.
func (h *healthTracker) observe(worker string, ok bool, failBudget int) string {
	h.mu.Lock()
	defer h.mu.Unlock()
	if ok {
		h.fails[worker] = 0
		if h.evicted[worker] {
			h.evicted[worker] = false
			return "readmit"
		}
		return ""
	}
	h.fails[worker]++
	if !h.evicted[worker] && h.fails[worker] >= failBudget {
		h.evicted[worker] = true
		return "evict"
	}
	return ""
}

// probe answers whether worker's GET /healthz succeeded. Any 2xx is healthy;
// refused connections, timeouts and non-2xx statuses are not. The probe
// carries the run's bearer token when one is configured, so an auth-fronted
// worker is not misread as dead.
func (c *Coordinator) probe(ctx context.Context, worker string) bool {
	// The answer deadline is fixed, not tied to the probe interval: a short
	// interval means frequent probes, not impatient ones.
	pctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, worker+HealthzPath, nil)
	if err != nil {
		return false
	}
	if c.opt.Token != "" {
		req.Header.Set("Authorization", "Bearer "+c.opt.Token)
	}
	resp, err := c.opt.Client.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode >= 200 && resp.StatusCode < 300
}

// probeRound probes every worker once and applies the transitions.
func (c *Coordinator) probeRound(ctx context.Context, st *runState) {
	for _, w := range c.workers {
		if ctx.Err() != nil {
			return
		}
		ok := c.probe(ctx, w)
		switch st.health.observe(w, ok, c.opt.HeartbeatFails) {
		case "evict":
			st.mu.Lock()
			st.stats.Evictions++
			st.mu.Unlock()
			c.emit(Event{Kind: "evict", Worker: w, Err: fmt.Errorf("cluster: %d consecutive heartbeat failures", c.opt.HeartbeatFails)})
		case "readmit":
			st.mu.Lock()
			st.stats.Readmissions++
			st.mu.Unlock()
			c.emit(Event{Kind: "readmit", Worker: w})
		}
	}
}

// heartbeatLoop re-probes the fleet every Heartbeat until the run ends. It
// sleeps on a real timer, never Options.Sleep: tests inject instant sleeps
// to skip shard backoffs, and an instant heartbeat interval would turn this
// loop into a hot spin against /healthz.
func (c *Coordinator) heartbeatLoop(ctx context.Context, st *runState) {
	for {
		if sleepCtx(ctx, c.opt.Heartbeat) != nil {
			return
		}
		select {
		case <-st.done:
			return
		default:
		}
		c.probeRound(ctx, st)
	}
}
