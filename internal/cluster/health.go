package cluster

import (
	"context"
	"fmt"
	"net/http"

	"mtreescale/internal/retry"
)

// HealthzPath is the worker liveness endpoint a coordinator heartbeats.
const HealthzPath = "/healthz"

// healthTracker is the per-run record of which workers are currently
// evicted, backed by a retry.Breaker in Hold mode: HeartbeatFails
// consecutive probe failures open a worker's circuit (eviction), and —
// unlike quarantine's timed backoff — only a successful probe closes it
// again (readmission). Eviction is distinct from both quarantine (the
// worker damaged a shard) and lease expiry (the worker stopped being a
// member at all): an evicted worker keeps its membership and its parked
// slots, ready to resume the moment it answers.
type healthTracker struct {
	br retry.Breaker
}

func newHealthTracker(failBudget int) *healthTracker {
	return &healthTracker{br: retry.Breaker{Threshold: failBudget, Hold: true}}
}

// allowed reports whether worker slots may dispatch to worker.
func (h *healthTracker) allowed(worker string) bool {
	return !h.br.Open(worker)
}

// observe folds one probe outcome in and reports the transition it caused:
// "evict" when the consecutive-failure budget just ran out, "readmit" when
// a success ended an eviction, "" otherwise.
func (h *healthTracker) observe(worker string, ok bool) string {
	if ok {
		if h.br.Success(worker) {
			return "readmit"
		}
		return ""
	}
	if h.br.Failure(worker) {
		return "evict"
	}
	return ""
}

// probe answers whether worker's GET /healthz succeeded. Any 2xx is healthy;
// refused connections, timeouts and non-2xx statuses are not. The probe
// carries the run's bearer token when one is configured, so an auth-fronted
// worker is not misread as dead.
func (c *Coordinator) probe(ctx context.Context, worker string) bool {
	// The answer deadline is HeartbeatTimeout, not the probe interval: a
	// short interval means frequent probes, not impatient ones.
	pctx, cancel := context.WithTimeout(ctx, c.opt.HeartbeatTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, worker+HealthzPath, nil)
	if err != nil {
		return false
	}
	if c.opt.Token != "" {
		req.Header.Set("Authorization", "Bearer "+c.opt.Token)
	}
	resp, err := c.opt.Client.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode >= 200 && resp.StatusCode < 300
}

// probeRound probes every current member once, renews the lease of each
// worker that answered, and applies the eviction/readmission transitions.
func (c *Coordinator) probeRound(ctx context.Context, st *runState) {
	for _, w := range c.reg.Members() {
		if ctx.Err() != nil {
			return
		}
		ok := c.probe(ctx, w)
		if ok {
			// A lost renewal (the registry.lease failpoint, in production a
			// dropped registrar write) leaves the lease aging toward expiry;
			// the next successful round renews it, so only a sustained loss
			// retires the worker.
			c.reg.Renew(w)
		}
		switch st.health.observe(w, ok) {
		case "evict":
			st.mu.Lock()
			st.stats.Evictions++
			st.mu.Unlock()
			c.emit(Event{Kind: "evict", Worker: w, Err: fmt.Errorf("cluster: %d consecutive heartbeat failures", c.opt.HeartbeatFails)})
		case "readmit":
			st.mu.Lock()
			st.stats.Readmissions++
			st.mu.Unlock()
			c.emit(Event{Kind: "readmit", Worker: w})
		}
	}
}

// heartbeatLoop re-probes the fleet every Heartbeat until the run ends,
// then sweeps expired leases so unresponsive dynamic workers are retired.
// It sleeps on a real timer, never Options.Sleep: tests inject instant
// sleeps to skip shard backoffs, and an instant heartbeat interval would
// turn this loop into a hot spin against /healthz.
func (c *Coordinator) heartbeatLoop(ctx context.Context, st *runState) {
	for {
		if sleepCtx(ctx, c.opt.Heartbeat) != nil {
			return
		}
		select {
		case <-st.done:
			return
		default:
		}
		c.probeRound(ctx, st)
		c.reg.Sweep()
	}
}
