package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"mtreescale/internal/atomicio"
	"mtreescale/internal/serve"
	"mtreescale/internal/valid"
)

// ShardPath is the worker endpoint a coordinator posts ShardSpecs to.
const ShardPath = "/shard"

// Event is one coordinator progress notification. Kind is one of
// "resume" (shard satisfied from the journal), "complete" (worker returned
// a partial), "backoff" (worker answered 429; the slot pauses RetryIn),
// "requeue" (worker failed; the shard goes back to the pool) and
// "quarantine" (a worker slot is skipping a quarantined worker).
type Event struct {
	Kind    string
	Worker  string
	Lo, Hi  int
	RetryIn time.Duration
	Err     error
}

// Stats summarizes one coordinator run for mtctl's timing report.
type Stats struct {
	// Planned is the number of shards the grid was cut into; Resumed of
	// those were satisfied from the journal without any dispatch.
	Planned int `json:"planned"`
	Resumed int `json:"resumed"`
	// Attempts counts shard POSTs, Backoffs429 those answered 429, and
	// Requeues those lost to worker failure and re-queued elsewhere.
	Attempts    int `json:"attempts"`
	Backoffs429 int `json:"backoffs_429"`
	Requeues    int `json:"requeues"`
	// PerWorker counts completed shards by worker URL.
	PerWorker map[string]int `json:"per_worker"`
}

// Options tunes a Coordinator. The zero value is usable: one in-flight
// shard per worker, three worker-failure retries per shard, no journal.
type Options struct {
	// Client posts shard requests; nil means a default client with no
	// overall timeout (shards are long; cancellation comes from ctx).
	Client *http.Client
	// Inflight is the per-worker concurrent shard cap (default 1): the
	// bounded fan-out that keeps a coordinator from flooding a worker's
	// admission queue.
	Inflight int
	// Retries is the per-shard worker-failure budget (default 3). 429
	// responses do not consume it — a saturated worker is backpressure,
	// not failure.
	Retries int
	// Backoff is the pause before a failed shard re-dispatches and the
	// fallback 429 backoff when a worker omits Retry-After (default 200ms).
	Backoff time.Duration
	// JournalPath, when set, appends every completed partial to an fsynced
	// JSONL journal; with Resume, partials already journaled for this grid
	// and shard plan are not recomputed.
	JournalPath string
	Resume      bool
	// Quarantine tracks failing workers with exponential backoff; nil
	// means a default (1s base, 30s cap). Worker URLs are the keys.
	Quarantine *serve.Quarantine
	// OnEvent observes progress; called from worker goroutines.
	OnEvent func(Event)
	// Sleep pauses a worker slot (backoff, quarantine wait); nil means a
	// ctx-aware timer sleep. Tests inject instant sleeps.
	Sleep func(ctx context.Context, d time.Duration) error
}

// Coordinator fans an experiment grid out over mtsimd workers and merges
// the partials deterministically: the merged result is byte-identical to a
// single-process run, whatever the worker count, scheduling, failures or
// restarts along the way.
type Coordinator struct {
	workers []string
	opt     Options
}

// New builds a Coordinator over the given worker base URLs
// (e.g. "http://host:8080").
func New(workers []string, opt Options) (*Coordinator, error) {
	if len(workers) == 0 {
		return nil, valid.Badf("cluster: no workers")
	}
	seen := map[string]bool{}
	for _, w := range workers {
		if w == "" {
			return nil, valid.Badf("cluster: empty worker URL")
		}
		if seen[w] {
			return nil, valid.Badf("cluster: duplicate worker %q", w)
		}
		seen[w] = true
	}
	if opt.Client == nil {
		opt.Client = &http.Client{}
	}
	if opt.Inflight < 1 {
		opt.Inflight = 1
	}
	if opt.Retries < 1 {
		opt.Retries = 3
	}
	if opt.Backoff <= 0 {
		opt.Backoff = 200 * time.Millisecond
	}
	if opt.Quarantine == nil {
		opt.Quarantine = serve.NewQuarantine(time.Second, 30*time.Second)
	}
	if opt.Sleep == nil {
		opt.Sleep = sleepCtx
	}
	return &Coordinator{workers: workers, opt: opt}, nil
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

func (c *Coordinator) emit(ev Event) {
	if c.opt.OnEvent != nil {
		c.opt.OnEvent(ev)
	}
}

// runState is the shared bookkeeping of one Run: which shards remain, how
// often each has failed, and the first fatal error.
type runState struct {
	mu        sync.Mutex
	remaining int
	failures  []int
	parts     []*Partial
	fatal     error
	stats     Stats
	done      chan struct{} // closed when remaining hits 0
	cancel    context.CancelFunc
}

func (st *runState) complete(idx int, p *Partial, worker string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.parts[idx] != nil {
		return // duplicate (e.g. a requeued shard that also succeeded)
	}
	st.parts[idx] = p
	if worker != "" {
		st.stats.PerWorker[worker]++
	}
	st.remaining--
	if st.remaining == 0 {
		close(st.done)
	}
}

func (st *runState) fail(err error) {
	st.mu.Lock()
	if st.fatal == nil {
		st.fatal = err
	}
	st.mu.Unlock()
	st.cancel()
}

// Run shards the grid into nShards blocks, executes them across the
// workers, and merges the partials. On return with a nil error the Merged
// result is byte-identical to RunLocal's for the same grid.
func (c *Coordinator) Run(ctx context.Context, g Grid, nShards int) (*Merged, *Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	plan, err := Plan(g, nShards)
	if err != nil {
		return nil, nil, err
	}
	st := &runState{
		remaining: len(plan),
		failures:  make([]int, len(plan)),
		parts:     make([]*Partial, len(plan)),
		done:      make(chan struct{}),
		stats:     Stats{Planned: len(plan), PerWorker: map[string]int{}},
	}

	// Resume: shards whose exact block is already journaled for this grid
	// need no dispatch. Blocks from a different plan width don't match and
	// are recomputed — identity is (grid key, lo, hi), nothing looser.
	if c.opt.JournalPath != "" && c.opt.Resume {
		byBlock := map[[2]int]*Partial{}
		if _, err := atomicio.ReadJournal(c.opt.JournalPath, func(line []byte) error {
			p, err := parseJournalPartial(line, g)
			if err != nil {
				return err
			}
			byBlock[[2]int{p.Lo, p.Hi}] = p
			return nil
		}); err != nil {
			return nil, nil, err
		}
		for i, spec := range plan {
			if p, ok := byBlock[[2]int{spec.Lo, spec.Hi}]; ok {
				st.parts[i] = p
				st.remaining--
				st.stats.Resumed++
				c.emit(Event{Kind: "resume", Lo: spec.Lo, Hi: spec.Hi})
			}
		}
	}

	var journal *atomicio.Journal
	if c.opt.JournalPath != "" {
		journal, err = atomicio.OpenJournal(c.opt.JournalPath, c.opt.Resume)
		if err != nil {
			return nil, nil, err
		}
		defer journal.Close()
	}

	if st.remaining > 0 {
		runCtx, cancel := context.WithCancel(ctx)
		st.cancel = cancel
		defer cancel()

		// The pool holds every undone shard index; capacity len(plan) means
		// a requeue can never block.
		pool := make(chan int, len(plan))
		for i := range plan {
			if st.parts[i] == nil {
				pool <- i
			}
		}

		var wg sync.WaitGroup
		for _, w := range c.workers {
			for s := 0; s < c.opt.Inflight; s++ {
				wg.Add(1)
				go func(worker string) {
					defer wg.Done()
					c.workerLoop(runCtx, worker, plan, pool, st, journal)
				}(w)
			}
		}
		wg.Wait()
	} else {
		close(st.done)
	}

	st.mu.Lock()
	fatal := st.fatal
	stats := st.stats
	parts := st.parts
	remaining := st.remaining
	st.mu.Unlock()
	if fatal != nil {
		return nil, &stats, fatal
	}
	if err := ctx.Err(); err != nil {
		return nil, &stats, err
	}
	if remaining > 0 {
		return nil, &stats, fmt.Errorf("cluster: %d shards incomplete", remaining)
	}
	if journal != nil {
		if err := journal.Close(); err != nil {
			return nil, &stats, err
		}
	}
	merged, err := Merge(g, parts)
	if err != nil {
		return nil, &stats, err
	}
	return merged, &stats, nil
}

// workerLoop is one in-flight slot of one worker: pull a shard, post it,
// and settle the outcome until the run completes or dies.
func (c *Coordinator) workerLoop(ctx context.Context, worker string, plan []ShardSpec, pool chan int, st *runState, journal *atomicio.Journal) {
	for {
		var idx int
		select {
		case <-ctx.Done():
			return
		case <-st.done:
			return
		case idx = <-pool:
		}
		spec := plan[idx]

		// A quarantined worker hands the shard back and pauses this slot so
		// healthy workers drain the pool meanwhile.
		if ok, retryIn := c.opt.Quarantine.Allowed(worker); !ok {
			pool <- idx
			c.emit(Event{Kind: "quarantine", Worker: worker, Lo: spec.Lo, Hi: spec.Hi, RetryIn: retryIn})
			if c.opt.Sleep(ctx, retryIn) != nil {
				return
			}
			continue
		}

		st.mu.Lock()
		st.stats.Attempts++
		st.mu.Unlock()

		p, retryAfter, err := c.postShard(ctx, worker, spec)
		switch {
		case err == nil:
			c.opt.Quarantine.Clear(worker)
			if journal != nil {
				journal.Append(fmt.Sprintf("shard[%d,%d)", spec.Lo, spec.Hi), p)
			}
			st.complete(idx, p, worker)
			c.emit(Event{Kind: "complete", Worker: worker, Lo: spec.Lo, Hi: spec.Hi})

		case errors.Is(err, errSaturated):
			// Backpressure, not failure: hold the shard, pause this slot for
			// the worker's advertised Retry-After, then hand the shard back
			// for whichever slot frees first.
			st.mu.Lock()
			st.stats.Backoffs429++
			st.mu.Unlock()
			c.emit(Event{Kind: "backoff", Worker: worker, Lo: spec.Lo, Hi: spec.Hi, RetryIn: retryAfter})
			if c.opt.Sleep(ctx, retryAfter) != nil {
				return
			}
			pool <- idx

		case valid.IsParam(err):
			// The grid itself is bad; no worker will ever accept it.
			st.fail(err)
			return

		default:
			c.opt.Quarantine.Report(worker, err)
			st.mu.Lock()
			st.failures[idx]++
			tries := st.failures[idx]
			st.stats.Requeues++
			st.mu.Unlock()
			if tries > c.opt.Retries {
				st.fail(fmt.Errorf("cluster: shard [%d, %d) failed %d times, last on %s: %w", spec.Lo, spec.Hi, tries, worker, err))
				return
			}
			pool <- idx
			c.emit(Event{Kind: "requeue", Worker: worker, Lo: spec.Lo, Hi: spec.Hi, Err: err})
			if c.opt.Sleep(ctx, c.opt.Backoff) != nil {
				return
			}
		}
	}
}

// errSaturated marks a 429 outcome inside postShard.
var errSaturated = errors.New("cluster: worker saturated")

// postShard posts one ShardSpec and decodes the worker's Partial. A 429
// returns errSaturated with the worker's Retry-After; a 4xx other than 429
// returns a valid.ErrParam-wrapped permanent error; everything else
// (transport errors, 5xx, undecodable bodies) is a retryable worker
// failure.
func (c *Coordinator) postShard(ctx context.Context, worker string, spec ShardSpec) (*Partial, time.Duration, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, 0, valid.Badf("cluster: encoding shard: %v", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, worker+ShardPath, bytes.NewReader(body))
	if err != nil {
		return nil, 0, valid.Badf("cluster: building request: %v", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.opt.Client.Do(req)
	if err != nil {
		return nil, 0, fmt.Errorf("cluster: %s: %w", worker, err)
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
	}()
	switch {
	case resp.StatusCode == http.StatusOK:
		var p Partial
		if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<30)).Decode(&p); err != nil {
			return nil, 0, fmt.Errorf("cluster: %s: decoding partial: %w", worker, err)
		}
		if p.Key != spec.Grid.Key() || p.Lo != spec.Lo || p.Hi != spec.Hi {
			return nil, 0, fmt.Errorf("cluster: %s: partial for wrong shard (got [%d, %d) key %.12s)", worker, p.Lo, p.Hi, p.Key)
		}
		return &p, 0, nil
	case resp.StatusCode == http.StatusTooManyRequests:
		retryIn := c.opt.Backoff
		if s := resp.Header.Get("Retry-After"); s != "" {
			if secs, err := strconv.Atoi(s); err == nil && secs > 0 {
				retryIn = time.Duration(secs) * time.Second
			}
		}
		return nil, retryIn, errSaturated
	case resp.StatusCode >= 400 && resp.StatusCode < 500:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, 0, valid.Badf("cluster: %s rejected shard [%d, %d): %s: %s", worker, spec.Lo, spec.Hi, resp.Status, bytes.TrimSpace(msg))
	default:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, 0, fmt.Errorf("cluster: %s: %s: %s", worker, resp.Status, bytes.TrimSpace(msg))
	}
}

// parseJournalPartial decodes one journal line and binds it to the grid:
// lines for other grids, torn trailing writes and payload-less records are
// rejected (the caller counts them as skips).
func parseJournalPartial(line []byte, g Grid) (*Partial, error) {
	var p Partial
	if len(line) == 0 {
		return nil, valid.Badf("cluster: empty journal line")
	}
	if err := json.Unmarshal(line, &p); err != nil {
		return nil, valid.Badf("cluster: malformed journal line: %v", err)
	}
	if p.Key != g.Key() {
		return nil, valid.Badf("cluster: journal line for another grid")
	}
	if err := validateBlockFor(g, &p); err != nil {
		return nil, err
	}
	return &p, nil
}

// validateBlockFor checks a partial's block and payload against the grid.
func validateBlockFor(g Grid, p *Partial) error {
	if p.Lo < 0 || p.Hi > g.Span() || p.Lo >= p.Hi {
		return valid.Badf("cluster: partial block [%d, %d) out of [0, %d)", p.Lo, p.Hi, g.Span())
	}
	var ok bool
	switch g.Kind {
	case KindCurve:
		ok = p.Curve != nil
	case KindShared:
		ok = p.Shared != nil
	case KindEnsemble:
		ok = p.Ensemble != nil
	}
	if !ok {
		return valid.Badf("cluster: partial [%d, %d) missing %s payload", p.Lo, p.Hi, g.Kind)
	}
	return nil
}
