package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"mtreescale/internal/atomicio"
	"mtreescale/internal/chaos"
	"mtreescale/internal/retry"
	"mtreescale/internal/serve"
	"mtreescale/internal/valid"
)

// ShardPath is the worker endpoint a coordinator posts ShardSpecs to.
const ShardPath = "/shard"

// Event is one coordinator progress notification. Kind is one of
// "resume" (shard satisfied from the journal), "complete" (worker returned
// a partial), "backoff" (worker answered 429; the slot pauses RetryIn),
// "requeue" (worker failed; the shard goes back to the pool),
// "quarantine" (a worker slot is skipping a quarantined worker),
// "evict" / "readmit" (heartbeat verdicts on a worker),
// "join" / "leave" (registry membership transitions: a worker announced
// itself or its lease expired),
// "speculate" (a straggling shard was re-queued to race its original
// dispatch) and "journal-skip" (a resume journal line carried this grid's
// key but failed validation — or was written by a fenced stale coordinator
// — and was discarded).
type Event struct {
	Kind    string
	Worker  string
	Lo, Hi  int
	RetryIn time.Duration
	Err     error
}

// Stats summarizes one coordinator run for mtctl's timing report.
type Stats struct {
	// Planned is the number of shards the grid was cut into; Resumed of
	// those were satisfied from the journal without any dispatch.
	Planned int `json:"planned"`
	Resumed int `json:"resumed"`
	// Attempts counts shard POSTs, Backoffs429 those answered 429, and
	// Requeues those lost to worker failure and re-queued elsewhere.
	Attempts    int `json:"attempts"`
	Backoffs429 int `json:"backoffs_429"`
	Requeues    int `json:"requeues"`
	// Evictions and Readmissions count heartbeat verdicts; Speculations
	// counts straggling shards raced on a second worker; StaleDropped counts
	// results that arrived after their shard was already complete (the
	// losing side of a speculation or requeue race).
	Evictions    int `json:"evictions,omitempty"`
	Readmissions int `json:"readmissions,omitempty"`
	Speculations int `json:"speculations,omitempty"`
	StaleDropped int `json:"stale_dropped,omitempty"`
	// Joins and Leaves count registry membership transitions observed
	// during the run: workers admitted (announcement or discovery) and
	// workers retired by lease expiry.
	Joins  int `json:"joins,omitempty"`
	Leaves int `json:"leaves,omitempty"`
	// JournalSkipped counts resume journal lines that carried this grid's
	// key but failed validation (stale block bounds, payload mismatch, bad
	// checksum) and were recomputed instead of trusted.
	JournalSkipped int `json:"journal_skipped,omitempty"`
	// PerWorker counts completed shards by worker URL.
	PerWorker map[string]int `json:"per_worker"`
}

// Options tunes a Coordinator. The zero value is usable: one in-flight
// shard per worker, three worker-failure retries per shard, no journal.
type Options struct {
	// Client posts shard requests; nil means a default client with no
	// overall timeout (shards are long; cancellation comes from ctx).
	Client *http.Client
	// Inflight is the per-worker concurrent shard cap (default 1): the
	// bounded fan-out that keeps a coordinator from flooding a worker's
	// admission queue.
	Inflight int
	// Retries is the per-shard worker-failure budget (default 3). 429
	// responses do not consume it — a saturated worker is backpressure,
	// not failure.
	Retries int
	// Backoff is the base pause before a failed shard re-dispatches and the
	// fallback 429 backoff when a worker omits Retry-After (default 200ms).
	// Per-shard requeue pauses grow exponentially from it with each
	// failure, capped at BackoffMax (default 10×Backoff), with
	// deterministic jitter drawn from BackoffSeed — the same seed paces a
	// replayed run's retries identically.
	Backoff     time.Duration
	BackoffMax  time.Duration
	BackoffSeed int64
	// JournalPath, when set, appends every completed partial to an fsynced
	// JSONL journal; with Resume, partials already journaled for this grid
	// and shard plan are not recomputed. The journal is epoch-fenced: each
	// Run claims the next coordinator epoch on open, stamps it into every
	// shard line, and aborts with atomicio.ErrFenced if a later epoch
	// (a replacement coordinator's -resume takeover) claims the file —
	// the stale side of a takeover can never double-merge.
	JournalPath string
	Resume      bool
	// Owner names this coordinator in the journal's fence records, for
	// operators reading a contested journal (default "coordinator").
	Owner string
	// Registry, when set, supplies dynamic membership: workers join by
	// announcement (POST /register or -discover polling) and leave by
	// lease expiry, with slots spawned and retired mid-run. Nil builds a
	// private static registry from the worker list given to New. Leases
	// are renewed by successful heartbeat probes, so dynamic membership
	// needs Heartbeat > 0 to retire silent workers.
	Registry *Registry
	// LeaseTTL sets the private registry's lease length when Registry is
	// nil (default DefaultLeaseTTL); ignored otherwise.
	LeaseTTL time.Duration
	// Quarantine tracks failing workers with exponential backoff; nil
	// means a default (1s base, 30s cap). Worker URLs are the keys.
	Quarantine *serve.Quarantine
	// Token, when set, is sent as "Authorization: Bearer <token>" on every
	// shard post and heartbeat probe (mtsimd -shard-token).
	Token string
	// Heartbeat, when positive, probes every worker's GET /healthz at this
	// interval (plus one synchronous round before dispatch). A worker that
	// fails HeartbeatFails consecutive probes (default 3) is evicted — its
	// slots park and requeue instead of dispatching — and re-admitted by the
	// next successful probe. Zero disables heartbeating.
	Heartbeat      time.Duration
	HeartbeatFails int
	// HeartbeatTimeout is each probe's answer deadline (default 2s),
	// independent of the probe interval: a short interval means frequent
	// probes, not impatient ones.
	HeartbeatTimeout time.Duration
	// SpecFactor, when positive, enables speculative re-execution: a shard
	// in flight longer than max(SpecMin, SpecFactor × rolling mean shard
	// latency) is queued a second time so another worker races the
	// straggler; the first structurally valid result wins and the loser is
	// dropped as stale. At most one speculative copy runs per shard.
	// SpecMin (default 1s) floors the deadline before any latency samples
	// exist.
	SpecFactor float64
	SpecMin    time.Duration
	// OnEvent observes progress; called from worker goroutines.
	OnEvent func(Event)
	// Sleep pauses a worker slot (backoff, quarantine wait); nil means a
	// ctx-aware timer sleep. Tests inject instant sleeps.
	Sleep func(ctx context.Context, d time.Duration) error
}

// Coordinator fans an experiment grid out over mtsimd workers and merges
// the partials deterministically: the merged result is byte-identical to a
// single-process run, whatever the worker count, scheduling, failures or
// restarts along the way.
type Coordinator struct {
	reg     *Registry
	opt     Options
	backoff retry.Backoff // requeue pacing: capped exponential, seeded jitter
}

// New builds a Coordinator over the given worker base URLs
// (e.g. "http://host:8080"). The workers become static registry members;
// with Options.Registry set the list may be empty — membership then comes
// entirely from announcements and discovery, and a run with no members yet
// waits for the first join.
func New(workers []string, opt Options) (*Coordinator, error) {
	if len(workers) == 0 && opt.Registry == nil {
		return nil, valid.Badf("cluster: no workers")
	}
	seen := map[string]bool{}
	for _, w := range workers {
		if w == "" {
			return nil, valid.Badf("cluster: empty worker URL")
		}
		if seen[w] {
			return nil, valid.Badf("cluster: duplicate worker %q", w)
		}
		seen[w] = true
	}
	if opt.Client == nil {
		opt.Client = &http.Client{}
	}
	if opt.Inflight < 1 {
		opt.Inflight = 1
	}
	if opt.Retries < 1 {
		opt.Retries = 3
	}
	if opt.Backoff <= 0 {
		opt.Backoff = 200 * time.Millisecond
	}
	if opt.BackoffMax <= 0 {
		opt.BackoffMax = 10 * opt.Backoff
	}
	if opt.Quarantine == nil {
		opt.Quarantine = serve.NewQuarantine(time.Second, 30*time.Second)
	}
	if opt.Sleep == nil {
		opt.Sleep = sleepCtx
	}
	if opt.HeartbeatFails < 1 {
		opt.HeartbeatFails = 3
	}
	if opt.HeartbeatTimeout <= 0 {
		opt.HeartbeatTimeout = 2 * time.Second
	}
	if opt.SpecMin <= 0 {
		opt.SpecMin = time.Second
	}
	if opt.Owner == "" {
		opt.Owner = "coordinator"
	}
	reg := opt.Registry
	if reg == nil {
		reg = NewRegistry(opt.LeaseTTL, workers)
	} else {
		reg.AddStatic(workers...)
	}
	return &Coordinator{
		reg: reg,
		opt: opt,
		backoff: retry.Backoff{
			Base:   opt.Backoff,
			Max:    opt.BackoffMax,
			Factor: 2,
			Jitter: 0.3,
			Seed:   uint64(opt.BackoffSeed),
		},
	}, nil
}

// Registry returns the coordinator's membership table — the one given in
// Options, or the private static registry New built from the worker list.
func (c *Coordinator) Registry() *Registry { return c.reg }

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

func (c *Coordinator) emit(ev Event) {
	if c.opt.OnEvent != nil {
		c.opt.OnEvent(ev)
	}
}

// runState is the shared bookkeeping of one Run: which shards remain, how
// often each has failed, which are in flight (and since when, for the
// speculation deadline), and the first fatal error.
type runState struct {
	mu         sync.Mutex
	remaining  int
	failures   []int
	parts      []*Partial
	speculated []bool
	inflight   map[int]flight // shard idx -> earliest dispatch
	latSum     time.Duration  // completed-shard latency, for the
	latN       int            // speculation deadline's rolling mean
	fatal      error
	stats      Stats
	health     *healthTracker // nil when heartbeating is off
	done       chan struct{}  // closed when remaining hits 0
	cancel     context.CancelFunc
}

// complete settles one shard result and reports whether it was accepted.
// Losers of a speculation or requeue race land here after the winner and are
// dropped as stale; only the accepted result may be journaled or counted.
func (st *runState) complete(idx int, p *Partial, worker string) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.parts[idx] != nil {
		st.stats.StaleDropped++
		return false
	}
	st.parts[idx] = p
	delete(st.inflight, idx)
	if worker != "" {
		st.stats.PerWorker[worker]++
	}
	st.remaining--
	if st.remaining == 0 {
		close(st.done)
	}
	return true
}

// isComplete reports whether shard idx already has an accepted result.
func (st *runState) isComplete(idx int) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.parts[idx] != nil
}

// flight is one in-flight shard dispatch: when it launched and to whom.
type flight struct {
	t0     time.Time
	worker string
}

// markDispatch records a shard entering flight. The earliest dispatch is
// kept when a speculative copy joins, so the straggler's age and worker —
// not the fresh copy's — drive any further deadline math and reporting.
func (st *runState) markDispatch(idx int, worker string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, ok := st.inflight[idx]; !ok {
		st.inflight[idx] = flight{t0: time.Now(), worker: worker}
	}
}

// recordLatency feeds one successful shard round trip into the rolling mean.
func (st *runState) recordLatency(d time.Duration) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.latSum += d
	st.latN++
}

func (st *runState) fail(err error) {
	st.mu.Lock()
	if st.fatal == nil {
		st.fatal = err
	}
	st.mu.Unlock()
	st.cancel()
}

// Run shards the grid into nShards blocks, executes them across the
// workers, and merges the partials. On return with a nil error the Merged
// result is byte-identical to RunLocal's for the same grid.
func (c *Coordinator) Run(ctx context.Context, g Grid, nShards int) (*Merged, *Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	plan, err := Plan(g, nShards)
	if err != nil {
		return nil, nil, err
	}
	st := &runState{
		remaining:  len(plan),
		failures:   make([]int, len(plan)),
		parts:      make([]*Partial, len(plan)),
		speculated: make([]bool, len(plan)),
		inflight:   map[int]flight{},
		done:       make(chan struct{}),
		stats:      Stats{Planned: len(plan), PerWorker: map[string]int{}},
	}

	// Resume: shards whose exact block is already journaled for this grid
	// need no dispatch. Blocks from a different plan width don't match and
	// are recomputed — identity is (grid key, lo, hi), nothing looser.
	// Lines for OTHER grids are expected (shared journal files) and skipped
	// silently; lines carrying THIS grid's key that fail validation — stale
	// bounds from an old plan, payload/block mismatch, a checksum that no
	// longer matches — are evidence of damage and are logged and counted
	// before being recomputed. Fence records order the file's writers:
	// every shard line is judged against the highest coordinator epoch
	// fenced above it, so a stale coordinator's late writes — lines landing
	// after the takeover fence with the old epoch — are rejected the same
	// way damage is.
	if c.opt.JournalPath != "" && c.opt.Resume {
		byBlock := map[[2]int]*Partial{}
		var fencedEpoch int64
		if _, err := atomicio.ReadJournal(c.opt.JournalPath, func(line []byte) error {
			var probe struct {
				FenceEpoch int64  `json:"fence_epoch"`
				Epoch      int64  `json:"epoch"`
				Key        string `json:"key"`
			}
			if json.Unmarshal(line, &probe) == nil {
				if probe.FenceEpoch > 0 {
					if probe.FenceEpoch > fencedEpoch {
						fencedEpoch = probe.FenceEpoch
					}
					return nil
				}
				if probe.Key == g.Key() && probe.Epoch < fencedEpoch {
					err := valid.Badf("cluster: journal line from stale epoch %d (fenced at %d)", probe.Epoch, fencedEpoch)
					st.stats.JournalSkipped++
					c.emit(Event{Kind: "journal-skip", Err: err})
					return err
				}
			}
			p, err := parseJournalPartial(line, g)
			if err != nil {
				if !errors.Is(err, errForeignJournalLine) {
					st.stats.JournalSkipped++
					c.emit(Event{Kind: "journal-skip", Err: err})
				}
				return err
			}
			byBlock[[2]int{p.Lo, p.Hi}] = p
			return nil
		}); err != nil {
			return nil, nil, err
		}
		for i, spec := range plan {
			if p, ok := byBlock[[2]int{spec.Lo, spec.Hi}]; ok {
				st.parts[i] = p
				st.remaining--
				st.stats.Resumed++
				c.emit(Event{Kind: "resume", Lo: spec.Lo, Hi: spec.Hi})
			}
		}
	}

	var journal *atomicio.Journal
	if c.opt.JournalPath != "" {
		// Claim the next coordinator epoch before dispatching anything: if a
		// previous coordinator for this journal is still alive somewhere,
		// its next append sees this fence and dies with ErrFenced instead of
		// double-merging.
		journal, _, err = atomicio.OpenJournalFenced(c.opt.JournalPath, c.opt.Resume, c.opt.Owner)
		if err != nil {
			return nil, nil, err
		}
		defer journal.Close()
	}

	if st.remaining > 0 {
		runCtx, cancel := context.WithCancel(ctx)
		st.cancel = cancel
		defer cancel()

		// When the last shard settles, cancel runCtx so straggling
		// speculation losers abort their posts instead of holding wg.Wait
		// (and the run's wall clock) hostage.
		go func() {
			select {
			case <-st.done:
				cancel()
			case <-runCtx.Done():
			}
		}()

		if c.opt.Heartbeat > 0 {
			st.health = newHealthTracker(c.opt.HeartbeatFails)
			// One synchronous round first, so a worker that is already dead
			// never receives the opening dispatch wave.
			for i := 0; i < c.opt.HeartbeatFails; i++ {
				c.probeRound(runCtx, st)
			}
			go c.heartbeatLoop(runCtx, st)
		}

		// The pool holds every undone shard index; capacity 2×len(plan)
		// means a requeue can never block even with a speculative copy of
		// every shard outstanding.
		pool := make(chan int, 2*len(plan))
		for i := range plan {
			if st.parts[i] == nil {
				pool <- i
			}
		}

		if c.opt.SpecFactor > 0 {
			go c.speculator(runCtx, plan, pool, st)
		}

		// Membership-driven slot management: every member gets Inflight
		// workerLoop slots, spawned on join and cancelled on leave (the
		// cancel aborts in-flight posts, whose shards requeue without a
		// strike — see workerLoop). The manager goroutine holds one
		// WaitGroup slot until runCtx ends and `closed` is set, so a join
		// arriving late can never wg.Add after wg.Wait has observed zero.
		var wg sync.WaitGroup
		var slots struct {
			sync.Mutex
			cancels map[string]context.CancelFunc
			closed  bool
		}
		slots.cancels = map[string]context.CancelFunc{}
		startWorker := func(w string) {
			slots.Lock()
			defer slots.Unlock()
			if slots.closed || slots.cancels[w] != nil {
				return
			}
			wctx, wcancel := context.WithCancel(runCtx)
			slots.cancels[w] = wcancel
			for s := 0; s < c.opt.Inflight; s++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					c.workerLoop(wctx, w, plan, pool, st, journal)
				}()
			}
		}
		stopWorker := func(w string) {
			slots.Lock()
			defer slots.Unlock()
			if cancel := slots.cancels[w]; cancel != nil {
				cancel()
				delete(slots.cancels, w)
			}
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-runCtx.Done()
			slots.Lock()
			slots.closed = true
			slots.Unlock()
		}()

		unwatch := c.reg.Watch(func(ev MemberEvent) {
			switch ev.Kind {
			case "join":
				st.mu.Lock()
				st.stats.Joins++
				st.mu.Unlock()
				c.emit(Event{Kind: "join", Worker: ev.Worker})
				startWorker(ev.Worker)
			case "leave":
				st.mu.Lock()
				st.stats.Leaves++
				st.mu.Unlock()
				c.emit(Event{Kind: "leave", Worker: ev.Worker})
				stopWorker(ev.Worker)
			}
		})
		defer unwatch()
		for _, w := range c.reg.Members() {
			startWorker(w)
		}
		wg.Wait()
	} else {
		close(st.done)
	}

	st.mu.Lock()
	fatal := st.fatal
	stats := st.stats
	parts := st.parts
	remaining := st.remaining
	st.mu.Unlock()
	if fatal != nil {
		return nil, &stats, fatal
	}
	if err := ctx.Err(); err != nil {
		return nil, &stats, err
	}
	if remaining > 0 {
		return nil, &stats, fmt.Errorf("cluster: %d shards incomplete", remaining)
	}
	if journal != nil {
		if err := journal.Close(); err != nil {
			return nil, &stats, err
		}
	}
	merged, err := Merge(g, parts)
	if err != nil {
		return nil, &stats, err
	}
	return merged, &stats, nil
}

// workerLoop is one in-flight slot of one worker: pull a shard, post it,
// and settle the outcome until the run completes or dies.
func (c *Coordinator) workerLoop(ctx context.Context, worker string, plan []ShardSpec, pool chan int, st *runState, journal *atomicio.Journal) {
	for {
		var idx int
		select {
		case <-ctx.Done():
			return
		case <-st.done:
			return
		case idx = <-pool:
		}
		spec := plan[idx]

		// A speculation or requeue duplicate whose shard already settled
		// needs no dispatch.
		if st.isComplete(idx) {
			continue
		}

		// An evicted worker's slots park: hand the shard back and wait out a
		// heartbeat interval, since only a successful probe can re-admit.
		// The park is a real timer, never Options.Sleep — an instant test
		// sleep would turn parked slots into hot spins that starve the very
		// probes that could re-admit the worker.
		if st.health != nil && !st.health.allowed(worker) {
			pool <- idx
			if sleepCtx(ctx, c.opt.Heartbeat) != nil {
				return
			}
			continue
		}

		// A quarantined worker hands the shard back and pauses this slot so
		// healthy workers drain the pool meanwhile.
		if ok, retryIn := c.opt.Quarantine.Allowed(worker); !ok {
			pool <- idx
			c.emit(Event{Kind: "quarantine", Worker: worker, Lo: spec.Lo, Hi: spec.Hi, RetryIn: retryIn})
			if c.opt.Sleep(ctx, retryIn) != nil {
				return
			}
			continue
		}

		st.mu.Lock()
		st.stats.Attempts++
		st.mu.Unlock()
		st.markDispatch(idx, worker)

		start := time.Now()
		p, retryAfter, err := c.postShard(ctx, worker, spec)
		switch {
		case err == nil:
			c.opt.Quarantine.Clear(worker)
			st.recordLatency(time.Since(start))
			if st.complete(idx, p, worker) {
				// Journal only the accepted result: the race loser's partial
				// is equal in value but must not produce a duplicate line.
				// Each line carries this run's coordinator epoch, and a
				// fence by a higher epoch aborts the run on the spot — a
				// taken-over coordinator must stop merging, not finish
				// quietly alongside its replacement.
				if journal != nil {
					journal.Append(fmt.Sprintf("shard[%d,%d)", spec.Lo, spec.Hi),
						journalLine{Epoch: journal.Epoch(), Partial: p})
					if jerr := journal.Err(); errors.Is(jerr, atomicio.ErrFenced) {
						st.fail(jerr)
						return
					}
				}
				c.emit(Event{Kind: "complete", Worker: worker, Lo: spec.Lo, Hi: spec.Hi})
			}

		case errors.Is(err, errSaturated):
			// Backpressure, not failure: hold the shard, pause this slot for
			// the worker's advertised Retry-After, then hand the shard back
			// for whichever slot frees first.
			st.mu.Lock()
			st.stats.Backoffs429++
			st.mu.Unlock()
			c.emit(Event{Kind: "backoff", Worker: worker, Lo: spec.Lo, Hi: spec.Hi, RetryIn: retryAfter})
			if c.opt.Sleep(ctx, retryAfter) != nil {
				return
			}
			pool <- idx

		case valid.IsParam(err):
			// The grid itself is bad; no worker will ever accept it.
			st.fail(err)
			return

		default:
			// A speculation loser failing after the winner landed — its post
			// aborted by the done-watcher's cancel, typically — is not a
			// shard failure: no strike, no retry budget, no requeue.
			if st.isComplete(idx) {
				continue
			}
			// A worker retired mid-flight (lease expired, slots cancelled)
			// did not fail the shard — the membership changed under it.
			// Requeue with no strike and no retry budget burned, and let
			// the slot die with its worker.
			if !c.reg.Active(worker) {
				st.mu.Lock()
				st.stats.Requeues++
				st.mu.Unlock()
				pool <- idx
				c.emit(Event{Kind: "requeue", Worker: worker, Lo: spec.Lo, Hi: spec.Hi, Err: err})
				return
			}
			c.opt.Quarantine.Report(worker, err)
			st.mu.Lock()
			st.failures[idx]++
			tries := st.failures[idx]
			st.stats.Requeues++
			st.mu.Unlock()
			if tries > c.opt.Retries {
				st.fail(fmt.Errorf("cluster: shard [%d, %d) failed %d times, last on %s: %w", spec.Lo, spec.Hi, tries, worker, err))
				return
			}
			pool <- idx
			c.emit(Event{Kind: "requeue", Worker: worker, Lo: spec.Lo, Hi: spec.Hi, Err: err})
			// Pacing comes from the shared retry layer: capped exponential
			// in the shard's failure count, jitter seeded for replay.
			if c.opt.Sleep(ctx, c.backoff.Delay(tries)) != nil {
				return
			}
		}
	}
}

// speculator watches in-flight shards and re-queues any that has been flying
// longer than max(SpecMin, SpecFactor × rolling mean shard latency), so a
// healthy worker races the straggler. Each shard is speculated at most once;
// the duplicate-completion guards in workerLoop make the race safe whichever
// copy lands first.
func (c *Coordinator) speculator(ctx context.Context, plan []ShardSpec, pool chan int, st *runState) {
	tick := c.opt.SpecMin / 4
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	if tick > time.Second {
		tick = time.Second
	}
	for {
		if sleepCtx(ctx, tick) != nil {
			return
		}
		select {
		case <-st.done:
			return
		default:
		}
		now := time.Now()
		// A backup copy needs somewhere useful to land: a live member that
		// is not the straggler itself and not evicted. Snapshot eligibility
		// outside st.mu (the registry and health tracker have their own
		// locks), then decide per straggler under it.
		var eligible []string
		for _, w := range c.reg.Members() {
			if c.reg.Active(w) && (st.health == nil || st.health.allowed(w)) {
				eligible = append(eligible, w)
			}
		}
		hasAlternative := func(straggler string) bool {
			for _, w := range eligible {
				if w != straggler {
					return true
				}
			}
			return false
		}
		st.mu.Lock()
		deadline := c.opt.SpecMin
		if st.latN > 0 {
			if est := time.Duration(float64(st.latSum/time.Duration(st.latN)) * c.opt.SpecFactor); est > deadline {
				deadline = est
			}
		}
		var fire []flight
		var fireIdx []int
		for idx, f := range st.inflight {
			if st.parts[idx] != nil || st.speculated[idx] || now.Sub(f.t0) <= deadline {
				continue
			}
			// No live target other than the straggler: hold the shard's one
			// speculative copy (don't burn st.speculated) until a worker
			// joins, recovers or is readmitted — dispatching the backup to
			// an evicted or lease-expired worker would waste it.
			if !hasAlternative(f.worker) {
				continue
			}
			st.speculated[idx] = true
			st.stats.Speculations++
			fireIdx = append(fireIdx, idx)
			fire = append(fire, f)
		}
		st.mu.Unlock()
		for i, idx := range fireIdx {
			spec := plan[idx]
			c.emit(Event{Kind: "speculate", Worker: fire[i].worker, Lo: spec.Lo, Hi: spec.Hi})
			select {
			case pool <- idx:
			case <-ctx.Done():
				return
			}
		}
	}
}

// errSaturated marks a 429 outcome inside postShard.
var errSaturated = errors.New("cluster: worker saturated")

// postShard posts one ShardSpec and decodes the worker's Partial. A 429
// returns errSaturated with the worker's Retry-After; a 4xx other than 429
// returns a valid.ErrParam-wrapped permanent error; everything else
// (transport errors, 5xx, undecodable bodies) is a retryable worker
// failure.
func (c *Coordinator) postShard(ctx context.Context, worker string, spec ShardSpec) (*Partial, time.Duration, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, 0, valid.Badf("cluster: encoding shard: %v", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, worker+ShardPath, bytes.NewReader(body))
	if err != nil {
		return nil, 0, valid.Badf("cluster: building request: %v", err)
	}
	req.Header.Set("Content-Type", "application/json")
	if c.opt.Token != "" {
		req.Header.Set("Authorization", "Bearer "+c.opt.Token)
	}
	// Failpoint "cluster.post": a transport fault on the coordinator side —
	// connection reset, mid-body drop — taking the retryable-failure path.
	if err := chaos.Maybe("cluster.post"); err != nil {
		return nil, 0, fmt.Errorf("cluster: %s: %w", worker, err)
	}
	resp, err := c.opt.Client.Do(req)
	if err != nil {
		return nil, 0, fmt.Errorf("cluster: %s: %w", worker, err)
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
	}()
	switch {
	case resp.StatusCode == http.StatusOK:
		var p Partial
		if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<30)).Decode(&p); err != nil {
			return nil, 0, fmt.Errorf("cluster: %s: decoding partial: %w", worker, err)
		}
		if p.Key != spec.Grid.Key() || p.Lo != spec.Lo || p.Hi != spec.Hi {
			return nil, 0, fmt.Errorf("cluster: %s: partial for wrong shard (got [%d, %d) key %.12s)", worker, p.Lo, p.Hi, p.Key)
		}
		// End-to-end integrity: the payload must still hash to the seal the
		// worker stamped. A mismatch — a flipped bit in transit, a truncated
		// body that happened to stay parseable — is a retryable worker
		// failure: strike, requeue, recompute elsewhere.
		if err := p.VerifySum(); err != nil {
			return nil, 0, fmt.Errorf("cluster: %s: %w", worker, err)
		}
		return &p, 0, nil
	case resp.StatusCode == http.StatusTooManyRequests:
		retryIn := c.opt.Backoff
		if s := resp.Header.Get("Retry-After"); s != "" {
			if secs, err := strconv.Atoi(s); err == nil && secs > 0 {
				retryIn = time.Duration(secs) * time.Second
			}
		}
		return nil, retryIn, errSaturated
	case resp.StatusCode >= 400 && resp.StatusCode < 500:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, 0, valid.Badf("cluster: %s rejected shard [%d, %d): %s: %s", worker, spec.Lo, spec.Hi, resp.Status, bytes.TrimSpace(msg))
	default:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, 0, fmt.Errorf("cluster: %s: %s: %s", worker, resp.Status, bytes.TrimSpace(msg))
	}
}

// journalLine wraps a Partial with the coordinator epoch that wrote it.
// The Partial embeds flat, so pre-epoch journals and epoch-stamped lines
// parse through the same code, and the payload checksum — which covers
// only Partial fields — is untouched by the wrapper.
type journalLine struct {
	Epoch int64 `json:"epoch,omitempty"`
	*Partial
}

// errForeignJournalLine marks a journal line that belongs to a different
// grid — expected when several runs share one journal file, and skipped
// without fanfare, unlike damage to a line that claims to be ours.
var errForeignJournalLine = errors.New("cluster: journal line for another grid")

// parseJournalPartial decodes one journal line and binds it to the grid.
// Lines for other grids return errForeignJournalLine; torn trailing writes,
// payload-less records, blocks outside the grid's axis, payloads whose inner
// bounds disagree with the record's, and checksum failures are all rejected
// (the caller logs and counts them — a rejected line is recomputed, never
// trusted).
func parseJournalPartial(line []byte, g Grid) (*Partial, error) {
	var p Partial
	if len(line) == 0 {
		return nil, valid.Badf("cluster: empty journal line")
	}
	if err := json.Unmarshal(line, &p); err != nil {
		return nil, valid.Badf("cluster: malformed journal line: %v", err)
	}
	if p.Key != g.Key() {
		return nil, errForeignJournalLine
	}
	if err := validateBlockFor(g, &p); err != nil {
		return nil, err
	}
	if err := p.VerifySum(); err != nil {
		return nil, err
	}
	return &p, nil
}

// validateBlockFor checks a partial's block and payload against the grid:
// the outer bounds must land inside the grid's sharding axis, the payload
// kind must match, and the payload's own block and protocol shape must agree
// with the record that carries it. A key match alone is not enough — a
// journal written under an older plan, or a record whose inner payload was
// spliced, must be recomputed, not merged.
func validateBlockFor(g Grid, p *Partial) error {
	if p.Lo < 0 || p.Hi > g.Span() || p.Lo >= p.Hi {
		return valid.Badf("cluster: partial block [%d, %d) out of [0, %d)", p.Lo, p.Hi, g.Span())
	}
	switch g.Kind {
	case KindCurve:
		if p.Curve == nil {
			return valid.Badf("cluster: partial [%d, %d) missing curve payload", p.Lo, p.Hi)
		}
		if p.Curve.SrcLo != p.Lo || p.Curve.SrcHi != p.Hi {
			return valid.Badf("cluster: partial [%d, %d) wraps curve block [%d, %d)", p.Lo, p.Hi, p.Curve.SrcLo, p.Curve.SrcHi)
		}
		if p.Curve.NSource != g.Protocol.NSource || p.Curve.K != len(g.Sizes) {
			return valid.Badf("cluster: partial [%d, %d) measured under NSource=%d K=%d, grid wants %d/%d",
				p.Lo, p.Hi, p.Curve.NSource, p.Curve.K, g.Protocol.NSource, len(g.Sizes))
		}
	case KindShared:
		if p.Shared == nil {
			return valid.Badf("cluster: partial [%d, %d) missing shared payload", p.Lo, p.Hi)
		}
		if p.Shared.SrcLo != p.Lo || p.Shared.SrcHi != p.Hi {
			return valid.Badf("cluster: partial [%d, %d) wraps shared block [%d, %d)", p.Lo, p.Hi, p.Shared.SrcLo, p.Shared.SrcHi)
		}
		if p.Shared.NSource != g.Protocol.NSource || p.Shared.K != len(g.Sizes) {
			return valid.Badf("cluster: partial [%d, %d) measured under NSource=%d K=%d, grid wants %d/%d",
				p.Lo, p.Hi, p.Shared.NSource, p.Shared.K, g.Protocol.NSource, len(g.Sizes))
		}
	case KindEnsemble:
		if p.Ensemble == nil {
			return valid.Badf("cluster: partial [%d, %d) missing ensemble payload", p.Lo, p.Hi)
		}
		if p.Ensemble.NetLo != p.Lo || p.Ensemble.NetHi != p.Hi {
			return valid.Badf("cluster: partial [%d, %d) wraps ensemble block [%d, %d)", p.Lo, p.Hi, p.Ensemble.NetLo, p.Ensemble.NetHi)
		}
		if p.Ensemble.NNetworks != g.NNetworks || len(p.Ensemble.PerNet) != p.Hi-p.Lo {
			return valid.Badf("cluster: partial [%d, %d) measured under NNetworks=%d with %d networks, grid wants %d/%d",
				p.Lo, p.Hi, p.Ensemble.NNetworks, len(p.Ensemble.PerNet), g.NNetworks, p.Hi-p.Lo)
		}
	}
	return nil
}
