//go:build ignore

// gen_certs regenerates the committed self-signed test certificate used by
// the cluster TLS tests and scripts/membership_smoke.sh:
//
//	go run ./internal/cluster/testdata/gen_certs.go
//
// The certificate is its own CA (self-signed), bound to loopback only
// (127.0.0.1, ::1, localhost), and long-lived so the committed testdata
// does not rot. It secures nothing real: loopback test traffic only.
package main

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/pem"
	"log"
	"math/big"
	"net"
	"os"
	"time"
)

func main() {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		log.Fatal(err)
	}
	tmpl := &x509.Certificate{
		SerialNumber: big.NewInt(1),
		Subject:      pkix.Name{CommonName: "mtreescale-test", Organization: []string{"mtreescale tests"}},
		NotBefore:    time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC),
		NotAfter:     time.Date(2120, 1, 1, 0, 0, 0, 0, time.UTC),
		KeyUsage:     x509.KeyUsageDigitalSignature | x509.KeyUsageCertSign,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		IPAddresses:  []net.IP{net.ParseIP("127.0.0.1"), net.ParseIP("::1")},
		DNSNames:     []string{"localhost"},
		IsCA:         true, BasicConstraintsValid: true,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		log.Fatal(err)
	}
	keyDER, err := x509.MarshalECPrivateKey(key)
	if err != nil {
		log.Fatal(err)
	}
	write := func(path, typ string, der []byte) {
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := pem.Encode(f, &pem.Block{Type: typ, Bytes: der}); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", path)
	}
	write("internal/cluster/testdata/test_cert.pem", "CERTIFICATE", der)
	write("internal/cluster/testdata/test_key.pem", "EC PRIVATE KEY", keyDER)
}
