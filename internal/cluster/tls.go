package cluster

import (
	"crypto/tls"
	"crypto/x509"
	"net/http"
	"os"

	"mtreescale/internal/valid"
)

// NewTLSClient builds an HTTP client that trusts exactly the CA
// certificate(s) in the PEM file at caPath — the client side of the
// cluster's TLS story (mtctl -tls-ca, a worker's -tls-ca for announcing to
// a TLS registrar). Trusting a private CA pool rather than the system
// roots means a self-signed deployment cert works without weakening
// verification: the server must still present a certificate chaining to
// the pinned CA for its hostname.
func NewTLSClient(caPath string) (*http.Client, error) {
	pem, err := os.ReadFile(caPath)
	if err != nil {
		return nil, err
	}
	pool := x509.NewCertPool()
	if !pool.AppendCertsFromPEM(pem) {
		return nil, valid.Badf("cluster: no CA certificates in %s", caPath)
	}
	return &http.Client{
		Transport: &http.Transport{
			TLSClientConfig: &tls.Config{RootCAs: pool},
		},
	}, nil
}
