package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"mtreescale/internal/retry"
)

// AnnounceOnce posts self's base URL to a registrar's POST /register
// endpoint (mtctl -register-addr). A non-empty token is sent as a bearer,
// matching the registrar's gate. It reports whether the registrar counted
// this announcement as a join (first sight, or re-admission after lease
// expiry) rather than a renewal.
func AnnounceOnce(ctx context.Context, client *http.Client, registrar, self, token string) (joined bool, err error) {
	if client == nil {
		client = http.DefaultClient
	}
	body, err := json.Marshal(registerRequest{URL: self})
	if err != nil {
		return false, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, registrar+RegisterPath, bytes.NewReader(body))
	if err != nil {
		return false, err
	}
	req.Header.Set("Content-Type", "application/json")
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := client.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return false, fmt.Errorf("cluster: announce to %s: status %d: %s", registrar, resp.StatusCode, bytes.TrimSpace(msg))
	}
	var ack struct {
		Joined bool `json:"joined"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&ack); err != nil {
		return false, fmt.Errorf("cluster: announce to %s: bad ack: %w", registrar, err)
	}
	return ack.Joined, nil
}

// AnnounceLoop keeps self registered with a registrar until ctx ends: one
// announcement immediately, then one per interval — each a lease renewal,
// so the worker stays a member for as long as it keeps running. Failed
// announcements are paced by the shared retry layer (capped exponential
// backoff from interval) instead of the flat interval, and reported through
// onErr (nil ignores them); the first success resets the backoff. The loop
// never gives up: a registrar restart must not orphan a live worker.
func AnnounceLoop(ctx context.Context, client *http.Client, registrar, self, token string, interval time.Duration, onErr func(error)) {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	backoff := retry.Backoff{Base: interval, Max: 8 * interval, Factor: 2}
	fails := 0
	for {
		_, err := AnnounceOnce(ctx, client, registrar, self, token)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			fails++
			if onErr != nil {
				onErr(err)
			}
		} else {
			fails = 0
		}
		pause := interval
		if fails > 0 {
			pause = backoff.Delay(fails)
		}
		if sleepCtx(ctx, pause) != nil {
			return
		}
	}
}
