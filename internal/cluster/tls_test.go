package cluster

import (
	"context"
	"reflect"
	"testing"
)

// TestCoordinatorOverTLS runs the byte-identity scenario across TLS
// workers: the stub serves https with the committed testdata cert, the
// coordinator's client trusts exactly that CA, and the merged result still
// matches the single-process reference.
func TestCoordinatorOverTLS(t *testing.T) {
	w1, err := StartStubWorkerOpts(StubOptions{
		ID: "tls-1", TLSCert: "testdata/test_cert.pem", TLSKey: "testdata/test_key.pem",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w1.Close()
	w2, err := StartStubWorkerOpts(StubOptions{
		ID: "tls-2", TLSCert: "testdata/test_cert.pem", TLSKey: "testdata/test_key.pem",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()

	client, err := NewTLSClient("testdata/test_cert.pem")
	if err != nil {
		t.Fatal(err)
	}
	g := testGrid(KindCurve)
	c, err := New([]string{w1.URL(), w2.URL()}, Options{Client: client, Sleep: instant})
	if err != nil {
		t.Fatal(err)
	}
	merged, _, err := c.Run(context.Background(), g, 4)
	if err != nil {
		t.Fatal(err)
	}
	local, err := RunLocal(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(merged, local) {
		t.Fatal("TLS clustered result differs from local run")
	}
}

// TestTLSWorkerRejectsUntrustedClient: a default client (system roots)
// must fail verification against the self-signed test cert — TLS that
// accepted any cert would be decoration.
func TestTLSWorkerRejectsUntrustedClient(t *testing.T) {
	w, err := StartStubWorkerOpts(StubOptions{
		ID: "tls", TLSCert: "testdata/test_cert.pem", TLSKey: "testdata/test_key.pem",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	g := testGrid(KindCurve)
	c, err := New([]string{w.URL()}, Options{Retries: 1, Sleep: instant})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Run(context.Background(), g, 2); err == nil {
		t.Fatal("untrusted client completed a TLS run")
	}
}

// TestNewTLSClientRejectsGarbage: a CA file with no certificates is a
// configuration error, not a silently empty trust pool.
func TestNewTLSClientRejectsGarbage(t *testing.T) {
	if _, err := NewTLSClient("testdata/gen_certs.go"); err == nil {
		t.Fatal("non-PEM CA file accepted")
	}
	if _, err := NewTLSClient("testdata/does-not-exist.pem"); err == nil {
		t.Fatal("missing CA file accepted")
	}
}
