package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"mtreescale/internal/mcast"
	"mtreescale/internal/serve"
)

// instant is the test Sleep: no waiting, still ctx-aware.
func instant(ctx context.Context, d time.Duration) error { return ctx.Err() }

func testGrid(kind Kind) Grid {
	g := Grid{
		Kind:     kind,
		Topology: "r100",
		Scale:    1,
		Sizes:    []int{1, 3, 10, 30},
		Mode:     mcast.Distinct,
		Protocol: mcast.Protocol{NSource: 7, NRcvr: 4, Seed: 12, Workers: 1},
	}
	if kind == KindEnsemble {
		g.NNetworks = 4
		g.Protocol.NSource = 3
	}
	if kind == KindShared {
		g.Strategy = mcast.CoreCenter
	}
	return g
}

func TestPlanTilesSpan(t *testing.T) {
	g := testGrid(KindCurve)
	for _, n := range []int{1, 2, 3, 7, 50} {
		plan, err := Plan(g, n)
		if err != nil {
			t.Fatal(err)
		}
		want := n
		if want > g.Span() {
			want = g.Span()
		}
		if len(plan) != want {
			t.Fatalf("Plan(%d) gave %d shards", n, len(plan))
		}
		next := 0
		for _, s := range plan {
			if s.Lo != next {
				t.Fatalf("gap at %d: %+v", next, s)
			}
			next = s.Hi
		}
		if next != g.Span() {
			t.Fatalf("plan covers [0, %d), want [0, %d)", next, g.Span())
		}
	}
	if _, err := Plan(g, 0); err == nil {
		t.Fatal("want error for 0 shards")
	}
}

// TestShardMergeMatchesLocal: ExecuteShard + Merge == RunLocal, byte for
// byte, for every grid kind.
func TestShardMergeMatchesLocal(t *testing.T) {
	for _, kind := range []Kind{KindCurve, KindShared, KindEnsemble} {
		t.Run(string(kind), func(t *testing.T) {
			g := testGrid(kind)
			want, err := RunLocal(nil, g)
			if err != nil {
				t.Fatal(err)
			}
			plan, err := Plan(g, 3)
			if err != nil {
				t.Fatal(err)
			}
			parts := make([]*Partial, len(plan))
			for i, spec := range plan {
				if parts[i], err = ExecuteShard(nil, spec); err != nil {
					t.Fatal(err)
				}
			}
			got, err := Merge(g, parts)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("merged != local:\n got %+v\nwant %+v", got, want)
			}
		})
	}
}

// TestCoordinatorByteIdentical drives two real stub workers (computing
// shards in-process over real HTTP) and asserts the merged result equals
// the single-process run exactly.
func TestCoordinatorByteIdentical(t *testing.T) {
	for _, kind := range []Kind{KindCurve, KindShared, KindEnsemble} {
		t.Run(string(kind), func(t *testing.T) {
			g := testGrid(kind)
			want, err := RunLocal(nil, g)
			if err != nil {
				t.Fatal(err)
			}
			w1, err := StartStubWorker("w1", 0, nil)
			if err != nil {
				t.Fatal(err)
			}
			defer w1.Close()
			w2, err := StartStubWorker("w2", 0, nil)
			if err != nil {
				t.Fatal(err)
			}
			defer w2.Close()
			co, err := New([]string{w1.URL(), w2.URL()}, Options{Sleep: instant})
			if err != nil {
				t.Fatal(err)
			}
			got, stats, err := co.Run(nil, g, 4)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("clustered != local:\n got %+v\nwant %+v", got, want)
			}
			if stats.Planned != 4 && stats.Planned != g.Span() {
				t.Fatalf("planned %d shards", stats.Planned)
			}
			total := 0
			for _, n := range stats.PerWorker {
				total += n
			}
			if total != stats.Planned {
				t.Fatalf("per-worker counts %v don't sum to %d", stats.PerWorker, stats.Planned)
			}
		})
	}
}

// TestCoordinatorSurvivesWorkerDeath kills one of two workers after its
// first completed shard; the dead worker's remaining shards must re-queue
// on the survivor and the merged output must stay byte-identical.
func TestCoordinatorSurvivesWorkerDeath(t *testing.T) {
	g := testGrid(KindCurve)
	want, err := RunLocal(nil, g)
	if err != nil {
		t.Fatal(err)
	}
	var victimDone atomic.Int32
	victim, err := StartStubWorker("victim", 0, func(ctx context.Context, spec ShardSpec) (*Partial, error) {
		victimDone.Add(1)
		return ExecuteShard(ctx, spec)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer victim.Close()
	survivor, err := StartStubWorker("survivor", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer survivor.Close()

	var killed atomic.Bool
	co, err := New([]string{victim.URL(), survivor.URL()}, Options{
		Sleep: instant,
		OnEvent: func(ev Event) {
			// Kill the victim as soon as it has completed one shard.
			if ev.Kind == "complete" && ev.Worker == victim.URL() && killed.CompareAndSwap(false, true) {
				victim.Close()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := co.Run(nil, g, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merged after worker death != local:\n got %+v\nwant %+v", got, want)
	}
	if !killed.Load() {
		t.Fatal("victim was never killed — test exercised nothing")
	}
	if stats.PerWorker[survivor.URL()] == 0 {
		t.Fatal("survivor completed nothing")
	}
}

// TestCoordinatorBacksOffOn429 verifies a saturated worker is backpressure,
// not failure: the coordinator honors Retry-After, retries, and the shard
// succeeds without striking the worker's quarantine.
func TestCoordinatorBacksOffOn429(t *testing.T) {
	g := testGrid(KindCurve)
	want, err := RunLocal(nil, g)
	if err != nil {
		t.Fatal(err)
	}
	var saturated atomic.Int32
	saturated.Store(3) // first three requests shed
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+ShardPath, func(w http.ResponseWriter, r *http.Request) {
		if saturated.Add(-1) >= 0 {
			serve.WriteJSONError(w, http.StatusTooManyRequests, "compute pool saturated", 2*time.Second)
			return
		}
		var spec ShardSpec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			serve.WriteJSONError(w, http.StatusBadRequest, err.Error(), 0)
			return
		}
		p, err := ExecuteShard(r.Context(), spec)
		if err != nil {
			serve.WriteJSONError(w, http.StatusInternalServerError, err.Error(), 0)
			return
		}
		json.NewEncoder(w).Encode(p)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	var sleeps []time.Duration
	quar := serve.NewQuarantine(time.Second, 30*time.Second)
	co, err := New([]string{srv.URL}, Options{
		Quarantine: quar,
		Sleep: func(ctx context.Context, d time.Duration) error {
			sleeps = append(sleeps, d) // single worker, Inflight 1: no races
			return ctx.Err()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := co.Run(nil, g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("merged under saturation != local")
	}
	if stats.Backoffs429 != 3 {
		t.Fatalf("Backoffs429 = %d, want 3", stats.Backoffs429)
	}
	if stats.Requeues != 0 {
		t.Fatalf("429 counted as failure: Requeues = %d", stats.Requeues)
	}
	if quar.Len() != 0 {
		t.Fatalf("429 struck quarantine: %v", quar.Snapshot())
	}
	found := false
	for _, d := range sleeps {
		if d == 2*time.Second {
			found = true
		}
	}
	if !found {
		t.Fatalf("Retry-After not honored: slept %v", sleeps)
	}
}

// TestCoordinatorRejectsBadGridFast: a 400 from a worker is permanent — no
// retry storm, the run fails with the worker's message.
func TestCoordinatorRejectsBadGridFast(t *testing.T) {
	var hits atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		serve.WriteJSONError(w, http.StatusBadRequest, "no such topology", 0)
	}))
	defer srv.Close()
	co, err := New([]string{srv.URL}, Options{Sleep: instant})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = co.Run(nil, testGrid(KindCurve), 3)
	if err == nil {
		t.Fatal("want error")
	}
	if n := hits.Load(); n != 1 {
		t.Fatalf("retried a permanent rejection %d times", n)
	}
}

// TestCoordinatorResume: a journaled run killed partway resumes without
// recomputing finished shards, and the final merge is byte-identical.
func TestCoordinatorResume(t *testing.T) {
	g := testGrid(KindCurve)
	want, err := RunLocal(nil, g)
	if err != nil {
		t.Fatal(err)
	}
	journal := filepath.Join(t.TempDir(), "checkpoint.jsonl")

	// First run: cancel after two shards complete.
	w, err := StartStubWorker("w", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	ctx, cancel := context.WithCancel(context.Background())
	var completed atomic.Int32
	co, err := New([]string{w.URL()}, Options{
		JournalPath: journal,
		Sleep:       instant,
		OnEvent: func(ev Event) {
			if ev.Kind == "complete" && completed.Add(1) == 2 {
				cancel()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err = co.Run(ctx, g, 7); err == nil {
		t.Fatal("cancelled run should error")
	}

	// Second run resumes: at least the journaled shards must not redispatch.
	co2, err := New([]string{w.URL()}, Options{
		JournalPath: journal,
		Resume:      true,
		Sleep:       instant,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := co2.Run(nil, g, 7)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Resumed < 2 {
		t.Fatalf("resumed %d shards, want >= 2", stats.Resumed)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("resumed merge != local")
	}

	// Third run: everything is journaled now; no dispatch at all, and the
	// merge still matches even with no live workers.
	co3, err := New([]string{"http://127.0.0.1:1"}, Options{
		JournalPath: journal,
		Resume:      true,
		Sleep:       instant,
	})
	if err != nil {
		t.Fatal(err)
	}
	got3, stats3, err := co3.Run(nil, g, 7)
	if err != nil {
		t.Fatal(err)
	}
	if stats3.Resumed != stats3.Planned || stats3.Attempts != 0 {
		t.Fatalf("full resume dispatched: %+v", stats3)
	}
	if !reflect.DeepEqual(got3, want) {
		t.Fatal("fully-resumed merge != local")
	}
}

// TestCoordinatorFailsAfterRetryBudget: a worker that always 500s exhausts
// the shard's retry budget and the run fails rather than spinning.
func TestCoordinatorFailsAfterRetryBudget(t *testing.T) {
	var hits atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		serve.WriteJSONError(w, http.StatusInternalServerError, "boom", 0)
	}))
	defer srv.Close()
	quar := serve.NewQuarantine(time.Nanosecond, time.Nanosecond)
	co, err := New([]string{srv.URL}, Options{Retries: 2, Quarantine: quar, Sleep: instant})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = co.Run(nil, testGrid(KindCurve), 1)
	if err == nil {
		t.Fatal("want error")
	}
	if n := hits.Load(); n != 3 {
		t.Fatalf("hit worker %d times, want 3 (1 + 2 retries)", n)
	}
}

func TestGridValidate(t *testing.T) {
	cases := []func(*Grid){
		func(g *Grid) { g.Kind = "nope" },
		func(g *Grid) { g.Topology = "nope" },
		func(g *Grid) { g.Scale = 0 },
		func(g *Grid) { g.Sizes = nil },
		func(g *Grid) { g.Protocol.NSource = 0 },
	}
	for i, mut := range cases {
		g := testGrid(KindCurve)
		mut(&g)
		if err := g.Validate(); err == nil {
			t.Fatalf("case %d: want error", i)
		}
	}
	g := testGrid(KindEnsemble)
	g.NNetworks = 0
	if err := g.Validate(); err == nil {
		t.Fatal("ensemble without NNetworks: want error")
	}
	if k1, k2 := testGrid(KindCurve).Key(), testGrid(KindShared).Key(); k1 == k2 {
		t.Fatal("distinct grids share a key")
	}
}
