// Package cluster shards experiment grids across mtsimd workers and merges
// their partial statistics deterministically: a clustered run is
// byte-identical to a single-process run, including after worker failures
// and coordinator restarts.
//
// The layer rests on two properties of the measurement engines:
//
//   - every curve engine keys a source's RNG stream by its GLOBAL protocol
//     index and reduces per-(source, size) partial sums in source order, so
//     a source block measured alone produces exactly the cells the full
//     sweep would (mcast.MeasureCurvePartialCtx and friends);
//   - ensemble instances derive generation and measurement seeds from their
//     global network index and are reduced in network order.
//
// Grids therefore shard along exactly those two axes — source blocks and
// ensemble network blocks. Curve-segment sharding (splitting the sizes
// grid) is deliberately not offered: a source's sampler stream is consumed
// across the whole grid in order, so a segment shard would observe
// different draws than the unsharded run and the merge would not be
// byte-identical.
package cluster

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"mtreescale/internal/graph"
	"mtreescale/internal/mcast"
	"mtreescale/internal/topology"
	"mtreescale/internal/valid"
)

// Kind selects the measurement engine a grid runs through.
type Kind string

const (
	// KindCurve is the §2 L(m)/ū protocol (mcast.MeasureCurve; the nested
	// engine when Protocol.Nested is set).
	KindCurve Kind = "curve"
	// KindShared is the Wei-Estrin shared-tree comparison
	// (mcast.MeasureSharedCurve).
	KindShared Kind = "shared"
	// KindEnsemble is footnote 4's N_network protocol
	// (mcast.MeasureEnsemble); shards by network block.
	KindEnsemble Kind = "ensemble"
)

// Grid describes one shardable sweep: a standard topology, a size grid, and
// the measurement protocol. It is the unit a coordinator plans, the wire
// shape workers receive inside a ShardSpec, and the identity journal records
// bind to (see Key).
type Grid struct {
	Kind Kind `json:"kind"`
	// Topology names a standard topology (topology.StandardNames); Seed 0
	// means its canonical instance. For KindEnsemble the topology is
	// regenerated per network from seeds split off Protocol.Seed, exactly as
	// mcast.MeasureEnsemble does.
	Topology string  `json:"topology"`
	Seed     int64   `json:"seed,omitempty"`
	Scale    float64 `json:"scale"`
	// LargeGraph builds the topology in the compressed CSR layout
	// (byte-identical results; a memory knob).
	LargeGraph bool `json:"large_graph,omitempty"`

	Sizes []int      `json:"sizes"`
	Mode  mcast.Mode `json:"mode"`
	// Strategy is the core placement for KindShared grids.
	Strategy mcast.CoreStrategy `json:"strategy,omitempty"`
	// NNetworks is the ensemble width for KindEnsemble grids.
	NNetworks int `json:"n_networks,omitempty"`

	Protocol mcast.Protocol `json:"protocol"`
}

// Validate checks grid sanity. Failures wrap valid.ErrParam so serving
// boundaries map them to 400 rather than 500.
func (g Grid) Validate() error {
	switch g.Kind {
	case KindCurve, KindShared, KindEnsemble:
	default:
		return valid.Badf("cluster: unknown grid kind %q", g.Kind)
	}
	if _, err := topology.Lookup(g.Topology); err != nil {
		return valid.Badf("cluster: %v", err)
	}
	if !(g.Scale > 0 && g.Scale <= 1) {
		return valid.Badf("cluster: scale must be in (0,1], got %v", g.Scale)
	}
	if len(g.Sizes) == 0 {
		return valid.Badf("cluster: empty size grid")
	}
	if err := g.Protocol.Validate(); err != nil {
		return err
	}
	if g.Kind == KindEnsemble && g.NNetworks < 1 {
		return valid.Badf("cluster: ensemble grid needs NNetworks >= 1, got %d", g.NNetworks)
	}
	return nil
}

// Span is the length of the grid's sharding axis: NSource for curve and
// shared grids, NNetworks for ensembles.
func (g Grid) Span() int {
	if g.Kind == KindEnsemble {
		return g.NNetworks
	}
	return g.Protocol.NSource
}

// Key fingerprints the grid. Results are deterministic functions of the
// grid, so (key, block) identifies a partial exactly — the property journal
// resume and shard re-queue rest on. %#v covers every field including ones
// added later.
func (g Grid) Key() string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%#v", g)))
	return hex.EncodeToString(sum[:])
}

// ShardSpec is the unit of work a coordinator posts to a worker: one
// contiguous block [Lo, Hi) of a grid's sharding axis.
type ShardSpec struct {
	Grid Grid `json:"grid"`
	Lo   int  `json:"lo"`
	Hi   int  `json:"hi"`
}

// Validate checks the spec's grid and block.
func (s ShardSpec) Validate() error {
	if err := s.Grid.Validate(); err != nil {
		return err
	}
	if s.Lo < 0 || s.Hi > s.Grid.Span() || s.Lo >= s.Hi {
		return valid.Badf("cluster: shard block [%d, %d) out of [0, %d)", s.Lo, s.Hi, s.Grid.Span())
	}
	return nil
}

// Plan cuts a grid's sharding axis into at most nShards contiguous blocks,
// balanced to within one unit (the first span%nShards blocks are one
// larger). Fewer shards come back when the axis is shorter than nShards.
func Plan(g Grid, nShards int) ([]ShardSpec, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if nShards < 1 {
		return nil, valid.Badf("cluster: need >= 1 shard, got %d", nShards)
	}
	span := g.Span()
	if nShards > span {
		nShards = span
	}
	per, extra := span/nShards, span%nShards
	specs := make([]ShardSpec, 0, nShards)
	lo := 0
	for i := 0; i < nShards; i++ {
		hi := lo + per
		if i < extra {
			hi++
		}
		specs = append(specs, ShardSpec{Grid: g, Lo: lo, Hi: hi})
		lo = hi
	}
	return specs, nil
}

// Partial is one shard's result: the engine-specific partial sums for the
// block [Lo, Hi), tagged with the grid key so a journal line or a worker
// response can be bound to the exact grid that produced it.
type Partial struct {
	Key string `json:"key"`
	Lo  int    `json:"lo"`
	Hi  int    `json:"hi"`

	Curve    *mcast.CurvePartial    `json:"curve,omitempty"`
	Shared   *mcast.SharedPartial   `json:"shared,omitempty"`
	Ensemble *mcast.EnsemblePartial `json:"ensemble,omitempty"`

	// Sum is the payload checksum Seal stamps and VerifySum checks at every
	// trust boundary (wire decode, journal resume, merge); see integrity.go.
	Sum string `json:"sum,omitempty"`
}

// Merged is a grid's final result: Points for curve and ensemble grids,
// SharedPoints for shared grids.
type Merged struct {
	Points       []mcast.Point       `json:"points,omitempty"`
	SharedPoints []mcast.SharedPoint `json:"shared_points,omitempty"`
}

// buildTopology resolves the grid's topology through the generation cache,
// so repeated shards of the same grid on one worker reuse one instance.
func buildTopology(g Grid) (*graph.Graph, error) {
	return topology.GenerateCachedOpt(g.Topology, g.Seed, g.Scale, g.LargeGraph)
}

// ensembleGen builds one ensemble network instance: a fresh, uncached build
// (transient topologies must not pin the generation cache), compressed when
// the grid asks for it.
func ensembleGen(g Grid) func(seed int64) (*graph.Graph, error) {
	return func(seed int64) (*graph.Graph, error) {
		gr, err := topology.GenerateSeeded(g.Topology, seed, g.Scale)
		if err != nil {
			return nil, err
		}
		if g.LargeGraph {
			return gr.Compress(false)
		}
		return gr, nil
	}
}

// ExecuteShard measures one shard: the worker-side entry point behind
// mtsimd's POST /shard and the coordinator's -local mode. The partial it
// returns is exactly the block the unsharded engine would compute.
func ExecuteShard(ctx context.Context, spec ShardSpec) (*Partial, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	g := spec.Grid
	out := &Partial{Key: g.Key(), Lo: spec.Lo, Hi: spec.Hi}
	switch g.Kind {
	case KindCurve:
		gr, err := buildTopology(g)
		if err != nil {
			return nil, err
		}
		out.Curve, err = mcast.MeasureCurvePartialCtx(ctx, gr, g.Sizes, g.Mode, g.Protocol, spec.Lo, spec.Hi)
		if err != nil {
			return nil, err
		}
	case KindShared:
		gr, err := buildTopology(g)
		if err != nil {
			return nil, err
		}
		out.Shared, err = mcast.MeasureSharedCurvePartialCtx(ctx, gr, g.Sizes, g.Strategy, g.Protocol, spec.Lo, spec.Hi)
		if err != nil {
			return nil, err
		}
	case KindEnsemble:
		var err error
		out.Ensemble, err = mcast.MeasureEnsemblePartialCtx(ctx, ensembleGen(g), g.NNetworks, g.Sizes, g.Mode, g.Protocol, spec.Lo, spec.Hi)
		if err != nil {
			return nil, err
		}
	}
	if err := out.Seal(); err != nil {
		return nil, err
	}
	return out, nil
}

// Merge folds shard partials into the grid's final result by replaying the
// unsharded engine's reduction order. The partials must tile the grid's
// sharding axis exactly; each must carry the engine payload its kind
// demands and the grid's own key.
func Merge(g Grid, parts []*Partial) (*Merged, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	key := g.Key()
	for _, p := range parts {
		if p == nil {
			return nil, valid.Badf("cluster: nil partial")
		}
		if p.Key != key {
			return nil, valid.Badf("cluster: partial for grid %.12s, want %.12s", p.Key, key)
		}
		// Sealed partials re-verify at the merge — the last line of defense
		// against corruption between decode/resume and here. Unsealed ones
		// (hand-built in-process, e.g. by tests of the reduce layer) pass;
		// the wire and journal boundaries already insist on seals.
		if p.Sum != "" {
			if err := p.VerifySum(); err != nil {
				return nil, err
			}
		}
	}
	switch g.Kind {
	case KindCurve:
		sub := make([]*mcast.CurvePartial, len(parts))
		for i, p := range parts {
			if p.Curve == nil {
				return nil, valid.Badf("cluster: partial [%d, %d) missing curve payload", p.Lo, p.Hi)
			}
			sub[i] = p.Curve
		}
		pts, err := mcast.ReduceCurvePartials(g.Sizes, sub)
		if err != nil {
			return nil, err
		}
		return &Merged{Points: pts}, nil
	case KindShared:
		sub := make([]*mcast.SharedPartial, len(parts))
		for i, p := range parts {
			if p.Shared == nil {
				return nil, valid.Badf("cluster: partial [%d, %d) missing shared payload", p.Lo, p.Hi)
			}
			sub[i] = p.Shared
		}
		pts, err := mcast.ReduceSharedPartials(g.Sizes, sub)
		if err != nil {
			return nil, err
		}
		return &Merged{SharedPoints: pts}, nil
	case KindEnsemble:
		sub := make([]*mcast.EnsemblePartial, len(parts))
		for i, p := range parts {
			if p.Ensemble == nil {
				return nil, valid.Badf("cluster: partial [%d, %d) missing ensemble payload", p.Lo, p.Hi)
			}
			sub[i] = p.Ensemble
		}
		pts, err := mcast.ReduceEnsemblePartials(g.Sizes, sub)
		if err != nil {
			return nil, err
		}
		return &Merged{Points: pts}, nil
	}
	return nil, valid.Badf("cluster: unknown grid kind %q", g.Kind)
}

// RunLocal measures the whole grid in-process through the UNSHARDED engines:
// the reference a clustered run must match byte for byte, and the engine
// behind mtctl -local.
func RunLocal(ctx context.Context, g Grid) (*Merged, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	switch g.Kind {
	case KindCurve:
		gr, err := buildTopology(g)
		if err != nil {
			return nil, err
		}
		pts, err := mcast.MeasureCurveCtx(ctx, gr, g.Sizes, g.Mode, g.Protocol)
		if err != nil {
			return nil, err
		}
		return &Merged{Points: pts}, nil
	case KindShared:
		gr, err := buildTopology(g)
		if err != nil {
			return nil, err
		}
		pts, err := mcast.MeasureSharedCurveCtx(ctx, gr, g.Sizes, g.Strategy, g.Protocol)
		if err != nil {
			return nil, err
		}
		return &Merged{SharedPoints: pts}, nil
	case KindEnsemble:
		pts, err := mcast.MeasureEnsembleCtx(ctx, ensembleGen(g), g.NNetworks, g.Sizes, g.Mode, g.Protocol)
		if err != nil {
			return nil, err
		}
		return &Merged{Points: pts}, nil
	}
	return nil, valid.Badf("cluster: unknown grid kind %q", g.Kind)
}
