// Package buildinfo derives a human-readable version string from the data
// the Go toolchain embeds in every binary (runtime/debug.ReadBuildInfo):
// module version, VCS revision and dirty flag, and the Go release. All
// three CLIs (mtsim, mtsimd, mtctl) print it under -version, so a cluster
// operator can confirm that coordinator and workers run the same build
// without any release machinery.
package buildinfo

import (
	"fmt"
	"runtime/debug"
	"strings"
)

// String formats the embedded build information as
// "<module> <version> (<rev>[,dirty]) <go version>". Fields the toolchain
// did not stamp (e.g. a non-VCS build) are omitted.
func String() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown (stripped build)"
	}
	return format(bi)
}

// format is String on an explicit BuildInfo, split out for tests.
func format(bi *debug.BuildInfo) string {
	version := bi.Main.Version
	if version == "" || version == "(devel)" {
		version = "devel"
	}
	var rev, dirty string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
			if len(rev) > 12 {
				rev = rev[:12]
			}
		case "vcs.modified":
			if s.Value == "true" {
				dirty = ",dirty"
			}
		}
	}
	parts := []string{bi.Main.Path, version}
	if rev != "" {
		parts = append(parts, fmt.Sprintf("(%s%s)", rev, dirty))
	}
	if bi.GoVersion != "" {
		parts = append(parts, bi.GoVersion)
	}
	return strings.Join(parts, " ")
}
