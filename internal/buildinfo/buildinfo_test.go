package buildinfo

import (
	"runtime/debug"
	"strings"
	"testing"
)

func TestStringNeverEmpty(t *testing.T) {
	if String() == "" {
		t.Fatal("empty version string")
	}
}

func TestFormat(t *testing.T) {
	bi := &debug.BuildInfo{GoVersion: "go1.24.0"}
	bi.Main.Path = "mtreescale"
	bi.Main.Version = "(devel)"
	bi.Settings = []debug.BuildSetting{
		{Key: "vcs.revision", Value: "0123456789abcdef0123"},
		{Key: "vcs.modified", Value: "true"},
	}
	got := format(bi)
	for _, want := range []string{"mtreescale", "devel", "0123456789ab", ",dirty", "go1.24.0"} {
		if !strings.Contains(got, want) {
			t.Fatalf("format = %q, missing %q", got, want)
		}
	}
	if strings.Contains(got, "0123456789abc") {
		t.Fatalf("revision not truncated to 12 chars: %q", got)
	}
}
