package retry

import (
	"testing"
	"time"
)

func TestBackoffExponentialSeries(t *testing.T) {
	b := Backoff{Base: time.Second, Max: 30 * time.Second, Factor: 2}
	want := []time.Duration{
		time.Second, 2 * time.Second, 4 * time.Second, 8 * time.Second,
		16 * time.Second, 30 * time.Second, 30 * time.Second,
	}
	for i, w := range want {
		if got := b.Delay(i + 1); got != w {
			t.Fatalf("Delay(%d) = %v, want %v", i+1, got, w)
		}
	}
}

func TestBackoffDefaults(t *testing.T) {
	var b Backoff
	if got := b.Delay(1); got != defaultBase {
		t.Fatalf("zero-value Delay(1) = %v, want %v", got, defaultBase)
	}
	if got := b.Delay(1000); got != defaultMax {
		t.Fatalf("zero-value Delay(1000) = %v, want cap %v", got, defaultMax)
	}
	if got := b.Delay(0); got != b.Delay(1) {
		t.Fatalf("Delay(0) = %v, want Delay(1) = %v", got, b.Delay(1))
	}
}

func TestBackoffCapBelowBase(t *testing.T) {
	b := Backoff{Base: time.Second, Max: time.Millisecond}
	if got := b.Delay(3); got != time.Second {
		t.Fatalf("Delay with Max<Base = %v, want Base %v", got, time.Second)
	}
}

func TestBackoffNoOverflow(t *testing.T) {
	b := Backoff{Base: time.Hour, Max: 1<<62 - 1, Factor: 1e9}
	for i := 1; i < 64; i++ {
		d := b.Delay(i)
		if d <= 0 || d > time.Duration(1<<62-1) {
			t.Fatalf("Delay(%d) overflowed: %v", i, d)
		}
	}
}

func TestBackoffJitterDeterministic(t *testing.T) {
	b := Backoff{Base: time.Second, Max: time.Minute, Jitter: 0.5, Seed: 42}
	for attempt := 1; attempt <= 8; attempt++ {
		d1, d2 := b.Delay(attempt), b.Delay(attempt)
		if d1 != d2 {
			t.Fatalf("Delay(%d) not deterministic: %v vs %v", attempt, d1, d2)
		}
		full := Backoff{Base: b.Base, Max: b.Max}.Delay(attempt)
		if d1 > full {
			t.Fatalf("jittered Delay(%d) = %v exceeds unjittered %v", attempt, d1, full)
		}
		if min := time.Duration(float64(full) * 0.5); d1 < min {
			t.Fatalf("jittered Delay(%d) = %v below floor %v", attempt, d1, min)
		}
	}
	// A different seed must shift at least one delay: jitter that ignores
	// the seed is not a stream.
	other := Backoff{Base: b.Base, Max: b.Max, Jitter: b.Jitter, Seed: 43}
	same := true
	for attempt := 1; attempt <= 8; attempt++ {
		if b.Delay(attempt) != other.Delay(attempt) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("jitter stream identical across seeds")
	}
}

// fakeClock is a hand-advanced time source.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1000, 0)} }

func TestBreakerOpensAtThreshold(t *testing.T) {
	clk := newFakeClock()
	b := &Breaker{Threshold: 3, Window: Backoff{Base: time.Second, Max: 8 * time.Second}}
	b.SetClock(clk.now)

	for i := 0; i < 2; i++ {
		if opened := b.Failure("w"); opened {
			t.Fatalf("opened after %d failures, threshold 3", i+1)
		}
		if ok, _ := b.Allow("w"); !ok {
			t.Fatalf("refused below threshold")
		}
	}
	if !b.Failure("w") {
		t.Fatal("third failure did not open the circuit")
	}
	ok, retryIn := b.Allow("w")
	if ok || retryIn != time.Second {
		t.Fatalf("open circuit: Allow = %v, retryIn %v; want refused, 1s", ok, retryIn)
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	clk := newFakeClock()
	b := &Breaker{Threshold: 1, Window: Backoff{Base: time.Second, Max: 8 * time.Second}}
	b.SetClock(clk.now)
	b.Failure("w")
	if ok, _ := b.Allow("w"); ok {
		t.Fatal("allowed inside open window")
	}
	clk.advance(time.Second)
	if ok, _ := b.Allow("w"); !ok {
		t.Fatal("elapsed window did not admit the half-open probe")
	}
	// Only one probe until it settles.
	if ok, _ := b.Allow("w"); ok {
		t.Fatal("second probe admitted while half-open")
	}
	// Probe fails: re-open with the doubled window.
	if !b.Failure("w") {
		t.Fatal("half-open failure did not re-open")
	}
	ok, retryIn := b.Allow("w")
	if ok || retryIn != 2*time.Second {
		t.Fatalf("re-opened window: Allow = %v, retryIn %v; want refused, 2s", ok, retryIn)
	}
	clk.advance(2 * time.Second)
	if ok, _ := b.Allow("w"); !ok {
		t.Fatal("second half-open probe refused")
	}
	if reclosed := b.Success("w"); !reclosed {
		t.Fatal("successful probe did not report reclose")
	}
	if ok, _ := b.Allow("w"); !ok {
		t.Fatal("closed circuit refuses")
	}
	if b.Fails("w") != 0 {
		t.Fatal("Success did not reset the failure count")
	}
}

func TestBreakerHoldUntilSuccess(t *testing.T) {
	clk := newFakeClock()
	b := &Breaker{Threshold: 2, Hold: true}
	b.SetClock(clk.now)
	b.Failure("w")
	if !b.Failure("w") {
		t.Fatal("did not open at threshold")
	}
	clk.advance(24 * time.Hour)
	if ok, _ := b.Allow("w"); ok {
		t.Fatal("Hold breaker admitted on time alone")
	}
	if !b.Open("w") {
		t.Fatal("Hold breaker closed on time alone")
	}
	if !b.Success("w") {
		t.Fatal("Success did not report reclose")
	}
	if b.Open("w") {
		t.Fatal("still open after Success")
	}
}

func TestBreakerIndependentTargets(t *testing.T) {
	b := &Breaker{Threshold: 1, Window: Backoff{Base: time.Minute}}
	b.Failure("a")
	if ok, _ := b.Allow("b"); !ok {
		t.Fatal("target b tripped by target a's failures")
	}
	if b.Open("b") {
		t.Fatal("target b open")
	}
	if !b.Open("a") {
		t.Fatal("target a not open")
	}
}
