// Package retry is the shared retry policy layer: capped exponential
// backoff with deterministic seeded jitter, and a per-target circuit
// breaker with half-open probes. It replaces the ad-hoc doubling loops
// that had grown independently inside the cluster coordinator, the
// heartbeat tracker and the serve quarantine — one policy, one set of
// tests, every consumer reading from the same clock abstraction.
//
// Determinism matters here the way it does in internal/chaos: a jittered
// delay must be a pure function of (seed, attempt), never of wall-clock
// entropy, so a soak replayed under the same seed paces its retries
// identically.
package retry

import (
	"sync"
	"time"
)

// Backoff computes the delay before retry number attempt (1-based): the
// classic capped exponential Base × Factor^(attempt-1), clamped to Max,
// with optional deterministic jitter. The zero value of every field has a
// safe meaning (see each field), so Backoff{Base: time.Second} is usable.
//
// Backoff is a value type with no internal state: Delay is a pure
// function, safe for concurrent use and for replay.
type Backoff struct {
	// Base is the first delay. Non-positive means 100ms.
	Base time.Duration
	// Max caps the grown delay (before jitter narrows it). Non-positive
	// means 30s; a Max below Base is raised to Base.
	Max time.Duration
	// Factor is the per-attempt growth multiplier. Values below 1 mean 2.
	Factor float64
	// Jitter, in [0, 1), spreads each delay uniformly over
	// [(1-Jitter)×d, d]: jitter only ever shrinks a delay, so Max stays a
	// hard ceiling and an unjittered consumer (Jitter = 0) sees the exact
	// deterministic series its tests pin.
	Jitter float64
	// Seed feeds the jitter stream. The same (Seed, attempt) pair always
	// yields the same delay — seeded replay, not crypto.
	Seed uint64
}

const (
	defaultBase = 100 * time.Millisecond
	defaultMax  = 30 * time.Second
)

// norm returns b with defaults applied.
func (b Backoff) norm() Backoff {
	if b.Base <= 0 {
		b.Base = defaultBase
	}
	if b.Max <= 0 {
		b.Max = defaultMax
	}
	if b.Max < b.Base {
		b.Max = b.Base
	}
	if b.Factor < 1 {
		b.Factor = 2
	}
	if b.Jitter < 0 || b.Jitter >= 1 {
		b.Jitter = 0
	}
	return b
}

// Delay returns the pause before retry attempt (1-based). Attempts below 1
// are treated as 1. The unjittered series is Base, Base×Factor,
// Base×Factor², …, capped at Max without overflow.
func (b Backoff) Delay(attempt int) time.Duration {
	b = b.norm()
	if attempt < 1 {
		attempt = 1
	}
	d := b.Base
	// Multiply stepwise and stop at the cap: no float pow, no overflow —
	// the same shape as the doubling loop this package absorbed.
	for i := 1; i < attempt && d < b.Max; i++ {
		grown := time.Duration(float64(d) * b.Factor)
		if grown <= d { // overflow or Factor rounding to no growth
			d = b.Max
			break
		}
		d = grown
	}
	if d > b.Max {
		d = b.Max
	}
	if b.Jitter > 0 {
		// One splitmix64 scramble of (Seed, attempt) → uniform in [0, 1).
		u := float64(mix(b.Seed^uint64(attempt)*0x9e3779b97f4a7c15)>>11) / (1 << 53)
		d = time.Duration(float64(d) * (1 - b.Jitter*u))
		if d < 1 {
			d = 1
		}
	}
	return d
}

// mix is the splitmix64 finalizer — the same scramble the chaos package
// uses to derive independent deterministic streams.
func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Breaker is a per-target circuit breaker. Each target accumulates
// consecutive failures; at Threshold the circuit opens for a window drawn
// from Window.Delay(trip number), so a target that keeps failing backs off
// exponentially. When the window elapses the breaker goes half-open: Allow
// admits exactly one probe, and that probe's Success closes the circuit
// (full reset) while its Failure re-opens it with a longer window.
//
// A zero-valued Window with Hold set instead opens the circuit
// indefinitely: only a Success closes it. That is the heartbeat tracker's
// eviction semantic — time alone never readmits a worker, a live probe
// must succeed first.
type Breaker struct {
	// Threshold is the consecutive-failure count that opens the circuit
	// (values below 1 mean 3).
	Threshold int
	// Window shapes the open durations per trip.
	Window Backoff
	// Hold, when true, keeps an opened circuit open until a Success —
	// Allow never admits, the open window never elapses. The consumer is
	// expected to keep probing the target out-of-band (the heartbeat
	// loop) and report the outcome.
	Hold bool

	mu      sync.Mutex
	now     func() time.Time
	targets map[string]*breakerEntry
}

type breakerEntry struct {
	fails    int // consecutive failures
	trips    int // times the circuit has opened
	open     bool
	until    time.Time // open window end; meaningless under Hold
	halfOpen bool      // a probe is in flight past an elapsed window
}

// SetClock replaces the breaker's time source; nil restores the real
// clock. Tests drive open-window elapse without sleeping.
func (b *Breaker) SetClock(now func() time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if now == nil {
		now = time.Now
	}
	b.now = now
}

func (b *Breaker) entry(target string) *breakerEntry {
	if b.targets == nil {
		b.targets = make(map[string]*breakerEntry)
	}
	e := b.targets[target]
	if e == nil {
		e = &breakerEntry{}
		b.targets[target] = e
	}
	return e
}

func (b *Breaker) clock() time.Time {
	if b.now == nil {
		return time.Now()
	}
	return b.now()
}

func (b *Breaker) threshold() int {
	if b.Threshold < 1 {
		return 3
	}
	return b.Threshold
}

// Allow reports whether target may be tried. While the circuit is open it
// also returns the remaining window — a ready-made Retry-After. When the
// window has elapsed, the first Allow admits a half-open probe and
// subsequent ones keep refusing until that probe settles via Success or
// Failure.
func (b *Breaker) Allow(target string) (ok bool, retryIn time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.targets[target]
	if e == nil || !e.open {
		return true, 0
	}
	if b.Hold {
		return false, 0
	}
	if remaining := e.until.Sub(b.clock()); remaining > 0 {
		return false, remaining
	}
	if e.halfOpen {
		return false, 0
	}
	e.halfOpen = true
	return true, 0
}

// Success reports a successful call to target, closing its circuit and
// forgetting its history. Returns true when the call ended an open
// circuit — the "readmit" transition consumers log.
func (b *Breaker) Success(target string) (reclosed bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.targets[target]
	if e == nil {
		return false
	}
	reclosed = e.open
	delete(b.targets, target)
	return reclosed
}

// Failure reports a failed call to target. Returns true when this failure
// opened (or re-opened after a half-open probe) the circuit — the "evict"
// transition consumers log.
func (b *Breaker) Failure(target string) (opened bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.entry(target)
	e.fails++
	if e.open {
		if e.halfOpen {
			// The half-open probe failed: re-open with a longer window.
			e.halfOpen = false
			e.trips++
			e.until = b.clock().Add(b.Window.Delay(e.trips))
			return true
		}
		return false
	}
	if e.fails >= b.threshold() {
		e.open = true
		e.trips++
		e.until = b.clock().Add(b.Window.Delay(e.trips))
		return true
	}
	return false
}

// Open reports whether target's circuit is currently open (the window not
// yet elapsed, or Hold still in force).
func (b *Breaker) Open(target string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.targets[target]
	if e == nil || !e.open {
		return false
	}
	if b.Hold {
		return true
	}
	return e.until.After(b.clock()) || e.halfOpen
}

// Fails reports target's current consecutive-failure count.
func (b *Breaker) Fails(target string) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.targets[target]
	if e == nil {
		return 0
	}
	return e.fails
}
